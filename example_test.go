package sqm_test

import (
	"fmt"

	"sqm"
)

// The clients' columns hold integer-representable values, so with μ = 0
// the quantized evaluation is exact and the output deterministic.
func ExampleEvaluateMonomialSum() {
	x := sqm.FromRows([][]float64{
		{0.5, 0.25},
		{0.75, 0.5},
	})
	m := sqm.Monomial{Coef: 2, Exps: []int{1, 1}}
	est, trace, err := sqm.EvaluateMonomialSum(m, x, sqm.Params{Gamma: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimate %.4f (scaled integer %d / gamma^2 = %.0f)\n", est, trace.Scaled[0], trace.Scale)
	// Output: estimate 1.0000 (scaled integer 8 / gamma^2 = 16)
}

// A mixed-degree polynomial: Algorithm 3's coefficient pre-processing
// gives every monomial the same γ^{λ+1} factor.
func ExampleEvaluatePolynomialSum() {
	f := sqm.MustMulti(sqm.MustPolynomial(2,
		sqm.Monomial{Coef: 0.5, Exps: []int{2, 0}}, // degree 2
		sqm.Monomial{Coef: 1, Exps: []int{0, 1}},   // degree 1
	))
	x := sqm.FromRows([][]float64{{0.5, 0.25}, {0.25, 0.5}})
	est, _, err := sqm.EvaluatePolynomialSum(f, x, sqm.Params{Gamma: 16, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.4f\n", est[0])
	// Output: 0.9062
}

// Calibrating the aggregate Skellam parameter for a target privacy
// level, then verifying it with the independent accountant.
func ExampleCalibrateSkellamMu() {
	delta2 := 1000.0 // quantized L2 sensitivity
	mu, err := sqm.CalibrateSkellamMu(1.0, 1e-5, delta2, delta2, 1, 1)
	if err != nil {
		panic(err)
	}
	eps, _ := sqm.SkellamEpsilon(delta2, delta2, mu, 1, 1, 1e-5)
	fmt.Printf("meets target: %v\n", eps <= 1.0+1e-9)
	// Output: meets target: true
}

// Releasing a 2-way marginal workload over binary vertical data: every
// count is a degree-2 monomial aggregate released under one budget.
func ExampleAnswerMarginals() {
	x := sqm.FromRows([][]float64{
		{1, 1, 0},
		{1, 0, 1},
		{1, 1, 1},
		{0, 1, 1},
	})
	truth, err := sqm.TrueMarginals(x, sqm.AllPairMarginals(3))
	if err != nil {
		panic(err)
	}
	fmt.Printf("true counts: %v\n", truth)
	r, err := sqm.AnswerMarginals(x, sqm.AllPairMarginals(3), 8, 1e-5, 64, sqm.Params{Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("released %d private counts in [0, %d]\n", len(r.Counts), x.Rows)
	// Output:
	// true counts: [2 2 2]
	// released 3 private counts in [0, 4]
}

// Tracking the privacy budget across heterogeneous releases on the same
// database: RDP curves compose order-wise, tighter than summing ε.
func ExampleNewAccountant() {
	acct := sqm.NewAccountant(64)
	acct.AddSkellam(100, 100, 1e6)              // a covariance release
	acct.AddSubsampledGaussian(1, 3, 0.01, 500) // a DPSGD training run
	eps, alpha := acct.Epsilon(1e-5)
	fmt.Printf("two releases recorded: %d, eps finite: %v, alpha >= 2: %v\n",
		acct.Releases(), eps > 0 && eps < 100, alpha >= 2)
	// Output: two releases recorded: 2, eps finite: true, alpha >= 2: true
}

// Streaming the covariance protocol over record batches: out-of-core
// databases fold in one batch at a time, and the finalized estimate is
// identical to the one-shot protocol.
func ExampleNewCovarianceStream() {
	stream, err := sqm.NewCovarianceStream(2, sqm.Params{Gamma: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	batches := [][][]float64{
		{{0.5, 0.25}, {0.25, 0.5}},
		{{0.75, 0.5}},
	}
	for _, b := range batches {
		if err := stream.Add(sqm.FromRows(b)); err != nil {
			panic(err)
		}
	}
	cov, _, err := stream.Finalize()
	if err != nil {
		panic(err)
	}
	fmt.Printf("rows=%d, C[0][1]=%.4f\n", stream.Rows(), cov.At(0, 1))
	// Output: rows=3, C[0][1]=0.6250
}

// Budgeting an SQM degree for a target approximation accuracy before
// paying the MPC cost: tanh on [−2, 2] to within 1e-2.
func ExampleMinApproxDegree() {
	p, err := sqm.MinApproxDegree(func(u float64) float64 {
		return sqm.TanhOf(u)
	}, 2, 1e-2, 20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("degree %d suffices\n", p.Degree())
	// Output: degree 7 suffices
}
