// Package marginal answers k-way marginal (conjunction-count) workloads
// over vertically partitioned binary data with SQM — the classic
// database-style instantiation of the paper's polynomial class. With
// one-hot attributes x_j ∈ {0, 1} held by different clients, the count
//
//	|{records i : x_{a1}=1 ∧ ... ∧ x_{ak}=1}|  =  Σ_i Π_j x_{aj}
//
// is a degree-k monomial aggregate, so a whole workload of marginals is
// one multi-dimensional polynomial released under a single (ε, δ)
// budget via Algorithm 3.
package marginal

import (
	"fmt"
	"math"

	"sqm/internal/core"
	"sqm/internal/dp"
	"sqm/internal/linalg"
	"sqm/internal/mathx"
	"sqm/internal/poly"
)

// Query is one conjunction: the count of records with every listed
// attribute equal to 1. Attrs must be distinct column indices.
type Query struct {
	Attrs []int
}

// Degree returns k, the conjunction width.
func (q Query) Degree() int { return len(q.Attrs) }

// monomial renders the query as Π_j x_{a_j} over numVars variables.
func (q Query) monomial(numVars int) (poly.Monomial, error) {
	exps := make([]int, numVars)
	for _, a := range q.Attrs {
		if a < 0 || a >= numVars {
			return poly.Monomial{}, fmt.Errorf("marginal: attribute %d out of range [0, %d)", a, numVars)
		}
		if exps[a] != 0 {
			return poly.Monomial{}, fmt.Errorf("marginal: attribute %d repeated in query", a)
		}
		exps[a] = 1
	}
	if len(q.Attrs) == 0 {
		return poly.Monomial{}, fmt.Errorf("marginal: empty query")
	}
	return poly.Monomial{Coef: 1, Exps: exps}, nil
}

// Result is a privately answered workload.
type Result struct {
	Counts []float64 // one per query, clamped to [0, m]
	Mu     float64   // calibrated aggregate Skellam parameter
	Trace  *core.Trace
}

// Sensitivities bounds the quantized workload's L2/L1 sensitivities:
// each binary coordinate quantizes to at most γ+1 in magnitude and a
// degree-k query's coefficient is pre-processed to γ^{1+λ−k}, so one
// record changes query q by at most γ^{1+λ−k}·(γ+1)^k.
func Sensitivities(queries []Query, gamma float64) (delta2, delta1 float64) {
	lambda := 0
	for _, q := range queries {
		if q.Degree() > lambda {
			lambda = q.Degree()
		}
	}
	var sumSq float64
	for _, q := range queries {
		b := (math.Pow(gamma, float64(1+lambda-q.Degree())) + 1) * math.Pow(gamma+1, float64(q.Degree()))
		sumSq += b * b
	}
	delta2 = math.Sqrt(sumSq)
	delta1 = math.Min(delta2*delta2, math.Sqrt(float64(len(queries)))*delta2)
	return delta2, delta1
}

// Answer releases the whole workload under server-observed (ε, δ)-DP.
// The data must be 0/1-valued; each column belongs to one client.
func Answer(x *linalg.Matrix, queries []Query, eps, delta, gamma float64, p core.Params) (*Result, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("marginal: empty workload")
	}
	for _, v := range x.Data {
		if !mathx.EqualWithin(v, 0, 0) && !mathx.EqualWithin(v, 1, 0) {
			return nil, fmt.Errorf("marginal: data must be binary, found %v", v)
		}
	}
	dims := make([]*poly.Polynomial, len(queries))
	for i, q := range queries {
		m, err := q.monomial(x.Cols)
		if err != nil {
			return nil, err
		}
		dims[i] = poly.MustPolynomial(x.Cols, m)
	}
	f, err := poly.NewMulti(dims...)
	if err != nil {
		return nil, err
	}
	d2, d1 := Sensitivities(queries, gamma)
	mu, err := dp.CalibrateSkellamMu(eps, delta, d1, d2, 1, 1)
	if err != nil {
		return nil, err
	}
	p.Gamma = gamma
	p.Mu = mu
	est, tr, err := core.EvaluatePolynomialSum(f, x, p)
	if err != nil {
		return nil, err
	}
	counts := make([]float64, len(est))
	m := float64(x.Rows)
	for i, v := range est {
		counts[i] = math.Max(0, math.Min(m, v))
	}
	return &Result{Counts: counts, Mu: mu, Trace: tr}, nil
}

// TrueCounts computes the exact workload answers (for evaluation).
func TrueCounts(x *linalg.Matrix, queries []Query) ([]float64, error) {
	out := make([]float64, len(queries))
	for qi, q := range queries {
		if _, err := q.monomial(x.Cols); err != nil {
			return nil, err
		}
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			match := true
			for _, a := range q.Attrs {
				if !mathx.EqualWithin(row[a], 1, 0) {
					match = false
					break
				}
			}
			if match {
				out[qi]++
			}
		}
	}
	return out, nil
}

// AllPairs enumerates every 2-way query over n attributes.
func AllPairs(n int) []Query {
	var qs []Query
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			qs = append(qs, Query{Attrs: []int{a, b}})
		}
	}
	return qs
}
