package marginal

import (
	"math"
	"testing"

	"sqm/internal/core"
	"sqm/internal/linalg"
	"sqm/internal/randx"
)

// binaryData draws correlated binary columns.
func binaryData(m, n int, seed uint64) *linalg.Matrix {
	g := randx.New(seed)
	x := linalg.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		base := g.Bernoulli(0.5)
		for j := 0; j < n; j++ {
			p := 0.2
			if base && j%2 == 0 {
				p = 0.7
			}
			if g.Bernoulli(p) {
				x.Set(i, j, 1)
			}
		}
	}
	return x
}

func TestQueryValidation(t *testing.T) {
	x := binaryData(10, 4, 1)
	if _, err := Answer(x, nil, 1, 1e-5, 64, core.Params{}); err == nil {
		t.Fatal("empty workload must be rejected")
	}
	if _, err := Answer(x, []Query{{Attrs: []int{0, 9}}}, 1, 1e-5, 64, core.Params{}); err == nil {
		t.Fatal("out-of-range attribute must be rejected")
	}
	if _, err := Answer(x, []Query{{Attrs: []int{0, 0}}}, 1, 1e-5, 64, core.Params{}); err == nil {
		t.Fatal("repeated attribute must be rejected")
	}
	if _, err := Answer(x, []Query{{}}, 1, 1e-5, 64, core.Params{}); err == nil {
		t.Fatal("empty query must be rejected")
	}
	bad := x.Clone()
	bad.Set(0, 0, 0.5)
	if _, err := Answer(bad, []Query{{Attrs: []int{0}}}, 1, 1e-5, 64, core.Params{}); err == nil {
		t.Fatal("non-binary data must be rejected")
	}
}

func TestTrueCounts(t *testing.T) {
	x := linalg.FromRows([][]float64{
		{1, 1, 0},
		{1, 0, 1},
		{1, 1, 1},
		{0, 1, 1},
	})
	got, err := TrueCounts(x, []Query{
		{Attrs: []int{0}},
		{Attrs: []int{0, 1}},
		{Attrs: []int{0, 1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TrueCounts = %v, want %v", got, want)
		}
	}
}

func TestAnswerAccurateAtLargeEps(t *testing.T) {
	x := binaryData(20000, 6, 2)
	queries := append(AllPairs(4), Query{Attrs: []int{0, 2, 4}}) // mixed degrees 2 and 3
	truth, err := TrueCounts(x, queries)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Answer(x, queries, 8, 1e-5, 512, core.Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mu <= 0 {
		t.Fatal("mu must be calibrated")
	}
	for i := range truth {
		if e := math.Abs(r.Counts[i] - truth[i]); e > 0.02*float64(x.Rows) {
			t.Fatalf("query %d: |%v − %v| = %v too large", i, r.Counts[i], truth[i], e)
		}
	}
}

func TestAnswerClampsToValidRange(t *testing.T) {
	x := binaryData(20, 3, 4) // tiny m: noise dominates
	r, err := Answer(x, AllPairs(3), 0.5, 1e-5, 64, core.Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Counts {
		if c < 0 || c > 20 {
			t.Fatalf("count %v escapes [0, m]", c)
		}
	}
}

func TestAnswerPlainAndBGWAgree(t *testing.T) {
	x := binaryData(30, 4, 6)
	queries := []Query{{Attrs: []int{0, 1}}, {Attrs: []int{1, 2, 3}}}
	a, err := Answer(x, queries, 4, 1e-5, 32, core.Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Answer(x, queries, 4, 1e-5, 32, core.Params{Seed: 7, Engine: core.EngineBGW, Parties: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatalf("query %d: plain %v vs BGW %v", i, a.Counts[i], b.Counts[i])
		}
	}
}

func TestSensitivitiesScaleUniformly(t *testing.T) {
	// Mixed-degree workload: every query contributes ≈ γ^{λ+1}
	// regardless of its own degree (the point of Algorithm 3).
	gamma := 256.0
	d2mixed, _ := Sensitivities([]Query{{Attrs: []int{0}}, {Attrs: []int{1, 2, 3}}}, gamma)
	scale := math.Pow(gamma, 4) // λ+1 = 4
	perQuery := d2mixed / math.Sqrt2
	if perQuery < scale || perQuery > 1.05*scale {
		t.Fatalf("per-query sensitivity %v should be ≈ γ^{λ+1} = %v", perQuery, scale)
	}
}

func TestAllPairs(t *testing.T) {
	qs := AllPairs(4)
	if len(qs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(qs))
	}
	for _, q := range qs {
		if q.Degree() != 2 {
			t.Fatal("AllPairs must emit degree-2 queries")
		}
	}
	if AllPairs(1) != nil {
		t.Fatal("no pairs over a single attribute")
	}
}
