package poly

import (
	"math"
	"testing"

	"sqm/internal/quant"
	"sqm/internal/randx"
)

// examplePoly is the running example from §II of the paper:
// f(x) = x[1]^3 + 1.5·x[2]x[3] + 2, degree 3.
func examplePoly(t *testing.T) *Polynomial {
	t.Helper()
	p, err := NewPolynomial(3,
		Monomial{Coef: 1, Exps: []int{3, 0, 0}},
		Monomial{Coef: 1.5, Exps: []int{0, 1, 1}},
		Monomial{Coef: 2, Exps: []int{0, 0, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMonomialDegreeAndEval(t *testing.T) {
	m := Monomial{Coef: 2, Exps: []int{1, 2}}
	if m.Degree() != 3 {
		t.Fatalf("Degree = %d", m.Degree())
	}
	if got := m.Eval([]float64{3, 2}); got != 24 {
		t.Fatalf("Eval = %v", got)
	}
	con := Monomial{Coef: 5, Exps: []int{0, 0}}
	if con.Degree() != 0 || con.Eval([]float64{9, 9}) != 5 {
		t.Fatal("constant monomial")
	}
}

func TestPolynomialPaperExample(t *testing.T) {
	p := examplePoly(t)
	if p.Degree() != 3 {
		t.Fatalf("Degree = %d, want 3 (paper §II)", p.Degree())
	}
	// f(2, 4, 2) = 8 + 1.5*8 + 2 = 22.
	if got := p.Eval([]float64{2, 4, 2}); got != 22 {
		t.Fatalf("Eval = %v, want 22", got)
	}
}

func TestNewPolynomialValidation(t *testing.T) {
	if _, err := NewPolynomial(2, Monomial{Coef: 1, Exps: []int{1}}); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := NewPolynomial(1, Monomial{Coef: 1, Exps: []int{-1}}); err == nil {
		t.Fatal("expected negative exponent error")
	}
}

func TestMultiBasics(t *testing.T) {
	p1 := MustPolynomial(2, Monomial{Coef: 1, Exps: []int{2, 0}})
	p2 := MustPolynomial(2, Monomial{Coef: 1, Exps: []int{0, 1}})
	f := MustMulti(p1, p2)
	if f.NumVars() != 2 || f.OutDim() != 2 || f.Degree() != 2 {
		t.Fatalf("NumVars=%d OutDim=%d Degree=%d", f.NumVars(), f.OutDim(), f.Degree())
	}
	got := f.Eval([]float64{3, 5})
	if got[0] != 9 || got[1] != 5 {
		t.Fatalf("Eval = %v", got)
	}
}

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(); err == nil {
		t.Fatal("expected error for empty multi")
	}
	p1 := MustPolynomial(2, Monomial{Coef: 1, Exps: []int{1, 0}})
	p2 := MustPolynomial(3, Monomial{Coef: 1, Exps: []int{1, 0, 0}})
	if _, err := NewMulti(p1, p2); err == nil {
		t.Fatal("expected arity mismatch error")
	}
}

func TestEvalSum(t *testing.T) {
	f := MustMulti(MustPolynomial(1, Monomial{Coef: 1, Exps: []int{2}}))
	rows := [][]float64{{1}, {2}, {3}}
	if got := f.EvalSum(rows); got[0] != 14 {
		t.Fatalf("EvalSum = %v, want 14", got)
	}
}

func TestQuantizeScalesCoefficientsByDegreeGap(t *testing.T) {
	// Degree-λ monomial coefficient is scaled by γ, degree-(λ-1) by γ²,
	// etc. (Algorithm 3, lines 1–3).
	g := randx.New(1)
	p := MustPolynomial(1,
		Monomial{Coef: 0.5, Exps: []int{2}}, // degree 2 = λ → × γ
		Monomial{Coef: 1, Exps: []int{1}},   // degree 1 → × γ²
		Monomial{Coef: 2, Exps: []int{0}},   // degree 0 → × γ³
	)
	f := MustMulti(p)
	q, err := f.Quantize(4, g)
	if err != nil {
		t.Fatal(err)
	}
	if q.Lambda != 2 {
		t.Fatalf("Lambda = %d", q.Lambda)
	}
	want := []int64{2, 16, 128} // 0.5*4, 1*16, 2*64: all exact
	for l, w := range want {
		if q.Coefs[0][l] != w {
			t.Fatalf("Coefs = %v, want %v", q.Coefs[0], want)
		}
	}
	if q.Scale() != 64 { // γ^{λ+1} = 4³
		t.Fatalf("Scale = %v", q.Scale())
	}
}

func TestQuantizeRejectsBadGamma(t *testing.T) {
	f := MustMulti(MustPolynomial(1, Monomial{Coef: 1, Exps: []int{1}}))
	if _, err := f.Quantize(0.5, randx.New(1)); err == nil {
		t.Fatal("expected gamma validation error")
	}
}

func TestQuantizeOverflowGuard(t *testing.T) {
	f := MustMulti(MustPolynomial(1,
		Monomial{Coef: 1e30, Exps: []int{0}},
		Monomial{Coef: 1, Exps: []int{3}},
	))
	if _, err := f.Quantize(1024, randx.New(1)); err != ErrOverflow {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
}

func TestEvalIntMatchesFloatForExactInputs(t *testing.T) {
	// With integer-representable inputs and coefficients the quantized
	// integer evaluation equals γ^{λ+1}·f(x) exactly.
	g := randx.New(2)
	p := MustPolynomial(2,
		Monomial{Coef: 2, Exps: []int{1, 1}},
		Monomial{Coef: 1, Exps: []int{2, 0}},
	)
	f := MustMulti(p)
	gamma := 8.0
	q, err := f.Quantize(gamma, g)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, 0.25}
	xq := quant.Vector(x, gamma, g) // exact: 4, 2
	got, err := q.EvalInt(xq)
	if err != nil {
		t.Fatal(err)
	}
	want := q.Scale() * f.Eval(x)[0] // 8³ · (2·0.125 + 0.25) = 512 · 0.5
	if float64(got[0]) != want {
		t.Fatalf("EvalInt = %v, want %v", got[0], want)
	}
}

func TestEvalIntSum(t *testing.T) {
	g := randx.New(3)
	f := MustMulti(MustPolynomial(1, Monomial{Coef: 1, Exps: []int{2}}))
	q, err := f.Quantize(2, g)
	if err != nil {
		t.Fatal(err)
	}
	x := quant.NewIntMatrix(3, 1)
	x.Set(0, 0, 2)
	x.Set(1, 0, 4)
	x.Set(2, 0, 6)
	got, err := q.EvalIntSum(x)
	if err != nil {
		t.Fatal(err)
	}
	// coefficient quantized by γ^{1+λ-λ_l} = γ = 2; Σ 2·x² = 2(4+16+36).
	if got[0] != 112 {
		t.Fatalf("EvalIntSum = %v, want 112", got[0])
	}
}

func TestEvalIntOverflow(t *testing.T) {
	g := randx.New(4)
	f := MustMulti(MustPolynomial(1, Monomial{Coef: 1, Exps: []int{2}}))
	q, err := f.Quantize(1, g)
	if err != nil {
		t.Fatal(err)
	}
	big := int64(1) << 40
	if _, err := q.EvalInt([]int64{big}); err != ErrOverflow {
		// big² = 2^80 overflows.
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
}

func TestAddCheckOverflow(t *testing.T) {
	if _, err := addCheck(math.MaxInt64, 1); err != ErrOverflow {
		t.Fatal("expected overflow")
	}
	if _, err := addCheck(math.MinInt64, -1); err != ErrOverflow {
		t.Fatal("expected overflow")
	}
	if v, err := addCheck(3, -5); err != nil || v != -2 {
		t.Fatalf("addCheck(3,-5) = %v, %v", v, err)
	}
}

func TestMulCheckOverflow(t *testing.T) {
	if _, err := mulCheck(math.MaxInt64, 2); err != ErrOverflow {
		t.Fatal("expected overflow")
	}
	if v, err := mulCheck(0, math.MaxInt64); err != nil || v != 0 {
		t.Fatalf("mulCheck(0,max) = %v, %v", v, err)
	}
	if v, err := mulCheck(-3, 7); err != nil || v != -21 {
		t.Fatalf("mulCheck(-3,7) = %v, %v", v, err)
	}
}

// The relative quantization error of the whole pipeline vanishes as γ
// grows (Lemma 2 / Corollary 1).
func TestQuantizedEvaluationConvergesToTruth(t *testing.T) {
	g := randx.New(5)
	p := MustPolynomial(2,
		Monomial{Coef: 1.5, Exps: []int{1, 1}},
		Monomial{Coef: -0.7, Exps: []int{2, 0}},
		Monomial{Coef: 0.3, Exps: []int{0, 1}},
	)
	f := MustMulti(p)
	rows := [][]float64{{0.3, -0.4}, {0.1, 0.9}, {-0.5, 0.2}}
	truth := f.EvalSum(rows)[0]
	prevErr := math.Inf(1)
	for _, gamma := range []float64{16, 256, 4096} {
		var worst float64
		for trial := 0; trial < 20; trial++ {
			q, err := f.Quantize(gamma, g)
			if err != nil {
				t.Fatal(err)
			}
			total := int64(0)
			for _, r := range rows {
				xq := quant.Vector(r, gamma, g)
				v, err := q.EvalInt(xq)
				if err != nil {
					t.Fatal(err)
				}
				total += v[0]
			}
			est := float64(total) / q.Scale()
			if e := math.Abs(est - truth); e > worst {
				worst = e
			}
		}
		if worst >= prevErr {
			t.Fatalf("error did not shrink: gamma=%v worst=%v prev=%v", gamma, worst, prevErr)
		}
		prevErr = worst
	}
	if prevErr > 1e-2 {
		t.Fatalf("error at gamma=4096 still %v", prevErr)
	}
}

func TestSensitivityBound(t *testing.T) {
	g := randx.New(6)
	// f(x) = x² over one variable, like the scalar covariance.
	f := MustMulti(MustPolynomial(1, Monomial{Coef: 1, Exps: []int{2}}))
	gamma := 64.0
	q, err := f.Quantize(gamma, g)
	if err != nil {
		t.Fatal(err)
	}
	d2, d1 := q.SensitivityBound(1)
	// The bound is â·(γc+1)² with â = γ; must dominate γ^{λ+1}·max f = γ³
	// and stay within the (1+o(1)) factor for this γ.
	want := math.Pow(gamma, 3)
	if d2 < want {
		t.Fatalf("Delta2 = %v below the scaled true sensitivity %v", d2, want)
	}
	if d2 > want*1.1 {
		t.Fatalf("Delta2 = %v too loose (want <= %v)", d2, want*1.1)
	}
	if d1 != math.Min(d2*d2, d2) { // d = 1 → √d·Δ2 = Δ2
		t.Fatalf("Delta1 = %v", d1)
	}
}

func TestSensitivityOverheadVanishesWithGamma(t *testing.T) {
	g := randx.New(7)
	f := MustMulti(MustPolynomial(1, Monomial{Coef: 1, Exps: []int{2}}))
	prev := math.Inf(1)
	for _, gamma := range []float64{16, 256, 4096} {
		q, err := f.Quantize(gamma, g)
		if err != nil {
			t.Fatal(err)
		}
		d2, _ := q.SensitivityBound(1)
		rel := d2/math.Pow(gamma, 3) - 1 // relative overhead vs γ^{λ+1}·c²
		if rel < 0 || rel >= prev {
			t.Fatalf("relative overhead %v not decreasing (prev %v)", rel, prev)
		}
		prev = rel
	}
	if prev > 0.001 {
		t.Fatalf("overhead at gamma=4096 still %v", prev)
	}
}

func TestMaxAbsBound(t *testing.T) {
	f := MustMulti(
		MustPolynomial(2, Monomial{Coef: 2, Exps: []int{1, 1}}),
		MustPolynomial(2, Monomial{Coef: 1, Exps: []int{1, 0}}),
	)
	// c=2: dim1 <= 2·4 = 8, dim2 <= 2 → bound = sqrt(64+4).
	got := f.MaxAbsBound(2)
	if math.Abs(got-math.Sqrt(68)) > 1e-12 {
		t.Fatalf("MaxAbsBound = %v", got)
	}
}
