// Package poly represents the multivariate polynomials that SQM
// evaluates: f(x) = (f_1(x), ..., f_d(x)) with
//
//	f_t(x) = Σ_l a_t[l] · Π_j x[j]^{B_t[l,j]}           (Eq. 6)
//
// It provides degrees, evaluation over the reals and over quantized
// integers (with overflow-checked arithmetic), the coefficient
// pre-processing of Algorithm 3 (lines 1–3), and conservative sensitivity
// bounds used by the DP calibration.
package poly

import (
	"errors"
	"fmt"
	"math"

	"sqm/internal/invariant"
	"sqm/internal/quant"
	"sqm/internal/randx"
)

// Monomial is a single term a · Π_j x[j]^{Exps[j]}.
type Monomial struct {
	Coef float64
	Exps []int // exponent per variable; len == number of variables
}

// Degree returns Σ_j Exps[j].
func (m Monomial) Degree() int {
	d := 0
	for _, e := range m.Exps {
		if e < 0 {
			panic(invariant.Violation("poly: negative exponent"))
		}
		d += e
	}
	return d
}

// Eval evaluates the monomial at x.
func (m Monomial) Eval(x []float64) float64 {
	v := m.Coef
	for j, e := range m.Exps {
		for k := 0; k < e; k++ {
			v *= x[j]
		}
	}
	return v
}

// Polynomial is one output dimension: a sum of monomials over a shared
// variable set.
type Polynomial struct {
	NumVars   int
	Monomials []Monomial
}

// NewPolynomial validates and constructs a polynomial over numVars
// variables.
func NewPolynomial(numVars int, monomials ...Monomial) (*Polynomial, error) {
	for i, m := range monomials {
		if len(m.Exps) != numVars {
			return nil, fmt.Errorf("poly: monomial %d has %d exponents, want %d", i, len(m.Exps), numVars)
		}
		for _, e := range m.Exps {
			if e < 0 {
				return nil, errors.New("poly: negative exponent")
			}
		}
	}
	return &Polynomial{NumVars: numVars, Monomials: monomials}, nil
}

// MustPolynomial is NewPolynomial but panics on error; for literals.
func MustPolynomial(numVars int, monomials ...Monomial) *Polynomial {
	p, err := NewPolynomial(numVars, monomials...)
	if err != nil {
		panic(invariant.Violation("poly: %v", err))
	}
	return p
}

// Degree returns the maximum monomial degree (0 for the empty
// polynomial).
func (p *Polynomial) Degree() int {
	d := 0
	for _, m := range p.Monomials {
		if md := m.Degree(); md > d {
			d = md
		}
	}
	return d
}

// Eval evaluates the polynomial at x.
func (p *Polynomial) Eval(x []float64) float64 {
	var s float64
	for _, m := range p.Monomials {
		s += m.Eval(x)
	}
	return s
}

// Multi is a d-dimensional polynomial function f = (f_1, ..., f_d).
type Multi struct {
	Dims []*Polynomial
}

// NewMulti validates that all dimensions share a variable count.
func NewMulti(dims ...*Polynomial) (*Multi, error) {
	if len(dims) == 0 {
		return nil, errors.New("poly: empty multi-polynomial")
	}
	nv := dims[0].NumVars
	for i, p := range dims {
		if p.NumVars != nv {
			return nil, fmt.Errorf("poly: dimension %d has %d vars, want %d", i, p.NumVars, nv)
		}
	}
	return &Multi{Dims: dims}, nil
}

// MustMulti is NewMulti but panics on error.
func MustMulti(dims ...*Polynomial) *Multi {
	m, err := NewMulti(dims...)
	if err != nil {
		panic(invariant.Violation("poly: %v", err))
	}
	return m
}

// NumVars returns the shared variable count.
func (f *Multi) NumVars() int { return f.Dims[0].NumVars }

// OutDim returns d, the output dimensionality.
func (f *Multi) OutDim() int { return len(f.Dims) }

// Degree returns λ, the largest monomial degree across all dimensions.
func (f *Multi) Degree() int {
	d := 0
	for _, p := range f.Dims {
		if pd := p.Degree(); pd > d {
			d = pd
		}
	}
	return d
}

// Eval evaluates all dimensions at x.
func (f *Multi) Eval(x []float64) []float64 {
	out := make([]float64, len(f.Dims))
	for t, p := range f.Dims {
		out[t] = p.Eval(x)
	}
	return out
}

// EvalSum evaluates Σ_x f(x) over the rows of a real matrix (the
// noiseless target F(X) of the paper).
func (f *Multi) EvalSum(rows [][]float64) []float64 {
	out := make([]float64, len(f.Dims))
	for _, x := range rows {
		for t, p := range f.Dims {
			out[t] += p.Eval(x)
		}
	}
	return out
}

// ErrOverflow reports that an integer evaluation exceeded int64.
var ErrOverflow = errors.New("poly: int64 overflow during integer evaluation")

// mulCheck multiplies with overflow detection.
func mulCheck(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	c := a * b
	if c/b != a {
		return 0, ErrOverflow
	}
	return c, nil
}

// addCheck adds with overflow detection.
func addCheck(a, b int64) (int64, error) {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		return 0, ErrOverflow
	}
	return c, nil
}

// Quantized is a Multi whose coefficients have been pre-processed per
// Algorithm 3 (lines 1–3): coefficient a_t[l] of a degree-λ_l monomial is
// scaled by γ^{1+λ−λ_l} and stochastically rounded, so that after the
// data itself is scaled by γ every monomial carries the same overall
// factor γ^{λ+1}.
type Quantized struct {
	Source *Multi
	Gamma  float64
	Lambda int       // degree λ of Source
	Coefs  [][]int64 // Coefs[t][l] = quantized coefficient
}

// Quantize performs the coefficient pre-processing with the supplied
// randomness (the coefficients are public, so this randomness carries no
// privacy weight — it only keeps the rounding unbiased).
func (f *Multi) Quantize(gamma float64, rng *randx.RNG) (*Quantized, error) {
	if gamma < 1 {
		return nil, fmt.Errorf("poly: gamma must be >= 1, got %v", gamma)
	}
	lambda := f.Degree()
	q := &Quantized{Source: f, Gamma: gamma, Lambda: lambda}
	for _, p := range f.Dims {
		cs := make([]int64, len(p.Monomials))
		for l, m := range p.Monomials {
			scale := math.Pow(gamma, float64(1+lambda-m.Degree()))
			if math.Abs(m.Coef)*scale+1 >= float64(1<<62) {
				return nil, ErrOverflow
			}
			cs[l] = rng.StochasticRound(scale * m.Coef)
		}
		q.Coefs = append(q.Coefs, cs)
	}
	return q, nil
}

// Scale returns γ^{λ+1}, the uniform amplification factor every monomial
// carries after coefficient and data quantization; the server divides the
// MPC output by it.
func (q *Quantized) Scale() float64 {
	return math.Pow(q.Gamma, float64(q.Lambda+1))
}

// EvalInt evaluates the quantized polynomial on a quantized record
// (integer vector), dimension by dimension, with overflow checking.
func (q *Quantized) EvalInt(x []int64) ([]int64, error) {
	out := make([]int64, len(q.Source.Dims))
	for t, p := range q.Source.Dims {
		var s int64
		for l, m := range p.Monomials {
			term := q.Coefs[t][l]
			var err error
			for j, e := range m.Exps {
				for k := 0; k < e; k++ {
					term, err = mulCheck(term, x[j])
					if err != nil {
						return nil, err
					}
				}
			}
			s, err = addCheck(s, term)
			if err != nil {
				return nil, err
			}
		}
		out[t] = s
	}
	return out, nil
}

// EvalIntSum evaluates Σ_i f̂(x̂_i) over the rows of a quantized matrix.
func (q *Quantized) EvalIntSum(x *quant.IntMatrix) ([]int64, error) {
	out := make([]int64, q.Source.OutDim())
	for i := 0; i < x.Rows; i++ {
		row, err := q.EvalInt(x.Row(i))
		if err != nil {
			return nil, err
		}
		for t, v := range row {
			out[t], err = addCheck(out[t], v)
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// SensitivityBound returns conservative L2 and L1 sensitivity bounds for
// the quantized evaluation when every record satisfies ‖x‖₂ <= c and the
// neighboring relation adds/removes one record. Per dimension t it bounds
// |f̂_t(x̂)| by Σ_l |â_t[l]| (γc+1)^{λ_l}; Δ₂ is the L2 norm of the
// per-dimension bounds and Δ₁ = min(Δ₂², √d·Δ₂) as in Lemma 4.
// Applications with tighter structure (PCA, LR) override this with the
// closed forms of Lemmas 5 and 7.
func (q *Quantized) SensitivityBound(c float64) (delta2, delta1 float64) {
	gc := q.Gamma*c + 1
	var sumSq float64
	for t, p := range q.Source.Dims {
		var bt float64
		for l, m := range p.Monomials {
			bt += math.Abs(float64(q.Coefs[t][l])) * math.Pow(gc, float64(m.Degree()))
		}
		sumSq += bt * bt
	}
	delta2 = math.Sqrt(sumSq)
	d := float64(q.Source.OutDim())
	delta1 = math.Min(delta2*delta2, math.Sqrt(d)*delta2)
	return delta2, delta1
}

// MaxAbsBound returns an upper bound on max_{‖x‖₂<=c} ‖f(x)‖₂ for the
// *unquantized* polynomial, bounding |x[j]| <= c per coordinate.
func (f *Multi) MaxAbsBound(c float64) float64 {
	var sumSq float64
	for _, p := range f.Dims {
		var bt float64
		for _, m := range p.Monomials {
			bt += math.Abs(m.Coef) * math.Pow(c, float64(m.Degree()))
		}
		sumSq += bt * bt
	}
	return math.Sqrt(sumSq)
}
