package core

import (
	"testing"

	"sqm/internal/linalg"
)

func TestStreamMatchesOneShotExactly(t *testing.T) {
	x := randMatrix(60, 6, 0.6, 30)
	p := Params{Gamma: 64, Mu: 100, NumClients: 6, Seed: 31}
	oneShot, _, err := Covariance(x, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCovarianceStream(6, p)
	if err != nil {
		t.Fatal(err)
	}
	// Same records, three uneven batches.
	for _, span := range [][2]int{{0, 13}, {13, 40}, {40, 60}} {
		batch := linalg.NewMatrix(span[1]-span[0], 6)
		for i := range batch.Data {
			batch.Data[i] = x.Data[span[0]*6+i]
		}
		if err := s.Add(batch); err != nil {
			t.Fatal(err)
		}
	}
	if s.Rows() != 60 {
		t.Fatalf("Rows = %d", s.Rows())
	}
	streamed, tr, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range oneShot.Data {
		if oneShot.Data[i] != streamed.Data[i] {
			t.Fatalf("entry %d: one-shot %v vs streamed %v", i, oneShot.Data[i], streamed.Data[i])
		}
	}
	if tr.Scale != 64*64 {
		t.Fatalf("Scale = %v", tr.Scale)
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewCovarianceStream(0, Params{Gamma: 4}); err == nil {
		t.Fatal("n=0 must be rejected")
	}
	if _, err := NewCovarianceStream(3, Params{Gamma: 4, Engine: EngineBGW, Parties: 4}); err == nil {
		t.Fatal("BGW streaming must be rejected")
	}
	s, err := NewCovarianceStream(3, Params{Gamma: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(linalg.NewMatrix(2, 4)); err == nil {
		t.Fatal("column mismatch must be rejected")
	}
}

func TestStreamCannotBeReused(t *testing.T) {
	s, err := NewCovarianceStream(2, Params{Gamma: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(randMatrix(5, 2, 0.5, 33)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(randMatrix(5, 2, 0.5, 34)); err == nil {
		t.Fatal("Add after Finalize must be rejected")
	}
	if _, _, err := s.Finalize(); err == nil {
		t.Fatal("double Finalize must be rejected")
	}
}

func TestStreamOverflowGuardAccumulates(t *testing.T) {
	// Each batch is fine alone; the accumulated row count must still
	// trip the field bound.
	s, err := NewCovarianceStream(2, Params{Gamma: 1 << 26, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	batch := randMatrix(1000, 2, 1, 35)
	sawOverflow := false
	for k := 0; k < 300; k++ {
		if err := s.Add(batch); err == ErrFieldOverflow {
			sawOverflow = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawOverflow {
		t.Fatal("accumulated batches should eventually trip the field bound")
	}
}
