package core

import (
	"math"
	"runtime"
	"testing"
)

func TestCovarianceNoiselessMatchesGram(t *testing.T) {
	x := randMatrix(30, 5, 0.5, 20)
	c, tr, err := Covariance(x, Params{Gamma: 2048, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Scale != 2048*2048 {
		t.Fatalf("Scale = %v, want γ²", tr.Scale)
	}
	truth := x.Gram()
	if diff := c.Sub(truth).MaxAbs(); diff > 0.01 {
		t.Fatalf("noiseless covariance off by %v", diff)
	}
	if !c.IsSymmetric(0) {
		t.Fatal("covariance estimate must be exactly symmetric")
	}
}

func TestCovarianceAccuracyImprovesWithGamma(t *testing.T) {
	x := randMatrix(20, 4, 0.5, 22)
	truth := x.Gram()
	prev := math.Inf(1)
	for _, gamma := range []float64{8, 64, 1024} {
		c, _, err := Covariance(x, Params{Gamma: gamma, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		diff := c.Sub(truth).FrobeniusNorm()
		if diff >= prev {
			t.Fatalf("gamma=%v: error %v did not shrink (prev %v)", gamma, diff, prev)
		}
		prev = diff
	}
}

func TestCovarianceNoiseIsSymmetricAndCalibrated(t *testing.T) {
	// Zero data ⇒ the output is the pure noise matrix: check symmetry
	// and the per-entry variance 2μ/γ⁴.
	x := randMatrix(1, 4, 0, 24) // zero matrix (scale 0)
	gamma, mu := 4.0, 1e4
	const trials = 2000
	var sumsq float64
	var count int
	for trial := 0; trial < trials; trial++ {
		c, _, err := Covariance(x, Params{Gamma: gamma, Mu: mu, NumClients: 4, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if !c.IsSymmetric(0) {
			t.Fatal("noise must be symmetric")
		}
		for a := 0; a < c.Rows; a++ {
			for b := a; b < c.Cols; b++ {
				sumsq += c.At(a, b) * c.At(a, b)
				count++
			}
		}
	}
	scale := gamma * gamma
	want := 2 * mu / (scale * scale)
	got := sumsq / float64(count)
	if got < 0.9*want || got > 1.1*want {
		t.Fatalf("noise variance = %v, want %v", got, want)
	}
}

func TestCovariancePlainAndBGWAgreeExactly(t *testing.T) {
	x := randMatrix(10, 4, 0.6, 25)
	base := Params{Gamma: 32, Mu: 100, Seed: 31}
	c1, _, err := Covariance(x, base)
	if err != nil {
		t.Fatal(err)
	}
	bg := base
	bg.Engine = EngineBGW
	bg.Parties = 4
	c2, tr2, err := Covariance(x, bg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1.Data {
		if c1.Data[i] != c2.Data[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, c1.Data[i], c2.Data[i])
		}
	}
	if tr2.Stats.Rounds != 3 {
		t.Fatalf("covariance protocol should take 3 rounds, got %d", tr2.Stats.Rounds)
	}
}

func TestCovarianceBGWWithMoreParties(t *testing.T) {
	x := randMatrix(6, 3, 0.5, 26)
	for _, parties := range []int{3, 5, 7} {
		base := Params{Gamma: 16, Mu: 10, Seed: 33}
		c1, _, err := Covariance(x, base)
		if err != nil {
			t.Fatal(err)
		}
		bg := base
		bg.Engine = EngineBGW
		bg.Parties = parties
		c2, _, err := Covariance(x, bg)
		if err != nil {
			t.Fatalf("parties=%d: %v", parties, err)
		}
		for i := range c1.Data {
			if c1.Data[i] != c2.Data[i] {
				t.Fatalf("parties=%d: entry %d differs", parties, i)
			}
		}
	}
}

func TestCovarianceParallelPathDeterministic(t *testing.T) {
	// Large enough to cross the parallel threshold (rows·pairs >= 2^22):
	// int64 partial sums are exact, so worker count must not matter.
	x := randMatrix(5200, 41, 0.5, 28)
	p := Params{Gamma: 32, Mu: 50, NumClients: 41, Seed: 29}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	a, _, err := Covariance(x, p)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(1)
	b, _, err := Covariance(x, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("entry %d differs across worker counts", i)
		}
	}
}

func TestCovarianceOverflowGuard(t *testing.T) {
	x := randMatrix(4, 2, 1, 27)
	if _, _, err := Covariance(x, Params{Gamma: 1e9, Seed: 1}); err != ErrFieldOverflow {
		t.Fatalf("err = %v, want ErrFieldOverflow", err)
	}
}

func BenchmarkCovariancePlain100x50(b *testing.B) {
	x := randMatrix(100, 50, 0.5, 1)
	p := Params{Gamma: 1024, Mu: 1e6, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Covariance(x, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCovarianceBGW20x10(b *testing.B) {
	x := randMatrix(20, 10, 0.5, 1)
	p := Params{Gamma: 64, Mu: 100, Engine: EngineBGW, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Covariance(x, p); err != nil {
			b.Fatal(err)
		}
	}
}
