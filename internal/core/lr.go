package core

import (
	"fmt"
	"math"
	"time"

	"sqm/internal/bgw"
	"sqm/internal/circuit"
	"sqm/internal/linalg"
	"sqm/internal/mathx"
	"sqm/internal/quant"
	"sqm/internal/randx"
)

// LRProtocol holds the per-training-run state of the logistic-regression
// instantiation (§V-B). The clients quantize and (for the BGW engine)
// secret-share their feature columns and the label column once; each
// SGD round then evaluates the degree-2 polynomial gradient of Eq. (9)
//
//	f(w, (x, y)) = ½·x + ⟨w/4, x⟩·x − y·x
//
// on a shared-randomness batch with fresh Skellam noise. Because the
// weight vector is public, folding it in is a local linear combination;
// only one fused inner product per output coordinate needs a resharing.
type LRProtocol struct {
	p        Params
	m, d     int
	gammaInt int64 // γ as an exact integer (the coefficient of −y·x after pre-processing)

	pub        *randx.RNG
	clientRNGs []*randx.RNG

	// Plain engine state.
	feat *quant.IntMatrix // m × d quantized features
	lab  []int64          // γ·y (exact for y ∈ {0,1})

	// MPC engine state (nil for EnginePlain).
	eng        bgw.Evaluator
	featShares []bgw.Vec
	labShares  bgw.Vec
	setupStats bgw.Stats

	// Compiled gradient plans keyed by batch size: the circuit shape
	// depends only on |batch| and d, so each shape compiles once and
	// re-executes every round with fresh bindings.
	plans map[int]*lrPlan
}

// lrPlan is one compiled gradient circuit plus its output indices.
type lrPlan struct {
	plan   *circuit.Plan
	outIdx []int
}

// NewLRProtocol quantizes and (for EngineBGW) shares the training data.
// Labels must be 0/1; features are the first d columns and the label is
// the (d+1)-th column of the vertical partition, so p.NumClients
// defaults to d+1 as in the paper's experiments.
func NewLRProtocol(features *linalg.Matrix, labels []float64, p Params) (*LRProtocol, error) {
	if features.Rows != len(labels) {
		return nil, fmt.Errorf("core: %d rows but %d labels", features.Rows, len(labels))
	}
	if err := p.normalize(features.Cols + 1); err != nil {
		return nil, err
	}
	if !mathx.EqualWithin(p.Gamma, math.Trunc(p.Gamma), 0) {
		return nil, fmt.Errorf("core: LR protocol requires an integer gamma, got %v", p.Gamma)
	}
	lr := &LRProtocol{p: p, m: features.Rows, d: features.Cols, gammaInt: int64(p.Gamma)}
	lr.pub, lr.clientRNGs = rngFamily(p.Seed, p.NumClients)
	lr.feat = quantizeByClient(features, p, lr.clientRNGs)

	labelClient := p.clientOf(features.Cols, features.Cols+1)
	g := lr.clientRNGs[labelClient]
	lr.lab = make([]int64, lr.m)
	for i, y := range labels {
		if !mathx.EqualWithin(y, 0, 0) && !mathx.EqualWithin(y, 1, 0) {
			return nil, fmt.Errorf("core: label %v is not 0/1", y)
		}
		lr.lab[i] = g.StochasticRound(p.Gamma * y) // exact: γ·y is integral
	}

	if p.Engine.IsMPC() {
		eng, err := p.newEvaluator(0x17a3)
		if err != nil {
			return nil, err
		}
		lr.eng = eng
		lr.plans = make(map[int]*lrPlan)
		// The one-time data-sharing phase is its own single-round plan;
		// the column handles it produces persist inside the engine and
		// feed every gradient plan through external bindings.
		sb := circuit.NewBuilder(p.Parties, p.Threshold).SetRecorder(p.Recorder)
		featH := make([]bgw.Vec, lr.d)
		for j := 0; j < lr.d; j++ {
			featH[j] = sb.InputVec(p.partyOf(p.clientOf(j, lr.d+1)), lr.feat.Col(j))
		}
		labH := sb.InputVec(p.partyOf(labelClient), lr.lab)
		setupPlan, err := sb.Compile()
		if err != nil {
			eng.Close()
			return nil, err
		}
		sres, err := setupPlan.Execute(eng, circuit.Bindings{})
		if err != nil {
			eng.Close()
			return nil, err
		}
		lr.featShares = make([]bgw.Vec, lr.d)
		for j := 0; j < lr.d; j++ {
			lr.featShares[j] = sres.VecOf(featH[j])
		}
		lr.labShares = sres.VecOf(labH)
		lr.setupStats = eng.Stats()
		if err := eng.Err(); err != nil {
			eng.Close()
			return nil, err
		}
	}
	return lr, nil
}

// Close releases the MPC backend (party goroutines, sockets); no-op for
// the plain engine. The protocol is unusable afterwards.
func (lr *LRProtocol) Close() error {
	if lr.eng != nil {
		return lr.eng.Close()
	}
	return nil
}

// NumRecords returns m.
func (lr *LRProtocol) NumRecords() int { return lr.m }

// SampleBatch draws the shared-randomness Poisson batch of one round
// (its membership is known to the clients but not the server).
func (lr *LRProtocol) SampleBatch(q float64) []int {
	return lr.pub.BernoulliSubset(lr.m, q)
}

// GradientSum evaluates Σ_{i∈batch} f(w, (x_i, y_i)) + Sk(μ) per
// coordinate and returns the server's down-scaled estimate (divide by
// γ³, the γ^{λ+1} of the degree-2 polynomial).
func (lr *LRProtocol) GradientSum(w []float64, batch []int) ([]float64, *Trace, error) {
	if len(w) != lr.d {
		return nil, nil, fmt.Errorf("core: weight dim %d != %d", len(w), lr.d)
	}
	start := time.Now()
	p := lr.p
	// Coefficient pre-processing (public): ŵ_j = round(γ·w_j/4) for the
	// degree-2 monomials, qHalf = round(γ²·½) for the degree-1 term.
	wq := make([]int64, lr.d)
	for j, wj := range w {
		wq[j] = lr.pub.StochasticRound(p.Gamma * wj / 4)
	}
	qHalf := lr.pub.StochasticRound(p.Gamma * p.Gamma / 2)

	noiseStart := time.Now()
	noise := sampleNoiseShares(lr.clientRNGs, lr.d, p.Mu)
	noiseSample := time.Since(noiseStart)

	if err := lr.checkBound(wq, qHalf, len(batch)); err != nil {
		return nil, nil, err
	}

	tr := &Trace{Scale: math.Pow(p.Gamma, 3), Lat: p.Latency}
	var scaled []int64
	var err error
	switch {
	case p.Engine == EnginePlain:
		scaled = lr.plainGradient(wq, qHalf, batch, noise, tr)
	case p.Engine.IsMPC():
		scaled, err = lr.mpcGradient(wq, qHalf, batch, noise, tr)
	default:
		err = errUnknownEngine(p.Engine)
	}
	if err != nil {
		return nil, nil, err
	}
	tr.Scaled = scaled
	tr.NoiseCompute += noiseSample
	tr.Compute = time.Since(start)
	est := make([]float64, lr.d)
	for t, v := range scaled {
		est[t] = float64(v) / tr.Scale
	}
	return est, tr, nil
}

// checkBound statically verifies that the scaled gradient sum plus the
// noise tail fits the signed field range.
func (lr *LRProtocol) checkBound(wq []int64, qHalf int64, batch int) error {
	maxFeat := float64(lr.feat.MaxAbs())
	var wAbs float64
	for _, v := range wq {
		wAbs += math.Abs(float64(v))
	}
	// |u_i| <= qHalf + Σ|ŵ_j|·maxFeat + γ².
	u := math.Abs(float64(qHalf)) + wAbs*maxFeat + lr.p.Gamma*lr.p.Gamma
	bound := maxFeat*u*float64(batch) + noiseMargin(lr.p.Mu)
	return checkFieldBound(bound)
}

// plainGradient: grad_t = Σ_{i∈batch} x̂_{it}·(qHalf + Σ_j ŵ_j x̂_{ij} − γ·ŷ_i).
func (lr *LRProtocol) plainGradient(wq []int64, qHalf int64, batch []int, noise [][]int64, tr *Trace) []int64 {
	grad := make([]int64, lr.d)
	for _, i := range batch {
		row := lr.feat.Row(i)
		var s int64
		for j, xj := range row {
			s += wq[j] * xj
		}
		u := qHalf + s - lr.gammaInt*lr.lab[i]
		for t, xt := range row {
			grad[t] += xt * u
		}
	}
	noiseStart := time.Now()
	for _, shares := range noise {
		for t, z := range shares {
			grad[t] += z
		}
	}
	tr.NoiseCompute += time.Since(noiseStart)
	return grad
}

// gradientPlan compiles (and caches) the gradient circuit for a batch
// of B records: the public coefficients enter as const parameters, the
// batch's feature and label shares as external bindings, the per-client
// noise shares as input parameters. Depth 1 (one fused inner product
// per coordinate), so the plan runs in exactly three wire rounds —
// noise input, batched resharing, batched output — for any B.
func (lr *LRProtocol) gradientPlan(B int) *lrPlan {
	if pl, ok := lr.plans[B]; ok {
		return pl
	}
	p := lr.p
	b := circuit.NewBuilder(p.Parties, p.Threshold).SetRecorder(p.Recorder)
	wqP := make([]circuit.ConstID, lr.d)
	for j := range wqP {
		wqP[j] = b.ConstParam()
	}
	qHalfP := b.ConstParam()

	// External bindings, in batch order: d feature shares then the
	// label share of each record.
	feats := make([][]bgw.Val, B)
	labs := make([]bgw.Val, B)
	for bi := 0; bi < B; bi++ {
		feats[bi] = make([]bgw.Val, lr.d)
		for j := 0; j < lr.d; j++ {
			feats[bi][j] = b.ExtVal()
		}
		labs[bi] = b.ExtVal()
	}

	// Per-client noise share parameters, coordinate-major.
	noiseShared := make([]bgw.Val, lr.d)
	for t := 0; t < lr.d; t++ {
		acc := b.Zero()
		for j := 0; j < p.NumClients; j++ {
			acc = b.Add(acc, b.InputParam(p.partyOf(j)))
		}
		noiseShared[t] = acc
	}

	// u_i = qHalf + Σ_j ŵ_j x̂_{ij} − γ·ŷ_i, local per record.
	us := make([]bgw.Val, B)
	for bi := 0; bi < B; bi++ {
		acc := b.Zero()
		for j := 0; j < lr.d; j++ {
			acc = b.Add(acc, b.MulConstP(feats[bi][j], wqP[j]))
		}
		acc = b.Sub(acc, b.MulConst(labs[bi], lr.gammaInt))
		us[bi] = b.AddConstP(acc, qHalfP)
	}

	outIdx := make([]int, lr.d)
	xs := make([]bgw.Val, B)
	for t := 0; t < lr.d; t++ {
		for bi := 0; bi < B; bi++ {
			xs[bi] = feats[bi][t]
		}
		outIdx[t] = b.OpenIdx(b.Add(b.InnerProduct(xs, us), noiseShared[t]))
	}
	pl := &lrPlan{plan: b.MustCompile(), outIdx: outIdx}
	lr.plans[B] = pl
	return pl
}

// mpcGradient runs one SGD round over secret shares by executing the
// compiled gradient plan: the public weights fold in locally, all fused
// inner products reshare in a single batched round, and the round count
// derives from the plan's depth.
func (lr *LRProtocol) mpcGradient(wq []int64, qHalf int64, batch []int, noise [][]int64, tr *Trace) ([]int64, error) {
	eng := lr.eng
	before := eng.Stats()
	pl := lr.gradientPlan(len(batch))

	consts := make([]int64, 0, lr.d+1)
	consts = append(consts, wq...)
	consts = append(consts, qHalf)

	// Gather the batch's feature and label handles; element extraction
	// is local, so this costs no wire traffic.
	ext := make([]bgw.Val, 0, len(batch)*(lr.d+1))
	for _, i := range batch {
		for j := 0; j < lr.d; j++ {
			ext = append(ext, eng.At(lr.featShares[j], i))
		}
		ext = append(ext, eng.At(lr.labShares, i))
	}

	noiseStart := time.Now()
	inputs := make([]int64, 0, lr.d*len(noise))
	for t := 0; t < lr.d; t++ {
		for _, shares := range noise {
			inputs = append(inputs, shares[t])
		}
	}
	tr.NoiseCompute += time.Since(noiseStart)
	tr.NoiseRounds++

	res, err := pl.plan.Execute(eng, circuit.Bindings{Consts: consts, Inputs: inputs, Ext: ext})
	if err != nil {
		return nil, err
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}

	scaled := make([]int64, lr.d)
	for t := range scaled {
		scaled[t] = res.Opened(pl.outIdx[t])
	}

	after := eng.Stats()
	tr.Stats = bgw.Stats{
		Rounds:   after.Rounds - before.Rounds,
		Frames:   after.Frames - before.Frames,
		Messages: after.Messages - before.Messages,
		Bytes:    after.Bytes - before.Bytes,
		FieldOps: after.FieldOps - before.FieldOps,
	}
	return scaled, nil
}

// SetupStats returns the protocol counters of the one-time data-sharing
// phase (EngineBGW only; zero otherwise).
func (lr *LRProtocol) SetupStats() bgw.Stats { return lr.setupStats }
