package core

import (
	"fmt"
	"math"
	"time"

	"sqm/internal/bgw"
	"sqm/internal/circuit"
	"sqm/internal/invariant"
	"sqm/internal/linalg"
	"sqm/internal/poly"
	"sqm/internal/quant"
	"sqm/internal/randx"
)

// EvaluatePolynomialSum runs Algorithm 3: it estimates
// Σ_{x∈X} f(x) for a d-dimensional polynomial f over the vertically
// partitioned rows of X, under distributed DP with aggregate Skellam
// parameter p.Mu. The returned Trace carries the raw scaled output and
// the protocol cost counters.
func EvaluatePolynomialSum(f *poly.Multi, x *linalg.Matrix, p Params) ([]float64, *Trace, error) {
	if f.NumVars() != x.Cols {
		return nil, nil, fmt.Errorf("core: polynomial has %d vars but data has %d columns", f.NumVars(), x.Cols)
	}
	if err := p.normalize(x.Cols); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	pub, clientRNGs := rngFamily(p.Seed, p.NumClients)

	q, err := f.Quantize(p.Gamma, pub)
	if err != nil {
		return nil, nil, err
	}
	// Meter the release: one Skellam mechanism at Lemma 4's generic
	// sensitivity for unit-norm records. Tighter application-level
	// bounds account at their own layer with Acct left nil here.
	if p.Acct != nil {
		d2, d1 := q.SensitivityBound(1)
		p.Acct.AddSkellam(d1, d2, p.Mu)
	}
	qd := quantizeByClient(x, p, clientRNGs)

	noiseStart := time.Now()
	noise := sampleNoiseShares(clientRNGs, f.OutDim(), p.Mu)
	noiseSample := time.Since(noiseStart)

	tr := &Trace{Scale: q.Scale(), Lat: p.Latency}
	var scaled []int64
	switch {
	case p.Engine == EnginePlain:
		scaled, err = plainPolySum(q, qd, noise, tr)
	case p.Engine.IsMPC():
		scaled, err = mpcPolySum(q, qd, noise, &p, tr)
	default:
		err = errUnknownEngine(p.Engine)
	}
	if err != nil {
		return nil, nil, err
	}
	tr.Scaled = scaled
	tr.NoiseCompute += noiseSample
	tr.Compute = time.Since(start)

	est := make([]float64, len(scaled))
	for t, v := range scaled {
		est[t] = float64(v) / tr.Scale
	}
	return est, tr, nil
}

// EvaluateMonomialSum runs Algorithm 1 for a single one-dimensional
// monomial (whose coefficient the server applies in post-processing, as
// the paper assumes coefficient 1 inside the protocol). The quantized
// aggregate is down-scaled by γ^λ.
func EvaluateMonomialSum(m poly.Monomial, x *linalg.Matrix, p Params) (float64, *Trace, error) {
	if len(m.Exps) != x.Cols {
		return 0, nil, fmt.Errorf("core: monomial has %d vars but data has %d columns", len(m.Exps), x.Cols)
	}
	lambda := m.Degree()
	if lambda < 1 {
		return 0, nil, fmt.Errorf("core: Algorithm 1 needs degree >= 1, got %d", lambda)
	}
	if err := p.normalize(x.Cols); err != nil {
		return 0, nil, err
	}
	start := time.Now()
	_, clientRNGs := rngFamily(p.Seed, p.NumClients)
	qd := quantizeByClient(x, p, clientRNGs)

	// Meter the release: a single degree-λ monomial with unit
	// coefficient bounds one quantized record by (γ+1)^λ (Lemma 4 with
	// d = 1, so Δ₁ = Δ₂).
	if p.Acct != nil {
		d2 := math.Pow(p.Gamma+1, float64(lambda))
		p.Acct.AddSkellam(d2, d2, p.Mu)
	}

	noiseStart := time.Now()
	noise := sampleNoiseShares(clientRNGs, 1, p.Mu)
	noiseSample := time.Since(noiseStart)

	// Evaluate with unit coefficient: reuse the quantized-poly machinery
	// with an identity coefficient (degree gap zero ⇒ scale γ^λ, not
	// γ^{λ+1}).
	unit := poly.MustMulti(poly.MustPolynomial(x.Cols, poly.Monomial{Coef: 1, Exps: m.Exps}))
	q := &poly.Quantized{Source: unit, Gamma: 1, Lambda: 0, Coefs: [][]int64{{1}}}

	tr := &Trace{Scale: math.Pow(p.Gamma, float64(lambda)), Lat: p.Latency}
	var scaled []int64
	var err error
	switch {
	case p.Engine == EnginePlain:
		scaled, err = plainPolySum(q, qd, noise, tr)
	case p.Engine.IsMPC():
		scaled, err = mpcPolySum(q, qd, noise, &p, tr)
	default:
		err = errUnknownEngine(p.Engine)
	}
	if err != nil {
		return 0, nil, err
	}
	tr.Scaled = scaled
	tr.NoiseCompute += noiseSample
	tr.Compute = time.Since(start)
	return m.Coef * float64(scaled[0]) / tr.Scale, tr, nil
}

// quantizeByClient runs Algorithm 2 on every column using the owning
// client's private randomness.
func quantizeByClient(x *linalg.Matrix, p Params, clientRNGs []*randx.RNG) *quant.IntMatrix {
	out := quant.NewIntMatrix(x.Rows, x.Cols)
	for j := 0; j < x.Cols; j++ {
		g := clientRNGs[p.clientOf(j, x.Cols)]
		for i := 0; i < x.Rows; i++ {
			out.Set(i, j, g.StochasticRound(p.Gamma*x.At(i, j)))
		}
	}
	return out
}

// plainPolySum evaluates the quantized polynomial sum directly and adds
// the aggregated noise. Output-identical to the BGW engine.
func plainPolySum(q *poly.Quantized, data *quant.IntMatrix, noise [][]int64, tr *Trace) ([]int64, error) {
	sum, err := q.EvalIntSum(data)
	if err != nil {
		return nil, err
	}
	noiseStart := time.Now()
	for _, shares := range noise {
		for t, z := range shares {
			sum[t] += z
		}
	}
	tr.NoiseCompute += time.Since(noiseStart)
	return sum, nil
}

// mpcPolySum evaluates the quantized polynomial over secret shares with
// whichever Evaluator backend p.Engine selects. The circuit is recorded
// into a level-scheduled plan: all columns share in one input round,
// every multiplication level runs as one batched degree-reduction
// round, and the outputs open in one batched round — rounds derive from
// the compiled depth, not hand bookkeeping.
func mpcPolySum(q *poly.Quantized, data *quant.IntMatrix, noise [][]int64, p *Params, tr *Trace) ([]int64, error) {
	if err := checkPolyBound(q, data, p.Mu); err != nil {
		return nil, err
	}
	n, m := data.Cols, data.Rows
	b := circuit.NewBuilder(p.Parties, p.Threshold)
	cols := make([]bgw.Vec, n)
	for j := 0; j < n; j++ {
		owner := p.partyOf(p.clientOf(j, n))
		cols[j] = b.InputVec(owner, data.Col(j))
	}
	// Per-client noise shares are inputs of the same round.
	noiseStart := time.Now()
	d := q.Source.OutDim()
	noiseShared := make([]bgw.Val, d)
	for t := 0; t < d; t++ {
		acc := b.Zero()
		for j, shares := range noise {
			acc = b.Add(acc, b.Input(p.partyOf(j), shares[t]))
		}
		noiseShared[t] = acc
	}
	tr.NoiseCompute += time.Since(noiseStart)
	tr.NoiseRounds++ // the noise inputs share the input round; attribute one round to DP

	// Pre-compute column sums (local) for degree-1 monomials.
	var colSum []bgw.Val
	lazyColSum := func(j int) bgw.Val {
		if colSum == nil {
			colSum = make([]bgw.Val, n)
		}
		if colSum[j] == nil {
			acc := b.Zero()
			for i := 0; i < m; i++ {
				acc = b.Add(acc, b.At(cols[j], i))
			}
			colSum[j] = acc
		}
		return colSum[j]
	}

	outIdx := make([]int, d)
	for t, pol := range q.Source.Dims {
		acc := b.Zero()
		for l, mono := range pol.Monomials {
			coef := q.Coefs[t][l]
			switch deg := mono.Degree(); {
			case deg == 0:
				acc = b.AddConst(acc, coef*int64(m))
			case deg == 1:
				j := singleVar(mono.Exps)
				acc = b.Add(acc, b.MulConst(lazyColSum(j), coef))
			case deg == 2:
				a, c := twoVars(mono.Exps)
				acc = b.Add(acc, b.MulConst(b.Dot(cols[a], cols[c]), coef))
			default:
				// General chain: per record, multiply the factors one
				// level at a time; the scheduler batches every record's
				// k-th multiplication into one round.
				sum := b.Zero()
				for i := 0; i < m; i++ {
					var prod bgw.Val
					for j, e := range mono.Exps {
						for k := 0; k < e; k++ {
							if prod == nil {
								prod = b.At(cols[j], i)
							} else {
								prod = b.Mul(prod, b.At(cols[j], i))
							}
						}
					}
					sum = b.Add(sum, prod)
				}
				acc = b.Add(acc, b.MulConst(sum, coef))
			}
		}
		outIdx[t] = b.OpenIdx(b.Add(acc, noiseShared[t]))
	}
	plan, err := b.Compile()
	if err != nil {
		return nil, err
	}

	eng, err := p.newEvaluator(0xb6d5)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	res, err := plan.Execute(eng, circuit.Bindings{})
	if err != nil {
		return nil, err
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	scaled := make([]int64, d)
	for t := range scaled {
		scaled[t] = res.Opened(outIdx[t])
	}
	tr.Stats = eng.Stats()
	return scaled, nil
}

// checkPolyBound statically bounds the aggregate against the field's
// signed range using the per-record monomial bounds and the noise tail.
func checkPolyBound(q *poly.Quantized, data *quant.IntMatrix, mu float64) error {
	maxAbs := float64(data.MaxAbs())
	var worst float64
	for t, pol := range q.Source.Dims {
		var bt float64
		for l, mono := range pol.Monomials {
			bt += math.Abs(float64(q.Coefs[t][l])) * math.Pow(maxAbs, float64(mono.Degree()))
		}
		if bt > worst {
			worst = bt
		}
	}
	bound := worst*float64(data.Rows) + noiseMargin(mu)
	return checkFieldBound(bound)
}

func singleVar(exps []int) int {
	for j, e := range exps {
		if e == 1 {
			return j
		}
	}
	panic(invariant.Violation("core: not a degree-1 monomial"))
}

// twoVars returns the (possibly equal) variable pair of a degree-2
// monomial.
func twoVars(exps []int) (int, int) {
	first := -1
	for j, e := range exps {
		switch e {
		case 1:
			if first < 0 {
				first = j
			} else {
				return first, j
			}
		case 2:
			return j, j
		}
	}
	panic(invariant.Violation("core: not a degree-2 monomial"))
}
