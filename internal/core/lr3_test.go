package core

import (
	"math"
	"testing"

	"sqm/internal/bgw"
	"sqm/internal/linalg"
	"sqm/internal/randx"
)

// approxGradient3 is the order-3 Taylor gradient in float64.
func approxGradient3(x *linalg.Matrix, y []float64, w []float64, batch []int) []float64 {
	grad := make([]float64, x.Cols)
	for _, i := range batch {
		row := x.Row(i)
		s := linalg.Dot(w, row)
		u := 0.5 + s/4 - s*s*s/48 - y[i]
		for t, v := range row {
			grad[t] += v * u
		}
	}
	return grad
}

func TestLR3Validation(t *testing.T) {
	x, y := lrTestData(10, 4, 1)
	if _, err := NewLR3Protocol(x, y[:5], Params{Gamma: 64}, 0); err == nil {
		t.Fatal("row/label mismatch must be rejected")
	}
	if _, err := NewLR3Protocol(x, y, Params{Gamma: 64.5}, 0); err == nil {
		t.Fatal("non-integer gamma must be rejected")
	}
	if _, err := NewLR3Protocol(x, y, Params{Gamma: 64}, -1); err == nil {
		t.Fatal("negative precision must be rejected")
	}
	bad := append([]float64(nil), y...)
	bad[0] = 2
	if _, err := NewLR3Protocol(x, bad, Params{Gamma: 64}, 0); err == nil {
		t.Fatal("non-binary label must be rejected")
	}
	lr, err := NewLR3Protocol(x, y, Params{Gamma: 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lr.GradientSum(make([]float64, 3), []int{0}); err == nil {
		t.Fatal("wrong weight dim must be rejected")
	}
}

func TestLR3Scale(t *testing.T) {
	x, y := lrTestData(5, 3, 2)
	lr, err := NewLR3Protocol(x, y, Params{Gamma: 16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lr.Scale(), 8*math.Pow(16, 5); got != want {
		t.Fatalf("Scale = %v, want %v", got, want)
	}
}

func TestLR3NoiselessMatchesCubicGradient(t *testing.T) {
	x, y := lrTestData(40, 6, 3)
	lr, err := NewLR3Protocol(x, y, Params{Gamma: 256, Seed: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := randx.New(9)
	w := g.GaussianVec(6, 0.3)
	linalg.ClipNorm(w, 1)
	batch := []int{0, 5, 9, 20, 33}
	got, tr, err := lr.GradientSum(w, batch)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Scale != lr.Scale() {
		t.Fatal("trace scale mismatch")
	}
	want := approxGradient3(x, y, w, batch)
	for t2 := range want {
		// The cube term's coefficients quantize coarsely (spread over
		// three factors), so tolerance is looser than order 1.
		if e := math.Abs(got[t2] - want[t2]); e > 0.05 {
			t.Fatalf("coord %d: |%v − %v| = %v", t2, got[t2], want[t2], e)
		}
	}
}

func TestLR3AccuracyImprovesWithGamma(t *testing.T) {
	x, y := lrTestData(30, 4, 5)
	g := randx.New(11)
	w := g.GaussianVec(4, 0.3)
	linalg.ClipNorm(w, 1)
	batch := []int{1, 4, 9, 16}
	want := approxGradient3(x, y, w, batch)
	prev := math.Inf(1)
	for _, gamma := range []float64{16, 64, 256} {
		lr, err := NewLR3Protocol(x, y, Params{Gamma: gamma, Seed: 6}, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := lr.GradientSum(w, batch)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for t2 := range want {
			if e := math.Abs(got[t2] - want[t2]); e > worst {
				worst = e
			}
		}
		if worst >= prev {
			t.Fatalf("gamma=%v: error %v did not shrink (prev %v)", gamma, worst, prev)
		}
		prev = worst
	}
}

func TestLR3PlainAndBGWAgree(t *testing.T) {
	x, y := lrTestData(15, 4, 7)
	base := Params{Gamma: 64, Mu: 25, Seed: 41}
	a, err := NewLR3Protocol(x, y, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	bg := base
	bg.Engine = EngineBGW
	b, err := NewLR3Protocol(x, y, bg, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := randx.New(17)
	w := g.GaussianVec(4, 0.3)
	batch := []int{0, 3, 7, 11}
	g1, tr1, err := a.GradientSum(w, batch)
	if err != nil {
		t.Fatal(err)
	}
	g2, tr2, err := b.GradientSum(w, batch)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range g1 {
		if tr1.Scaled[t2] != tr2.Scaled[t2] || g1[t2] != g2[t2] {
			t.Fatalf("coord %d: plain %d vs BGW %d", t2, tr1.Scaled[t2], tr2.Scaled[t2])
		}
	}
	// Two cube rounds + noise + fused mult + output.
	if tr2.Stats.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", tr2.Stats.Rounds)
	}
}

func TestLR3NoiseVariance(t *testing.T) {
	x, y := lrTestData(5, 3, 8)
	gamma, mu := 16.0, 1e8
	const trials = 3000
	var sumsq float64
	for trial := 0; trial < trials; trial++ {
		lr, err := NewLR3Protocol(x, y, Params{Gamma: gamma, Mu: mu, Seed: uint64(trial)}, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := lr.GradientSum([]float64{0.1, -0.2, 0.3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range got {
			sumsq += v * v
		}
	}
	scale := 8 * math.Pow(gamma, 5)
	want := 2 * mu / (scale * scale)
	got := sumsq / float64(trials*3)
	if got < 0.9*want || got > 1.1*want {
		t.Fatalf("noise variance = %v, want %v", got, want)
	}
}

func TestLR3OverflowGuardAtLargeGamma(t *testing.T) {
	x, y := lrTestData(10, 4, 9)
	lr, err := NewLR3Protocol(x, y, Params{Gamma: 1 << 12, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// γ⁵·k³ = 2^60·2^9 wildly exceeds the field.
	if _, _, err := lr.GradientSum(make([]float64, 4), []int{0, 1}); err != ErrFieldOverflow {
		t.Fatalf("err = %v, want ErrFieldOverflow", err)
	}
}

func TestLR3SensitivityDominatesLeadingTerm(t *testing.T) {
	x, y := lrTestData(5, 8, 10)
	lr, err := NewLR3Protocol(x, y, Params{Gamma: 128}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, d1 := lr.Sensitivity()
	lead := 0.75 * lr.Scale() // ¾·k³γ⁵, the order-1 analogue
	if d2 < lead {
		t.Fatalf("Delta2 = %v below the leading term %v", d2, lead)
	}
	if d1 > d2*d2+1 {
		t.Fatalf("Delta1 = %v inconsistent with Delta2 = %v", d1, d2)
	}
}

// TestLR3PlannedRoundsIndependentOfBatch is the scheduler's acceptance
// gate on the cube circuit: for any batch size B, planned execution
// over the actor engine must run exactly five wire rounds (input,
// square, cube, fused inner product, output — i.e. multiplicative
// depth plus input and output rounds) and the same number of frames,
// because every level travels as one batched exchange. Outputs must
// stay bit-identical to the plain engine.
func TestLR3PlannedRoundsIndependentOfBatch(t *testing.T) {
	x, y := lrTestData(16, 3, 9)
	base := Params{Gamma: 16, Mu: 20, Seed: 23}
	g := randx.New(29)
	w := g.GaussianVec(3, 0.3)

	run := func(kind EngineKind, parties int, batch []int) ([]int64, bgw.Stats) {
		t.Helper()
		p := base
		p.Engine = kind
		p.Parties = parties
		proto, err := NewLR3Protocol(x, y, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer proto.Close()
		_, tr, err := proto.GradientSum(w, batch)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Scaled, tr.Stats
	}

	small := []int{1, 4}
	large := []int{0, 2, 5, 7, 9, 11}

	plainSmall, _ := run(EnginePlain, 0, small)
	plainLarge, _ := run(EnginePlain, 0, large)
	actorSmall, stSmall := run(EngineActorBGW, 4, small)
	actorLarge, stLarge := run(EngineActorBGW, 4, large)

	for d := range plainSmall {
		if actorSmall[d] != plainSmall[d] {
			t.Errorf("B=2 dim %d: actor %d != plain %d", d, actorSmall[d], plainSmall[d])
		}
		if actorLarge[d] != plainLarge[d] {
			t.Errorf("B=6 dim %d: actor %d != plain %d", d, actorLarge[d], plainLarge[d])
		}
	}
	if stSmall.Rounds != 5 || stLarge.Rounds != 5 {
		t.Errorf("rounds: B=2 %d, B=6 %d, want 5 and 5", stSmall.Rounds, stLarge.Rounds)
	}
	if stSmall.Frames != stLarge.Frames {
		t.Errorf("frames depend on batch size: B=2 %d, B=6 %d", stSmall.Frames, stLarge.Frames)
	}
	if stSmall.Frames == 0 {
		t.Error("frames not metered")
	}
	if stSmall.Messages >= stLarge.Messages {
		t.Errorf("logical messages should grow with B: B=2 %d, B=6 %d", stSmall.Messages, stLarge.Messages)
	}
}
