package core

import (
	"fmt"
	"time"

	"sqm/internal/linalg"
	"sqm/internal/randx"
)

// CovarianceStream accumulates the quantized covariance over record
// batches, so databases too large for memory (the KDDCUP shape and
// beyond) can be processed in passes: each batch is quantized with the
// owning clients' randomness, folded into the integer Gram accumulator,
// and discarded. Finalize injects the per-client Skellam shares and
// applies the server's down-scaling — the one-shot Covariance and the
// streamed version are distribution-identical, and bit-identical when
// the same records arrive in the same order.
//
// The plaintext engine only: streaming the BGW variant would require
// retaining shares of every batch, which defeats the purpose.
type CovarianceStream struct {
	p          Params
	n          int
	rows       int
	upper      []int64
	clientRNGs []*randx.RNG
	start      time.Time
	done       bool
}

// NewCovarianceStream prepares an accumulator for n attributes.
func NewCovarianceStream(n int, p Params) (*CovarianceStream, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: need at least one attribute, got %d", n)
	}
	if err := p.normalize(n); err != nil {
		return nil, err
	}
	if p.Engine != EnginePlain {
		return nil, fmt.Errorf("core: streaming covariance supports the plain engine only")
	}
	s := &CovarianceStream{p: p, n: n, upper: make([]int64, n*(n+1)/2), start: time.Now()}
	_, s.clientRNGs = rngFamily(p.Seed, p.NumClients)
	return s, nil
}

// Add folds one batch of records (rows of x) into the accumulator.
func (s *CovarianceStream) Add(x *linalg.Matrix) error {
	if s.done {
		return fmt.Errorf("core: stream already finalized")
	}
	if x.Cols != s.n {
		return fmt.Errorf("core: batch has %d columns, want %d", x.Cols, s.n)
	}
	qd := quantizeByClient(x, s.p, s.clientRNGs)
	maxAbs := float64(qd.MaxAbs())
	newRows := s.rows + x.Rows
	if err := checkFieldBound(maxAbs*maxAbs*float64(newRows) + noiseMargin(s.p.Mu)); err != nil {
		return err
	}
	for i := 0; i < qd.Rows; i++ {
		row := qd.Row(i)
		idx := 0
		for a := 0; a < s.n; a++ {
			va := row[a]
			if va == 0 {
				idx += s.n - a
				continue
			}
			for b := a; b < s.n; b++ {
				s.upper[idx] += va * row[b]
				idx++
			}
		}
	}
	s.rows = newRows
	return nil
}

// Rows returns the records accumulated so far.
func (s *CovarianceStream) Rows() int { return s.rows }

// Finalize injects the Skellam noise and returns the covariance
// estimate; the stream cannot be reused afterwards.
func (s *CovarianceStream) Finalize() (*linalg.Matrix, *Trace, error) {
	if s.done {
		return nil, nil, fmt.Errorf("core: stream already finalized")
	}
	s.done = true
	tr := &Trace{Scale: s.p.Gamma * s.p.Gamma, Lat: s.p.Latency}
	noiseStart := time.Now()
	share := s.p.Mu / float64(len(s.clientRNGs))
	for _, g := range s.clientRNGs {
		for k := range s.upper {
			s.upper[k] += g.Skellam(share)
		}
	}
	tr.NoiseCompute = time.Since(noiseStart)
	out := linalg.NewMatrix(s.n, s.n)
	inv := 1 / tr.Scale
	idx := 0
	for a := 0; a < s.n; a++ {
		for b := a; b < s.n; b++ {
			v := float64(s.upper[idx]) * inv
			out.Set(a, b, v)
			out.Set(b, a, v)
			idx++
		}
	}
	tr.Compute = time.Since(s.start)
	return out, tr, nil
}
