// Package core implements the Skellam Quantization Mechanism (SQM), the
// paper's primary contribution: a distributed-DP protocol for evaluating
// polynomial aggregates over a vertically partitioned database without
// any trusted party.
//
// The mechanism (Algorithms 1 and 3):
//
//  1. every client quantizes its private column with Algorithm 2
//     (up-scale by γ, stochastic rounding) — package quant;
//  2. the public polynomial's coefficients are pre-processed so that
//     every monomial carries the same overall factor γ^{λ+1} — package
//     poly;
//  3. every client privately samples a share Sk(μ/n) of the Skellam
//     noise — package randx;
//  4. the clients run an MPC protocol to compute the quantized aggregate
//     plus the aggregated noise — either the real BGW engine (package
//     bgw) or a plaintext integer engine that is output-identical
//     because BGW computes exactly;
//  5. the server down-scales the opened result by γ^{λ+1} (γ^λ for the
//     coefficient-1 monomials of Algorithm 1).
//
// Specialized protocols for the two applications of §V — the covariance
// matrix for PCA and the Taylor-approximated logistic-regression
// gradient — live in covariance.go and lr.go.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"sqm/internal/bgw"
	"sqm/internal/dp"
	"sqm/internal/field"
	"sqm/internal/obs"
	"sqm/internal/randx"
	"sqm/internal/retry"
	"sqm/internal/transport"
)

// EngineKind selects the evaluation backend.
type EngineKind int

const (
	// EnginePlain evaluates the quantized integers directly. Because
	// BGW computes exactly, the output distribution is identical to
	// the MPC engines; this is the fast path for utility experiments.
	EnginePlain EngineKind = iota
	// EngineBGW runs the secret-shared protocol with the monolithic
	// engine that simulates all parties in one goroutine and models
	// the communication counters.
	EngineBGW
	// EngineActorBGW runs the secret-shared protocol with one actor
	// goroutine per party exchanging shares over an in-memory channel
	// mesh; messages and bytes are measured from real traffic.
	EngineActorBGW
	// EngineActorBGWNet is EngineActorBGW with the share traffic
	// carried over localhost TCP sockets using the session layer's
	// framing.
	EngineActorBGWNet
)

// IsMPC reports whether the kind runs the real secret-shared protocol.
func (k EngineKind) IsMPC() bool {
	return k == EngineBGW || k == EngineActorBGW || k == EngineActorBGWNet
}

// String names the kind as accepted by the CLI's -engine flag.
func (k EngineKind) String() string {
	switch k {
	case EnginePlain:
		return "plain"
	case EngineBGW:
		return "bgw"
	case EngineActorBGW:
		return "actor"
	case EngineActorBGWNet:
		return "actor-net"
	}
	return fmt.Sprintf("EngineKind(%d)", int(k))
}

// ParseEngineKind maps a CLI name to its engine kind.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "plain":
		return EnginePlain, nil
	case "bgw":
		return EngineBGW, nil
	case "actor":
		return EngineActorBGW, nil
	case "actor-net":
		return EngineActorBGWNet, nil
	}
	return 0, fmt.Errorf("core: unknown engine %q (want plain, bgw, actor or actor-net)", s)
}

// Params configures one SQM invocation.
type Params struct {
	Gamma      float64       // scaling parameter γ >= 1 (Algorithm 2)
	Mu         float64       // aggregate Skellam parameter μ; clients sample Sk(μ/n)
	NumClients int           // n, the noise-contributing clients; 0 means one per column
	Engine     EngineKind    // evaluation backend
	Parties    int           // BGW parties P (EngineBGW); 0 means 4
	Threshold  int           // BGW threshold t; 0 means floor((P-1)/2)
	Latency    time.Duration // per-round message latency; 0 means 100 ms
	Seed       uint64        // reproducibility seed
	Recorder   obs.Recorder  // telemetry sink for engine and mesh; nil disables
	Fault      FaultConfig   // fault-tolerance knobs (zero value: fail-stop off)
	// Trace attaches distributed tracing: the engine's events are
	// stamped into the coordinator stream's flight recorder, and — when
	// the context carries one stream per party — the mesh propagates
	// (trace, sender, lclock) in-band so per-party streams merge into
	// one causal timeline. Nil disables tracing.
	Trace *obs.TraceContext
	// Acct, when non-nil, receives the RDP curve of this invocation's
	// Skellam release at the protocol's generic sensitivity bound
	// (unit-norm records). Applications with tighter closed-form
	// sensitivities (PCA, the LR trainers) account at their own layer
	// and leave this nil to avoid double counting.
	Acct *dp.Accountant
}

// FaultConfig bundles the fault-tolerance knobs the CLIs thread down to
// the engines and meshes. The zero value preserves the trusting
// defaults: blocking receives, single dial attempts.
type FaultConfig struct {
	// RecvTimeout bounds every party-to-party receive of the actor
	// engines; a silent peer surfaces as transport.ErrTimeout instead of
	// a hang. 0 keeps receives blocking.
	RecvTimeout time.Duration
	// DialRetries is the attempt budget for the TCP mesh's pair dials
	// (EngineActorBGWNet); values below 1 mean a single attempt.
	DialRetries int
	// DialBackoff is the base backoff between dial attempts (doubled per
	// retry, seeded jitter); 0 means the retry package default.
	DialBackoff time.Duration
}

func (p *Params) normalize(cols int) error {
	if p.Gamma < 1 {
		return fmt.Errorf("core: gamma must be >= 1, got %v", p.Gamma)
	}
	if p.Mu < 0 {
		return fmt.Errorf("core: mu must be non-negative, got %v", p.Mu)
	}
	if p.NumClients == 0 {
		p.NumClients = cols
	}
	if p.NumClients < 1 {
		return fmt.Errorf("core: need at least one client, got %d", p.NumClients)
	}
	if p.Engine.IsMPC() {
		if p.Parties == 0 {
			p.Parties = 4
		}
		if p.Parties < 3 {
			return fmt.Errorf("core: BGW needs at least 3 parties, got %d", p.Parties)
		}
	}
	if p.Trace != nil && p.Trace.Parties() != 0 && p.Engine.IsMPC() && p.Trace.Parties() != p.Parties {
		return fmt.Errorf("core: trace context has %d party streams, engine has %d parties",
			p.Trace.Parties(), p.Parties)
	}
	if p.Latency == 0 {
		p.Latency = bgw.DefaultLatency
	}
	return nil
}

// clientOf maps column j to its owning client (block partition, as in
// the paper's experiments where n attributes are evenly split over P
// clients).
func (p *Params) clientOf(col, cols int) int {
	if p.NumClients >= cols {
		return col
	}
	return col * p.NumClients / cols
}

// partyOf maps a client to the BGW party simulating it.
func (p *Params) partyOf(client int) int {
	if !p.Engine.IsMPC() {
		return 0
	}
	return client % p.Parties
}

// newEvaluator constructs the MPC backend selected by p.Engine. The
// seed perturbation keeps each protocol's share randomness on its own
// stream, as before the backends became pluggable. The caller owns the
// evaluator and must Close it.
func (p *Params) newEvaluator(seedXor uint64) (bgw.Evaluator, error) {
	rec := p.Recorder
	if p.Trace != nil && obs.TraceOf(rec) == nil {
		// The engine runs on the coordinator goroutine: its events land
		// on the coordinator stream, stamped and flight-recorded.
		rec = p.Trace.Coordinator().Wrap(rec)
	}
	cfg := bgw.Config{
		Parties: p.Parties, Threshold: p.Threshold, Latency: p.Latency,
		Seed: p.Seed ^ seedXor, Recorder: rec, RecvTimeout: p.Fault.RecvTimeout,
	}
	meshOpts := []transport.Option{transport.WithRecorder(rec)}
	if p.Trace != nil && p.Trace.Parties() == p.Parties {
		meshOpts = append(meshOpts, transport.WithTracer(p.Trace))
	}
	switch p.Engine {
	case EngineBGW:
		eng, err := bgw.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		return bgw.Eval(eng), nil
	case EngineActorBGW:
		return bgw.NewActorEngine(cfg, transport.NewChanMesh(cfg.Parties, meshOpts...))
	case EngineActorBGWNet:
		meshOpts = append(meshOpts, transport.WithDialRetry(retry.Policy{
			Attempts: p.Fault.DialRetries,
			Base:     p.Fault.DialBackoff,
			Jitter:   0.5,
			Seed:     p.Seed ^ 0xd1a1,
			Recorder: rec,
			Name:     "core.dial",
		}))
		mesh, err := transport.NewTCPMesh(cfg.Parties, meshOpts...)
		if err != nil {
			return nil, err
		}
		return bgw.NewActorEngine(cfg, mesh)
	}
	return nil, errUnknownEngine(p.Engine)
}

// Trace reports diagnostics of one SQM invocation: the scaled integer
// output, the applied down-scaling, and the cost model inputs used by
// the timing experiments (Tables II, IV, V).
type Trace struct {
	Scaled []int64       // ŷ before the server's down-scaling
	Scale  float64       // the divisor (γ^{λ+1}, or γ^λ for Algorithm 1)
	Stats  bgw.Stats     // protocol counters (zero for EnginePlain)
	Lat    time.Duration // per-round latency used for simulated time

	Compute      time.Duration // wall-clock of the full evaluation
	NoiseCompute time.Duration // wall-clock of noise sampling + aggregation
	NoiseRounds  int64         // communication rounds attributable to DP
}

// TotalTime is the modeled end-to-end cost: measured computation plus
// simulated network latency (rounds × Latency), the paper's timing
// model.
func (t *Trace) TotalTime() time.Duration {
	return t.Compute + time.Duration(t.Stats.Rounds)*t.Lat
}

// NoiseTime is the part of TotalTime attributable to enforcing DP.
func (t *Trace) NoiseTime() time.Duration {
	return t.NoiseCompute + time.Duration(t.NoiseRounds)*t.Lat
}

// ErrFieldOverflow reports that the statically bounded aggregate cannot
// be embedded into the BGW field without wrap-around — the caller must
// lower γ or μ. Detecting this *before* running the protocol is what
// keeps the implementation aligned with the sensitivity analysis (see
// "On discretization", §V-C).
var ErrFieldOverflow = errors.New("core: aggregate bound exceeds the MPC field's signed range")

// noiseMargin bounds |Sk(mu)| with overwhelming probability for the
// static overflow check: 16 standard deviations plus slack.
func noiseMargin(mu float64) float64 {
	if mu <= 0 {
		return 0
	}
	return 16*math.Sqrt(2*mu) + 64
}

// checkFieldBound verifies that |bound| fits the signed embedding.
func checkFieldBound(bound float64) error {
	if bound >= float64(field.MaxSignedValue) {
		return ErrFieldOverflow
	}
	return nil
}

// sampleNoiseShares draws the per-client Skellam shares: out[j][t] ~
// Sk(mu/n) for client j and output dimension t. Each client uses its own
// private stream.
func sampleNoiseShares(clientRNGs []*randx.RNG, dims int, mu float64) [][]int64 {
	n := len(clientRNGs)
	out := make([][]int64, n)
	share := mu / float64(n)
	for j := range out {
		out[j] = clientRNGs[j].SkellamVec(dims, share)
	}
	return out
}

// rngFamily derives the root, public-coin and per-client private
// streams for one invocation.
func rngFamily(seed uint64, clients int) (pub *randx.RNG, clientRNGs []*randx.RNG) {
	root := randx.New(seed)
	pub = root.Fork()
	clientRNGs = make([]*randx.RNG, clients)
	for j := range clientRNGs {
		clientRNGs[j] = root.Fork()
	}
	return pub, clientRNGs
}
