package core

import (
	"math"
	"testing"

	"sqm/internal/linalg"
	"sqm/internal/poly"
	"sqm/internal/randx"
)

func randMatrix(rows, cols int, scale float64, seed uint64) *linalg.Matrix {
	g := randx.New(seed)
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = scale * (2*g.Float64() - 1)
	}
	return m
}

func TestParamsValidation(t *testing.T) {
	x := randMatrix(3, 2, 1, 1)
	f := poly.MustMulti(poly.MustPolynomial(2, poly.Monomial{Coef: 1, Exps: []int{1, 1}}))
	if _, _, err := EvaluatePolynomialSum(f, x, Params{Gamma: 0.5}); err == nil {
		t.Fatal("gamma < 1 must be rejected")
	}
	if _, _, err := EvaluatePolynomialSum(f, x, Params{Gamma: 4, Mu: -1}); err == nil {
		t.Fatal("negative mu must be rejected")
	}
	if _, _, err := EvaluatePolynomialSum(f, x, Params{Gamma: 4, Engine: EngineBGW, Parties: 2}); err == nil {
		t.Fatal("2-party BGW must be rejected")
	}
	bad := poly.MustMulti(poly.MustPolynomial(3, poly.Monomial{Coef: 1, Exps: []int{1, 0, 0}}))
	if _, _, err := EvaluatePolynomialSum(bad, x, Params{Gamma: 4}); err == nil {
		t.Fatal("variable/column mismatch must be rejected")
	}
}

func TestClientAndPartyMapping(t *testing.T) {
	p := Params{NumClients: 4, Engine: EngineBGW, Parties: 3}
	// 8 columns over 4 clients: block partition.
	if p.clientOf(0, 8) != 0 || p.clientOf(1, 8) != 0 || p.clientOf(2, 8) != 1 || p.clientOf(7, 8) != 3 {
		t.Fatal("block client mapping wrong")
	}
	// One client per column when NumClients >= cols.
	p2 := Params{NumClients: 8}
	if p2.clientOf(5, 8) != 5 {
		t.Fatal("identity client mapping wrong")
	}
	if p.partyOf(5) != 2 {
		t.Fatalf("partyOf(5) = %d", p.partyOf(5))
	}
}

func TestMonomialSumNoiselessAccuracy(t *testing.T) {
	// Algorithm 1 with μ=0: the estimate converges to the truth as γ
	// grows (Corollary 1).
	x := randMatrix(50, 3, 0.5, 2)
	m := poly.Monomial{Coef: 2.5, Exps: []int{1, 1, 1}}
	rows := make([][]float64, x.Rows)
	for i := range rows {
		rows[i] = x.Row(i)
	}
	truth := 0.0
	for _, r := range rows {
		truth += m.Eval(r)
	}
	prev := math.Inf(1)
	for _, gamma := range []float64{16, 128, 1024} {
		est, tr, err := EvaluateMonomialSum(m, x, Params{Gamma: gamma, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Scale != math.Pow(gamma, 3) {
			t.Fatalf("Scale = %v, want γ^3", tr.Scale)
		}
		e := math.Abs(est - truth)
		if e >= prev {
			t.Fatalf("gamma=%v: error %v did not shrink (prev %v)", gamma, e, prev)
		}
		prev = e
	}
	if prev > 0.05 {
		t.Fatalf("error at γ=1024 still %v", prev)
	}
}

func TestMonomialSumRejectsConstant(t *testing.T) {
	x := randMatrix(3, 1, 1, 1)
	if _, _, err := EvaluateMonomialSum(poly.Monomial{Coef: 1, Exps: []int{0}}, x, Params{Gamma: 4}); err == nil {
		t.Fatal("degree-0 monomial must be rejected by Algorithm 1")
	}
}

func TestPolynomialSumNoiselessAccuracy(t *testing.T) {
	// Algorithm 3 with μ=0 on a mixed-degree polynomial.
	x := randMatrix(40, 2, 0.6, 4)
	f := poly.MustMulti(
		poly.MustPolynomial(2,
			poly.Monomial{Coef: 0.5, Exps: []int{2, 0}},
			poly.Monomial{Coef: 1.5, Exps: []int{1, 1}},
			poly.Monomial{Coef: -0.3, Exps: []int{0, 1}},
			poly.Monomial{Coef: 0.1, Exps: []int{0, 0}},
		),
		poly.MustPolynomial(2, poly.Monomial{Coef: 1, Exps: []int{1, 0}}),
	)
	rows := make([][]float64, x.Rows)
	for i := range rows {
		rows[i] = x.Row(i)
	}
	truth := f.EvalSum(rows)
	est, tr, err := EvaluatePolynomialSum(f, x, Params{Gamma: 4096, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Scale != math.Pow(4096, 3) {
		t.Fatalf("Scale = %v, want γ^{λ+1}", tr.Scale)
	}
	for d := range truth {
		if e := math.Abs(est[d] - truth[d]); e > 0.02 {
			t.Fatalf("dim %d: |%v - %v| = %v", d, est[d], truth[d], e)
		}
	}
}

func TestPolynomialSumNoiseVariance(t *testing.T) {
	// On all-zero data, the estimate is pure noise Sk(μ)/γ^{λ+1}: its
	// empirical variance must match 2μ/γ^{2(λ+1)}.
	x := linalg.NewMatrix(5, 1)
	f := poly.MustMulti(poly.MustPolynomial(1, poly.Monomial{Coef: 1, Exps: []int{2}}))
	gamma, mu := 16.0, 1e6
	const trials = 3000
	var sumsq float64
	for trial := 0; trial < trials; trial++ {
		est, _, err := EvaluatePolynomialSum(f, x, Params{Gamma: gamma, Mu: mu, NumClients: 3, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		sumsq += est[0] * est[0]
	}
	scale := math.Pow(gamma, 3)
	want := 2 * mu / (scale * scale)
	got := sumsq / trials
	if got < 0.85*want || got > 1.15*want {
		t.Fatalf("noise variance = %v, want %v", got, want)
	}
}

func TestPlainAndBGWPolynomialAgreeExactly(t *testing.T) {
	// The BGW engine must be bit-identical to the plaintext engine for
	// the same seed: secret sharing is exact.
	x := randMatrix(12, 3, 0.8, 6)
	f := poly.MustMulti(
		poly.MustPolynomial(3,
			poly.Monomial{Coef: 1.2, Exps: []int{1, 1, 0}},
			poly.Monomial{Coef: -0.4, Exps: []int{0, 0, 2}},
			poly.Monomial{Coef: 0.9, Exps: []int{1, 1, 1}}, // degree 3: generic gate chain
			poly.Monomial{Coef: 0.05, Exps: []int{1, 0, 0}},
			poly.Monomial{Coef: 2, Exps: []int{0, 0, 0}},
		),
		poly.MustPolynomial(3, poly.Monomial{Coef: 1, Exps: []int{0, 2, 0}}),
	)
	base := Params{Gamma: 32, Mu: 50, NumClients: 3, Seed: 77}
	plainEst, plainTr, err := EvaluatePolynomialSum(f, x, base)
	if err != nil {
		t.Fatal(err)
	}
	bgwP := base
	bgwP.Engine = EngineBGW
	bgwP.Parties = 4
	bgwEst, bgwTr, err := EvaluatePolynomialSum(f, x, bgwP)
	if err != nil {
		t.Fatal(err)
	}
	for d := range plainEst {
		if plainTr.Scaled[d] != bgwTr.Scaled[d] {
			t.Fatalf("dim %d: plain %d vs BGW %d", d, plainTr.Scaled[d], bgwTr.Scaled[d])
		}
		if plainEst[d] != bgwEst[d] {
			t.Fatalf("dim %d: estimates differ", d)
		}
	}
	if bgwTr.Stats.Messages == 0 || bgwTr.Stats.Rounds == 0 {
		t.Fatal("BGW trace must meter communication")
	}
	if plainTr.Stats.Messages != 0 {
		t.Fatal("plain trace must not meter communication")
	}
}

func TestMonomialPlainAndBGWAgree(t *testing.T) {
	x := randMatrix(8, 2, 0.7, 8)
	m := poly.Monomial{Coef: 1, Exps: []int{2, 1}} // degree 3
	base := Params{Gamma: 16, Mu: 9, Seed: 13}
	p1, tr1, err := EvaluateMonomialSum(m, x, base)
	if err != nil {
		t.Fatal(err)
	}
	bg := base
	bg.Engine = EngineBGW
	p2, tr2, err := EvaluateMonomialSum(m, x, bg)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Scaled[0] != tr2.Scaled[0] || p1 != p2 {
		t.Fatalf("plain %v (%d) vs BGW %v (%d)", p1, tr1.Scaled[0], p2, tr2.Scaled[0])
	}
}

// Property: for random degree-<=2 polynomials, random data and random
// noise levels, the plaintext and BGW engines open identical integers.
func TestPlainBGWEquivalenceProperty(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		g := randx.New(uint64(1000 + trial))
		nv := 2 + g.IntN(3)
		var ms []poly.Monomial
		for k := 0; k < 1+g.IntN(4); k++ {
			exps := make([]int, nv)
			for d := 0; d < 1+g.IntN(2); d++ {
				exps[g.IntN(nv)]++
			}
			ms = append(ms, poly.Monomial{Coef: 2*g.Float64() - 1, Exps: exps})
		}
		f := poly.MustMulti(poly.MustPolynomial(nv, ms...))
		x := randMatrix(3+g.IntN(10), nv, 0.7, uint64(2000+trial))
		base := Params{Gamma: float64(uint64(4) << g.IntN(5)), Mu: float64(g.IntN(50)), Seed: uint64(3000 + trial)}
		p1, tr1, err := EvaluatePolynomialSum(f, x, base)
		if err != nil {
			t.Fatalf("trial %d plain: %v", trial, err)
		}
		bg := base
		bg.Engine = EngineBGW
		bg.Parties = 3 + g.IntN(3)
		p2, tr2, err := EvaluatePolynomialSum(f, x, bg)
		if err != nil {
			t.Fatalf("trial %d bgw: %v", trial, err)
		}
		for d := range p1 {
			if tr1.Scaled[d] != tr2.Scaled[d] || p1[d] != p2[d] {
				t.Fatalf("trial %d dim %d: %d vs %d", trial, d, tr1.Scaled[d], tr2.Scaled[d])
			}
		}
	}
}

func TestFieldOverflowDetectedBeforeBGW(t *testing.T) {
	x := randMatrix(4, 2, 1, 9)
	f := poly.MustMulti(poly.MustPolynomial(2, poly.Monomial{Coef: 1, Exps: []int{1, 1}}))
	p := Params{Gamma: 4, Mu: 1e38, Engine: EngineBGW, Seed: 1} // noise tail breaks the bound
	if _, _, err := EvaluatePolynomialSum(f, x, p); err != ErrFieldOverflow {
		t.Fatalf("err = %v, want ErrFieldOverflow", err)
	}
}

func TestTraceTimeModel(t *testing.T) {
	x := randMatrix(6, 2, 0.5, 10)
	f := poly.MustMulti(poly.MustPolynomial(2, poly.Monomial{Coef: 1, Exps: []int{1, 1}}))
	p := Params{Gamma: 8, Mu: 4, Engine: EngineBGW, Seed: 2}
	_, tr, err := EvaluatePolynomialSum(f, x, p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalTime() < tr.Stats.NetTime(tr.Lat) {
		t.Fatal("total time must include simulated network time")
	}
	if tr.NoiseTime() > tr.TotalTime() {
		t.Fatal("noise time cannot exceed total time")
	}
	if tr.NoiseRounds < 1 {
		t.Fatal("DP must account at least one round")
	}
}
