package core

import (
	"math"
	"testing"

	"sqm/internal/linalg"
	"sqm/internal/randx"
)

// lrTestData builds a small synthetic LR dataset with unit-norm rows.
func lrTestData(m, d int, seed uint64) (*linalg.Matrix, []float64) {
	g := randx.New(seed)
	x := linalg.NewMatrix(m, d)
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = g.Gaussian(0, 1)
		}
		linalg.ClipNorm(row, 1)
		if g.Bernoulli(0.5) {
			y[i] = 1
		}
	}
	return x, y
}

// approxGradient is the Taylor-approximated gradient of Eq. (9),
// computed directly in float64.
func approxGradient(x *linalg.Matrix, y []float64, w []float64, batch []int) []float64 {
	grad := make([]float64, x.Cols)
	for _, i := range batch {
		row := x.Row(i)
		s := 0.5 + linalg.Dot(w, row)/4 - y[i]
		for t, v := range row {
			grad[t] += v * s
		}
	}
	return grad
}

func TestLRProtocolValidation(t *testing.T) {
	x, y := lrTestData(10, 4, 1)
	if _, err := NewLRProtocol(x, y[:5], Params{Gamma: 64}); err == nil {
		t.Fatal("row/label mismatch must be rejected")
	}
	if _, err := NewLRProtocol(x, y, Params{Gamma: 64.5}); err == nil {
		t.Fatal("non-integer gamma must be rejected")
	}
	bad := append([]float64(nil), y...)
	bad[0] = 0.5
	if _, err := NewLRProtocol(x, bad, Params{Gamma: 64}); err == nil {
		t.Fatal("non-binary label must be rejected")
	}
	lr, err := NewLRProtocol(x, y, Params{Gamma: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lr.GradientSum(make([]float64, 3), []int{0}); err == nil {
		t.Fatal("wrong weight dimension must be rejected")
	}
	if lr.NumRecords() != 10 {
		t.Fatalf("NumRecords = %d", lr.NumRecords())
	}
}

func TestLRGradientNoiselessMatchesApproxGradient(t *testing.T) {
	x, y := lrTestData(50, 6, 2)
	lr, err := NewLRProtocol(x, y, Params{Gamma: 4096, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := randx.New(9)
	w := g.GaussianVec(6, 0.3)
	linalg.ClipNorm(w, 1)
	batch := []int{0, 3, 7, 11, 42}
	got, tr, err := lr.GradientSum(w, batch)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Scale != math.Pow(4096, 3) {
		t.Fatalf("Scale = %v", tr.Scale)
	}
	want := approxGradient(x, y, w, batch)
	for t2 := range want {
		if e := math.Abs(got[t2] - want[t2]); e > 0.01 {
			t.Fatalf("coord %d: |%v − %v| = %v", t2, got[t2], want[t2], e)
		}
	}
}

func TestLRGradientAccuracyImprovesWithGamma(t *testing.T) {
	x, y := lrTestData(30, 4, 4)
	g := randx.New(11)
	w := g.GaussianVec(4, 0.3)
	linalg.ClipNorm(w, 1)
	batch := []int{1, 5, 9, 13}
	want := approxGradient(x, y, w, batch)
	prev := math.Inf(1)
	for _, gamma := range []float64{16, 256, 4096} {
		lr, err := NewLRProtocol(x, y, Params{Gamma: gamma, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := lr.GradientSum(w, batch)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for t2 := range want {
			if e := math.Abs(got[t2] - want[t2]); e > worst {
				worst = e
			}
		}
		if worst >= prev {
			t.Fatalf("gamma=%v: error %v did not shrink (prev %v)", gamma, worst, prev)
		}
		prev = worst
	}
}

func TestLRGradientNoiseVariance(t *testing.T) {
	// Empty batch ⇒ output is pure noise with variance 2μ/γ⁶ per
	// coordinate.
	x, y := lrTestData(5, 3, 6)
	gamma, mu := 8.0, 1e6
	const trials = 4000
	var sumsq float64
	for trial := 0; trial < trials; trial++ {
		lr, err := NewLRProtocol(x, y, Params{Gamma: gamma, Mu: mu, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := lr.GradientSum([]float64{0.1, -0.2, 0.3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range got {
			sumsq += v * v
		}
	}
	scale := math.Pow(gamma, 3)
	want := 2 * mu / (scale * scale)
	got := sumsq / float64(trials*3)
	if got < 0.9*want || got > 1.1*want {
		t.Fatalf("noise variance = %v, want %v", got, want)
	}
}

func TestLRPlainAndBGWAgreeExactly(t *testing.T) {
	x, y := lrTestData(20, 5, 7)
	base := Params{Gamma: 64, Mu: 25, Seed: 41}
	lr1, err := NewLRProtocol(x, y, base)
	if err != nil {
		t.Fatal(err)
	}
	bg := base
	bg.Engine = EngineBGW
	bg.Parties = 4
	lr2, err := NewLRProtocol(x, y, bg)
	if err != nil {
		t.Fatal(err)
	}
	g := randx.New(17)
	w := g.GaussianVec(5, 0.3)
	batch := []int{2, 4, 8, 16}
	g1, tr1, err := lr1.GradientSum(w, batch)
	if err != nil {
		t.Fatal(err)
	}
	g2, tr2, err := lr2.GradientSum(w, batch)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range g1 {
		if tr1.Scaled[t2] != tr2.Scaled[t2] || g1[t2] != g2[t2] {
			t.Fatalf("coord %d: plain %d vs BGW %d", t2, tr1.Scaled[t2], tr2.Scaled[t2])
		}
	}
	if tr2.Stats.Rounds != 3 {
		t.Fatalf("one SGD round should cost 3 communication rounds, got %d", tr2.Stats.Rounds)
	}
	if lr2.SetupStats().Rounds != 1 {
		t.Fatalf("setup should cost 1 round, got %d", lr2.SetupStats().Rounds)
	}
	if lr1.SetupStats().Rounds != 0 {
		t.Fatal("plain engine has no setup rounds")
	}
}

func TestLRMultipleRoundsKeepAgreement(t *testing.T) {
	// Shares are reused across SGD rounds; run three rounds on both
	// engines and compare every output.
	x, y := lrTestData(15, 3, 8)
	base := Params{Gamma: 32, Mu: 16, Seed: 51}
	lr1, err := NewLRProtocol(x, y, base)
	if err != nil {
		t.Fatal(err)
	}
	bg := base
	bg.Engine = EngineBGW
	lr2, err := NewLRProtocol(x, y, bg)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.2, -0.1, 0.4}
	for round := 0; round < 3; round++ {
		b1 := lr1.SampleBatch(0.5)
		b2 := lr2.SampleBatch(0.5)
		if len(b1) != len(b2) {
			t.Fatal("shared-randomness batches must agree for equal seeds")
		}
		g1, _, err := lr1.GradientSum(w, b1)
		if err != nil {
			t.Fatal(err)
		}
		g2, _, err := lr2.GradientSum(w, b2)
		if err != nil {
			t.Fatal(err)
		}
		for t2 := range g1 {
			if g1[t2] != g2[t2] {
				t.Fatalf("round %d coord %d differs", round, t2)
			}
		}
	}
}

func TestLROverflowGuard(t *testing.T) {
	x, y := lrTestData(10, 4, 9)
	lr, err := NewLRProtocol(x, y, Params{Gamma: 1 << 19, Mu: 1e36, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lr.GradientSum(make([]float64, 4), []int{0, 1}); err != ErrFieldOverflow {
		t.Fatalf("err = %v, want ErrFieldOverflow", err)
	}
}

func BenchmarkLRGradientPlain(b *testing.B) {
	x, y := lrTestData(1000, 100, 1)
	lr, err := NewLRProtocol(x, y, Params{Gamma: 8192, Mu: 1e10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	w := make([]float64, 100)
	batch := make([]int, 100)
	for i := range batch {
		batch[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lr.GradientSum(w, batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLRGradientBGW(b *testing.B) {
	x, y := lrTestData(200, 50, 1)
	lr, err := NewLRProtocol(x, y, Params{Gamma: 256, Mu: 1e4, Engine: EngineBGW, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	w := make([]float64, 50)
	batch := []int{0, 10, 20, 30, 40}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lr.GradientSum(w, batch); err != nil {
			b.Fatal(err)
		}
	}
}
