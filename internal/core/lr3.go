package core

import (
	"fmt"
	"math"
	"time"

	"sqm/internal/bgw"
	"sqm/internal/circuit"
	"sqm/internal/linalg"
	"sqm/internal/mathx"
	"sqm/internal/randx"
)

// LR3Protocol extends the logistic-regression instantiation to the
// order-3 Taylor approximation of the sigmoid,
//
//	σ(u) ≈ ½ + u/4 − u³/48,
//
// the "more delicate approximation" direction the paper leaves open
// (§V-C). The gradient becomes a degree-4 polynomial of (x, y), so the
// uniform amplification factor is γ^{λ+1} = γ⁵, multiplied by a small
// precision factor k³: the cubic term's coefficients are spread over
// three factors (each scaled by k·(γ/48)^{1/3}), and scaling everything
// by k³ buys the low-degree coefficients extra resolution. The server
// divides the opened output by k³γ⁵.
//
// Because of the γ⁵ amplification, the 61-bit field caps γ around 2⁹
// for unit-norm records (checked at run time) — the ablation harness
// compares this against order 1 at equal budgets.
type LR3Protocol struct {
	p        Params
	m, d     int
	k        int64   // precision multiplier (k³ overall)
	beta     float64 // (γ/48)^{1/3}, the per-factor cube coefficient scale
	gammaInt int64

	pub        *randx.RNG
	clientRNGs []*randx.RNG

	feat *IntMatrixView
	lab  []int64

	eng        bgw.Evaluator
	featShares []bgw.Vec
	labShares  bgw.Vec

	// Compiled gradient plans keyed by batch size (see LRProtocol).
	plans map[int]*lrPlan
}

// IntMatrixView aliases the quantized feature storage to avoid exposing
// internal/quant in this file's signatures.
type IntMatrixView = intMatrix

type intMatrix struct {
	Rows, Cols int
	Data       []int64
}

func (m *intMatrix) Row(i int) []int64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }
func (m *intMatrix) Col(j int) []int64 {
	c := make([]int64, m.Rows)
	for i := range c {
		c[i] = m.Data[i*m.Cols+j]
	}
	return c
}
func (m *intMatrix) MaxAbs() int64 {
	var s int64
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > s {
			s = v
		}
	}
	return s
}

// DefaultLR3Precision is the default k.
const DefaultLR3Precision = 8

// NewLR3Protocol quantizes (and for EngineBGW shares) the data for
// order-3 training. precision is the multiplier k (0 means
// DefaultLR3Precision).
func NewLR3Protocol(features *linalg.Matrix, labels []float64, p Params, precision int64) (*LR3Protocol, error) {
	if features.Rows != len(labels) {
		return nil, fmt.Errorf("core: %d rows but %d labels", features.Rows, len(labels))
	}
	if err := p.normalize(features.Cols + 1); err != nil {
		return nil, err
	}
	if !mathx.EqualWithin(p.Gamma, math.Trunc(p.Gamma), 0) {
		return nil, fmt.Errorf("core: LR3 requires an integer gamma, got %v", p.Gamma)
	}
	if precision == 0 {
		precision = DefaultLR3Precision
	}
	if precision < 1 {
		return nil, fmt.Errorf("core: precision must be >= 1, got %d", precision)
	}
	lr := &LR3Protocol{
		p: p, m: features.Rows, d: features.Cols,
		k: precision, beta: math.Cbrt(p.Gamma / 48), gammaInt: int64(p.Gamma),
	}
	lr.pub, lr.clientRNGs = rngFamily(p.Seed, p.NumClients)
	q := quantizeByClient(features, p, lr.clientRNGs)
	lr.feat = &intMatrix{Rows: q.Rows, Cols: q.Cols, Data: q.Data}

	labelClient := p.clientOf(features.Cols, features.Cols+1)
	g := lr.clientRNGs[labelClient]
	lr.lab = make([]int64, lr.m)
	for i, y := range labels {
		if !mathx.EqualWithin(y, 0, 0) && !mathx.EqualWithin(y, 1, 0) {
			return nil, fmt.Errorf("core: label %v is not 0/1", y)
		}
		lr.lab[i] = g.StochasticRound(p.Gamma * y)
	}
	if p.Engine.IsMPC() {
		eng, err := p.newEvaluator(0x3c91)
		if err != nil {
			return nil, err
		}
		lr.eng = eng
		lr.plans = make(map[int]*lrPlan)
		sb := circuit.NewBuilder(p.Parties, p.Threshold)
		featH := make([]bgw.Vec, lr.d)
		for j := 0; j < lr.d; j++ {
			featH[j] = sb.InputVec(p.partyOf(p.clientOf(j, lr.d+1)), lr.feat.Col(j))
		}
		labH := sb.InputVec(p.partyOf(labelClient), lr.lab)
		setupPlan, err := sb.Compile()
		if err != nil {
			eng.Close()
			return nil, err
		}
		sres, err := setupPlan.Execute(eng, circuit.Bindings{})
		if err != nil {
			eng.Close()
			return nil, err
		}
		lr.featShares = make([]bgw.Vec, lr.d)
		for j := 0; j < lr.d; j++ {
			lr.featShares[j] = sres.VecOf(featH[j])
		}
		lr.labShares = sres.VecOf(labH)
		if err := eng.Err(); err != nil {
			eng.Close()
			return nil, err
		}
	}
	return lr, nil
}

// Close releases the MPC backend; no-op for the plain engine.
func (lr *LR3Protocol) Close() error {
	if lr.eng != nil {
		return lr.eng.Close()
	}
	return nil
}

// Scale returns the server's divisor k³γ⁵.
func (lr *LR3Protocol) Scale() float64 {
	k3 := float64(lr.k * lr.k * lr.k)
	return k3 * math.Pow(lr.p.Gamma, 5)
}

// SampleBatch draws the shared-randomness Poisson batch.
func (lr *LR3Protocol) SampleBatch(q float64) []int {
	return lr.pub.BernoulliSubset(lr.m, q)
}

// coefficients quantizes the round's public coefficients.
func (lr *LR3Protocol) coefficients(w []float64) (wq, wc []int64, qHalf, labelCoef int64) {
	k3 := float64(lr.k * lr.k * lr.k)
	g := lr.p.Gamma
	wq = make([]int64, lr.d)
	wc = make([]int64, lr.d)
	for j, wj := range w {
		wq[j] = lr.pub.StochasticRound(k3 * g * g * g * wj / 4)
		wc[j] = lr.pub.StochasticRound(float64(lr.k) * lr.beta * wj)
	}
	qHalf = lr.pub.StochasticRound(k3 * g * g * g * g / 2)
	labelCoef = int64(k3 * g * g * g)
	return wq, wc, qHalf, labelCoef
}

// Sensitivity returns a conservative L2/L1 bound on one record's
// contribution to the scaled gradient sum, from the quantized-domain
// worst case over ‖x‖₂ ≤ 1 and y ∈ {0, 1}.
func (lr *LR3Protocol) Sensitivity() (delta2, delta1 float64) {
	g := lr.p.Gamma
	sd := math.Sqrt(float64(lr.d))
	k3 := float64(lr.k * lr.k * lr.k)
	xNorm := g + sd // ‖x̂‖₂ ≤ γ‖x‖ + √d
	s2 := (k3*g*g*g/4 + sd) * xNorm
	c := (float64(lr.k)*lr.beta + sd) * xNorm
	u := k3*g*g*g*g/2 + 1 + s2 + c*c*c + k3*g*g*g*(g+1)
	delta2 = xNorm * u
	delta1 = math.Min(delta2*delta2, sd*delta2)
	return delta2, delta1
}

// GradientSum evaluates the order-3 gradient sum over the batch with
// Skellam noise and returns the down-scaled estimate.
func (lr *LR3Protocol) GradientSum(w []float64, batch []int) ([]float64, *Trace, error) {
	if len(w) != lr.d {
		return nil, nil, fmt.Errorf("core: weight dim %d != %d", len(w), lr.d)
	}
	start := time.Now()
	wq, wc, qHalf, labelCoef := lr.coefficients(w)

	noiseStart := time.Now()
	noise := sampleNoiseShares(lr.clientRNGs, lr.d, lr.p.Mu)
	noiseSample := time.Since(noiseStart)

	// Static overflow check against the field range.
	d2, _ := lr.Sensitivity()
	if err := checkFieldBound(d2*float64(len(batch)+1) + noiseMargin(lr.p.Mu)); err != nil {
		return nil, nil, err
	}

	tr := &Trace{Scale: lr.Scale(), Lat: lr.p.Latency}
	var scaled []int64
	var err error
	switch {
	case lr.p.Engine == EnginePlain:
		scaled = lr.plainGradient(wq, wc, qHalf, labelCoef, batch, noise, tr)
	case lr.p.Engine.IsMPC():
		scaled, err = lr.mpcGradient(wq, wc, qHalf, labelCoef, batch, noise, tr)
	default:
		err = errUnknownEngine(lr.p.Engine)
	}
	if err != nil {
		return nil, nil, err
	}
	tr.Scaled = scaled
	tr.NoiseCompute += noiseSample
	tr.Compute = time.Since(start)
	est := make([]float64, lr.d)
	for t, v := range scaled {
		est[t] = float64(v) / tr.Scale
	}
	return est, tr, nil
}

func (lr *LR3Protocol) plainGradient(wq, wc []int64, qHalf, labelCoef int64, batch []int, noise [][]int64, tr *Trace) []int64 {
	grad := make([]int64, lr.d)
	for _, i := range batch {
		row := lr.feat.Row(i)
		var s2, c int64
		for j, xj := range row {
			s2 += wq[j] * xj
			c += wc[j] * xj
		}
		u := qHalf + s2 - c*c*c - labelCoef*lr.lab[i]
		for t, xt := range row {
			grad[t] += xt * u
		}
	}
	noiseStart := time.Now()
	for _, shares := range noise {
		for t, z := range shares {
			grad[t] += z
		}
	}
	tr.NoiseCompute += time.Since(noiseStart)
	return grad
}

// gradientPlan compiles (and caches) the order-3 gradient circuit for
// a batch of B records. The cube c³ gives multiplicative depth 3
// (square, cube, fused inner product), so the plan always runs in five
// wire rounds — input, three batched resharing levels, output —
// independent of B.
func (lr *LR3Protocol) gradientPlan(B int) *lrPlan {
	if pl, ok := lr.plans[B]; ok {
		return pl
	}
	p := lr.p
	b := circuit.NewBuilder(p.Parties, p.Threshold)
	wqP := make([]circuit.ConstID, lr.d)
	wcP := make([]circuit.ConstID, lr.d)
	for j := 0; j < lr.d; j++ {
		wqP[j] = b.ConstParam()
	}
	for j := 0; j < lr.d; j++ {
		wcP[j] = b.ConstParam()
	}
	qHalfP := b.ConstParam()
	// labelCoef = k³γ³ depends only on protocol parameters, so it is a
	// literal rather than a parameter.
	labelCoef := int64(float64(lr.k*lr.k*lr.k) * math.Pow(lr.p.Gamma, 3))

	feats := make([][]bgw.Val, B)
	labs := make([]bgw.Val, B)
	for bi := 0; bi < B; bi++ {
		feats[bi] = make([]bgw.Val, lr.d)
		for j := 0; j < lr.d; j++ {
			feats[bi][j] = b.ExtVal()
		}
		labs[bi] = b.ExtVal()
	}

	noiseShared := make([]bgw.Val, lr.d)
	for t := 0; t < lr.d; t++ {
		acc := b.Zero()
		for j := 0; j < p.NumClients; j++ {
			acc = b.Add(acc, b.InputParam(p.partyOf(j)))
		}
		noiseShared[t] = acc
	}

	// u_i = qHalf + Σ_j ŵ_j x̂_{ij} − c_i³ − k³γ³·ŷ_i with
	// c_i = Σ_j ŵc_j x̂_{ij}; the linear parts fold locally, the cube
	// costs two multiplication levels.
	us := make([]bgw.Val, B)
	for bi := 0; bi < B; bi++ {
		s2 := b.Zero()
		c := b.Zero()
		for j := 0; j < lr.d; j++ {
			s2 = b.Add(s2, b.MulConstP(feats[bi][j], wqP[j]))
			c = b.Add(c, b.MulConstP(feats[bi][j], wcP[j]))
		}
		lin := b.AddConstP(b.Sub(s2, b.MulConst(labs[bi], labelCoef)), qHalfP)
		cube := b.Mul(b.Mul(c, c), c)
		us[bi] = b.Sub(lin, cube)
	}

	outIdx := make([]int, lr.d)
	xs := make([]bgw.Val, B)
	for t := 0; t < lr.d; t++ {
		for bi := 0; bi < B; bi++ {
			xs[bi] = feats[bi][t]
		}
		outIdx[t] = b.OpenIdx(b.Add(b.InnerProduct(xs, us), noiseShared[t]))
	}
	pl := &lrPlan{plan: b.MustCompile(), outIdx: outIdx}
	lr.plans[B] = pl
	return pl
}

func (lr *LR3Protocol) mpcGradient(wq, wc []int64, qHalf, labelCoef int64, batch []int, noise [][]int64, tr *Trace) ([]int64, error) {
	_ = labelCoef // baked into the plan as a protocol-level literal
	eng := lr.eng
	before := eng.Stats()
	pl := lr.gradientPlan(len(batch))

	consts := make([]int64, 0, 2*lr.d+1)
	consts = append(consts, wq...)
	consts = append(consts, wc...)
	consts = append(consts, qHalf)

	ext := make([]bgw.Val, 0, len(batch)*(lr.d+1))
	for _, i := range batch {
		for j := 0; j < lr.d; j++ {
			ext = append(ext, eng.At(lr.featShares[j], i))
		}
		ext = append(ext, eng.At(lr.labShares, i))
	}

	noiseStart := time.Now()
	inputs := make([]int64, 0, lr.d*len(noise))
	for t := 0; t < lr.d; t++ {
		for _, shares := range noise {
			inputs = append(inputs, shares[t])
		}
	}
	tr.NoiseCompute += time.Since(noiseStart)
	tr.NoiseRounds++

	res, err := pl.plan.Execute(eng, circuit.Bindings{Consts: consts, Inputs: inputs, Ext: ext})
	if err != nil {
		return nil, err
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}

	scaled := make([]int64, lr.d)
	for t := range scaled {
		scaled[t] = res.Opened(pl.outIdx[t])
	}
	after := eng.Stats()
	tr.Stats = bgw.Stats{
		Rounds:   after.Rounds - before.Rounds,
		Frames:   after.Frames - before.Frames,
		Messages: after.Messages - before.Messages,
		Bytes:    after.Bytes - before.Bytes,
		FieldOps: after.FieldOps - before.FieldOps,
	}
	return scaled, nil
}
