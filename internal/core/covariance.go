package core

import (
	"math"
	"runtime"
	"sync"
	"time"

	"sqm/internal/bgw"
	"sqm/internal/circuit"
	"sqm/internal/linalg"
	"sqm/internal/quant"
	"sqm/internal/randx"
)

// CovarianceSensitivities returns Lemma 5's L2/L1 sensitivities of the
// quantized covariance release for records with ‖x‖₂ <= c over n
// attributes: Δ₂ = γ²c² + n, Δ₁ = min(Δ₂², √d·Δ₂) with d = n².
func CovarianceSensitivities(gamma, c float64, n int) (delta2, delta1 float64) {
	delta2 = gamma*gamma*c*c + float64(n)
	d := float64(n) * float64(n)
	delta1 = math.Min(delta2*delta2, math.Sqrt(d)*delta2)
	return delta2, delta1
}

// Covariance runs the PCA instantiation of SQM (§V-A): the clients
// quantize their columns, jointly compute the Gram matrix X̂ᵀX̂ of the
// quantized data, and perturb it with a symmetric Skellam noise matrix
// assembled from per-client shares (entry (a,b), a <= b, receives
// Σ_j Sk(μ/n) and is mirrored). The server receives C̃ and down-scales
// by γ². The polynomial here is f(x) = xᵀx with unit coefficients, so
// per the paper no coefficient pre-processing is applied and the scale
// is γ^λ = γ².
func Covariance(x *linalg.Matrix, p Params) (*linalg.Matrix, *Trace, error) {
	if err := p.normalize(x.Cols); err != nil {
		return nil, nil, err
	}
	// Meter the release at Lemma 5's closed form for unit-norm records.
	if p.Acct != nil {
		d2, d1 := CovarianceSensitivities(p.Gamma, 1, x.Cols)
		p.Acct.AddSkellam(d1, d2, p.Mu)
	}
	start := time.Now()
	_, clientRNGs := rngFamily(p.Seed, p.NumClients)
	qd := quantizeByClient(x, p, clientRNGs)

	n := x.Cols
	pairs := n * (n + 1) / 2

	// Static overflow check: each Gram entry is at most m·maxAbs² plus
	// the noise tail.
	maxAbs := float64(qd.MaxAbs())
	if err := checkFieldBound(maxAbs*maxAbs*float64(x.Rows) + noiseMargin(p.Mu)); err != nil {
		return nil, nil, err
	}

	tr := &Trace{Scale: p.Gamma * p.Gamma, Lat: p.Latency}
	var upper []int64
	var err error
	switch {
	case p.Engine == EnginePlain:
		upper, err = plainCovariance(qd, clientRNGs, p.Mu, pairs, tr)
	case p.Engine.IsMPC():
		upper, err = mpcCovariance(qd, clientRNGs, &p, pairs, tr)
	default:
		err = errUnknownEngine(p.Engine)
	}
	if err != nil {
		return nil, nil, err
	}

	// Unpack the upper triangle into the symmetric estimate C̃/γ².
	out := linalg.NewMatrix(n, n)
	idx := 0
	inv := 1 / tr.Scale
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			v := float64(upper[idx]) * inv
			out.Set(a, b, v)
			out.Set(b, a, v)
			idx++
		}
	}
	tr.Compute = time.Since(start)
	return out, tr, nil
}

func errUnknownEngine(k EngineKind) error {
	return &engineError{kind: k}
}

type engineError struct{ kind EngineKind }

func (e *engineError) Error() string { return "core: unknown engine " + e.kind.String() }

// plainCovariance computes the upper triangle of X̂ᵀX̂ plus aggregated
// noise with direct integer arithmetic.
func plainCovariance(qd *quant.IntMatrix, clientRNGs []*randx.RNG, mu float64, pairs int, tr *Trace) ([]int64, error) {
	n := qd.Cols
	upper := make([]int64, pairs)
	// Row-major accumulation over records keeps the inner loop cache
	// friendly; large inputs split across workers with exact int64
	// partial sums, so the result is independent of the schedule.
	accumulate := func(lo, hi int, dst []int64) {
		for i := lo; i < hi; i++ {
			row := qd.Row(i)
			idx := 0
			for a := 0; a < n; a++ {
				va := row[a]
				if va == 0 {
					idx += n - a
					continue
				}
				for b := a; b < n; b++ {
					dst[idx] += va * row[b]
					idx++
				}
			}
		}
	}
	const parallelThreshold = 1 << 22 // ~4M multiply-adds
	if work := qd.Rows * pairs; work >= parallelThreshold && qd.Rows >= 4 {
		workers := runtime.GOMAXPROCS(0)
		if workers > qd.Rows {
			workers = qd.Rows
		}
		partials := make([][]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * qd.Rows / workers
			hi := (w + 1) * qd.Rows / workers
			partials[w] = make([]int64, pairs)
			wg.Add(1)
			go func(lo, hi int, dst []int64) {
				defer wg.Done()
				accumulate(lo, hi, dst)
			}(lo, hi, partials[w])
		}
		wg.Wait()
		for _, p := range partials {
			for k, v := range p {
				upper[k] += v
			}
		}
	} else {
		accumulate(0, qd.Rows, upper)
	}
	noiseStart := time.Now()
	share := mu / float64(len(clientRNGs))
	for _, g := range clientRNGs {
		for k := range upper {
			upper[k] += g.Skellam(share)
		}
	}
	tr.NoiseCompute += time.Since(noiseStart)
	return upper, nil
}

// mpcCovariance runs the same computation over secret shares with the
// selected Evaluator backend, recorded as a level-scheduled plan: one
// input round (data + noise), one batched inner-product round (all
// fused gates in a single reshare exchange), one batched opening
// round. Noise shares enter during the input round and are aggregated
// locally.
func mpcCovariance(qd *quant.IntMatrix, clientRNGs []*randx.RNG, p *Params, pairs int, tr *Trace) ([]int64, error) {
	n := qd.Cols
	b := circuit.NewBuilder(p.Parties, p.Threshold)
	cols := make([]bgw.Vec, n)
	for j := 0; j < n; j++ {
		cols[j] = b.InputVec(p.partyOf(p.clientOf(j, n)), qd.Col(j))
	}
	// Noise: every client samples and inputs its share vector; the
	// aggregation is local addition of share vectors.
	noiseStart := time.Now()
	share := p.Mu / float64(len(clientRNGs))
	var noiseAcc bgw.Vec
	for j, g := range clientRNGs {
		v := b.InputVec(p.partyOf(j), g.SkellamVec(pairs, share))
		if noiseAcc == nil {
			noiseAcc = v
		} else {
			noiseAcc = b.AddVec(noiseAcc, v)
		}
	}
	tr.NoiseCompute += time.Since(noiseStart)
	tr.NoiseRounds++

	pairList := make([]bgw.VecPair, pairs)
	idx := 0
	for a := 0; a < n; a++ {
		for c := a; c < n; c++ {
			pairList[idx] = bgw.VecPair{A: cols[a], B: cols[c]}
			idx++
		}
	}
	dots := b.DotBatch(pairList, 0)
	outIdx := b.OpenVecIdx(b.AddVec(b.FromScalars(dots), noiseAcc))
	plan, err := b.Compile()
	if err != nil {
		return nil, err
	}

	eng, err := p.newEvaluator(0x51c0)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	res, err := plan.Execute(eng, circuit.Bindings{})
	if err != nil {
		return nil, err
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	tr.Stats = eng.Stats()
	return res.OpenedVec(outIdx), nil
}
