package core

import (
	"testing"

	"sqm/internal/poly"
)

// allEngines lists every backend with the party count the MPC ones run
// at; EnginePlain ignores Parties.
func allEngines() []struct {
	name    string
	kind    EngineKind
	parties int
} {
	return []struct {
		name    string
		kind    EngineKind
		parties int
	}{
		{"plain", EnginePlain, 0},
		{"bgw", EngineBGW, 4},
		{"actor", EngineActorBGW, 4},
		{"actor-net", EngineActorBGWNet, 4},
	}
}

// TestAllEnginesBitIdentical is the refactor's acceptance gate: for one
// seeded SQM polynomial evaluation, the plaintext engine, the
// monolithic BGW engine, the party-actor engine over the channel mesh
// and the party-actor engine over TCP sockets must all open the exact
// same integers. Shamir reconstruction cancels the share randomness, so
// any divergence means an engine corrupted the arithmetic or consumed a
// quantization/noise RNG stream out of order.
func TestAllEnginesBitIdentical(t *testing.T) {
	x := randMatrix(15, 3, 0.8, 21)
	f := poly.MustMulti(
		poly.MustPolynomial(3,
			poly.Monomial{Coef: 1.1, Exps: []int{1, 1, 0}},
			poly.Monomial{Coef: -0.3, Exps: []int{0, 0, 2}},
			poly.Monomial{Coef: 0.7, Exps: []int{1, 1, 1}},
			poly.Monomial{Coef: 0.05, Exps: []int{0, 1, 0}},
		),
		poly.MustPolynomial(3, poly.Monomial{Coef: 1, Exps: []int{2, 0, 0}}),
	)
	base := Params{Gamma: 32, Mu: 40, NumClients: 3, Seed: 99}

	var want []int64
	for _, e := range allEngines() {
		p := base
		p.Engine = e.kind
		p.Parties = e.parties
		_, tr, err := EvaluatePolynomialSum(f, x, p)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if want == nil {
			want = tr.Scaled
			continue
		}
		for d := range want {
			if tr.Scaled[d] != want[d] {
				t.Fatalf("%s dim %d: opened %d, plain opened %d", e.name, d, tr.Scaled[d], want[d])
			}
		}
		if tr.Stats.Messages == 0 || tr.Stats.Rounds == 0 {
			t.Fatalf("%s: MPC trace must meter communication", e.name)
		}
	}
}

// TestAllEnginesCovarianceAgree extends the identity check to the
// specialized covariance protocol (fused inner-product gates).
func TestAllEnginesCovarianceAgree(t *testing.T) {
	x := randMatrix(20, 4, 0.6, 31)
	base := Params{Gamma: 64, Mu: 30, Seed: 7}

	var want []int64
	for _, e := range allEngines() {
		p := base
		p.Engine = e.kind
		p.Parties = e.parties
		_, tr, err := Covariance(x, p)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if want == nil {
			want = tr.Scaled
			continue
		}
		for d := range want {
			if tr.Scaled[d] != want[d] {
				t.Fatalf("%s entry %d: opened %d, plain opened %d", e.name, d, tr.Scaled[d], want[d])
			}
		}
	}
}

// TestAllEnginesLRGradientAgree extends the identity check to the
// stateful logistic-regression protocol: setup sharing plus two
// gradient rounds against the same weights.
func TestAllEnginesLRGradientAgree(t *testing.T) {
	feat := randMatrix(18, 3, 0.5, 41)
	labels := make([]float64, feat.Rows)
	for i := range labels {
		labels[i] = float64(i % 2)
	}
	w := []float64{0.2, -0.1, 0.4}
	base := Params{Gamma: 32, Mu: 25, Seed: 17}

	var want [][]int64
	for _, e := range allEngines() {
		p := base
		p.Engine = e.kind
		p.Parties = e.parties
		proto, err := NewLRProtocol(feat, labels, p)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		var got [][]int64
		for round := 0; round < 2; round++ {
			_, tr, err := proto.GradientSum(w, nil)
			if err != nil {
				proto.Close()
				t.Fatalf("%s round %d: %v", e.name, round, err)
			}
			got = append(got, tr.Scaled)
		}
		proto.Close()
		if want == nil {
			want = got
			continue
		}
		for round := range want {
			for d := range want[round] {
				if got[round][d] != want[round][d] {
					t.Fatalf("%s round %d dim %d: %d != %d", e.name, round, d, got[round][d], want[round][d])
				}
			}
		}
	}
}
