package bench

import (
	"fmt"
	"math"

	"sqm/internal/beaver"
	"sqm/internal/bgw"
	"sqm/internal/dataset"
	"sqm/internal/dp"
	"sqm/internal/field"
	"sqm/internal/linalg"
	"sqm/internal/logreg"
	"sqm/internal/quant"
	"sqm/internal/randx"
	"sqm/internal/secagg"
	"time"
)

// Ablations runs the four design-decision studies called out in
// DESIGN.md. They are not paper figures; they quantify why SQM is built
// the way it is.
func Ablations(o Options) []*Table {
	o = o.Defaults()
	return []*Table{
		AblationCoefficientScaling(o),
		AblationFusedGates(o),
		AblationRounding(o),
		AblationSkellamVsGaussian(o),
		AblationTaylorOrder(o),
		AblationMPCEngines(o),
		AblationSparseGram(o),
		AblationNoiseTransport(o),
	}
}

// AblationNoiseTransport compares two ways of aggregating the clients'
// Skellam shares: through BGW inputs (as the mechanism does when it is
// already inside the MPC) versus the pairwise-mask secure aggregation
// of the paper's reference [45] — the noise sum is linear, so the cheap
// transport suffices and the results agree exactly.
func AblationNoiseTransport(o Options) *Table {
	const (
		clients = 6
		length  = 500
		mu      = 1000.0
	)
	tbl := &Table{
		ID:     "abl-transport",
		Title:  fmt.Sprintf("Noise aggregation transports: BGW inputs vs pairwise-mask secagg (%d clients, %d coords)", clients, length),
		Header: []string{"transport", "messages", "bytes", "aggregate matches"},
	}
	// Identical per-client noise draws for both transports.
	draw := func() [][]int64 {
		root := randx.New(o.Seed + 99)
		out := make([][]int64, clients)
		for j := range out {
			out[j] = root.Fork().SkellamVec(length, mu/clients)
		}
		return out
	}
	want := make([]int64, length)
	for _, shares := range draw() {
		for k, v := range shares {
			want[k] += v
		}
	}

	// BGW transport.
	eng, err := bgw.NewEngine(bgw.Config{Parties: clients, Seed: o.Seed})
	if err != nil {
		tbl.Notes = append(tbl.Notes, err.Error())
		return tbl
	}
	var acc *bgw.SharedVec
	for j, shares := range draw() {
		v := eng.InputVec(j, shares)
		if acc == nil {
			acc = v
		} else {
			acc = eng.AddVec(acc, v)
		}
	}
	got := eng.OpenVec(acc)
	bgwMatch := equalInt64(got, want)
	st := eng.Stats()
	tbl.Rows = append(tbl.Rows, []string{"BGW inputs", fmt.Sprint(st.Messages), fmt.Sprint(st.Bytes), bgwMatch})

	// Secagg transport.
	grp, err := secagg.NewGroup(clients, length, o.Seed)
	if err != nil {
		tbl.Notes = append(tbl.Notes, err.Error())
		return tbl
	}
	masked := make([][]field.Elem, clients)
	for j, shares := range draw() {
		masked[j], err = grp.Mask(j, 0, shares)
		if err != nil {
			tbl.Notes = append(tbl.Notes, err.Error())
			return tbl
		}
	}
	sa, err := grp.Aggregate(masked)
	if err != nil {
		tbl.Notes = append(tbl.Notes, err.Error())
		return tbl
	}
	saMatch := equalInt64(sa, want)
	tbl.Rows = append(tbl.Rows, []string{
		"secagg masks", fmt.Sprint(grp.Messages()), fmt.Sprint(grp.Messages() * int64(length) * 8), saMatch,
	})
	tbl.Notes = append(tbl.Notes,
		"secagg sends one masked vector per client to the server; BGW sends one share vector per client pair — the linear noise sum does not need the heavier machinery")
	return tbl
}

func equalInt64(a, b []int64) string {
	if len(a) != len(b) {
		return "NO"
	}
	for i := range a {
		if a[i] != b[i] {
			return "NO"
		}
	}
	return "yes"
}

// AblationSparseGram measures the CSR Gram path against the dense one
// on a CiteSeer-like sparse shape: the covariance cost drops from
// O(m·n²) to O(Σ nnz²), which is what makes the full-size sparse
// datasets tractable.
func AblationSparseGram(o Options) *Table {
	m, n := 1000, 600
	tbl := &Table{
		ID:     "abl-sparse",
		Title:  fmt.Sprintf("Dense vs CSR Gram on CiteSeer-like data (m=%d, n=%d)", m, n),
		Header: []string{"path", "time (ms)", "max |diff|"},
	}
	x := dataset.CiteSeerLike(m, n, o.Seed).X
	s := linalg.SparseFromDense(x, 0)

	t0 := time.Now()
	dense := x.Gram()
	denseMS := time.Since(t0).Seconds() * 1000

	t1 := time.Now()
	sparse := s.Gram()
	sparseMS := time.Since(t1).Seconds() * 1000

	diff := sparse.Sub(dense).MaxAbs()
	tbl.Rows = append(tbl.Rows,
		[]string{"dense", fmt.Sprintf("%.2f", denseMS), "0"},
		[]string{"CSR", fmt.Sprintf("%.2f", sparseMS), fe(diff)},
	)
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("nnz density %.2f%%; identical results, ~%.0fx faster on this shape",
			100*float64(s.NNZ())/float64(m*n), denseMS/math.Max(sparseMS, 1e-6)))
	return tbl
}

// AblationMPCEngines compares BGW against the additive-sharing engine
// with Beaver triples on the same noisy inner-product workload: SQM is
// MPC-agnostic (§II), and the offline/online split moves almost all
// multiplication cost out of the latency-critical path.
func AblationMPCEngines(o Options) *Table {
	const (
		parties = 4
		length  = 200
	)
	tbl := &Table{
		ID:     "abl-engine",
		Title:  fmt.Sprintf("BGW vs additive+Beaver on a %d-element noisy inner product (P=%d)", length, parties),
		Header: []string{"engine", "online messages", "online field ops", "offline messages", "result"},
	}
	g := randx.New(o.Seed)
	xs := make([]int64, length)
	ys := make([]int64, length)
	for i := range xs {
		xs[i] = int64(g.IntN(1000)) - 500
		ys[i] = int64(g.IntN(1000)) - 500
	}
	var want int64
	for i := range xs {
		want += xs[i] * ys[i]
	}

	// BGW: fused inner product, one resharing.
	bgwEng, err := bgw.NewEngine(bgw.Config{Parties: parties, Seed: o.Seed})
	if err != nil {
		tbl.Notes = append(tbl.Notes, err.Error())
		return tbl
	}
	xv := bgwEng.InputVec(0, xs)
	yv := bgwEng.InputVec(1, ys)
	bgwEng.ResetStats()
	bgwGot := bgwEng.Open(bgwEng.Dot(xv, yv))
	bst := bgwEng.Stats()
	tbl.Rows = append(tbl.Rows, []string{
		"BGW (fused gate)", fmt.Sprint(bst.Messages), fmt.Sprint(bst.FieldOps), "0", verdict(bgwGot, want),
	})

	// Beaver: one triple per product, offline from the BGW source.
	offline, err := bgw.NewEngine(bgw.Config{Parties: parties, Seed: o.Seed ^ 1})
	if err != nil {
		tbl.Notes = append(tbl.Notes, err.Error())
		return tbl
	}
	bv, err := beaver.NewEngine(beaver.Config{Parties: parties, Seed: o.Seed, Source: beaver.NewBGWSource(bgw.Eval(offline), o.Seed)})
	if err != nil {
		tbl.Notes = append(tbl.Notes, err.Error())
		return tbl
	}
	if err := bv.Precompute(length); err != nil {
		tbl.Notes = append(tbl.Notes, err.Error())
		return tbl
	}
	bvXs := make([]*beaver.Share, length)
	bvYs := make([]*beaver.Share, length)
	for i := range xs {
		bvXs[i] = bv.Input(0, xs[i])
		bvYs[i] = bv.Input(1, ys[i])
	}
	bv.ResetStats()
	acc := bv.Zero()
	for i := range xs {
		prod, err := bv.Mul(bvXs[i], bvYs[i])
		if err != nil {
			tbl.Notes = append(tbl.Notes, err.Error())
			return tbl
		}
		acc = bv.Add(acc, prod)
	}
	beaverGot := bv.Open(acc)
	vst := bv.Stats()
	tbl.Rows = append(tbl.Rows, []string{
		"additive + Beaver", fmt.Sprint(vst.Messages), fmt.Sprint(vst.FieldOps),
		fmt.Sprint(offline.Stats().Messages), verdict(beaverGot, want),
	})
	tbl.Notes = append(tbl.Notes,
		"BGW's fused gate wins when products can batch into one resharing; Beaver wins per isolated multiplication once triples are precomputed offline")
	return tbl
}

func verdict(got, want int64) string {
	if got == want {
		return "exact"
	}
	return fmt.Sprintf("WRONG (%d != %d)", got, want)
}

// AblationTaylorOrder compares the order-1 and order-3 Taylor sigmoid
// trainers at equal privacy budgets (the §V-C extension): order 3
// approximates the sigmoid better but pays a γ⁵ amplification, so its
// feasible γ is smaller and the conservative degree-4 sensitivity costs
// noise — empirically order 1 is the better trade, which is the paper's
// choice.
func AblationTaylorOrder(o Options) *Table {
	mTrain, mTest, d, q := lrShape(Options{}) // always the small shape
	tbl := &Table{
		ID:     "abl-taylor",
		Title:  fmt.Sprintf("Taylor order 1 vs 3 for SQM logistic regression (m=%d, d=%d, %d runs)", mTrain, d, o.Runs),
		Header: []string{"eps", "order 1 (g=2^13)", "order 3 (g=2^8)", "non-private"},
	}
	ds, err := dataset.ACSIncomeLike("CA", mTrain, mTest, d, o.Seed)
	if err != nil {
		tbl.Notes = append(tbl.Notes, err.Error())
		return tbl
	}
	nonpriv := logreg.Accuracy(logreg.TrainNonPrivate(ds.X, ds.Labels, o.Seed), ds.TestX, ds.TestLabels)
	for _, eps := range []float64{1, 4, 8} {
		cfg := logreg.Config{Eps: eps, Delta: 1e-5, Epochs: epochsFor(eps), SampleRate: q}
		o1 := avgUtility(o, func(seed uint64) (float64, error) {
			c := cfg
			c.Seed = seed
			c.Gamma = 1 << 13
			m, err := logreg.TrainSQM(ds.X, ds.Labels, c)
			if err != nil {
				return 0, err
			}
			return logreg.Accuracy(m, ds.TestX, ds.TestLabels), nil
		})
		o3 := avgUtility(o, func(seed uint64) (float64, error) {
			c := cfg
			c.Seed = seed
			c.Gamma = 1 << 8
			m, err := logreg.TrainSQMOrder3(ds.X, ds.Labels, c)
			if err != nil {
				return 0, err
			}
			return logreg.Accuracy(m, ds.TestX, ds.TestLabels), nil
		})
		tbl.Rows = append(tbl.Rows, []string{fe(eps), f3(o1), f3(o3), f3(nonpriv)})
	}
	tbl.Notes = append(tbl.Notes, "order 3's tighter sigmoid fit does not pay for its smaller feasible gamma and degree-4 sensitivity")
	return tbl
}

// AblationCoefficientScaling compares Algorithm 3's uniform-γ^{λ+1}
// coefficient pre-processing against the naive alternative the paper
// rejects (§IV-B): evaluating and perturbing each degree class
// separately, which splits the privacy budget and adds the per-class
// worst cases. Reported: the per-coordinate noise std in unscaled units
// for the LR gradient polynomial.
func AblationCoefficientScaling(o Options) *Table {
	const (
		d     = 200
		eps   = 1.0
		delta = 1e-5
	)
	tbl := &Table{
		ID:     "abl-coef",
		Title:  "Coefficient pre-processing (Algorithm 3) vs per-degree release (LR gradient, d=200, eps=1)",
		Header: []string{"gamma", "joint noise std", "per-degree noise std", "ratio"},
	}
	for _, gamma := range []float64{256, 1024, 4096} {
		// Joint: Lemma 7 sensitivities, single release at full budget.
		d2, d1 := logreg.Sensitivities(gamma, d)
		muJoint, err := dp.CalibrateSkellamMu(eps, delta, d1, d2, 1, 1)
		if err != nil {
			tbl.Notes = append(tbl.Notes, err.Error())
			continue
		}
		joint := math.Sqrt(2*muJoint) / math.Pow(gamma, 3)

		// Naive: the degree-1 class (½·x) and degree-2 class
		// (⟨w/4,x⟩x − y·x) are computed at their own scales (γ² and γ³)
		// and perturbed separately at ε/2 each.
		g2, g3 := gamma*gamma, gamma*gamma*gamma
		d2a := 0.5*g2 + 2*gamma // ½·x scaled by γ², + rounding slack
		d1a := math.Min(d2a*d2a, math.Sqrt(d)*d2a)
		muA, err := dp.CalibrateSkellamMu(eps/2, delta/2, d1a, d2a, 1, 1)
		if err != nil {
			tbl.Notes = append(tbl.Notes, err.Error())
			continue
		}
		d2b := 1.25*g3 + math.Sqrt(9*math.Pow(gamma, 5)*d) // |⟨w/4,x⟩| + |y| ≤ 1.25
		d1b := math.Min(d2b*d2b, math.Sqrt(d)*d2b)
		muB, err := dp.CalibrateSkellamMu(eps/2, delta/2, d1b, d2b, 1, 1)
		if err != nil {
			tbl.Notes = append(tbl.Notes, err.Error())
			continue
		}
		// Total unscaled noise variance = sum of the rescaled parts.
		naive := math.Sqrt(2*muA/(g2*g2) + 2*muB/(g3*g3))
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%g", gamma), fe(joint), fe(naive), f3(naive / joint),
		})
	}
	tbl.Notes = append(tbl.Notes, "ratio > 1 means the rejected per-degree scheme needs more noise at equal (eps, delta)")
	return tbl
}

// AblationFusedGates compares the fused inner-product gate (one
// resharing per Gram entry) against per-multiplication resharing on the
// same covariance computation, counting messages and rounds.
func AblationFusedGates(o Options) *Table {
	const (
		m, n    = 40, 6
		parties = 4
	)
	tbl := &Table{
		ID:     "abl-fused",
		Title:  fmt.Sprintf("Fused inner-product gates vs per-multiplication resharing (Gram, m=%d, n=%d, P=%d)", m, n, parties),
		Header: []string{"variant", "messages", "field ops", "result matches"},
	}
	x := dataset.KDDCupLike(m, n, o.Seed).X
	qd := quant.Matrix(x, 64, randx.New(o.Seed), nil)

	run := func(fused bool) (int64, int64, []int64) {
		eng, err := bgw.NewEngine(bgw.Config{Parties: parties, Seed: o.Seed})
		if err != nil {
			return 0, 0, nil
		}
		cols := make([]*bgw.SharedVec, n)
		for j := 0; j < n; j++ {
			cols[j] = eng.InputVec(j%parties, qd.Col(j))
		}
		eng.ResetStats()
		var out []int64
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				if fused {
					out = append(out, eng.Open(eng.Dot(cols[a], cols[b])))
					continue
				}
				acc := eng.Zero()
				for i := 0; i < m; i++ {
					acc = eng.Add(acc, eng.Mul(cols[a].At(i), cols[b].At(i)))
				}
				out = append(out, eng.Open(acc))
			}
		}
		st := eng.Stats()
		return st.Messages, st.FieldOps, out
	}
	fm, fo, fr := run(true)
	nm, no, nr := run(false)
	match := "yes"
	for i := range fr {
		if fr[i] != nr[i] {
			match = "NO"
		}
	}
	tbl.Rows = append(tbl.Rows,
		[]string{"fused (SQM)", fmt.Sprint(fm), fmt.Sprint(fo), match},
		[]string{"per-mult", fmt.Sprint(nm), fmt.Sprint(no), match},
	)
	tbl.Notes = append(tbl.Notes, fmt.Sprintf("fusion reduces messages by %.0fx on this shape", float64(nm)/float64(fm)))
	return tbl
}

// AblationRounding compares unbiased stochastic rounding (Algorithm 2)
// against nearest rounding on the covariance estimate at coarse γ:
// nearest rounding leaves a systematic bias that no amount of averaging
// removes.
func AblationRounding(o Options) *Table {
	const (
		m, n   = 400, 8
		trials = 40
	)
	tbl := &Table{
		ID:     "abl-round",
		Title:  fmt.Sprintf("Stochastic vs nearest rounding: covariance bias over %d trials (m=%d, n=%d)", trials, m, n),
		Header: []string{"gamma", "stochastic |bias|", "nearest |bias|"},
	}
	x := dataset.KDDCupLike(m, n, o.Seed).X
	truth := x.Gram()
	for _, gamma := range []float64{2, 4, 8} {
		// Average the signed error of an off-diagonal entry, where the
		// rounding errors of the two columns are independent and
		// stochastic rounding is exactly unbiased. (Diagonal entries
		// additionally carry the rounding *variance*, for both modes.)
		var stoch, nearest float64
		for trial := 0; trial < trials; trial++ {
			g := randx.New(o.Seed + uint64(trial))
			qs := quant.Matrix(x, gamma, g, nil)
			stochErr := qs.Float(gamma).Gram().Sub(truth)
			stoch += stochErr.At(0, 1) / trials

			qn := quant.NewIntMatrix(m, n)
			for i, v := range x.Data {
				qn.Data[i] = quant.Nearest(v, gamma)
			}
			nearErr := qn.Float(gamma).Gram().Sub(truth)
			nearest += nearErr.At(0, 1) / trials
		}
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprintf("%g", gamma), fe(math.Abs(stoch)), fe(math.Abs(nearest))})
	}
	tbl.Notes = append(tbl.Notes,
		"stochastic rounding is unbiased up to the (small) E[e^2] diagonal term; nearest rounding's bias is deterministic and survives averaging")
	return tbl
}

// AblationSkellamVsGaussian compares the RDP cost of Skellam noise
// against continuous Gaussian noise of identical variance (σ² = 2μ):
// Skellam pays a vanishing premium as μ grows — the reason large γ
// (hence large μ) recovers centralized utility.
func AblationSkellamVsGaussian(o Options) *Table {
	const (
		delta  = 1e-5
		delta2 = 100.0
	)
	tbl := &Table{
		ID:     "abl-noise",
		Title:  "Skellam vs equal-variance Gaussian: converted eps at delta=1e-5 (Delta2=100)",
		Header: []string{"mu", "eps(Skellam)", "eps(Gaussian)", "premium"},
	}
	for _, mu := range []float64{1e4, 1e5, 1e6, 1e8} {
		sk, _ := dp.SkellamEpsilon(delta2, delta2, mu, 1, 1, delta, dp.DefaultMaxAlpha)
		ga, _ := dp.GaussianEpsilon(delta2, math.Sqrt(2*mu), 1, 1, delta, dp.DefaultMaxAlpha)
		tbl.Rows = append(tbl.Rows, []string{fe(mu), f4(sk), f4(ga), fe(sk - ga)})
	}
	tbl.Notes = append(tbl.Notes, "the premium is the Delta1/mu term of Lemma 1 and vanishes as mu grows")
	return tbl
}
