package bench

import (
	"fmt"
	"math"

	"sqm/internal/dp"
)

// Profile prints the privacy profile — ε as a function of δ — of one
// calibrated SQM release next to the equal-variance Gaussian: the two
// curves coincide to several digits across the whole δ range, the
// curve-level view of the mechanism's headline claim.
func Profile(o Options) *Table {
	o = o.Defaults()
	const (
		delta2 = 1000.0
		mu     = 5e7
	)
	tbl := &Table{
		ID:     "profile",
		Title:  fmt.Sprintf("Privacy profile of one Skellam release (Delta2=%g, mu=%g) vs equal-variance Gaussian", delta2, mu),
		Header: []string{"delta", "eps(Skellam)", "eps(Gaussian)"},
	}
	sigma := math.Sqrt(2 * mu)
	for _, d := range []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3} {
		sk, _ := dp.SkellamEpsilon(delta2, delta2, mu, 1, 1, d, dp.DefaultMaxAlpha)
		ga, _ := dp.GaussianEpsilon(delta2, sigma, 1, 1, d, dp.DefaultMaxAlpha)
		tbl.Rows = append(tbl.Rows, []string{fe(d), f4(sk), f4(ga)})
	}
	tbl.Notes = append(tbl.Notes, "smaller delta costs more eps along the RDP conversion curve; the Skellam premium is invisible at this mu")
	return tbl
}

// Table1 reprints the asymptotic complexity summary of §V-C. The rows
// are analytic; the timing tables (II, IV, V) validate their shape
// empirically.
func Table1() *Table {
	return &Table{
		ID:     "table1",
		Title:  "Complexities of SQM via BGW (m records, n attributes, P clients, scale gamma)",
		Header: []string{"task", "computation (per client)", "communication", "time"},
		Rows: [][]string{
			{"PCA", "O(mP + n^2 m log m / P + n^2)", "O(n^2 m P log gamma)", "O(n^2 m log m)"},
			{"LR", "O(m(n-1)P + m(n-1) log m / P)", "O(m(n-1) P log m log gamma)", "O(m(n-1) log m)"},
		},
		Notes: []string{"the DP overhead (P Skellam summations) is asymptotically negligible against the MPC cost"},
	}
}

// Table3 reprints the threat-model comparison with prior VFL-DP work
// (§VII). Qualitative; included so every numbered table has a runner.
func Table3() *Table {
	return &Table{
		ID:     "table3",
		Title:  "Comparison with existing VFL DP solutions",
		Header: []string{"approach", "noise sampler", "threat model", "task"},
		Rows: [][]string{
			{"Wu et al. [3]", "n clients, shared randomness", "curious server only", "decision tree"},
			{"Xu et al. [75]", "one client", "curious server only", "logistic regression"},
			{"Ranbaduge & Ding [76]", "one client", "curious server only", "logistic regression"},
			{"Li et al. [5]", "n clients independently (local DP)", "curious clients and server", "k-means"},
			{"SQM (this work)", "n clients independently (distributed DP)", "curious clients and server", "polynomial evaluation"},
		},
	}
}
