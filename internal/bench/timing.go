package bench

import (
	"fmt"
	"time"

	"sqm/internal/core"
	"sqm/internal/dataset"
	"sqm/internal/linalg"
	"sqm/internal/randx"
)

// The timing tables (II, IV, V) execute the real BGW protocol whenever
// the predicted field-operation count fits Options.RealBGWBudget, and
// otherwise extrapolate from a calibration run: modeled time =
// predicted ops × measured seconds/op + rounds × 0.1 s latency — the
// same fixed-message-cost simulation the paper uses. Extrapolated cells
// carry a trailing '*'.

// timingResult is one cell of a timing table. total and noise follow
// the paper's model (measured compute + rounds × latency); measured is
// the raw wall-clock the protocol actually ran for on this machine (the
// calibration run's wall-clock for extrapolated cells), reported
// alongside so modeled and measured time can be compared directly.
type timingResult struct {
	total, noise time.Duration
	measured     time.Duration
	extrapolated bool
}

func (r timingResult) cells() (string, string, string) {
	mark := ""
	if r.extrapolated {
		mark = "*"
	}
	return fmt.Sprintf("%.2f%s", r.total.Seconds(), mark),
		fmt.Sprintf("%.2f%s", r.noise.Seconds(), mark),
		fmt.Sprintf("%.3f", r.measured.Seconds())
}

// estimatePCAOps mirrors the bgw package's FieldOps metering for the
// covariance protocol.
func estimatePCAOps(m, n, parties, threshold, clients int) (total, noise int64) {
	p, t := int64(parties), int64(threshold)
	pairs := int64(n) * int64(n+1) / 2
	inputs := int64(m) * int64(n) * p * (t + 1)
	noiseOps := pairs * int64(clients) * p * (t + 1)
	dots := pairs * (p*int64(m) + p*(p+t+1))
	open := p * pairs
	return inputs + noiseOps + dots + open, noiseOps
}

// estimateLROps mirrors the metering for data sharing plus one
// full-batch gradient round.
func estimateLROps(m, d, parties, threshold, clients int) (total, noise int64) {
	p, t := int64(parties), int64(threshold)
	setup := int64(m) * int64(d+1) * p * (t + 1)
	fold := int64(m) * int64(d+1) * p
	noiseOps := int64(clients) * int64(d) * p * (t + 1)
	inner := int64(d) * (int64(m)*p + p*(p+t+1))
	open := p * int64(d)
	return setup + fold + noiseOps + inner + open, noiseOps
}

func timingData(m, n int, seed uint64) *linalg.Matrix {
	return dataset.KDDCupLike(m, n, seed).X
}

// pcaTiming measures (or extrapolates) one PCA cell at the paper's
// γ = 18 with P clients contributing noise.
func pcaTiming(o Options, m, n, parties int) timingResult {
	threshold := (parties - 1) / 2
	est, estNoise := estimatePCAOps(m, n, parties, threshold, parties)
	params := core.Params{
		Gamma: 18, Mu: 1e6, NumClients: parties,
		Engine: core.EngineBGW, Parties: parties, Threshold: threshold, Seed: o.Seed,
	}
	if est <= o.RealBGWBudget {
		_, tr, err := core.Covariance(timingData(m, n, o.Seed), params)
		if err != nil {
			return timingResult{}
		}
		return timingResult{total: tr.TotalTime(), noise: tr.NoiseTime(), measured: tr.Compute}
	}
	// Calibration run: shrink n until the predicted ops fit a slice of
	// the budget, then scale the measured per-op cost up.
	calN := n
	for {
		if calOps, _ := estimatePCAOps(m, calN, parties, threshold, parties); calOps <= o.RealBGWBudget/4 || calN <= 4 {
			break
		}
		calN /= 2
	}
	_, tr, err := core.Covariance(timingData(m, calN, o.Seed), params)
	if err != nil || tr.Stats.FieldOps == 0 {
		return timingResult{}
	}
	secPerOp := (tr.Compute - tr.NoiseCompute).Seconds() / float64(tr.Stats.FieldOps)
	calNoiseOps := estNoiseOpsPCA(m, calN, parties, threshold)
	noiseSecPerOp := tr.NoiseCompute.Seconds() / float64(calNoiseOps)
	lat := tr.Stats.NetTime(tr.Lat)
	total := time.Duration(float64(est)*secPerOp*float64(time.Second)) + lat
	noise := time.Duration(float64(estNoise)*noiseSecPerOp*float64(time.Second)) +
		time.Duration(tr.NoiseRounds)*tr.Lat
	return timingResult{total: total, noise: noise, measured: tr.Compute, extrapolated: true}
}

func estNoiseOpsPCA(m, n, parties, threshold int) int64 {
	_, noise := estimatePCAOps(m, n, parties, threshold, parties)
	if noise == 0 {
		return 1
	}
	return noise
}

// lrTiming measures one LR cell: data sharing plus one full-batch
// gradient round over m records and d = n−1 features.
func lrTiming(o Options, m, n, parties int) timingResult {
	d := n - 1
	if d < 1 {
		d = 1
	}
	threshold := (parties - 1) / 2
	est, _ := estimateLROps(m, d, parties, threshold, parties)
	ds, err := dataset.ACSIncomeLike("CA", m, 1, d, o.Seed)
	if err != nil {
		return timingResult{}
	}
	run := func(feat *linalg.Matrix, labels []float64) (*core.Trace, time.Duration, error) {
		start := time.Now()
		proto, err := core.NewLRProtocol(feat, labels, core.Params{
			Gamma: 18, Mu: 1e6, NumClients: parties,
			Engine: core.EngineBGW, Parties: parties, Threshold: threshold, Seed: o.Seed,
		})
		if err != nil {
			return nil, 0, err
		}
		defer proto.Close()
		setup := time.Since(start)
		batch := make([]int, feat.Rows)
		for i := range batch {
			batch[i] = i
		}
		w := randx.New(o.Seed).GaussianVec(feat.Cols, 0.2)
		_, tr, err := proto.GradientSum(w, batch)
		if err != nil {
			return nil, 0, err
		}
		setupLat := time.Duration(proto.SetupStats().Rounds) * tr.Lat
		return tr, setup + setupLat, err
	}
	if est <= o.RealBGWBudget {
		tr, setup, err := run(ds.X, ds.Labels)
		if err != nil {
			return timingResult{}
		}
		return timingResult{total: tr.TotalTime() + setup, noise: tr.NoiseTime(), measured: tr.Compute + setup}
	}
	// Extrapolate from a narrower feature set.
	calD := d
	for {
		if calOps, _ := estimateLROps(m, calD, parties, threshold, parties); calOps <= o.RealBGWBudget/4 || calD <= 4 {
			break
		}
		calD /= 2
	}
	calX := linalg.NewMatrix(m, calD)
	for i := 0; i < m; i++ {
		copy(calX.Row(i), ds.X.Row(i)[:calD])
	}
	tr, setup, err := run(calX, ds.Labels)
	if err != nil || tr.Stats.FieldOps == 0 {
		return timingResult{}
	}
	calOps, calNoise := estimateLROps(m, calD, parties, threshold, parties)
	scale := float64(est) / float64(calOps)
	_, wantNoise := estimateLROps(m, d, parties, threshold, parties)
	noiseScale := float64(wantNoise) / float64(maxI64(calNoise, 1))
	lat := tr.Stats.NetTime(tr.Lat)
	total := time.Duration(float64(tr.Compute+setup)*scale) + lat
	noise := time.Duration(float64(tr.NoiseCompute)*noiseScale) + time.Duration(tr.NoiseRounds)*tr.Lat
	return timingResult{total: total, noise: noise, measured: tr.Compute + setup, extrapolated: true}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Table2 reproduces the overall-vs-noise-injection cost table: m=1000,
// P=4 clients, γ=18, sweeping the attribute count n for both PCA and LR.
func Table2(o Options) *Table {
	o = o.Defaults()
	m, ns := 1000, []int{20, 100, 500, 2500}
	if !o.Full {
		m, ns = 200, []int{8, 16, 32, 64}
	}
	tbl := &Table{
		ID:     "table2",
		Title:  fmt.Sprintf("SQM time costs via BGW (m=%d records, P=4 clients, gamma=18)", m),
		Header: []string{"task", "n", "overall (s)", "noise injection (s)", "measured (s)"},
		Notes:  []string{"'*' marks cells extrapolated from a calibrated per-op cost (DESIGN.md substitution 3)"},
	}
	for _, n := range ns {
		r := pcaTiming(o, m, n, 4)
		total, noise, measured := r.cells()
		tbl.Rows = append(tbl.Rows, []string{"PCA", fmt.Sprint(n), total, noise, measured})
	}
	for _, n := range ns {
		r := lrTiming(o, m, n, 4)
		total, noise, measured := r.cells()
		tbl.Rows = append(tbl.Rows, []string{"LR", fmt.Sprint(n), total, noise, measured})
	}
	return tbl
}

// Table4 sweeps the record count m at n=500, P=4 (Appendix D).
func Table4(o Options) *Table {
	o = o.Defaults()
	n, ms := 500, []int{20, 100, 500, 2500}
	if !o.Full {
		n, ms = 64, []int{10, 50, 100, 200}
	}
	tbl := &Table{
		ID:     "table4",
		Title:  fmt.Sprintf("SQM time costs via BGW (n=%d attributes, P=4 clients, gamma=18)", n),
		Header: []string{"task", "m", "overall (s)", "noise injection (s)", "measured (s)"},
		Notes:  []string{"noise-injection time should be flat in m; '*' marks extrapolated cells"},
	}
	for _, m := range ms {
		r := pcaTiming(o, m, n, 4)
		total, noise, measured := r.cells()
		tbl.Rows = append(tbl.Rows, []string{"PCA", fmt.Sprint(m), total, noise, measured})
	}
	for _, m := range ms {
		r := lrTiming(o, m, n, 4)
		total, noise, measured := r.cells()
		tbl.Rows = append(tbl.Rows, []string{"LR", fmt.Sprint(m), total, noise, measured})
	}
	return tbl
}

// Table5 sweeps the client count P at m=n=500 (Appendix D).
func Table5(o Options) *Table {
	o = o.Defaults()
	m, n := 500, 500
	if !o.Full {
		m, n = 100, 48
	}
	ps := []int{4, 10, 20}
	tbl := &Table{
		ID:     "table5",
		Title:  fmt.Sprintf("SQM time costs via BGW (m=%d, n=%d, gamma=18, sweeping clients P)", m, n),
		Header: []string{"task", "P", "overall (s)", "noise injection (s)", "measured (s)"},
		Notes:  []string{"both columns grow with P; '*' marks extrapolated cells"},
	}
	for _, p := range ps {
		r := pcaTiming(o, m, n, p)
		total, noise, measured := r.cells()
		tbl.Rows = append(tbl.Rows, []string{"PCA", fmt.Sprint(p), total, noise, measured})
	}
	for _, p := range ps {
		r := lrTiming(o, m, n, p)
		total, noise, measured := r.cells()
		tbl.Rows = append(tbl.Rows, []string{"LR", fmt.Sprint(p), total, noise, measured})
	}
	return tbl
}
