// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (§VI and Appendix D), each emitting
// the same rows/series the paper reports. The cmd/sqmbench binary and
// the repository-root benchmarks are thin wrappers around this package.
//
// Absolute numbers are not expected to match the paper (synthetic
// datasets, different hardware); the runners preserve the *shape*: which
// method wins, how gaps scale with ε, γ, n, m and P, and where SQM
// meets the centralized baseline.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a printable experiment result.
type Table struct {
	ID     string     `json:"id"` // "fig2-kddcup", "table2", ...
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// WriteCSV emits the table as RFC-4180 CSV (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTo pretty-prints the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Options tunes the harness between CI-friendly and paper-scale runs.
type Options struct {
	// Runs is the repeat count per cell (the paper averages 20).
	Runs int
	// Full switches to paper-scale dataset shapes (see DESIGN.md for
	// the documented scale-downs that remain even at Full).
	Full bool
	// RealBGWBudget caps the field operations executed by the real BGW
	// engine in the timing tables; larger cells are extrapolated from a
	// calibrated per-operation cost and marked with a trailing '*'.
	RealBGWBudget int64
	// TinyLR shrinks the logistic-regression shapes to unit-test scale
	// (overridden by Full).
	TinyLR bool
	// Seed makes every experiment reproducible.
	Seed uint64
	// RecvTimeout bounds each chaos-mesh receive attempt in the chaos
	// experiment (0: 50ms).
	RecvTimeout time.Duration
	// Retries is the chaos aggregator's per-peer receive attempt budget
	// (0: 3).
	Retries int
}

// Defaults fills the zero values.
func (o Options) Defaults() Options {
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.RealBGWBudget == 0 {
		o.RealBGWBudget = 2e8
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.RecvTimeout == 0 {
		o.RecvTimeout = 50 * time.Millisecond
	}
	if o.Retries == 0 {
		o.Retries = 3
	}
	return o
}

// All runs every experiment in paper order.
func All(o Options) []*Table {
	var out []*Table
	out = append(out, Figure2(o)...)
	out = append(out, Figure3(o), Figure4(o), Figure5(o))
	out = append(out, Table1(), Table2(o), Table3(), Table4(o), Table5(o))
	out = append(out, Plans(o))
	return out
}

// ByID returns the runner output for one experiment id ("fig2", "fig3",
// "fig4", "fig5", "table1".."table5", "all").
func ByID(id string, o Options) ([]*Table, error) {
	switch strings.ToLower(id) {
	case "fig2", "figure2":
		return Figure2(o), nil
	case "fig3", "figure3":
		return []*Table{Figure3(o)}, nil
	case "fig4", "figure4":
		return []*Table{Figure4(o)}, nil
	case "fig5", "figure5":
		return []*Table{Figure5(o)}, nil
	case "table1":
		return []*Table{Table1()}, nil
	case "table2":
		return []*Table{Table2(o)}, nil
	case "table3":
		return []*Table{Table3()}, nil
	case "table4":
		return []*Table{Table4(o)}, nil
	case "table5":
		return []*Table{Table5(o)}, nil
	case "plans":
		return []*Table{Plans(o)}, nil
	case "ablations":
		return Ablations(o), nil
	case "profile":
		return []*Table{Profile(o)}, nil
	case "chaos":
		return []*Table{Chaos(o)}, nil
	case "kernels":
		t, _ := Kernels(o)
		return []*Table{t}, nil
	case "all":
		return All(o), nil
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q", id)
	}
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

func fe(v float64) string { return fmt.Sprintf("%.3g", v) }
