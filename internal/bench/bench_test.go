package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny returns options small enough for unit tests.
func tiny() Options {
	return Options{Runs: 1, RealBGWBudget: 5e6, Seed: 7}
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "*"), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestTableWriteTo(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Runs != 3 || o.RealBGWBudget != 2e8 || o.Seed != 42 {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := Options{Runs: 9}.Defaults()
	if o2.Runs != 9 {
		t.Fatal("explicit values must be kept")
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"fig4", "table1", "table3"} {
		tabs, err := ByID(id, tiny())
		if err != nil || len(tabs) == 0 {
			t.Fatalf("ByID(%q) = %v, %v", id, tabs, err)
		}
	}
	if _, err := ByID("nope", tiny()); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestFigure4Shape(t *testing.T) {
	tbl := Figure4(tiny())
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 gamma values", len(tbl.Rows))
	}
	// Both overheads strictly decreasing in gamma.
	prevS, prevN := 1e300, 1e300
	for _, row := range tbl.Rows {
		s := parse(t, row[1])
		n := parse(t, row[4])
		if s >= prevS {
			t.Fatalf("sensitivity overhead not decreasing: %v -> %v", prevS, s)
		}
		if n >= prevN {
			t.Fatalf("noise overhead not decreasing: %v -> %v", prevN, n)
		}
		prevS, prevN = s, n
	}
	// The last noise overhead is small relative to the Gaussian std
	// (the analytic overhead √((¾)²+9d/γ)−¾ is ≈9% of ¾ at γ=65536).
	last := tbl.Rows[len(tbl.Rows)-1]
	if g := parse(t, last[3]); parse(t, last[4]) > 0.15*g {
		t.Fatalf("noise overhead at gamma=65536 is %v vs sigma %v", parse(t, last[4]), g)
	}
}

func TestProfileCurves(t *testing.T) {
	tbl := Profile(tiny())
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	prev := -1.0
	for _, row := range tbl.Rows {
		sk := parse(t, row[1])
		ga := parse(t, row[2])
		// eps decreases as delta grows; Skellam stays within a hair of
		// Gaussian at this mu.
		if prev >= 0 && sk >= prev {
			t.Fatalf("eps should shrink with delta: %v", tbl.Rows)
		}
		prev = sk
		if sk < ga-1e-9 || sk > ga+0.01 {
			t.Fatalf("Skellam %v strays from Gaussian %v", sk, ga)
		}
	}
}

func TestStaticTables(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 2 {
		t.Fatal("Table1 must list PCA and LR")
	}
	t3 := Table3()
	if len(t3.Rows) != 5 {
		t.Fatal("Table3 must list the five approaches")
	}
	if !strings.Contains(t3.Rows[4][0], "SQM") {
		t.Fatal("Table3 must end with this work")
	}
}

func TestEpochsForMapping(t *testing.T) {
	cases := map[float64]int{0.5: 2, 1: 5, 2: 8, 4: 10, 8: 10}
	for eps, want := range cases {
		if got := epochsFor(eps); got != want {
			t.Fatalf("epochsFor(%v) = %d, want %d", eps, got, want)
		}
	}
}

func TestEstimatorsGrowCorrectly(t *testing.T) {
	// PCA ops grow quadratically in n, linearly in m and P.
	a, _ := estimatePCAOps(100, 10, 4, 1, 4)
	b, _ := estimatePCAOps(100, 20, 4, 1, 4)
	if float64(b) < 3*float64(a) {
		t.Fatalf("PCA ops should grow ~n²: %d -> %d", a, b)
	}
	c, _ := estimateLROps(100, 10, 4, 1, 4)
	d, _ := estimateLROps(200, 10, 4, 1, 4)
	if float64(d) < 1.8*float64(c) {
		t.Fatalf("LR ops should grow ~m: %d -> %d", c, d)
	}
}

func TestPCATimingRealAndExtrapolated(t *testing.T) {
	o := tiny()
	real := pcaTiming(o, 50, 8, 4)
	if real.extrapolated || real.total <= 0 {
		t.Fatalf("small cell should run real BGW: %+v", real)
	}
	// Simulated latency floor: 3 rounds x 100 ms.
	if real.total.Seconds() < 0.3 {
		t.Fatalf("total %v below the 3-round latency floor", real.total)
	}
	o.RealBGWBudget = 1e5
	ex := pcaTiming(o, 50, 32, 4)
	if !ex.extrapolated || ex.total <= 0 {
		t.Fatalf("large cell should extrapolate: %+v", ex)
	}
}

func TestLRTimingExtrapolated(t *testing.T) {
	o := tiny()
	o.RealBGWBudget = 2e4 // force the calibration-and-scale path
	r := lrTiming(o, 60, 40, 4)
	if !r.extrapolated {
		t.Fatal("tiny budget should force extrapolation")
	}
	if r.total <= 0 || r.noise <= 0 || r.noise >= r.total {
		t.Fatalf("implausible extrapolated times: %+v", r)
	}
}

func TestLRTimingRuns(t *testing.T) {
	o := tiny()
	r := lrTiming(o, 40, 8, 4)
	if r.extrapolated || r.total <= 0 || r.noise <= 0 {
		t.Fatalf("LR timing = %+v", r)
	}
	if r.noise >= r.total {
		t.Fatal("noise time must be below total time")
	}
}

func TestTable2ShapeSmall(t *testing.T) {
	tbl := Table2(tiny())
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 4 PCA + 4 LR", len(tbl.Rows))
	}
	// PCA total time grows with n.
	first := parse(t, tbl.Rows[0][2])
	last := parse(t, tbl.Rows[3][2])
	if last <= first {
		t.Fatalf("PCA time must grow with n: %v -> %v", first, last)
	}
}

func TestTable4And5ShapeSmall(t *testing.T) {
	t4 := Table4(tiny())
	if len(t4.Rows) != 8 {
		t.Fatalf("table4 rows = %d", len(t4.Rows))
	}
	// Noise-injection time flat in m for LR (last four rows).
	first := parse(t, t4.Rows[4][3])
	last := parse(t, t4.Rows[7][3])
	if last > first*2+0.05 {
		t.Fatalf("LR noise time should be flat in m: %v -> %v", first, last)
	}
	t5 := Table5(tiny())
	if len(t5.Rows) != 6 {
		t.Fatalf("table5 rows = %d", len(t5.Rows))
	}
	// PCA total grows with P.
	if parse(t, t5.Rows[2][2]) < parse(t, t5.Rows[0][2]) {
		t.Fatalf("PCA time should grow with P: %v", t5.Rows)
	}
}

func TestFastAblations(t *testing.T) {
	o := tiny()
	fused := AblationFusedGates(o)
	if len(fused.Rows) != 2 || fused.Rows[0][3] != "yes" {
		t.Fatalf("fused ablation = %+v", fused.Rows)
	}
	// Fusion must dominate on messages.
	if parse(t, fused.Rows[0][1]) >= parse(t, fused.Rows[1][1]) {
		t.Fatal("fused gate should use fewer messages")
	}
	round := AblationRounding(o)
	for _, row := range round.Rows {
		if parse(t, row[1]) >= parse(t, row[2]) {
			t.Fatalf("stochastic bias should undercut nearest at gamma=%s: %v", row[0], row)
		}
	}
	noise := AblationSkellamVsGaussian(o)
	prev := 1e300
	for _, row := range noise.Rows {
		premium := parse(t, row[3])
		if premium < 0 || premium >= prev {
			t.Fatalf("Skellam premium must shrink with mu: %v", noise.Rows)
		}
		prev = premium
	}
	engines := AblationMPCEngines(o)
	for _, row := range engines.Rows {
		if row[len(row)-1] != "exact" {
			t.Fatalf("engine ablation result not exact: %v", row)
		}
	}
	sparse := AblationSparseGram(o)
	if parse(t, sparse.Rows[1][2]) != 0 {
		t.Fatalf("sparse Gram must match dense exactly: %v", sparse.Rows)
	}
	coef := AblationCoefficientScaling(o)
	for _, row := range coef.Rows {
		if parse(t, row[3]) <= 1 {
			t.Fatalf("per-degree scheme should need more noise: %v", row)
		}
	}
}

func TestFigure2SmallRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := tiny()
	tabs := Figure2(o)
	if len(tabs) != 4 {
		t.Fatalf("tables = %d, want one per dataset", len(tabs))
	}
	for _, tbl := range tabs {
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s has no rows", tbl.ID)
		}
		for _, row := range tbl.Rows {
			exact := parse(t, row[2])
			central := parse(t, row[3])
			local := parse(t, row[4])
			if central > exact+1e-6 || local > exact+1e-6 {
				t.Fatalf("%s: no DP method may beat exact: %v", tbl.ID, row)
			}
			// The largest-gamma SQM column should not lose badly to central.
			sqm := parse(t, row[len(row)-1])
			if sqm < 0.5*central {
				t.Fatalf("%s: SQM %v collapsed vs central %v (row %v)", tbl.ID, sqm, central, row)
			}
		}
	}
}

func TestFigure3TinyShape(t *testing.T) {
	o := tiny()
	o.TinyLR = true
	tbl := Figure3(o)
	if len(tbl.Rows) != 4*5 {
		t.Fatalf("rows = %d, want 4 states x 5 eps", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		nonpriv := parse(t, row[2])
		dpsgd := parse(t, row[3])
		sqmBig := parse(t, row[len(row)-1])
		if nonpriv < 0.6 {
			t.Fatalf("non-private accuracy %v too low on %s", nonpriv, row[0])
		}
		for _, v := range []float64{dpsgd, sqmBig} {
			if v < 0.3 || v > 1 {
				t.Fatalf("implausible accuracy %v in %v", v, row)
			}
		}
	}
}

func TestFigure5SmallRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := Figure5(tiny())
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if gap := parse(t, row[3]); gap > 0.12 {
			t.Fatalf("Approx-Poly gap %v too large at eps=%s", gap, row[0])
		}
	}
}
