package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sqm/internal/bgw"
	"sqm/internal/circuit"
	"sqm/internal/field"
	"sqm/internal/randx"
)

// The kernels experiment measures the two layers Issue 10 parallelized:
// the branchless field vector kernels against the scalar helpers they
// replaced, and the level executor's worker pool on the lr3 cube
// circuit against its own serial path. Every parallel execution is
// differentially checked against the serial openings before its
// throughput is reported — a faster wrong answer fails the run.

// kernelVecN is the vector length of the micro-benchmarks: large enough
// to amortize call overhead, small enough to stay in cache (the hot
// path's share slabs are this shape).
const kernelVecN = 4096

// KernelBaseline is the machine-readable record sqmbench -baseline
// writes and compares (BENCH_10.json). Throughput is keyed by benchmark
// id; comparisons are only meaningful on a machine with the same core
// count, so the shape fields are recorded alongside.
type KernelBaseline struct {
	GeneratedAt string             `json:"generated_at"`
	NumCPU      int                `json:"num_cpu"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Throughput  map[string]float64 `json:"throughput"` // id -> ops/s
}

// measureOps times fn (which performs ops primitive operations per
// call), repeating until the sample is long enough to trust, and
// returns the best ops/s over o.Runs samples — best-of, not mean,
// because scheduling noise only ever slows a run down.
func measureOps(o Options, ops int64, fn func()) float64 {
	const minSample = 10 * time.Millisecond
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if d := time.Since(start); d >= minSample {
			break
		}
		iters *= 4
	}
	best := 0.0
	for r := 0; r < o.Runs; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		d := time.Since(start)
		if rate := float64(ops) * float64(iters) / d.Seconds(); rate > best {
			best = rate
		}
	}
	return best
}

// kernelVecs builds deterministic operand vectors spanning the field.
func kernelVecs(seed uint64) (a, b, dst []field.Elem) {
	rng := randx.New(seed)
	a = make([]field.Elem, kernelVecN)
	b = make([]field.Elem, kernelVecN)
	dst = make([]field.Elem, kernelVecN)
	for i := range a {
		a[i], b[i] = field.Rand(rng), field.Rand(rng)
	}
	return a, b, dst
}

// Kernels runs the experiment and returns the printable table; the
// metrics map carries the same results keyed for baseline comparison.
func Kernels(o Options) (*Table, map[string]float64) {
	o = o.Defaults()
	metrics := map[string]float64{}
	tbl := &Table{
		ID:     "kernels",
		Title:  "batched field kernels and parallel level execution (Issue 10 hot path)",
		Header: []string{"benchmark", "n", "workers", "throughput", "unit", "speedup", "outputs"},
		Notes: []string{
			fmt.Sprintf("num_cpu=%d gomaxprocs=%d; worker speedups need that many physical cores", runtime.NumCPU(), runtime.GOMAXPROCS(0)),
			"every parallel execution is checked bit-identical against the serial openings before timing counts",
		},
	}

	row := func(id, name, n, workers string, rate, base float64, unit, outputs string) {
		metrics[id] = rate
		speedup := "1.00x"
		if base > 0 {
			speedup = fmt.Sprintf("%.2fx", rate/base)
		}
		tbl.Rows = append(tbl.Rows, []string{name, n, workers, fmt.Sprintf("%.1f", rate/1e6), unit, speedup, outputs})
	}

	// Layer 1: field vector kernels vs the scalar helpers, same work.
	a, b, dst := kernelVecs(o.Seed)
	nStr := fmt.Sprint(kernelVecN)

	addScalar := measureOps(o, kernelVecN, func() {
		for i := 0; i < kernelVecN; i++ {
			dst[i] = field.Add(a[i], b[i])
		}
	})
	row("field.add.scalar", "field.Add loop", nStr, "-", addScalar, 0, "Melem/s", "-")
	addVec := measureOps(o, kernelVecN, func() { field.AddVec(dst, a, b) })
	row("field.addvec", "field.AddVec", nStr, "-", addVec, addScalar, "Melem/s", "-")

	mulScalar := measureOps(o, kernelVecN, func() {
		for i := 0; i < kernelVecN; i++ {
			dst[i] = field.Mul(a[i], b[i])
		}
	})
	row("field.mul.scalar", "field.Mul loop", nStr, "-", mulScalar, 0, "Melem/s", "-")
	mulVec := measureOps(o, kernelVecN, func() { field.MulVec(dst, a, b) })
	row("field.mulvec", "field.MulVec", nStr, "-", mulVec, mulScalar, "Melem/s", "-")

	dotScalar := measureOps(o, kernelVecN, func() {
		acc := field.Elem(0)
		for i := 0; i < kernelVecN; i++ {
			acc = field.Add(acc, field.Mul(a[i], b[i]))
		}
		dst[0] = acc
	})
	row("field.dot.scalar", "field.Mul+Add dot", nStr, "-", dotScalar, 0, "Melem/s", "-")
	dotAcc := measureOps(o, kernelVecN, func() { dst[0] = field.DotAcc(0, a, b) })
	row("field.dotacc", "field.DotAcc", nStr, "-", dotAcc, dotScalar, "Melem/s", "-")

	// Layer 2: lr3 level execution across worker-pool sizes on the
	// monolithic engine — pure local arithmetic, no transport noise.
	const parties, d, B = 4, 3, 32
	plan := cubePlan(parties, d, B, int64(o.Seed))
	gates := int64(plan.MulGates())
	exec := func(workers int) ([]int64, error) {
		eng, err := bgw.NewEngine(bgw.Config{Parties: parties, Seed: o.Seed ^ 0xbe, Workers: workers})
		if err != nil {
			return nil, err
		}
		res, err := plan.ExecuteOpts(bgw.Eval(eng), circuit.Bindings{}, circuit.ExecOptions{})
		if err != nil {
			return nil, err
		}
		outs := make([]int64, plan.Opens())
		for i := range outs {
			outs[i] = res.Opened(i)
		}
		return outs, nil
	}

	serialOut, err := exec(1)
	if err != nil {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("lr3 serial execution failed: %v", err))
		return tbl, metrics
	}
	sweep := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		sweep = append(sweep, n)
	}
	var serialRate float64
	for _, w := range sweep {
		outs, err := exec(w)
		if err != nil {
			tbl.Notes = append(tbl.Notes, fmt.Sprintf("lr3 w=%d execution failed: %v", w, err))
			continue
		}
		match := "identical"
		for i := range serialOut {
			if outs[i] != serialOut[i] {
				match = "MISMATCH"
			}
		}
		var execErr error
		rate := measureOps(o, gates, func() {
			if _, err := exec(w); err != nil && execErr == nil {
				execErr = err
			}
		})
		if execErr != nil {
			tbl.Notes = append(tbl.Notes, fmt.Sprintf("lr3 w=%d timing failed: %v", w, execErr))
			continue
		}
		if w == 1 {
			serialRate = rate
		}
		row(fmt.Sprintf("lr3.exec.w%d", w), "lr3 level exec", fmt.Sprintf("B=%d", B),
			fmt.Sprint(w), rate, serialRate, "Mgate/s", match)
	}
	return tbl, metrics
}

// LoadKernelBaseline reads a BENCH_10.json written by WriteKernelBaseline.
func LoadKernelBaseline(path string) (*KernelBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b KernelBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteKernelBaseline records the metrics of one kernels run.
func WriteKernelBaseline(path string, metrics map[string]float64) error {
	b := KernelBaseline{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Throughput:  metrics,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareKernelBaseline checks the current metrics against a recorded
// baseline: any benchmark slower than (1 - tolerance) × baseline is a
// regression. Benchmarks present on only one side are reported but not
// failed (the suite may have grown). A baseline from a machine with a
// different core count cannot gate anything — it is reported as skipped.
func CompareKernelBaseline(base *KernelBaseline, metrics map[string]float64, tolerance float64) (regressions, notes []string) {
	if base.NumCPU != runtime.NumCPU() {
		return nil, []string{fmt.Sprintf("baseline recorded on %d cores, this machine has %d: comparison skipped", base.NumCPU, runtime.NumCPU())}
	}
	for id, want := range base.Throughput {
		got, ok := metrics[id]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: in baseline but not in this run", id))
			continue
		}
		if got < want*(1-tolerance) {
			regressions = append(regressions, fmt.Sprintf("%s: %.3g ops/s, baseline %.3g (-%.0f%%)",
				id, got, want, 100*(1-got/want)))
		}
	}
	for id := range metrics {
		if _, ok := base.Throughput[id]; !ok {
			notes = append(notes, fmt.Sprintf("%s: new benchmark, not in baseline", id))
		}
	}
	return regressions, notes
}
