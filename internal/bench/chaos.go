// chaos.go — the fault-tolerance experiment: dropout-tolerant secure
// aggregation sessions driven over a deterministic chaos mesh, one row
// per fault profile. Not a figure of the paper; this table guards the
// robustness layer (deadlines, retry budgets, dropout recovery) the way
// the paper tables guard utility and timing.
package bench

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sqm/internal/obs"
	"sqm/internal/protocol"
	"sqm/internal/secagg"
	"sqm/internal/transport"
)

// The chaos cohort mirrors the acceptance scenario: P = 5 clients with
// recovery threshold t = ⌊(P−1)/2⌋ = 2, so any 3 survivors keep a round
// alive and a third mid-session death loses the quorum.
const (
	chaosParties = 5
	chaosThresh  = 2
	chaosRounds  = 3
	chaosDim     = 4
)

// chaosProfile is one row of the chaos table: a fault injection shape
// plus the clients scripted to die at round 1 ("crash" tears the
// transport down, "mute" stalls silently).
type chaosProfile struct {
	name   string
	fault  func(seed uint64) transport.FaultProfile
	deaths map[int]string
}

func chaosProfiles() []chaosProfile {
	plain := func(seed uint64) transport.FaultProfile {
		return transport.FaultProfile{Seed: seed}
	}
	return []chaosProfile{
		{name: "none", fault: plain},
		{name: "delay-1ms", fault: func(seed uint64) transport.FaultProfile {
			return transport.FaultProfile{Seed: seed, All: transport.LinkFault{Delay: time.Millisecond}}
		}},
		{name: "drop-link-50%", fault: func(seed uint64) transport.FaultProfile {
			// Half of client 1's contributions vanish in flight; the
			// aggregator must burn its retry budget and degrade.
			return transport.FaultProfile{Seed: seed, Links: map[[2]int]transport.LinkFault{
				{1, 0}: {DropProb: 0.5},
			}}
		}},
		{name: "crash-1", fault: plain, deaths: map[int]string{1: "crash"}},
		{name: "crash-2", fault: plain, deaths: map[int]string{1: "crash", 3: "mute"}},
		{name: "crash-3", fault: plain, deaths: map[int]string{1: "crash", 2: "crash", 3: "mute"}},
	}
}

// chaosRun is the outcome of one session under one profile.
type chaosRun struct {
	completed bool
	degraded  bool
	elapsed   time.Duration
	timeouts  int64
	retries   int64
	giveups   int64
}

// runChaosSession drives one 3-round dropout-tolerant session over a
// fresh fault mesh and reports what the fault-tolerance layers did.
func runChaosSession(seed uint64, prof chaosProfile, recvTimeout time.Duration, retryBudget int) (chaosRun, error) {
	g, err := secagg.NewTolerantGroup(chaosParties, chaosDim, chaosThresh, seed)
	if err != nil {
		return chaosRun{}, err
	}
	rec := obs.NewLog(io.Discard, "text", obs.LevelWarn)
	fm := transport.NewFaultMesh(
		transport.NewChanMesh(chaosParties, transport.WithRecorder(rec)),
		prof.fault(seed))
	defer fm.Close()

	values := make([][]int64, chaosParties)
	for j := range values {
		values[j] = make([]int64, chaosDim)
		for k := range values[j] {
			values[j][k] = int64(100*j + k + 1)
		}
	}

	var mu sync.Mutex
	reports := map[uint32]*secagg.DropoutReport{}
	hooks := make([]protocol.ClientHooks, chaosParties)
	for i := 0; i < chaosParties; i++ {
		i := i
		hooks[i] = protocol.ClientHooks{
			OnParams: func(protocol.Params) ([]byte, error) { return []byte{byte(i)}, nil },
		}
		if i == 0 {
			hooks[i].OnEvalRequest = func(round uint32) error {
				report, err := g.CollectDropout(fm.Conn(0), uint64(round), values[0], secagg.CollectOptions{
					Timeout:  recvTimeout,
					Retries:  retryBudget,
					Recorder: rec,
					Seed:     seed,
				})
				if err != nil {
					return err
				}
				mu.Lock()
				reports[round] = report
				mu.Unlock()
				return nil
			}
			continue
		}
		hooks[i].OnEvalRequest = func(round uint32) error {
			if kind, dead := prof.deaths[i]; dead && round >= 1 {
				if kind == "crash" {
					fm.Crash(i)
				}
				return errors.New("chaos: scripted death")
			}
			return g.Contribute(fm.Conn(i), uint64(round), values[i])
		}
	}
	evaluate := func(round uint32) ([]int64, error) {
		mu.Lock()
		defer mu.Unlock()
		r, ok := reports[round]
		if !ok {
			return nil, errors.New("chaos: no aggregate collected for round")
		}
		return r.Totals, nil
	}

	params := protocol.Params{Gamma: 8, Mu: 1, NumClients: chaosParties, OutDim: chaosDim, Rounds: chaosRounds, Seed: seed}
	start := time.Now()
	outcomes, err := protocol.RunSession(params, hooks, evaluate,
		protocol.WithRecorder(rec),
		protocol.WithTimeout(time.Second),
		protocol.WithDropoutTolerance(chaosThresh),
	)
	run := chaosRun{elapsed: time.Since(start)}
	m := rec.Metrics()
	run.timeouts = m.Counter("transport.chan.recv.timeouts").Value()
	run.retries = m.Counter("secagg.collect.retries").Value()
	run.giveups = m.Counter("secagg.collect.giveups").Value()
	if err != nil {
		if errors.Is(err, protocol.ErrQuorumLoss) || errors.Is(err, secagg.ErrQuorumLoss) {
			return run, nil // an expected failure shape, not a harness bug
		}
		return run, err
	}
	run.completed = true
	run.degraded = m.Counter("session.dropouts").Value() > 0
	mu.Lock()
	for _, r := range reports {
		if len(r.Dropped) > 0 {
			run.degraded = true
		}
	}
	mu.Unlock()
	for _, o := range outcomes {
		if o.Dropped {
			run.degraded = true
		}
	}
	return run, nil
}

// Chaos measures session survival under deterministic fault injection:
// per profile, how many sessions complete, how many complete degraded
// (dropout recovery engaged), the end-to-end latency, and the recv
// timeout / retry telemetry the detection layers emitted.
func Chaos(o Options) *Table {
	o = o.Defaults()
	t := &Table{
		ID:     "chaos",
		Title:  fmt.Sprintf("fault-tolerant sessions, P=%d t=%d, %d rounds", chaosParties, chaosThresh, chaosRounds),
		Header: []string{"profile", "sessions", "ok", "degraded", "failed", "completion", "avg ms", "recv timeouts", "retries", "giveups"},
	}
	for _, prof := range chaosProfiles() {
		var ok, degraded int
		var elapsed time.Duration
		var timeouts, retries, giveups int64
		for run := 0; run < o.Runs; run++ {
			r, err := runChaosSession(o.Seed+uint64(run)*0x9e37, prof, o.RecvTimeout, o.Retries)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s run %d: %v", prof.name, run, err))
				continue
			}
			if r.completed {
				ok++
				elapsed += r.elapsed
			}
			if r.degraded {
				degraded++
			}
			timeouts += r.timeouts
			retries += r.retries
			giveups += r.giveups
		}
		avgMS := "-"
		if ok > 0 {
			avgMS = fmt.Sprintf("%.1f", float64(elapsed.Milliseconds())/float64(ok))
		}
		t.Rows = append(t.Rows, []string{
			prof.name,
			fmt.Sprintf("%d", o.Runs),
			fmt.Sprintf("%d", ok),
			fmt.Sprintf("%d", degraded),
			fmt.Sprintf("%d", o.Runs-ok),
			fmt.Sprintf("%.0f%%", 100*float64(ok)/float64(o.Runs)),
			avgMS,
			fmt.Sprintf("%d", timeouts),
			fmt.Sprintf("%d", retries),
			fmt.Sprintf("%d", giveups),
		})
	}
	t.Notes = append(t.Notes,
		"deaths fire at round 1: crash tears the transport down, mute stalls silently",
		fmt.Sprintf("quorum is t+1 = %d survivors; crash-3 is expected to fail every session", chaosThresh+1),
	)
	return t
}
