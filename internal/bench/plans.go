package bench

import (
	"fmt"

	"sqm/internal/bgw"
	"sqm/internal/circuit"
	"sqm/internal/transport"
)

// Plans measures the level scheduler on the lr3 cube circuit: for each
// batch size B it compiles the degree-4 gradient circuit (square, cube,
// fused inner product — multiplicative depth 3) and executes the SAME
// plan twice over the actor engine, planned (each level one batched
// reshare exchange) and eager (one round per gate). The table shows why
// planned wire rounds equal depth + 2 for every B while eager rounds
// grow linearly, with the measured frame counters alongside; outputs
// must stay bit-identical, which the last column asserts.
func Plans(o Options) *Table {
	o = o.Defaults()
	const parties, d = 4, 3
	batches := []int{2, 4, 8, 16}
	if o.Full {
		batches = append(batches, 32, 64)
	}

	tbl := &Table{
		ID:    "plans",
		Title: "level-scheduled plans vs eager execution (lr3 cube circuit, actor engine)",
		Header: []string{
			"B", "depth", "gates", "mul gates",
			"planned rounds", "planned frames",
			"eager rounds", "eager frames",
			"outputs match",
		},
		Notes: []string{
			"planned rounds = multiplicative depth + input round + output round, independent of B",
			"frames are physical sends; one batched level reshares in P(P-1) frames regardless of gate count",
		},
	}

	for _, B := range batches {
		plan := cubePlan(parties, d, B, int64(o.Seed))
		pRounds, pFrames, pOut, err := runPlan(plan, parties, o.Seed^uint64(B), false)
		if err != nil {
			tbl.Notes = append(tbl.Notes, fmt.Sprintf("B=%d planned: %v", B, err))
			continue
		}
		eRounds, eFrames, eOut, err := runPlan(plan, parties, o.Seed^uint64(B)<<1, true)
		if err != nil {
			tbl.Notes = append(tbl.Notes, fmt.Sprintf("B=%d eager: %v", B, err))
			continue
		}
		match := len(pOut) == len(eOut)
		for i := range pOut {
			match = match && pOut[i] == eOut[i]
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(B),
			fmt.Sprint(plan.Depth()),
			fmt.Sprint(plan.Gates()),
			fmt.Sprint(plan.MulGates()),
			fmt.Sprint(pRounds), fmt.Sprint(pFrames),
			fmt.Sprint(eRounds), fmt.Sprint(eFrames),
			fmt.Sprint(match),
		})
	}
	return tbl
}

// cubePlan builds the lr3-shaped gradient circuit for B records of d
// features: per record a local linear fold, a cube via two chained
// multiplications, then one fused inner product per coordinate.
func cubePlan(parties, d, B int, seed int64) *circuit.Plan {
	b := circuit.NewBuilder(parties, 0)
	val := func(i int) int64 { return (seed+int64(i))%19 - 9 }
	feats := make([][]bgw.Val, B)
	for bi := 0; bi < B; bi++ {
		feats[bi] = make([]bgw.Val, d)
		for j := 0; j < d; j++ {
			feats[bi][j] = b.Input((bi+j)%parties, val(bi*d+j))
		}
	}
	us := make([]bgw.Val, B)
	for bi := 0; bi < B; bi++ {
		lin := b.Zero()
		c := b.Zero()
		for j := 0; j < d; j++ {
			lin = b.Add(lin, b.MulConst(feats[bi][j], val(j)+11))
			c = b.Add(c, b.MulConst(feats[bi][j], val(j+d)))
		}
		cube := b.Mul(b.Mul(c, c), c)
		us[bi] = b.Sub(b.AddConst(lin, 7), cube)
	}
	xs := make([]bgw.Val, B)
	for t := 0; t < d; t++ {
		for bi := 0; bi < B; bi++ {
			xs[bi] = feats[bi][t]
		}
		b.OpenIdx(b.InnerProduct(xs, us))
	}
	return b.MustCompile()
}

// runPlan executes the plan on a fresh actor engine over a channel mesh
// and returns the measured wire rounds, frames and opened outputs.
func runPlan(plan *circuit.Plan, parties int, seed uint64, eager bool) (rounds, frames int64, outs []int64, err error) {
	eng, err := bgw.NewActorEngine(bgw.Config{Parties: parties, Seed: seed}, transport.NewChanMesh(parties))
	if err != nil {
		return 0, 0, nil, err
	}
	defer eng.Close()
	res, err := plan.ExecuteOpts(eng, circuit.Bindings{}, circuit.ExecOptions{Eager: eager})
	if err != nil {
		return 0, 0, nil, err
	}
	if err := eng.Err(); err != nil {
		return 0, 0, nil, err
	}
	outs = make([]int64, plan.Opens())
	for i := range outs {
		outs[i] = res.Opened(i)
	}
	st := eng.Stats()
	return st.Rounds, st.Frames, outs, nil
}
