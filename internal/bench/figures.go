package bench

import (
	"fmt"
	"math"

	"sqm/internal/dataset"
	"sqm/internal/linalg"
	"sqm/internal/logreg"
	"sqm/internal/pca"
)

// pcaCase describes one Figure 2 panel.
type pcaCase struct {
	name   string
	data   func(o Options) *linalg.Matrix
	ks     []int
	epss   []float64
	gammas []float64
}

func pcaCases(o Options) []pcaCase {
	if o.Full {
		return []pcaCase{
			{
				name: "KDDCUP",
				data: func(o Options) *linalg.Matrix { return dataset.KDDCupLike(195666, 117, o.Seed).X },
				ks:   []int{10, 20}, epss: []float64{0.25, 0.5, 1, 2, 4, 8},
				gammas: []float64{1 << 6, 1 << 10, 1 << 14},
			},
			{
				name: "ACSIncome",
				data: func(o Options) *linalg.Matrix {
					// Scaled from ~100k rows (DESIGN.md substitution 1).
					d, _ := dataset.ACSIncomeLike("CA", 20000, 1, 800, o.Seed)
					return d.X
				},
				ks: []int{10, 20}, epss: []float64{0.25, 0.5, 1, 2, 4, 8},
				gammas: []float64{1 << 6, 1 << 10, 1 << 14},
			},
			{
				name: "CiteSeer",
				data: func(o Options) *linalg.Matrix { return dataset.CiteSeerLike(2110, 3703, o.Seed).X },
				ks:   []int{10, 20}, epss: []float64{4, 8, 16, 32},
				gammas: []float64{1 << 8, 1 << 12},
			},
			{
				name: "Gene",
				data: func(o Options) *linalg.Matrix {
					// n scaled from 20531 (DESIGN.md substitution 1).
					return dataset.GeneLike(801, 4096, o.Seed).X
				},
				ks: []int{10, 20}, epss: []float64{4, 8, 16, 32},
				gammas: []float64{1 << 10, 1 << 14},
			},
		}
	}
	return []pcaCase{
		{
			name: "KDDCUP",
			data: func(o Options) *linalg.Matrix { return dataset.KDDCupLike(8000, 40, o.Seed).X },
			ks:   []int{3, 6}, epss: []float64{0.25, 1, 4},
			gammas: []float64{1 << 4, 1 << 8, 1 << 12},
		},
		{
			name: "ACSIncome",
			data: func(o Options) *linalg.Matrix {
				d, _ := dataset.ACSIncomeLike("CA", 3000, 1, 100, o.Seed)
				return d.X
			},
			ks: []int{3, 6}, epss: []float64{0.25, 1, 4},
			gammas: []float64{1 << 4, 1 << 8, 1 << 12},
		},
		{
			name: "CiteSeer",
			data: func(o Options) *linalg.Matrix { return dataset.CiteSeerLike(600, 300, o.Seed).X },
			ks:   []int{3, 6}, epss: []float64{4, 16},
			gammas: []float64{1 << 6, 1 << 10},
		},
		{
			name: "Gene",
			data: func(o Options) *linalg.Matrix { return dataset.GeneLike(400, 256, o.Seed).X },
			ks:   []int{3, 6}, epss: []float64{4, 16},
			gammas: []float64{1 << 8, 1 << 12},
		},
	}
}

// Figure2 reproduces the PCA utility panels: ‖XV̂‖_F² for the exact
// subspace, the central Analyze-Gauss baseline, the local-DP baseline
// and SQM under a γ sweep, per dataset, k and ε (δ = 1e−5, averaged
// over o.Runs).
func Figure2(o Options) []*Table {
	o = o.Defaults()
	const delta = 1e-5
	var tables []*Table
	for _, c := range pcaCases(o) {
		x := c.data(o)
		header := []string{"k", "eps", "Exact", "Central", "Local"}
		for _, g := range c.gammas {
			header = append(header, fmt.Sprintf("SQM(g=%g)", g))
		}
		tbl := &Table{
			ID:     "fig2-" + c.name,
			Title:  fmt.Sprintf("PCA utility ||X·V||_F^2 on %s-like (m=%d, n=%d, %d runs)", c.name, x.Rows, x.Cols, o.Runs),
			Header: header,
		}
		for _, k := range c.ks {
			exact, err := pca.Exact(x, pca.Config{K: k, C: 1, Seed: o.Seed})
			if err != nil {
				tbl.Notes = append(tbl.Notes, "exact failed: "+err.Error())
				continue
			}
			for _, eps := range c.epss {
				row := []string{fmt.Sprint(k), fe(eps), f3(exact.Utility)}
				row = append(row, f3(avgUtility(o, func(seed uint64) (float64, error) {
					r, err := pca.Central(x, pca.Config{K: k, C: 1, Eps: eps, Delta: delta, Seed: seed})
					if err != nil {
						return 0, err
					}
					return r.Utility, nil
				})))
				row = append(row, f3(avgUtility(o, func(seed uint64) (float64, error) {
					r, err := pca.Local(x, pca.Config{K: k, C: 1, Eps: eps, Delta: delta, Seed: seed})
					if err != nil {
						return 0, err
					}
					return r.Utility, nil
				})))
				for _, gamma := range c.gammas {
					gamma := gamma
					row = append(row, f3(avgUtility(o, func(seed uint64) (float64, error) {
						r, err := pca.SQM(x, pca.Config{K: k, C: 1, Eps: eps, Delta: delta, Gamma: gamma, Seed: seed})
						if err != nil {
							return 0, err
						}
						return r.Utility, nil
					})))
				}
				tbl.Rows = append(tbl.Rows, row)
			}
		}
		tables = append(tables, tbl)
	}
	return tables
}

func avgUtility(o Options, run func(seed uint64) (float64, error)) float64 {
	var sum float64
	n := 0
	for i := 0; i < o.Runs; i++ {
		v, err := run(o.Seed + uint64(1000*i) + 17)
		if err != nil {
			return math.NaN()
		}
		sum += v
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// lrShape returns the Figure 3/5 training shape.
func lrShape(o Options) (mTrain, mTest, d int, q float64) {
	if o.Full {
		return 10000, 3000, 800, 0.001
	}
	if o.TinyLR {
		return 300, 150, 12, 0.05
	}
	return 2000, 1000, 60, 0.01
}

// epochsFor maps ε to the paper's epoch budget {0.5,1,2,4,8} →
// {2,5,8,10,10}.
func epochsFor(eps float64) int {
	switch {
	case eps <= 0.5:
		return 2
	case eps <= 1:
		return 5
	case eps <= 2:
		return 8
	default:
		return 10
	}
}

// Figure3 reproduces the LR accuracy curves: test accuracy vs ε for the
// four ACSIncome-like states, comparing SQM at two γ values against
// centralized DPSGD, the local-DP baseline, and the non-private
// reference.
func Figure3(o Options) *Table {
	o = o.Defaults()
	const delta = 1e-5
	mTrain, mTest, d, q := lrShape(o)
	epss := []float64{0.5, 1, 2, 4, 8}
	gammas := []float64{1 << 10, 1 << 13}
	header := []string{"state", "eps", "NonPriv", "DPSGD", "Local"}
	for _, g := range gammas {
		header = append(header, fmt.Sprintf("SQM(g=%g)", g))
	}
	tbl := &Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("LR test accuracy on ACSIncome-like states (m=%d, d=%d, q=%g, %d runs)", mTrain, d, q, o.Runs),
		Header: header,
	}
	for _, state := range dataset.ACSStates() {
		ds, err := dataset.ACSIncomeLike(state, mTrain, mTest, d, o.Seed)
		if err != nil {
			tbl.Notes = append(tbl.Notes, err.Error())
			continue
		}
		nonpriv := logreg.Accuracy(logreg.TrainNonPrivate(ds.X, ds.Labels, o.Seed), ds.TestX, ds.TestLabels)
		for _, eps := range epss {
			cfg := logreg.Config{Eps: eps, Delta: delta, Epochs: epochsFor(eps), SampleRate: q}
			row := []string{state, fe(eps), f3(nonpriv)}
			row = append(row, f3(avgUtility(o, func(seed uint64) (float64, error) {
				c := cfg
				c.Seed = seed
				m, err := logreg.TrainDPSGD(ds.X, ds.Labels, c)
				if err != nil {
					return 0, err
				}
				return logreg.Accuracy(m, ds.TestX, ds.TestLabels), nil
			})))
			row = append(row, f3(avgUtility(o, func(seed uint64) (float64, error) {
				c := cfg
				c.Seed = seed
				m, err := logreg.TrainLocal(ds.X, ds.Labels, c)
				if err != nil {
					return 0, err
				}
				return logreg.Accuracy(m, ds.TestX, ds.TestLabels), nil
			})))
			for _, gamma := range gammas {
				gamma := gamma
				row = append(row, f3(avgUtility(o, func(seed uint64) (float64, error) {
					c := cfg
					c.Seed = seed
					c.Gamma = gamma
					m, err := logreg.TrainSQM(ds.X, ds.Labels, c)
					if err != nil {
						return 0, err
					}
					return logreg.Accuracy(m, ds.TestX, ds.TestLabels), nil
				})))
			}
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	return tbl
}

// Figure4 reproduces the γ-sweep of the LR sensitivity overhead and the
// normalized SQM noise std against the centralized Gaussian σ (d=800,
// ε=1, δ=1e−5, q=0.001, 5 epochs).
func Figure4(o Options) *Table {
	o = o.Defaults()
	const d = 800
	cfg := logreg.Config{Eps: 1, Delta: 1e-5, Epochs: 5, SampleRate: 0.001}
	tbl := &Table{
		ID:     "fig4",
		Title:  "LR sensitivity overhead and noise overhead vs gamma (d=800, eps=1)",
		Header: []string{"gamma", "L2 overhead", "SQM noise std", "Gaussian std", "noise overhead"},
	}
	central, err := logreg.CentralNoiseStd(cfg)
	if err != nil {
		tbl.Notes = append(tbl.Notes, err.Error())
		return tbl
	}
	for _, gamma := range []float64{64, 256, 1024, 4096, 16384, 65536} {
		c := cfg
		c.Gamma = gamma
		mu, err := logreg.CalibrateMu(c, d)
		if err != nil {
			tbl.Notes = append(tbl.Notes, err.Error())
			continue
		}
		std := logreg.NoiseStdUnscaled(mu, gamma)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%g", gamma),
			fe(logreg.SensitivityOverhead(gamma, d)),
			fe(std),
			fe(central),
			fe(std - central),
		})
	}
	tbl.Notes = append(tbl.Notes, "both overhead columns must decay toward 0 as gamma grows (log-scale y in the paper)")
	return tbl
}

// Figure5 reproduces the centralized-vs-Approx-Poly comparison: the
// polynomial approximation of the sigmoid costs < 0.05 accuracy.
func Figure5(o Options) *Table {
	o = o.Defaults()
	const delta = 1e-5
	mTrain, mTest, d, q := lrShape(o)
	tbl := &Table{
		ID:     "fig5",
		Title:  fmt.Sprintf("Centralized DPSGD vs Approx-Poly (ACSIncome-like CA, m=%d, d=%d, %d runs)", mTrain, d, o.Runs),
		Header: []string{"eps", "Centralized", "Approx-Poly", "gap"},
	}
	ds, err := dataset.ACSIncomeLike("CA", mTrain, mTest, d, o.Seed)
	if err != nil {
		tbl.Notes = append(tbl.Notes, err.Error())
		return tbl
	}
	for _, eps := range []float64{0.5, 1, 2, 4, 8} {
		cfg := logreg.Config{Eps: eps, Delta: delta, Epochs: epochsFor(eps), SampleRate: q}
		central := avgUtility(o, func(seed uint64) (float64, error) {
			c := cfg
			c.Seed = seed
			m, err := logreg.TrainDPSGD(ds.X, ds.Labels, c)
			if err != nil {
				return 0, err
			}
			return logreg.Accuracy(m, ds.TestX, ds.TestLabels), nil
		})
		approx := avgUtility(o, func(seed uint64) (float64, error) {
			c := cfg
			c.Seed = seed
			m, err := logreg.TrainApproxPoly(ds.X, ds.Labels, c)
			if err != nil {
				return 0, err
			}
			return logreg.Accuracy(m, ds.TestX, ds.TestLabels), nil
		})
		tbl.Rows = append(tbl.Rows, []string{fe(eps), f3(central), f3(approx), f3(math.Abs(central - approx))})
	}
	tbl.Notes = append(tbl.Notes, "the paper reports the gap constantly below 0.05")
	return tbl
}
