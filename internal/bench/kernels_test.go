package bench

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestKernelsSmoke: the experiment must produce a row per benchmark,
// a metric per row, and — the part that matters — no output mismatch
// between the parallel executions and the serial baseline.
func TestKernelsSmoke(t *testing.T) {
	tbl, metrics := Kernels(Options{Runs: 1, Seed: 7})
	if len(tbl.Rows) == 0 {
		t.Fatal("kernels experiment produced no rows")
	}
	if len(metrics) != len(tbl.Rows) {
		t.Errorf("%d metrics for %d rows", len(metrics), len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] == "MISMATCH" {
			t.Errorf("parallel execution diverged from serial: %v", row)
		}
	}
	for id, rate := range metrics {
		if rate <= 0 {
			t.Errorf("metric %s has non-positive throughput %g", id, rate)
		}
	}
	for _, want := range []string{"field.mulvec", "field.dotacc", "lr3.exec.w1", "lr3.exec.w2"} {
		if _, ok := metrics[want]; !ok {
			t.Errorf("metric %s missing", want)
		}
	}
}

// TestKernelBaselineRoundTrip: write, load, compare — a run identical
// to its own baseline must pass, and the tolerance edge must hold.
func TestKernelBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_10.json")
	metrics := map[string]float64{"a": 1000, "b": 2000}
	if err := WriteKernelBaseline(path, metrics); err != nil {
		t.Fatalf("write: %v", err)
	}
	base, err := LoadKernelBaseline(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if base.NumCPU != runtime.NumCPU() {
		t.Errorf("baseline recorded %d cpus, want %d", base.NumCPU, runtime.NumCPU())
	}

	if regs, _ := CompareKernelBaseline(base, metrics, 0.25); len(regs) != 0 {
		t.Errorf("self-comparison regressed: %v", regs)
	}
	// 20% slower is inside the 25% tolerance; 30% slower is not.
	ok := map[string]float64{"a": 800, "b": 2000}
	if regs, _ := CompareKernelBaseline(base, ok, 0.25); len(regs) != 0 {
		t.Errorf("20%% slowdown flagged: %v", regs)
	}
	bad := map[string]float64{"a": 700, "b": 2000}
	regs, _ := CompareKernelBaseline(base, bad, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "a:") {
		t.Errorf("30%% slowdown on a not flagged: %v", regs)
	}

	// Benchmarks on only one side are notes, not failures.
	extra := map[string]float64{"a": 1000, "c": 5}
	regs, notes := CompareKernelBaseline(base, extra, 0.25)
	if len(regs) != 0 {
		t.Errorf("asymmetric sets regressed: %v", regs)
	}
	if len(notes) != 2 {
		t.Errorf("want 2 notes (b missing, c new), got %v", notes)
	}

	// A baseline from different hardware gates nothing.
	base.NumCPU++
	regs, notes = CompareKernelBaseline(base, map[string]float64{"a": 1}, 0.25)
	if len(regs) != 0 || len(notes) != 1 {
		t.Errorf("cpu-mismatch baseline: regs=%v notes=%v", regs, notes)
	}
}
