package retry

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"sqm/internal/obs"
	"sqm/internal/randx"
)

func TestZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	var p Policy
	err := p.Do(func(attempt int) error {
		calls++
		if attempt != 0 {
			t.Fatalf("attempt = %d, want 0", attempt)
		}
		return errors.New("boom")
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

func TestDoSucceedsMidBudget(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 5, Base: time.Millisecond, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := p.Do(func(int) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
}

func TestBackoffScheduleDeterministic(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	// No jitter: pure doubling capped at Max.
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Backoff(i, nil); got != w*time.Millisecond {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	// With jitter: same seed, same schedule; bounded by [d*(1-j), d].
	p.Jitter = 0.5
	a := make([]time.Duration, 6)
	for i := range a {
		a[i] = p.Backoff(i, randx.New(99))
	}
	b := make([]time.Duration, 6)
	for i := range b {
		b[i] = p.Backoff(i, randx.New(99))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jittered schedule not reproducible at %d: %v vs %v", i, a[i], b[i])
		}
		base := want[i] * time.Millisecond
		if a[i] < base/2 || a[i] > base {
			t.Fatalf("jittered Backoff(%d) = %v outside [%v, %v]", i, a[i], base/2, base)
		}
	}
}

func TestDoJitterSeededAndReproducible(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		var slept []time.Duration
		p := Policy{Attempts: 4, Base: 10 * time.Millisecond, Jitter: 1, Seed: seed,
			Sleep: func(d time.Duration) { slept = append(slept, d) }}
		p.Do(func(int) error { return errors.New("x") })
		return slept
	}
	a, b := run(42), run(42)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("slept %d/%d times, want 3", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestPermanentShortCircuits(t *testing.T) {
	sentinel := errors.New("auth rejected")
	calls := 0
	p := Policy{Attempts: 5, Sleep: func(time.Duration) {}}
	err := p.Do(func(int) error {
		calls++
		return Permanent(fmt.Errorf("wrapped: %w", sentinel))
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (permanent must not retry)", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want to match the sentinel", err)
	}
	if errors.Is(err, ErrBudgetExhausted) {
		t.Fatal("permanent failure must not claim budget exhaustion")
	}
	if !IsPermanent(Permanent(sentinel)) {
		t.Fatal("IsPermanent(Permanent(err)) = false")
	}
	if IsPermanent(sentinel) {
		t.Fatal("IsPermanent(plain err) = true")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestExhaustionWrapsLastError(t *testing.T) {
	last := errors.New("still down")
	p := Policy{Attempts: 3, Sleep: func(time.Duration) {}}
	err := p.Do(func(int) error { return last })
	if !errors.Is(err, ErrBudgetExhausted) || !errors.Is(err, last) {
		t.Fatalf("err = %v, want both ErrBudgetExhausted and the last attempt error", err)
	}
}

func TestCounters(t *testing.T) {
	rec := obs.NewLog(io.Discard, "text", obs.LevelInfo)
	p := Policy{Attempts: 3, Recorder: rec, Name: "dial", Sleep: func(time.Duration) {}}
	p.Do(func(int) error { return errors.New("x") })
	m := rec.Metrics()
	if got := m.Counter("dial.attempts").Value(); got != 3 {
		t.Fatalf("dial.attempts = %d, want 3", got)
	}
	if got := m.Counter("dial.retries").Value(); got != 2 {
		t.Fatalf("dial.retries = %d, want 2", got)
	}
	if got := m.Counter("dial.giveups").Value(); got != 1 {
		t.Fatalf("dial.giveups = %d, want 1", got)
	}
	// Success consumes attempts but no giveup.
	p2 := Policy{Attempts: 3, Recorder: rec, Name: "ok"}
	p2.Do(func(int) error { return nil })
	if got := m.Counter("ok.attempts").Value(); got != 1 {
		t.Fatalf("ok.attempts = %d, want 1", got)
	}
	if got := m.Counter("ok.giveups").Value(); got != 0 {
		t.Fatalf("ok.giveups = %d, want 0", got)
	}
}
