// Package retry implements deterministic retry with exponential backoff
// and seeded jitter for the fault-tolerance layer: TCP dials that race a
// peer's listener, transient session-setup failures, and per-peer
// receive attempts during dropout detection. Determinism matters here as
// much as in the samplers — the backoff schedule is derived from an
// explicit seed through internal/randx, so a chaos run replays
// identically and flaky-looking behaviour can always be reproduced.
package retry

import (
	"errors"
	"fmt"
	"time"

	"sqm/internal/obs"
	"sqm/internal/randx"
)

// ErrBudgetExhausted reports that every attempt of a Do call failed.
// The last per-attempt error stays reachable through errors.Is/As.
var ErrBudgetExhausted = errors.New("retry: attempt budget exhausted")

// Policy is a deterministic exponential-backoff retry schedule. The
// zero value performs exactly one attempt with no waiting, so code can
// thread a Policy unconditionally and let callers opt in to retries.
type Policy struct {
	// Attempts is the total attempt budget, including the first; values
	// below 1 mean 1 (no retries).
	Attempts int
	// Base is the backoff before the first retry; doubled per retry.
	// 0 means 10ms.
	Base time.Duration
	// Max caps a single backoff. 0 means 1s.
	Max time.Duration
	// Jitter is the fraction of each backoff that is randomized, in
	// [0, 1]: the wait is d*(1-Jitter) + u*d*Jitter with u uniform from
	// the seeded stream. 0 disables jitter.
	Jitter float64
	// Seed keys the jitter stream; the same seed replays the same
	// schedule.
	Seed uint64
	// Recorder receives per-attempt telemetry: <name>.attempts,
	// <name>.retries and <name>.giveups counters plus <name>.retry
	// events. Nil disables telemetry at zero cost.
	Recorder obs.Recorder
	// Name prefixes the telemetry; "" means "retry".
	Name string
	// Sleep replaces time.Sleep in tests; nil means time.Sleep.
	Sleep func(time.Duration)
}

// Permanent marks err as non-retryable: Do returns it immediately
// without consuming further attempts.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{cause: err}
}

type permanentError struct{ cause error }

func (e *permanentError) Error() string { return e.cause.Error() }

// Unwrap exposes the wrapped error to errors.Is/As.
func (e *permanentError) Unwrap() error { return e.cause }

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// attempts returns the effective budget.
func (p Policy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// Backoff returns the wait before retry number retry (0-based, i.e.
// after attempt retry has failed), drawing jitter from rng. A nil rng
// disables jitter regardless of the policy.
func (p Policy) Backoff(retry int, rng *randx.RNG) time.Duration {
	base := p.Base
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := p.Max
	if max <= 0 {
		max = time.Second
	}
	d := base
	for i := 0; i < retry && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if p.Jitter > 0 && rng != nil {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		f := float64(d) * (1 - j + rng.Float64()*j)
		d = time.Duration(f)
	}
	return d
}

// Do runs op until it succeeds, returns a Permanent error, or the
// attempt budget is exhausted. op receives the 0-based attempt number.
// On exhaustion the returned error matches both ErrBudgetExhausted and
// the final attempt's error.
func (p Policy) Do(op func(attempt int) error) error {
	rng := randx.New(p.Seed ^ 0xbac0ff)
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	name := p.Name
	if name == "" {
		name = "retry"
	}
	var m *obs.Metrics
	if p.Recorder != nil {
		m = p.Recorder.Metrics()
	}
	count := func(suffix string) {
		if m != nil {
			m.Counter(name + "." + suffix).Add(1)
		}
	}
	budget := p.attempts()
	var err error
	for attempt := 0; attempt < budget; attempt++ {
		count("attempts")
		if err = op(attempt); err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.cause
		}
		if attempt == budget-1 {
			break
		}
		backoff := p.Backoff(attempt, rng)
		count("retries")
		if p.Recorder != nil {
			p.Recorder.Event(obs.LevelWarn, name+".retry",
				obs.Int("attempt", attempt+1), obs.Duration("backoff", backoff),
				obs.String("err", err.Error()))
		}
		sleep(backoff)
	}
	count("giveups")
	return fmt.Errorf("%w after %d attempt(s): %w", ErrBudgetExhausted, budget, err)
}
