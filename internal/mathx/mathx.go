// Package mathx provides scalar math helpers shared across the SQM
// implementation: numerically stable log-space arithmetic, log-binomial
// coefficients, and simple root finding. All functions are pure and
// allocation-free.
package mathx

import (
	"errors"
	"math"
)

// NegInf is the log-space representation of zero probability.
var NegInf = math.Inf(-1)

// LogAdd returns log(exp(a) + exp(b)) computed stably.
func LogAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogSub returns log(exp(a) - exp(b)) for a >= b, computed stably.
// It returns NegInf when a == b and NaN when a < b.
func LogSub(a, b float64) float64 {
	if math.IsInf(b, -1) {
		return a
	}
	if EqualWithin(a, b, 0) {
		return NegInf
	}
	if a < b {
		return math.NaN()
	}
	return a + math.Log1p(-math.Exp(b-a))
}

// LogSum returns log(Σ exp(xs[i])) computed stably.
func LogSum(xs []float64) float64 {
	s := NegInf
	for _, x := range xs {
		s = LogAdd(s, x)
	}
	return s
}

// LogFactorial returns log(n!) via math.Lgamma.
func LogFactorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}

// LogBinomial returns log(n choose k). It returns NegInf for k outside
// [0, n].
func LogBinomial(n, k int) float64 {
	if k < 0 || k > n {
		return NegInf
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Binomial returns (n choose k) as a float64. Large results saturate to
// +Inf rather than overflowing silently.
func Binomial(n, k int) float64 {
	return math.Exp(LogBinomial(n, k))
}

// ErrNoRoot is returned by Bisect when the bracket does not straddle a
// sign change.
var ErrNoRoot = errors.New("mathx: bracket does not contain a sign change")

// Bisect finds x in [lo, hi] with f(x) ~= 0 by bisection, assuming f is
// continuous and f(lo), f(hi) have opposite signs. It runs for iter
// iterations (53 is enough for full float64 resolution of the bracket).
func Bisect(f func(float64) float64, lo, hi float64, iter int) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if EqualWithin(flo, 0, 0) {
		return lo, nil
	}
	if EqualWithin(fhi, 0, 0) {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrNoRoot
	}
	for i := 0; i < iter; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if EqualWithin(fm, 0, 0) {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// BisectMonotone finds the smallest x in [lo, hi] with pred(x) true,
// assuming pred is monotone (false ... false true ... true). It returns
// hi if pred is false everywhere on the bracket, after verifying
// pred(hi); if pred(hi) is false it returns hi and false.
func BisectMonotone(pred func(float64) bool, lo, hi float64, iter int) (float64, bool) {
	if pred(lo) {
		return lo, true
	}
	if !pred(hi) {
		return hi, false
	}
	for i := 0; i < iter; i++ {
		mid := lo + (hi-lo)/2
		if pred(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// EqualWithin reports whether a and b differ by at most tol. It is the
// repo's designated floating-point comparison helper, enforced by the
// sqmlint floateq analyzer: a tolerance of 0 asserts exact equality
// explicitly (and still treats equal infinities as equal), while a
// positive tolerance absorbs last-ulp drift from transcendental
// pipelines. NaN compares unequal to everything, matching ==.
func EqualWithin(a, b, tol float64) bool {
	if a == b { //lint:ignore floateq the tolerance helper is the one sanctioned exact-comparison site
		return true
	}
	return math.Abs(a-b) <= tol
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Erfc is the complementary error function (re-exported for callers that
// otherwise would not import math directly).
func Erfc(x float64) float64 { return math.Erfc(x) }

// Sqr returns x*x.
func Sqr(x float64) float64 { return x * x }
