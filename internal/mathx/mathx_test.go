package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestLogAddBasic(t *testing.T) {
	got := LogAdd(math.Log(3), math.Log(4))
	if !almostEq(got, math.Log(7), 1e-12) {
		t.Fatalf("LogAdd(log3, log4) = %v, want log 7", got)
	}
}

func TestLogAddWithNegInf(t *testing.T) {
	if got := LogAdd(NegInf, 2.5); got != 2.5 {
		t.Fatalf("LogAdd(-inf, 2.5) = %v", got)
	}
	if got := LogAdd(2.5, NegInf); got != 2.5 {
		t.Fatalf("LogAdd(2.5, -inf) = %v", got)
	}
	if got := LogAdd(NegInf, NegInf); !math.IsInf(got, -1) {
		t.Fatalf("LogAdd(-inf, -inf) = %v", got)
	}
}

func TestLogAddCommutativeProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 700)
		b = math.Mod(b, 700)
		return almostEq(LogAdd(a, b), LogAdd(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogAddLargeMagnitudes(t *testing.T) {
	// exp(1000) overflows float64, but log-space addition must not.
	got := LogAdd(1000, 1000)
	want := 1000 + math.Log(2)
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("LogAdd(1000,1000) = %v, want %v", got, want)
	}
}

func TestLogSub(t *testing.T) {
	got := LogSub(math.Log(7), math.Log(3))
	if !almostEq(got, math.Log(4), 1e-12) {
		t.Fatalf("LogSub = %v, want log 4", got)
	}
	if got := LogSub(2, 2); !math.IsInf(got, -1) {
		t.Fatalf("LogSub(a,a) = %v, want -inf", got)
	}
	if got := LogSub(1, 2); !math.IsNaN(got) {
		t.Fatalf("LogSub(1,2) = %v, want NaN", got)
	}
	if got := LogSub(3, NegInf); got != 3 {
		t.Fatalf("LogSub(3,-inf) = %v, want 3", got)
	}
}

func TestLogSumMatchesDirectSum(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(2), math.Log(3), math.Log(4)}
	if got := LogSum(xs); !almostEq(got, math.Log(10), 1e-12) {
		t.Fatalf("LogSum = %v, want log 10", got)
	}
	if got := LogSum(nil); !math.IsInf(got, -1) {
		t.Fatalf("LogSum(nil) = %v, want -inf", got)
	}
}

func TestLogFactorialSmall(t *testing.T) {
	want := []float64{0, 0, math.Log(2), math.Log(6), math.Log(24), math.Log(120)}
	for n, w := range want {
		if got := LogFactorial(n); !almostEq(got, w, 1e-12) {
			t.Errorf("LogFactorial(%d) = %v, want %v", n, got, w)
		}
	}
	if !math.IsNaN(LogFactorial(-1)) {
		t.Error("LogFactorial(-1) should be NaN")
	}
}

func TestLogBinomialPascalProperty(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) for 1 <= k <= n-1.
	for n := 2; n <= 60; n++ {
		for k := 1; k < n; k++ {
			lhs := LogBinomial(n, k)
			rhs := LogAdd(LogBinomial(n-1, k-1), LogBinomial(n-1, k))
			if !almostEq(lhs, rhs, 1e-10) {
				t.Fatalf("Pascal identity fails at n=%d k=%d: %v vs %v", n, k, lhs, rhs)
			}
		}
	}
}

func TestBinomialExactSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 2, 10}, {10, 5, 252}, {52, 5, 2598960}, {4, 0, 1}, {4, 4, 1}}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); math.Abs(got-c.want) > 1e-6*c.want+1e-9 {
			t.Errorf("Binomial(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if got := Binomial(5, 6); got != 0 {
		t.Errorf("Binomial(5,6) = %v, want 0", got)
	}
	if got := Binomial(5, -1); got != 0 {
		t.Errorf("Binomial(5,-1) = %v, want 0", got)
	}
}

func TestBisectFindsSqrt2(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(root, math.Sqrt2, 1e-12) {
		t.Fatalf("root = %v, want sqrt 2", root)
	}
}

func TestBisectNoRoot(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 60); err != ErrNoRoot {
		t.Fatalf("err = %v, want ErrNoRoot", err)
	}
}

func TestBisectExactEndpoints(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Bisect(f, 0, 1, 10); err != nil || r != 0 {
		t.Fatalf("got (%v, %v), want (0, nil)", r, err)
	}
	if r, err := Bisect(f, -1, 0, 10); err != nil || r != 0 {
		t.Fatalf("got (%v, %v), want (0, nil)", r, err)
	}
}

func TestBisectMonotone(t *testing.T) {
	x, ok := BisectMonotone(func(x float64) bool { return x >= 0.37 }, 0, 1, 60)
	if !ok || !almostEq(x, 0.37, 1e-12) {
		t.Fatalf("got (%v, %v), want (0.37, true)", x, ok)
	}
	if _, ok := BisectMonotone(func(float64) bool { return false }, 0, 1, 60); ok {
		t.Fatal("expected ok=false when pred is never true")
	}
	if x, ok := BisectMonotone(func(float64) bool { return true }, 3, 9, 60); !ok || x != 3 {
		t.Fatalf("got (%v, %v), want (3, true)", x, ok)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

func TestSqr(t *testing.T) {
	if got := Sqr(-3); got != 9 {
		t.Errorf("Sqr(-3) = %v", got)
	}
}
