// Package bgw implements the BGW protocol (Ben-Or, Goldwasser, Wigderson
// 1988) for semi-honest parties over the field of package field, as used
// by SQM (§II and Appendix B of the paper):
//
//  1. each party secret-shares its private inputs with Shamir's scheme,
//  2. addition and scaling are local; each multiplication takes the
//     pointwise product of shares (a degree-2t sharing) followed by a
//     degree-reduction resharing round,
//  3. outputs are opened by exchanging shares and interpolating at 0.
//
// The engine simulates all P parties in one process. It faithfully
// performs the share arithmetic (so outputs are bit-exact with the
// plaintext computation) and meters the communication: every resharing
// or opening advances a round counter, and simulated network time is
// rounds × Latency, matching the paper's experimental setup of a fixed
// 0.1 s message-passing cost.
package bgw

import (
	"fmt"
	"time"

	"sqm/internal/field"
	"sqm/internal/invariant"
	"sqm/internal/obs"
	"sqm/internal/randx"
	"sqm/internal/shamir"
)

// DefaultLatency is the per-round message-passing cost used by the
// paper's simulation (§VI).
const DefaultLatency = 100 * time.Millisecond

// Config describes a BGW deployment.
type Config struct {
	Parties   int           // P >= 2*Threshold + 1
	Threshold int           // t; 0 means floor((P-1)/2)
	Latency   time.Duration // per communication round; 0 means DefaultLatency
	Seed      uint64        // seeds the per-party private randomness
	Recorder  obs.Recorder  // telemetry sink; nil disables at zero cost
	// RecvTimeout bounds every blocking receive of the actor engine's
	// parties: a peer that stays silent past the deadline surfaces as a
	// transport.ErrTimeout party failure instead of a hung protocol.
	// 0 keeps receives blocking (the trusted-simulation default).
	RecvTimeout time.Duration
	// Workers bounds the worker pool that parallelizes the local share
	// arithmetic of batched rounds (MulBatch, DotBatch, reshare folds).
	// 0 means runtime.NumCPU(); 1 forces the serial path; explicit
	// values are honored as given so a pinned pool size chunks — and
	// draws randomness — identically on every machine. Worker count
	// never changes opened outputs (see WorkerTunable).
	Workers int
}

// Stats meters the protocol execution. Frames and Messages separate
// physical sends from logical traffic: a batched round folds the
// independent messages of a whole level into one frame per ordered
// party pair, so Frames drops with batching while Messages — the
// protocol-defined traffic — stays put.
type Stats struct {
	Rounds   int64 // communication rounds
	Frames   int64 // physical point-to-point sends (batched frames count once)
	Messages int64 // logical point-to-point messages
	Bytes    int64 // payload bytes (8 per field element per message)
	FieldOps int64 // local field multiplications (cost-model input)
}

// NetTime returns the simulated network time for the metered rounds at
// the given per-round latency.
func (s Stats) NetTime(latency time.Duration) time.Duration {
	return time.Duration(s.Rounds) * latency
}

// Engine simulates the P parties of one BGW execution.
type Engine struct {
	p, t    int
	latency time.Duration
	rngs    []*randx.RNG // party i's private randomness
	weights []field.Elem // Lagrange weights at 0 for points 1..P
	stats   Stats
	workers int      // configured pool bound; see SetWorkers
	scratch elemSlab // recycled P-width accumulators for batched rounds

	rec          obs.Recorder // nil when telemetry is disabled
	roundHist    *obs.Histogram
	opsGauge     *obs.Gauge
	workersGauge *obs.Gauge
	lastRound    time.Time
}

// NewEngine validates the configuration and prepares an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Parties < 3 {
		return nil, fmt.Errorf("bgw: need at least 3 parties, got %d", cfg.Parties)
	}
	t := cfg.Threshold
	if t == 0 {
		t = (cfg.Parties - 1) / 2
	}
	if t < 1 || cfg.Parties < 2*t+1 {
		return nil, fmt.Errorf("bgw: threshold %d invalid for %d parties (need P >= 2t+1, t >= 1)", t, cfg.Parties)
	}
	lat := cfg.Latency
	if lat == 0 {
		lat = DefaultLatency
	}
	e := &Engine{p: cfg.Parties, t: t, latency: lat, workers: cfg.Workers,
		scratch: elemSlab{width: cfg.Parties}}
	if rec := cfg.Recorder; rec != nil && rec.Metrics() != nil {
		e.rec = rec
		e.roundHist = rec.Metrics().Histogram("bgw.round.seconds")
		e.opsGauge = rec.Metrics().Gauge("bgw.fieldops")
		e.workersGauge = rec.Metrics().Gauge("bgw.workers")
		e.workersGauge.Set(float64(effectiveWorkers(e.workers)))
		e.scratch.counter = rec.Metrics().Counter("bgw.pool.reused")
		e.lastRound = time.Now()
	}
	root := randx.New(cfg.Seed)
	for i := 0; i < cfg.Parties; i++ {
		e.rngs = append(e.rngs, root.Fork())
	}
	e.weights = shamir.LagrangeAtZero(shamir.PartyPoints(cfg.Parties))
	return e, nil
}

// Parties returns P.
func (e *Engine) Parties() int { return e.p }

// Threshold returns t.
func (e *Engine) Threshold() int { return e.t }

// Latency returns the per-round latency.
func (e *Engine) Latency() time.Duration { return e.latency }

// Stats returns a snapshot of the execution counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetWorkers implements WorkerTunable: it bounds the pool that
// parallelizes batched share arithmetic and returns the effective
// bound. Opened outputs are identical for every setting.
func (e *Engine) SetWorkers(n int) int {
	e.workers = n
	eff := effectiveWorkers(n)
	if e.workersGauge != nil {
		e.workersGauge.Set(float64(eff))
	}
	return eff
}

// ResetStats zeroes the counters (between experiment phases).
func (e *Engine) ResetStats() { e.stats = Stats{} }

// Recorder returns the engine's telemetry sink (never nil).
func (e *Engine) Recorder() obs.Recorder { return obs.Or(e.rec) }

// AdvanceRound accounts one communication round. Structured protocols
// batch all independent messages of a phase into a single round. With
// telemetry enabled, the wall-clock since the previous round boundary
// becomes one bgw.round span.
func (e *Engine) AdvanceRound() {
	e.stats.Rounds++
	if e.rec != nil {
		e.observeRound(e.stats.Rounds, e.stats.FieldOps)
	}
}

// observeRound emits one per-round span and refreshes the field-op
// gauge.
func (e *Engine) observeRound(round, ops int64) {
	now := time.Now()
	secs := now.Sub(e.lastRound).Seconds()
	e.lastRound = now
	e.roundHist.Observe(secs)
	e.opsGauge.Set(float64(ops))
	e.rec.Event(obs.LevelDebug, "bgw.round",
		obs.Int64("round", round), obs.Float64("seconds", secs),
		obs.Int64("fieldops", ops))
}

// Shared is a single secret-shared value; shares[i] is held by party i.
type Shared struct {
	eng    *Engine
	shares []field.Elem
}

// Input has party owner secret-share the signed value v. The messages
// (one share to each other party) are metered; callers batch all inputs
// of a phase into one round via AdvanceRound.
func (e *Engine) Input(owner int, v int64) *Shared {
	e.checkParty(owner)
	sh := shamir.Share(field.FromInt64(v), e.t, e.p, e.rngs[owner])
	e.stats.Frames += int64(e.p - 1)
	e.stats.Messages += int64(e.p - 1)
	e.stats.Bytes += 8 * int64(e.p-1)
	e.stats.FieldOps += int64(e.p * (e.t + 1))
	return &Shared{eng: e, shares: sh}
}

// InputElem has party owner secret-share a raw field element. Used by
// preprocessing protocols (e.g. Beaver-triple generation) whose values
// are uniform field elements rather than signed integers.
func (e *Engine) InputElem(owner int, v field.Elem) *Shared {
	e.checkParty(owner)
	sh := shamir.Share(v, e.t, e.p, e.rngs[owner])
	e.stats.Frames += int64(e.p - 1)
	e.stats.Messages += int64(e.p - 1)
	e.stats.Bytes += 8 * int64(e.p-1)
	e.stats.FieldOps += int64(e.p * (e.t + 1))
	return &Shared{eng: e, shares: sh}
}

// OpenElem reveals the raw field element (no signed decoding).
func (e *Engine) OpenElem(s *Shared) field.Elem {
	if s.eng != e {
		panic(invariant.Violation("bgw: foreign share"))
	}
	e.stats.Frames += int64(e.p * (e.p - 1))
	e.stats.Messages += int64(e.p * (e.p - 1))
	e.stats.Bytes += 8 * int64(e.p*(e.p-1))
	e.stats.FieldOps += int64(e.p)
	return shamir.ReconstructWithWeights(e.weights, s.shares)
}

// AdditiveShares converts the Shamir sharing to an additive sharing
// locally: with Lagrange weights λ, party i's addend is λ_i·s_i and
// Σ_i λ_i·s_i equals the secret. No communication.
func (s *Shared) AdditiveShares(weights []field.Elem) []field.Elem {
	if len(weights) != len(s.shares) {
		panic(invariant.Violation("bgw: AdditiveShares weight count mismatch"))
	}
	out := make([]field.Elem, len(s.shares))
	field.MulVec(out, weights, s.shares)
	return out
}

// Zero returns a trivial sharing of 0 (all shares zero); no
// communication.
func (e *Engine) Zero() *Shared {
	return &Shared{eng: e, shares: make([]field.Elem, e.p)}
}

// Add returns a sharing of a + b; purely local.
func (e *Engine) Add(a, b *Shared) *Shared {
	e.checkSame(a, b)
	out := make([]field.Elem, e.p)
	field.AddVec(out, a.shares, b.shares)
	return &Shared{eng: e, shares: out}
}

// Sub returns a sharing of a − b; purely local.
func (e *Engine) Sub(a, b *Shared) *Shared {
	e.checkSame(a, b)
	out := make([]field.Elem, e.p)
	field.SubVec(out, a.shares, b.shares)
	return &Shared{eng: e, shares: out}
}

// AddConst returns a sharing of a + c; purely local (the constant
// polynomial c added to every share).
func (e *Engine) AddConst(a *Shared, c int64) *Shared {
	ce := field.FromInt64(c)
	out := make([]field.Elem, e.p)
	field.AddConstVec(out, a.shares, ce)
	return &Shared{eng: e, shares: out}
}

// MulConst returns a sharing of c·a; purely local.
func (e *Engine) MulConst(a *Shared, c int64) *Shared {
	ce := field.FromInt64(c)
	out := make([]field.Elem, e.p)
	field.MulConstVec(out, a.shares, ce)
	e.stats.FieldOps += int64(e.p)
	return &Shared{eng: e, shares: out}
}

// Mul returns a sharing of a·b using the degree-reduction resharing of
// BGW. It meters P(P−1) messages; batch independent multiplications
// into one round with AdvanceRound.
func (e *Engine) Mul(a, b *Shared) *Shared {
	e.checkSame(a, b)
	prods := make([]field.Elem, e.p)
	field.MulVec(prods, a.shares, b.shares)
	e.stats.FieldOps += int64(e.p)
	return e.reshare(prods)
}

// reshare converts a degree-2t sharing (the per-party values in high)
// back to a fresh degree-t sharing of the same secret: each party i
// re-shares its value high[i] and the parties linearly combine the
// sub-shares with the Lagrange weights.
func (e *Engine) reshare(high []field.Elem) *Shared {
	return e.reshareBatch([][]field.Elem{high})[0]
}

// reshareBatch runs one degree-reduction round for a batch of degree-2t
// values (highs[m][i] is party i's value of batch item m): every party
// re-shares all of its values and sends each peer a single frame
// carrying all sub-shares, so a level of independent multiplications
// costs one frame per ordered party pair regardless of batch size.
//
// With one worker, each party consumes its private stream value-major
// (item 0, 1, …), matching both the eager per-gate order and the actor
// parties. With more, the batch splits into contiguous item chunks and
// each chunk reshares with per-chunk forks of the party streams, taken
// serially in chunk order so the randomness is deterministic for a
// fixed worker count. The two disciplines draw different sub-share
// polynomials, but BGW computes exactly — the reconstructed secrets
// cancel the resharing randomness — so opened outputs are bit-identical
// either way.
func (e *Engine) reshareBatch(highs [][]field.Elem) []*Shared {
	n := len(highs)
	outs := make([]*Shared, n)
	for m := range outs {
		outs[m] = &Shared{eng: e, shares: make([]field.Elem, e.p)}
	}
	if w := clampWorkers(e.workers, n); w <= 1 {
		for i := 0; i < e.p; i++ {
			wi := e.weights[i]
			for m := range highs {
				sub := shamir.Share(highs[m][i], e.t, e.p, e.rngs[i])
				field.MulAddVec(outs[m].shares, sub, wi)
			}
		}
	} else {
		chunkRngs := make([][]*randx.RNG, w)
		for c := 0; c < w; c++ {
			chunkRngs[c] = make([]*randx.RNG, e.p)
			for i := 0; i < e.p; i++ {
				chunkRngs[c][i] = e.rngs[i].Fork()
			}
		}
		parallelChunks(n, w, func(chunk, start, end int) {
			rngs := chunkRngs[chunk]
			for i := 0; i < e.p; i++ {
				wi := e.weights[i]
				for m := start; m < end; m++ {
					sub := shamir.Share(highs[m][i], e.t, e.p, rngs[i])
					field.MulAddVec(outs[m].shares, sub, wi)
				}
			}
		})
	}
	e.stats.Frames += int64(e.p * (e.p - 1))
	e.stats.Messages += int64(n * e.p * (e.p - 1))
	e.stats.Bytes += 8 * int64(n*e.p*(e.p-1))
	e.stats.FieldOps += int64(n * e.p * (e.p + e.t + 1))
	return outs
}

// InnerProduct returns a sharing of Σ_k a[k]·b[k] using the fused gate:
// each party sums its local share products and a single resharing
// restores degree t. This is the optimization that makes Gram matrices
// and gradient sums communication-cheap (one resharing per output
// instead of per product).
func (e *Engine) InnerProduct(as, bs []*Shared) *Shared {
	if len(as) != len(bs) {
		panic(invariant.Violation("bgw: InnerProduct length mismatch"))
	}
	acc := make([]field.Elem, e.p)
	for k := range as {
		e.checkSame(as[k], bs[k])
		field.MulAccVec(acc, as[k].shares, bs[k].shares)
	}
	e.stats.FieldOps += int64(e.p * len(as))
	return e.reshare(acc)
}

// Open reveals the secret to all parties (shares exchanged pairwise)
// and returns its signed decoding. Batch independent openings into one
// round with AdvanceRound.
func (e *Engine) Open(s *Shared) int64 {
	if s.eng != e {
		panic(invariant.Violation("bgw: foreign share"))
	}
	e.stats.Frames += int64(e.p * (e.p - 1))
	e.stats.Messages += int64(e.p * (e.p - 1))
	e.stats.Bytes += 8 * int64(e.p*(e.p-1))
	e.stats.FieldOps += int64(e.p)
	return field.ToInt64(shamir.ReconstructWithWeights(e.weights, s.shares))
}

func (e *Engine) checkParty(i int) {
	if i < 0 || i >= e.p {
		panic(invariant.Violation("bgw: party %d out of range [0,%d)", i, e.p))
	}
}

func (e *Engine) checkSame(a, b *Shared) {
	if a.eng != e || b.eng != e {
		panic(invariant.Violation("bgw: share from a different engine"))
	}
	if len(a.shares) != e.p || len(b.shares) != e.p {
		panic(invariant.Violation("bgw: malformed share vector"))
	}
}
