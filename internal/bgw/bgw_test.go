package bgw

import (
	"testing"
	"testing/quick"

	"sqm/internal/field"
	"sqm/internal/shamir"
)

func newTestEngine(t *testing.T, parties int) *Engine {
	t.Helper()
	e, err := NewEngine(Config{Parties: parties, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{Parties: 2}); err == nil {
		t.Fatal("2 parties must be rejected (no t >= 1 fits)")
	}
	if _, err := NewEngine(Config{Parties: 4, Threshold: 2}); err == nil {
		t.Fatal("P < 2t+1 must be rejected")
	}
	e, err := NewEngine(Config{Parties: 5})
	if err != nil {
		t.Fatal(err)
	}
	if e.Threshold() != 2 {
		t.Fatalf("default threshold = %d, want 2", e.Threshold())
	}
	if e.Latency() != DefaultLatency {
		t.Fatalf("default latency = %v", e.Latency())
	}
}

func TestInputOpenRoundTrip(t *testing.T) {
	e := newTestEngine(t, 4)
	for _, v := range []int64{0, 1, -1, 123456789, -987654321} {
		s := e.Input(v30(v), v)
		if got := e.Open(s); got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}

// v30 maps a value to a valid owner id deterministically.
func v30(v int64) int {
	if v < 0 {
		v = -v
	}
	return int(v % 3)
}

func TestAddSubConst(t *testing.T) {
	e := newTestEngine(t, 4)
	a := e.Input(0, 100)
	b := e.Input(1, -30)
	if got := e.Open(e.Add(a, b)); got != 70 {
		t.Fatalf("Add = %d", got)
	}
	if got := e.Open(e.Sub(a, b)); got != 130 {
		t.Fatalf("Sub = %d", got)
	}
	if got := e.Open(e.AddConst(a, 5)); got != 105 {
		t.Fatalf("AddConst = %d", got)
	}
	if got := e.Open(e.MulConst(b, -2)); got != 60 {
		t.Fatalf("MulConst = %d", got)
	}
	if got := e.Open(e.Zero()); got != 0 {
		t.Fatalf("Zero = %d", got)
	}
}

func TestMulMatchesPlaintext(t *testing.T) {
	e := newTestEngine(t, 4)
	cases := [][2]int64{{3, 7}, {-5, 11}, {0, 999}, {-8, -9}, {1 << 20, 1 << 20}}
	for _, c := range cases {
		a := e.Input(0, c[0])
		b := e.Input(1, c[1])
		if got := e.Open(e.Mul(a, b)); got != c[0]*c[1] {
			t.Fatalf("Mul(%d, %d) = %d", c[0], c[1], got)
		}
	}
}

func TestMulProperty(t *testing.T) {
	e := newTestEngine(t, 5)
	f := func(a, b int32) bool {
		// Keep the product within the field's signed embedding range.
		x, y := int64(a%(1<<29)), int64(b%(1<<29))
		s := e.Mul(e.Input(0, x), e.Input(1, y))
		return e.Open(s) == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeepMultiplicationChain(t *testing.T) {
	// Repeated degree reduction: x^8 through 3 squarings.
	e := newTestEngine(t, 3)
	x := e.Input(0, 5)
	s := x
	for i := 0; i < 3; i++ {
		s = e.Mul(s, s)
		e.AdvanceRound()
	}
	if got := e.Open(s); got != 390625 {
		t.Fatalf("5^8 = %d", got)
	}
}

func TestInnerProduct(t *testing.T) {
	e := newTestEngine(t, 4)
	as := []*Shared{e.Input(0, 1), e.Input(0, 2), e.Input(1, 3)}
	bs := []*Shared{e.Input(2, 4), e.Input(2, 5), e.Input(3, 6)}
	if got := e.Open(e.InnerProduct(as, bs)); got != 32 {
		t.Fatalf("InnerProduct = %d", got)
	}
}

func TestInnerProductSingleResharing(t *testing.T) {
	e := newTestEngine(t, 4)
	var as, bs []*Shared
	for i := 0; i < 10; i++ {
		as = append(as, e.Input(0, int64(i)))
		bs = append(bs, e.Input(1, int64(i)))
	}
	e.ResetStats()
	e.InnerProduct(as, bs)
	msgs := e.Stats().Messages
	if want := int64(4 * 3); msgs != want {
		t.Fatalf("fused inner product used %d messages, want one resharing = %d", msgs, want)
	}
}

func TestStatsMetering(t *testing.T) {
	e := newTestEngine(t, 4)
	e.ResetStats()
	a := e.Input(0, 2) // 3 messages
	b := e.Input(1, 3) // 3 messages
	e.AdvanceRound()   // input round
	c := e.Mul(a, b)   // 12 messages
	e.AdvanceRound()   // multiplication round
	e.Open(c)          // 12 messages
	e.AdvanceRound()   // output round
	st := e.Stats()
	if st.Messages != 3+3+12+12 {
		t.Fatalf("Messages = %d", st.Messages)
	}
	if st.Rounds != 3 {
		t.Fatalf("Rounds = %d", st.Rounds)
	}
	if st.NetTime(DefaultLatency) != 3*DefaultLatency {
		t.Fatalf("NetTime = %v", st.NetTime(DefaultLatency))
	}
	if st.FieldOps == 0 {
		t.Fatal("FieldOps not metered")
	}
}

func TestBytesMetering(t *testing.T) {
	e := newTestEngine(t, 4)
	e.ResetStats()
	a := e.Input(0, 2)                   // 3 messages x 8 bytes
	v := e.InputVec(1, []int64{1, 2, 3}) // 3 messages x 24 bytes
	e.Open(a)                            // 12 messages x 8 bytes
	e.OpenVec(v)                         // 12 messages x 24 bytes
	want := int64(3*8 + 3*24 + 12*8 + 12*24)
	if got := e.Stats().Bytes; got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
}

func TestSharesLookRandom(t *testing.T) {
	// No single party's share should equal the secret systematically.
	e := newTestEngine(t, 4)
	const secret = 424242
	hits := 0
	for trial := 0; trial < 200; trial++ {
		s := e.Input(0, secret)
		for i := 0; i < 4; i++ {
			if s.shares[i] == 424242 {
				hits++
			}
		}
	}
	if hits > 2 {
		t.Fatalf("shares leak the secret (%d hits)", hits)
	}
}

func TestInputVecOpenVec(t *testing.T) {
	e := newTestEngine(t, 4)
	vs := []int64{5, -6, 0, 1 << 30}
	v := e.InputVec(2, vs)
	if v.Len() != 4 {
		t.Fatalf("Len = %d", v.Len())
	}
	got := e.OpenVec(v)
	for i, w := range vs {
		if got[i] != w {
			t.Fatalf("OpenVec = %v", got)
		}
	}
}

func TestVecAtMatchesScalar(t *testing.T) {
	e := newTestEngine(t, 3)
	v := e.InputVec(0, []int64{9, -4})
	if got := e.Open(v.At(1)); got != -4 {
		t.Fatalf("At(1) = %d", got)
	}
}

func TestAddSubMulConstVec(t *testing.T) {
	e := newTestEngine(t, 4)
	a := e.InputVec(0, []int64{1, 2, 3})
	b := e.InputVec(1, []int64{10, 20, 30})
	if got := e.OpenVec(e.AddVec(a, b)); got[2] != 33 {
		t.Fatalf("AddVec = %v", got)
	}
	if got := e.OpenVec(e.SubVec(b, a)); got[0] != 9 {
		t.Fatalf("SubVec = %v", got)
	}
	if got := e.OpenVec(e.MulConstVec(a, -3)); got[1] != -6 {
		t.Fatalf("MulConstVec = %v", got)
	}
	if got := e.OpenVec(e.AddConstVec(a, 100)); got[0] != 101 {
		t.Fatalf("AddConstVec = %v", got)
	}
}

func TestLinComb(t *testing.T) {
	e := newTestEngine(t, 4)
	v1 := e.InputVec(0, []int64{1, 0, 2})
	v2 := e.InputVec(1, []int64{0, 3, 1})
	got := e.OpenVec(e.LinComb([]*SharedVec{v1, v2}, []int64{2, -1}))
	want := []int64{2, -3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LinComb = %v, want %v", got, want)
		}
	}
}

func TestDotAndDotSubset(t *testing.T) {
	e := newTestEngine(t, 4)
	a := e.InputVec(0, []int64{1, 2, 3, 4})
	b := e.InputVec(1, []int64{5, 6, 7, 8})
	if got := e.Open(e.Dot(a, b)); got != 70 {
		t.Fatalf("Dot = %d", got)
	}
	if got := e.Open(e.DotSubset(a, b, []int{0, 3})); got != 37 {
		t.Fatalf("DotSubset = %d", got)
	}
}

func TestFromScalars(t *testing.T) {
	e := newTestEngine(t, 3)
	xs := []*Shared{e.Input(0, 7), e.Input(1, -2)}
	v := e.FromScalars(xs)
	got := e.OpenVec(v)
	if got[0] != 7 || got[1] != -2 {
		t.Fatalf("FromScalars = %v", got)
	}
}

// A small end-to-end circuit: F(x) = Σ_records x1·x2 + noise, the shape
// of SQM's evaluation step.
func TestNoisyAggregateCircuit(t *testing.T) {
	e := newTestEngine(t, 4)
	col1 := e.InputVec(0, []int64{1, 2, 3})
	col2 := e.InputVec(1, []int64{4, 5, 6})
	e.AdvanceRound()
	sum := e.Dot(col1, col2) // 4 + 10 + 18 = 32
	// Each party adds its private noise share.
	noise := []int64{3, -1, 2, -2} // aggregate 2
	acc := sum
	for p, z := range noise {
		acc = e.Add(acc, e.Input(p, z))
	}
	e.AdvanceRound()
	if got := e.Open(acc); got != 34 {
		t.Fatalf("noisy aggregate = %d, want 34", got)
	}
}

func TestDotBatchMatchesSequential(t *testing.T) {
	e := newTestEngine(t, 4)
	const vecs, length = 9, 50
	vs := make([]*SharedVec, vecs)
	raw := make([][]int64, vecs)
	for i := range vs {
		raw[i] = make([]int64, length)
		for k := range raw[i] {
			raw[i][k] = int64((i+1)*(k+3)%97) - 48
		}
		vs[i] = e.InputVec(i%4, raw[i])
	}
	var pairs []DotPair
	var want []int64
	for a := 0; a < vecs; a++ {
		for b := a; b < vecs; b++ {
			pairs = append(pairs, DotPair{A: vs[a], B: vs[b]})
			var dot int64
			for k := 0; k < length; k++ {
				dot += raw[a][k] * raw[b][k]
			}
			want = append(want, dot)
		}
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got := e.DotBatch(pairs, workers)
		for i := range got {
			if v := e.Open(got[i]); v != want[i] {
				t.Fatalf("workers=%d pair %d: %d != %d", workers, i, v, want[i])
			}
		}
	}
}

func TestDotBatchEmpty(t *testing.T) {
	e := newTestEngine(t, 3)
	if got := e.DotBatch(nil, 4); len(got) != 0 {
		t.Fatal("empty batch should return empty slice")
	}
}

func TestDotBatchMetersLikeSequential(t *testing.T) {
	e := newTestEngine(t, 4)
	a := e.InputVec(0, []int64{1, 2, 3})
	b := e.InputVec(1, []int64{4, 5, 6})
	e.ResetStats()
	e.Dot(a, b)
	seq := e.Stats()
	e.ResetStats()
	e.DotBatch([]DotPair{{A: a, B: b}}, 4)
	par := e.Stats()
	if seq.Messages != par.Messages || seq.FieldOps != par.FieldOps {
		t.Fatalf("metering differs: seq %+v vs par %+v", seq, par)
	}
}

func TestInputElemOpenElemRoundTrip(t *testing.T) {
	e := newTestEngine(t, 4)
	// Raw field elements beyond the signed embedding range must survive.
	big := field.Elem(field.Modulus - 3)
	s := e.InputElem(1, big)
	if got := e.OpenElem(s); got != big {
		t.Fatalf("OpenElem = %d, want %d", got, big)
	}
}

func TestAdditiveSharesConversion(t *testing.T) {
	e := newTestEngine(t, 4)
	s := e.Input(0, 9876)
	w := shamir.LagrangeAtZero(shamir.PartyPoints(4))
	add := s.AdditiveShares(w)
	var sum field.Elem
	for _, a := range add {
		sum = field.Add(sum, a)
	}
	if field.ToInt64(sum) != 9876 {
		t.Fatalf("additive conversion sums to %d", field.ToInt64(sum))
	}
}

func TestAdditiveSharesWeightMismatchPanics(t *testing.T) {
	e := newTestEngine(t, 4)
	s := e.Input(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.AdditiveShares(make([]field.Elem, 2))
}

func TestForeignSharePanics(t *testing.T) {
	e1 := newTestEngine(t, 3)
	e2 := newTestEngine(t, 3)
	a := e1.Input(0, 1)
	b := e2.Input(0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cross-engine shares")
		}
	}()
	e1.Add(a, b)
}

func TestMoreParties(t *testing.T) {
	// 10 parties, threshold 4: deep arithmetic still exact.
	e, err := NewEngine(Config{Parties: 10, Threshold: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := e.Input(3, 1234)
	b := e.Input(7, -56)
	c := e.Mul(e.Add(a, b), b) // (1234-56)·(-56)
	if got := e.Open(c); got != 1178*-56 {
		t.Fatalf("got %d", got)
	}
}

func BenchmarkMul4Parties(b *testing.B) {
	e, _ := NewEngine(Config{Parties: 4, Seed: 1})
	x := e.Input(0, 123)
	y := e.Input(1, 456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Mul(x, y)
	}
}

func BenchmarkDot1000(b *testing.B) {
	e, _ := NewEngine(Config{Parties: 4, Seed: 1})
	vs := make([]int64, 1000)
	for i := range vs {
		vs[i] = int64(i)
	}
	x := e.InputVec(0, vs)
	y := e.InputVec(1, vs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Dot(x, y)
	}
}
