package bgw

import (
	"runtime"
	"sync"

	"sqm/internal/field"
	"sqm/internal/obs"
)

// WorkerTunable is the optional engine surface for tuning the bounded
// worker pool that parallelizes the local share arithmetic of batched
// rounds (MulBatch, DotBatch, reshare folds). Both BGW engines
// implement it; the circuit executor uses it to apply
// ExecOptions.Workers. Worker count only affects wall-clock and —
// through per-chunk resharing randomness — the private share values;
// opened outputs are bit-identical for every setting because BGW
// computes exactly and reconstructed secrets never depend on the
// resharing randomness.
type WorkerTunable interface {
	// SetWorkers bounds the per-level worker pool: n <= 0 restores the
	// default (runtime.NumCPU()); explicit positive values are honored
	// as given, so tests can pin the chunked work discipline on any
	// machine. Returns the effective bound.
	SetWorkers(n int) int
}

// effectiveWorkers resolves a configured pool bound: n <= 0 means
// runtime.NumCPU() (the NumCPU-capped default); explicit positive
// values pass through so a pinned pool size means the same chunking —
// and the same per-chunk randomness — on every machine.
func effectiveWorkers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// clampWorkers additionally caps the bound at the job count (each
// worker must own at least one job for the chunk split to be
// meaningful).
func clampWorkers(n, jobs int) int {
	n = effectiveWorkers(n)
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// parallelChunks splits [0, n) into workers contiguous chunks and runs
// fn(chunk, start, end) for each, concurrently when workers > 1. Chunk
// boundaries depend only on (n, workers), so the work assignment — and
// therefore any per-chunk randomness — is deterministic for a fixed
// pool size. Writers must target disjoint index ranges; the merge order
// is the slot order, not the completion order.
func parallelChunks(n, workers int, fn func(chunk, start, end int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for c := 0; c < workers; c++ {
		start, end := c*n/workers, (c+1)*n/workers
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(c, s, e int) {
			defer wg.Done()
			fn(c, s, e)
		}(c, start, end)
	}
	wg.Wait()
}

// elemSlab recycles fixed-width []field.Elem scratch slices within one
// engine session — the share-slab pool that keeps batched rounds from
// allocating a fresh accumulator per gate. It is intentionally not
// synchronized: each engine (and each actor party) owns its own slab
// and touches it only from its driving goroutine. Slices handed out by
// get are zeroed; put recycles a slice whose contents are dead.
type elemSlab struct {
	width   int
	free    [][]field.Elem
	reused  int64        // pooled allocations avoided
	counter *obs.Counter // pooled-alloc telemetry; nil disables
}

func (s *elemSlab) get() []field.Elem {
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free = s.free[:n-1]
		s.reused++
		if s.counter != nil {
			s.counter.Add(1)
		}
		clear(b)
		return b
	}
	return make([]field.Elem, s.width)
}

func (s *elemSlab) put(b []field.Elem) {
	if len(b) == s.width {
		s.free = append(s.free, b)
	}
}

// grow returns scratch resized to at least n elements, reusing the
// backing array when it already fits — the single-buffer variant of the
// slab for per-call scratch whose size tracks the batch shape.
func growElems(scratch []field.Elem, n int) []field.Elem {
	if cap(scratch) >= n {
		return scratch[:n]
	}
	return make([]field.Elem, n)
}
