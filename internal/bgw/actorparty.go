package bgw

import (
	"encoding/binary"
	"fmt"

	"sqm/internal/field"
	"sqm/internal/randx"
	"sqm/internal/shamir"
	"sqm/internal/transport"
)

// actorOp enumerates the commands the facade broadcasts to the party
// actors. Every party executes the same command sequence in the same
// order, which keeps share slot indices and RNG streams aligned across
// parties without any coordination messages.
type actorOp uint8

const (
	opInput actorOp = iota
	opInputElem
	opInputVec
	opZero
	opAdd
	opSub
	opAddConst
	opMulConst
	opMul
	opInnerProduct
	opDot
	opDotBatch
	opAt
	opAddVec
	opFromScalars
	opOpen
	opOpenVec
	opAdditive
	opBarrier
	opMulBatch
	opOpenBatch
	opSetWorkers
)

// mulDesc is the wire form of one MulBatch item: operand slots resolved
// facade-side so the parties only index their share arrays.
type mulDesc struct {
	kind  MulKind
	a, b  int   // scalar (MulScalar) or vector (MulDot) slots
	refs  []int // MulInner operand list A
	refs2 []int // MulInner operand list B
}

// actorCmd is one broadcast command. Operand fields are interpreted per
// opcode; refs/refs2 carry operand lists for the fused gates. The
// payload is read-only for the parties — the facade never mutates a
// command after dispatch.
type actorCmd struct {
	op      actorOp
	a, b    int          // scalar or vector slot operands
	k       int          // element index (opAt)
	c       int64        // public constant or signed input (opInput, opAddConst, opMulConst)
	elem    field.Elem   // raw field input (opInputElem)
	owner   int          // input owner (opInput*, also used by opInputVec)
	ints    []int64      // signed input vector (opInputVec)
	refs    []int        // operand list A (opInnerProduct, opDotBatch, opFromScalars, opOpenBatch)
	refs2   []int        // operand list B
	muls    []mulDesc    // gate list (opMulBatch)
	weights []field.Elem // Lagrange weights (opAdditive)
	reply   chan actorReply
}

// actorReply is one party's answer to a synchronizing command.
type actorReply struct {
	party int
	val   int64
	vals  []int64
	elem  field.Elem
	ops   int64
	err   error
}

// actorParty is one BGW party: it owns its share slots and its private
// randomness, and talks to its peers only through the transport. The
// run loop consumes facade commands until the channel closes.
type actorParty struct {
	id, p, t int
	rng      *randx.RNG
	weights  []field.Elem
	conn     transport.PartyConn
	cmds     chan *actorCmd
	workers  int // per-party pool bound for batched local arithmetic

	sc       []field.Elem   // scalar share slots, indexed by facade refs
	vc       [][]field.Elem // vector share slots
	dec      []field.Elem   // decode scratch, reused across rounds
	fieldOps int64
	err      error
}

func (a *actorParty) run() {
	for cmd := range a.cmds {
		if a.err != nil {
			if cmd.reply != nil {
				cmd.reply <- actorReply{party: a.id, err: a.err}
			}
			continue
		}
		if err := a.exec(cmd); err != nil {
			a.err = fmt.Errorf("bgw: party %d: %w", a.id, err)
			// Tear down our endpoint so peers blocked on our traffic
			// fail fast instead of hanging mid-round.
			a.conn.Close()
			if cmd.reply != nil {
				cmd.reply <- actorReply{party: a.id, err: a.err}
			}
		}
	}
}

// exec performs one command. Commands carrying a reply channel must
// send exactly one reply on success; on error the run loop replies.
func (a *actorParty) exec(c *actorCmd) error {
	switch c.op {
	case opInput:
		return a.input(c.owner, field.FromInt64(c.c))
	case opInputElem:
		return a.input(c.owner, c.elem)
	case opInputVec:
		return a.inputVec(c.owner, c.ints)
	case opZero:
		a.sc = append(a.sc, 0)
	case opAdd:
		a.sc = append(a.sc, field.Add(a.sc[c.a], a.sc[c.b]))
	case opSub:
		a.sc = append(a.sc, field.Sub(a.sc[c.a], a.sc[c.b]))
	case opAddConst:
		a.sc = append(a.sc, field.Add(a.sc[c.a], field.FromInt64(c.c)))
	case opMulConst:
		a.sc = append(a.sc, field.Mul(a.sc[c.a], field.FromInt64(c.c)))
		a.fieldOps++
	case opMul:
		prod := field.Mul(a.sc[c.a], a.sc[c.b])
		a.fieldOps++
		out, err := a.reshare([]field.Elem{prod})
		if err != nil {
			return err
		}
		a.sc = append(a.sc, out[0])
	case opInnerProduct:
		var acc field.Elem
		for i := range c.refs {
			acc = field.Add(acc, field.Mul(a.sc[c.refs[i]], a.sc[c.refs2[i]]))
		}
		a.fieldOps += int64(len(c.refs))
		out, err := a.reshare([]field.Elem{acc})
		if err != nil {
			return err
		}
		a.sc = append(a.sc, out[0])
	case opDot:
		va, vb := a.vc[c.a], a.vc[c.b]
		acc := field.DotAcc(0, va, vb)
		a.fieldOps += int64(len(va))
		out, err := a.reshare([]field.Elem{acc})
		if err != nil {
			return err
		}
		a.sc = append(a.sc, out[0])
	case opDotBatch:
		accs := make([]field.Elem, len(c.refs))
		for m := range c.refs {
			a.fieldOps += int64(len(a.vc[c.refs[m]]))
		}
		parallelChunks(len(c.refs), clampWorkers(a.workers, len(c.refs)), func(_, start, end int) {
			for m := start; m < end; m++ {
				accs[m] = field.DotAcc(0, a.vc[c.refs[m]], a.vc[c.refs2[m]])
			}
		})
		out, err := a.reshare(accs)
		if err != nil {
			return err
		}
		a.sc = append(a.sc, out...)
	case opAt:
		a.sc = append(a.sc, a.vc[c.a][c.k])
	case opAddVec:
		va, vb := a.vc[c.a], a.vc[c.b]
		out := make([]field.Elem, len(va))
		field.AddVec(out, va, vb)
		a.vc = append(a.vc, out)
	case opFromScalars:
		out := make([]field.Elem, len(c.refs))
		for k, r := range c.refs {
			out[k] = a.sc[r]
		}
		a.vc = append(a.vc, out)
	case opOpen:
		vals, err := a.openValues([]field.Elem{a.sc[c.a]})
		if err != nil {
			return err
		}
		c.reply <- actorReply{party: a.id, val: field.ToInt64(vals[0])}
	case opOpenVec:
		vals, err := a.openValues(a.vc[c.a])
		if err != nil {
			return err
		}
		r := actorReply{party: a.id}
		if a.id == 0 {
			out := make([]int64, len(vals))
			for k, v := range vals {
				out[k] = field.ToInt64(v)
			}
			r.vals = out
		}
		c.reply <- r
	case opMulBatch:
		// Validation and op metering run serially (shape-only); the
		// per-gate arithmetic splits across the worker pool. Gates have
		// no randomness, so every worker count computes identical highs.
		for _, d := range c.muls {
			switch d.kind {
			case MulScalar:
				a.fieldOps++
			case MulInner:
				a.fieldOps += int64(len(d.refs))
			case MulDot:
				a.fieldOps += int64(len(a.vc[d.a]))
			default:
				return fmt.Errorf("unknown mul kind %d", d.kind)
			}
		}
		highs := make([]field.Elem, len(c.muls))
		parallelChunks(len(c.muls), clampWorkers(a.workers, len(c.muls)), func(_, start, end int) {
			for m := start; m < end; m++ {
				switch d := c.muls[m]; d.kind {
				case MulScalar:
					highs[m] = field.Mul(a.sc[d.a], a.sc[d.b])
				case MulInner:
					var acc field.Elem
					for i := range d.refs {
						acc = field.Add(acc, field.Mul(a.sc[d.refs[i]], a.sc[d.refs2[i]]))
					}
					highs[m] = acc
				case MulDot:
					highs[m] = field.DotAcc(0, a.vc[d.a], a.vc[d.b])
				}
			}
		})
		out, err := a.reshare(highs)
		if err != nil {
			return err
		}
		a.sc = append(a.sc, out...)
	case opOpenBatch:
		mine := make([]field.Elem, len(c.refs))
		for m, r := range c.refs {
			mine[m] = a.sc[r]
		}
		vals, err := a.openValues(mine)
		if err != nil {
			return err
		}
		r := actorReply{party: a.id}
		if a.id == 0 {
			out := make([]int64, len(vals))
			for k, v := range vals {
				out[k] = field.ToInt64(v)
			}
			r.vals = out
		}
		c.reply <- r
	case opAdditive:
		c.reply <- actorReply{party: a.id, elem: field.Mul(c.weights[a.id], a.sc[c.a])}
	case opBarrier:
		c.reply <- actorReply{party: a.id, ops: a.fieldOps}
	case opSetWorkers:
		a.workers = c.k
	default:
		return fmt.Errorf("unknown opcode %d", c.op)
	}
	return nil
}

// input runs one sharing round: the owner Shamir-shares the value and
// sends each peer its share; everyone else receives theirs.
func (a *actorParty) input(owner int, v field.Elem) error {
	if owner == a.id {
		sh := shamir.Share(v, a.t, a.p, a.rng)
		a.fieldOps += int64(a.p * (a.t + 1))
		for j := 0; j < a.p; j++ {
			if j == a.id {
				continue
			}
			buf := transport.GetPayload(8)
			putElem(buf, sh[j])
			if err := a.conn.Send(j, buf); err != nil {
				return err
			}
		}
		a.sc = append(a.sc, sh[a.id])
		return nil
	}
	buf, err := a.conn.Recv(owner)
	if err != nil {
		return err
	}
	if len(buf) != 8 {
		return fmt.Errorf("bad share payload from party %d: %d bytes", owner, len(buf))
	}
	a.sc = append(a.sc, getElem(buf))
	return nil
}

// inputVec shares a whole vector in one batched message per peer.
func (a *actorParty) inputVec(owner int, vs []int64) error {
	n := len(vs)
	if owner == a.id {
		mine := make([]field.Elem, n)
		bufs := make([][]byte, a.p)
		for j := range bufs {
			if j != a.id {
				bufs[j] = transport.GetPayload(8 * n)
			}
		}
		for k, v := range vs {
			sh := shamir.Share(field.FromInt64(v), a.t, a.p, a.rng)
			for j := 0; j < a.p; j++ {
				if j == a.id {
					mine[k] = sh[j]
				} else {
					putElem(bufs[j][8*k:], sh[j])
				}
			}
		}
		a.fieldOps += int64(n * a.p * (a.t + 1))
		for j := 0; j < a.p; j++ {
			if j == a.id {
				continue
			}
			if err := a.conn.SendN(j, bufs[j], n); err != nil {
				return err
			}
		}
		a.vc = append(a.vc, mine)
		return nil
	}
	buf, err := a.conn.Recv(owner)
	if err != nil {
		return err
	}
	if len(buf) != 8*n {
		return fmt.Errorf("bad vector payload from party %d: %d bytes for %d elems", owner, len(buf), n)
	}
	mine := make([]field.Elem, n)
	for k := range mine {
		mine[k] = getElem(buf[8*k:])
	}
	a.vc = append(a.vc, mine)
	return nil
}

// reshare runs one degree-reduction round for a batch of degree-2t
// values: Shamir-share each local value, send every peer its sub-shares
// in one message, and combine the received sub-shares with the Lagrange
// weights. Sends never block (transport guarantee), so the
// all-send-then-all-receive shape cannot deadlock. Send buffers come
// from the transport frame pool; received payloads are decoded into the
// party's scratch before the next Recv, per the transport ownership
// rule.
func (a *actorParty) reshare(highs []field.Elem) ([]field.Elem, error) {
	n := len(highs)
	subs := make([][]field.Elem, n)
	for m, h := range highs {
		subs[m] = shamir.Share(h, a.t, a.p, a.rng)
	}
	for j := 0; j < a.p; j++ {
		if j == a.id {
			continue
		}
		buf := transport.GetPayload(8 * n)
		for m := range subs {
			putElem(buf[8*m:], subs[m][j])
		}
		if err := a.conn.SendN(j, buf, n); err != nil {
			return nil, err
		}
	}
	out := make([]field.Elem, n)
	wi := a.weights[a.id]
	for m := range out {
		out[m] = field.Mul(wi, subs[m][a.id])
	}
	a.dec = growElems(a.dec, n)
	for j := 0; j < a.p; j++ {
		if j == a.id {
			continue
		}
		buf, err := a.conn.Recv(j)
		if err != nil {
			return nil, err
		}
		if len(buf) != 8*n {
			return nil, fmt.Errorf("bad reshare payload from party %d: %d bytes for %d values", j, len(buf), n)
		}
		for m := range a.dec {
			a.dec[m] = getElem(buf[8*m:])
		}
		field.MulAddVec(out, a.dec, a.weights[j])
	}
	// Per-party slice of the engine-level reshare cost model, so the
	// sum over parties matches the monolithic engine's accounting.
	a.fieldOps += int64(n * (a.p + a.t + 1))
	return out, nil
}

// openValues runs one opening round for a batch of shared values: every
// party broadcasts its shares and reconstructs by Lagrange
// interpolation at zero.
func (a *actorParty) openValues(mine []field.Elem) ([]field.Elem, error) {
	n := len(mine)
	out := make([]byte, 8*n)
	for m, v := range mine {
		putElem(out[8*m:], v)
	}
	for j := 0; j < a.p; j++ {
		if j == a.id {
			continue
		}
		// Each peer gets its own pooled copy: the transport owns
		// payloads after Send.
		b := transport.GetPayload(8 * n)
		copy(b, out)
		if err := a.conn.SendN(j, b, n); err != nil {
			return nil, err
		}
	}
	vals := make([]field.Elem, n)
	wi := a.weights[a.id]
	field.MulConstVec(vals, mine, wi)
	a.dec = growElems(a.dec, n)
	for j := 0; j < a.p; j++ {
		if j == a.id {
			continue
		}
		buf, err := a.conn.Recv(j)
		if err != nil {
			return nil, err
		}
		if len(buf) != 8*n {
			return nil, fmt.Errorf("bad opening payload from party %d: %d bytes for %d values", j, len(buf), n)
		}
		for m := range a.dec {
			a.dec[m] = getElem(buf[8*m:])
		}
		field.MulAddVec(vals, a.dec, a.weights[j])
	}
	a.fieldOps += int64(n)
	return vals, nil
}

func putElem(b []byte, e field.Elem) { binary.BigEndian.PutUint64(b, uint64(e)) }

func getElem(b []byte) field.Elem { return field.Elem(binary.BigEndian.Uint64(b)) }
