package bgw

import (
	"errors"
	"testing"
	"time"

	"sqm/internal/transport"
)

// TestActorRecvTimeoutSurfacesAsPartyFailure: with Config.RecvTimeout
// set, a silently lossy link fails the starved party with a typed
// transport.ErrTimeout instead of hanging the protocol forever.
func TestActorRecvTimeoutSurfacesAsPartyFailure(t *testing.T) {
	// Link 0→1 drops every message: party 1 starves waiting for party
	// 0's input share while 0's send succeeds, the silent-loss shape a
	// deadline exists to catch.
	mesh := transport.NewFaultMesh(transport.NewChanMesh(3), transport.FaultProfile{
		Seed:  1,
		Links: map[[2]int]transport.LinkFault{{0, 1}: {DropProb: 1}},
	})
	eng, err := NewActorEngine(Config{
		Parties:     3,
		Latency:     time.Nanosecond,
		Seed:        7,
		RecvTimeout: 50 * time.Millisecond,
	}, mesh)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	done := make(chan int64, 1)
	go func() { done <- eng.Open(eng.Input(0, 42)) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("protocol hung despite RecvTimeout")
	}
	if err := eng.Err(); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("engine error = %v, want errors.Is(err, transport.ErrTimeout)", err)
	}
}

// TestActorRecvTimeoutHarmlessWhenHealthy: a generous deadline on a
// healthy mesh changes nothing.
func TestActorRecvTimeoutHarmlessWhenHealthy(t *testing.T) {
	mesh := transport.NewChanMesh(3)
	eng, err := NewActorEngine(Config{
		Parties:     3,
		Latency:     time.Nanosecond,
		Seed:        7,
		RecvTimeout: 5 * time.Second,
	}, mesh)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.Open(eng.Mul(eng.Input(0, 6), eng.Input(1, 7))); got != 42 {
		t.Fatalf("Open = %d, want 42", got)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
}
