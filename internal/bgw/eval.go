package bgw

import (
	"time"

	"sqm/internal/field"
	"sqm/internal/invariant"
	"sqm/internal/obs"
	"sqm/internal/shamir"
)

// Val is an opaque handle to one secret-shared scalar. Each Evaluator
// implementation issues its own handle type (*Shared for the monolithic
// engine, *ActorShared for the party-actor engine); handles must only
// be passed back to the evaluator that issued them.
type Val interface{}

// Vec is an opaque handle to a secret-shared vector.
type Vec interface {
	// Len returns the number of shared elements.
	Len() int
}

// VecPair names one fused inner product of a DotBatch.
type VecPair struct{ A, B Vec }

// MulKind selects the shape of one MulBatch item.
type MulKind uint8

const (
	// MulScalar is one scalar product a·b (fields A, B).
	MulScalar MulKind = iota
	// MulInner is one fused inner product Σ_k As[k]·Bs[k] over scalar
	// handles (fields As, Bs).
	MulInner
	// MulDot is one fused inner product ⟨VA, VB⟩ over vector handles
	// (fields VA, VB).
	MulDot
)

// MulItem describes one multiplicative gate of a batched round. Only
// the fields selected by Kind are read.
type MulItem struct {
	Kind   MulKind
	A, B   Val   // MulScalar operands
	As, Bs []Val // MulInner operand lists
	VA, VB Vec   // MulDot operands
}

// Evaluator is the abstract MPC backend the SQM protocols run against.
// It captures exactly the share operations the paper's circuits need:
// input sharing, local linear algebra, degree-reduction multiplication,
// fused inner products and openings. Backends: the monolithic in-process
// engine (Eval), the party-actor engine over a pluggable transport
// (NewActorEngine), and — because BGW computes exactly — the plaintext
// engine in internal/core that bypasses sharing entirely.
//
// All operations follow the semi-honest, synchronized-round model of the
// concrete engines: structured protocols batch the independent messages
// of a phase into one round via AdvanceRound.
type Evaluator interface {
	// Parties returns P.
	Parties() int
	// Threshold returns t.
	Threshold() int
	// Latency returns the per-round latency used for simulated time.
	Latency() time.Duration
	// Stats returns a snapshot of the execution counters. For
	// transport-backed evaluators the message/byte counts are measured
	// from real traffic, not modeled.
	Stats() Stats
	// ResetStats zeroes the counters.
	ResetStats()
	// AdvanceRound accounts one communication round.
	AdvanceRound()
	// Recorder returns the backend's telemetry sink; never nil (the
	// no-op recorder when telemetry is disabled).
	Recorder() obs.Recorder
	// Err returns the first failure the backend hit (transport abort,
	// EOF mid-round); nil while healthy. Openings performed after a
	// failure return zero values.
	Err() error
	// Close releases backend resources (party goroutines, sockets).
	Close() error

	// Input has party owner secret-share the signed value v.
	Input(owner int, v int64) Val
	// InputElem has party owner secret-share a raw field element.
	InputElem(owner int, e field.Elem) Val
	// InputVec has party owner secret-share the signed vector vs.
	InputVec(owner int, vs []int64) Vec
	// Zero returns a trivial sharing of 0.
	Zero() Val
	// Add returns a sharing of a + b; local.
	Add(a, b Val) Val
	// Sub returns a sharing of a − b; local.
	Sub(a, b Val) Val
	// AddConst returns a sharing of a + c; local.
	AddConst(a Val, c int64) Val
	// MulConst returns a sharing of c·a; local.
	MulConst(a Val, c int64) Val
	// Mul returns a sharing of a·b via degree-reduction resharing.
	Mul(a, b Val) Val
	// InnerProduct returns a sharing of Σ_k a[k]·b[k] with the fused
	// gate (one resharing total).
	InnerProduct(as, bs []Val) Val
	// AdditiveShares converts the Shamir sharing to an additive sharing
	// locally: party i's addend is weights[i]·share_i.
	AdditiveShares(s Val, weights []field.Elem) []field.Elem
	// Open reveals the signed secret to all parties.
	Open(s Val) int64

	// At extracts element k of a vector as a scalar; local.
	At(v Vec, k int) Val
	// AddVec returns the element-wise sum a + b; local.
	AddVec(a, b Vec) Vec
	// Dot returns a sharing of the inner product ⟨a, b⟩ (fused gate).
	Dot(a, b Vec) Val
	// DotBatch evaluates many fused inner products belonging to the
	// same communication round.
	DotBatch(pairs []VecPair, workers int) []Val
	// MulBatch evaluates one whole level of independent multiplicative
	// gates (scalar products, fused inner products, vector dots) in a
	// single degree-reduction round: all sub-shares travel in one frame
	// per ordered party pair. Results are returned in item order.
	MulBatch(items []MulItem) []Val
	// OpenBatch reveals many shared scalars in one batched opening
	// round (one frame per ordered party pair carrying every share).
	OpenBatch(vals []Val) []int64
	// FromScalars packs scalar shares into a vector; local.
	FromScalars(xs []Val) Vec
	// OpenVec reveals every element as one batched opening.
	OpenVec(v Vec) []int64
}

// Eval adapts the monolithic engine to the Evaluator interface. The
// engine's concrete API stays available for callers that want it; the
// adapter only translates handle types.
func Eval(e *Engine) Evaluator { return monoEval{e} }

type monoEval struct{ e *Engine }

func (m monoEval) Parties() int           { return m.e.Parties() }
func (m monoEval) Threshold() int         { return m.e.Threshold() }
func (m monoEval) Latency() time.Duration { return m.e.Latency() }
func (m monoEval) Stats() Stats           { return m.e.Stats() }
func (m monoEval) ResetStats()            { m.e.ResetStats() }
func (m monoEval) AdvanceRound()          { m.e.AdvanceRound() }
func (m monoEval) Recorder() obs.Recorder { return m.e.Recorder() }
func (m monoEval) Err() error             { return nil }
func (m monoEval) Close() error           { return nil }

func (m monoEval) Input(owner int, v int64) Val          { return m.e.Input(owner, v) }
func (m monoEval) InputElem(owner int, e field.Elem) Val { return m.e.InputElem(owner, e) }
func (m monoEval) InputVec(owner int, vs []int64) Vec    { return m.e.InputVec(owner, vs) }
func (m monoEval) Zero() Val                             { return m.e.Zero() }
func (m monoEval) Add(a, b Val) Val                      { return m.e.Add(a.(*Shared), b.(*Shared)) }
func (m monoEval) Sub(a, b Val) Val                      { return m.e.Sub(a.(*Shared), b.(*Shared)) }
func (m monoEval) AddConst(a Val, c int64) Val           { return m.e.AddConst(a.(*Shared), c) }
func (m monoEval) MulConst(a Val, c int64) Val           { return m.e.MulConst(a.(*Shared), c) }
func (m monoEval) Mul(a, b Val) Val                      { return m.e.Mul(a.(*Shared), b.(*Shared)) }
func (m monoEval) Open(s Val) int64                      { return m.e.Open(s.(*Shared)) }

func (m monoEval) InnerProduct(as, bs []Val) Val {
	ca := make([]*Shared, len(as))
	cb := make([]*Shared, len(bs))
	for i := range as {
		ca[i] = as[i].(*Shared)
		cb[i] = bs[i].(*Shared)
	}
	return m.e.InnerProduct(ca, cb)
}

func (m monoEval) AdditiveShares(s Val, weights []field.Elem) []field.Elem {
	return s.(*Shared).AdditiveShares(weights)
}

func (m monoEval) At(v Vec, k int) Val   { return v.(*SharedVec).At(k) }
func (m monoEval) AddVec(a, b Vec) Vec   { return m.e.AddVec(a.(*SharedVec), b.(*SharedVec)) }
func (m monoEval) Dot(a, b Vec) Val      { return m.e.Dot(a.(*SharedVec), b.(*SharedVec)) }
func (m monoEval) OpenVec(v Vec) []int64 { return m.e.OpenVec(v.(*SharedVec)) }

func (m monoEval) DotBatch(pairs []VecPair, workers int) []Val {
	dp := make([]DotPair, len(pairs))
	for i, p := range pairs {
		dp[i] = DotPair{A: p.A.(*SharedVec), B: p.B.(*SharedVec)}
	}
	shared := m.e.DotBatch(dp, workers)
	out := make([]Val, len(shared))
	for i, s := range shared {
		out[i] = s
	}
	return out
}

// MulBatch computes every item's local degree-2t value and restores
// degree t with a single batched resharing round. Validation and stats
// run serially up front (the counts depend only on batch shape); the
// share arithmetic then splits across the worker pool with slab-pooled
// accumulators, each item writing its own slot so the merge order is
// the item order regardless of scheduling.
func (m monoEval) MulBatch(items []MulItem) []Val {
	e := m.e
	out := make([]Val, len(items))
	if len(items) == 0 {
		return out
	}
	for _, it := range items {
		switch it.Kind {
		case MulScalar:
			e.checkSame(it.A.(*Shared), it.B.(*Shared))
			e.stats.FieldOps += int64(e.p)
		case MulInner:
			for k := range it.As {
				e.checkSame(it.As[k].(*Shared), it.Bs[k].(*Shared))
			}
			e.stats.FieldOps += int64(e.p * len(it.As))
		case MulDot:
			a, b := it.VA.(*SharedVec), it.VB.(*SharedVec)
			e.checkSameVec(a, b)
			e.stats.FieldOps += int64(e.p * a.Len())
		}
	}
	highs := make([][]field.Elem, len(items))
	for idx := range highs {
		highs[idx] = e.scratch.get()
	}
	parallelChunks(len(items), clampWorkers(e.workers, len(items)), func(_, start, end int) {
		for idx := start; idx < end; idx++ {
			it := items[idx]
			acc := highs[idx] // zeroed by the slab
			switch it.Kind {
			case MulScalar:
				field.MulVec(acc, it.A.(*Shared).shares, it.B.(*Shared).shares)
			case MulInner:
				for k := range it.As {
					field.MulAccVec(acc, it.As[k].(*Shared).shares, it.Bs[k].(*Shared).shares)
				}
			case MulDot:
				a, b := it.VA.(*SharedVec), it.VB.(*SharedVec)
				for i := 0; i < e.p; i++ {
					acc[i] = field.DotAcc(0, a.shares[i], b.shares[i])
				}
			}
		}
	})
	for i, s := range e.reshareBatch(highs) {
		out[i] = s
	}
	for _, h := range highs {
		e.scratch.put(h)
	}
	return out
}

// OpenBatch reveals every value in one batched opening round.
func (m monoEval) OpenBatch(vals []Val) []int64 {
	e := m.e
	out := make([]int64, len(vals))
	if len(vals) == 0 {
		return out
	}
	for k, v := range vals {
		s := v.(*Shared)
		if s.eng != e {
			panic(invariant.Violation("bgw: foreign share"))
		}
		out[k] = field.ToInt64(shamir.ReconstructWithWeights(e.weights, s.shares))
	}
	e.stats.Frames += int64(e.p * (e.p - 1))
	e.stats.Messages += int64(len(vals) * e.p * (e.p - 1))
	e.stats.Bytes += 8 * int64(len(vals)*e.p*(e.p-1))
	e.stats.FieldOps += int64(e.p * len(vals))
	return out
}

func (m monoEval) FromScalars(xs []Val) Vec {
	cx := make([]*Shared, len(xs))
	for i := range xs {
		cx[i] = xs[i].(*Shared)
	}
	return m.e.FromScalars(cx)
}
