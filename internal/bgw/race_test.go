package bgw

import (
	"runtime"
	"testing"
	"time"

	"sqm/internal/transport"
)

// bigBatchOpens runs one large mixed MulBatch plus a DotBatch on the
// monolithic engine with the given pool bound and opens everything —
// wide enough that every worker owns several gates, so the chunked
// reshare path is actually exercised (and raced) when workers > 1.
func bigBatchOpens(t *testing.T, workers int) []int64 {
	t.Helper()
	eng, err := NewEngine(Config{Parties: 4, Seed: 99, Workers: workers})
	if err != nil {
		t.Fatalf("NewEngine(workers=%d): %v", workers, err)
	}
	ev := Eval(eng)

	var scalars []Val
	for i := 0; i < 8; i++ {
		scalars = append(scalars, ev.Input(i%4, int64(i*i)-31))
	}
	u := ev.InputVec(0, []int64{3, -1, 4, 1, -5, 9, 2, -6})
	v := ev.InputVec(1, []int64{-2, 7, 1, -8, 2, 8, -1, 8})
	ev.AdvanceRound()

	var items []MulItem
	for i := 0; i < 64; i++ {
		switch i % 3 {
		case 0:
			items = append(items, MulItem{Kind: MulScalar, A: scalars[i%8], B: scalars[(i+3)%8]})
		case 1:
			items = append(items, MulItem{Kind: MulInner,
				As: []Val{scalars[i%8], scalars[(i+1)%8], scalars[(i+2)%8]},
				Bs: []Val{scalars[(i+5)%8], scalars[(i+6)%8], scalars[(i+7)%8]}})
		case 2:
			items = append(items, MulItem{Kind: MulDot, VA: u, VB: v})
		}
	}
	outs := ev.MulBatch(items)
	ev.AdvanceRound()
	dots := ev.DotBatch([]VecPair{{A: u, B: v}, {A: u, B: u}, {A: v, B: v}}, workers)
	ev.AdvanceRound()

	res := ev.OpenBatch(outs)
	for _, d := range dots {
		res = append(res, ev.Open(d))
	}
	return res
}

// TestMonoWorkerPoolDifferentialRace: the monolithic engine's batched
// rounds must open bit-identical values for every pool size. Workers=8
// forces the chunked parallel path even on a single-CPU machine, so
// -race sweeps the goroutine interleavings while the differential pins
// the outputs to the serial baseline.
func TestMonoWorkerPoolDifferentialRace(t *testing.T) {
	want := bigBatchOpens(t, 1)
	for _, w := range []int{2, 8} {
		got := bigBatchOpens(t, w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d opened %d values, serial %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d output %d = %d, serial %d", w, i, got[i], want[i])
			}
		}
	}
}

// TestActorWorkerPoolChaosRace runs the full evaluator program on the
// actor engine — per-party worker pools, pooled transport frames — over
// a FaultMesh delaying every link, and demands the monolithic engine's
// exact openings. The delay forwarders make frame lifetimes genuinely
// concurrent with the party goroutines, so -race catches any pooled
// buffer recycled while still in flight.
func TestActorWorkerPoolChaosRace(t *testing.T) {
	mono, err := NewEngine(Config{Parties: 4, Seed: 123})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	want := evalProgram(t, Eval(mono))

	mesh := transport.NewFaultMesh(transport.NewChanMesh(4), transport.FaultProfile{
		Seed: 5,
		All:  transport.LinkFault{Delay: 50 * time.Microsecond},
	})
	eng, err := NewActorEngine(Config{Parties: 4, Seed: 123, Workers: 8}, mesh)
	if err != nil {
		t.Fatalf("NewActorEngine: %v", err)
	}
	defer eng.Close()
	got := evalProgram(t, eng)
	if err := eng.Err(); err != nil {
		t.Fatalf("engine failed: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("actor opened %d values, mono %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("actor output %d = %d, mono %d", i, got[i], want[i])
		}
	}
	if inj := mesh.Injected(); inj.Delays == 0 {
		t.Errorf("chaos profile injected no delays: %+v", inj)
	}
}

// TestActorCloseNoGoroutineLeak: Close must join the party actors, the
// chaos mesh's delay forwarders, and any worker-pool goroutines —
// repeated sessions must not accrete anything.
func TestActorCloseNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 3; iter++ {
		mesh := transport.NewFaultMesh(transport.NewChanMesh(4), transport.FaultProfile{
			Seed: uint64(iter),
			All:  transport.LinkFault{Delay: 20 * time.Microsecond},
		})
		eng, err := NewActorEngine(Config{Parties: 4, Seed: uint64(iter), Workers: 4}, mesh)
		if err != nil {
			t.Fatalf("NewActorEngine: %v", err)
		}
		evalProgram(t, eng)
		if err := eng.Err(); err != nil {
			t.Fatalf("engine failed: %v", err)
		}
		if err := eng.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after Close: %d live, %d at baseline\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
