package bgw

import (
	"fmt"
	"sync"
	"time"

	"sqm/internal/field"
	"sqm/internal/invariant"
	"sqm/internal/obs"
	"sqm/internal/randx"
	"sqm/internal/shamir"
	"sqm/internal/transport"
)

// ActorEngine runs the BGW protocol as P message-driven party actors
// over a pluggable transport. Unlike the monolithic Engine — which
// holds all parties' shares in one slice — each actor goroutine owns
// only *its* shares and private randomness; resharing and opening
// traffic crosses the transport as framed messages, so the
// message/byte statistics are measured from real traffic rather than
// hand-counted.
//
// The facade keeps the monolithic engine's API shape (Input, Dot,
// DotBatch, InnerProduct, Open, stats metering) and is output-identical
// to it: BGW computes exactly, so for the same inputs the opened values
// are bit-equal regardless of backend or share randomness.
//
// The facade is driven by a single caller goroutine. Commands are
// broadcast to every party in issue order; parties execute them in that
// order, which keeps the per-party RNG streams and the pairwise message
// sequences deterministic. Only operations that reveal data (Open,
// OpenVec, AdditiveShares, Stats) synchronize the caller with the
// actors; everything else pipelines.
type ActorEngine struct {
	p, t    int
	latency time.Duration
	mesh    transport.Mesh
	parties []*actorParty
	wg      sync.WaitGroup

	nextSc, nextVec int
	rounds          int64
	err             error
	closed          bool

	baseRounds, baseFrames, baseMsgs, baseBytes, baseOps int64

	rec         obs.Recorder // nil when telemetry is disabled
	roundHist   *obs.Histogram
	opsGauge    *obs.Gauge
	partyGauges []*obs.Gauge // per-party cumulative field ops
	lastRound   time.Time
	lastFrames  int64 // mesh frame counter at the previous round boundary
	lastMsgs    int64 // mesh message counter at the previous round boundary
}

// ActorShared is an opaque handle to one secret-shared scalar whose
// shares live inside the party actors.
type ActorShared struct {
	eng *ActorEngine
	ref int
}

// ActorVec is an opaque handle to a secret-shared vector.
type ActorVec struct {
	eng *ActorEngine
	ref int
	n   int
}

// Len returns the number of shared elements.
func (v *ActorVec) Len() int { return v.n }

// At extracts element k as a scalar handle (local to every party).
func (v *ActorVec) At(k int) Val { return v.eng.At(v, k) }

// NewActorEngine validates the configuration and starts one party
// actor per mesh endpoint. The engine owns the mesh: Close tears both
// down. Seed derivation matches NewEngine, so party i's private stream
// is identical to the monolithic engine's party i under the same seed.
func NewActorEngine(cfg Config, mesh transport.Mesh) (*ActorEngine, error) {
	if cfg.Parties < 3 {
		return nil, fmt.Errorf("bgw: need at least 3 parties, got %d", cfg.Parties)
	}
	t := cfg.Threshold
	if t == 0 {
		t = (cfg.Parties - 1) / 2
	}
	if t < 1 || cfg.Parties < 2*t+1 {
		return nil, fmt.Errorf("bgw: threshold %d invalid for %d parties (need P >= 2t+1, t >= 1)", t, cfg.Parties)
	}
	if mesh.Parties() != cfg.Parties {
		return nil, fmt.Errorf("bgw: mesh has %d endpoints for %d parties", mesh.Parties(), cfg.Parties)
	}
	lat := cfg.Latency
	if lat == 0 {
		lat = DefaultLatency
	}
	if cfg.RecvTimeout > 0 {
		mesh.SetRecvTimeout(cfg.RecvTimeout)
	}
	e := &ActorEngine{p: cfg.Parties, t: t, latency: lat, mesh: mesh}
	if rec := cfg.Recorder; rec != nil && rec.Metrics() != nil {
		e.rec = rec
		e.roundHist = rec.Metrics().Histogram("bgw.round.seconds")
		e.opsGauge = rec.Metrics().Gauge("bgw.fieldops")
		e.partyGauges = make([]*obs.Gauge, cfg.Parties)
		for i := range e.partyGauges {
			e.partyGauges[i] = rec.Metrics().Gauge(fmt.Sprintf("bgw.party.%d.fieldops", i))
		}
		e.lastRound = time.Now()
	}
	weights := shamir.LagrangeAtZero(shamir.PartyPoints(cfg.Parties))
	root := randx.New(cfg.Seed)
	for i := 0; i < cfg.Parties; i++ {
		pa := &actorParty{
			id: i, p: cfg.Parties, t: t,
			rng:     root.Fork(),
			weights: weights,
			conn:    mesh.Conn(i),
			cmds:    make(chan *actorCmd, 256),
			workers: cfg.Workers,
		}
		e.parties = append(e.parties, pa)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			pa.run()
		}()
	}
	return e, nil
}

// Parties returns P.
func (e *ActorEngine) Parties() int { return e.p }

// Threshold returns t.
func (e *ActorEngine) Threshold() int { return e.t }

// Latency returns the per-round latency.
func (e *ActorEngine) Latency() time.Duration { return e.latency }

// Recorder returns the engine's telemetry sink (never nil).
func (e *ActorEngine) Recorder() obs.Recorder { return obs.Or(e.rec) }

// AdvanceRound accounts one communication round; with telemetry enabled
// the wall-clock since the previous boundary becomes one bgw.round span
// carrying the mesh's frame/message deltas for the round.
func (e *ActorEngine) AdvanceRound() {
	e.rounds++
	if e.rec != nil {
		now := time.Now()
		secs := now.Sub(e.lastRound).Seconds()
		e.lastRound = now
		e.roundHist.Observe(secs)
		frames, msgs, _ := e.mesh.Counters()
		e.rec.Event(obs.LevelDebug, "bgw.round",
			obs.Int64("round", e.rounds), obs.Float64("seconds", secs),
			obs.Int64("frames", frames-e.lastFrames), obs.Int64("messages", msgs-e.lastMsgs))
		e.lastFrames, e.lastMsgs = frames, msgs
	}
}

// SetWorkers implements WorkerTunable: the bound is broadcast to every
// party actor (applied in command order, like any other op) and governs
// the pool that parallelizes each party's batched local arithmetic.
// Party gate computations carry no randomness, so shares — and
// therefore opened outputs — are identical for every setting.
func (e *ActorEngine) SetWorkers(n int) int {
	e.dispatch(&actorCmd{op: opSetWorkers, k: n})
	return effectiveWorkers(n)
}

// Err returns the first failure any party actor hit (transport abort,
// EOF mid-round, malformed frame); nil while healthy.
func (e *ActorEngine) Err() error { return e.err }

// Stats synchronizes with the actors and returns counters: rounds from
// the protocol structure, frames/messages/bytes measured by the
// transport, field operations summed over the parties' local work.
func (e *ActorEngine) Stats() Stats {
	ops := e.collectOps()
	frames, msgs, bytes := e.mesh.Counters()
	return Stats{
		Rounds:   e.rounds - e.baseRounds,
		Frames:   frames - e.baseFrames,
		Messages: msgs - e.baseMsgs,
		Bytes:    bytes - e.baseBytes,
		FieldOps: ops - e.baseOps,
	}
}

// ResetStats zeroes the counters (between experiment phases).
func (e *ActorEngine) ResetStats() {
	e.baseOps = e.collectOps()
	e.baseFrames, e.baseMsgs, e.baseBytes = e.mesh.Counters()
	e.baseRounds = e.rounds
}

// Close shuts the party actors down and tears down the mesh. Parties
// blocked mid-round are unblocked by the mesh teardown.
func (e *ActorEngine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	e.mesh.Close()
	for _, pa := range e.parties {
		close(pa.cmds)
	}
	e.wg.Wait()
	return nil
}

// dispatch broadcasts one command to every party; reports false when
// the engine is failed or closed (the command must then be skipped).
func (e *ActorEngine) dispatch(c *actorCmd) bool {
	if e.err != nil || e.closed {
		return false
	}
	for _, pa := range e.parties {
		pa.cmds <- c
	}
	return true
}

// await collects exactly one reply per party and latches the first
// error into the engine's sticky failure state.
func (e *ActorEngine) await(c *actorCmd) []actorReply {
	replies := make([]actorReply, e.p)
	for i := 0; i < e.p; i++ {
		r := <-c.reply
		if r.err != nil && e.err == nil {
			e.err = r.err
			if e.rec != nil {
				e.rec.Event(obs.LevelWarn, "bgw.party.failed",
					obs.Int("party", r.party), obs.String("err", r.err.Error()))
			}
		}
		replies[r.party] = r
	}
	return replies
}

func (e *ActorEngine) newSc() int {
	r := e.nextSc
	e.nextSc++
	return r
}

func (e *ActorEngine) newVec() int {
	r := e.nextVec
	e.nextVec++
	return r
}

func (e *ActorEngine) scRef(v Val) int {
	s, ok := v.(*ActorShared)
	if !ok || s.eng != e {
		panic(invariant.Violation("bgw: share from a different engine"))
	}
	return s.ref
}

func (e *ActorEngine) vecRef(v Vec) int {
	s, ok := v.(*ActorVec)
	if !ok || s.eng != e {
		panic(invariant.Violation("bgw: vector from a different engine"))
	}
	return s.ref
}

func (e *ActorEngine) checkParty(i int) {
	if i < 0 || i >= e.p {
		panic(invariant.Violation("bgw: party %d out of range [0,%d)", i, e.p))
	}
}

// collectOps runs a barrier and sums the parties' cumulative local
// field-operation counters; with telemetry enabled the per-party totals
// are published as bgw.party.<i>.fieldops gauges.
func (e *ActorEngine) collectOps() int64 {
	c := &actorCmd{op: opBarrier, reply: make(chan actorReply, e.p)}
	if !e.dispatch(c) {
		return e.baseOps
	}
	var sum int64
	for i, r := range e.await(c) {
		sum += r.ops
		if e.rec != nil {
			e.partyGauges[i].Set(float64(r.ops))
		}
	}
	if e.rec != nil {
		e.opsGauge.Set(float64(sum))
	}
	return sum
}

// ---- Evaluator operations ----

// Input has party owner secret-share the signed value v; one real
// message per receiving party crosses the transport.
func (e *ActorEngine) Input(owner int, v int64) Val {
	e.checkParty(owner)
	ref := e.newSc()
	e.dispatch(&actorCmd{op: opInput, owner: owner, c: v})
	return &ActorShared{eng: e, ref: ref}
}

// InputElem has party owner secret-share a raw field element.
func (e *ActorEngine) InputElem(owner int, el field.Elem) Val {
	e.checkParty(owner)
	ref := e.newSc()
	e.dispatch(&actorCmd{op: opInputElem, owner: owner, elem: el})
	return &ActorShared{eng: e, ref: ref}
}

// InputVec has party owner secret-share the signed vector vs; one
// batched message per receiving party.
func (e *ActorEngine) InputVec(owner int, vs []int64) Vec {
	e.checkParty(owner)
	ref := e.newVec()
	ints := append([]int64(nil), vs...)
	e.dispatch(&actorCmd{op: opInputVec, owner: owner, ints: ints})
	return &ActorVec{eng: e, ref: ref, n: len(vs)}
}

// Zero returns a trivial sharing of 0; local.
func (e *ActorEngine) Zero() Val {
	ref := e.newSc()
	e.dispatch(&actorCmd{op: opZero})
	return &ActorShared{eng: e, ref: ref}
}

// Add returns a sharing of a + b; local.
func (e *ActorEngine) Add(a, b Val) Val {
	ra, rb := e.scRef(a), e.scRef(b)
	ref := e.newSc()
	e.dispatch(&actorCmd{op: opAdd, a: ra, b: rb})
	return &ActorShared{eng: e, ref: ref}
}

// Sub returns a sharing of a − b; local.
func (e *ActorEngine) Sub(a, b Val) Val {
	ra, rb := e.scRef(a), e.scRef(b)
	ref := e.newSc()
	e.dispatch(&actorCmd{op: opSub, a: ra, b: rb})
	return &ActorShared{eng: e, ref: ref}
}

// AddConst returns a sharing of a + c; local.
func (e *ActorEngine) AddConst(a Val, c int64) Val {
	ra := e.scRef(a)
	ref := e.newSc()
	e.dispatch(&actorCmd{op: opAddConst, a: ra, c: c})
	return &ActorShared{eng: e, ref: ref}
}

// MulConst returns a sharing of c·a; local.
func (e *ActorEngine) MulConst(a Val, c int64) Val {
	ra := e.scRef(a)
	ref := e.newSc()
	e.dispatch(&actorCmd{op: opMulConst, a: ra, c: c})
	return &ActorShared{eng: e, ref: ref}
}

// Mul returns a sharing of a·b: every party multiplies its shares
// locally and the actors run one degree-reduction resharing round over
// the transport.
func (e *ActorEngine) Mul(a, b Val) Val {
	ra, rb := e.scRef(a), e.scRef(b)
	ref := e.newSc()
	e.dispatch(&actorCmd{op: opMul, a: ra, b: rb})
	return &ActorShared{eng: e, ref: ref}
}

// InnerProduct returns a sharing of Σ_k a[k]·b[k] with the fused gate:
// local sums of share products, then a single resharing.
func (e *ActorEngine) InnerProduct(as, bs []Val) Val {
	if len(as) != len(bs) {
		panic(invariant.Violation("bgw: InnerProduct length mismatch"))
	}
	refs := make([]int, len(as))
	refs2 := make([]int, len(bs))
	for i := range as {
		refs[i] = e.scRef(as[i])
		refs2[i] = e.scRef(bs[i])
	}
	ref := e.newSc()
	e.dispatch(&actorCmd{op: opInnerProduct, refs: refs, refs2: refs2})
	return &ActorShared{eng: e, ref: ref}
}

// AdditiveShares converts the Shamir sharing to an additive sharing:
// each party reports weights[i]·share_i (a local computation; the
// collection is facade-side synchronization, not protocol traffic).
func (e *ActorEngine) AdditiveShares(s Val, weights []field.Elem) []field.Elem {
	if len(weights) != e.p {
		panic(invariant.Violation("bgw: AdditiveShares weight count mismatch"))
	}
	ref := e.scRef(s)
	w := append([]field.Elem(nil), weights...)
	c := &actorCmd{op: opAdditive, a: ref, weights: w, reply: make(chan actorReply, e.p)}
	out := make([]field.Elem, e.p)
	if !e.dispatch(c) {
		return out
	}
	for i, r := range e.await(c) {
		out[i] = r.elem
	}
	if e.err != nil {
		return make([]field.Elem, e.p)
	}
	return out
}

// Open reveals the signed secret: the parties exchange shares pairwise
// over the transport, each reconstructs, and party 0 reports the value
// to the caller. Returns 0 after a transport failure (see Err).
func (e *ActorEngine) Open(s Val) int64 {
	ref := e.scRef(s)
	c := &actorCmd{op: opOpen, a: ref, reply: make(chan actorReply, e.p)}
	if !e.dispatch(c) {
		return 0
	}
	replies := e.await(c)
	if e.err != nil {
		return 0
	}
	return replies[0].val
}

// At extracts element k of a vector as a scalar; local.
func (e *ActorEngine) At(v Vec, k int) Val {
	rv := e.vecRef(v)
	if k < 0 || k >= v.Len() {
		panic(invariant.Violation("bgw: vector index out of range"))
	}
	ref := e.newSc()
	e.dispatch(&actorCmd{op: opAt, a: rv, k: k})
	return &ActorShared{eng: e, ref: ref}
}

// AddVec returns the element-wise sum a + b; local.
func (e *ActorEngine) AddVec(a, b Vec) Vec {
	ra, rb := e.vecRef(a), e.vecRef(b)
	if a.Len() != b.Len() {
		panic(invariant.Violation("bgw: vector length mismatch"))
	}
	ref := e.newVec()
	e.dispatch(&actorCmd{op: opAddVec, a: ra, b: rb})
	return &ActorVec{eng: e, ref: ref, n: a.Len()}
}

// Dot returns a sharing of ⟨a, b⟩ with the fused gate (one resharing).
func (e *ActorEngine) Dot(a, b Vec) Val {
	ra, rb := e.vecRef(a), e.vecRef(b)
	if a.Len() != b.Len() {
		panic(invariant.Violation("bgw: vector length mismatch"))
	}
	ref := e.newSc()
	e.dispatch(&actorCmd{op: opDot, a: ra, b: rb})
	return &ActorShared{eng: e, ref: ref}
}

// DotBatch evaluates many fused inner products in one batched resharing
// round: every party sends a single message per peer carrying the
// sub-shares of all pairs. workers is ignored — the parties are already
// concurrent actors.
func (e *ActorEngine) DotBatch(pairs []VecPair, workers int) []Val {
	_ = workers
	out := make([]Val, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	refs := make([]int, len(pairs))
	refs2 := make([]int, len(pairs))
	for i, pr := range pairs {
		refs[i] = e.vecRef(pr.A)
		refs2[i] = e.vecRef(pr.B)
		if pr.A.Len() != pr.B.Len() {
			panic(invariant.Violation("bgw: vector length mismatch"))
		}
	}
	for i := range out {
		out[i] = &ActorShared{eng: e, ref: e.newSc()}
	}
	e.dispatch(&actorCmd{op: opDotBatch, refs: refs, refs2: refs2})
	return out
}

// MulBatch evaluates one level of independent multiplicative gates in a
// single batched degree-reduction round: every party computes all local
// degree-2t values, then one reshare exchange carries every sub-share
// in one frame per ordered party pair.
func (e *ActorEngine) MulBatch(items []MulItem) []Val {
	out := make([]Val, len(items))
	if len(items) == 0 {
		return out
	}
	muls := make([]mulDesc, len(items))
	for i, it := range items {
		switch it.Kind {
		case MulScalar:
			muls[i] = mulDesc{kind: MulScalar, a: e.scRef(it.A), b: e.scRef(it.B)}
		case MulInner:
			if len(it.As) != len(it.Bs) {
				panic(invariant.Violation("bgw: MulBatch inner-product length mismatch"))
			}
			refs := make([]int, len(it.As))
			refs2 := make([]int, len(it.Bs))
			for k := range it.As {
				refs[k] = e.scRef(it.As[k])
				refs2[k] = e.scRef(it.Bs[k])
			}
			muls[i] = mulDesc{kind: MulInner, refs: refs, refs2: refs2}
		case MulDot:
			if it.VA.Len() != it.VB.Len() {
				panic(invariant.Violation("bgw: vector length mismatch"))
			}
			muls[i] = mulDesc{kind: MulDot, a: e.vecRef(it.VA), b: e.vecRef(it.VB)}
		default:
			panic(invariant.Violation("bgw: unknown MulKind %d", it.Kind))
		}
	}
	for i := range out {
		out[i] = &ActorShared{eng: e, ref: e.newSc()}
	}
	e.dispatch(&actorCmd{op: opMulBatch, muls: muls})
	return out
}

// OpenBatch reveals many shared scalars in one batched opening round;
// party 0 reports the values to the caller.
func (e *ActorEngine) OpenBatch(vals []Val) []int64 {
	out := make([]int64, len(vals))
	if len(vals) == 0 {
		return out
	}
	refs := make([]int, len(vals))
	for i, v := range vals {
		refs[i] = e.scRef(v)
	}
	c := &actorCmd{op: opOpenBatch, refs: refs, reply: make(chan actorReply, e.p)}
	if !e.dispatch(c) {
		return out
	}
	replies := e.await(c)
	if e.err != nil || replies[0].vals == nil {
		return make([]int64, len(vals))
	}
	return replies[0].vals
}

// FromScalars packs scalar shares into a vector; local.
func (e *ActorEngine) FromScalars(xs []Val) Vec {
	refs := make([]int, len(xs))
	for i := range xs {
		refs[i] = e.scRef(xs[i])
	}
	ref := e.newVec()
	e.dispatch(&actorCmd{op: opFromScalars, refs: refs})
	return &ActorVec{eng: e, ref: ref, n: len(xs)}
}

// OpenVec reveals every element as one batched opening (one message per
// ordered party pair carrying all elements).
func (e *ActorEngine) OpenVec(v Vec) []int64 {
	ref := e.vecRef(v)
	c := &actorCmd{op: opOpenVec, a: ref, reply: make(chan actorReply, e.p)}
	if !e.dispatch(c) {
		return make([]int64, v.Len())
	}
	replies := e.await(c)
	if e.err != nil || replies[0].vals == nil {
		return make([]int64, v.Len())
	}
	return replies[0].vals
}
