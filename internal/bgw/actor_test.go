package bgw

import (
	"testing"

	"sqm/internal/field"
	"sqm/internal/shamir"
	"sqm/internal/transport"
)

// evalProgram runs one fixed circuit exercising every Evaluator
// operation and returns all opened values in order. Openings only
// depend on the secret inputs — BGW computes exactly — so every
// backend must produce the identical trace.
func evalProgram(t *testing.T, ev Evaluator) []int64 {
	t.Helper()
	var out []int64

	a := ev.Input(0, 37)
	b := ev.Input(1, -12)
	c := ev.Input(2, 1000003)
	ev.AdvanceRound()

	out = append(out, ev.Open(ev.Add(a, b)))
	out = append(out, ev.Open(ev.Sub(a, c)))
	out = append(out, ev.Open(ev.AddConst(b, 99)))
	out = append(out, ev.Open(ev.MulConst(c, -3)))
	out = append(out, ev.Open(ev.Mul(a, b)))
	ev.AdvanceRound()
	out = append(out, ev.Open(ev.Zero()))
	out = append(out, ev.Open(ev.InnerProduct([]Val{a, b, c}, []Val{c, b, a})))

	u := ev.InputVec(0, []int64{1, -2, 3, -4})
	v := ev.InputVec(1, []int64{5, 6, -7, 8})
	ev.AdvanceRound()
	out = append(out, ev.Open(ev.Dot(u, v)))
	out = append(out, ev.Open(ev.At(ev.AddVec(u, v), 2)))
	out = append(out, ev.OpenVec(u)...)

	dots := ev.DotBatch([]VecPair{{A: u, B: v}, {A: u, B: u}, {A: v, B: v}}, 2)
	ev.AdvanceRound()
	for _, d := range dots {
		out = append(out, ev.Open(d))
	}
	out = append(out, ev.OpenVec(ev.FromScalars([]Val{a, b}))...)
	return out
}

func newActorChan(t *testing.T, cfg Config) *ActorEngine {
	t.Helper()
	eng, err := NewActorEngine(cfg, transport.NewChanMesh(cfg.Parties))
	if err != nil {
		t.Fatalf("NewActorEngine: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func newActorTCP(t *testing.T, cfg Config) *ActorEngine {
	t.Helper()
	mesh, err := transport.NewTCPMesh(cfg.Parties)
	if err != nil {
		t.Fatalf("NewTCPMesh: %v", err)
	}
	eng, err := NewActorEngine(cfg, mesh)
	if err != nil {
		t.Fatalf("NewActorEngine: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestActorMatchesMonolithic checks that the party-actor engine opens
// bit-identical values to the monolithic engine over both transports.
func TestActorMatchesMonolithic(t *testing.T) {
	for _, parties := range []int{3, 5} {
		cfg := Config{Parties: parties, Seed: 42}
		mono, err := NewEngine(cfg)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		want := evalProgram(t, Eval(mono))

		chanEng := newActorChan(t, cfg)
		if got := evalProgram(t, chanEng); !equalInt64(got, want) {
			t.Errorf("P=%d chan mesh: got %v, want %v", parties, got, want)
		}
		if err := chanEng.Err(); err != nil {
			t.Errorf("P=%d chan mesh: unexpected engine error: %v", parties, err)
		}

		tcpEng := newActorTCP(t, cfg)
		if got := evalProgram(t, tcpEng); !equalInt64(got, want) {
			t.Errorf("P=%d tcp mesh: got %v, want %v", parties, got, want)
		}
		if err := tcpEng.Err(); err != nil {
			t.Errorf("P=%d tcp mesh: unexpected engine error: %v", parties, err)
		}
	}
}

// TestActorSeedIndependence: opened values must not depend on the share
// randomness, only on the inputs.
func TestActorSeedIndependence(t *testing.T) {
	cfg1 := Config{Parties: 3, Seed: 1}
	cfg2 := Config{Parties: 3, Seed: 0xdeadbeef}
	got1 := evalProgram(t, newActorChan(t, cfg1))
	got2 := evalProgram(t, newActorChan(t, cfg2))
	if !equalInt64(got1, got2) {
		t.Errorf("opened values depend on share randomness: %v vs %v", got1, got2)
	}
}

// TestActorFieldOpsMatchMonolithic: the per-party field-op counters are
// sliced from the monolithic cost model, so their sum must agree.
func TestActorFieldOpsMatchMonolithic(t *testing.T) {
	cfg := Config{Parties: 5, Seed: 7}
	mono, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	evalProgram(t, Eval(mono))
	eng := newActorChan(t, cfg)
	evalProgram(t, eng)
	if got, want := eng.Stats().FieldOps, mono.Stats().FieldOps; got != want {
		t.Errorf("FieldOps = %d, want %d (monolithic model)", got, want)
	}
	if got, want := eng.Stats().Rounds, mono.Stats().Rounds; got != want {
		t.Errorf("Rounds = %d, want %d", got, want)
	}
}

// TestActorStatsMeasured: the chan mesh counts real traffic; for the
// simple ops the measured counts coincide with the monolithic model
// (P−1 messages per input, P(P−1) per resharing and opening).
func TestActorStatsMeasured(t *testing.T) {
	cfg := Config{Parties: 3, Seed: 9}
	eng := newActorChan(t, cfg)
	a := eng.Input(0, 5)
	b := eng.Input(1, 7)
	if got := eng.Open(eng.Mul(a, b)); got != 35 {
		t.Fatalf("Open(Mul) = %d, want 35", got)
	}
	st := eng.Stats()
	p := int64(cfg.Parties)
	wantMsgs := 2*(p-1) + p*(p-1) + p*(p-1) // 2 inputs + 1 resharing + 1 opening
	if st.Messages != wantMsgs {
		t.Errorf("Messages = %d, want %d", st.Messages, wantMsgs)
	}
	if st.Bytes != 8*wantMsgs {
		t.Errorf("Bytes = %d, want %d", st.Bytes, 8*wantMsgs)
	}
	eng.ResetStats()
	if st := eng.Stats(); st.Messages != 0 || st.Bytes != 0 || st.FieldOps != 0 || st.Rounds != 0 {
		t.Errorf("stats not reset: %+v", st)
	}
}

// TestActorAbort kills one party's endpoint mid-protocol: the engine
// must fail fast with a sticky error instead of hanging, and later
// openings must return zero values.
func TestActorAbort(t *testing.T) {
	cfg := Config{Parties: 3, Seed: 3}
	mesh := transport.NewChanMesh(cfg.Parties)
	eng, err := NewActorEngine(cfg, mesh)
	if err != nil {
		t.Fatalf("NewActorEngine: %v", err)
	}
	defer eng.Close()

	a := eng.Input(0, 11)
	b := eng.Input(1, 13)
	if got := eng.Open(eng.Mul(a, b)); got != 143 {
		t.Fatalf("pre-abort Open = %d, want 143", got)
	}

	mesh.Conn(2).Close() // party 2 dies

	c := eng.Mul(a, b) // resharing now fails for the survivors
	if got := eng.Open(c); got != 0 {
		t.Errorf("post-abort Open = %d, want 0", got)
	}
	if eng.Err() == nil {
		t.Error("Err() = nil after abort, want transport failure")
	}
	// Every later operation is a no-op returning zero values.
	if got := eng.Open(eng.Add(a, b)); got != 0 {
		t.Errorf("Open after failure = %d, want 0", got)
	}
	if got := eng.OpenVec(eng.InputVec(0, []int64{1, 2})); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Errorf("OpenVec after failure = %v, want zeros", got)
	}
}

// TestActorAbortTCP: the same death cascades through real sockets as
// EOFs/resets.
func TestActorAbortTCP(t *testing.T) {
	cfg := Config{Parties: 3, Seed: 3}
	mesh, err := transport.NewTCPMesh(cfg.Parties)
	if err != nil {
		t.Fatalf("NewTCPMesh: %v", err)
	}
	eng, err := NewActorEngine(cfg, mesh)
	if err != nil {
		t.Fatalf("NewActorEngine: %v", err)
	}
	defer eng.Close()

	a := eng.Input(0, 11)
	b := eng.Input(1, 13)
	if got := eng.Open(eng.Mul(a, b)); got != 143 {
		t.Fatalf("pre-abort Open = %d, want 143", got)
	}
	mesh.Conn(2).Close()
	if got := eng.Open(eng.Mul(a, b)); got != 0 {
		t.Errorf("post-abort Open = %d, want 0", got)
	}
	if eng.Err() == nil {
		t.Error("Err() = nil after abort, want transport failure")
	}
}

// TestActorAdditiveShares: the additive conversion must reconstruct the
// secret, matching the monolithic semantics.
func TestActorAdditiveShares(t *testing.T) {
	cfg := Config{Parties: 3, Seed: 5}
	eng := newActorChan(t, cfg)
	s := eng.InputElem(0, field.FromInt64(12345))
	weights := lagrangeWeightsForTest(cfg.Parties)
	adds := eng.AdditiveShares(s, weights)
	var sum field.Elem
	for _, x := range adds {
		sum = field.Add(sum, x)
	}
	if got := field.ToInt64(sum); got != 12345 {
		t.Errorf("sum of additive shares = %d, want 12345", got)
	}
}

// TestActorCloseIdempotent: Close twice, then verify operations after
// close return zero values without hanging.
func TestActorCloseIdempotent(t *testing.T) {
	cfg := Config{Parties: 3, Seed: 1}
	eng, err := NewActorEngine(cfg, transport.NewChanMesh(cfg.Parties))
	if err != nil {
		t.Fatalf("NewActorEngine: %v", err)
	}
	a := eng.Input(0, 4)
	if got := eng.Open(a); got != 4 {
		t.Fatalf("Open = %d, want 4", got)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got := eng.Open(eng.Input(0, 9)); got != 0 {
		t.Errorf("Open after Close = %d, want 0", got)
	}
}

func lagrangeWeightsForTest(p int) []field.Elem {
	return shamir.LagrangeAtZero(shamir.PartyPoints(p))
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
