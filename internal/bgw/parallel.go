package bgw

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sqm/internal/field"
	"sqm/internal/randx"
	"sqm/internal/shamir"
)

// DotPair names one fused inner product of a batch.
type DotPair struct{ A, B *SharedVec }

// DotBatch evaluates many fused inner products concurrently across
// workers (0 means GOMAXPROCS). All pairs belong to the same
// communication round, exactly as in the sequential path; the opened
// values are identical to calling Dot in a loop because the resharing
// randomness never influences reconstructed secrets — only the shares.
// Statistics are metered atomically.
func (e *Engine) DotBatch(pairs []DotPair, workers int) []*Shared {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	out := make([]*Shared, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	if workers <= 1 {
		for i, p := range pairs {
			out[i] = e.DotSubset(p.A, p.B, nil)
		}
		return out
	}
	var msgs, bytes, ops atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Each worker owns private resharing randomness per party,
		// seeded from the engine's party streams; outputs do not
		// depend on which worker handles which pair.
		rngs := make([]*randx.RNG, e.p)
		for i := range rngs {
			rngs[i] = e.rngs[i].Fork()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				p := pairs[i]
				e.checkSameVec(p.A, p.B)
				n := p.A.Len()
				acc := make([]field.Elem, e.p)
				for pi := 0; pi < e.p; pi++ {
					ai, bi := p.A.shares[pi], p.B.shares[pi]
					var s field.Elem
					for k := 0; k < n; k++ {
						s = field.Add(s, field.Mul(ai[k], bi[k]))
					}
					acc[pi] = s
				}
				// Degree reduction with worker-local randomness.
				shares := make([]field.Elem, e.p)
				for pi := 0; pi < e.p; pi++ {
					sub := shamir.Share(acc[pi], e.t, e.p, rngs[pi])
					wi := e.weights[pi]
					for j := 0; j < e.p; j++ {
						shares[j] = field.Add(shares[j], field.Mul(wi, sub[j]))
					}
				}
				out[i] = &Shared{eng: e, shares: shares}
				msgs.Add(int64(e.p * (e.p - 1)))
				bytes.Add(8 * int64(e.p*(e.p-1)))
				ops.Add(int64(e.p*n + e.p*(e.p+e.t+1)))
			}
		}()
	}
	wg.Wait()
	e.stats.Messages += msgs.Load()
	e.stats.Bytes += bytes.Load()
	e.stats.FieldOps += ops.Load()
	return out
}
