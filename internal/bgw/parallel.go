package bgw

import (
	"sqm/internal/field"
	"sqm/internal/randx"
	"sqm/internal/shamir"
)

// DotPair names one fused inner product of a batch.
type DotPair struct{ A, B *SharedVec }

// DotBatch evaluates many fused inner products concurrently across
// workers (0 defers to the engine's configured bound, which itself
// defaults to runtime.NumCPU()). All pairs belong to the same
// communication round, exactly as in the sequential path; the opened
// values are identical to calling Dot in a loop because the resharing
// randomness never influences reconstructed secrets — only the shares.
// Pairs split into contiguous chunks with per-chunk forks of the party
// streams taken serially in chunk order, so shares are deterministic
// for a fixed worker count and results merge in pair order.
func (e *Engine) DotBatch(pairs []DotPair, workers int) []*Shared {
	out := make([]*Shared, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = e.workers
	}
	w := clampWorkers(workers, len(pairs))
	if w <= 1 {
		for i, p := range pairs {
			out[i] = e.DotSubset(p.A, p.B, nil)
		}
		return out
	}
	// Validation and metering run serially up front: the counts depend
	// only on the batch shape, never on share values.
	for _, p := range pairs {
		e.checkSameVec(p.A, p.B)
		e.stats.Messages += int64(e.p * (e.p - 1))
		e.stats.Bytes += 8 * int64(e.p*(e.p-1))
		e.stats.FieldOps += int64(e.p*p.A.Len() + e.p*(e.p+e.t+1))
	}
	chunkRngs := make([][]*randx.RNG, w)
	for c := 0; c < w; c++ {
		chunkRngs[c] = make([]*randx.RNG, e.p)
		for i := 0; i < e.p; i++ {
			chunkRngs[c][i] = e.rngs[i].Fork()
		}
	}
	parallelChunks(len(pairs), w, func(chunk, start, end int) {
		rngs := chunkRngs[chunk]
		acc := make([]field.Elem, e.p)
		for i := start; i < end; i++ {
			p := pairs[i]
			for pi := 0; pi < e.p; pi++ {
				acc[pi] = field.DotAcc(0, p.A.shares[pi], p.B.shares[pi])
			}
			// Degree reduction with chunk-local randomness.
			shares := make([]field.Elem, e.p)
			for pi := 0; pi < e.p; pi++ {
				sub := shamir.Share(acc[pi], e.t, e.p, rngs[pi])
				field.MulAddVec(shares, sub, e.weights[pi])
			}
			out[i] = &Shared{eng: e, shares: shares}
		}
	})
	return out
}
