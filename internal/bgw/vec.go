package bgw

import (
	"sqm/internal/field"
	"sqm/internal/invariant"
	"sqm/internal/shamir"
)

// SharedVec is a vector of secret-shared values stored party-major:
// shares[i][k] is party i's share of element k. Bulk layout keeps the
// hot loops of the Gram-matrix and gradient protocols allocation-free.
type SharedVec struct {
	eng    *Engine
	shares [][]field.Elem // [party][element]
}

// Len returns the number of shared elements.
func (v *SharedVec) Len() int { return len(v.shares[0]) }

// InputVec has party owner secret-share the signed vector vs. One
// batched frame per receiving party is metered, carrying one logical
// message per element.
func (e *Engine) InputVec(owner int, vs []int64) *SharedVec {
	e.checkParty(owner)
	out := &SharedVec{eng: e, shares: make([][]field.Elem, e.p)}
	for i := range out.shares {
		out.shares[i] = make([]field.Elem, len(vs))
	}
	rng := e.rngs[owner]
	for k, v := range vs {
		sh := shamir.Share(field.FromInt64(v), e.t, e.p, rng)
		for i := 0; i < e.p; i++ {
			out.shares[i][k] = sh[i]
		}
	}
	e.stats.Frames += int64(e.p - 1)
	e.stats.Messages += int64(len(vs) * (e.p - 1))
	e.stats.Bytes += 8 * int64(len(vs)*(e.p-1))
	e.stats.FieldOps += int64(len(vs) * e.p * (e.t + 1))
	return out
}

// At extracts element k as a scalar Shared (copies P field elements).
func (v *SharedVec) At(k int) *Shared {
	sh := make([]field.Elem, len(v.shares))
	for i := range sh {
		sh[i] = v.shares[i][k]
	}
	return &Shared{eng: v.eng, shares: sh}
}

// AddVec returns the element-wise sum a + b; purely local.
func (e *Engine) AddVec(a, b *SharedVec) *SharedVec {
	e.checkSameVec(a, b)
	out := e.zeroVec(a.Len())
	for i := 0; i < e.p; i++ {
		field.AddVec(out.shares[i], a.shares[i], b.shares[i])
	}
	return out
}

// SubVec returns a − b; purely local.
func (e *Engine) SubVec(a, b *SharedVec) *SharedVec {
	e.checkSameVec(a, b)
	out := e.zeroVec(a.Len())
	for i := 0; i < e.p; i++ {
		field.SubVec(out.shares[i], a.shares[i], b.shares[i])
	}
	return out
}

// MulConstVec returns c·a; purely local.
func (e *Engine) MulConstVec(a *SharedVec, c int64) *SharedVec {
	ce := field.FromInt64(c)
	out := e.zeroVec(a.Len())
	for i := 0; i < e.p; i++ {
		field.MulConstVec(out.shares[i], a.shares[i], ce)
	}
	e.stats.FieldOps += int64(e.p * a.Len())
	return out
}

// AddConstVec returns a + c (the same constant added to every element);
// purely local.
func (e *Engine) AddConstVec(a *SharedVec, c int64) *SharedVec {
	ce := field.FromInt64(c)
	out := e.zeroVec(a.Len())
	for i := 0; i < e.p; i++ {
		field.AddConstVec(out.shares[i], a.shares[i], ce)
	}
	return out
}

// LinComb returns Σ_j coefs[j]·vecs[j], a local operation since the
// coefficients are public (this is how the LR protocol folds the public
// weight vector into the shared features without any resharing).
func (e *Engine) LinComb(vecs []*SharedVec, coefs []int64) *SharedVec {
	if len(vecs) == 0 || len(vecs) != len(coefs) {
		panic(invariant.Violation("bgw: LinComb needs matching non-empty vecs/coefs"))
	}
	n := vecs[0].Len()
	out := e.zeroVec(n)
	for j, v := range vecs {
		e.checkVec(v)
		if v.Len() != n {
			panic(invariant.Violation("bgw: LinComb length mismatch"))
		}
		c := field.FromInt64(coefs[j])
		if c == 0 {
			continue
		}
		for i := 0; i < e.p; i++ {
			field.MulAddVec(out.shares[i], v.shares[i], c)
		}
		e.stats.FieldOps += int64(e.p * n)
	}
	return out
}

// DotSubset returns a sharing of Σ_{k∈idx} a[k]·b[k] with the fused
// inner-product gate (one resharing regardless of |idx|). A nil idx
// means all elements.
func (e *Engine) DotSubset(a, b *SharedVec, idx []int) *Shared {
	e.checkSameVec(a, b)
	acc := make([]field.Elem, e.p)
	if idx == nil {
		n := a.Len()
		for i := 0; i < e.p; i++ {
			acc[i] = field.DotAcc(0, a.shares[i], b.shares[i])
		}
		e.stats.FieldOps += int64(e.p * n)
	} else {
		for i := 0; i < e.p; i++ {
			ai, bi := a.shares[i], b.shares[i]
			var s field.Elem
			for _, k := range idx {
				s = field.Add(s, field.Mul(ai[k], bi[k]))
			}
			acc[i] = s
		}
		e.stats.FieldOps += int64(e.p * len(idx))
	}
	return e.reshare(acc)
}

// Dot returns a sharing of the full inner product ⟨a, b⟩.
func (e *Engine) Dot(a, b *SharedVec) *Shared {
	return e.DotSubset(a, b, nil)
}

// OpenVec reveals every element; metered as one batched opening.
func (e *Engine) OpenVec(v *SharedVec) []int64 {
	e.checkVec(v)
	n := v.Len()
	out := make([]int64, n)
	sh := make([]field.Elem, e.p)
	for k := 0; k < n; k++ {
		for i := 0; i < e.p; i++ {
			sh[i] = v.shares[i][k]
		}
		out[k] = field.ToInt64(shamir.ReconstructWithWeights(e.weights, sh))
	}
	e.stats.Frames += int64(e.p * (e.p - 1))
	e.stats.Messages += int64(n * e.p * (e.p - 1))
	e.stats.Bytes += 8 * int64(n*e.p*(e.p-1))
	e.stats.FieldOps += int64(e.p * n)
	return out
}

// FromScalars packs scalar shares into a vector (no communication).
func (e *Engine) FromScalars(xs []*Shared) *SharedVec {
	out := e.zeroVec(len(xs))
	for k, x := range xs {
		if x.eng != e {
			panic(invariant.Violation("bgw: foreign share"))
		}
		for i := 0; i < e.p; i++ {
			out.shares[i][k] = x.shares[i]
		}
	}
	return out
}

func (e *Engine) zeroVec(n int) *SharedVec {
	out := &SharedVec{eng: e, shares: make([][]field.Elem, e.p)}
	for i := range out.shares {
		out.shares[i] = make([]field.Elem, n)
	}
	return out
}

func (e *Engine) checkVec(a *SharedVec) {
	if a.eng != e {
		panic(invariant.Violation("bgw: vector from a different engine"))
	}
}

func (e *Engine) checkSameVec(a, b *SharedVec) {
	e.checkVec(a)
	e.checkVec(b)
	if a.Len() != b.Len() {
		panic(invariant.Violation("bgw: vector length mismatch"))
	}
}
