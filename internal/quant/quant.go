// Package quant implements Algorithm 2 of the paper: local data
// quantization by up-scaling followed by unbiased stochastic rounding.
// Each client applies it privately to its own column; the server and the
// other clients never observe the pre-quantization values.
package quant

import (
	"fmt"
	"math"

	"sqm/internal/invariant"
	"sqm/internal/linalg"
	"sqm/internal/randx"
)

// Scalar quantizes a single real value: scale by gamma, then round
// stochastically to a neighboring integer. E[Scalar(v, gamma)] = gamma*v.
func Scalar(v, gamma float64, rng *randx.RNG) int64 {
	return rng.StochasticRound(gamma * v)
}

// Vector quantizes every element of v with scaling factor gamma
// (Algorithm 2 applied to a column).
func Vector(v []float64, gamma float64, rng *randx.RNG) []int64 {
	out := make([]int64, len(v))
	for i, x := range v {
		out[i] = rng.StochasticRound(gamma * x)
	}
	return out
}

// IntMatrix is a dense row-major integer matrix holding quantized data.
type IntMatrix struct {
	Rows, Cols int
	Data       []int64
}

// NewIntMatrix allocates a zero rows x cols integer matrix.
func NewIntMatrix(rows, cols int) *IntMatrix {
	return &IntMatrix{Rows: rows, Cols: cols, Data: make([]int64, rows*cols)}
}

// At returns element (i, j).
func (m *IntMatrix) At(i, j int) int64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *IntMatrix) Set(i, j int, v int64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a mutable view.
func (m *IntMatrix) Row(i int) []int64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *IntMatrix) Col(j int) []int64 {
	c := make([]int64, m.Rows)
	for i := range c {
		c[i] = m.At(i, j)
	}
	return c
}

// SetCol assigns column j from v.
func (m *IntMatrix) SetCol(j int, v []int64) {
	if len(v) != m.Rows {
		panic(invariant.Violation("quant: SetCol length mismatch"))
	}
	for i := range v {
		m.Set(i, j, v[i])
	}
}

// Float converts back to a float64 matrix scaled by 1/scale (the server's
// post-processing step).
func (m *IntMatrix) Float(scale float64) *linalg.Matrix {
	f := linalg.NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		f.Data[i] = float64(v) / scale
	}
	return f
}

// MaxAbs returns max |m[i,j]|.
func (m *IntMatrix) MaxAbs() int64 {
	var s int64
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > s {
			s = v
		}
	}
	return s
}

// Matrix quantizes a full real matrix column by column. In the VFL
// deployment each column belongs to a different client; colRNG supplies
// the per-client private randomness (client j uses colRNG(j)). A nil
// colRNG uses a single stream for all columns, which is the correct
// behaviour for the centralized simulations.
func Matrix(x *linalg.Matrix, gamma float64, rng *randx.RNG, colRNG func(j int) *randx.RNG) *IntMatrix {
	out := NewIntMatrix(x.Rows, x.Cols)
	if colRNG == nil {
		for i, v := range x.Data {
			out.Data[i] = rng.StochasticRound(gamma * v)
		}
		return out
	}
	for j := 0; j < x.Cols; j++ {
		g := colRNG(j)
		for i := 0; i < x.Rows; i++ {
			out.Set(i, j, g.StochasticRound(gamma*x.At(i, j)))
		}
	}
	return out
}

// Nearest rounds gamma*v to the nearest integer. It is *biased* and only
// exists for the rounding-strategy ablation; SQM uses Scalar/Vector.
func Nearest(v, gamma float64) int64 {
	return int64(math.Round(gamma * v))
}

// ErrScaleOverflow reports a scaling choice whose quantized magnitudes
// cannot be represented exactly.
type ErrScaleOverflow struct {
	Gamma, MaxAbs float64
}

func (e *ErrScaleOverflow) Error() string {
	return fmt.Sprintf("quant: gamma=%g with max|v|=%g exceeds exact integer range", e.Gamma, e.MaxAbs)
}

// CheckScale verifies that |gamma*v|+1 stays below 2^53 for every v in
// the data (so the float64 intermediary in Algorithm 2 is exact).
func CheckScale(x *linalg.Matrix, gamma float64) error {
	maxAbs := x.MaxAbs()
	if gamma*maxAbs+1 >= float64(1<<53) {
		return &ErrScaleOverflow{Gamma: gamma, MaxAbs: maxAbs}
	}
	return nil
}
