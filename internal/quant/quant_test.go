package quant

import (
	"math"
	"testing"
	"testing/quick"

	"sqm/internal/linalg"
	"sqm/internal/randx"
)

func TestScalarUnbiased(t *testing.T) {
	g := randx.New(1)
	const n = 200000
	v, gamma := 0.637, 16.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(Scalar(v, gamma, g))
	}
	if got, want := sum/n, gamma*v; math.Abs(got-want) > 0.02 {
		t.Fatalf("E[Scalar] = %v, want %v", got, want)
	}
}

func TestScalarNegativeValues(t *testing.T) {
	g := randx.New(2)
	const n = 100000
	v, gamma := -1.23, 8.0
	var sum float64
	for i := 0; i < n; i++ {
		x := Scalar(v, gamma, g)
		if float64(x) < math.Floor(gamma*v) || float64(x) > math.Ceil(gamma*v) {
			t.Fatalf("Scalar(%v) = %d escapes unit interval", gamma*v, x)
		}
		sum += float64(x)
	}
	if got, want := sum/n, gamma*v; math.Abs(got-want) > 0.02 {
		t.Fatalf("E[Scalar] = %v, want %v", got, want)
	}
}

func TestScalarBoundedErrorProperty(t *testing.T) {
	g := randx.New(3)
	f := func(v float64, scalePow uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
			return true
		}
		gamma := float64(uint64(1) << (scalePow % 20))
		q := Scalar(v, gamma, g)
		return math.Abs(float64(q)-gamma*v) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVector(t *testing.T) {
	g := randx.New(4)
	v := []float64{0.5, -0.25, 2}
	q := Vector(v, 4, g)
	if len(q) != 3 {
		t.Fatalf("len = %d", len(q))
	}
	if q[0] != 2 || q[1] != -1 || q[2] != 8 {
		t.Fatalf("integer-representable inputs must quantize exactly: %v", q)
	}
}

func TestMatrixSingleStream(t *testing.T) {
	g := randx.New(5)
	x := linalg.FromRows([][]float64{{0.5, 0.25}, {-0.75, 1}})
	q := Matrix(x, 4, g, nil)
	want := []int64{2, 1, -3, 4}
	for i, w := range want {
		if q.Data[i] != w {
			t.Fatalf("Data = %v, want %v", q.Data, want)
		}
	}
}

func TestMatrixPerClientStreams(t *testing.T) {
	// Per-column RNGs: quantizing column by column must agree with
	// quantizing the same column directly with the same stream.
	x := linalg.FromRows([][]float64{{0.1, 0.9}, {0.4, 0.6}})
	mk := func(j int) *randx.RNG { return randx.New(uint64(100 + j)) }
	q := Matrix(x, 10, nil, mk)
	for j := 0; j < 2; j++ {
		want := Vector(x.Col(j), 10, randx.New(uint64(100+j)))
		got := q.Col(j)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("column %d mismatch: %v vs %v", j, got, want)
			}
		}
	}
}

func TestIntMatrixAccessors(t *testing.T) {
	m := NewIntMatrix(2, 3)
	m.Set(1, 2, -7)
	if m.At(1, 2) != -7 {
		t.Fatal("Set/At")
	}
	m.SetCol(0, []int64{5, 6})
	if m.At(0, 0) != 5 || m.At(1, 0) != 6 {
		t.Fatal("SetCol")
	}
	if c := m.Col(0); c[1] != 6 {
		t.Fatal("Col")
	}
	r := m.Row(1)
	r[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must be a view")
	}
	if m.MaxAbs() != 9 {
		t.Fatalf("MaxAbs = %d", m.MaxAbs())
	}
}

func TestFloatDownscale(t *testing.T) {
	m := NewIntMatrix(1, 2)
	m.Set(0, 0, 8)
	m.Set(0, 1, -4)
	f := m.Float(4)
	if f.At(0, 0) != 2 || f.At(0, 1) != -1 {
		t.Fatalf("Float = %v", f.Data)
	}
}

// The quantization error of the *scaled* data is at most 1 per entry, so
// downscaling by gamma gives per-entry error at most 1/gamma — the key
// claim behind Lemma 2 (error vanishes as gamma grows).
func TestQuantizationErrorShrinksWithGamma(t *testing.T) {
	g := randx.New(7)
	x := linalg.NewMatrix(20, 20)
	for i := range x.Data {
		x.Data[i] = g.Gaussian(0, 0.3)
	}
	prevErr := math.Inf(1)
	for _, gamma := range []float64{4, 64, 1024} {
		q := Matrix(x, gamma, g, nil)
		diff := q.Float(gamma).Sub(x).MaxAbs()
		if diff > 1/gamma {
			t.Fatalf("gamma=%v: max error %v > %v", gamma, diff, 1/gamma)
		}
		if diff >= prevErr {
			t.Fatalf("error did not shrink with gamma: %v -> %v", prevErr, diff)
		}
		prevErr = diff
	}
}

func TestNearestIsBiasedStochasticIsNot(t *testing.T) {
	// v = 0.3 with gamma = 1: nearest rounding always returns 0 (bias
	// -0.3); stochastic rounding is unbiased. This is the rounding
	// ablation from DESIGN.md.
	g := randx.New(8)
	const n = 100000
	var sumS float64
	for i := 0; i < n; i++ {
		sumS += float64(Scalar(0.3, 1, g))
	}
	if Nearest(0.3, 1) != 0 {
		t.Fatal("Nearest(0.3) should be 0")
	}
	if math.Abs(sumS/n-0.3) > 0.01 {
		t.Fatalf("stochastic mean = %v, want 0.3", sumS/n)
	}
}

func TestCheckScale(t *testing.T) {
	x := linalg.FromRows([][]float64{{1e10}})
	if err := CheckScale(x, 1e10); err == nil {
		t.Fatal("expected overflow error")
	} else if _, ok := err.(*ErrScaleOverflow); !ok {
		t.Fatalf("wrong error type: %T", err)
	}
	if err := CheckScale(x, 10); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func BenchmarkMatrixQuantize(b *testing.B) {
	g := randx.New(1)
	x := linalg.NewMatrix(100, 100)
	for i := range x.Data {
		x.Data[i] = g.Gaussian(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Matrix(x, 1024, g, nil)
	}
}
