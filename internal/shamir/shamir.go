// Package shamir implements Shamir's secret sharing over the field of
// package field: the building block of the BGW protocol (Appendix B of
// the paper). A secret s is hidden as the constant term of a random
// degree-t polynomial; party i receives the evaluation at x = i. Any
// t+1 shares reconstruct s by Lagrange interpolation at 0, while any t
// shares are jointly uniform and carry no information about s.
package shamir

import (
	"sqm/internal/field"
	"sqm/internal/invariant"
	"sqm/internal/randx"
)

// Share splits secret into n shares with threshold t (any t+1 shares
// reconstruct; t or fewer reveal nothing). Party i's share is the
// evaluation of the random polynomial at x = i+1.
func Share(secret field.Elem, t, n int, rng *randx.RNG) []field.Elem {
	if t < 0 || n <= t {
		panic(invariant.Violation("shamir: invalid threshold t=%d for n=%d", t, n))
	}
	coefs := make([]field.Elem, t+1)
	coefs[0] = secret
	for i := 1; i <= t; i++ {
		coefs[i] = field.Rand(rng)
	}
	shares := make([]field.Elem, n)
	for i := 0; i < n; i++ {
		shares[i] = evalPoly(coefs, field.Elem(uint64(i+1)))
	}
	return shares
}

// evalPoly evaluates the polynomial with the given coefficients (low
// order first) at x by Horner's rule.
func evalPoly(coefs []field.Elem, x field.Elem) field.Elem {
	var v field.Elem
	for i := len(coefs) - 1; i >= 0; i-- {
		v = field.Add(field.Mul(v, x), coefs[i])
	}
	return v
}

// LagrangeAtZero returns the interpolation weights λ_i such that
// f(0) = Σ_i λ_i · f(x_i) for any polynomial f of degree < len(xs),
// where xs are distinct non-zero evaluation points.
func LagrangeAtZero(xs []field.Elem) []field.Elem {
	w := make([]field.Elem, len(xs))
	for i, xi := range xs {
		num := field.Elem(1)
		den := field.Elem(1)
		for j, xj := range xs {
			if i == j {
				continue
			}
			num = field.Mul(num, xj)                // (0 - x_j) up to sign
			den = field.Mul(den, field.Sub(xj, xi)) // (x_i - x_j) with matching sign
		}
		w[i] = field.Mul(num, field.Inv(den))
	}
	return w
}

// PartyPoints returns the canonical evaluation points 1..n used by
// Share.
func PartyPoints(n int) []field.Elem {
	xs := make([]field.Elem, n)
	for i := range xs {
		xs[i] = field.Elem(uint64(i + 1))
	}
	return xs
}

// Reconstruct recovers the secret from shares at the given points; it
// needs at least degree+1 points for a degree-d sharing and trusts the
// caller to pass consistent shares (semi-honest model).
func Reconstruct(points, shares []field.Elem) field.Elem {
	if len(points) != len(shares) {
		panic(invariant.Violation("shamir: points/shares length mismatch"))
	}
	w := LagrangeAtZero(points)
	var s field.Elem
	for i, sh := range shares {
		s = field.Add(s, field.Mul(w[i], sh))
	}
	return s
}

// ReconstructWithWeights recovers the secret using precomputed Lagrange
// weights (the hot path in BGW, where the party set never changes).
func ReconstructWithWeights(weights, shares []field.Elem) field.Elem {
	if len(weights) != len(shares) {
		panic(invariant.Violation("shamir: weights/shares length mismatch"))
	}
	var s field.Elem
	for i, sh := range shares {
		s = field.Add(s, field.Mul(weights[i], sh))
	}
	return s
}
