package shamir

import (
	"testing"
	"testing/quick"

	"sqm/internal/field"
	"sqm/internal/randx"
)

func TestShareReconstructRoundTrip(t *testing.T) {
	g := randx.New(1)
	for _, cfg := range []struct{ t, n int }{{1, 3}, {1, 4}, {2, 5}, {3, 10}, {0, 1}} {
		secret := field.Rand(g)
		shares := Share(secret, cfg.t, cfg.n, g)
		if len(shares) != cfg.n {
			t.Fatalf("share count = %d", len(shares))
		}
		got := Reconstruct(PartyPoints(cfg.n), shares)
		if got != secret {
			t.Fatalf("t=%d n=%d: reconstructed %d, want %d", cfg.t, cfg.n, got, secret)
		}
	}
}

func TestReconstructFromSubset(t *testing.T) {
	g := randx.New(2)
	secret := field.FromInt64(-123456)
	shares := Share(secret, 2, 7, g)
	pts := PartyPoints(7)
	// Any 3 = t+1 points suffice.
	subPts := []field.Elem{pts[1], pts[4], pts[6]}
	subShares := []field.Elem{shares[1], shares[4], shares[6]}
	if got := Reconstruct(subPts, subShares); got != secret {
		t.Fatalf("subset reconstruction = %d", field.ToInt64(got))
	}
}

func TestTooFewSharesGiveWrongSecretAlmostSurely(t *testing.T) {
	g := randx.New(3)
	secret := field.Elem(42)
	wrong := 0
	for trial := 0; trial < 50; trial++ {
		shares := Share(secret, 2, 5, g)
		pts := PartyPoints(5)
		// Only 2 shares for a degree-2 polynomial.
		got := Reconstruct(pts[:2], shares[:2])
		if got != secret {
			wrong++
		}
	}
	if wrong < 45 {
		t.Fatalf("under-threshold reconstruction succeeded too often: %d/50 wrong", wrong)
	}
}

func TestShareIsAdditivelyHomomorphic(t *testing.T) {
	g := randx.New(4)
	a, b := field.FromInt64(1000), field.FromInt64(-300)
	sa := Share(a, 1, 4, g)
	sb := Share(b, 1, 4, g)
	sum := make([]field.Elem, 4)
	for i := range sum {
		sum[i] = field.Add(sa[i], sb[i])
	}
	if got := Reconstruct(PartyPoints(4), sum); field.ToInt64(got) != 700 {
		t.Fatalf("homomorphic sum = %d", field.ToInt64(got))
	}
}

func TestLocalShareProductsReconstructProduct(t *testing.T) {
	// The BGW multiplication identity: pointwise products of degree-t
	// shares form a degree-2t sharing of the product, reconstructable
	// with 2t+1 points.
	g := randx.New(5)
	a, b := field.FromInt64(77), field.FromInt64(-13)
	const tdeg, n = 1, 4 // 2t+1 = 3 <= 4
	sa := Share(a, tdeg, n, g)
	sb := Share(b, tdeg, n, g)
	prod := make([]field.Elem, n)
	for i := range prod {
		prod[i] = field.Mul(sa[i], sb[i])
	}
	got := Reconstruct(PartyPoints(n), prod)
	if field.ToInt64(got) != -1001 {
		t.Fatalf("product reconstruction = %d, want -1001", field.ToInt64(got))
	}
}

func TestLagrangeWeightsSumToOne(t *testing.T) {
	// Interpolating the constant polynomial 1: Σ λ_i = 1.
	for _, n := range []int{1, 2, 3, 5, 9, 20} {
		w := LagrangeAtZero(PartyPoints(n))
		var s field.Elem
		for _, wi := range w {
			s = field.Add(s, wi)
		}
		if s != 1 {
			t.Fatalf("n=%d: Σλ = %d", n, s)
		}
	}
}

func TestLagrangeWeightsInterpolateIdentity(t *testing.T) {
	// f(x) = x has f(0) = 0: Σ λ_i x_i = 0.
	pts := PartyPoints(5)
	w := LagrangeAtZero(pts)
	var s field.Elem
	for i, wi := range w {
		s = field.Add(s, field.Mul(wi, pts[i]))
	}
	if s != 0 {
		t.Fatalf("Σλ·x = %d, want 0", s)
	}
}

func TestReconstructWithWeightsMatchesReconstruct(t *testing.T) {
	g := randx.New(6)
	secret := field.Rand(g)
	shares := Share(secret, 2, 6, g)
	pts := PartyPoints(6)
	w := LagrangeAtZero(pts)
	if ReconstructWithWeights(w, shares) != Reconstruct(pts, shares) {
		t.Fatal("weight-based reconstruction disagrees")
	}
}

func TestShareHidesSecret(t *testing.T) {
	// A single share's distribution must not depend on the secret:
	// compare coarse means for secret=0 vs secret=p/2 over many trials.
	g := randx.New(7)
	const trials = 20000
	mean := func(secret field.Elem) float64 {
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(Share(secret, 1, 3, g)[0])
		}
		return sum / trials
	}
	m0 := mean(0)
	m1 := mean(field.Elem(field.Modulus / 2))
	mid := float64(field.Modulus) / 2
	for _, m := range []float64{m0, m1} {
		if m < 0.95*mid || m > 1.05*mid {
			t.Fatalf("share mean %v far from uniform midpoint %v", m, mid)
		}
	}
}

func TestShareRoundTripProperty(t *testing.T) {
	f := func(seed uint64, raw int64) bool {
		g := randx.New(seed)
		v := raw % field.MaxSignedValue
		secret := field.FromInt64(v)
		shares := Share(secret, 1, 4, g)
		return field.ToInt64(Reconstruct(PartyPoints(4), shares)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShareInvalidThresholdPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Share(1, 3, 3, randx.New(1))
}

func BenchmarkShare4Parties(b *testing.B) {
	g := randx.New(1)
	for i := 0; i < b.N; i++ {
		Share(12345, 1, 4, g)
	}
}

func BenchmarkReconstructWithWeights(b *testing.B) {
	g := randx.New(1)
	shares := Share(12345, 1, 4, g)
	w := LagrangeAtZero(PartyPoints(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReconstructWithWeights(w, shares)
	}
}
