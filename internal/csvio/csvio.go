// Package csvio loads and saves the dense matrices of this library as
// CSV files, so the command-line tools can run the private mechanisms
// on user-supplied data. It validates shape and numeric parsing
// strictly: a malformed cell aborts with row/column context rather than
// silently producing zeros (a quantization pipeline must never guess).
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"sqm/internal/linalg"
	"sqm/internal/mathx"
)

// Options controls parsing.
type Options struct {
	// HasHeader treats the first row as column names.
	HasHeader bool
	// LabelColumn extracts one column (by name when HasHeader, else by
	// index string) as the label vector. Empty means no labels.
	LabelColumn string
}

// Loaded is the parsed content.
type Loaded struct {
	X      *linalg.Matrix
	Labels []float64 // nil unless a label column was requested
	Header []string  // nil unless HasHeader
}

// Load reads a CSV file.
func Load(path string, opts Options) (*Loaded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, opts)
}

// Read parses CSV content from a reader.
func Read(r io.Reader, opts Options) (*Loaded, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 0 // enforce rectangular input
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csvio: empty input")
	}
	out := &Loaded{}
	rows := records
	if opts.HasHeader {
		out.Header = records[0]
		rows = records[1:]
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("csvio: no data rows")
	}
	cols := len(rows[0])
	labelIdx := -1
	if opts.LabelColumn != "" {
		labelIdx, err = resolveColumn(opts.LabelColumn, out.Header, cols)
		if err != nil {
			return nil, err
		}
		out.Labels = make([]float64, len(rows))
	}
	featCols := cols
	if labelIdx >= 0 {
		featCols--
	}
	out.X = linalg.NewMatrix(len(rows), featCols)
	for i, rec := range rows {
		dst := out.X.Row(i)
		k := 0
		for j, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("csvio: row %d column %d: %q is not numeric", i+1, j+1, cell)
			}
			if j == labelIdx {
				out.Labels[i] = v
				continue
			}
			dst[k] = v
			k++
		}
	}
	if out.Header != nil && labelIdx >= 0 {
		h := make([]string, 0, featCols)
		for j, name := range out.Header {
			if j != labelIdx {
				h = append(h, name)
			}
		}
		out.Header = h
	}
	return out, nil
}

func resolveColumn(spec string, header []string, cols int) (int, error) {
	if header != nil {
		for j, name := range header {
			if name == spec {
				return j, nil
			}
		}
	}
	idx, err := strconv.Atoi(spec)
	if err != nil || idx < 0 || idx >= cols {
		if header != nil {
			return 0, fmt.Errorf("csvio: label column %q not found in header and not a valid index", spec)
		}
		return 0, fmt.Errorf("csvio: label column %q is not a valid index in [0, %d)", spec, cols)
	}
	return idx, nil
}

// Write emits a matrix (with optional header) as CSV.
func Write(w io.Writer, m *linalg.Matrix, header []string) error {
	cw := csv.NewWriter(w)
	if header != nil {
		if len(header) != m.Cols {
			return fmt.Errorf("csvio: header has %d names for %d columns", len(header), m.Cols)
		}
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	row := make([]string, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteVector emits a single-column CSV.
func WriteVector(w io.Writer, v []float64, name string) error {
	m := linalg.NewMatrix(len(v), 1)
	for i, x := range v {
		m.Set(i, 0, x)
	}
	var header []string
	if name != "" {
		header = []string{name}
	}
	return Write(w, m, header)
}

// NormalizeRows clips every row of x to L2 norm at most c in place and
// reports how many rows were clipped. The DP analysis requires the
// bound; user data rarely arrives pre-normalized.
func NormalizeRows(x *linalg.Matrix, c float64) int {
	clipped := 0
	for i := 0; i < x.Rows; i++ {
		if !mathx.EqualWithin(linalg.ClipNorm(x.Row(i), c), 1, 0) {
			clipped++
		}
	}
	return clipped
}
