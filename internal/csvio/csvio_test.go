package csvio

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sqm/internal/linalg"
)

func TestReadPlainMatrix(t *testing.T) {
	in := "1,2,3\n4,5,6\n"
	got, err := Read(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.X.Rows != 2 || got.X.Cols != 3 {
		t.Fatalf("shape = %dx%d", got.X.Rows, got.X.Cols)
	}
	if got.X.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v", got.X.At(1, 2))
	}
	if got.Header != nil || got.Labels != nil {
		t.Fatal("no header/labels expected")
	}
}

func TestReadWithHeaderAndLabelByName(t *testing.T) {
	in := "a,b,income\n0.1,0.2,1\n0.3,0.4,0\n"
	got, err := Read(strings.NewReader(in), Options{HasHeader: true, LabelColumn: "income"})
	if err != nil {
		t.Fatal(err)
	}
	if got.X.Cols != 2 {
		t.Fatalf("feature cols = %d", got.X.Cols)
	}
	if got.Labels[0] != 1 || got.Labels[1] != 0 {
		t.Fatalf("labels = %v", got.Labels)
	}
	if len(got.Header) != 2 || got.Header[0] != "a" || got.Header[1] != "b" {
		t.Fatalf("header = %v", got.Header)
	}
	if got.X.At(1, 1) != 0.4 {
		t.Fatalf("X = %v", got.X.Data)
	}
}

func TestReadLabelByIndexWithoutHeader(t *testing.T) {
	in := "1,9,2\n3,8,4\n"
	got, err := Read(strings.NewReader(in), Options{LabelColumn: "1"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Labels[0] != 9 || got.Labels[1] != 8 {
		t.Fatalf("labels = %v", got.Labels)
	}
	if got.X.At(0, 1) != 2 {
		t.Fatalf("features = %v", got.X.Data)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader(""), Options{}); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := Read(strings.NewReader("a,b\n"), Options{HasHeader: true}); err == nil {
		t.Fatal("header-only input must error")
	}
	if _, err := Read(strings.NewReader("1,x\n"), Options{}); err == nil {
		t.Fatal("non-numeric cell must error")
	}
	if _, err := Read(strings.NewReader("1,2\n3\n"), Options{}); err == nil {
		t.Fatal("ragged rows must error")
	}
	if _, err := Read(strings.NewReader("a,b\n1,2\n"), Options{HasHeader: true, LabelColumn: "zz"}); err == nil {
		t.Fatal("unknown label column must error")
	}
	if _, err := Read(strings.NewReader("1,2\n"), Options{LabelColumn: "7"}); err == nil {
		t.Fatal("label index out of range must error")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	m := linalg.FromRows([][]float64{{1.5, -2}, {0, 3.25}})
	var buf bytes.Buffer
	if err := Write(&buf, m, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, Options{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if back.X.Data[i] != m.Data[i] {
			t.Fatalf("round trip mismatch: %v vs %v", back.X.Data, m.Data)
		}
	}
}

func TestWriteHeaderMismatch(t *testing.T) {
	if err := Write(&bytes.Buffer{}, linalg.NewMatrix(1, 2), []string{"only"}); err == nil {
		t.Fatal("header length mismatch must error")
	}
}

func TestWriteVector(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVector(&buf, []float64{1, 2.5}, "w"); err != nil {
		t.Fatal(err)
	}
	want := "w\n1\n2.5\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, []byte("1,2\n3,4\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.X.At(1, 0) != 3 {
		t.Fatalf("X = %v", got.X.Data)
	}
	if _, err := Load(filepath.Join(dir, "missing.csv"), Options{}); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestNormalizeRows(t *testing.T) {
	x := linalg.FromRows([][]float64{{3, 4}, {0.1, 0.1}})
	clipped := NormalizeRows(x, 1)
	if clipped != 1 {
		t.Fatalf("clipped = %d", clipped)
	}
	if math.Abs(linalg.Norm2(x.Row(0))-1) > 1e-12 {
		t.Fatalf("row 0 norm = %v", linalg.Norm2(x.Row(0)))
	}
	if x.At(1, 0) != 0.1 {
		t.Fatal("short rows must be untouched")
	}
}
