package circuit

import (
	"fmt"

	"sqm/internal/field"
)

// Plain evaluates the plan directly over field elements — no sharing,
// no communication. Because BGW computes exactly, the opened values are
// bit-identical to every MPC execution of the same plan; this is the
// differential-testing oracle and the fast path for utility
// experiments. Plans with external bindings (ExtVal/ExtVec) cannot run
// plain: those handles are engine share state.
func (p *Plan) Plain(bind Bindings) (*Result, error) {
	if p.nExt > 0 || p.nExtVecs > 0 {
		return nil, fmt.Errorf("circuit: plan has %d external bindings; Plain needs a self-contained circuit", p.nExt+p.nExtVecs)
	}
	if err := p.validate(bind); err != nil {
		return nil, err
	}
	vals := make([]field.Elem, len(p.nodes))
	vecs := make([][]field.Elem, len(p.nodes))
	r := &Result{plan: p}
	for id := range p.nodes {
		n := &p.nodes[id]
		switch n.kind {
		case kZero:
			vals[id] = 0
		case kInput:
			vals[id] = field.FromInt64(n.c)
		case kInputElem:
			vals[id] = n.elem
		case kInputVec:
			v := make([]field.Elem, len(n.ints))
			for k, x := range n.ints {
				v[k] = field.FromInt64(x)
			}
			vecs[id] = v
		case kInputParam:
			vals[id] = field.FromInt64(bind.Inputs[n.param])
		case kInputVecParam:
			vs := bind.InputVecs[n.param]
			if len(vs) != n.n {
				return nil, fmt.Errorf("circuit: input-vec param %d has %d elements, plan wants %d", n.param, len(vs), n.n)
			}
			v := make([]field.Elem, len(vs))
			for k, x := range vs {
				v[k] = field.FromInt64(x)
			}
			vecs[id] = v
		case kAdd:
			vals[id] = field.Add(vals[n.a], vals[n.b])
		case kSub:
			vals[id] = field.Sub(vals[n.a], vals[n.b])
		case kAddConst:
			vals[id] = field.Add(vals[n.a], field.FromInt64(n.c))
		case kMulConst:
			vals[id] = field.Mul(vals[n.a], field.FromInt64(n.c))
		case kAddConstP:
			vals[id] = field.Add(vals[n.a], field.FromInt64(bind.Consts[n.param]))
		case kMulConstP:
			vals[id] = field.Mul(vals[n.a], field.FromInt64(bind.Consts[n.param]))
		case kMul:
			vals[id] = field.Mul(vals[n.a], vals[n.b])
		case kInner:
			var acc field.Elem
			for i := range n.args {
				acc = field.Add(acc, field.Mul(vals[n.args[i]], vals[n.args2[i]]))
			}
			vals[id] = acc
		case kDot:
			va, vb := vecs[n.a], vecs[n.b]
			var acc field.Elem
			for k := range va {
				acc = field.Add(acc, field.Mul(va[k], vb[k]))
			}
			vals[id] = acc
		case kAt:
			vals[id] = vecs[n.a][n.k]
		case kAddVec:
			va, vb := vecs[n.a], vecs[n.b]
			out := make([]field.Elem, len(va))
			for k := range out {
				out[k] = field.Add(va[k], vb[k])
			}
			vecs[id] = out
		case kFromScalars:
			out := make([]field.Elem, len(n.args))
			for k, op := range n.args {
				out[k] = vals[op]
			}
			vecs[id] = out
		case kOpen:
			r.opened = append(r.opened, field.ToInt64(vals[n.a]))
		case kOpenVec:
			src := vecs[n.a]
			out := make([]int64, len(src))
			for k, v := range src {
				out[k] = field.ToInt64(v)
			}
			r.openedVecs = append(r.openedVecs, out)
		default:
			return nil, fmt.Errorf("circuit: unknown node kind %d", n.kind)
		}
	}
	return r, nil
}
