package circuit

import (
	"bytes"
	"testing"

	"sqm/internal/bgw"
	"sqm/internal/obs"
	"sqm/internal/transport"
)

// buildPoly records (x·y + 3)·x − y with one opened output and returns
// the builder: depth 2, two mul gates.
func buildPoly(b *Builder) {
	x := b.Input(0, 5)
	y := b.Input(1, -7)
	xy := b.Mul(x, y)
	s := b.AddConst(xy, 3)
	p := b.Mul(s, x)
	b.OpenIdx(b.Sub(p, y))
}

func TestCompileLevels(t *testing.T) {
	b := NewBuilder(4, 0)
	buildPoly(b)
	plan := b.MustCompile()
	if plan.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", plan.Depth())
	}
	if plan.MulGates() != 2 {
		t.Fatalf("mul gates = %d, want 2", plan.MulGates())
	}
	// input round + 2 levels + output round
	if plan.Rounds() != 4 {
		t.Fatalf("rounds = %d, want 4", plan.Rounds())
	}
	if plan.EagerRounds() != 4 {
		t.Fatalf("eager rounds = %d, want 4", plan.EagerRounds())
	}
}

func TestExecuteMatchesPlainAcrossEngines(t *testing.T) {
	b := NewBuilder(4, 0)
	buildPoly(b)
	plan := b.MustCompile()

	want := int64((5*-7+3)*5 - (-7))
	pr, err := plan.Plain(Bindings{})
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.Opened(0); got != want {
		t.Fatalf("plain = %d, want %d", got, want)
	}

	mono, err := bgw.NewEngine(bgw.Config{Parties: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := plan.Execute(bgw.Eval(mono), Bindings{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mr.Opened(0); got != want {
		t.Fatalf("mono = %d, want %d", got, want)
	}
	if r := mono.Stats().Rounds; r != int64(plan.Rounds()) {
		t.Fatalf("mono rounds = %d, want %d", r, plan.Rounds())
	}

	actor, err := bgw.NewActorEngine(bgw.Config{Parties: 4, Seed: 11}, transport.NewChanMesh(4))
	if err != nil {
		t.Fatal(err)
	}
	defer actor.Close()
	ar, err := plan.Execute(actor, Bindings{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ar.Opened(0); got != want {
		t.Fatalf("actor = %d, want %d", got, want)
	}
	if r := actor.Stats().Rounds; r != int64(plan.Rounds()) {
		t.Fatalf("actor rounds = %d, want %d", r, plan.Rounds())
	}
}

// TestExecuteEmitsLevelSpans pins the executor's instrumentation: with
// a debug-level recorder on the engine, every batched level and the
// open round produce spans, observed in the recorder's registry.
func TestExecuteEmitsLevelSpans(t *testing.T) {
	rec := obs.NewLog(&bytes.Buffer{}, "json", obs.LevelDebug)
	b := NewBuilder(4, 0).SetRecorder(rec)
	if b.Recorder() != obs.Recorder(rec) {
		t.Fatal("SetRecorder not surfaced through Recorder()")
	}
	buildPoly(b)
	plan := b.MustCompile()
	eng, err := bgw.NewEngine(bgw.Config{Parties: 4, Seed: 11, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(bgw.Eval(eng), Bindings{}); err != nil {
		t.Fatal(err)
	}
	m := rec.Metrics()
	if got := m.Histogram("circuit.exec.seconds").Snapshot().Count; got != 1 {
		t.Fatalf("circuit.exec spans = %d, want 1", got)
	}
	if got := m.Histogram("circuit.level.seconds").Snapshot().Count; got != int64(plan.Depth()) {
		t.Fatalf("circuit.level spans = %d, want %d", got, plan.Depth())
	}
	if got := m.Histogram("circuit.open.seconds").Snapshot().Count; got != 1 {
		t.Fatalf("circuit.open spans = %d, want 1", got)
	}
}

func TestParamsRebindAcrossExecutions(t *testing.T) {
	b := NewBuilder(4, 0)
	c := b.ConstParam()
	x := b.InputParam(0)
	v := b.InputVecParam(1, 3)
	d := b.Dot(v, v)
	b.OpenIdx(b.AddConstP(b.Mul(x, d), c))
	plan := b.MustCompile()

	eng, err := bgw.NewEngine(bgw.Config{Parties: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ev := bgw.Eval(eng)
	for i, tc := range []struct {
		c, x  int64
		vs    []int64
		wants int64
	}{
		{c: 10, x: 2, vs: []int64{1, 2, 3}, wants: 2*14 + 10},
		{c: -4, x: -3, vs: []int64{0, 5, -1}, wants: -3*26 - 4},
	} {
		res, err := plan.Execute(ev, Bindings{Consts: []int64{tc.c}, Inputs: []int64{tc.x}, InputVecs: [][]int64{tc.vs}})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Opened(0); got != tc.wants {
			t.Fatalf("run %d: got %d, want %d", i, got, tc.wants)
		}
		pr, err := plan.Plain(Bindings{Consts: []int64{tc.c}, Inputs: []int64{tc.x}, InputVecs: [][]int64{tc.vs}})
		if err != nil {
			t.Fatal(err)
		}
		if pr.Opened(0) != tc.wants {
			t.Fatalf("run %d plain: got %d, want %d", i, pr.Opened(0), tc.wants)
		}
	}
}

// TestBatchedLevelIsOneFrameExchange: N independent muls of one level
// must cost one reshare exchange — P(P−1) frames — regardless of N.
func TestBatchedLevelIsOneFrameExchange(t *testing.T) {
	const p, n = 4, 9
	build := func() *Plan {
		b := NewBuilder(p, 0)
		xs := make([]bgw.Val, n)
		for i := range xs {
			xs[i] = b.Input(i%p, int64(i+1))
		}
		prods := make([]bgw.Val, n)
		for i := range xs {
			prods[i] = b.Mul(xs[i], xs[(i+1)%n])
		}
		b.OpenBatch(prods)
		return b.MustCompile()
	}
	plan := build()
	if plan.Depth() != 1 || plan.MulGates() != n {
		t.Fatalf("depth %d mulgates %d, want 1 and %d", plan.Depth(), plan.MulGates(), n)
	}

	run := func(eager bool) (rounds, frames int64, opened []int64) {
		eng, err := bgw.NewActorEngine(bgw.Config{Parties: p, Seed: 99}, transport.NewChanMesh(p))
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		res, err := plan.ExecuteOpts(eng, Bindings{}, ExecOptions{Eager: eager})
		if err != nil {
			t.Fatal(err)
		}
		opened = make([]int64, n)
		for i := range opened {
			opened[i] = res.Opened(i)
		}
		st := eng.Stats()
		return st.Rounds, st.Frames, opened
	}

	pRounds, pFrames, pVals := run(false)
	eRounds, eFrames, eVals := run(true)

	if pRounds != int64(plan.Rounds()) {
		t.Errorf("planned rounds = %d, want %d", pRounds, plan.Rounds())
	}
	if eRounds != int64(plan.EagerRounds()) {
		t.Errorf("eager rounds = %d, want %d", eRounds, plan.EagerRounds())
	}
	// Planned frames: n input frames of (p−1) each… inputs are per-owner
	// sends, then one reshare exchange, then one batched opening.
	wantPlanned := int64(n*(p-1) + p*(p-1) + p*(p-1))
	if pFrames != wantPlanned {
		t.Errorf("planned frames = %d, want %d", pFrames, wantPlanned)
	}
	// Eager frames: one reshare exchange per gate, one opening exchange
	// per output.
	wantEager := int64(n*(p-1) + n*p*(p-1) + n*p*(p-1))
	if eFrames != wantEager {
		t.Errorf("eager frames = %d, want %d", eFrames, wantEager)
	}
	for i := range pVals {
		if pVals[i] != eVals[i] {
			t.Fatalf("output %d: planned %d != eager %d", i, pVals[i], eVals[i])
		}
	}
}

// TestExtValBridgesPlans: shares produced by a setup plan feed a second
// plan through ExtVal bindings.
func TestExtValBridgesPlans(t *testing.T) {
	eng, err := bgw.NewEngine(bgw.Config{Parties: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ev := bgw.Eval(eng)

	setup := NewBuilder(4, 0)
	colH := setup.InputVec(0, []int64{4, -2, 9})
	setupPlan := setup.MustCompile()
	sres, err := setupPlan.Execute(ev, Bindings{})
	if err != nil {
		t.Fatal(err)
	}
	col := sres.VecOf(colH)

	b := NewBuilder(4, 0)
	extH := b.ExtVec(3)
	b.OpenIdx(b.Dot(extH, extH))
	plan := b.MustCompile()
	res, err := plan.Execute(ev, Bindings{ExtVecs: []bgw.Vec{col}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Opened(0), int64(16+4+81); got != want {
		t.Fatalf("dot = %d, want %d", got, want)
	}
}
