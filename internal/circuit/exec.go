package circuit

import (
	"fmt"

	"sqm/internal/bgw"
	"sqm/internal/invariant"
	"sqm/internal/obs"
)

// Bindings supplies a plan's parameters for one execution, each slice
// indexed by declaration order: Consts for ConstParam, Inputs for
// InputParam, InputVecs for InputVecParam, Ext/ExtVecs for engine
// handles declared with ExtVal/ExtVec (they must come from the engine
// the plan executes on).
type Bindings struct {
	Consts    []int64
	Inputs    []int64
	InputVecs [][]int64
	Ext       []bgw.Val
	ExtVecs   []bgw.Vec
}

// ExecOptions tunes one execution.
type ExecOptions struct {
	// Eager disables level batching: every multiplicative gate runs as
	// its own dispatch and its own communication round, reproducing the
	// pre-scheduler behaviour for comparison benchmarks.
	Eager bool
	// Workers bounds the worker pool engines use to parallelize each
	// level's independent gates (applied via bgw.WorkerTunable when the
	// engine supports it; ignored otherwise). 0 keeps the engine's own
	// setting; negative forces the engine default (runtime.NumCPU());
	// explicit positive values are honored as given. Outputs are
	// bit-identical for every value — the pool only splits
	// value-independent local arithmetic, and resharing randomness never
	// reaches opened values.
	Workers int
}

// Result holds one execution's outputs: the opened values in gate
// record order plus every node's engine handle (for plans that produce
// persistent shares consumed by later plans).
type Result struct {
	plan       *Plan
	vals       []bgw.Val
	vecs       []bgw.Vec
	opened     []int64
	openedVecs [][]int64
}

// Opened returns the k-th scalar output (the index OpenIdx returned).
func (r *Result) Opened(k int) int64 { return r.opened[k] }

// OpenedVec returns the k-th vector output.
func (r *Result) OpenedVec(k int) []int64 { return r.openedVecs[k] }

// ValOf returns the engine handle the execution produced for a
// recorded scalar, for use as an ExtVal binding of a later plan.
func (r *Result) ValOf(h bgw.Val) bgw.Val {
	v, ok := h.(Val)
	if !ok {
		panic(invariant.Violation("circuit: ValOf needs a circuit handle"))
	}
	return r.vals[v.id]
}

// VecOf returns the engine handle for a recorded vector.
func (r *Result) VecOf(h bgw.Vec) bgw.Vec {
	v, ok := h.(Vec)
	if !ok {
		panic(invariant.Violation("circuit: VecOf needs a circuit handle"))
	}
	return r.vecs[v.id]
}

// validate checks the bindings against the plan's parameter counts.
func (p *Plan) validate(bind Bindings) error {
	if len(bind.Consts) != p.nConsts {
		return fmt.Errorf("circuit: plan wants %d const params, got %d", p.nConsts, len(bind.Consts))
	}
	if len(bind.Inputs) != p.nInputs {
		return fmt.Errorf("circuit: plan wants %d input params, got %d", p.nInputs, len(bind.Inputs))
	}
	if len(bind.InputVecs) != p.nInputVecs {
		return fmt.Errorf("circuit: plan wants %d input-vec params, got %d", p.nInputVecs, len(bind.InputVecs))
	}
	if len(bind.Ext) != p.nExt {
		return fmt.Errorf("circuit: plan wants %d external values, got %d", p.nExt, len(bind.Ext))
	}
	if len(bind.ExtVecs) != p.nExtVecs {
		return fmt.Errorf("circuit: plan wants %d external vectors, got %d", p.nExtVecs, len(bind.ExtVecs))
	}
	return nil
}

// Execute runs the plan against eng with level batching: all inputs
// share in one round, each multiplicative level runs as one batched
// degree-reduction round, and all outputs open in one batched round —
// Stats.Rounds advances by exactly Plan.Rounds().
func (p *Plan) Execute(eng bgw.Evaluator, bind Bindings) (*Result, error) {
	return p.ExecuteOpts(eng, bind, ExecOptions{})
}

// ExecuteOpts runs the plan with explicit options. When the engine's
// recorder admits debug events, the execution is traced: one
// "circuit.exec" span for the whole run with one "circuit.level" child
// per batched multiplication round and a "circuit.open" child for the
// output round, each carrying gate counts and the engine's frame/round
// deltas. Disabled telemetry skips all of it (the spans are inert and
// Stats is never read).
func (p *Plan) ExecuteOpts(eng bgw.Evaluator, bind Bindings, opts ExecOptions) (*Result, error) {
	if err := p.validate(bind); err != nil {
		return nil, err
	}
	if opts.Workers != 0 {
		if wt, ok := eng.(bgw.WorkerTunable); ok {
			wt.SetWorkers(opts.Workers)
		}
	}
	rec := eng.Recorder()
	exec := obs.StartTracedSpan(rec, "circuit.exec", 0,
		obs.Int("depth", p.depth), obs.Int("nodes", len(p.nodes)), obs.Bool("eager", opts.Eager))
	var prev bgw.Stats
	if exec.Active() {
		prev = eng.Stats()
	}
	r := &Result{
		plan: p,
		vals: make([]bgw.Val, len(p.nodes)),
		vecs: make([]bgw.Vec, len(p.nodes)),
	}
	// Level 0: inputs, external bindings and their linear closure.
	for _, id := range p.locals[0] {
		if err := p.evalLocal(eng, bind, r, id); err != nil {
			return nil, err
		}
	}
	if p.hasInputs {
		eng.AdvanceRound()
	}
	// levelDelta closes one child span with the engine's traffic deltas
	// since the previous close.
	levelDelta := func(sp obs.TracedSpan) {
		if !sp.Active() {
			return
		}
		s := eng.Stats()
		sp.End(
			obs.Int64("frames", s.Frames-prev.Frames),
			obs.Int64("rounds", s.Rounds-prev.Rounds),
			obs.Int64("bytes", s.Bytes-prev.Bytes))
		prev = s
	}
	for lvl := 1; lvl <= p.depth; lvl++ {
		gates := p.muls[lvl-1]
		sp := obs.StartTracedSpan(rec, "circuit.level", exec.ID(),
			obs.Int("level", lvl), obs.Int("gates", len(gates)))
		if opts.Eager {
			for _, id := range gates {
				n := &p.nodes[id]
				switch n.kind {
				case kMul:
					r.vals[id] = eng.Mul(r.vals[n.a], r.vals[n.b])
				case kInner:
					as, bs := gather(r.vals, n.args), gather(r.vals, n.args2)
					r.vals[id] = eng.InnerProduct(as, bs)
				case kDot:
					r.vals[id] = eng.Dot(r.vecs[n.a], r.vecs[n.b])
				}
				eng.AdvanceRound()
			}
		} else {
			items := make([]bgw.MulItem, len(gates))
			for i, id := range gates {
				n := &p.nodes[id]
				switch n.kind {
				case kMul:
					items[i] = bgw.MulItem{Kind: bgw.MulScalar, A: r.vals[n.a], B: r.vals[n.b]}
				case kInner:
					items[i] = bgw.MulItem{Kind: bgw.MulInner, As: gather(r.vals, n.args), Bs: gather(r.vals, n.args2)}
				case kDot:
					items[i] = bgw.MulItem{Kind: bgw.MulDot, VA: r.vecs[n.a], VB: r.vecs[n.b]}
				}
			}
			for i, out := range eng.MulBatch(items) {
				r.vals[gates[i]] = out
			}
			eng.AdvanceRound()
		}
		levelDelta(sp)
		for _, id := range p.locals[lvl] {
			if err := p.evalLocal(eng, bind, r, id); err != nil {
				return nil, err
			}
		}
	}
	if p.hasOpens() {
		sp := obs.StartTracedSpan(rec, "circuit.open", exec.ID(),
			obs.Int("opens", len(p.opens)), obs.Int("open_vecs", len(p.openVecs)))
		if opts.Eager {
			r.opened = make([]int64, len(p.opens))
			for i, id := range p.opens {
				r.opened[i] = eng.Open(r.vals[p.nodes[id].a])
			}
		} else if len(p.opens) > 0 {
			vals := make([]bgw.Val, len(p.opens))
			for i, id := range p.opens {
				vals[i] = r.vals[p.nodes[id].a]
			}
			r.opened = eng.OpenBatch(vals)
		}
		r.openedVecs = make([][]int64, len(p.openVecs))
		for i, id := range p.openVecs {
			r.openedVecs[i] = eng.OpenVec(r.vecs[p.nodes[id].a])
		}
		eng.AdvanceRound()
		levelDelta(sp)
	}
	exec.End()
	return r, nil
}

// evalLocal materializes one leaf or linear node on the engine.
func (p *Plan) evalLocal(eng bgw.Evaluator, bind Bindings, r *Result, id int) error {
	n := &p.nodes[id]
	switch n.kind {
	case kZero:
		r.vals[id] = eng.Zero()
	case kInput:
		r.vals[id] = eng.Input(n.owner, n.c)
	case kInputElem:
		r.vals[id] = eng.InputElem(n.owner, n.elem)
	case kInputVec:
		r.vecs[id] = eng.InputVec(n.owner, n.ints)
	case kInputParam:
		r.vals[id] = eng.Input(n.owner, bind.Inputs[n.param])
	case kInputVecParam:
		vs := bind.InputVecs[n.param]
		if len(vs) != n.n {
			return fmt.Errorf("circuit: input-vec param %d has %d elements, plan wants %d", n.param, len(vs), n.n)
		}
		r.vecs[id] = eng.InputVec(n.owner, vs)
	case kExtVal:
		if bind.Ext[n.param] == nil {
			return fmt.Errorf("circuit: external value %d unbound", n.param)
		}
		r.vals[id] = bind.Ext[n.param]
	case kExtVec:
		v := bind.ExtVecs[n.param]
		if v == nil {
			return fmt.Errorf("circuit: external vector %d unbound", n.param)
		}
		if v.Len() != n.n {
			return fmt.Errorf("circuit: external vector %d has %d elements, plan wants %d", n.param, v.Len(), n.n)
		}
		r.vecs[id] = v
	case kAdd:
		r.vals[id] = eng.Add(r.vals[n.a], r.vals[n.b])
	case kSub:
		r.vals[id] = eng.Sub(r.vals[n.a], r.vals[n.b])
	case kAddConst:
		r.vals[id] = eng.AddConst(r.vals[n.a], n.c)
	case kMulConst:
		r.vals[id] = eng.MulConst(r.vals[n.a], n.c)
	case kAddConstP:
		r.vals[id] = eng.AddConst(r.vals[n.a], bind.Consts[n.param])
	case kMulConstP:
		r.vals[id] = eng.MulConst(r.vals[n.a], bind.Consts[n.param])
	case kAt:
		r.vals[id] = eng.At(r.vecs[n.a], n.k)
	case kAddVec:
		r.vecs[id] = eng.AddVec(r.vecs[n.a], r.vecs[n.b])
	case kFromScalars:
		r.vecs[id] = eng.FromScalars(gather(r.vals, n.args))
	default:
		return fmt.Errorf("circuit: node %d kind %d is not local", id, n.kind)
	}
	return nil
}

func gather(vals []bgw.Val, ids []int) []bgw.Val {
	out := make([]bgw.Val, len(ids))
	for i, id := range ids {
		out[i] = vals[id]
	}
	return out
}
