package circuit

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"sqm/internal/bgw"
	"sqm/internal/transport"
)

// randomCircuit records a random DAG into b: literal inputs, the full
// linear gate surface, scalar and fused multiplications, and a few
// opened outputs. The shape is fully determined by rng, so the same
// seed rebuilds the same circuit for every backend.
func randomCircuit(b *Builder, rng *rand.Rand) {
	const p = 4
	vals := []bgw.Val{b.Zero()}
	var vecs []bgw.Vec
	for i, n := 0, 2+rng.Intn(4); i < n; i++ {
		vals = append(vals, b.Input(rng.Intn(p), int64(rng.Intn(2001)-1000)))
	}
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		vs := make([]int64, 2+rng.Intn(3))
		for k := range vs {
			vs[k] = int64(rng.Intn(201) - 100)
		}
		vecs = append(vecs, b.InputVec(rng.Intn(p), vs))
	}
	pick := func() bgw.Val { return vals[rng.Intn(len(vals))] }
	pickVecPair := func() (bgw.Vec, bgw.Vec) {
		v1 := vecs[rng.Intn(len(vecs))]
		var cands []bgw.Vec
		for _, v2 := range vecs {
			if v2.Len() == v1.Len() {
				cands = append(cands, v2)
			}
		}
		return v1, cands[rng.Intn(len(cands))]
	}
	for i, ops := 0, 5+rng.Intn(20); i < ops; i++ {
		switch rng.Intn(10) {
		case 0:
			vals = append(vals, b.Add(pick(), pick()))
		case 1:
			vals = append(vals, b.Sub(pick(), pick()))
		case 2:
			vals = append(vals, b.AddConst(pick(), int64(rng.Intn(101)-50)))
		case 3:
			vals = append(vals, b.MulConst(pick(), int64(rng.Intn(21)-10)))
		case 4:
			vals = append(vals, b.Mul(pick(), pick()))
		case 5:
			as := make([]bgw.Val, 1+rng.Intn(3))
			bs := make([]bgw.Val, len(as))
			for k := range as {
				as[k], bs[k] = pick(), pick()
			}
			vals = append(vals, b.InnerProduct(as, bs))
		case 6:
			v := vecs[rng.Intn(len(vecs))]
			vals = append(vals, b.At(v, rng.Intn(v.Len())))
		case 7:
			v1, v2 := pickVecPair()
			vecs = append(vecs, b.AddVec(v1, v2))
		case 8:
			v1, v2 := pickVecPair()
			vals = append(vals, b.Dot(v1, v2))
		case 9:
			xs := make([]bgw.Val, 1+rng.Intn(3))
			for k := range xs {
				xs[k] = pick()
			}
			vecs = append(vecs, b.FromScalars(xs))
		}
	}
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		b.OpenIdx(pick())
	}
	b.OpenVecIdx(vecs[rng.Intn(len(vecs))])
}

// checkEquivalence compiles the seed's random circuit and demands
// bit-identical opened outputs from every execution strategy: the
// plain interpreter (the oracle), the planned executor on the
// monolithic and actor engines, and eager gate-by-gate execution.
// Measured rounds must equal the plan's predictions.
func checkEquivalence(t *testing.T, seed int64) {
	t.Helper()
	b := NewBuilder(4, 0)
	randomCircuit(b, rand.New(rand.NewSource(seed)))
	plan := b.MustCompile()

	want, err := plan.Plain(Bindings{})
	if err != nil {
		t.Fatalf("seed %d: plain: %v", seed, err)
	}

	check := func(name string, res *Result, rounds int64, wantRounds int) {
		if len(res.opened) != len(want.opened) {
			t.Fatalf("seed %d: %s opened %d values, plain %d", seed, name, len(res.opened), len(want.opened))
		}
		for i := range want.opened {
			if res.opened[i] != want.opened[i] {
				t.Errorf("seed %d: %s output %d = %d, plain %d", seed, name, i, res.opened[i], want.opened[i])
			}
		}
		for i := range want.openedVecs {
			for k := range want.openedVecs[i] {
				if res.openedVecs[i][k] != want.openedVecs[i][k] {
					t.Errorf("seed %d: %s vec %d[%d] = %d, plain %d", seed, name, i, k, res.openedVecs[i][k], want.openedVecs[i][k])
				}
			}
		}
		if rounds != int64(wantRounds) {
			t.Errorf("seed %d: %s rounds = %d, want %d", seed, name, rounds, wantRounds)
		}
	}

	// Worker-pool sweep: the parallel level executor must be invisible
	// in everything but wall-clock — bit-identical outputs and unchanged
	// round/frame counts for every pool size, with workers=1 (the serial
	// executor) as the baseline.
	sweep := []int{1, 2, runtime.NumCPU()}

	var monoFrames int64
	for wi, w := range sweep {
		name := fmt.Sprintf("mono-planned-w%d", w)
		mono, err := bgw.NewEngine(bgw.Config{Parties: 4, Seed: uint64(seed) ^ 0x9e37, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		mres, err := plan.ExecuteOpts(bgw.Eval(mono), Bindings{}, ExecOptions{Workers: w})
		if err != nil {
			t.Fatalf("seed %d: %s: %v", seed, name, err)
		}
		check(name, mres, mono.Stats().Rounds, plan.Rounds())
		if wi == 0 {
			monoFrames = mono.Stats().Frames
		} else if f := mono.Stats().Frames; f != monoFrames {
			t.Errorf("seed %d: %s frames = %d, serial executor sent %d", seed, name, f, monoFrames)
		}
	}

	var actorFrames int64
	for wi, w := range sweep {
		name := fmt.Sprintf("actor-planned-w%d", w)
		ares, rounds, frames := func() (*Result, int64, int64) {
			actor, err := bgw.NewActorEngine(bgw.Config{Parties: 4, Seed: uint64(seed) ^ 0x51f1, Workers: w}, transport.NewChanMesh(4))
			if err != nil {
				t.Fatal(err)
			}
			defer actor.Close()
			res, err := plan.ExecuteOpts(actor, Bindings{}, ExecOptions{Workers: w})
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, name, err)
			}
			if err := actor.Err(); err != nil {
				t.Fatalf("seed %d: %s engine: %v", seed, name, err)
			}
			s := actor.Stats()
			return res, s.Rounds, s.Frames
		}()
		check(name, ares, rounds, plan.Rounds())
		if wi == 0 {
			actorFrames = frames
		} else if frames != actorFrames {
			t.Errorf("seed %d: %s frames = %d, serial executor sent %d", seed, name, frames, actorFrames)
		}
	}

	eager, err := bgw.NewEngine(bgw.Config{Parties: 4, Seed: uint64(seed) ^ 0x2c85})
	if err != nil {
		t.Fatal(err)
	}
	eres, err := plan.ExecuteOpts(bgw.Eval(eager), Bindings{}, ExecOptions{Eager: true})
	if err != nil {
		t.Fatalf("seed %d: eager: %v", seed, err)
	}
	check("mono-eager", eres, eager.Stats().Rounds, plan.EagerRounds())
}

// TestPlanEquivalenceRandomCircuits is the differential test: many
// random DAGs, four execution strategies, all bit-identical.
func TestPlanEquivalenceRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		checkEquivalence(t, seed)
	}
}

// FuzzPlanEquivalence lets the fuzzer hunt for circuit shapes where
// the scheduler, the batched executor, and the eager path disagree.
func FuzzPlanEquivalence(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkEquivalence(t, seed)
	})
}
