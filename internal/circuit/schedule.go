package circuit

import (
	"fmt"

	"sqm/internal/invariant"
)

// Plan is a compiled, level-scheduled circuit. It is immutable and
// engine-agnostic: the same plan executes against the monolithic
// engine, the actor engine, or the plain interpreter, with outputs
// bit-identical across all of them.
type Plan struct {
	p, t  int
	nodes []node

	depth    int
	muls     [][]int // muls[L] = multiplicative gates of level L+1, id order
	locals   [][]int // locals[L] = non-mul compute nodes of level L, id order
	opens    []int   // kOpen ids in record order
	openVecs []int   // kOpenVec ids in record order

	nConsts, nInputs, nInputVecs, nExt, nExtVecs int
	hasInputs                                    bool
}

// Compile levels the recorded DAG by multiplicative depth and returns
// the execution plan. The leveling rule: inputs, external bindings and
// constants sit at level 0; local (linear) operations inherit the
// maximum level of their operands; multiplicative gates (Mul,
// InnerProduct, Dot) take the maximum operand level plus one. All
// gates of a level are independent by construction and execute as one
// batched communication round.
func (b *Builder) Compile() (*Plan, error) {
	p := &Plan{
		p: b.p, t: b.t,
		nodes:    append([]node(nil), b.nodes...),
		opens:    append([]int(nil), b.opens...),
		openVecs: append([]int(nil), b.openVecs...),
		nConsts:  b.nConsts, nInputs: b.nInputs, nInputVecs: b.nInputVecs,
		nExt: b.nExt, nExtVecs: b.nExtVecs,
	}
	for id := range p.nodes {
		n := &p.nodes[id]
		lvl := 0
		max := func(op int) {
			if op < 0 || op >= id {
				// Record order is topological; a forward reference is a
				// corrupted handle.
				panic(invariant.Violation("circuit: node %d references %d out of order", id, op))
			}
			if l := p.nodes[op].level; l > lvl {
				lvl = l
			}
		}
		switch n.kind {
		case kZero, kInput, kInputElem, kInputVec, kInputParam, kInputVecParam, kExtVal, kExtVec:
			// leaves: level 0
		case kAdd, kSub, kAddVec, kMul, kDot:
			max(n.a)
			max(n.b)
		case kAddConst, kMulConst, kAddConstP, kMulConstP, kAt, kOpen, kOpenVec:
			max(n.a)
		case kInner, kFromScalars:
			for _, op := range n.args {
				max(op)
			}
			for _, op := range n.args2 {
				max(op)
			}
		default:
			return nil, fmt.Errorf("circuit: unknown node kind %d", n.kind)
		}
		if n.kind.isMul() {
			lvl++
		}
		n.level = lvl
		if n.kind.isInput() {
			p.hasInputs = true
		}
		if lvl > p.depth {
			p.depth = lvl
		}
	}
	p.muls = make([][]int, p.depth)
	p.locals = make([][]int, p.depth+1)
	for id := range p.nodes {
		n := &p.nodes[id]
		switch {
		case n.kind == kOpen || n.kind == kOpenVec:
			// outputs run in the final opening round, already listed
		case n.kind.isMul():
			p.muls[n.level-1] = append(p.muls[n.level-1], id)
		default:
			p.locals[n.level] = append(p.locals[n.level], id)
		}
	}
	return p, nil
}

// MustCompile is Compile for statically known-good circuits.
func (b *Builder) MustCompile() *Plan {
	p, err := b.Compile()
	if err != nil {
		panic(invariant.Violation("circuit: %v", err))
	}
	return p
}

// Depth returns the circuit's multiplicative depth.
func (p *Plan) Depth() int { return p.depth }

// Gates returns the total node count of the IR.
func (p *Plan) Gates() int { return len(p.nodes) }

// MulGates returns the number of multiplicative gates (each costs one
// degree-reduction resharing; eager execution pays one round per gate).
func (p *Plan) MulGates() int {
	n := 0
	for _, lvl := range p.muls {
		n += len(lvl)
	}
	return n
}

// Opens returns the number of scalar output gates.
func (p *Plan) Opens() int { return len(p.opens) }

// hasOpens reports whether the plan ends with an opening round.
func (p *Plan) hasOpens() bool { return len(p.opens) > 0 || len(p.openVecs) > 0 }

// Rounds returns the wire rounds of one planned execution: one input
// round (when the plan shares fresh inputs), one batched round per
// multiplicative level, and one batched opening round (when the plan
// reveals outputs). This is the quantity the paper's cost model charges
// 0.1 s for — planned execution makes it a function of depth, not of
// gate count.
func (p *Plan) Rounds() int {
	r := p.depth
	if p.hasInputs {
		r++
	}
	if p.hasOpens() {
		r++
	}
	return r
}

// EagerRounds returns the wire rounds of gate-by-gate execution (one
// round per multiplicative gate), the baseline the scheduler improves
// on.
func (p *Plan) EagerRounds() int {
	r := p.MulGates()
	if p.hasInputs {
		r++
	}
	if p.hasOpens() {
		r++
	}
	return r
}
