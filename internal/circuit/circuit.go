// Package circuit compiles SQM protocols to level-scheduled execution
// plans. A recording Builder implements the bgw.Evaluator gate surface
// but captures every operation into a DAG IR instead of executing it;
// Compile levels the DAG by multiplicative depth; the resulting Plan
// executes against any real bgw.Evaluator, running each level as ONE
// batched communication round — all of a level's degree reductions
// travel in a single reshare exchange (one frame per ordered party
// pair), and the round count derives from the plan's structure instead
// of hand-placed AdvanceRound calls.
//
// Protocols build their plan once and re-execute it per epoch or batch
// with fresh bindings: public constants (ConstParam), per-run secret
// inputs (InputParam/InputVecParam) and pre-existing engine shares
// (ExtVal/ExtVec) are plan parameters filled in at execution time.
//
// Because BGW computes exactly, opened values are bit-identical across
// gate orderings and batchings — the plan executor is free to reorder
// and fuse communication without changing any output.
package circuit

import (
	"time"

	"sqm/internal/bgw"
	"sqm/internal/field"
	"sqm/internal/invariant"
	"sqm/internal/obs"
)

// nodeKind enumerates the IR node types.
type nodeKind uint8

const (
	kZero nodeKind = iota
	kInput
	kInputElem
	kInputVec
	kInputParam
	kInputVecParam
	kExtVal
	kExtVec
	kAdd
	kSub
	kAddConst
	kMulConst
	kAddConstP
	kMulConstP
	kMul
	kInner
	kDot
	kAt
	kAddVec
	kFromScalars
	kOpen
	kOpenVec
)

// isMul reports whether the node costs a degree-reduction resharing.
func (k nodeKind) isMul() bool { return k == kMul || k == kInner || k == kDot }

// isInput reports whether the node costs the input sharing round.
func (k nodeKind) isInput() bool {
	switch k {
	case kInput, kInputElem, kInputVec, kInputParam, kInputVecParam:
		return true
	}
	return false
}

// isVec reports whether the node produces a vector handle.
func (k nodeKind) isVec() bool {
	switch k {
	case kInputVec, kInputVecParam, kExtVec, kAddVec, kFromScalars:
		return true
	}
	return false
}

// node is one IR operation. Operand fields are interpreted per kind.
type node struct {
	kind  nodeKind
	a, b  int        // operand node ids
	k     int        // element index (kAt)
	c     int64      // public constant (kInput, kAddConst, kMulConst)
	elem  field.Elem // raw field input (kInputElem)
	owner int        // input owner party
	param int        // parameter slot (const/input/ext params)
	ints  []int64    // literal input vector (kInputVec)
	args  []int      // operand list A (kInner, kFromScalars)
	args2 []int      // operand list B (kInner)
	n     int        // vector length of vector-producing nodes
	level int        // multiplicative level, assigned by Compile
}

// Val is a handle to one recorded scalar node; it is passed around as a
// bgw.Val so recorded protocols run unchanged against the Builder.
type Val struct {
	b  *Builder
	id int
}

// Vec is a handle to one recorded vector node.
type Vec struct {
	b  *Builder
	id int
	n  int
}

// Len returns the recorded vector length.
func (v Vec) Len() int { return v.n }

// ConstID names one public-constant parameter of a plan.
type ConstID int

// Builder records the gate stream of one protocol run into a DAG. It
// implements bgw.Evaluator, so protocol code written against the
// engines records unchanged; operations that would reveal values (Open,
// OpenVec) record an output gate and return zeros — real values come
// from Result.Opened after execution.
type Builder struct {
	p, t  int
	nodes []node
	rec   obs.Recorder // optional; surfaced through Recorder()

	nConsts, nInputs, nInputVecs, nExt, nExtVecs int
	opens, openVecs                              []int // node ids in record order
}

// NewBuilder starts recording a circuit for a P-party deployment with
// threshold t (0 means floor((P−1)/2), matching bgw.Config).
func NewBuilder(parties, threshold int) *Builder {
	if threshold == 0 {
		threshold = (parties - 1) / 2
	}
	return &Builder{p: parties, t: threshold}
}

func (b *Builder) add(n node) int {
	id := len(b.nodes)
	b.nodes = append(b.nodes, n)
	return id
}

func (b *Builder) val(x bgw.Val) int {
	v, ok := x.(Val)
	if !ok || v.b != b {
		panic(invariant.Violation("circuit: value handle from a different builder"))
	}
	return v.id
}

func (b *Builder) vec(x bgw.Vec) Vec {
	v, ok := x.(Vec)
	if !ok || v.b != b {
		panic(invariant.Violation("circuit: vector handle from a different builder"))
	}
	return v
}

func (b *Builder) checkParty(i int) {
	if i < 0 || i >= b.p {
		panic(invariant.Violation("circuit: party %d out of range [0,%d)", i, b.p))
	}
}

// ---- plan parameters ----

// ConstParam declares a public-constant parameter, bound per execution
// via Bindings.Consts. Use with AddConstP/MulConstP for coefficients
// that change between runs of the same circuit shape.
func (b *Builder) ConstParam() ConstID {
	id := ConstID(b.nConsts)
	b.nConsts++
	return id
}

// InputParam declares a per-execution secret scalar input owned by
// party owner, bound via Bindings.Inputs in declaration order.
func (b *Builder) InputParam(owner int) bgw.Val {
	b.checkParty(owner)
	p := b.nInputs
	b.nInputs++
	return Val{b: b, id: b.add(node{kind: kInputParam, owner: owner, param: p})}
}

// InputVecParam declares a per-execution secret vector input of length
// n owned by party owner, bound via Bindings.InputVecs.
func (b *Builder) InputVecParam(owner, n int) bgw.Vec {
	b.checkParty(owner)
	p := b.nInputVecs
	b.nInputVecs++
	return Vec{b: b, id: b.add(node{kind: kInputVecParam, owner: owner, param: p, n: n}), n: n}
}

// ExtVal declares a scalar that already lives inside the executing
// engine (e.g. a share produced by an earlier plan), bound via
// Bindings.Ext. External values join the DAG at level 0 without
// costing the input round.
func (b *Builder) ExtVal() bgw.Val {
	p := b.nExt
	b.nExt++
	return Val{b: b, id: b.add(node{kind: kExtVal, param: p})}
}

// ExtVec declares an engine-resident vector of length n, bound via
// Bindings.ExtVecs.
func (b *Builder) ExtVec(n int) bgw.Vec {
	p := b.nExtVecs
	b.nExtVecs++
	return Vec{b: b, id: b.add(node{kind: kExtVec, param: p, n: n}), n: n}
}

// AddConstP returns a sharing of a + c for the constant parameter c.
func (b *Builder) AddConstP(a bgw.Val, c ConstID) bgw.Val {
	if int(c) >= b.nConsts {
		panic(invariant.Violation("circuit: undeclared const param %d", c))
	}
	return Val{b: b, id: b.add(node{kind: kAddConstP, a: b.val(a), param: int(c)})}
}

// MulConstP returns a sharing of c·a for the constant parameter c.
func (b *Builder) MulConstP(a bgw.Val, c ConstID) bgw.Val {
	if int(c) >= b.nConsts {
		panic(invariant.Violation("circuit: undeclared const param %d", c))
	}
	return Val{b: b, id: b.add(node{kind: kMulConstP, a: b.val(a), param: int(c)})}
}

// OpenIdx records an output gate for v and returns its index into
// Result.Opened. This is the recording counterpart of Open for callers
// that need the value after execution.
func (b *Builder) OpenIdx(v bgw.Val) int {
	b.opens = append(b.opens, b.add(node{kind: kOpen, a: b.val(v)}))
	return len(b.opens) - 1
}

// OpenVecIdx records a vector output gate and returns its index into
// Result.OpenedVec.
func (b *Builder) OpenVecIdx(v bgw.Vec) int {
	cv := b.vec(v)
	b.openVecs = append(b.openVecs, b.add(node{kind: kOpenVec, a: cv.id, n: cv.n}))
	return len(b.openVecs) - 1
}

// ---- bgw.Evaluator surface (recording) ----

// Parties returns P.
func (b *Builder) Parties() int { return b.p }

// Threshold returns t.
func (b *Builder) Threshold() int { return b.t }

// Latency returns 0: the Builder never communicates.
func (b *Builder) Latency() time.Duration { return 0 }

// Stats returns zeros: recording costs nothing.
func (b *Builder) Stats() bgw.Stats { return bgw.Stats{} }

// ResetStats is a no-op.
func (b *Builder) ResetStats() {}

// AdvanceRound is a no-op: rounds derive from the compiled plan's
// levels, not from caller bookkeeping.
func (b *Builder) AdvanceRound() {}

// SetRecorder attaches a telemetry recorder to the Builder (and to the
// plans it compiles, through the recorded Evaluator surface). Returns
// the Builder for construction chaining.
func (b *Builder) SetRecorder(rec obs.Recorder) *Builder {
	b.rec = rec
	return b
}

// Recorder returns the attached recorder, or the no-op sink.
func (b *Builder) Recorder() obs.Recorder { return obs.Or(b.rec) }

// Err always reports healthy.
func (b *Builder) Err() error { return nil }

// Close is a no-op.
func (b *Builder) Close() error { return nil }

// Input records a literal secret input.
func (b *Builder) Input(owner int, v int64) bgw.Val {
	b.checkParty(owner)
	return Val{b: b, id: b.add(node{kind: kInput, owner: owner, c: v})}
}

// InputElem records a literal raw-field input.
func (b *Builder) InputElem(owner int, e field.Elem) bgw.Val {
	b.checkParty(owner)
	return Val{b: b, id: b.add(node{kind: kInputElem, owner: owner, elem: e})}
}

// InputVec records a literal secret vector input.
func (b *Builder) InputVec(owner int, vs []int64) bgw.Vec {
	b.checkParty(owner)
	ints := append([]int64(nil), vs...)
	return Vec{b: b, id: b.add(node{kind: kInputVec, owner: owner, ints: ints, n: len(vs)}), n: len(vs)}
}

// Zero records a trivial sharing of 0.
func (b *Builder) Zero() bgw.Val { return Val{b: b, id: b.add(node{kind: kZero})} }

// Add records a + b.
func (b *Builder) Add(a, c bgw.Val) bgw.Val {
	return Val{b: b, id: b.add(node{kind: kAdd, a: b.val(a), b: b.val(c)})}
}

// Sub records a − b.
func (b *Builder) Sub(a, c bgw.Val) bgw.Val {
	return Val{b: b, id: b.add(node{kind: kSub, a: b.val(a), b: b.val(c)})}
}

// AddConst records a + c.
func (b *Builder) AddConst(a bgw.Val, c int64) bgw.Val {
	return Val{b: b, id: b.add(node{kind: kAddConst, a: b.val(a), c: c})}
}

// MulConst records c·a.
func (b *Builder) MulConst(a bgw.Val, c int64) bgw.Val {
	return Val{b: b, id: b.add(node{kind: kMulConst, a: b.val(a), c: c})}
}

// Mul records the multiplicative gate a·b.
func (b *Builder) Mul(a, c bgw.Val) bgw.Val {
	return Val{b: b, id: b.add(node{kind: kMul, a: b.val(a), b: b.val(c)})}
}

// InnerProduct records the fused gate Σ_k as[k]·bs[k].
func (b *Builder) InnerProduct(as, bs []bgw.Val) bgw.Val {
	if len(as) != len(bs) {
		panic(invariant.Violation("circuit: InnerProduct length mismatch"))
	}
	args := make([]int, len(as))
	args2 := make([]int, len(bs))
	for i := range as {
		args[i] = b.val(as[i])
		args2[i] = b.val(bs[i])
	}
	return Val{b: b, id: b.add(node{kind: kInner, args: args, args2: args2})}
}

// AdditiveShares cannot be recorded — the conversion reveals engine
// share state the Builder does not have. It returns zero addends; run
// the compiled plan and use Result.ValOf with the real engine instead.
func (b *Builder) AdditiveShares(s bgw.Val, weights []field.Elem) []field.Elem {
	b.val(s)
	return make([]field.Elem, b.p)
}

// Open records an output gate and returns 0 — recorded circuits never
// see real values. Use OpenIdx to keep the index into Result.Opened.
func (b *Builder) Open(s bgw.Val) int64 {
	b.OpenIdx(s)
	return 0
}

// At records the element extraction v[k].
func (b *Builder) At(v bgw.Vec, k int) bgw.Val {
	cv := b.vec(v)
	if k < 0 || k >= cv.n {
		panic(invariant.Violation("circuit: vector index out of range"))
	}
	return Val{b: b, id: b.add(node{kind: kAt, a: cv.id, k: k})}
}

// AddVec records the element-wise sum a + b.
func (b *Builder) AddVec(a, c bgw.Vec) bgw.Vec {
	ca, cc := b.vec(a), b.vec(c)
	if ca.n != cc.n {
		panic(invariant.Violation("circuit: vector length mismatch"))
	}
	return Vec{b: b, id: b.add(node{kind: kAddVec, a: ca.id, b: cc.id, n: ca.n}), n: ca.n}
}

// Dot records the fused inner product ⟨a, b⟩.
func (b *Builder) Dot(a, c bgw.Vec) bgw.Val {
	ca, cc := b.vec(a), b.vec(c)
	if ca.n != cc.n {
		panic(invariant.Violation("circuit: vector length mismatch"))
	}
	return Val{b: b, id: b.add(node{kind: kDot, a: ca.id, b: cc.id})}
}

// DotBatch records one Dot gate per pair; the scheduler re-batches all
// gates of a level anyway, so the grouping hint is not kept.
func (b *Builder) DotBatch(pairs []bgw.VecPair, workers int) []bgw.Val {
	_ = workers
	out := make([]bgw.Val, len(pairs))
	for i, p := range pairs {
		out[i] = b.Dot(p.A, p.B)
	}
	return out
}

// MulBatch records the constituent gates individually.
func (b *Builder) MulBatch(items []bgw.MulItem) []bgw.Val {
	out := make([]bgw.Val, len(items))
	for i, it := range items {
		switch it.Kind {
		case bgw.MulScalar:
			out[i] = b.Mul(it.A, it.B)
		case bgw.MulInner:
			out[i] = b.InnerProduct(it.As, it.Bs)
		case bgw.MulDot:
			out[i] = b.Dot(it.VA, it.VB)
		default:
			panic(invariant.Violation("circuit: unknown MulKind %d", it.Kind))
		}
	}
	return out
}

// OpenBatch records one output gate per value and returns zeros.
func (b *Builder) OpenBatch(vals []bgw.Val) []int64 {
	for _, v := range vals {
		b.OpenIdx(v)
	}
	return make([]int64, len(vals))
}

// OpenVec records a vector output gate and returns zeros. Use
// OpenVecIdx to keep the index into Result.OpenedVec.
func (b *Builder) OpenVec(v bgw.Vec) []int64 {
	b.OpenVecIdx(v)
	return make([]int64, b.vec(v).n)
}

// FromScalars records the packing of scalars into a vector.
func (b *Builder) FromScalars(xs []bgw.Val) bgw.Vec {
	args := make([]int, len(xs))
	for i := range xs {
		args[i] = b.val(xs[i])
	}
	return Vec{b: b, id: b.add(node{kind: kFromScalars, args: args, n: len(xs)}), n: len(xs)}
}

var _ bgw.Evaluator = (*Builder)(nil)
