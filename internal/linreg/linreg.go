// Package linreg extends SQM to ridge (linear) regression — a third
// instantiation beyond the paper's PCA and logistic regression, and one
// that fits the framework *exactly*: the sufficient statistics
//
//	A = XᵀX,  b = Xᵀy
//
// are degree-2 polynomial aggregates of the record (x, y), so no Taylor
// approximation is needed. The clients run the covariance protocol of
// internal/core on the augmented matrix [X | y]; the server extracts
// (Ã, b̃) from the noisy Gram matrix and solves the ridge system
// (Ã + λI)·w = b̃. This is the distributed-DP analogue of the classic
// sufficient-statistics-perturbation mechanism, which also serves as
// the centralized baseline here.
package linreg

import (
	"fmt"
	"math"

	"sqm/internal/core"
	"sqm/internal/dp"
	"sqm/internal/linalg"
	"sqm/internal/mathx"
	"sqm/internal/obs"
	"sqm/internal/pca"
	"sqm/internal/randx"
	"sqm/internal/vfl"
)

// Config parameterizes one private regression fit.
type Config struct {
	Eps   float64 // target server-observed ε
	Delta float64 // target δ
	C     float64 // per-record feature norm bound ‖x‖₂ ≤ C
	B     float64 // label magnitude bound |y| ≤ B
	Gamma float64 // SQM scaling parameter (SQM only)
	// Lambda is the ridge regularizer; it also absorbs the (slight)
	// indefiniteness the symmetric noise can introduce. 0 means 0.1·m.
	Lambda float64
	Seed   uint64

	Engine  core.EngineKind
	Parties int
	// Fault carries the fault-tolerance knobs (receive deadlines, dial
	// retries) down to the engine and mesh.
	Fault core.FaultConfig

	// Recorder is an optional telemetry sink threaded through to the
	// MPC engine and transport (nil disables).
	Recorder obs.Recorder

	// Trace is an optional distributed-tracing context: events gain
	// (trace, party, lclock) stamps and land in per-party flight
	// recorders (nil disables).
	Trace *obs.TraceContext
}

func (c *Config) validate() error {
	if c.C <= 0 || c.B <= 0 {
		return fmt.Errorf("linreg: bounds must be positive (C=%v, B=%v)", c.C, c.B)
	}
	return nil
}

func (c *Config) lambda(m int) float64 {
	if c.Lambda > 0 {
		return c.Lambda
	}
	return 0.1 * float64(m)
}

// Model is a fitted linear predictor ŷ = ⟨w, x⟩.
type Model struct {
	W []float64
}

// Predict returns ⟨w, x⟩.
func (m *Model) Predict(x []float64) float64 { return linalg.Dot(m.W, x) }

// MSE is the mean squared error on (x, y).
func MSE(m *Model, x *linalg.Matrix, y []float64) float64 {
	if x.Rows == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < x.Rows; i++ {
		d := m.Predict(x.Row(i)) - y[i]
		sum += d * d
	}
	return sum / float64(x.Rows)
}

// R2 is the coefficient of determination on (x, y).
func R2(m *Model, x *linalg.Matrix, y []float64) float64 {
	if x.Rows == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := 0; i < x.Rows; i++ {
		d := m.Predict(x.Row(i)) - y[i]
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if mathx.EqualWithin(ssTot, 0, 0) {
		return 0
	}
	return 1 - ssRes/ssTot
}

// augment stacks the label as one more column: the vertical partition
// where the label owner is simply the (d+1)-th client.
func augment(x *linalg.Matrix, y []float64) *linalg.Matrix {
	out := linalg.NewMatrix(x.Rows, x.Cols+1)
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), x.Row(i))
		out.Set(i, x.Cols, y[i])
	}
	return out
}

// solveRidge solves (A + λI)w = b, escalating λ if the noisy A is not
// positive definite.
func solveRidge(a *linalg.Matrix, b []float64, lambda float64) ([]float64, error) {
	for attempt := 0; attempt < 8; attempt++ {
		w, err := linalg.SolveSPD(a.AddDiagonal(lambda), b)
		if err == nil {
			return w, nil
		}
		lambda *= 10
	}
	return nil, fmt.Errorf("linreg: system stayed indefinite up to lambda=%v", lambda)
}

// fromGram extracts (A, b) from the Gram matrix of [X | y] and solves
// the ridge system.
func fromGram(g *linalg.Matrix, lambda float64) (*Model, error) {
	d := g.Rows - 1
	a := linalg.NewMatrix(d, d)
	b := make([]float64, d)
	for i := 0; i < d; i++ {
		copy(a.Row(i), g.Row(i)[:d])
		b[i] = g.At(i, d)
	}
	w, err := solveRidge(a, b, lambda)
	if err != nil {
		return nil, err
	}
	return &Model{W: w}, nil
}

// Exact is the non-private ridge fit.
func Exact(x *linalg.Matrix, y []float64, cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return fromGram(augment(x, y).Gram(), cfg.lambda(x.Rows))
}

// SQM fits the model under distributed DP: the covariance protocol on
// the augmented matrix with Lemma 5's sensitivities at the augmented
// norm bound √(C² + B²).
func SQM(x *linalg.Matrix, y []float64, cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Gamma < 1 {
		return nil, fmt.Errorf("linreg: SQM needs gamma >= 1, got %v", cfg.Gamma)
	}
	full := augment(x, y)
	cAug := math.Sqrt(cfg.C*cfg.C + cfg.B*cfg.B)
	mu, err := pca.CalibrateMu(cfg.Eps, cfg.Delta, cfg.Gamma, cAug, full.Cols)
	if err != nil {
		return nil, err
	}
	gram, _, err := core.Covariance(full, core.Params{
		Gamma:    cfg.Gamma,
		Mu:       mu,
		Engine:   cfg.Engine,
		Parties:  cfg.Parties,
		Seed:     cfg.Seed,
		Recorder: cfg.Recorder,
		Trace:    cfg.Trace,
		Fault:    cfg.Fault,
	})
	if err != nil {
		return nil, err
	}
	return fromGram(gram, cfg.lambda(x.Rows))
}

// Central is the centralized sufficient-statistics-perturbation
// baseline: symmetric Gaussian noise on the Gram of [X | y], sensitivity
// C² + B².
func Central(x *linalg.Matrix, y []float64, cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sigma, err := dp.AnalyticGaussianSigma(cfg.Eps, cfg.Delta, cfg.C*cfg.C+cfg.B*cfg.B)
	if err != nil {
		return nil, err
	}
	g := augment(x, y).Gram()
	rng := randx.New(cfg.Seed ^ 0x1149)
	for a := 0; a < g.Rows; a++ {
		for b := a; b < g.Cols; b++ {
			z := rng.Gaussian(0, sigma)
			g.Set(a, b, g.At(a, b)+z)
			if a != b {
				g.Set(b, a, g.At(a, b))
			}
		}
	}
	return fromGram(g, cfg.lambda(x.Rows))
}

// Local is the VFL local-DP baseline: Algorithm 4 on [X | y], then an
// exact ridge fit on the noisy database.
func Local(x *linalg.Matrix, y []float64, cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cAug := math.Sqrt(cfg.C*cfg.C + cfg.B*cfg.B)
	sigma, err := vfl.CalibrateLocalSigma(cfg.Eps, cfg.Delta, cAug)
	if err != nil {
		return nil, err
	}
	noisy := vfl.PerturbDataset(augment(x, y), sigma, cfg.Seed^0x10ca2)
	return fromGram(noisy.Gram(), cfg.lambda(x.Rows))
}
