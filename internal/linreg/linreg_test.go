package linreg

import (
	"math"
	"testing"

	"sqm/internal/core"
	"sqm/internal/dataset"
	"sqm/internal/linalg"
)

func task(t *testing.T, mTrain, mTest, d int, seed uint64) *dataset.Dataset {
	t.Helper()
	return dataset.RegressionLike(mTrain, mTest, d, 0.1, seed)
}

func baseCfg() Config {
	return Config{Eps: 2, Delta: 1e-5, C: 1, B: 1, Gamma: 2048, Seed: 3}
}

func TestConfigValidation(t *testing.T) {
	ds := task(t, 20, 10, 4, 1)
	bad := baseCfg()
	bad.C = 0
	if _, err := Exact(ds.X, ds.Labels, bad); err == nil {
		t.Fatal("C=0 must be rejected")
	}
	bad = baseCfg()
	bad.B = -1
	if _, err := Central(ds.X, ds.Labels, bad); err == nil {
		t.Fatal("B<0 must be rejected")
	}
	bad = baseCfg()
	bad.Gamma = 0.5
	if _, err := SQM(ds.X, ds.Labels, bad); err == nil {
		t.Fatal("gamma<1 must be rejected")
	}
}

func TestModelMetrics(t *testing.T) {
	m := &Model{W: []float64{2, -1}}
	if got := m.Predict([]float64{3, 1}); got != 5 {
		t.Fatalf("Predict = %v", got)
	}
	x := linalg.FromRows([][]float64{{1, 0}, {0, 1}})
	y := []float64{2, -1}
	if got := MSE(m, x, y); got != 0 {
		t.Fatalf("MSE = %v", got)
	}
	if got := R2(m, x, y); got != 1 {
		t.Fatalf("R2 = %v", got)
	}
	// Constant targets: R2 defined as 0.
	if got := R2(m, x, []float64{1, 1}); got != 0 {
		t.Fatalf("R2 on constant targets = %v", got)
	}
	if got := MSE(m, linalg.NewMatrix(0, 2), nil); got != 0 {
		t.Fatalf("empty MSE = %v", got)
	}
}

func TestExactRecoversPlantedModel(t *testing.T) {
	ds := task(t, 3000, 1000, 20, 2)
	cfg := baseCfg()
	cfg.Lambda = 1 // light regularization
	m, err := Exact(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := R2(m, ds.TestX, ds.TestLabels); r2 < 0.6 {
		t.Fatalf("exact R2 = %v, want the planted signal recovered", r2)
	}
}

func TestSQMTracksCentralAndBeatsLocal(t *testing.T) {
	ds := task(t, 5000, 1500, 16, 3)
	var sqmR2, centralR2, localR2 float64
	const runs = 3
	for i := 0; i < runs; i++ {
		cfg := baseCfg()
		cfg.Seed = uint64(50 + i)
		s, err := SQM(ds.X, ds.Labels, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Central(ds.X, ds.Labels, cfg)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Local(ds.X, ds.Labels, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sqmR2 += R2(s, ds.TestX, ds.TestLabels) / runs
		centralR2 += R2(c, ds.TestX, ds.TestLabels) / runs
		localR2 += R2(l, ds.TestX, ds.TestLabels) / runs
	}
	if sqmR2 < centralR2-0.1 {
		t.Fatalf("SQM R2 %v too far below central %v", sqmR2, centralR2)
	}
	if sqmR2 <= localR2 {
		t.Fatalf("SQM R2 %v must beat local %v", sqmR2, localR2)
	}
}

func TestSQMImprovesWithGamma(t *testing.T) {
	ds := task(t, 3000, 1000, 12, 4)
	var prev float64 = -10
	for _, gamma := range []float64{2, 64, 2048} {
		var r2 float64
		const runs = 3
		for i := 0; i < runs; i++ {
			cfg := baseCfg()
			cfg.Gamma = gamma
			cfg.Seed = uint64(90 + i)
			m, err := SQM(ds.X, ds.Labels, cfg)
			if err != nil {
				t.Fatal(err)
			}
			r2 += R2(m, ds.TestX, ds.TestLabels) / runs
		}
		if r2 < prev-0.05 {
			t.Fatalf("gamma=%v: R2 %v regressed from %v", gamma, r2, prev)
		}
		prev = r2
	}
}

func TestSQMPlainAndBGWAgree(t *testing.T) {
	ds := task(t, 60, 20, 5, 5)
	cfg := baseCfg()
	cfg.Eps = 8
	a, err := SQM(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = core.EngineBGW
	cfg.Parties = 4
	b, err := SQM(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.W {
		if math.Abs(a.W[j]-b.W[j]) > 1e-12 {
			t.Fatalf("coord %d: %v vs %v", j, a.W[j], b.W[j])
		}
	}
}

func TestSolveRidgeEscalatesLambda(t *testing.T) {
	// Indefinite A: the escalation must eventually succeed.
	a := linalg.FromRows([][]float64{{-5, 0}, {0, -5}})
	w, err := solveRidge(a, []float64{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 {
		t.Fatal("malformed solution")
	}
}

func TestFromGramShapes(t *testing.T) {
	ds := task(t, 50, 10, 4, 6)
	g := augment(ds.X, ds.Labels).Gram()
	m, err := fromGram(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.W) != 4 {
		t.Fatalf("weights = %d, want d=4", len(m.W))
	}
}
