// Package pca implements the principal-component-analysis instantiation
// of SQM (§V-A) and the two baselines of the paper's Figure 2:
//
//   - SQM: distributed DP via the quantized covariance protocol of
//     package core, with the sensitivities of Lemma 5
//     (Δ₂ = γ²c² + n, Δ₁ = min(Δ₂², √d·Δ₂) for d = n²);
//   - Central: the Analyze-Gauss mechanism (Dwork et al.) — symmetric
//     Gaussian noise on the covariance, the performance upper limit;
//   - Local: Algorithm 4 — clients perturb their raw columns, the
//     server runs PCA on the noisy database.
//
// Utility is ‖X·V̂‖_F², evaluated against the true data.
package pca

import (
	"fmt"

	"sqm/internal/core"
	"sqm/internal/dp"
	"sqm/internal/linalg"
	"sqm/internal/mathx"
	"sqm/internal/obs"
	"sqm/internal/randx"
	"sqm/internal/vfl"
)

// Config parameterizes one PCA run.
type Config struct {
	K     int     // number of principal components
	Eps   float64 // target ε (server-observed); ignored by Exact
	Delta float64 // target δ
	C     float64 // per-record L2 norm bound (1 for the bundled datasets)
	Gamma float64 // SQM scaling parameter (SQM only)
	Seed  uint64

	// NumClients overrides the noise-contributor count (0: one client
	// per column, the paper's default).
	NumClients int
	// TopKIters bounds the subspace iteration for large n (0: 60).
	TopKIters int
	// Recorder is an optional telemetry sink threaded through to the
	// MPC engine and transport (nil disables).
	Recorder obs.Recorder
	// Trace is an optional distributed-tracing context: events gain
	// (trace, party, lclock) stamps and land in per-party flight
	// recorders (nil disables).
	Trace *obs.TraceContext
	// Engine selects the SQM evaluation backend (plain by default).
	Engine core.EngineKind
	// Parties is the BGW party count when Engine is EngineBGW.
	Parties int
	// Fault carries the fault-tolerance knobs (receive deadlines, dial
	// retries) down to the engine and mesh.
	Fault core.FaultConfig
	// ProjectPSD clamps the noisy covariance's negative eigenvalues to
	// zero before the subspace extraction — free post-processing that
	// can help at small ε. Small-n (Jacobi) path only.
	ProjectPSD bool
}

func (c *Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("pca: K must be >= 1, got %d", c.K)
	}
	if c.C <= 0 {
		return fmt.Errorf("pca: norm bound C must be positive, got %v", c.C)
	}
	return nil
}

// Result is a fitted subspace with its utility on the true data.
type Result struct {
	Subspace *linalg.Matrix // n x k, orthonormal columns
	Utility  float64        // ‖X·V̂‖_F²
	Mu       float64        // calibrated Skellam parameter (SQM only)
	Sigma    float64        // calibrated Gaussian scale (central/local only)
	Trace    *core.Trace    // protocol trace (SQM only)
}

// Utility computes ‖X·V‖_F².
func Utility(x, v *linalg.Matrix) float64 {
	return x.Mul(v).FrobeniusNormSq()
}

// topK extracts the principal k-dimensional subspace of a symmetric
// matrix, with the full Jacobi solver for small n and randomized
// subspace iteration for large n.
func topK(c *linalg.Matrix, k int, seed uint64, iters int) *linalg.Matrix {
	if iters <= 0 {
		iters = 60
	}
	n := c.Rows
	if k > n {
		k = n
	}
	if n <= 300 {
		e := linalg.SymEigen(c)
		v := linalg.NewMatrix(n, k)
		for j := 0; j < k; j++ {
			v.SetCol(j, e.Vectors.Col(j))
		}
		return v
	}
	return linalg.TopK(c, k, randx.New(seed^0x70b5), iters)
}

// gramOf computes XᵀX, switching to the CSR path when the data is
// sparse enough for the O(Σ nnz²) accumulation to win.
func gramOf(x *linalg.Matrix) *linalg.Matrix {
	if x.Rows*x.Cols == 0 {
		return linalg.NewMatrix(x.Cols, x.Cols)
	}
	nnz := 0
	for _, v := range x.Data {
		if !mathx.EqualWithin(v, 0, 0) {
			nnz++
		}
	}
	if float64(nnz)/float64(len(x.Data)) < 0.1 {
		return linalg.SparseFromDense(x, 0).Gram()
	}
	return x.Gram()
}

// Exact is the non-private reference: eigenvectors of XᵀX.
func Exact(x *linalg.Matrix, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	v := topK(gramOf(x), cfg.K, cfg.Seed, cfg.TopKIters)
	return &Result{Subspace: v, Utility: Utility(x, v)}, nil
}

// Sensitivities returns Lemma 5's L2/L1 sensitivities of the quantized
// covariance: Δ₂ = γ²c² + n, Δ₁ = min(Δ₂², √d·Δ₂) with d = n². The
// closed form lives next to the protocol in core so the release can
// self-account.
func Sensitivities(gamma, c float64, n int) (delta2, delta1 float64) {
	return core.CovarianceSensitivities(gamma, c, n)
}

// CalibrateMu returns the minimal Skellam parameter for the SQM
// covariance to satisfy server-observed (ε, δ)-DP.
func CalibrateMu(eps, delta, gamma, c float64, n int) (float64, error) {
	d2, d1 := Sensitivities(gamma, c, n)
	return dp.CalibrateSkellamMu(eps, delta, d1, d2, 1, 1)
}

// ClientEpsilon reports the client-observed (ε, δ) the SQM covariance
// provides at noise parameter mu (Lemma 5's τ_client converted via
// Lemma 9): weaker than the server-observed guarantee because each
// client knows its own noise share and the record count.
func ClientEpsilon(mu, gamma, c float64, n, numClients int, delta float64) (float64, int) {
	d2, d1 := Sensitivities(gamma, c, n)
	return dp.SkellamClientEpsilon(d1, d2, mu, numClients, 1, delta, dp.DefaultMaxAlpha)
}

// SQM runs the paper's mechanism: quantize, jointly compute the noisy
// covariance, then take the top-k eigenvectors of C̃/γ².
func SQM(x *linalg.Matrix, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Gamma < 1 {
		return nil, fmt.Errorf("pca: SQM needs gamma >= 1, got %v", cfg.Gamma)
	}
	mu, err := CalibrateMu(cfg.Eps, cfg.Delta, cfg.Gamma, cfg.C, x.Cols)
	if err != nil {
		return nil, err
	}
	cov, tr, err := core.Covariance(x, core.Params{
		Gamma:      cfg.Gamma,
		Mu:         mu,
		NumClients: cfg.NumClients,
		Engine:     cfg.Engine,
		Parties:    cfg.Parties,
		Seed:       cfg.Seed,
		Recorder:   cfg.Recorder,
		Trace:      cfg.Trace,
		Fault:      cfg.Fault,
	})
	if err != nil {
		return nil, err
	}
	if cfg.ProjectPSD && cov.Rows <= 300 {
		cov = linalg.ProjectPSD(cov)
	}
	v := topK(cov, cfg.K, cfg.Seed, cfg.TopKIters)
	return &Result{Subspace: v, Utility: Utility(x, v), Mu: mu, Trace: tr}, nil
}

// Central runs the Analyze-Gauss baseline: C = XᵀX plus a symmetric
// Gaussian noise matrix calibrated to the covariance's sensitivity c².
func Central(x *linalg.Matrix, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sigma, err := dp.AnalyticGaussianSigma(cfg.Eps, cfg.Delta, cfg.C*cfg.C)
	if err != nil {
		return nil, err
	}
	g := randx.New(cfg.Seed ^ 0xce47)
	c := gramOf(x)
	n := c.Rows
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			z := g.Gaussian(0, sigma)
			c.Set(a, b, c.At(a, b)+z)
			if b != a {
				c.Set(b, a, c.At(a, b))
			}
		}
	}
	v := topK(c, cfg.K, cfg.Seed, cfg.TopKIters)
	return &Result{Subspace: v, Utility: Utility(x, v), Sigma: sigma}, nil
}

// Local runs the local-DP baseline: Algorithm 4 perturbs the raw data,
// then the server performs exact PCA on the noisy database. The
// subspace quality is judged against the true X.
func Local(x *linalg.Matrix, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sigma, err := vfl.CalibrateLocalSigma(cfg.Eps, cfg.Delta, cfg.C)
	if err != nil {
		return nil, err
	}
	noisy := vfl.PerturbDataset(x, sigma, cfg.Seed^0x10ca1)
	v := topK(noisy.Gram(), cfg.K, cfg.Seed, cfg.TopKIters)
	return &Result{Subspace: v, Utility: Utility(x, v), Sigma: sigma}, nil
}
