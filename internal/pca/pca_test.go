package pca

import (
	"math"
	"testing"

	"sqm/internal/core"
	"sqm/internal/dataset"
	"sqm/internal/linalg"
)

func testData(m, n int, seed uint64) *linalg.Matrix {
	return dataset.KDDCupLike(m, n, seed).X
}

func TestConfigValidation(t *testing.T) {
	x := testData(20, 5, 1)
	if _, err := Exact(x, Config{K: 0, C: 1}); err == nil {
		t.Fatal("K=0 must be rejected")
	}
	if _, err := Exact(x, Config{K: 2, C: 0}); err == nil {
		t.Fatal("C=0 must be rejected")
	}
	if _, err := SQM(x, Config{K: 2, C: 1, Eps: 1, Delta: 1e-5, Gamma: 0.5}); err == nil {
		t.Fatal("gamma < 1 must be rejected")
	}
}

func TestExactCapturesTopVariance(t *testing.T) {
	x := testData(300, 12, 2)
	r, err := Exact(x, Config{K: 3, C: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eig := linalg.SymEigen(x.Gram())
	want := eig.Values[0] + eig.Values[1] + eig.Values[2]
	if math.Abs(r.Utility-want) > 1e-6*want {
		t.Fatalf("utility = %v, want top-3 eigensum %v", r.Utility, want)
	}
	// Subspace is orthonormal.
	g := r.Subspace.T().Mul(r.Subspace)
	if diff := g.Sub(linalg.Identity(3)).FrobeniusNorm(); diff > 1e-8 {
		t.Fatalf("VᵀV off identity by %v", diff)
	}
}

func TestSensitivitiesLemma5(t *testing.T) {
	d2, d1 := Sensitivities(16, 1, 10)
	if d2 != 16*16+10 {
		t.Fatalf("Delta2 = %v", d2)
	}
	if want := math.Min(d2*d2, 10*d2); d1 != want {
		t.Fatalf("Delta1 = %v, want %v", d1, want)
	}
}

func TestCalibrateMuTightens(t *testing.T) {
	// Larger eps needs less noise.
	muTight, err := CalibrateMu(0.5, 1e-5, 64, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	muLoose, err := CalibrateMu(4, 1e-5, 64, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if muLoose >= muTight {
		t.Fatalf("mu(eps=4)=%v should be below mu(eps=0.5)=%v", muLoose, muTight)
	}
}

func TestClientEpsilonWeakerThanServer(t *testing.T) {
	mu, err := CalibrateMu(1, 1e-5, 64, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	cEps, _ := ClientEpsilon(mu, 64, 1, 10, 10, 1e-5)
	if cEps <= 1 {
		t.Fatalf("client-observed eps %v should exceed the server target 1", cEps)
	}
	// More clients → closer to the server guarantee.
	cEps100, _ := ClientEpsilon(mu, 64, 1, 10, 100, 1e-5)
	if cEps100 >= cEps {
		t.Fatal("client eps should improve with more clients")
	}
}

func TestSQMApproachesExactForLargeEps(t *testing.T) {
	x := testData(2000, 15, 4)
	exact, err := Exact(x, Config{K: 3, C: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r, err := SQM(x, Config{K: 3, C: 1, Eps: 32, Delta: 1e-5, Gamma: 1024, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mu <= 0 {
		t.Fatal("calibrated mu must be positive")
	}
	if r.Utility < 0.9*exact.Utility {
		t.Fatalf("SQM utility %v too far below exact %v at eps=32", r.Utility, exact.Utility)
	}
}

func TestOrderingSQMBetweenCentralAndLocal(t *testing.T) {
	// The paper's headline (Figure 2): central >= SQM >> local, with
	// SQM close to central for large gamma.
	x := testData(3000, 16, 6)
	cfgBase := Config{K: 4, C: 1, Eps: 2, Delta: 1e-5, Seed: 7}
	exact, err := Exact(x, cfgBase)
	if err != nil {
		t.Fatal(err)
	}
	var centralU, sqmU, localU float64
	const runs = 5
	for i := 0; i < runs; i++ {
		cfg := cfgBase
		cfg.Seed = uint64(100 + i)
		c, err := Central(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Gamma = 1024
		s, err := SQM(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Local(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		centralU += c.Utility / runs
		sqmU += s.Utility / runs
		localU += l.Utility / runs
	}
	if sqmU < 0.8*centralU {
		t.Fatalf("SQM %v too far below central %v", sqmU, centralU)
	}
	if sqmU <= localU {
		t.Fatalf("SQM %v must beat local %v", sqmU, localU)
	}
	if localU >= 0.95*exact.Utility && sqmU >= 0.95*exact.Utility {
		t.Skip("task too easy to separate mechanisms; acceptable but uninformative")
	}
}

func TestSQMUtilityImprovesWithGamma(t *testing.T) {
	// Finer quantization (larger gamma) must not hurt; with a small
	// gamma the sensitivity overhead n dominates and utility drops.
	x := testData(2000, 20, 8)
	var prev float64
	for _, gamma := range []float64{2, 64, 2048} {
		var u float64
		const runs = 4
		for i := 0; i < runs; i++ {
			r, err := SQM(x, Config{K: 3, C: 1, Eps: 1, Delta: 1e-5, Gamma: gamma, Seed: uint64(200 + i)})
			if err != nil {
				t.Fatal(err)
			}
			u += r.Utility / runs
		}
		if u < prev*0.98 { // allow small monte-carlo wiggle
			t.Fatalf("gamma=%v: utility %v regressed from %v", gamma, u, prev)
		}
		prev = u
	}
}

func TestLocalDegradesGracefully(t *testing.T) {
	x := testData(500, 10, 9)
	r, err := Local(x, Config{K: 2, C: 1, Eps: 1, Delta: 1e-5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sigma <= 0 {
		t.Fatal("local baseline must report its noise scale")
	}
	exact, err := Exact(x, Config{K: 2, C: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if r.Utility > exact.Utility+1e-9 {
		t.Fatal("no mechanism can beat the exact subspace")
	}
}

func TestSQMWithBGWEngineMatchesPlain(t *testing.T) {
	x := testData(40, 6, 12)
	cfg := Config{K: 2, C: 1, Eps: 4, Delta: 1e-5, Gamma: 64, Seed: 13}
	plain, err := SQM(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = core.EngineBGW
	cfg.Parties = 4
	mpc, err := SQM(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Utility-mpc.Utility) > 1e-9*(1+plain.Utility) {
		t.Fatalf("plain %v vs BGW %v", plain.Utility, mpc.Utility)
	}
	if mpc.Trace.Stats.Rounds != 3 {
		t.Fatalf("BGW rounds = %d", mpc.Trace.Stats.Rounds)
	}
}

func TestSQMWithPSDProjection(t *testing.T) {
	// At small eps the noisy covariance is indefinite; the projection
	// must not hurt (and typically helps) while keeping validity.
	x := testData(800, 12, 16)
	var plain, projected float64
	const runs = 4
	for i := 0; i < runs; i++ {
		cfg := Config{K: 3, C: 1, Eps: 0.25, Delta: 1e-5, Gamma: 256, Seed: uint64(300 + i)}
		a, err := SQM(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ProjectPSD = true
		b, err := SQM(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		plain += a.Utility / runs
		projected += b.Utility / runs
	}
	if projected < plain*0.9 {
		t.Fatalf("PSD projection hurt badly: %v vs %v", projected, plain)
	}
	exact, err := Exact(x, Config{K: 3, C: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if projected > exact.Utility+1e-9 {
		t.Fatal("projection cannot beat the exact subspace")
	}
}

func TestTopKLargeNUsesSubspaceIteration(t *testing.T) {
	// n > 300 path: verify against the small-n solver on a matrix that
	// has both code paths available via padding.
	d := dataset.GeneLike(120, 320, 14)
	r, err := Exact(d.X, Config{K: 4, C: 1, Seed: 15, TopKIters: 120})
	if err != nil {
		t.Fatal(err)
	}
	eig := linalg.SymEigen(d.X.Gram())
	want := eig.Values[0] + eig.Values[1] + eig.Values[2] + eig.Values[3]
	if math.Abs(r.Utility-want) > 1e-3*want {
		t.Fatalf("subspace iteration utility %v, want %v", r.Utility, want)
	}
}
