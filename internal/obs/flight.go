package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultFlightCapacity is the per-stream event bound of a trace
// context's flight recorders: large enough to hold every transport and
// round event of the repo's sessions, small enough that a runaway chaos
// run stays bounded (older events are evicted, never the process).
const DefaultFlightCapacity = 8192

// FlightEvent is one captured event in dump form. Attribute values are
// boxed with Attr.Value, so JSON round-trips integers, floats, strings,
// bools, and durations (as nanoseconds).
type FlightEvent struct {
	Seq    uint64         `json:"seq"`
	WallNS int64          `json:"wall_ns"`
	Level  int8           `json:"level"`
	Name   string         `json:"name"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// flightEntry is the in-ring representation; attrs stay unboxed until
// dump time so recording does not allocate interface values.
type flightEntry struct {
	seq   uint64
	wall  int64
	level Level
	name  string
	attrs []Attr
}

// FlightRecorder is a bounded ring buffer of events — the crash-durable
// core of the tracing system. It implements Recorder (Enabled answers
// true for every level, Metrics is nil) and never blocks, never grows
// past its capacity, and survives chaos: a crashed party's ring still
// holds its last events for the post-mortem dump.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []flightEntry
	start   int // index of the oldest entry
	n       int // live entries
	seq     uint64
	dropped uint64 // evicted by the capacity bound
}

// NewFlightRecorder builds a ring holding up to capacity events
// (values < 1 fall back to DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]flightEntry, capacity)}
}

// Enabled answers true for every level: the ring is the last line of
// diagnosis and must capture debug events even when logging is quiet.
func (f *FlightRecorder) Enabled(Level) bool { return f != nil }

// Metrics returns nil: the ring records events only.
func (f *FlightRecorder) Metrics() *Metrics { return nil }

// Event appends one event, evicting the oldest when full. The
// attributes are copied, so callers may reuse their slices.
func (f *FlightRecorder) Event(level Level, name string, attrs ...Attr) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	e := flightEntry{
		seq:   f.seq,
		wall:  time.Now().UnixNano(),
		level: level,
		name:  name,
		attrs: append([]Attr(nil), attrs...),
	}
	if f.n == len(f.buf) {
		f.buf[f.start] = e
		f.start = (f.start + 1) % len(f.buf)
		f.dropped++
	} else {
		f.buf[(f.start+f.n)%len(f.buf)] = e
		f.n++
	}
	f.mu.Unlock()
}

// Len returns the number of events currently held.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Dropped returns how many events the capacity bound evicted.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Events snapshots the ring oldest-first in dump form.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	entries := make([]flightEntry, f.n)
	for i := 0; i < f.n; i++ {
		entries[i] = f.buf[(f.start+i)%len(f.buf)]
	}
	f.mu.Unlock()
	out := make([]FlightEvent, len(entries))
	for i, e := range entries {
		fe := FlightEvent{Seq: e.seq, WallNS: e.wall, Level: int8(e.level), Name: e.name}
		if len(e.attrs) > 0 {
			fe.Attrs = make(map[string]any, len(e.attrs))
			for _, a := range e.attrs {
				fe.Attrs[a.Key] = a.Value()
			}
		}
		out[i] = fe
	}
	return out
}

// WriteJSONL dumps the ring as one JSON object per line, oldest first —
// the per-party trace file format cmd/sqmtrace merges.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range f.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
