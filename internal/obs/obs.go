// Package obs is the repository's zero-dependency observability layer:
// structured events, monotonic span timers, and a metrics registry of
// counters, gauges and histograms. Every subsystem that does real work
// — the transport meshes, the BGW engines, the session layer, the DP
// accountant — reports through a Recorder so a run can be understood
// from the outside: where the time went, how many bytes crossed each
// link, and how much (ε, δ) budget the composition has consumed.
//
// Two implementations ship: a slog-backed recorder (text or JSON lines)
// and a no-op recorder. The disabled path is allocation-free by
// construction: hot paths never build attribute slices without first
// checking Enabled, and the metric handle types (*Counter, *Gauge,
// *Histogram) are nil-receiver safe, so instrumented code resolves its
// handles once at construction and unconditionally calls Add/Set/
// Observe — a nil handle is a single branch, no allocation, no atomic.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"
)

// Level classifies an event's severity. The numeric values match
// log/slog so the slog-backed recorder forwards them unchanged.
type Level int8

const (
	// LevelDebug marks high-volume diagnostics (per-round spans).
	LevelDebug Level = -4
	// LevelInfo marks lifecycle events (session start, ledger entries).
	LevelInfo Level = 0
	// LevelWarn marks conditions an operator should act on (privacy
	// budget exceeded, transport teardown mid-round).
	LevelWarn Level = 4
)

// attrKind discriminates the Attr payload.
type attrKind uint8

const (
	kindInt64 attrKind = iota
	kindFloat64
	kindString
	kindDuration
	kindBool
)

// Attr is one structured key/value pair of an event. It is a small
// value type (no interface boxing) so building attributes on an enabled
// path stays cheap and the disabled path can skip them entirely.
type Attr struct {
	Key  string
	kind attrKind
	num  uint64
	str  string
}

// Int attaches an int value.
func Int(key string, v int) Attr { return Int64(key, int64(v)) }

// Int64 attaches an int64 value.
func Int64(key string, v int64) Attr {
	return Attr{Key: key, kind: kindInt64, num: uint64(v)}
}

// Float64 attaches a float64 value.
func Float64(key string, v float64) Attr {
	return Attr{Key: key, kind: kindFloat64, num: floatBits(v)}
}

// String attaches a string value.
func String(key, v string) Attr {
	return Attr{Key: key, kind: kindString, str: v}
}

// Duration attaches a duration value.
func Duration(key string, d time.Duration) Attr {
	return Attr{Key: key, kind: kindDuration, num: uint64(d)}
}

// Bool attaches a bool value.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: kindBool}
	if v {
		a.num = 1
	}
	return a
}

// Value returns the attribute's payload boxed as any.
func (a Attr) Value() any {
	switch a.kind {
	case kindInt64:
		return int64(a.num)
	case kindFloat64:
		return floatFrom(a.num)
	case kindString:
		return a.str
	case kindDuration:
		return time.Duration(a.num)
	case kindBool:
		return a.num != 0
	}
	return nil
}

// slogAttr converts to the slog representation.
func (a Attr) slogAttr() slog.Attr {
	switch a.kind {
	case kindInt64:
		return slog.Int64(a.Key, int64(a.num))
	case kindFloat64:
		return slog.Float64(a.Key, floatFrom(a.num))
	case kindString:
		return slog.String(a.Key, a.str)
	case kindDuration:
		return slog.Duration(a.Key, time.Duration(a.num))
	case kindBool:
		return slog.Bool(a.Key, a.num != 0)
	}
	return slog.Any(a.Key, nil)
}

// String renders the attribute as key=value.
func (a Attr) String() string { return fmt.Sprintf("%s=%v", a.Key, a.Value()) }

// Recorder receives the structured telemetry of one run. Implementations
// must be safe for concurrent use: party actors, the writer pumps and
// the coordinator all report from their own goroutines.
//
// Hot paths must call Enabled before building attributes, and should
// prefer pre-resolved metric handles (Metrics().Counter(...) once at
// construction) over events for per-message accounting.
type Recorder interface {
	// Enabled reports whether events at the level would be recorded.
	// The no-op recorder answers false for every level, which lets
	// instrumented code skip timestamping and attribute construction.
	Enabled(level Level) bool
	// Event records one structured event.
	Event(level Level, name string, attrs ...Attr)
	// Metrics returns the run's metric registry; nil for the no-op
	// recorder (all registry lookups on a nil registry return nil
	// handles, whose methods are no-ops).
	Metrics() *Metrics
}

// nop is the disabled recorder.
type nop struct{}

func (nop) Enabled(Level) bool           { return false }
func (nop) Event(Level, string, ...Attr) {}
func (nop) Metrics() *Metrics            { return nil }

// Nop returns the no-op recorder. Every operation on it (and on the nil
// metric handles it hands out) is allocation-free.
func Nop() Recorder { return nop{} }

// Or returns r, or the no-op recorder when r is nil — the idiom for
// optional Recorder fields on config structs.
func Or(r Recorder) Recorder {
	if r == nil {
		return Nop()
	}
	return r
}

// LogRecorder is the slog-backed Recorder: events become structured log
// lines (text or JSON), metrics accumulate in an owned registry.
type LogRecorder struct {
	logger  *slog.Logger
	min     Level
	metrics *Metrics
}

// NewLog builds a LogRecorder writing to w. format is "text" or "json"
// (anything else falls back to text); events below min are dropped.
func NewLog(w io.Writer, format string, min Level) *LogRecorder {
	opts := &slog.HandlerOptions{Level: slog.Level(min)}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return NewLogger(slog.New(h), min)
}

// NewLogger wraps an existing slog.Logger.
func NewLogger(l *slog.Logger, min Level) *LogRecorder {
	return &LogRecorder{logger: l, min: min, metrics: NewMetrics()}
}

// Enabled reports whether the level clears the recorder's minimum.
func (r *LogRecorder) Enabled(level Level) bool { return level >= r.min }

// Event emits one structured log line.
func (r *LogRecorder) Event(level Level, name string, attrs ...Attr) {
	if level < r.min {
		return
	}
	sa := make([]slog.Attr, len(attrs))
	for i, a := range attrs {
		sa[i] = a.slogAttr()
	}
	r.logger.LogAttrs(context.Background(), slog.Level(level), name, sa...)
}

// Metrics returns the recorder's registry.
func (r *LogRecorder) Metrics() *Metrics { return r.metrics }
