package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDeriveTraceIDDeterministic(t *testing.T) {
	a := DeriveTraceID(7, 3, 2)
	b := DeriveTraceID(7, 3, 2)
	if a != b {
		t.Fatalf("same inputs gave %v and %v", a, b)
	}
	if a == 0 {
		t.Fatal("trace id must never be zero")
	}
	if a == DeriveTraceID(8, 3, 2) {
		t.Fatal("different seeds must give different ids")
	}
	if len(a.String()) != 16 {
		t.Fatalf("String() = %q, want 16 hex digits", a.String())
	}
}

func TestLamportClock(t *testing.T) {
	tc := NewTraceContext(DeriveTraceID(1), 2)
	p0, p1 := tc.Party(0), tc.Party(1)
	if got := p0.Tick(); got != 1 {
		t.Fatalf("first tick = %d, want 1", got)
	}
	p0.Tick()
	p0.Tick() // p0 at 3
	// p1 receives p0's stamp 3: merge to max(0,3)+1 = 4.
	if got := p1.Merge(3); got != 4 {
		t.Fatalf("merge(3) = %d, want 4", got)
	}
	// A receive of an older stamp still advances past local time.
	if got := p1.Merge(1); got != 5 {
		t.Fatalf("merge(1) = %d, want 5", got)
	}
	if got := p0.Clock(); got != 3 {
		t.Fatalf("p0 clock = %d, want 3", got)
	}
}

func TestPartyTraceNilSafe(t *testing.T) {
	var pt *PartyTrace
	pt.Tick()
	pt.Merge(5)
	pt.Event(LevelInfo, "x", Int("k", 1))
	pt.EventAt(1, LevelInfo, "x")
	if pt.Trace() != 0 || pt.Clock() != 0 || pt.Flight() != nil || pt.NextSpanID() != 0 {
		t.Fatal("nil PartyTrace must be inert")
	}
	if rec := pt.Wrap(nil); rec.Enabled(LevelWarn) {
		t.Fatal("nil PartyTrace.Wrap(nil) must be the disabled recorder")
	}
}

func TestWrapStampsAndTees(t *testing.T) {
	tc := NewTraceContext(DeriveTraceID(2), 1)
	pt := tc.Party(0)
	var buf bytes.Buffer
	inner := NewLog(&buf, "json", LevelInfo)
	rec := pt.Wrap(inner)

	if !rec.Enabled(LevelDebug) {
		t.Fatal("traced recorder must admit debug for the flight ring")
	}
	rec.Event(LevelDebug, "quiet", Int("k", 1)) // flight only
	rec.Event(LevelInfo, "loud", Int("k", 2))   // flight + inner

	if got := pt.Flight().Len(); got != 2 {
		t.Fatalf("flight holds %d events, want 2", got)
	}
	evs := pt.Flight().Events()
	for _, e := range evs {
		if e.Attrs["trace"] != tc.ID().String() {
			t.Fatalf("event %q trace attr = %v", e.Name, e.Attrs["trace"])
		}
		if e.Attrs["party"] != int64(0) {
			t.Fatalf("event %q party attr = %v (%T)", e.Name, e.Attrs["party"], e.Attrs["party"])
		}
	}
	if evs[0].Attrs["lclock"] == evs[1].Attrs["lclock"] {
		t.Fatal("consecutive events must carry distinct logical times")
	}
	out := buf.String()
	if strings.Contains(out, "quiet") {
		t.Fatal("debug event leaked past the info-level inner recorder")
	}
	if !strings.Contains(out, "loud") || !strings.Contains(out, "lclock") {
		t.Fatalf("info event missing from inner recorder: %s", out)
	}
	if rec.Metrics() != inner.Metrics() {
		t.Fatal("traced recorder must expose the inner registry")
	}
	if TraceOf(rec) != pt {
		t.Fatal("TraceOf must recover the wrapped PartyTrace")
	}
	if TraceOf(inner) != nil || TraceOf(Nop()) != nil {
		t.Fatal("TraceOf must be nil for untraced recorders")
	}
}

func TestWrapNilInnerStillHasMetrics(t *testing.T) {
	tc := NewTraceContext(DeriveTraceID(3), 1)
	rec := tc.Party(0).Wrap(nil)
	m := rec.Metrics()
	if m == nil {
		t.Fatal("trace-only runs need the context's registry so engines self-instrument")
	}
	m.Counter("c").Add(2)
	if got := m.Counter("c").Value(); got != 2 {
		t.Fatalf("context registry counter = %d", got)
	}
}

func TestFlightRecorderBound(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Event(LevelInfo, "e", Int("i", i))
	}
	if f.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", f.Len())
	}
	if f.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", f.Dropped())
	}
	evs := f.Events()
	if evs[0].Attrs["i"] != int64(6) || evs[3].Attrs["i"] != int64(9) {
		t.Fatalf("ring kept wrong window: %v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestFlightRecorderJSONL(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Event(LevelInfo, "a", String("s", "v"), Float64("f", 1.5), Bool("b", true))
	f.Event(LevelWarn, "b")
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var e FlightEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}

func TestDumpAll(t *testing.T) {
	tc := NewTraceContext(DeriveTraceID(4), 2)
	tc.Coordinator().Event(LevelInfo, "session.start")
	tc.Party(0).Event(LevelDebug, "transport.send", Int("peer", 1))
	paths, err := tc.DumpAll(filepath.Join(t.TempDir(), "traces"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("wrote %d files, want 3 (coord + 2 parties)", len(paths))
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range bytes.Split(bytes.TrimSpace(b), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			if !json.Valid(line) {
				t.Fatalf("%s has invalid JSONL line %q", p, line)
			}
		}
	}
	if !strings.HasSuffix(paths[0], "-coord.jsonl") {
		t.Fatalf("first dump must be the coordinator's, got %s", paths[0])
	}
}

func TestTracedSpanIdentifiers(t *testing.T) {
	tc := NewTraceContext(DeriveTraceID(5), 1)
	rec := tc.Party(0).Wrap(nil)
	root := StartTracedSpan(rec, "circuit.exec", 0, Int("gates", 3))
	if !root.Active() || root.ID() == 0 {
		t.Fatal("traced span on a traced recorder must carry an id")
	}
	child := StartTracedSpan(rec, "circuit.level", root.ID(), Int("level", 1))
	child.End(Int("muls", 2))
	root.End()

	evs := tc.Party(0).Flight().Events()
	if len(evs) != 2 {
		t.Fatalf("flight holds %d events, want 2", len(evs))
	}
	if evs[0].Attrs["parent"] != root.ID().String() {
		t.Fatalf("child parent attr = %v, want %v", evs[0].Attrs["parent"], root.ID())
	}
	if evs[0].Attrs["span"] == evs[1].Attrs["span"] {
		t.Fatal("span ids must be unique")
	}
	if _, ok := evs[1].Attrs["seconds"]; !ok {
		t.Fatal("span end must carry seconds")
	}
	// Untraced but enabled recorder: active span, no identifiers.
	plain := StartTracedSpan(NewLog(&bytes.Buffer{}, "text", LevelDebug), "x", 0)
	if !plain.Active() || plain.ID() != 0 {
		t.Fatal("untraced span must be active without an id")
	}
	plain.End()
	// Disabled recorder: inert.
	off := StartTracedSpan(Nop(), "x", 0)
	if off.Active() {
		t.Fatal("span on the nop recorder must be inert")
	}
	off.End()
}
