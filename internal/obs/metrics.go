package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }

func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// Metrics is a registry of named counters, gauges and histograms.
// Lookups are get-or-create and safe for concurrent use; handles are
// meant to be resolved once at construction and retained. All methods
// are nil-receiver safe: a nil registry hands out nil handles whose
// operations are no-ops, which is how disabled telemetry stays free.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		h = &Histogram{min: math.Inf(1), max: math.Inf(-1)}
		m.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; no-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float64 value.
type Gauge struct{ v atomic.Uint64 }

// Set stores the value; no-op on a nil handle.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(floatBits(v))
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the current value (0 for a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFrom(g.v.Load())
}

// histBuckets is the number of exponential histogram buckets. Bucket i
// holds observations in (base·2^(i−1), base·2^i]; with base = 1 µs the
// top bucket starts around 18 minutes, plenty for round latencies.
const histBuckets = 31

// histBase is the upper bound of bucket 0 when observations are
// durations in seconds.
const histBase = 1e-6

// Histogram accumulates float64 observations (by convention, seconds)
// into exponential buckets plus exact count/sum/min/max.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// Observe records one value; no-op on a nil handle.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

// ObserveSince records the seconds elapsed since start; no-op on a nil
// handle (without even reading the clock).
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// bucketOf maps a value to its exponential bucket index.
func bucketOf(v float64) int {
	if v <= histBase {
		return 0
	}
	b := int(math.Ceil(math.Log2(v / histBase)))
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// HistBucket is one cumulative histogram bucket: Count observations
// were <= LE (the Prometheus bucket convention).
type HistBucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a histogram's summarized state. Buckets holds
// the cumulative distribution up to the last non-empty bucket; the
// implicit +Inf bucket equals Count.
type HistogramSnapshot struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Mean    float64      `json:"mean"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	P99     float64      `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot summarizes the histogram; zero value for a nil handle.
// Quantiles are approximated by the upper bound of the covering bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Mean: h.sum / float64(h.count),
	}
	s.P50 = h.quantileLocked(0.50)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	last := -1
	for i, n := range h.buckets {
		if n > 0 {
			last = i
		}
	}
	var cum int64
	for i := 0; i <= last; i++ {
		cum += h.buckets[i]
		s.Buckets = append(s.Buckets, HistBucket{LE: histBase * math.Pow(2, float64(i)), Count: cum})
	}
	return s
}

func (h *Histogram) quantileLocked(q float64) float64 {
	rank := int64(math.Ceil(q * float64(h.count)))
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			ub := histBase * math.Pow(2, float64(i))
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// MetricPoint is one metric's exported state.
type MetricPoint struct {
	Name      string             `json:"name"`
	Type      string             `json:"type"` // "counter", "gauge", "histogram"
	Value     float64            `json:"value,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot exports every registered metric, sorted by name (counters,
// then gauges, then histograms). Nil registries export nothing.
func (m *Metrics) Snapshot() []MetricPoint {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	names := func(n int) []string { return make([]string, 0, n) }
	cns, gns, hns := names(len(m.counters)), names(len(m.gauges)), names(len(m.histograms))
	for n := range m.counters {
		cns = append(cns, n)
	}
	for n := range m.gauges {
		gns = append(gns, n)
	}
	for n := range m.histograms {
		hns = append(hns, n)
	}
	m.mu.Unlock()
	sort.Strings(cns)
	sort.Strings(gns)
	sort.Strings(hns)
	var out []MetricPoint
	for _, n := range cns {
		out = append(out, MetricPoint{Name: n, Type: "counter", Value: float64(m.Counter(n).Value())})
	}
	for _, n := range gns {
		out = append(out, MetricPoint{Name: n, Type: "gauge", Value: m.Gauge(n).Value()})
	}
	for _, n := range hns {
		s := m.Histogram(n).Snapshot()
		out = append(out, MetricPoint{Name: n, Type: "histogram", Histogram: &s})
	}
	return out
}

// WriteTo dumps the registry as aligned "name type value" lines — the
// human-readable final metrics report of a run.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, p := range m.Snapshot() {
		var n int
		var err error
		switch p.Type {
		case "histogram":
			h := p.Histogram
			n, err = fmt.Fprintf(w, "%-44s %-9s count=%d mean=%.3gs p50=%.3gs p95=%.3gs max=%.3gs\n",
				p.Name, p.Type, h.Count, h.Mean, h.P50, h.P95, h.Max)
		case "counter":
			n, err = fmt.Fprintf(w, "%-44s %-9s %d\n", p.Name, p.Type, int64(p.Value))
		default:
			n, err = fmt.Fprintf(w, "%-44s %-9s %g\n", p.Name, p.Type, p.Value)
		}
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
