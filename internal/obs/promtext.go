package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition
// format served at /metrics.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry name into a Prometheus metric name:
// letters, digits, underscores and colons only, so the dotted names the
// repo uses ("transport.chan.bytes") become scrape-safe
// ("transport_chan_bytes").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatLE renders a bucket bound for the le label.
func formatLE(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus dumps the registry in the Prometheus/OpenMetrics text
// exposition format: a "# TYPE" line per metric, plain samples for
// counters and gauges, and the cumulative _bucket/_sum/_count triplet
// for histograms. A nil registry writes nothing.
func (m *Metrics) WritePrometheus(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, p := range m.Snapshot() {
		name := promName(p.Name)
		if err := emit("# TYPE %s %s\n", name, p.Type); err != nil {
			return total, err
		}
		switch p.Type {
		case "histogram":
			h := p.Histogram
			for _, b := range h.Buckets {
				if err := emit("%s_bucket{le=%q} %d\n", name, formatLE(b.LE), b.Count); err != nil {
					return total, err
				}
			}
			if err := emit("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
				return total, err
			}
			if err := emit("%s_sum %s\n", name, strconv.FormatFloat(h.Sum, 'g', -1, 64)); err != nil {
				return total, err
			}
			if err := emit("%s_count %d\n", name, h.Count); err != nil {
				return total, err
			}
		case "counter":
			if err := emit("%s %d\n", name, int64(p.Value)); err != nil {
				return total, err
			}
		default:
			if err := emit("%s %s\n", name, strconv.FormatFloat(p.Value, 'g', -1, 64)); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}
