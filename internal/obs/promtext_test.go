package obs

import (
	"bufio"
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusExpositionShape pins the text exposition format: every
// metric kind gets a "# TYPE" line, histograms expose the cumulative
// _bucket/_sum/_count triplet ending at +Inf, and every sample line
// parses as "name{labels} value".
func TestPrometheusExpositionShape(t *testing.T) {
	m := NewMetrics()
	m.Counter("transport.chan.frames").Add(7)
	m.Gauge("dp.epsilon").Set(1.25)
	h := m.Histogram("bgw.round.seconds")
	h.Observe(0.5e-6) // bucket 0
	h.Observe(3e-6)   // a later bucket
	h.Observe(3e-6)

	var buf bytes.Buffer
	if _, err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE transport_chan_frames counter",
		"transport_chan_frames 7",
		"# TYPE dp_epsilon gauge",
		"dp_epsilon 1.25",
		"# TYPE bgw_round_seconds histogram",
		`bgw_round_seconds_bucket{le="+Inf"} 3`,
		"bgw_round_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, ".") && strings.Contains(out, "_bucket{le=") {
		// Dots may only appear inside numeric values and le labels, never
		// in metric names.
		for _, line := range strings.Split(out, "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			name := line[:strings.IndexAny(line, "{ ")]
			if strings.Contains(name, ".") {
				t.Errorf("metric name %q not sanitized", name)
			}
		}
	}

	// Buckets must be cumulative and end exactly at the total count.
	bucketRe := regexp.MustCompile(`^bgw_round_seconds_bucket\{le="([^"]+)"\} (\d+)$`)
	var prev int64 = -1
	var last int64
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		mm := bucketRe.FindStringSubmatch(sc.Text())
		if mm == nil {
			continue
		}
		n, err := strconv.ParseInt(mm[2], 10, 64)
		if err != nil {
			t.Fatalf("bucket count %q: %v", mm[2], err)
		}
		if n < prev {
			t.Fatalf("buckets not cumulative: %d after %d", n, prev)
		}
		prev, last = n, n
	}
	if last != 3 {
		t.Fatalf("final (+Inf) bucket = %d, want 3", last)
	}

	var nilReg *Metrics
	var empty bytes.Buffer
	if _, err := nilReg.WritePrometheus(&empty); err != nil || empty.Len() != 0 {
		t.Fatalf("nil registry must write nothing: %v %q", err, empty.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"transport.chan.link.0_1.bytes": "transport_chan_link_0_1_bytes",
		"dp.epsilon":                    "dp_epsilon",
		"9lives":                        "_9lives",
		"already_fine":                  "already_fine",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
