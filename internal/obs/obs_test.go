package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNopIsDisabledAndNilSafe(t *testing.T) {
	r := Nop()
	for _, lv := range []Level{LevelDebug, LevelInfo, LevelWarn} {
		if r.Enabled(lv) {
			t.Fatalf("nop recorder enabled at %v", lv)
		}
	}
	r.Event(LevelWarn, "ignored", Int("k", 1))
	if r.Metrics() != nil {
		t.Fatal("nop recorder must have a nil registry")
	}
	// Every handle from a nil registry is a usable no-op.
	var m *Metrics
	m.Counter("c").Add(5)
	m.Gauge("g").Set(2.5)
	m.Histogram("h").Observe(0.1)
	m.Histogram("h").ObserveSince(time.Now())
	if got := m.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	if got := m.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %g", got)
	}
	if s := m.Histogram("h").Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram count = %d", s.Count)
	}
	if snap := m.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v", snap)
	}
}

// TestNopPathAllocationFree pins the contract the hot resharing path
// relies on: disabled telemetry performs zero allocations.
func TestNopPathAllocationFree(t *testing.T) {
	var m *Metrics
	c := m.Counter("transport.messages")
	h := m.Histogram("transport.latency")
	rec := Nop()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.ObserveSince(time.Time{})
		sp := StartSpan(rec, "bgw.round")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v per op, want 0", allocs)
	}
}

func TestOr(t *testing.T) {
	if Or(nil) == nil || Or(nil).Enabled(LevelWarn) {
		t.Fatal("Or(nil) must be the disabled recorder")
	}
	r := NewLog(&bytes.Buffer{}, "text", LevelInfo)
	if Or(r) != Recorder(r) {
		t.Fatal("Or must pass a non-nil recorder through")
	}
}

func TestLogRecorderEventsAndLevels(t *testing.T) {
	var buf bytes.Buffer
	r := NewLog(&buf, "json", LevelInfo)
	if r.Enabled(LevelDebug) {
		t.Fatal("debug must be disabled at info level")
	}
	r.Event(LevelDebug, "dropped")
	r.Event(LevelInfo, "session.start",
		Int("clients", 3), Float64("gamma", 2048), String("engine", "actor-net"),
		Duration("lat", 100*time.Millisecond), Bool("tcp", true))
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1: %q", len(lines), buf.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("event is not JSON: %v", err)
	}
	if ev["msg"] != "session.start" || ev["clients"] != float64(3) || ev["tcp"] != true {
		t.Fatalf("unexpected event: %v", ev)
	}
	if ev["engine"] != "actor-net" {
		t.Fatalf("string attr lost: %v", ev)
	}
}

func TestAttrValues(t *testing.T) {
	cases := []struct {
		attr Attr
		want any
	}{
		{Int("a", 7), int64(7)},
		{Int64("b", -2), int64(-2)},
		{Float64("c", 1.5), 1.5},
		{String("d", "x"), "x"},
		{Duration("e", time.Second), time.Second},
		{Bool("f", true), true},
		{Bool("g", false), false},
	}
	for _, c := range cases {
		if got := c.attr.Value(); got != c.want {
			t.Fatalf("%s: Value() = %v (%T), want %v", c.attr.Key, got, got, c.want)
		}
	}
	if s := Int("k", 3).String(); s != "k=3" {
		t.Fatalf("Attr.String() = %q", s)
	}
}

func TestMetricsRegistryGetOrCreate(t *testing.T) {
	m := NewMetrics()
	if m.Counter("x") != m.Counter("x") {
		t.Fatal("counter handles must be stable per name")
	}
	if m.Gauge("x") != m.Gauge("x") {
		t.Fatal("gauge handles must be stable per name")
	}
	if m.Histogram("x") != m.Histogram("x") {
		t.Fatal("histogram handles must be stable per name")
	}
	m.Counter("x").Add(2)
	m.Counter("x").Add(3)
	if got := m.Counter("x").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	m.Gauge("x").SetInt(41)
	m.Gauge("x").Set(42.5)
	if got := m.Gauge("x").Value(); got != 42.5 {
		t.Fatalf("gauge = %g, want 42.5", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000) // 1ms .. 100ms
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 0.001 || s.Max != 0.1 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	if s.Mean < 0.05 || s.Mean > 0.051 {
		t.Fatalf("mean = %g", s.Mean)
	}
	// Bucketed quantiles are upper bounds: p50 must cover the true
	// median and stay below the true p95.
	if s.P50 < 0.050 || s.P50 > 0.066 {
		t.Fatalf("p50 = %g out of bucket range", s.P50)
	}
	if s.P99 < s.P95 || s.P95 < s.P50 {
		t.Fatalf("quantiles not monotone: %g %g %g", s.P50, s.P95, s.P99)
	}
	if s.P99 > s.Max {
		t.Fatalf("p99 %g exceeds max %g", s.P99, s.Max)
	}
}

func TestSnapshotSortedAndTyped(t *testing.T) {
	m := NewMetrics()
	m.Counter("b.count").Add(1)
	m.Counter("a.count").Add(2)
	m.Gauge("z.gauge").Set(3)
	m.Histogram("h.lat").Observe(0.5)
	snap := m.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d points", len(snap))
	}
	if snap[0].Name != "a.count" || snap[1].Name != "b.count" {
		t.Fatalf("counters not sorted: %v", snap)
	}
	if snap[2].Type != "gauge" || snap[3].Type != "histogram" || snap[3].Histogram == nil {
		t.Fatalf("types wrong: %v", snap)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.count", "z.gauge", "h.lat", "count=1"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("dump missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSpanRecordsDurationAndEvent(t *testing.T) {
	var buf bytes.Buffer
	r := NewLog(&buf, "json", LevelDebug)
	sp := StartSpan(r, "proto.round", Int("round", 2))
	time.Sleep(2 * time.Millisecond)
	sp.End(Int("msgs", 9))
	var ev map[string]any
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("span event not JSON: %v", err)
	}
	if ev["msg"] != "proto.round" || ev["round"] != float64(2) || ev["msgs"] != float64(9) {
		t.Fatalf("span event wrong: %v", ev)
	}
	if secs, ok := ev["seconds"].(float64); !ok || secs < 0.001 {
		t.Fatalf("span duration missing or too small: %v", ev["seconds"])
	}
	s := r.Metrics().Histogram("proto.round.seconds").Snapshot()
	if s.Count != 1 || s.Max < 0.001 {
		t.Fatalf("span histogram not observed: %+v", s)
	}
	// Spans against a disabled recorder are inert.
	sp2 := StartSpan(NewLog(&bytes.Buffer{}, "text", LevelInfo), "x")
	sp2.End()
}

func TestMetricsConcurrency(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Counter("c").Add(1)
				m.Gauge("g").SetInt(int64(j))
				m.Histogram("h").Observe(float64(j) * 1e-6)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := m.Histogram("h").Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestDebugMux(t *testing.T) {
	m := NewMetrics()
	m.Counter("transport.messages").Add(12)
	mux := NewDebugMux(m)

	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	if rw.Code != 200 {
		t.Fatalf("/metrics status %d", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body := rw.Body.String()
	if !strings.Contains(body, "# TYPE transport_messages counter") ||
		!strings.Contains(body, "transport_messages 12") {
		t.Fatalf("unexpected /metrics body: %s", body)
	}

	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics.json", nil))
	if rw.Code != 200 {
		t.Fatalf("/metrics.json status %d", rw.Code)
	}
	var points []MetricPoint
	if err := json.Unmarshal(rw.Body.Bytes(), &points); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if len(points) != 1 || points[0].Name != "transport.messages" || points[0].Value != 12 {
		t.Fatalf("unexpected /metrics.json body: %v", points)
	}

	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rw.Code != 200 || !strings.Contains(rw.Body.String(), "goroutine") {
		t.Fatalf("pprof index missing: %d", rw.Code)
	}
}
