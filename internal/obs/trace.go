package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// Distributed tracing: a session-scoped TraceID shared by every party,
// one Lamport logical clock per party, and a bounded flight recorder
// per party. The meshes propagate (trace, sender, lclock) in-band with
// every frame, so the per-party event streams can be merged after the
// fact into one causally ordered timeline (cmd/sqmtrace).
//
// The clock follows Lamport's rules: local events and sends tick the
// clock; a receive merges the sender's stamp with max(local, remote)+1.
// If event e happens-before event f across the whole session, then
// lclock(e) < lclock(f), so sorting the merged streams by lclock is a
// valid causal order (ties are concurrent and may be broken
// arbitrarily).

// TraceID identifies one session's trace. IDs are derived
// deterministically from the run's seed material (DeriveTraceID), never
// sampled — the repo's determinism invariant applies to telemetry too.
type TraceID uint64

// String renders the id as 16 hex digits.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// DeriveTraceID mixes the given words (seed, party count, rounds, ...)
// into a trace id with a splitmix64-style finalizer. The same inputs
// always produce the same id; the zero id is avoided so callers can use
// 0 as "no trace".
func DeriveTraceID(words ...uint64) TraceID {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h += w + 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	if h == 0 {
		h = 1
	}
	return TraceID(h)
}

// SpanID identifies one timed region within a trace. Parent links
// (TracedSpan) reconstruct the span tree per party.
type SpanID uint64

// String renders the id as 16 hex digits.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// CoordParty is the party index of the coordinator's event stream.
const CoordParty = -1

// TraceContext is the shared tracing state of one session: the id, one
// PartyTrace per mesh party, one for the coordinator, and a metrics
// registry that backs trace-only runs (no user recorder attached).
type TraceContext struct {
	id      TraceID
	coord   *PartyTrace
	parties []*PartyTrace
	metrics *Metrics
}

// NewTraceContext builds the tracing state for a session of the given
// mesh party count (0 is valid: coordinator-only tracing). Every stream
// gets its own flight recorder of DefaultFlightCapacity events.
func NewTraceContext(id TraceID, parties int) *TraceContext {
	if parties < 0 {
		parties = 0
	}
	tc := &TraceContext{id: id, metrics: NewMetrics()}
	tc.coord = &PartyTrace{tc: tc, party: CoordParty, flight: NewFlightRecorder(DefaultFlightCapacity)}
	tc.parties = make([]*PartyTrace, parties)
	for i := range tc.parties {
		tc.parties[i] = &PartyTrace{tc: tc, party: i, flight: NewFlightRecorder(DefaultFlightCapacity)}
	}
	return tc
}

// ID returns the trace id.
func (tc *TraceContext) ID() TraceID { return tc.id }

// Parties returns the number of mesh party streams (excluding the
// coordinator's).
func (tc *TraceContext) Parties() int { return len(tc.parties) }

// Coordinator returns the coordinator's stream.
func (tc *TraceContext) Coordinator() *PartyTrace { return tc.coord }

// Party returns party i's stream (CoordParty for the coordinator's);
// nil when i is out of range, so callers can attach tracing
// opportunistically.
func (tc *TraceContext) Party(i int) *PartyTrace {
	if i == CoordParty {
		return tc.coord
	}
	if i < 0 || i >= len(tc.parties) {
		return nil
	}
	return tc.parties[i]
}

// Streams returns every stream, coordinator first.
func (tc *TraceContext) Streams() []*PartyTrace {
	out := make([]*PartyTrace, 0, len(tc.parties)+1)
	out = append(out, tc.coord)
	return append(out, tc.parties...)
}

// DumpAll writes one JSONL flight-recorder dump per stream into dir
// (created if missing): trace-<id>-coord.jsonl and
// trace-<id>-party<i>.jsonl. It returns the paths written. Dumps are
// best-effort snapshots: a stream that recorded nothing still produces
// an (empty) file, so a merge tool can tell "party died silently" from
// "file lost".
func (tc *TraceContext) DumpAll(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: trace dump dir: %w", err)
	}
	var paths []string
	write := func(name string, f *FlightRecorder) error {
		path := filepath.Join(dir, name)
		file, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("obs: trace dump: %w", err)
		}
		werr := f.WriteJSONL(file)
		if cerr := file.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("obs: trace dump %s: %w", name, werr)
		}
		paths = append(paths, path)
		return nil
	}
	if err := write(fmt.Sprintf("trace-%s-coord.jsonl", tc.id), tc.coord.flight); err != nil {
		return paths, err
	}
	for i, pt := range tc.parties {
		if err := write(fmt.Sprintf("trace-%s-party%d.jsonl", tc.id, i), pt.flight); err != nil {
			return paths, err
		}
	}
	return paths, nil
}

// PartyTrace is one participant's view of the trace: its Lamport clock
// and its flight recorder. All methods are safe for concurrent use and
// nil-receiver safe, so disabled tracing costs one branch.
type PartyTrace struct {
	tc      *TraceContext
	party   int
	clock   atomic.Uint64
	spanSeq atomic.Uint64
	flight  *FlightRecorder
}

// Trace returns the trace id (0 on a nil receiver).
func (pt *PartyTrace) Trace() TraceID {
	if pt == nil {
		return 0
	}
	return pt.tc.id
}

// Party returns the stream's party index (CoordParty for the
// coordinator).
func (pt *PartyTrace) Party() int {
	if pt == nil {
		return CoordParty
	}
	return pt.party
}

// Clock returns the current logical time.
func (pt *PartyTrace) Clock() uint64 {
	if pt == nil {
		return 0
	}
	return pt.clock.Load()
}

// Flight returns the stream's flight recorder.
func (pt *PartyTrace) Flight() *FlightRecorder {
	if pt == nil {
		return nil
	}
	return pt.flight
}

// Tick advances the logical clock for a local event or a send and
// returns the new time.
func (pt *PartyTrace) Tick() uint64 {
	if pt == nil {
		return 0
	}
	return pt.clock.Add(1)
}

// Merge folds a received remote stamp into the clock — Lamport's
// receive rule, max(local, remote)+1 — and returns the new time.
func (pt *PartyTrace) Merge(remote uint64) uint64 {
	if pt == nil {
		return 0
	}
	for {
		cur := pt.clock.Load()
		next := cur + 1
		if remote >= cur {
			next = remote + 1
		}
		if pt.clock.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// EventAt records an event stamped with an already-assigned logical
// time (from Tick or Merge) into the flight recorder, appending the
// trace/party/lclock attributes.
func (pt *PartyTrace) EventAt(lclock uint64, level Level, name string, attrs ...Attr) {
	if pt == nil {
		return
	}
	all := make([]Attr, 0, len(attrs)+3)
	all = append(all, attrs...)
	all = pt.appendStamp(all, lclock)
	pt.flight.Event(level, name, all...)
}

// Event ticks the clock and records a local event.
func (pt *PartyTrace) Event(level Level, name string, attrs ...Attr) {
	if pt == nil {
		return
	}
	pt.EventAt(pt.Tick(), level, name, attrs...)
}

// appendStamp appends the trace-context attributes of one event.
func (pt *PartyTrace) appendStamp(dst []Attr, lclock uint64) []Attr {
	return append(dst,
		String("trace", pt.tc.id.String()),
		Int("party", pt.party),
		Int64("lclock", int64(lclock)))
}

// NextSpanID allocates a deterministic span id, unique within this
// party's stream.
func (pt *PartyTrace) NextSpanID() SpanID {
	if pt == nil {
		return 0
	}
	return SpanID(DeriveTraceID(uint64(pt.tc.id), uint64(int64(pt.party))+0x5a5a, pt.spanSeq.Add(1)))
}

// Wrap decorates a recorder with this stream's trace context: every
// event is stamped with (trace, party, lclock), captured by the flight
// recorder regardless of level, and forwarded to inner if inner's level
// admits it. A nil inner is valid — tracing alone enables telemetry.
// Metrics() prefers inner's registry and falls back to the trace
// context's own, so metric-gated instrumentation (engines, meshes)
// activates under tracing even without a user recorder.
func (pt *PartyTrace) Wrap(inner Recorder) Recorder {
	if pt == nil {
		return Or(inner)
	}
	return tracedRecorder{pt: pt, inner: Or(inner)}
}

// tracedRecorder is the Wrap decorator.
type tracedRecorder struct {
	pt    *PartyTrace
	inner Recorder // never nil
}

func (r tracedRecorder) partyTrace() *PartyTrace { return r.pt }

// Enabled answers true for every level: the flight recorder captures
// debug events even when the wrapped recorder filters them.
func (r tracedRecorder) Enabled(Level) bool { return true }

// Event stamps, flight-records, and conditionally forwards.
func (r tracedRecorder) Event(level Level, name string, attrs ...Attr) {
	lc := r.pt.Tick()
	all := make([]Attr, 0, len(attrs)+3)
	all = append(all, attrs...)
	all = r.pt.appendStamp(all, lc)
	r.pt.flight.Event(level, name, all...)
	if r.inner.Enabled(level) {
		r.inner.Event(level, name, all...)
	}
}

// Metrics returns the wrapped recorder's registry, or the trace
// context's own when the wrapped recorder has none.
func (r tracedRecorder) Metrics() *Metrics {
	if m := r.inner.Metrics(); m != nil {
		return m
	}
	return r.pt.tc.metrics
}

// TraceOf returns the PartyTrace a recorder was wrapped with, or nil
// for untraced recorders — the hook span instrumentation uses to attach
// span/parent identifiers, and wiring code uses to avoid double
// wrapping.
func TraceOf(rec Recorder) *PartyTrace {
	if c, ok := rec.(interface{ partyTrace() *PartyTrace }); ok {
		return c.partyTrace()
	}
	return nil
}

// TracedSpan is a Span that additionally carries span/parent
// identifiers when the recorder is trace-wrapped. The zero span (from a
// disabled recorder) is inert.
type TracedSpan struct {
	rec    Recorder
	name   string
	start  time.Time
	id     SpanID
	parent SpanID
	attrs  []Attr
	hist   *Histogram
}

// StartTracedSpan opens a span on rec. With an untraced recorder it
// degrades to StartSpan semantics (no identifiers); with a disabled
// recorder it returns the inert zero span.
func StartTracedSpan(rec Recorder, name string, parent SpanID, attrs ...Attr) TracedSpan {
	if rec == nil || !rec.Enabled(LevelDebug) {
		return TracedSpan{}
	}
	s := TracedSpan{
		rec:    rec,
		name:   name,
		start:  time.Now(),
		parent: parent,
		attrs:  attrs,
		hist:   rec.Metrics().Histogram(name + ".seconds"),
	}
	if pt := TraceOf(rec); pt != nil {
		s.id = pt.NextSpanID()
	}
	return s
}

// Active reports whether End will record anything — the guard for
// computing expensive end-attributes.
func (s TracedSpan) Active() bool { return s.rec != nil }

// ID returns the span's identifier (0 when inactive or untraced), for
// use as a child span's parent.
func (s TracedSpan) ID() SpanID { return s.id }

// End closes the span: the histogram "<name>.seconds" observes the
// duration and a debug event carries the start attributes, the extra
// attributes, span/parent identifiers, and "seconds".
func (s TracedSpan) End(attrs ...Attr) {
	if s.rec == nil {
		return
	}
	secs := time.Since(s.start).Seconds()
	s.hist.Observe(secs)
	all := make([]Attr, 0, len(s.attrs)+len(attrs)+3)
	all = append(all, s.attrs...)
	all = append(all, attrs...)
	if s.id != 0 {
		all = append(all, String("span", s.id.String()))
	}
	if s.parent != 0 {
		all = append(all, String("parent", s.parent.String()))
	}
	all = append(all, Float64("seconds", secs))
	s.rec.Event(LevelDebug, s.name, all...)
}
