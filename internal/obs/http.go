package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the registry in the Prometheus/OpenMetrics text
// exposition format ("# TYPE" lines, cumulative histogram buckets), so
// a stock Prometheus scrape of /metrics works unmodified. A nil
// registry serves an empty body.
func MetricsHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		_, _ = m.WritePrometheus(w)
	})
}

// MetricsJSONHandler serves the registry as a JSON document
// (expvar-style: one object per metric, histograms summarized). A nil
// registry serves an empty list.
func MetricsJSONHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		points := m.Snapshot()
		if points == nil {
			points = []MetricPoint{}
		}
		_ = enc.Encode(points)
	})
}

// NewDebugMux builds the operator debug endpoint: /metrics serves the
// Prometheus text format, /metrics.json the JSON snapshot, and
// /debug/pprof/* the runtime profiles. Serve it on a loopback or
// firewalled port — it is diagnostics, not a public API.
func NewDebugMux(m *Metrics) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(m))
	mux.Handle("/metrics.json", MetricsJSONHandler(m))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
