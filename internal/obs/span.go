package obs

import "time"

// Span measures one timed region — a protocol round, a session phase —
// against a monotonic clock (time.Since uses the runtime's monotonic
// reading). Spans are plain values: a disabled recorder yields the zero
// Span whose End is a no-op, so the pattern
//
//	sp := obs.StartSpan(rec, "bgw.round", obs.Int("round", r))
//	... work ...
//	sp.End()
//
// costs one branch when telemetry is off.
type Span struct {
	rec   Recorder
	name  string
	start time.Time
	attrs []Attr
	hist  *Histogram
}

// StartSpan opens a span. The event emitted at End carries the given
// attributes plus "seconds"; the duration is additionally observed into
// the histogram "<name>.seconds" of the recorder's registry.
func StartSpan(rec Recorder, name string, attrs ...Attr) Span {
	if rec == nil || !rec.Enabled(LevelDebug) {
		return Span{}
	}
	return Span{
		rec:   rec,
		name:  name,
		start: time.Now(),
		attrs: attrs,
		hist:  rec.Metrics().Histogram(name + ".seconds"),
	}
}

// End closes the span, emitting the event and the histogram
// observation. Extra attributes are appended to the start set. End on a
// zero Span is a no-op.
func (s Span) End(attrs ...Attr) {
	if s.rec == nil {
		return
	}
	secs := time.Since(s.start).Seconds()
	s.hist.Observe(secs)
	all := make([]Attr, 0, len(s.attrs)+len(attrs)+1)
	all = append(all, s.attrs...)
	all = append(all, attrs...)
	all = append(all, Float64("seconds", secs))
	s.rec.Event(LevelDebug, s.name, all...)
}
