// Package sqmtrace reconstructs one causally ordered timeline from the
// per-party flight-recorder dumps a traced session leaves behind
// (obs.TraceContext.DumpAll). Every event carries the Lamport stamp its
// party assigned; merging all streams sorted by (lclock, party, seq) is
// a valid causal order because e happens-before f implies
// lclock(e) < lclock(f). Cross-party edges are recovered by pairing
// each transport.recv's remote_lclock with the transport.send that
// carried the same stamp over the same directed link.
package sqmtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// PartyUnknown marks an event whose dump carried no party attribute.
const PartyUnknown = -2

// Event is one flight-recorder event, enriched with the parsed trace
// stamp. Party -1 is the coordinator stream (obs.CoordParty).
type Event struct {
	Party  int            `json:"party"`
	Seq    uint64         `json:"seq"`
	WallNS int64          `json:"wall_ns"`
	Level  int8           `json:"level"`
	Name   string         `json:"name"`
	Trace  string         `json:"trace,omitempty"`
	LClock int64          `json:"lclock"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	File   string         `json:"-"`
}

// attrInt extracts an integer attribute (JSON numbers decode as
// float64).
func attrInt(attrs map[string]any, key string) (int64, bool) {
	switch v := attrs[key].(type) {
	case float64:
		return int64(v), true
	case int64:
		return v, true
	}
	return 0, false
}

// ReadFile parses one JSONL dump. Lines that fail to parse abort with
// an error naming the line — a truncated dump should be loud, not
// silently short.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var raw struct {
			Seq    uint64         `json:"seq"`
			WallNS int64          `json:"wall_ns"`
			Level  int8           `json:"level"`
			Name   string         `json:"name"`
			Attrs  map[string]any `json:"attrs"`
		}
		if err := json.Unmarshal([]byte(line), &raw); err != nil {
			return nil, fmt.Errorf("sqmtrace: %s:%d: %w", path, lineNo, err)
		}
		ev := Event{
			Party: PartyUnknown, Seq: raw.Seq, WallNS: raw.WallNS,
			Level: raw.Level, Name: raw.Name, Attrs: raw.Attrs, File: path,
		}
		if p, ok := attrInt(raw.Attrs, "party"); ok {
			ev.Party = int(p)
		}
		if lc, ok := attrInt(raw.Attrs, "lclock"); ok {
			ev.LClock = lc
		}
		if tr, ok := raw.Attrs["trace"].(string); ok {
			ev.Trace = tr
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sqmtrace: %s: %w", path, err)
	}
	return events, nil
}

// ReadFiles parses every dump and concatenates the events.
func ReadFiles(paths []string) ([]Event, error) {
	var all []Event
	for _, p := range paths {
		evs, err := ReadFile(p)
		if err != nil {
			return nil, err
		}
		all = append(all, evs...)
	}
	return all, nil
}

// ReadDir parses every trace-*.jsonl dump in dir.
func ReadDir(dir string) ([]Event, []string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "trace-*.jsonl"))
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("sqmtrace: no trace-*.jsonl dumps in %s", dir)
	}
	sort.Strings(paths)
	evs, err := ReadFiles(paths)
	return evs, paths, err
}

// Merge sorts the combined streams into causal order: primarily by
// Lamport stamp, with (party, seq) breaking ties between concurrent
// events deterministically.
func Merge(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.LClock != b.LClock {
			return a.LClock < b.LClock
		}
		if a.Party != b.Party {
			return a.Party < b.Party
		}
		return a.Seq < b.Seq
	})
	return out
}

// LinkStat summarizes the matched traffic of one directed link.
type LinkStat struct {
	From, To int     `json:"-"`
	Link     string  `json:"link"`
	Matched  int     `json:"matched"`
	MeanMS   float64 `json:"mean_ms"` // send→recv wall-clock (same-host dumps)
	MaxMS    float64 `json:"max_ms"`
}

// MatchReport is the result of pairing sends with receives.
type MatchReport struct {
	Matched        int        `json:"matched"`
	UnmatchedSends []Event    `json:"unmatched_sends,omitempty"`
	UnmatchedRecvs []Event    `json:"unmatched_recvs,omitempty"`
	Links          []LinkStat `json:"links,omitempty"`
	// Straggler names the matched link with the highest mean latency —
	// the first place to look when a round is slow.
	Straggler string `json:"straggler,omitempty"`
}

type sendKey struct {
	from, to int
	lclock   int64
}

// MatchSendRecv pairs every transport.recv with the transport.send
// whose Lamport stamp it echoes in remote_lclock, per directed link. An
// unmatched send is a frame that was dropped, cut, or still in flight
// at dump time; an unmatched recv indicates a lost or truncated sender
// dump.
func MatchSendRecv(events []Event) MatchReport {
	sends := make(map[sendKey]Event)
	var r MatchReport
	type linkAgg struct {
		n     int
		sumNS int64
		maxNS int64
	}
	links := make(map[[2]int]*linkAgg)
	for _, ev := range events {
		if ev.Name != "transport.send" {
			continue
		}
		to, ok := attrInt(ev.Attrs, "peer")
		if !ok {
			continue
		}
		sends[sendKey{from: ev.Party, to: int(to), lclock: ev.LClock}] = ev
	}
	for _, ev := range events {
		if ev.Name != "transport.recv" {
			continue
		}
		from, ok1 := attrInt(ev.Attrs, "peer")
		remote, ok2 := attrInt(ev.Attrs, "remote_lclock")
		if !ok1 || !ok2 {
			continue
		}
		key := sendKey{from: int(from), to: ev.Party, lclock: remote}
		send, ok := sends[key]
		if !ok {
			r.UnmatchedRecvs = append(r.UnmatchedRecvs, ev)
			continue
		}
		delete(sends, key)
		r.Matched++
		lk := [2]int{int(from), ev.Party}
		agg := links[lk]
		if agg == nil {
			agg = &linkAgg{}
			links[lk] = agg
		}
		agg.n++
		if d := ev.WallNS - send.WallNS; d > 0 {
			agg.sumNS += d
			if d > agg.maxNS {
				agg.maxNS = d
			}
		}
	}
	for _, ev := range sends {
		r.UnmatchedSends = append(r.UnmatchedSends, ev)
	}
	sort.Slice(r.UnmatchedSends, func(i, j int) bool {
		return r.UnmatchedSends[i].LClock < r.UnmatchedSends[j].LClock
	})
	var worst float64
	for lk, agg := range links {
		ls := LinkStat{
			From: lk[0], To: lk[1],
			Link:    fmt.Sprintf("%d->%d", lk[0], lk[1]),
			Matched: agg.n,
			MeanMS:  float64(agg.sumNS) / float64(agg.n) / 1e6,
			MaxMS:   float64(agg.maxNS) / 1e6,
		}
		r.Links = append(r.Links, ls)
		if ls.MeanMS > worst {
			worst = ls.MeanMS
			r.Straggler = ls.Link
		}
	}
	sort.Slice(r.Links, func(i, j int) bool { return r.Links[i].Link < r.Links[j].Link })
	return r
}

// RoundStat is one communication round observed on a stream.
type RoundStat struct {
	Party    int     `json:"party"`
	Round    int64   `json:"round"`
	Seconds  float64 `json:"seconds"`
	Frames   int64   `json:"frames,omitempty"`
	Messages int64   `json:"messages,omitempty"`
}

// Rounds extracts the bgw.round and session.round boundaries from the
// merged timeline, in causal order.
func Rounds(merged []Event) []RoundStat {
	var out []RoundStat
	for _, ev := range merged {
		if ev.Name != "bgw.round" && ev.Name != "session.round" {
			continue
		}
		round, ok := attrInt(ev.Attrs, "round")
		if !ok {
			continue
		}
		rs := RoundStat{Party: ev.Party, Round: round}
		if s, ok := ev.Attrs["seconds"].(float64); ok {
			rs.Seconds = s
		}
		rs.Frames, _ = attrInt(ev.Attrs, "frames")
		rs.Messages, _ = attrInt(ev.Attrs, "messages")
		out = append(out, rs)
	}
	return out
}

// CheckRoundOrder verifies that, within the merged causal order, every
// stream's round counters are nondecreasing — the acceptance check that
// the Lamport merge reconstructed a consistent history. A drop back to
// round 1 is not a violation: each engine numbers its rounds from 1, so
// a session running several evaluations in sequence legitimately
// restarts the counter. Returns the first violating event, if any.
func CheckRoundOrder(merged []Event) (Event, bool) {
	last := make(map[[2]int]int64) // (party, kind) -> last round
	kinds := map[string]int{"bgw.round": 0, "session.round": 1}
	for _, ev := range merged {
		kind, ok := kinds[ev.Name]
		if !ok {
			continue
		}
		round, ok := attrInt(ev.Attrs, "round")
		if !ok {
			continue
		}
		key := [2]int{ev.Party, kind}
		if prev, seen := last[key]; seen && round < prev && round > 1 {
			return ev, false
		}
		last[key] = round
	}
	return Event{}, true
}

// BudgetEvent is one privacy-ledger entry surfaced on the timeline.
type BudgetEvent struct {
	Name      string  `json:"name"`
	LClock    int64   `json:"lclock"`
	Eps       float64 `json:"eps"`
	Remaining float64 `json:"remaining,omitempty"`
	Exceeded  bool    `json:"exceeded,omitempty"`
}

// BudgetEvents extracts the dp.Accountant's release and budget events.
func BudgetEvents(merged []Event) []BudgetEvent {
	var out []BudgetEvent
	for _, ev := range merged {
		if ev.Name != "dp.release" && ev.Name != "dp.budget_exceeded" {
			continue
		}
		be := BudgetEvent{Name: ev.Name, LClock: ev.LClock, Exceeded: ev.Name == "dp.budget_exceeded"}
		if e, ok := ev.Attrs["eps"].(float64); ok {
			be.Eps = e
		}
		if rem, ok := ev.Attrs["remaining"].(float64); ok {
			be.Remaining = rem
		}
		out = append(out, be)
	}
	return out
}

// Timeline is the full reconstruction: the merged event stream plus the
// derived reports.
type Timeline struct {
	Trace         string        `json:"trace"`
	Files         []string      `json:"files,omitempty"`
	Parties       []int         `json:"parties"`
	Events        []Event       `json:"events"`
	Match         MatchReport   `json:"match"`
	Rounds        []RoundStat   `json:"rounds,omitempty"`
	Budget        []BudgetEvent `json:"budget,omitempty"`
	CausalOrderOK bool          `json:"causal_order_ok"`
}

// Build merges the raw events and derives every report.
func Build(events []Event, files []string) *Timeline {
	merged := Merge(events)
	tl := &Timeline{Files: files, Events: merged, Match: MatchSendRecv(merged), Rounds: Rounds(merged)}
	tl.Budget = BudgetEvents(merged)
	_, tl.CausalOrderOK = CheckRoundOrder(merged)
	seen := make(map[int]bool)
	for _, ev := range merged {
		if tl.Trace == "" && ev.Trace != "" {
			tl.Trace = ev.Trace
		}
		if ev.Party != PartyUnknown && !seen[ev.Party] {
			seen[ev.Party] = true
			tl.Parties = append(tl.Parties, ev.Party)
		}
	}
	sort.Ints(tl.Parties)
	return tl
}

// WriteJSON renders the timeline as one indented JSON document.
func (tl *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tl)
}

// WriteText renders a human-readable summary followed by the merged
// event listing.
func (tl *Timeline) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace %s: %d events across %d streams\n", tl.Trace, len(tl.Events), len(tl.Parties))
	fmt.Fprintf(bw, "send/recv: %d matched, %d unmatched sends, %d unmatched recvs\n",
		tl.Match.Matched, len(tl.Match.UnmatchedSends), len(tl.Match.UnmatchedRecvs))
	for _, ls := range tl.Match.Links {
		fmt.Fprintf(bw, "  link %-8s %5d frames  mean %.3fms  max %.3fms\n", ls.Link, ls.Matched, ls.MeanMS, ls.MaxMS)
	}
	if tl.Match.Straggler != "" {
		fmt.Fprintf(bw, "  straggler: %s\n", tl.Match.Straggler)
	}
	if !tl.CausalOrderOK {
		fmt.Fprintf(bw, "WARNING: round counters regress within the merged order\n")
	}
	for _, be := range tl.Budget {
		mark := ""
		if be.Exceeded {
			mark = "  ** BUDGET EXCEEDED **"
		}
		fmt.Fprintf(bw, "budget @%d %s eps=%.4f%s\n", be.LClock, be.Name, be.Eps, mark)
	}
	fmt.Fprintln(bw)
	for _, ev := range tl.Events {
		party := "coord"
		if ev.Party >= 0 {
			party = fmt.Sprintf("party%d", ev.Party)
		} else if ev.Party == PartyUnknown {
			party = "?"
		}
		fmt.Fprintf(bw, "%8d %-7s %s", ev.LClock, party, ev.Name)
		keys := make([]string, 0, len(ev.Attrs))
		for k := range ev.Attrs {
			if k == "trace" || k == "party" || k == "lclock" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(bw, " %s=%v", k, ev.Attrs[k])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
