package sqmtrace

import (
	"testing"
)

func ev(party int, lclock int64, name string, attrs map[string]any) Event {
	if attrs == nil {
		attrs = map[string]any{}
	}
	return Event{Party: party, LClock: lclock, Name: name, Attrs: attrs}
}

func TestMergeSortsByLamportThenParty(t *testing.T) {
	in := []Event{
		ev(1, 5, "b", nil),
		ev(0, 2, "a", nil),
		ev(0, 5, "c", nil),
		ev(-1, 1, "start", nil),
	}
	out := Merge(in)
	want := []string{"start", "a", "c", "b"}
	for i, w := range want {
		if out[i].Name != w {
			t.Fatalf("merged[%d] = %s, want %s", i, out[i].Name, w)
		}
	}
}

func TestMatchSendRecvPairsAndOrphans(t *testing.T) {
	events := []Event{
		ev(0, 3, "transport.send", map[string]any{"peer": float64(1)}),
		ev(1, 4, "transport.recv", map[string]any{"peer": float64(0), "remote_lclock": float64(3)}),
		// A dropped frame: sent but never received.
		ev(0, 7, "transport.send", map[string]any{"peer": float64(2)}),
		// A receive whose sender dump was lost.
		ev(2, 9, "transport.recv", map[string]any{"peer": float64(1), "remote_lclock": float64(8)}),
	}
	r := MatchSendRecv(events)
	if r.Matched != 1 {
		t.Fatalf("matched = %d, want 1", r.Matched)
	}
	if len(r.UnmatchedSends) != 1 || r.UnmatchedSends[0].LClock != 7 {
		t.Fatalf("unmatched sends = %v", r.UnmatchedSends)
	}
	if len(r.UnmatchedRecvs) != 1 || r.UnmatchedRecvs[0].LClock != 9 {
		t.Fatalf("unmatched recvs = %v", r.UnmatchedRecvs)
	}
	if len(r.Links) != 1 || r.Links[0].Link != "0->1" {
		t.Fatalf("links = %v", r.Links)
	}
}

func TestCheckRoundOrder(t *testing.T) {
	good := []Event{
		ev(-1, 1, "bgw.round", map[string]any{"round": float64(1)}),
		ev(-1, 2, "bgw.round", map[string]any{"round": float64(3)}),
		ev(-1, 3, "session.round", map[string]any{"round": float64(0)}),
		ev(0, 4, "bgw.round", map[string]any{"round": float64(1)}),
		// A fresh engine restarts its counter at 1: not a violation.
		ev(-1, 5, "bgw.round", map[string]any{"round": float64(1)}),
	}
	if _, ok := CheckRoundOrder(good); !ok {
		t.Fatal("consistent rounds rejected")
	}
	bad := append(good, ev(-1, 6, "bgw.round", map[string]any{"round": float64(2)}),
		ev(-1, 7, "bgw.round", map[string]any{"round": float64(4)}),
		ev(-1, 8, "bgw.round", map[string]any{"round": float64(3)}))
	if evt, ok := CheckRoundOrder(bad); ok || evt.LClock != 8 {
		t.Fatalf("regressing round not flagged: %v %v", evt, ok)
	}
}

func TestBudgetEvents(t *testing.T) {
	events := []Event{
		ev(-1, 2, "dp.release", map[string]any{"eps": 0.7, "remaining": 1.8}),
		ev(-1, 9, "dp.budget_exceeded", map[string]any{"eps": 3.1}),
	}
	out := BudgetEvents(events)
	if len(out) != 2 || out[0].Eps != 0.7 || out[0].Remaining != 1.8 {
		t.Fatalf("budget events = %+v", out)
	}
	if !out[1].Exceeded {
		t.Fatal("dp.budget_exceeded not flagged")
	}
}
