package sqmtrace

import (
	"testing"

	"sqm/internal/core"
	"sqm/internal/linalg"
	"sqm/internal/obs"
	"sqm/internal/randx"
)

// TestE2ETimelineFromTCPLogregSession is the acceptance test for the
// tracing stack: run a 3-party logistic-regression gradient session
// over the TCP mesh with a shared trace context, dump every party's
// flight recorder, and rebuild the timeline. Every cross-party
// send/recv pair must match by (trace, lclock) and the per-party round
// counters must appear in causal order.
func TestE2ETimelineFromTCPLogregSession(t *testing.T) {
	const rows, cols, parties = 18, 3, 3
	feat := linalg.NewMatrix(rows, cols)
	rng := randx.New(41)
	labels := make([]float64, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			feat.Set(i, j, rng.Float64()-0.5)
		}
		labels[i] = float64(i % 2)
	}

	tc := obs.NewTraceContext(obs.DeriveTraceID(17, parties), parties)
	proto, err := core.NewLRProtocol(feat, labels, core.Params{
		Gamma:   32,
		Mu:      25,
		Engine:  core.EngineActorBGWNet,
		Parties: parties,
		Seed:    17,
		Trace:   tc,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.2, -0.1, 0.4}
	for round := 0; round < 2; round++ {
		if _, _, err := proto.GradientSum(w, nil); err != nil {
			proto.Close()
			t.Fatalf("gradient round %d: %v", round, err)
		}
	}
	if err := proto.Close(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	files, err := tc.DumpAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != parties+1 { // coordinator + one stream per party
		t.Fatalf("dumped %d files, want %d: %v", len(files), parties+1, files)
	}

	events, read, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	tl := Build(events, read)

	if tl.Trace != tc.ID().String() {
		t.Fatalf("timeline trace = %q, want %q", tl.Trace, tc.ID())
	}
	if tl.Match.Matched == 0 {
		t.Fatal("no cross-party send/recv pairs matched")
	}
	if len(tl.Match.UnmatchedRecvs) != 0 {
		t.Fatalf("%d receives with no matching send: %v",
			len(tl.Match.UnmatchedRecvs), tl.Match.UnmatchedRecvs)
	}
	if len(tl.Match.UnmatchedSends) != 0 {
		t.Fatalf("%d sends never received: %v",
			len(tl.Match.UnmatchedSends), tl.Match.UnmatchedSends)
	}
	if !tl.CausalOrderOK {
		t.Fatal("round counters regress in merged causal order")
	}
	// Every mesh party contributed events to the merged timeline.
	seen := map[int]bool{}
	for _, ev := range tl.Events {
		seen[ev.Party] = true
	}
	for p := 0; p < parties; p++ {
		if !seen[p] {
			t.Fatalf("party %d missing from merged timeline (parties seen: %v)", p, seen)
		}
	}
}
