package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"sqm/internal/randx"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatal("Set failed")
	}
	if got := m.Col(0); got[0] != 1 || got[1] != 4 {
		t.Fatalf("Col(0) = %v", got)
	}
	row := m.Row(1)
	row[0] = 40
	if m.At(1, 0) != 40 {
		t.Fatal("Row must be a mutable view")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := m.T()
	if tt.Rows != 3 || tt.Cols != 2 {
		t.Fatalf("shape = %dx%d", tt.Rows, tt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tt.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
	// (Mᵀ)ᵀ == M
	back := tt.T()
	for i, v := range m.Data {
		if back.Data[i] != v {
			t.Fatal("double transpose is not identity")
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	s := a.Add(b)
	if s.At(0, 0) != 6 || s.At(1, 1) != 12 {
		t.Fatalf("Add = %v", s.Data)
	}
	d := b.Sub(a)
	if d.At(0, 0) != 4 || d.At(1, 1) != 4 {
		t.Fatalf("Sub = %v", d.Data)
	}
	sc := a.Scale(2)
	if sc.At(1, 0) != 6 {
		t.Fatalf("Scale = %v", sc.Data)
	}
	// Originals untouched.
	if a.At(0, 0) != 1 || b.At(0, 0) != 5 {
		t.Fatal("operations must not mutate operands")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range want.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", c.Data, want.Data)
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestMulIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randx.New(seed)
		n := 1 + g.IntN(6)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = g.Gaussian(0, 1)
		}
		p := m.Mul(Identity(n))
		for i := range m.Data {
			if p.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGramMatchesExplicitProduct(t *testing.T) {
	g := randx.New(3)
	m := NewMatrix(7, 5)
	for i := range m.Data {
		m.Data[i] = g.Gaussian(0, 1)
	}
	gram := m.Gram()
	want := m.T().Mul(m)
	for i := range want.Data {
		if !approx(gram.Data[i], want.Data[i], 1e-10) {
			t.Fatalf("Gram mismatch at %d: %v vs %v", i, gram.Data[i], want.Data[i])
		}
	}
	if !gram.IsSymmetric(0) {
		t.Fatal("Gram matrix must be exactly symmetric")
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := m.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestFrobeniusAndTrace(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	if got := m.FrobeniusNorm(); !approx(got, 5, 1e-12) {
		t.Fatalf("Frobenius = %v", got)
	}
	if got := m.FrobeniusNormSq(); !approx(got, 25, 1e-12) {
		t.Fatalf("FrobeniusSq = %v", got)
	}
	if got := m.Trace(); got != 7 {
		t.Fatalf("Trace = %v", got)
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{-9, 2}, {3, 4}})
	if got := m.MaxAbs(); got != 9 {
		t.Fatalf("MaxAbs = %v", got)
	}
	if got := NewMatrix(0, 0).MaxAbs(); got != 0 {
		t.Fatalf("empty MaxAbs = %v", got)
	}
}

func TestIsSymmetric(t *testing.T) {
	if !FromRows([][]float64{{1, 2}, {2, 1}}).IsSymmetric(0) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	if FromRows([][]float64{{1, 2}, {3, 1}}).IsSymmetric(0.5) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(1) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Norm2([]float64{3, 4}); !approx(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v", got)
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	if y[2] != 7 {
		t.Fatalf("Axpy = %v", y)
	}
	ScaleVec(0.5, y)
	if y[2] != 3.5 {
		t.Fatalf("ScaleVec = %v", y)
	}
}

func TestClipNorm(t *testing.T) {
	v := []float64{3, 4}
	f := ClipNorm(v, 1)
	if !approx(Norm2(v), 1, 1e-12) {
		t.Fatalf("clipped norm = %v", Norm2(v))
	}
	if !approx(f, 0.2, 1e-12) {
		t.Fatalf("factor = %v", f)
	}
	w := []float64{0.3, 0.4}
	if f := ClipNorm(w, 1); f != 1 || w[0] != 0.3 {
		t.Fatal("ClipNorm must not change short vectors")
	}
	z := []float64{0, 0}
	if f := ClipNorm(z, 1); f != 1 {
		t.Fatal("ClipNorm of zero vector")
	}
}

func TestSetColLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(3, 2).SetCol(0, []float64{1})
}
