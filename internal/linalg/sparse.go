package linalg

import (
	"math"

	"sqm/internal/invariant"
	"sqm/internal/mathx"
)

// Sparse is a compressed-sparse-row matrix. It exists for the
// high-dimensional sparse datasets (CiteSeer-style bags of words) where
// the Gram matrix costs Σ_i nnz(row_i)² instead of n²·m.
type Sparse struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1
	ColIdx     []int // len NNZ
	Val        []float64
}

// SparseFromDense compresses a dense matrix, dropping entries with
// |v| <= tol.
func SparseFromDense(m *Matrix, tol float64) *Sparse {
	s := &Sparse{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			if math.Abs(v) > tol {
				s.ColIdx = append(s.ColIdx, j)
				s.Val = append(s.Val, v)
			}
		}
		s.RowPtr[i+1] = len(s.Val)
	}
	return s
}

// NNZ returns the stored entry count.
func (s *Sparse) NNZ() int { return len(s.Val) }

// ToDense expands back to a dense matrix.
func (s *Sparse) ToDense() *Matrix {
	m := NewMatrix(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		row := m.Row(i)
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			row[s.ColIdx[p]] = s.Val[p]
		}
	}
	return m
}

// RowNNZ returns the stored entries of row i as (columns, values)
// views.
func (s *Sparse) RowNNZ(i int) ([]int, []float64) {
	lo, hi := s.RowPtr[i], s.RowPtr[i+1]
	return s.ColIdx[lo:hi], s.Val[lo:hi]
}

// MulVec returns s·v.
func (s *Sparse) MulVec(v []float64) []float64 {
	if len(v) != s.Cols {
		panic(invariant.Violation("linalg: Sparse.MulVec length %d != %d", len(v), s.Cols))
	}
	out := make([]float64, s.Rows)
	for i := 0; i < s.Rows; i++ {
		var acc float64
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			acc += s.Val[p] * v[s.ColIdx[p]]
		}
		out[i] = acc
	}
	return out
}

// Gram returns sᵀs as a dense matrix, accumulating one outer product
// per row: O(Σ_i nnz_i²) instead of the dense O(m·n²).
func (s *Sparse) Gram() *Matrix {
	g := NewMatrix(s.Cols, s.Cols)
	for i := 0; i < s.Rows; i++ {
		cols, vals := s.RowNNZ(i)
		for a, ca := range cols {
			va := vals[a]
			ga := g.Row(ca)
			for b := a; b < len(cols); b++ {
				ga[cols[b]] += va * vals[b]
			}
		}
	}
	for a := 0; a < g.Rows; a++ {
		for b := a + 1; b < g.Cols; b++ {
			g.Set(b, a, g.At(a, b))
		}
	}
	return g
}

// FrobeniusNormSq returns Σ v².
func (s *Sparse) FrobeniusNormSq() float64 {
	var acc float64
	for _, v := range s.Val {
		acc += v * v
	}
	return acc
}

// TMulVec returns sᵀ·v (length Cols).
func (s *Sparse) TMulVec(v []float64) []float64 {
	if len(v) != s.Rows {
		panic(invariant.Violation("linalg: Sparse.TMulVec length %d != %d", len(v), s.Rows))
	}
	out := make([]float64, s.Cols)
	for i := 0; i < s.Rows; i++ {
		vi := v[i]
		if mathx.EqualWithin(vi, 0, 0) {
			continue
		}
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			out[s.ColIdx[p]] += s.Val[p] * vi
		}
	}
	return out
}
