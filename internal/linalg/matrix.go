// Package linalg implements the dense linear algebra needed by the SQM
// applications: matrix products, Gram matrices, Frobenius/spectral norms,
// a Jacobi symmetric eigensolver, and top-k subspace iteration for the
// principal-component experiments. It is written against the standard
// library only and stores matrices row-major.
package linalg

import (
	"math"

	"sqm/internal/invariant"
	"sqm/internal/mathx"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(invariant.Violation("linalg: negative dimension"))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(invariant.Violation("linalg: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a mutable slice view.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	c := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		c[i] = m.At(i, j)
	}
	return c
}

// SetCol assigns column j from v.
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.Rows {
		panic(invariant.Violation("linalg: SetCol length mismatch"))
	}
	for i := 0; i < m.Rows; i++ {
		m.Set(i, j, v[i])
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Add returns m + o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.mustSameShape(o)
	r := m.Clone()
	for i, v := range o.Data {
		r.Data[i] += v
	}
	return r
}

// Sub returns m - o.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.mustSameShape(o)
	r := m.Clone()
	for i, v := range o.Data {
		r.Data[i] -= v
	}
	return r
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	r := m.Clone()
	for i := range r.Data {
		r.Data[i] *= s
	}
	return r
}

// Mul returns the matrix product m * o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(invariant.Violation("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	r := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		ri := r.Row(i)
		for k, a := range mi {
			if mathx.EqualWithin(a, 0, 0) {
				continue
			}
			ok := o.Data[k*o.Cols : (k+1)*o.Cols]
			for j, b := range ok {
				ri[j] += a * b
			}
		}
	}
	return r
}

// Gram returns the Gram matrix mᵀm (the covariance-style product used by
// the PCA instantiation).
func (m *Matrix) Gram() *Matrix {
	g := NewMatrix(m.Cols, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for a, va := range row {
			if mathx.EqualWithin(va, 0, 0) {
				continue
			}
			ga := g.Row(a)
			for b := a; b < len(row); b++ {
				ga[b] += va * row[b]
			}
		}
	}
	// Mirror the upper triangle.
	for a := 0; a < g.Rows; a++ {
		for b := a + 1; b < g.Cols; b++ {
			g.Set(b, a, g.At(a, b))
		}
	}
	return g
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(invariant.Violation("linalg: MulVec length mismatch"))
	}
	r := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		r[i] = Dot(m.Row(i), v)
	}
	return r
}

// FrobeniusNorm returns sqrt(Σ m[i,j]^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// FrobeniusNormSq returns Σ m[i,j]^2, the utility metric ‖·‖_F² of the
// paper's PCA experiments.
func (m *Matrix) FrobeniusNormSq() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return s
}

// Trace returns Σ m[i,i]; panics unless square.
func (m *Matrix) Trace() float64 {
	m.mustSquare()
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += m.At(i, i)
	}
	return s
}

// IsSymmetric reports whether |m[i,j]-m[j,i]| <= tol for all entries.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns max |m[i,j]| (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

func (m *Matrix) mustSameShape(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(invariant.Violation("linalg: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

func (m *Matrix) mustSquare() {
	if m.Rows != m.Cols {
		panic(invariant.Violation("linalg: %dx%d matrix is not square", m.Rows, m.Cols))
	}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(invariant.Violation("linalg: Dot length mismatch"))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(invariant.Violation("linalg: Axpy length mismatch"))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec computes v *= a in place.
func ScaleVec(a float64, v []float64) {
	for i := range v {
		v[i] *= a
	}
}

// ClipNorm rescales v in place so that ‖v‖₂ <= c, returning the factor
// applied (1 if no clipping occurred). c must be positive.
func ClipNorm(v []float64, c float64) float64 {
	n := Norm2(v)
	if n <= c || mathx.EqualWithin(n, 0, 0) {
		return 1
	}
	f := c / n
	ScaleVec(f, v)
	return f
}
