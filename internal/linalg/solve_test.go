package linalg

import (
	"math"
	"testing"

	"sqm/internal/randx"
)

func spdMatrix(n int, seed uint64) *Matrix {
	g := randx.New(seed)
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = g.Gaussian(0, 1)
	}
	return b.T().Mul(b).AddDiagonal(float64(n)) // strictly SPD
}

func TestCholeskyReconstructs(t *testing.T) {
	a := spdMatrix(8, 1)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	recon := l.Mul(l.T())
	if diff := recon.Sub(a).FrobeniusNorm(); diff > 1e-9*a.FrobeniusNorm() {
		t.Fatalf("L·Lᵀ off by %v", diff)
	}
	// Lower triangular.
	for i := 0; i < l.Rows; i++ {
		for j := i + 1; j < l.Cols; j++ {
			if l.At(i, j) != 0 {
				t.Fatal("L is not lower triangular")
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v", err)
	}
}

func TestSolveSPDKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual.
	r := a.MulVec(x)
	for i := range b {
		if math.Abs(r[i]-b[i]) > 1e-12 {
			t.Fatalf("residual at %d: %v", i, r[i]-b[i])
		}
	}
}

func TestSolveSPDRandomSystems(t *testing.T) {
	g := randx.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 2 + g.IntN(12)
		a := spdMatrix(n, uint64(trial+10))
		want := g.GaussianVec(n, 1)
		b := a.MulVec(want)
		x, err := SolveSPD(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], want[i])
			}
		}
	}
}

func TestAddDiagonal(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.AddDiagonal(10)
	if b.At(0, 0) != 11 || b.At(1, 1) != 14 || b.At(0, 1) != 2 {
		t.Fatalf("AddDiagonal = %v", b.Data)
	}
	if a.At(0, 0) != 1 {
		t.Fatal("AddDiagonal must not mutate")
	}
}

func BenchmarkCholesky50(b *testing.B) {
	a := spdMatrix(50, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}
