package linalg

import (
	"math"
	"testing"

	"sqm/internal/randx"
)

// sparseTestMatrix builds a dense matrix with controlled sparsity.
func sparseTestMatrix(rows, cols int, density float64, seed uint64) *Matrix {
	g := randx.New(seed)
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if g.Bernoulli(density) {
			m.Data[i] = g.Gaussian(0, 1)
		}
	}
	return m
}

func TestSparseRoundTrip(t *testing.T) {
	m := sparseTestMatrix(20, 15, 0.2, 1)
	s := SparseFromDense(m, 0)
	back := s.ToDense()
	for i := range m.Data {
		if back.Data[i] != m.Data[i] {
			t.Fatal("round trip mismatch")
		}
	}
	if s.Rows != 20 || s.Cols != 15 {
		t.Fatal("shape")
	}
}

func TestSparseNNZAndTolerance(t *testing.T) {
	m := FromRows([][]float64{{0, 1e-12, 2}, {3, 0, 1e-9}})
	s := SparseFromDense(m, 1e-10)
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (tiny entries dropped)", s.NNZ())
	}
}

func TestSparseMulVecMatchesDense(t *testing.T) {
	m := sparseTestMatrix(30, 12, 0.3, 2)
	s := SparseFromDense(m, 0)
	g := randx.New(3)
	v := g.GaussianVec(12, 1)
	want := m.MulVec(v)
	got := s.MulVec(v)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSparseTMulVecMatchesDense(t *testing.T) {
	m := sparseTestMatrix(25, 10, 0.25, 4)
	s := SparseFromDense(m, 0)
	g := randx.New(5)
	v := g.GaussianVec(25, 1)
	want := m.T().MulVec(v)
	got := s.TMulVec(v)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("TMulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSparseGramMatchesDense(t *testing.T) {
	m := sparseTestMatrix(40, 18, 0.15, 6)
	s := SparseFromDense(m, 0)
	want := m.Gram()
	got := s.Gram()
	if diff := got.Sub(want).MaxAbs(); diff > 1e-10 {
		t.Fatalf("Gram differs by %v", diff)
	}
	if !got.IsSymmetric(0) {
		t.Fatal("sparse Gram must be symmetric")
	}
}

func TestSparseFrobenius(t *testing.T) {
	m := sparseTestMatrix(10, 10, 0.5, 7)
	s := SparseFromDense(m, 0)
	if math.Abs(s.FrobeniusNormSq()-m.FrobeniusNormSq()) > 1e-12 {
		t.Fatal("Frobenius mismatch")
	}
}

func TestSparseMulVecLengthPanics(t *testing.T) {
	s := SparseFromDense(NewMatrix(2, 3), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.MulVec([]float64{1})
}

func TestSparseEmptyRows(t *testing.T) {
	m := NewMatrix(3, 4) // all zero
	s := SparseFromDense(m, 0)
	if s.NNZ() != 0 {
		t.Fatal("zero matrix must have no entries")
	}
	g := s.Gram()
	if g.FrobeniusNorm() != 0 {
		t.Fatal("Gram of zero matrix")
	}
}

func BenchmarkSparseGramVsDense(b *testing.B) {
	// 2000 x 1000 at 1% density: sparse Gram should be far cheaper.
	m := sparseTestMatrix(2000, 1000, 0.01, 8)
	s := SparseFromDense(m, 0)
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Gram()
		}
	})
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Gram()
		}
	})
}
