package linalg

import (
	"math"
	"testing"

	"sqm/internal/randx"
)

// randomSymmetric builds a symmetric matrix with a planted spectrum.
func randomSymmetric(n int, eigvals []float64, g *randx.RNG) *Matrix {
	// Random orthogonal basis from QR of a Gaussian matrix.
	q := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		q.SetCol(j, g.GaussianVec(n, 1))
	}
	orthonormalize(q)
	// A = Q diag(eig) Qᵀ
	d := NewMatrix(n, n)
	for i, v := range eigvals {
		d.Set(i, i, v)
	}
	return q.Mul(d).Mul(q.T())
}

func TestSymEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 7}})
	e := SymEigen(a)
	want := []float64{7, 3, -1}
	for i, w := range want {
		if math.Abs(e.Values[i]-w) > 1e-10 {
			t.Fatalf("Values = %v, want %v", e.Values, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	e := SymEigen(a)
	if math.Abs(e.Values[0]-3) > 1e-10 || math.Abs(e.Values[1]-1) > 1e-10 {
		t.Fatalf("Values = %v", e.Values)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
	v := e.Vectors.Col(0)
	if math.Abs(math.Abs(v[0])-1/math.Sqrt2) > 1e-8 || math.Abs(v[0]-v[1]) > 1e-8 {
		t.Fatalf("principal vector = %v", v)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	g := randx.New(9)
	eig := []float64{10, 5, 2, 1, -3, -8}
	a := randomSymmetric(6, eig, g)
	e := SymEigen(a)
	for i, w := range []float64{10, 5, 2, 1, -3, -8} {
		if math.Abs(e.Values[i]-w) > 1e-8 {
			t.Fatalf("Values[%d] = %v, want %v", i, e.Values[i], w)
		}
	}
	// A ≈ V diag(values) Vᵀ.
	d := NewMatrix(6, 6)
	for i, v := range e.Values {
		d.Set(i, i, v)
	}
	recon := e.Vectors.Mul(d).Mul(e.Vectors.T())
	if diff := recon.Sub(a).FrobeniusNorm(); diff > 1e-8 {
		t.Fatalf("reconstruction error = %v", diff)
	}
}

func TestSymEigenVectorsOrthonormal(t *testing.T) {
	g := randx.New(10)
	a := randomSymmetric(8, []float64{9, 7, 5, 4, 3, 2, 1, 0.5}, g)
	e := SymEigen(a)
	gram := e.Vectors.T().Mul(e.Vectors)
	if diff := gram.Sub(Identity(8)).FrobeniusNorm(); diff > 1e-8 {
		t.Fatalf("VᵀV deviates from identity by %v", diff)
	}
}

func TestTopKMatchesFullEigen(t *testing.T) {
	g := randx.New(11)
	eig := []float64{20, 12, 6, 1, 0.5, 0.2, 0.1, 0.05}
	a := randomSymmetric(8, eig, g)
	v := TopK(a, 3, g, 100)
	if v.Rows != 8 || v.Cols != 3 {
		t.Fatalf("shape = %dx%d", v.Rows, v.Cols)
	}
	// Captured variance Tr(Vᵀ A V) should match the sum of the top-3
	// eigenvalues.
	captured := v.T().Mul(a).Mul(v).Trace()
	want := 20.0 + 12 + 6
	if math.Abs(captured-want) > 1e-6*want {
		t.Fatalf("captured = %v, want %v", captured, want)
	}
}

func TestTopKWithDominantNegativeEigenvalue(t *testing.T) {
	// Largest |eig| is negative; TopK must still return the largest
	// *algebraic* directions, as PCA requires.
	g := randx.New(12)
	eig := []float64{5, 3, 1, -0.5, -40}
	a := randomSymmetric(5, eig, g)
	v := TopK(a, 2, g, 200)
	captured := v.T().Mul(a).Mul(v).Trace()
	if math.Abs(captured-8) > 1e-5*8 {
		t.Fatalf("captured = %v, want 8", captured)
	}
}

func TestTopKOrthonormal(t *testing.T) {
	g := randx.New(13)
	a := randomSymmetric(10, []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, g)
	v := TopK(a, 4, g, 60)
	gram := v.T().Mul(v)
	if diff := gram.Sub(Identity(4)).FrobeniusNorm(); diff > 1e-9 {
		t.Fatalf("VᵀV deviates from identity by %v", diff)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	g := randx.New(14)
	a := randomSymmetric(4, []float64{4, 3, 2, 1}, g)
	if v := TopK(a, 0, g, 10); v.Cols != 0 {
		t.Fatal("k=0 should give zero columns")
	}
	if v := TopK(a, 9, g, 50); v.Cols != 4 {
		t.Fatalf("k>n should clamp to n, got %d", v.Cols)
	}
}

func TestSpectralNorm(t *testing.T) {
	g := randx.New(15)
	a := randomSymmetric(6, []float64{-7, 3, 2, 1, 0.5, 0.1}, g)
	// Spectral norm is max |eig| = 7.
	if got := SpectralNorm(a, g); math.Abs(got-7) > 1e-4 {
		t.Fatalf("SpectralNorm = %v, want 7", got)
	}
	// Rectangular case: diag-like singular values.
	b := FromRows([][]float64{{3, 0, 0}, {0, 4, 0}})
	if got := SpectralNorm(b, g); math.Abs(got-4) > 1e-5 {
		t.Fatalf("SpectralNorm = %v, want 4", got)
	}
	if got := SpectralNorm(NewMatrix(0, 3), g); got != 0 {
		t.Fatalf("empty SpectralNorm = %v", got)
	}
}

func TestProjectPSD(t *testing.T) {
	g := randx.New(16)
	a := randomSymmetric(6, []float64{5, 3, 1, -0.5, -2, -4}, g)
	p := ProjectPSD(a)
	// All eigenvalues of the projection are non-negative, positives kept.
	e := SymEigen(p)
	for i, v := range e.Values {
		if v < -1e-9 {
			t.Fatalf("eigenvalue %d = %v still negative", i, v)
		}
	}
	want := []float64{5, 3, 1}
	for i, w := range want {
		if math.Abs(e.Values[i]-w) > 1e-8 {
			t.Fatalf("positive eigenvalue %d = %v, want %v", i, e.Values[i], w)
		}
	}
	// Idempotent on an already-PSD matrix.
	b := randomSymmetric(4, []float64{4, 2, 1, 0.5}, g)
	if diff := ProjectPSD(b).Sub(b).FrobeniusNorm(); diff > 1e-8 {
		t.Fatalf("PSD input changed by %v", diff)
	}
}

func TestOrthonormalizeRankDeficient(t *testing.T) {
	// Two identical columns: second must be replaced, output orthonormal.
	q := FromRows([][]float64{{1, 1}, {0, 0}, {0, 0}})
	orthonormalize(q)
	gram := q.T().Mul(q)
	if diff := gram.Sub(Identity(2)).FrobeniusNorm(); diff > 1e-9 {
		t.Fatalf("orthonormalize failed on rank-deficient input: %v", diff)
	}
}

func BenchmarkGram200x100(b *testing.B) {
	g := randx.New(1)
	m := NewMatrix(200, 100)
	for i := range m.Data {
		m.Data[i] = g.Gaussian(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Gram()
	}
}

func BenchmarkSymEigen50(b *testing.B) {
	g := randx.New(1)
	eig := make([]float64, 50)
	for i := range eig {
		eig[i] = float64(50 - i)
	}
	a := randomSymmetric(50, eig, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SymEigen(a)
	}
}

func BenchmarkTopK200(b *testing.B) {
	g := randx.New(1)
	eig := make([]float64, 200)
	for i := range eig {
		eig[i] = 1 / float64(i+1)
	}
	a := randomSymmetric(200, eig, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(a, 5, g, 30)
	}
}
