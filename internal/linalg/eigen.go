package linalg

import (
	"math"
	"sort"

	"sqm/internal/mathx"
	"sqm/internal/randx"
)

// EigenResult holds a symmetric eigendecomposition with eigenvalues in
// descending order. Vectors.Col(i) is the unit eigenvector for Values[i].
type EigenResult struct {
	Values  []float64
	Vectors *Matrix // n x n, column i ↔ Values[i]
}

// SymEigen computes the full eigendecomposition of a symmetric matrix by
// the cyclic Jacobi method. Intended for moderate n (≲ 1500); use TopK
// for large matrices where only the principal subspace matters.
func SymEigen(a *Matrix) *EigenResult {
	a.mustSquare()
	n := a.Rows
	s := a.Clone()
	v := Identity(n)
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(s)
		if off <= 1e-12*(1+s.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(s, v, p, q)
			}
		}
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.At(i, i)
	}
	// Sort descending, permuting eigenvector columns accordingly.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sorted := make([]float64, n)
	vecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sorted[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			vecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return &EigenResult{Values: sorted, Vectors: vecs}
}

func offDiagNorm(s *Matrix) float64 {
	var sum float64
	for i := 0; i < s.Rows; i++ {
		for j := i + 1; j < s.Cols; j++ {
			sum += 2 * s.At(i, j) * s.At(i, j)
		}
	}
	return math.Sqrt(sum)
}

// jacobiRotate zeroes s[p,q] with a Givens rotation, accumulating into v.
func jacobiRotate(s, v *Matrix, p, q int) {
	apq := s.At(p, q)
	if mathx.EqualWithin(apq, 0, 0) {
		return
	}
	app, aqq := s.At(p, p), s.At(q, q)
	theta := (aqq - app) / (2 * apq)
	t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
	c := 1 / math.Sqrt(t*t+1)
	sn := t * c
	n := s.Rows
	for k := 0; k < n; k++ {
		skp, skq := s.At(k, p), s.At(k, q)
		s.Set(k, p, c*skp-sn*skq)
		s.Set(k, q, sn*skp+c*skq)
	}
	for k := 0; k < n; k++ {
		spk, sqk := s.At(p, k), s.At(q, k)
		s.Set(p, k, c*spk-sn*sqk)
		s.Set(q, k, sn*spk+c*sqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-sn*vkq)
		v.Set(k, q, sn*vkp+c*vkq)
	}
}

// TopK returns the k principal eigenvectors (as the columns of an n x k
// orthonormal matrix) of a symmetric matrix, via randomized subspace
// (block power) iteration with Gram-Schmidt re-orthonormalization. It
// shifts the matrix so block power iteration converges to the largest
// *algebraic* eigenvalues even when negative eigenvalues dominate in
// magnitude — that is what PCA on a noisy covariance needs.
func TopK(a *Matrix, k int, rng *randx.RNG, iters int) *Matrix {
	a.mustSquare()
	n := a.Rows
	if k > n {
		k = n
	}
	if k <= 0 {
		return NewMatrix(n, 0)
	}
	if iters <= 0 {
		iters = 30
	}
	// Gershgorin-style lower bound: a + shift*I is PSD-ish so the top
	// algebraic eigenvalues are also top in magnitude.
	shift := gershgorinLowerBound(a)
	var sh float64
	if shift < 0 {
		sh = -shift
	}
	q := NewMatrix(n, k)
	for j := 0; j < k; j++ {
		col := rng.GaussianVec(n, 1)
		q.SetCol(j, col)
	}
	orthonormalize(q)
	tmp := NewMatrix(n, k)
	for it := 0; it < iters; it++ {
		// tmp = (a + sh*I) * q
		for j := 0; j < k; j++ {
			col := q.Col(j)
			res := a.MulVec(col)
			if !mathx.EqualWithin(sh, 0, 0) {
				Axpy(sh, col, res)
			}
			tmp.SetCol(j, res)
		}
		q, tmp = tmp, q
		orthonormalize(q)
	}
	return q
}

func gershgorinLowerBound(a *Matrix) float64 {
	lo := math.Inf(1)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var r float64
		for j, v := range row {
			if j != i {
				r += math.Abs(v)
			}
		}
		if b := a.At(i, i) - r; b < lo {
			lo = b
		}
	}
	if math.IsInf(lo, 1) {
		return 0
	}
	return lo
}

// orthonormalize applies modified Gram-Schmidt to the columns of q in
// place. Columns that collapse to (numerical) zero are replaced by
// canonical basis vectors to keep the output full rank.
func orthonormalize(q *Matrix) {
	n, k := q.Rows, q.Cols
	for j := 0; j < k; j++ {
		col := q.Col(j)
		for i := 0; i < j; i++ {
			prev := q.Col(i)
			Axpy(-Dot(prev, col), prev, col)
		}
		norm := Norm2(col)
		if norm < 1e-12 {
			for r := range col {
				col[r] = 0
			}
			col[j%n] = 1
			for i := 0; i < j; i++ {
				prev := q.Col(i)
				Axpy(-Dot(prev, col), prev, col)
			}
			norm = Norm2(col)
			if norm < 1e-12 {
				continue
			}
		}
		ScaleVec(1/norm, col)
		q.SetCol(j, col)
	}
}

// ProjectPSD returns the nearest (Frobenius) positive-semidefinite
// matrix to a symmetric input by clamping negative eigenvalues to zero
// — standard post-processing for noisy covariance estimates, free under
// DP. Uses the full Jacobi solver; intended for moderate n.
func ProjectPSD(a *Matrix) *Matrix {
	e := SymEigen(a)
	n := a.Rows
	out := NewMatrix(n, n)
	for k, lam := range e.Values {
		if lam <= 0 {
			continue
		}
		v := e.Vectors.Col(k)
		for i := 0; i < n; i++ {
			if mathx.EqualWithin(v[i], 0, 0) {
				continue
			}
			row := out.Row(i)
			s := lam * v[i]
			for j := 0; j < n; j++ {
				row[j] += s * v[j]
			}
		}
	}
	return out
}

// SpectralNorm estimates ‖a‖₂ (largest singular value) by power
// iteration on aᵀa, accurate to a relative tolerance of about 1e-6.
func SpectralNorm(a *Matrix, rng *randx.RNG) float64 {
	if a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	v := rng.GaussianVec(a.Cols, 1)
	nv := Norm2(v)
	if mathx.EqualWithin(nv, 0, 0) {
		return 0
	}
	ScaleVec(1/nv, v)
	at := a.T()
	prev := 0.0
	for it := 0; it < 200; it++ {
		w := a.MulVec(v)
		v2 := at.MulVec(w)
		n2 := Norm2(v2)
		if mathx.EqualWithin(n2, 0, 0) {
			return 0
		}
		ScaleVec(1/n2, v2)
		v = v2
		est := Norm2(a.MulVec(v))
		if math.Abs(est-prev) <= 1e-6*(1+est) {
			return est
		}
		prev = est
	}
	return prev
}
