package linalg

import (
	"errors"
	"math"

	"sqm/internal/invariant"
)

// ErrNotPositiveDefinite is returned by Cholesky when the matrix has a
// non-positive pivot.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky returns the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite A.
func Cholesky(a *Matrix) (*Matrix, error) {
	a.mustSquare()
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A, by a
// forward then backward triangular solve.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(invariant.Violation("linalg: SolveCholesky length mismatch"))
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// SolveSPD solves A·x = b for symmetric positive-definite A.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, b), nil
}

// AddDiagonal returns a + d·I.
func (m *Matrix) AddDiagonal(d float64) *Matrix {
	m.mustSquare()
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		out.Set(i, i, out.At(i, i)+d)
	}
	return out
}
