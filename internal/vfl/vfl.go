// Package vfl models the vertical-federated-learning deployment around
// SQM: clients that each own a column of the database, an untrusted
// server, shared-randomness coordination, and the local-DP baseline the
// paper compares against (Algorithm 4 / Lemma 12): every client perturbs
// its own column with Gaussian noise and ships it to the server, who
// reconstructs a noisy database and post-processes freely.
package vfl

import (
	"fmt"

	"sqm/internal/dp"
	"sqm/internal/linalg"
	"sqm/internal/randx"
)

// Client owns one column of the vertically partitioned database.
type Client struct {
	ID  int
	Col []float64
	rng *randx.RNG
}

// Partition splits x column-wise into one client per column, each with
// its own private randomness derived from seed.
func Partition(x *linalg.Matrix, seed uint64) []*Client {
	root := randx.New(seed)
	clients := make([]*Client, x.Cols)
	for j := range clients {
		clients[j] = &Client{ID: j, Col: x.Col(j), rng: root.Fork()}
	}
	return clients
}

// PerturbColumn is one client's step of Algorithm 4: add N(0, σ²) to
// every entry of the private column.
func (c *Client) PerturbColumn(sigma float64) []float64 {
	out := make([]float64, len(c.Col))
	for i, v := range c.Col {
		out[i] = v + c.rng.Gaussian(0, sigma)
	}
	return out
}

// PerturbDataset runs Algorithm 4 end to end: every client perturbs its
// column and the server reassembles the noisy database X̃.
func PerturbDataset(x *linalg.Matrix, sigma float64, seed uint64) *linalg.Matrix {
	clients := Partition(x, seed)
	out := linalg.NewMatrix(x.Rows, x.Cols)
	for j, c := range clients {
		out.SetCol(j, c.PerturbColumn(sigma))
	}
	return out
}

// LocalRDPServer is Lemma 12's server-observed RDP of Algorithm 4 for
// record norm bound c: τ = α·c²/(2σ²).
func LocalRDPServer(alpha int, c, sigma float64) float64 {
	return dp.GaussianRDP(float64(alpha), c, sigma)
}

// LocalRDPClient is the client-observed counterpart, with the doubled
// (replace-one) sensitivity: τ = α·(2c)²/(2σ²).
func LocalRDPClient(alpha int, c, sigma float64) float64 {
	return dp.GaussianRDP(float64(alpha), 2*c, sigma)
}

// CalibrateLocalSigma returns the per-entry Gaussian scale for Algorithm
// 4 to satisfy server-observed (ε, δ)-DP when every record has L2 norm
// at most c: the whole row moves when a record is replaced, so the L2
// sensitivity of releasing X̃ is c, and the analytic Gaussian mechanism
// applies.
func CalibrateLocalSigma(eps, delta, c float64) (float64, error) {
	if c <= 0 {
		return 0, fmt.Errorf("vfl: norm bound must be positive, got %v", c)
	}
	return dp.AnalyticGaussianSigma(eps, delta, c)
}

// SharedCoin returns the shared-randomness stream the clients use to
// coordinate (batch sampling in the LR instantiation). It is public to
// the clients and hidden from the server.
func SharedCoin(seed uint64) *randx.RNG {
	return randx.New(seed ^ 0x5eedc01)
}
