package vfl

import (
	"math"
	"testing"

	"sqm/internal/dp"
	"sqm/internal/linalg"
	"sqm/internal/randx"
)

func testMatrix(rows, cols int, seed uint64) *linalg.Matrix {
	g := randx.New(seed)
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = g.Gaussian(0, 1)
	}
	return m
}

func TestPartition(t *testing.T) {
	x := testMatrix(5, 3, 1)
	clients := Partition(x, 2)
	if len(clients) != 3 {
		t.Fatalf("clients = %d", len(clients))
	}
	for j, c := range clients {
		if c.ID != j || len(c.Col) != 5 {
			t.Fatalf("client %d malformed", j)
		}
		for i, v := range c.Col {
			if v != x.At(i, j) {
				t.Fatal("client column does not match data")
			}
		}
	}
}

func TestPerturbColumnNoiseScale(t *testing.T) {
	x := linalg.NewMatrix(20000, 1)
	clients := Partition(x, 3)
	sigma := 2.5
	noisy := clients[0].PerturbColumn(sigma)
	var sumsq float64
	for _, v := range noisy {
		sumsq += v * v
	}
	variance := sumsq / float64(len(noisy))
	if math.Abs(variance-sigma*sigma) > 0.1*sigma*sigma {
		t.Fatalf("noise variance = %v, want %v", variance, sigma*sigma)
	}
}

func TestPerturbDatasetShapeAndBias(t *testing.T) {
	x := testMatrix(2000, 4, 4)
	noisy := PerturbDataset(x, 1, 5)
	if noisy.Rows != x.Rows || noisy.Cols != x.Cols {
		t.Fatal("shape changed")
	}
	// Unbiased: mean of differences ~ 0.
	var sum float64
	for i := range x.Data {
		sum += noisy.Data[i] - x.Data[i]
	}
	mean := sum / float64(len(x.Data))
	if math.Abs(mean) > 0.05 {
		t.Fatalf("perturbation bias = %v", mean)
	}
	// Original untouched.
	if x.Data[0] == noisy.Data[0] && x.Data[1] == noisy.Data[1] {
		t.Fatal("perturbation appears to be a no-op")
	}
}

func TestPerturbDeterministicBySeed(t *testing.T) {
	x := testMatrix(10, 2, 6)
	a := PerturbDataset(x, 1, 7)
	b := PerturbDataset(x, 1, 7)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must reproduce the same perturbation")
		}
	}
}

func TestLemma12RDPFactors(t *testing.T) {
	// Client-observed tau is exactly 4x the server-observed tau
	// (doubled sensitivity, squared).
	s := LocalRDPServer(3, 1, 2)
	c := LocalRDPClient(3, 1, 2)
	if math.Abs(c-4*s) > 1e-15 {
		t.Fatalf("client tau %v != 4x server tau %v", c, s)
	}
	if want := 3.0 * 1 / (2 * 4); math.Abs(s-want) > 1e-15 {
		t.Fatalf("server tau = %v, want %v", s, want)
	}
}

func TestCalibrateLocalSigmaMeetsTarget(t *testing.T) {
	sigma, err := CalibrateLocalSigma(1, 1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Verify via the independent RDP accountant that the guarantee
	// roughly holds (RDP is looser, so allow slack upward only).
	eps, _ := dp.GaussianEpsilon(1, sigma, 1, 1, 1e-5, 256)
	if eps < 0.95 {
		t.Fatalf("calibration too conservative: RDP eps = %v for target 1", eps)
	}
	if _, err := CalibrateLocalSigma(1, 1e-5, 0); err == nil {
		t.Fatal("c=0 must be rejected")
	}
}

func TestLocalNoiseDominatesCentral(t *testing.T) {
	// The whole point of distributed DP: the local baseline injects
	// per-entry noise into the *data*; after a Gram computation over m
	// records, the induced error dwarfs central noise. Compare total
	// injected noise energy: m·n·σ² vs n²·σ² at equal (ε, δ).
	sigma, err := CalibrateLocalSigma(1, 1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, n := 10000, 20
	localEnergy := float64(m*n) * sigma * sigma
	centralSigma, err := dp.AnalyticGaussianSigma(1, 1e-5, 1) // sensitivity c² = 1
	if err != nil {
		t.Fatal(err)
	}
	centralEnergy := float64(n*n) * centralSigma * centralSigma
	if localEnergy < 10*centralEnergy {
		t.Fatalf("expected local noise energy (%v) to dwarf central (%v)", localEnergy, centralEnergy)
	}
}

func TestSharedCoinAgreesAcrossClients(t *testing.T) {
	a, b := SharedCoin(9), SharedCoin(9)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("shared coin must agree for the same seed")
		}
	}
}
