package logreg

import (
	"math"
	"testing"

	"sqm/internal/approx"
	"sqm/internal/linalg"
)

func TestGLMGradientPolyMatchesDirectEvaluation(t *testing.T) {
	link, err := approx.SigmoidTaylor(3)
	if err != nil {
		t.Fatal(err)
	}
	d := 3
	w := []float64{0.4, -0.2, 0.3}
	f, err := glmGradientPoly(link, w, d)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars() != d+1 || f.OutDim() != d {
		t.Fatalf("shape: vars=%d dims=%d", f.NumVars(), f.OutDim())
	}
	if f.Degree() != 4 { // link degree 3 times x_t
		t.Fatalf("degree = %d, want 4", f.Degree())
	}
	// Evaluate against the direct formula on a few records.
	records := [][]float64{
		{0.5, -0.3, 0.2, 1},
		{-0.1, 0.7, 0.4, 0},
	}
	for _, rec := range records {
		x, y := rec[:d], rec[d]
		s := linalg.Dot(w, x)
		u := link.Eval(s) - y
		got := f.Eval(rec)
		for tdim := 0; tdim < d; tdim++ {
			want := u * x[tdim]
			if math.Abs(got[tdim]-want) > 1e-12 {
				t.Fatalf("dim %d: %v, want %v", tdim, got[tdim], want)
			}
		}
	}
}

func TestGLMValidation(t *testing.T) {
	link, _ := approx.SigmoidTaylor(1)
	x := linalg.NewMatrix(4, 2)
	y := []float64{0, 1, 0, 1}
	if _, err := TrainGLM(link, x, y[:2], Config{Eps: 1, Delta: 1e-5, Gamma: 64, Epochs: 1, SampleRate: 0.5}); err == nil {
		t.Fatal("row/label mismatch must be rejected")
	}
	constant := &approx.Poly1{Coefs: []float64{0.5}}
	if _, err := TrainGLM(constant, x, y, Config{Eps: 1, Delta: 1e-5, Gamma: 64, Epochs: 1, SampleRate: 0.5}); err == nil {
		t.Fatal("degree-0 link must be rejected")
	}
}

func TestGLMGeneralityPremium(t *testing.T) {
	// link = ½ + u/4 is the specialized order-1 trainer's polynomial.
	// The generic path bounds every expanded monomial individually, so
	// its calibrated noise is a constant factor above Lemma 7's — it
	// must still learn at a generous budget, just behind the
	// specialized trainer.
	ds := smallTask(t, 800, 400, 12, 21)
	link, err := approx.SigmoidTaylor(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Eps: 16, Delta: 1e-5, Gamma: 1024, Epochs: 3, SampleRate: 0.02, Seed: 22}
	glm, err := TrainGLM(link, ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	accGLM := Accuracy(glm, ds.TestX, ds.TestLabels)
	spec, err := TrainSQM(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	accSpec := Accuracy(spec, ds.TestX, ds.TestLabels)
	if accGLM < 0.58 {
		t.Fatalf("GLM accuracy %v barely above chance at eps=16", accGLM)
	}
	if accGLM > accSpec+0.05 {
		t.Fatalf("generic path %v should not beat the specialized trainer %v", accGLM, accSpec)
	}
}

func TestGLMWithChebyshevLink(t *testing.T) {
	// A Chebyshev sigmoid on [-1, 1] of degree 2: the framework accepts
	// any polynomial link, not just Taylor ones.
	link, err := approx.Chebyshev(approx.Sigmoid, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds := smallTask(t, 600, 300, 8, 23)
	cfg := Config{Eps: 8, Delta: 1e-5, Gamma: 512, Epochs: 2, SampleRate: 0.03, Seed: 24}
	m, err := TrainGLM(link, ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, ds.TestX, ds.TestLabels); acc < 0.55 {
		t.Fatalf("Chebyshev-link GLM accuracy %v", acc)
	}
}

func TestGLMRejectsInfeasibleGamma(t *testing.T) {
	// Degree-3 link at a huge gamma: the γ^{H+2} amplification breaks
	// the field bound and must surface as an error, not wraparound.
	link, err := approx.SigmoidTaylor(3)
	if err != nil {
		t.Fatal(err)
	}
	ds := smallTask(t, 100, 50, 6, 25)
	cfg := Config{Eps: 1, Delta: 1e-5, Gamma: 1 << 13, Epochs: 1, SampleRate: 0.2, Seed: 26}
	if _, err := TrainGLM(link, ds.X, ds.Labels, cfg); err == nil {
		t.Fatal("expected calibration or field-bound error at gamma=2^13, degree 4")
	}
}
