package logreg

import (
	"fmt"
	"math"

	"sqm/internal/approx"
	"sqm/internal/core"
	"sqm/internal/dp"
	"sqm/internal/linalg"
	"sqm/internal/mathx"
	"sqm/internal/poly"
	"sqm/internal/randx"
)

// TrainGLM generalizes the SQM trainer to an arbitrary polynomial link:
// the per-record gradient is (link(⟨w, x⟩) − y)·x for any univariate
// polynomial link (a Taylor or Chebyshev fit from internal/approx).
// Each round's gradient is a d-dimensional polynomial of (x, y) built
// explicitly and evaluated through the generic Algorithm 3 machinery —
// the fully general (if less optimized) path, demonstrating that SQM
// needs nothing task-specific beyond the polynomial itself.
//
// The link's degree H makes the gradient degree H+1, amplified by
// γ^{H+2}; the field bound therefore caps γ more tightly as H grows
// (the same trade the order-3 trainer hits). Sensitivities come from
// the conservative quantized-domain bound of poly.Quantized.
func TrainGLM(link *approx.Poly1, x *linalg.Matrix, y []float64, cfg Config) (*Model, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if x.Rows != len(y) {
		return nil, fmt.Errorf("logreg: %d rows but %d labels", x.Rows, len(y))
	}
	if link.Degree() < 1 {
		return nil, fmt.Errorf("logreg: link must have degree >= 1")
	}
	d := x.Cols

	// One calibration pass: quantize the round polynomial at a
	// representative w (coefficient magnitudes only enter through
	// |w| <= 1, so the unit-norm worst case bounds every round).
	g := randx.New(cfg.Seed ^ 0x91a7)
	wProbe := make([]float64, d)
	for j := range wProbe {
		wProbe[j] = 1 / math.Sqrt(float64(d))
	}
	probe, err := glmGradientPoly(link, wProbe, d)
	if err != nil {
		return nil, err
	}
	qProbe, err := probe.Quantize(cfg.Gamma, randx.New(cfg.Seed^0x77))
	if err != nil {
		return nil, err
	}
	// SensitivityBound is coordinate-wise: with ‖x‖₂ <= 1 every
	// coordinate (and the 0/1 label) is bounded by 1. The resulting Δ
	// is still looser than the specialized Lemma-7 analysis — expanded
	// monomials are bounded individually, losing the inner-product
	// structure — which is the quantifiable price of full generality
	// (see TestGLMGeneralityPremium).
	delta2, delta1 := qProbe.SensitivityBound(1)
	mu, err := dp.CalibrateSkellamMu(cfg.Eps, cfg.Delta, delta1, delta2, cfg.SampleRate, cfg.Rounds())
	if err != nil {
		return nil, err
	}
	// Meter the run as one subsampled composition at the probe's
	// generic coordinate-wise bound; the per-round core calls keep
	// their own meter disabled (Params.Acct stays nil below).
	if cfg.Acct != nil {
		cfg.Acct.AddSubsampledSkellam(delta1, delta2, mu, cfg.SampleRate, cfg.Rounds())
	}

	// Augment once: variables are (x_1..x_d, y).
	full := linalg.NewMatrix(x.Rows, d+1)
	for i := 0; i < x.Rows; i++ {
		copy(full.Row(i), x.Row(i))
		full.Set(i, d, y[i])
	}

	w := initWeights(d, g)
	expBatch := cfg.SampleRate * float64(x.Rows)
	coin := randx.New(cfg.Seed ^ 0x5e4f)
	for r := 0; r < cfg.Rounds(); r++ {
		batch := coin.BernoulliSubset(x.Rows, cfg.SampleRate)
		if len(batch) == 0 {
			continue
		}
		sub := linalg.NewMatrix(len(batch), d+1)
		for bi, i := range batch {
			copy(sub.Row(bi), full.Row(i))
		}
		f, err := glmGradientPoly(link, w, d)
		if err != nil {
			return nil, err
		}
		grad, _, err := core.EvaluatePolynomialSum(f, sub, core.Params{
			Gamma:      cfg.Gamma,
			Mu:         mu,
			NumClients: d + 1,
			Engine:     cfg.Engine,
			Parties:    cfg.Parties,
			Seed:       cfg.Seed + uint64(r)*100003,
			Recorder:   cfg.Recorder,
			Trace:      cfg.Trace,
			Fault:      cfg.Fault,
		})
		if err != nil {
			return nil, err
		}
		linalg.Axpy(-cfg.LearnRate/expBatch, grad, w)
		linalg.ClipNorm(w, 1)
	}
	return &Model{W: w}, nil
}

// glmGradientPoly expands (link(⟨w, x⟩) − y)·x_t into an explicit
// d-dimensional polynomial over the d+1 variables (x, y).
func glmGradientPoly(link *approx.Poly1, w []float64, d int) (*poly.Multi, error) {
	dims := make([]*poly.Polynomial, d)
	// Pre-expand the powers ⟨w, x⟩^h as monomial maps keyed by the
	// exponent multiset, iteratively: pow_{h} = pow_{h-1} * ⟨w, x⟩.
	type term struct {
		coef float64
		exps []int // over d variables
	}
	powers := make([][]term, link.Degree()+1)
	powers[0] = []term{{coef: 1, exps: make([]int, d)}}
	for h := 1; h <= link.Degree(); h++ {
		var next []term
		merged := map[string]int{}
		for _, t := range powers[h-1] {
			for j := 0; j < d; j++ {
				if mathx.EqualWithin(w[j], 0, 0) {
					continue
				}
				exps := append([]int(nil), t.exps...)
				exps[j]++
				key := fmt.Sprint(exps)
				if idx, ok := merged[key]; ok {
					next[idx].coef += t.coef * w[j]
					continue
				}
				merged[key] = len(next)
				next = append(next, term{coef: t.coef * w[j], exps: exps})
			}
		}
		powers[h] = next
	}
	for t := 0; t < d; t++ {
		var ms []poly.Monomial
		for h, c := range link.Coefs {
			if mathx.EqualWithin(c, 0, 0) {
				continue
			}
			for _, tm := range powers[h] {
				exps := make([]int, d+1)
				copy(exps, tm.exps)
				exps[t]++
				ms = append(ms, poly.Monomial{Coef: c * tm.coef, Exps: exps})
			}
		}
		// − y·x_t term.
		yx := make([]int, d+1)
		yx[t], yx[d] = 1, 1
		ms = append(ms, poly.Monomial{Coef: -1, Exps: yx})
		p, err := poly.NewPolynomial(d+1, ms...)
		if err != nil {
			return nil, err
		}
		dims[t] = p
	}
	return poly.NewMulti(dims...)
}
