// Package logreg implements the logistic-regression instantiation of
// SQM (§V-B) and the baselines of the paper's Figures 3 and 5:
//
//   - SQM: VFL training with the degree-2 Taylor gradient of Eq. (9),
//     distributed Skellam noise, shared-randomness Poisson batches, and
//     the accounting of Lemma 7 (subsampled RDP composed over rounds);
//   - DPSGD: the centralized baseline with the true sigmoid gradient,
//     per-record clipping and subsampled Gaussian noise;
//   - Approx-Poly: centralized training on the Taylor gradient with
//     Gaussian noise (Figure 5's ablation of the approximation);
//   - Local: Algorithm 4 perturbs the raw data, then the model is
//     fitted on the noisy database until convergence;
//   - NonPrivate: the reference model.
package logreg

import (
	"fmt"
	"math"
	"sort"

	"sqm/internal/core"
	"sqm/internal/dp"
	"sqm/internal/linalg"
	"sqm/internal/mathx"
	"sqm/internal/obs"
	"sqm/internal/randx"
	"sqm/internal/vfl"
)

// Config parameterizes one private training run.
type Config struct {
	Eps   float64 // target server-observed ε
	Delta float64 // target δ
	Gamma float64 // SQM scaling parameter (SQM only)

	Epochs     int     // passes over the data; rounds R = Epochs/SampleRate
	SampleRate float64 // Poisson sampling rate q (paper: 0.001)
	LearnRate  float64 // step size on the mean gradient (0: 0.5)

	Seed uint64

	// Engine/Parties select the SQM backend (plain by default).
	Engine  core.EngineKind
	Parties int
	// Fault carries the fault-tolerance knobs (receive deadlines, dial
	// retries) down to the engine and mesh.
	Fault core.FaultConfig

	// Recorder is an optional telemetry sink threaded through to the
	// MPC engine and transport (nil disables).
	Recorder obs.Recorder

	// Trace is an optional distributed-tracing context: events gain
	// (trace, party, lclock) stamps and land in per-party flight
	// recorders (nil disables).
	Trace *obs.TraceContext

	// Acct, when non-nil, receives the trainer's full subsampled
	// Skellam composition (Δ from the trainer's own sensitivity
	// analysis, R rounds at rate q) as one ledger entry. The trainer
	// accounts here rather than per round, so the core protocol's
	// generic meter stays disabled underneath it.
	Acct *dp.Accountant
}

func (c *Config) normalize() error {
	if c.Epochs < 1 {
		return fmt.Errorf("logreg: epochs must be >= 1, got %d", c.Epochs)
	}
	if c.SampleRate <= 0 || c.SampleRate > 1 {
		return fmt.Errorf("logreg: sample rate must be in (0, 1], got %v", c.SampleRate)
	}
	if mathx.EqualWithin(c.LearnRate, 0, 0) {
		c.LearnRate = 0.5
	}
	if c.LearnRate < 0 {
		return fmt.Errorf("logreg: negative learning rate %v", c.LearnRate)
	}
	return nil
}

// Rounds returns R = Epochs/q, the number of SGD rounds the epoch
// budget translates to (each Poisson batch covers q·m records in
// expectation).
func (c *Config) Rounds() int {
	r := int(math.Round(float64(c.Epochs) / c.SampleRate))
	if r < 1 {
		r = 1
	}
	return r
}

// Model is a fitted weight vector with ‖w‖₂ <= 1 (the clipping the
// paper applies after every update).
type Model struct {
	W []float64
}

// PredictProb returns σ(⟨w, x⟩).
func (m *Model) PredictProb(x []float64) float64 {
	return sigmoid(linalg.Dot(m.W, x))
}

// Accuracy is the fraction of records whose 0.5-thresholded prediction
// matches the label.
func Accuracy(m *Model, x *linalg.Matrix, y []float64) float64 {
	if x.Rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < x.Rows; i++ {
		if (m.PredictProb(x.Row(i)) >= 0.5) == mathx.EqualWithin(y[i], 1, 0) {
			correct++
		}
	}
	return float64(correct) / float64(x.Rows)
}

// AUC is the area under the ROC curve on (x, y) — threshold-free
// ranking quality, computed via the Mann–Whitney statistic with ties
// counted half.
func AUC(m *Model, x *linalg.Matrix, y []float64) float64 {
	type scored struct {
		p   float64
		pos bool
	}
	var items []scored
	var nPos, nNeg float64
	for i := 0; i < x.Rows; i++ {
		s := scored{p: m.PredictProb(x.Row(i)), pos: mathx.EqualWithin(y[i], 1, 0)}
		if s.pos {
			nPos++
		} else {
			nNeg++
		}
		items = append(items, s)
	}
	if mathx.EqualWithin(nPos, 0, 0) || mathx.EqualWithin(nNeg, 0, 0) {
		return 0.5
	}
	sort.Slice(items, func(i, j int) bool { return items[i].p < items[j].p })
	// Average ranks over tie groups.
	var rankSumPos float64
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && mathx.EqualWithin(items[j].p, items[i].p, 0) {
			j++
		}
		avgRank := float64(i+j+1) / 2 // 1-based average rank of the tie group
		for k := i; k < j; k++ {
			if items[k].pos {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	return (rankSumPos - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// Loss is the mean cross-entropy on (x, y).
func Loss(m *Model, x *linalg.Matrix, y []float64) float64 {
	var sum float64
	for i := 0; i < x.Rows; i++ {
		p := m.PredictProb(x.Row(i))
		p = math.Min(math.Max(p, 1e-12), 1-1e-12)
		sum += -y[i]*math.Log(p) - (1-y[i])*math.Log(1-p)
	}
	return sum / float64(x.Rows)
}

func sigmoid(u float64) float64 { return 1 / (1 + math.Exp(-u)) }

// initWeights draws the random initial weights and clips them to the
// unit ball, as the paper's server does.
func initWeights(d int, g *randx.RNG) []float64 {
	w := g.GaussianVec(d, 0.1)
	linalg.ClipNorm(w, 1)
	return w
}

// Sensitivities returns Lemma 7's L2/L1 sensitivities of the quantized
// per-round gradient sum:
//
//	Δ₂ = √((¾γ³)² + 9γ⁵·d + 36γ⁴),  Δ₁ = min(Δ₂², √d·Δ₂).
func Sensitivities(gamma float64, d int) (delta2, delta1 float64) {
	g3 := gamma * gamma * gamma
	delta2 = math.Sqrt(0.75*0.75*g3*g3 + 9*math.Pow(gamma, 5)*float64(d) + 36*math.Pow(gamma, 4))
	delta1 = math.Min(delta2*delta2, math.Sqrt(float64(d))*delta2)
	return delta2, delta1
}

// SensitivityOverhead is Figure 4's relative L2 overhead of
// quantization: √((¾)² + 9d/γ + 36/γ²) − ¾ (the unscaled view of Δ₂).
func SensitivityOverhead(gamma float64, d int) float64 {
	return math.Sqrt(0.75*0.75+9*float64(d)/gamma+36/(gamma*gamma)) - 0.75
}

// CalibrateMu returns the minimal aggregate Skellam parameter for the
// SQM trainer to satisfy (ε, δ) over Rounds() subsampled rounds.
func CalibrateMu(cfg Config, d int) (float64, error) {
	d2, d1 := Sensitivities(cfg.Gamma, d)
	return dp.CalibrateSkellamMu(cfg.Eps, cfg.Delta, d1, d2, cfg.SampleRate, cfg.Rounds())
}

// ClientEpsilon reports the client-observed (ε, δ) over the full
// training run at noise parameter mu (Lemma 7's τ_client: subsampling
// does not amplify against clients, who know the batch membership).
func ClientEpsilon(cfg Config, d int, mu float64, numClients int) (float64, int) {
	d2, d1 := Sensitivities(cfg.Gamma, d)
	return dp.SkellamClientEpsilon(d1, d2, mu, numClients, cfg.Rounds(), cfg.Delta, dp.DefaultMaxAlpha)
}

// NoiseStdUnscaled is the per-coordinate standard deviation of the SQM
// noise after the server's down-scaling: √(2μ)/γ³. Figure 4 compares
// it against the centralized Gaussian σ.
func NoiseStdUnscaled(mu, gamma float64) float64 {
	return math.Sqrt(2*mu) / (gamma * gamma * gamma)
}

// calibrateCentral is the centralized Gaussian σ at the ¾ per-record
// bound of the Taylor gradient — Figure 4's reference line.
func calibrateCentral(cfg Config) (float64, error) {
	return dp.CalibrateGaussianSigma(cfg.Eps, cfg.Delta, 0.75, cfg.SampleRate, cfg.Rounds())
}

// CentralNoiseStd exposes calibrateCentral for the Figure 4 harness.
func CentralNoiseStd(cfg Config) (float64, error) {
	if err := cfg.normalize(); err != nil {
		return 0, err
	}
	return calibrateCentral(cfg)
}

// TrainSQM fits the model under distributed DP in the VFL setting.
func TrainSQM(x *linalg.Matrix, y []float64, cfg Config) (*Model, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	mu, err := CalibrateMu(cfg, x.Cols)
	if err != nil {
		return nil, err
	}
	// Meter the full training run as one subsampled composition at
	// Lemma 7's sensitivities — the same curve CalibrateMu solved for.
	if cfg.Acct != nil {
		d2, d1 := Sensitivities(cfg.Gamma, x.Cols)
		cfg.Acct.AddSubsampledSkellam(d1, d2, mu, cfg.SampleRate, cfg.Rounds())
	}
	proto, err := core.NewLRProtocol(x, y, core.Params{
		Gamma:    cfg.Gamma,
		Mu:       mu,
		Engine:   cfg.Engine,
		Parties:  cfg.Parties,
		Seed:     cfg.Seed,
		Recorder: cfg.Recorder,
		Trace:    cfg.Trace,
		Fault:    cfg.Fault,
	})
	if err != nil {
		return nil, err
	}
	defer proto.Close()
	g := randx.New(cfg.Seed ^ 0x5e4d)
	w := initWeights(x.Cols, g)
	expBatch := cfg.SampleRate * float64(x.Rows)
	for r := 0; r < cfg.Rounds(); r++ {
		batch := proto.SampleBatch(cfg.SampleRate)
		grad, _, err := proto.GradientSum(w, batch)
		if err != nil {
			return nil, err
		}
		linalg.Axpy(-cfg.LearnRate/expBatch, grad, w)
		linalg.ClipNorm(w, 1)
	}
	return &Model{W: w}, nil
}

// TrainSQMOrder3 fits the model with the order-3 Taylor sigmoid
// σ(u) ≈ ½ + u/4 − u³/48 — the "more delicate approximation" extension
// of §V-C, implemented by core.LR3Protocol. Its degree-4 polynomial
// amplifies by γ⁵, so γ must stay moderate (≲ 2⁹ for unit-norm rows);
// the sensitivity bound is the protocol's conservative quantized-domain
// worst case.
func TrainSQMOrder3(x *linalg.Matrix, y []float64, cfg Config) (*Model, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	proto, err := core.NewLR3Protocol(x, y, core.Params{
		Gamma:   cfg.Gamma,
		Engine:  cfg.Engine,
		Parties: cfg.Parties,
		Seed:    cfg.Seed,
	}, 0)
	// (The sensitivity probe above runs without telemetry; only the
	// calibrated run below reports.)
	if err != nil {
		return nil, err
	}
	d2, d1 := proto.Sensitivity()
	mu, err := dp.CalibrateSkellamMu(cfg.Eps, cfg.Delta, d1, d2, cfg.SampleRate, cfg.Rounds())
	proto.Close()
	if err != nil {
		return nil, err
	}
	// Meter the run as one subsampled composition at the probe's
	// conservative order-3 sensitivities.
	if cfg.Acct != nil {
		cfg.Acct.AddSubsampledSkellam(d1, d2, mu, cfg.SampleRate, cfg.Rounds())
	}
	// Rebuild with the calibrated noise (the protocol state is cheap to
	// reconstruct and the seeds keep the quantization identical).
	proto, err = core.NewLR3Protocol(x, y, core.Params{
		Gamma:    cfg.Gamma,
		Mu:       mu,
		Engine:   cfg.Engine,
		Parties:  cfg.Parties,
		Seed:     cfg.Seed,
		Recorder: cfg.Recorder,
		Trace:    cfg.Trace,
		Fault:    cfg.Fault,
	}, 0)
	if err != nil {
		return nil, err
	}
	defer proto.Close()
	g := randx.New(cfg.Seed ^ 0x5e4e)
	w := initWeights(x.Cols, g)
	expBatch := cfg.SampleRate * float64(x.Rows)
	for r := 0; r < cfg.Rounds(); r++ {
		batch := proto.SampleBatch(cfg.SampleRate)
		grad, _, err := proto.GradientSum(w, batch)
		if err != nil {
			return nil, err
		}
		linalg.Axpy(-cfg.LearnRate/expBatch, grad, w)
		linalg.ClipNorm(w, 1)
	}
	return &Model{W: w}, nil
}

// TrainDPSGD is the centralized baseline: true sigmoid gradients,
// per-record clipping at norm 1, Gaussian noise calibrated by the same
// subsampled-RDP accountant.
func TrainDPSGD(x *linalg.Matrix, y []float64, cfg Config) (*Model, error) {
	return trainCentral(x, y, cfg, 1.0, func(w, row []float64, yi float64, grad []float64) {
		linalg.Axpy(sigmoid(linalg.Dot(w, row))-yi, row, grad)
	})
}

// TrainApproxPoly is the centralized ablation of Figure 5: the Taylor
// gradient of Eq. (9) with Gaussian noise (no discretization). Its
// per-record L2 bound is ¾ (§V-B).
func TrainApproxPoly(x *linalg.Matrix, y []float64, cfg Config) (*Model, error) {
	return trainCentral(x, y, cfg, 0.75, func(w, row []float64, yi float64, grad []float64) {
		linalg.Axpy(0.5+linalg.Dot(w, row)/4-yi, row, grad)
	})
}

func trainCentral(x *linalg.Matrix, y []float64, cfg Config, clip float64, perRecord func(w, row []float64, yi float64, grad []float64)) (*Model, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if x.Rows != len(y) {
		return nil, fmt.Errorf("logreg: %d rows but %d labels", x.Rows, len(y))
	}
	sigma, err := dp.CalibrateGaussianSigma(cfg.Eps, cfg.Delta, clip, cfg.SampleRate, cfg.Rounds())
	if err != nil {
		return nil, err
	}
	g := randx.New(cfg.Seed ^ 0xd059)
	w := initWeights(x.Cols, g)
	expBatch := cfg.SampleRate * float64(x.Rows)
	one := make([]float64, x.Cols)
	for r := 0; r < cfg.Rounds(); r++ {
		batch := g.BernoulliSubset(x.Rows, cfg.SampleRate)
		grad := make([]float64, x.Cols)
		for _, i := range batch {
			for j := range one {
				one[j] = 0
			}
			perRecord(w, x.Row(i), y[i], one)
			linalg.ClipNorm(one, clip)
			linalg.Axpy(1, one, grad)
		}
		for j := range grad {
			grad[j] += g.Gaussian(0, sigma)
		}
		linalg.Axpy(-cfg.LearnRate/expBatch, grad, w)
		linalg.ClipNorm(w, 1)
	}
	return &Model{W: w}, nil
}

// TrainLocal is the VFL local-DP baseline: Algorithm 4 perturbs data
// and labels, then the server fits a model on the noisy database until
// convergence (full-batch gradient descent).
func TrainLocal(x *linalg.Matrix, y []float64, cfg Config) (*Model, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if x.Rows != len(y) {
		return nil, fmt.Errorf("logreg: %d rows but %d labels", x.Rows, len(y))
	}
	// The label column is one more private attribute; bound per record
	// is √(c² + 1) with c = 1.
	sigma, err := vfl.CalibrateLocalSigma(cfg.Eps, cfg.Delta, math.Sqrt2)
	if err != nil {
		return nil, err
	}
	full := linalg.NewMatrix(x.Rows, x.Cols+1)
	for i := 0; i < x.Rows; i++ {
		copy(full.Row(i), x.Row(i))
		full.Set(i, x.Cols, y[i])
	}
	noisy := vfl.PerturbDataset(full, sigma, cfg.Seed^0x10c)
	nx := linalg.NewMatrix(x.Rows, x.Cols)
	ny := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		copy(nx.Row(i), noisy.Row(i)[:x.Cols])
		ny[i] = noisy.At(i, x.Cols)
	}
	return fitFullBatch(nx, ny, cfg.Seed, 300, cfg.LearnRate*4), nil
}

// TrainNonPrivate is the exact reference model.
func TrainNonPrivate(x *linalg.Matrix, y []float64, seed uint64) *Model {
	return fitFullBatch(x, y, seed, 300, 2)
}

// fitFullBatch runs plain full-batch gradient descent with unit-ball
// clipping; targets may be noisy/continuous (local baseline).
func fitFullBatch(x *linalg.Matrix, y []float64, seed uint64, epochs int, lr float64) *Model {
	g := randx.New(seed ^ 0xf17)
	w := initWeights(x.Cols, g)
	m := float64(x.Rows)
	for e := 0; e < epochs; e++ {
		grad := make([]float64, x.Cols)
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			linalg.Axpy(sigmoid(linalg.Dot(w, row))-y[i], row, grad)
		}
		linalg.Axpy(-lr/m, grad, w)
		linalg.ClipNorm(w, 1)
	}
	return &Model{W: w}
}
