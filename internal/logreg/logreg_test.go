package logreg

import (
	"math"
	"testing"

	"sqm/internal/dataset"
	"sqm/internal/linalg"
)

// smallTask builds a quick learnable task.
func smallTask(t *testing.T, mTrain, mTest, d int, seed uint64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.ACSIncomeLike("CA", mTrain, mTest, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestConfigValidation(t *testing.T) {
	x := linalg.NewMatrix(4, 2)
	y := []float64{0, 1, 0, 1}
	if _, err := TrainDPSGD(x, y, Config{Eps: 1, Delta: 1e-5, Epochs: 0, SampleRate: 0.1}); err == nil {
		t.Fatal("epochs=0 must be rejected")
	}
	if _, err := TrainDPSGD(x, y, Config{Eps: 1, Delta: 1e-5, Epochs: 1, SampleRate: 0}); err == nil {
		t.Fatal("q=0 must be rejected")
	}
	if _, err := TrainDPSGD(x, y, Config{Eps: 1, Delta: 1e-5, Epochs: 1, SampleRate: 0.5, LearnRate: -1}); err == nil {
		t.Fatal("negative learning rate must be rejected")
	}
	if _, err := TrainDPSGD(x, y[:2], Config{Eps: 1, Delta: 1e-5, Epochs: 1, SampleRate: 0.5}); err == nil {
		t.Fatal("row/label mismatch must be rejected")
	}
}

func TestRounds(t *testing.T) {
	c := Config{Epochs: 5, SampleRate: 0.001}
	if got := c.Rounds(); got != 5000 {
		t.Fatalf("Rounds = %d, want 5000", got)
	}
	c = Config{Epochs: 1, SampleRate: 1}
	if got := c.Rounds(); got != 1 {
		t.Fatalf("Rounds = %d, want 1", got)
	}
}

func TestModelBasics(t *testing.T) {
	m := &Model{W: []float64{1, -1}}
	if p := m.PredictProb([]float64{0, 0}); p != 0.5 {
		t.Fatalf("sigmoid(0) = %v", p)
	}
	x := linalg.FromRows([][]float64{{1, 0}, {0, 1}})
	y := []float64{1, 0}
	if acc := Accuracy(m, x, y); acc != 1 {
		t.Fatalf("accuracy = %v", acc)
	}
	if l := Loss(m, x, y); l <= 0 || math.IsInf(l, 0) {
		t.Fatalf("loss = %v", l)
	}
	if acc := Accuracy(m, linalg.NewMatrix(0, 2), nil); acc != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestAUCPerfectAndRandomRankings(t *testing.T) {
	x := linalg.FromRows([][]float64{{1}, {2}, {-1}, {-2}})
	y := []float64{1, 1, 0, 0}
	perfect := &Model{W: []float64{1}} // scores order positives above negatives
	if got := AUC(perfect, x, y); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	inverted := &Model{W: []float64{-1}}
	if got := AUC(inverted, x, y); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	constant := &Model{W: []float64{0}} // all scores tied
	if got := AUC(constant, x, y); got != 0.5 {
		t.Fatalf("tied AUC = %v, want 0.5", got)
	}
	// Degenerate class balance.
	if got := AUC(perfect, x, []float64{1, 1, 1, 1}); got != 0.5 {
		t.Fatalf("single-class AUC = %v", got)
	}
}

func TestAUCOnLearnedModel(t *testing.T) {
	ds := smallTask(t, 1000, 600, 20, 27)
	m := TrainNonPrivate(ds.X, ds.Labels, 28)
	auc := AUC(m, ds.TestX, ds.TestLabels)
	acc := Accuracy(m, ds.TestX, ds.TestLabels)
	if auc < acc-0.05 {
		t.Fatalf("AUC %v implausibly below accuracy %v", auc, acc)
	}
	if auc < 0.7 {
		t.Fatalf("AUC = %v for a learnable task", auc)
	}
}

func TestSensitivitiesLemma7(t *testing.T) {
	gamma, d := 16.0, 10
	d2, d1 := Sensitivities(gamma, d)
	g3 := gamma * gamma * gamma
	want := math.Sqrt(0.75*0.75*g3*g3 + 9*math.Pow(gamma, 5)*float64(d) + 36*math.Pow(gamma, 4))
	if math.Abs(d2-want) > 1e-9 {
		t.Fatalf("Delta2 = %v, want %v", d2, want)
	}
	if d1 != math.Min(d2*d2, math.Sqrt(10)*d2) {
		t.Fatalf("Delta1 = %v", d1)
	}
}

func TestSensitivityOverheadVanishes(t *testing.T) {
	prev := math.Inf(1)
	for _, gamma := range []float64{64, 1024, 65536} {
		o := SensitivityOverhead(gamma, 800)
		if o <= 0 || o >= prev {
			t.Fatalf("overhead %v not strictly decreasing (prev %v)", o, prev)
		}
		prev = o
	}
	if prev > 0.1 {
		t.Fatalf("overhead at gamma=65536 still %v", prev)
	}
}

func TestNoiseStdApproachesGaussianWithGamma(t *testing.T) {
	// Figure 4's second panel: the SQM noise std (normalized) decreases
	// toward the centralized Gaussian sigma as gamma grows.
	d := 100
	cfgAt := func(gamma float64) Config {
		return Config{Eps: 1, Delta: 1e-5, Gamma: gamma, Epochs: 5, SampleRate: 0.01}
	}
	prev := math.Inf(1)
	var stds []float64
	for _, gamma := range []float64{64, 1024, 16384} {
		mu, err := CalibrateMu(cfgAt(gamma), d)
		if err != nil {
			t.Fatal(err)
		}
		std := NoiseStdUnscaled(mu, gamma)
		if std >= prev {
			t.Fatalf("gamma=%v: noise std %v did not shrink (prev %v)", gamma, std, prev)
		}
		prev = std
		stds = append(stds, std)
	}
	// And the last value is within a small factor of the ideal ¾-sensitivity
	// Gaussian at the same privacy budget.
	sigma, err := centralSigmaFor(cfgAt(16384))
	if err != nil {
		t.Fatal(err)
	}
	if stds[2] > 1.5*sigma {
		t.Fatalf("converged SQM noise %v too far above Gaussian %v", stds[2], sigma)
	}
}

func centralSigmaFor(cfg Config) (float64, error) {
	if err := cfg.normalize(); err != nil {
		return 0, err
	}
	return calibrateCentral(cfg)
}

func TestClientEpsilonAboveServerTarget(t *testing.T) {
	cfg := Config{Eps: 1, Delta: 1e-5, Gamma: 1024, Epochs: 2, SampleRate: 0.01}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	mu, err := CalibrateMu(cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	cEps, alpha := ClientEpsilon(cfg, 50, mu, 51)
	if cEps <= cfg.Eps {
		t.Fatalf("client eps %v must exceed server target %v (no subsampling amplification for clients)", cEps, cfg.Eps)
	}
	if alpha < 2 {
		t.Fatalf("alpha = %d", alpha)
	}
}

func TestTrainNonPrivateLearns(t *testing.T) {
	ds := smallTask(t, 1500, 800, 30, 1)
	m := TrainNonPrivate(ds.X, ds.Labels, 2)
	acc := Accuracy(m, ds.TestX, ds.TestLabels)
	if acc < 0.68 {
		t.Fatalf("non-private accuracy = %v, want >= 0.68", acc)
	}
	if n := linalg.Norm2(m.W); n > 1+1e-9 {
		t.Fatalf("weights escaped the unit ball: %v", n)
	}
}

func TestTrainDPSGDLearnsAtModerateEps(t *testing.T) {
	ds := smallTask(t, 1500, 800, 30, 3)
	cfg := Config{Eps: 4, Delta: 1e-5, Epochs: 5, SampleRate: 0.01, Seed: 4}
	m, err := TrainDPSGD(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(m, ds.TestX, ds.TestLabels)
	nonpriv := Accuracy(TrainNonPrivate(ds.X, ds.Labels, 4), ds.TestX, ds.TestLabels)
	if acc < nonpriv-0.12 {
		t.Fatalf("DPSGD accuracy %v too far below non-private %v", acc, nonpriv)
	}
}

func TestTrainSQMLearnsAndTracksDPSGD(t *testing.T) {
	// The paper's Figure 3 claim at a comfortable budget: SQM with a
	// large gamma is close to centralized DPSGD.
	ds := smallTask(t, 1500, 800, 30, 5)
	cfg := Config{Eps: 8, Delta: 1e-5, Gamma: 8192, Epochs: 5, SampleRate: 0.01, Seed: 6}
	sqm, err := TrainSQM(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	accSQM := Accuracy(sqm, ds.TestX, ds.TestLabels)
	dpsgd, err := TrainDPSGD(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	accDP := Accuracy(dpsgd, ds.TestX, ds.TestLabels)
	if accSQM < accDP-0.08 {
		t.Fatalf("SQM %v too far below DPSGD %v at eps=8", accSQM, accDP)
	}
	if n := linalg.Norm2(sqm.W); n > 1+1e-9 {
		t.Fatalf("SQM weights escaped the unit ball: %v", n)
	}
}

func TestTrainSQMBeatsLocalBaseline(t *testing.T) {
	ds := smallTask(t, 1500, 800, 30, 7)
	cfg := Config{Eps: 2, Delta: 1e-5, Gamma: 4096, Epochs: 5, SampleRate: 0.01, Seed: 8}
	sqm, err := TrainSQM(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, err := TrainLocal(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	accSQM := Accuracy(sqm, ds.TestX, ds.TestLabels)
	accLocal := Accuracy(local, ds.TestX, ds.TestLabels)
	if accSQM <= accLocal-0.02 {
		t.Fatalf("SQM %v should not lose to local DP %v", accSQM, accLocal)
	}
}

func TestApproxPolyCloseToDPSGD(t *testing.T) {
	// Figure 5: the Taylor approximation costs almost nothing.
	ds := smallTask(t, 1500, 800, 30, 9)
	cfg := Config{Eps: 4, Delta: 1e-5, Epochs: 5, SampleRate: 0.01, Seed: 10}
	a, err := TrainApproxPoly(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainDPSGD(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gap := math.Abs(Accuracy(a, ds.TestX, ds.TestLabels) - Accuracy(b, ds.TestX, ds.TestLabels))
	if gap > 0.07 {
		t.Fatalf("Approx-Poly gap = %v, paper reports < 0.05", gap)
	}
}

func TestTrainSQMOrder3Learns(t *testing.T) {
	// The order-3 Taylor trainer must roughly match order 1 at the same
	// budget (the paper observes H=1 already suffices for LR).
	ds := smallTask(t, 1500, 800, 30, 13)
	cfg := Config{Eps: 8, Delta: 1e-5, Gamma: 256, Epochs: 5, SampleRate: 0.01, Seed: 14}
	m3, err := TrainSQMOrder3(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc3 := Accuracy(m3, ds.TestX, ds.TestLabels)
	m1, err := TrainSQM(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc1 := Accuracy(m1, ds.TestX, ds.TestLabels)
	if acc3 < acc1-0.1 {
		t.Fatalf("order-3 accuracy %v too far below order-1 %v", acc3, acc1)
	}
	if acc3 < 0.55 {
		t.Fatalf("order-3 accuracy %v barely above chance", acc3)
	}
}

func TestTrainSQMOrder3RejectsHugeGamma(t *testing.T) {
	ds := smallTask(t, 100, 50, 10, 15)
	cfg := Config{Eps: 1, Delta: 1e-5, Gamma: 1 << 12, Epochs: 1, SampleRate: 0.1, Seed: 16}
	if _, err := TrainSQMOrder3(ds.X, ds.Labels, cfg); err == nil {
		t.Fatal("gamma=2^12 must overflow the field for order 3")
	}
}

func TestTrainSQMDeterministicBySeed(t *testing.T) {
	ds := smallTask(t, 300, 100, 10, 11)
	cfg := Config{Eps: 4, Delta: 1e-5, Gamma: 1024, Epochs: 2, SampleRate: 0.05, Seed: 12}
	a, err := TrainSQM(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainSQM(ds.X, ds.Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.W {
		if a.W[j] != b.W[j] {
			t.Fatal("same seed must reproduce the model")
		}
	}
}
