package protocol

import (
	"context"
	"time"

	"sqm/internal/obs"
)

// SessionOption configures RunSession / RunSessionTCP.
type SessionOption func(*sessionOptions)

type sessionOptions struct {
	rec         obs.Recorder
	timeout     time.Duration
	maxDropouts int
	onDrop      func(client int, err error)
	ctx         context.Context
	trace       *obs.TraceContext
	traceDir    string
}

// WithRecorder attaches an observability recorder to the session run:
// the coordinator emits lifecycle events (session.start, session.hello,
// session.params, session.round, session.result, session.done or
// session.abort) and times every phase into the recorder's metric
// registry. A nil recorder disables telemetry at zero cost.
func WithRecorder(rec obs.Recorder) SessionOption {
	return func(o *sessionOptions) { o.rec = rec }
}

// WithTrace attaches a distributed-tracing context to the session: the
// coordinator's lifecycle events are stamped with (trace, party,
// lclock) and captured by the context's flight recorder, alongside
// whatever the evaluate callback's engine records on the same context.
// Tracing works without a recorder — the flight recorder captures
// everything regardless of log level.
func WithTrace(tc *obs.TraceContext) SessionOption {
	return func(o *sessionOptions) { o.trace = tc }
}

// WithTraceDir makes the session dump every flight-recorder stream as
// JSONL into dir when it ends — normally or with an error, so a crashed
// session still leaves its black box behind. Without WithTrace, a
// coordinator-only context is derived from the session params
// (SessionTraceID).
func WithTraceDir(dir string) SessionOption {
	return func(o *sessionOptions) { o.traceDir = dir }
}

// SessionTraceID derives the deterministic trace id of a session from
// its public parameters, so every participant (and a replay) computes
// the same id without coordination.
func SessionTraceID(p Params) obs.TraceID {
	return obs.DeriveTraceID(p.Seed, uint64(p.NumClients), uint64(p.Rounds), uint64(p.OutDim))
}

func applySessionOptions(opts []SessionOption) sessionOptions {
	var o sessionOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// sessionObs carries the coordinator's telemetry handles; a nil
// *sessionObs makes every method a no-op.
type sessionObs struct {
	rec       obs.Recorder
	roundHist *obs.Histogram
	dropouts  *obs.Counter
	phaseHist map[string]*obs.Histogram
}

func newSessionObs(rec obs.Recorder) *sessionObs {
	if rec == nil || rec.Metrics() == nil {
		return nil
	}
	m := rec.Metrics()
	return &sessionObs{
		rec:       rec,
		roundHist: m.Histogram("session.round.seconds"),
		dropouts:  m.Counter("session.dropouts"),
		phaseHist: map[string]*obs.Histogram{
			"hello":  m.Histogram("session.hello.seconds"),
			"params": m.Histogram("session.params.seconds"),
		},
	}
}

func (o *sessionObs) event(level obs.Level, name string, attrs ...obs.Attr) {
	if o == nil {
		return
	}
	o.rec.Event(level, name, attrs...)
}
