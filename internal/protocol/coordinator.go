package protocol

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sqm/internal/obs"
)

// ClientHooks is the work a participating client performs at each
// lifecycle step (quantization/noise at commit, its protocol share of
// each round).
type ClientHooks struct {
	// OnParams performs quantization and noise sampling; the returned
	// bytes feed the noise commitment (may be nil).
	OnParams      func(Params) ([]byte, error)
	OnEvalRequest func(round uint32) error
}

// SessionOutcome reports one client's view after a full session, plus
// the noise commitment the coordinator recorded for it.
type SessionOutcome struct {
	Client     int
	Results    []Result
	Err        error
	Commitment [32]byte
}

// RunSession executes a complete SQM session lifecycle over in-memory
// connections: hello, parameter commitment, p.Rounds evaluation rounds,
// and result broadcast. evaluate runs on the coordinator after every
// client finished its round work and returns the opened scaled values
// (in a deployment this is where the MPC opening happens). Every
// client's view is returned; the coordinator's error (if any) comes
// back separately.
func RunSession(p Params, hooks []ClientHooks, evaluate func(round uint32) ([]int64, error), opts ...SessionOption) ([]SessionOutcome, error) {
	if err := validateSession(p, len(hooks)); err != nil {
		return nil, err
	}
	n := len(hooks)
	cliConns := make([]net.Conn, n)
	srvConns := make([]net.Conn, n)
	for i := 0; i < n; i++ {
		cliConns[i], srvConns[i] = net.Pipe()
	}
	return runSession(p, hooks, evaluate, cliConns, srvConns, applySessionOptions(opts))
}

// RunSessionTCP is RunSession with every client connected to the
// coordinator over a real localhost TCP socket instead of a net.Pipe,
// so the session frames cross the loopback stack. Combined with an
// evaluate callback backed by core's socket-transport engine, a whole
// SQM session runs with genuine network traffic end to end.
func RunSessionTCP(p Params, hooks []ClientHooks, evaluate func(round uint32) ([]int64, error), opts ...SessionOption) ([]SessionOutcome, error) {
	if err := validateSession(p, len(hooks)); err != nil {
		return nil, err
	}
	n := len(hooks)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("protocol: listen: %w", err)
	}
	defer ln.Close()
	cliConns := make([]net.Conn, n)
	srvConns := make([]net.Conn, n)
	closeAll := func() {
		for i := 0; i < n; i++ {
			if cliConns[i] != nil {
				cliConns[i].Close()
			}
			if srvConns[i] != nil {
				srvConns[i].Close()
			}
		}
	}
	// Sequential dial-then-accept keeps the client→connection mapping
	// deterministic; the hello's session id re-validates it.
	for i := 0; i < n; i++ {
		cli, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("protocol: dial client %d: %w", i, err)
		}
		cliConns[i] = cli
		srv, err := ln.Accept()
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("protocol: accept client %d: %w", i, err)
		}
		srvConns[i] = srv
	}
	return runSession(p, hooks, evaluate, cliConns, srvConns, applySessionOptions(opts))
}

func validateSession(p Params, n int) error {
	if n == 0 {
		return fmt.Errorf("protocol: no clients")
	}
	if p.NumClients != uint32(n) {
		return fmt.Errorf("protocol: params announce %d clients but %d are wired", p.NumClients, n)
	}
	if p.Rounds == 0 {
		return fmt.Errorf("protocol: at least one round required")
	}
	return nil
}

// runSession drives the lifecycle over pre-established connection pairs
// (cliConns[i] is client i's end, srvConns[i] the coordinator's).
func runSession(p Params, hooks []ClientHooks, evaluate func(round uint32) ([]int64, error), cliConns, srvConns []net.Conn, o sessionOptions) ([]SessionOutcome, error) {
	so := newSessionObs(o.rec)
	n := len(hooks)
	outcomes := make([]SessionOutcome, n)
	servers := make([]*ServerSession, n)
	var clientWG sync.WaitGroup
	for i := 0; i < n; i++ {
		servers[i] = &ServerSession{ID: uint32(i + 1), Transport: srvConns[i]}
		cs := &ClientSession{
			ID:            uint32(i + 1),
			Transport:     cliConns[i],
			OnParams:      hooks[i].OnParams,
			OnEvalRequest: hooks[i].OnEvalRequest,
		}
		outcomes[i].Client = i
		clientWG.Add(1)
		go func(i int, cs *ClientSession, conn net.Conn) {
			defer clientWG.Done()
			// Closing unblocks a coordinator stuck reading from a
			// client that bailed out mid-protocol.
			defer conn.Close()
			if err := cs.Start(); err != nil {
				outcomes[i].Err = err
				return
			}
			outcomes[i].Results, outcomes[i].Err = cs.Serve()
		}(i, cs, cliConns[i])
	}

	so.event(obs.LevelInfo, "session.start",
		obs.Int("clients", n), obs.Int("rounds", int(p.Rounds)),
		obs.Float64("gamma", p.Gamma), obs.Float64("mu", p.Mu))
	coordErr := func() error {
		phase := time.Now()
		if err := forAll(servers, (*ServerSession).AwaitHello); err != nil {
			return err
		}
		if so != nil {
			so.phaseHist["hello"].ObserveSince(phase)
			so.event(obs.LevelDebug, "session.hello", obs.Int("clients", n))
			phase = time.Now()
		}
		if err := forAll(servers, func(s *ServerSession) error { return s.SendParams(p) }); err != nil {
			return err
		}
		if so != nil {
			so.phaseHist["params"].ObserveSince(phase)
			so.event(obs.LevelDebug, "session.params", obs.Int("clients", n))
		}
		for round := uint32(0); round < p.Rounds; round++ {
			start := time.Now()
			if err := forAll(servers, (*ServerSession).RunRound); err != nil {
				return err
			}
			scaled, err := evaluate(round)
			if err != nil {
				abortAll(servers, err.Error())
				so.event(obs.LevelWarn, "session.abort",
					obs.Int("round", int(round)), obs.String("err", err.Error()))
				return err
			}
			res := Result{Round: round, Scaled: scaled}
			final := round == p.Rounds-1
			if err := forAll(servers, func(s *ServerSession) error { return s.SendResult(res, final) }); err != nil {
				return err
			}
			if so != nil {
				secs := time.Since(start).Seconds()
				so.roundHist.Observe(secs)
				so.event(obs.LevelInfo, "session.round",
					obs.Int("round", int(round)), obs.Int("outputs", len(scaled)),
					obs.Float64("seconds", secs))
			}
		}
		return nil
	}()

	// Closing the server ends unblocks clients still reading (e.g. when
	// the coordinator bailed before broadcasting anything).
	for _, c := range srvConns {
		c.Close()
	}
	clientWG.Wait()
	for i, s := range servers {
		outcomes[i].Commitment = s.Commitment
	}
	if coordErr == nil {
		so.event(obs.LevelInfo, "session.done",
			obs.Int("clients", n), obs.Int("rounds", int(p.Rounds)))
	}
	return outcomes, coordErr
}

// forAll runs op against every server session concurrently (net.Pipe is
// synchronous, so sequential execution would deadlock against clients
// that are mid-write). All per-session errors are collected and joined,
// so a multi-client failure reports every broken session, not just the
// first.
func forAll(servers []*ServerSession, op func(*ServerSession) error) error {
	errs := make([]error, len(servers))
	var wg sync.WaitGroup
	for i, s := range servers {
		wg.Add(1)
		go func(i int, s *ServerSession) {
			defer wg.Done()
			if err := op(s); err != nil {
				errs[i] = fmt.Errorf("session %d: %w", s.ID, err)
			}
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func abortAll(servers []*ServerSession, reason string) {
	var wg sync.WaitGroup
	for _, s := range servers {
		wg.Add(1)
		go func(s *ServerSession) {
			defer wg.Done()
			_ = s.Abort(reason)
		}(s)
	}
	wg.Wait()
}
