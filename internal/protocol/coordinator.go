package protocol

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sqm/internal/obs"
)

// ErrQuorumLoss reports that more clients failed mid-session than the
// configured dropout tolerance allows: the coordinator cannot complete
// the session from the survivors and must abandon it. Returned (wrapped)
// by RunSession / RunSessionTCP; callers test errors.Is(err, ErrQuorumLoss)
// to tell an unrecoverable cohort collapse from an ordinary protocol
// error.
var ErrQuorumLoss = errors.New("protocol: dropout tolerance exhausted, session quorum lost")

// abortTimeout bounds how long the coordinator waits for best-effort
// abort notifications to dead or wedged peers before tearing the
// connections down anyway. A variable so tests can shorten the bound.
var abortTimeout = 2 * time.Second

// ClientHooks is the work a participating client performs at each
// lifecycle step (quantization/noise at commit, its protocol share of
// each round).
type ClientHooks struct {
	// OnParams performs quantization and noise sampling; the returned
	// bytes feed the noise commitment (may be nil).
	OnParams      func(Params) ([]byte, error)
	OnEvalRequest func(round uint32) error
}

// SessionOutcome reports one client's view after a full session, plus
// the noise commitment the coordinator recorded for it.
type SessionOutcome struct {
	Client     int
	Results    []Result
	Err        error
	Commitment [32]byte
	// Dropped marks a client the coordinator excluded mid-session under
	// WithDropoutTolerance: its link died or its deadline expired, the
	// session completed without it.
	Dropped bool
}

// RunSession executes a complete SQM session lifecycle over in-memory
// connections: hello, parameter commitment, p.Rounds evaluation rounds,
// and result broadcast. evaluate runs on the coordinator after every
// client finished its round work and returns the opened scaled values
// (in a deployment this is where the MPC opening happens). Every
// client's view is returned; the coordinator's error (if any) comes
// back separately.
func RunSession(p Params, hooks []ClientHooks, evaluate func(round uint32) ([]int64, error), opts ...SessionOption) ([]SessionOutcome, error) {
	if err := validateSession(p, len(hooks)); err != nil {
		return nil, err
	}
	n := len(hooks)
	cliConns := make([]net.Conn, n)
	srvConns := make([]net.Conn, n)
	for i := 0; i < n; i++ {
		cliConns[i], srvConns[i] = net.Pipe()
	}
	return runSession(p, hooks, evaluate, cliConns, srvConns, applySessionOptions(opts))
}

// RunSessionTCP is RunSession with every client connected to the
// coordinator over a real localhost TCP socket instead of a net.Pipe,
// so the session frames cross the loopback stack. Combined with an
// evaluate callback backed by core's socket-transport engine, a whole
// SQM session runs with genuine network traffic end to end.
func RunSessionTCP(p Params, hooks []ClientHooks, evaluate func(round uint32) ([]int64, error), opts ...SessionOption) ([]SessionOutcome, error) {
	if err := validateSession(p, len(hooks)); err != nil {
		return nil, err
	}
	n := len(hooks)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("protocol: listen: %w", err)
	}
	defer ln.Close()
	cliConns := make([]net.Conn, n)
	srvConns := make([]net.Conn, n)
	closeAll := func() {
		for i := 0; i < n; i++ {
			if cliConns[i] != nil {
				cliConns[i].Close()
			}
			if srvConns[i] != nil {
				srvConns[i].Close()
			}
		}
	}
	// Sequential dial-then-accept keeps the client→connection mapping
	// deterministic; the hello's session id re-validates it.
	for i := 0; i < n; i++ {
		cli, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("protocol: dial client %d: %w", i, err)
		}
		cliConns[i] = cli
		srv, err := ln.Accept()
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("protocol: accept client %d: %w", i, err)
		}
		srvConns[i] = srv
	}
	return runSession(p, hooks, evaluate, cliConns, srvConns, applySessionOptions(opts))
}

func validateSession(p Params, n int) error {
	if n == 0 {
		return fmt.Errorf("protocol: no clients")
	}
	if p.NumClients != uint32(n) {
		return fmt.Errorf("protocol: params announce %d clients but %d are wired", p.NumClients, n)
	}
	if p.Rounds == 0 {
		return fmt.Errorf("protocol: at least one round required")
	}
	return nil
}

// deadlineConn imposes a fresh I/O deadline on every read and write, so
// a single silent peer bounds one operation instead of the whole
// session. Both net.Pipe and TCP connections implement the deadline
// methods.
type deadlineConn struct {
	net.Conn
	d time.Duration
}

func (c deadlineConn) Read(p []byte) (int, error) {
	_ = c.Conn.SetReadDeadline(time.Now().Add(c.d))
	return c.Conn.Read(p)
}

func (c deadlineConn) Write(p []byte) (int, error) {
	_ = c.Conn.SetWriteDeadline(time.Now().Add(c.d))
	return c.Conn.Write(p)
}

// sessionRun is the coordinator's mutable view of one running session:
// which clients are still live, how many more it may lose, and where to
// report the losses.
type sessionRun struct {
	servers  []*ServerSession
	srvConns []net.Conn
	outcomes []SessionOutcome
	live     []bool
	nLive    int
	tolerant bool
	budget   int // dropouts still affordable
	dropped  int
	so       *sessionObs
	onDrop   func(client int, err error)
}

// forAllLive runs op against every live server session concurrently
// (net.Pipe is synchronous, so sequential execution would deadlock
// against clients that are mid-write). Without dropout tolerance every
// per-session error is collected and joined, so a multi-client failure
// reports every broken session, not just the first. With tolerance,
// failed sessions are dropped from the cohort while the budget lasts —
// the session degrades instead of dying — and only a failure beyond the
// budget is fatal, wrapped to match ErrQuorumLoss.
func (r *sessionRun) forAllLive(op func(*ServerSession) error) error {
	errs := make([]error, len(r.servers))
	var wg sync.WaitGroup
	for i, s := range r.servers {
		if !r.live[i] {
			continue
		}
		wg.Add(1)
		go func(i int, s *ServerSession) {
			defer wg.Done()
			if err := op(s); err != nil {
				errs[i] = fmt.Errorf("session %d: %w", s.ID, err)
			}
		}(i, s)
	}
	wg.Wait()
	var fatal []error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if r.tolerant && r.budget > 0 {
			r.budget--
			r.drop(i, err)
			continue
		}
		fatal = append(fatal, err)
	}
	if len(fatal) == 0 {
		return nil
	}
	if r.tolerant {
		return fmt.Errorf("%w (%d dropped earlier, %d tolerated): %w",
			ErrQuorumLoss, r.dropped, r.dropped+r.budget, errors.Join(fatal...))
	}
	return errors.Join(fatal...)
}

// drop excludes client i from the rest of the session: its connection
// is closed (unblocking both ends), its outcome is marked Dropped, and
// the degradation is reported through telemetry and the onDrop hook.
func (r *sessionRun) drop(i int, cause error) {
	r.live[i] = false
	r.nLive--
	r.dropped++
	r.outcomes[i].Dropped = true
	_ = r.srvConns[i].Close()
	r.so.event(obs.LevelWarn, "session.degraded",
		obs.Int("client", i), obs.Int("live", r.nLive),
		obs.Int("dropped", r.dropped), obs.String("err", cause.Error()))
	if r.so != nil {
		r.so.dropouts.Add(1)
	}
	if r.onDrop != nil {
		r.onDrop(i, cause)
	}
}

// runSession drives the lifecycle over pre-established connection pairs
// (cliConns[i] is client i's end, srvConns[i] the coordinator's).
func runSession(p Params, hooks []ClientHooks, evaluate func(round uint32) ([]int64, error), cliConns, srvConns []net.Conn, o sessionOptions) ([]SessionOutcome, error) {
	if o.traceDir != "" && o.trace == nil {
		o.trace = obs.NewTraceContext(SessionTraceID(p), 0)
	}
	if o.trace != nil && obs.TraceOf(o.rec) == nil {
		o.rec = o.trace.Coordinator().Wrap(o.rec)
	}
	so := newSessionObs(o.rec)
	n := len(hooks)
	r := &sessionRun{
		servers:  make([]*ServerSession, n),
		srvConns: srvConns,
		outcomes: make([]SessionOutcome, n),
		live:     make([]bool, n),
		nLive:    n,
		tolerant: o.maxDropouts > 0,
		budget:   o.maxDropouts,
		so:       so,
		onDrop:   o.onDrop,
	}
	var clientWG sync.WaitGroup
	for i := 0; i < n; i++ {
		r.live[i] = true
		srvT := net.Conn(srvConns[i])
		if o.timeout > 0 {
			srvT = deadlineConn{Conn: srvT, d: o.timeout}
		}
		r.servers[i] = &ServerSession{ID: uint32(i + 1), Transport: srvT}
		cs := &ClientSession{
			ID:            uint32(i + 1),
			Transport:     cliConns[i],
			OnParams:      hooks[i].OnParams,
			OnEvalRequest: hooks[i].OnEvalRequest,
		}
		r.outcomes[i].Client = i
		clientWG.Add(1)
		go func(i int, cs *ClientSession, conn net.Conn) {
			defer clientWG.Done()
			// Closing unblocks a coordinator stuck reading from a
			// client that bailed out mid-protocol.
			defer conn.Close()
			if err := cs.Start(); err != nil {
				r.outcomes[i].Err = err
				return
			}
			r.outcomes[i].Results, r.outcomes[i].Err = cs.Serve()
		}(i, cs, cliConns[i])
	}

	// Context cancellation tears down every coordinator-side connection,
	// which fails the in-flight phase and unwinds the whole session.
	watchdog := make(chan struct{})
	if o.ctx != nil {
		go func() {
			select {
			case <-o.ctx.Done():
				for _, c := range srvConns {
					c.Close()
				}
			case <-watchdog:
			}
		}()
	}

	so.event(obs.LevelInfo, "session.start",
		obs.Int("clients", n), obs.Int("rounds", int(p.Rounds)),
		obs.Float64("gamma", p.Gamma), obs.Float64("mu", p.Mu))
	coordErr := func() error {
		phase := time.Now()
		if err := r.forAllLive((*ServerSession).AwaitHello); err != nil {
			return err
		}
		if so != nil {
			so.phaseHist["hello"].ObserveSince(phase)
			so.event(obs.LevelDebug, "session.hello", obs.Int("clients", r.nLive))
			phase = time.Now()
		}
		if err := r.forAllLive(func(s *ServerSession) error { return s.SendParams(p) }); err != nil {
			return err
		}
		if so != nil {
			so.phaseHist["params"].ObserveSince(phase)
			so.event(obs.LevelDebug, "session.params", obs.Int("clients", r.nLive))
		}
		for round := uint32(0); round < p.Rounds; round++ {
			start := time.Now()
			if err := r.forAllLive((*ServerSession).RunRound); err != nil {
				return err
			}
			scaled, err := evaluate(round)
			if err != nil {
				r.abortLive(err.Error())
				so.event(obs.LevelWarn, "session.abort",
					obs.Int("round", int(round)), obs.String("err", err.Error()))
				return err
			}
			res := Result{Round: round, Scaled: scaled}
			final := round == p.Rounds-1
			if err := r.forAllLive(func(s *ServerSession) error { return s.SendResult(res, final) }); err != nil {
				return err
			}
			if so != nil {
				secs := time.Since(start).Seconds()
				so.roundHist.Observe(secs)
				so.event(obs.LevelInfo, "session.round",
					obs.Int("round", int(round)), obs.Int("outputs", len(scaled)),
					obs.Float64("seconds", secs))
			}
		}
		return nil
	}()
	close(watchdog)

	// Closing the server ends unblocks clients still reading (e.g. when
	// the coordinator bailed before broadcasting anything).
	for _, c := range srvConns {
		c.Close()
	}
	clientWG.Wait()
	for i, s := range r.servers {
		r.outcomes[i].Commitment = s.Commitment
	}
	if o.ctx != nil && o.ctx.Err() != nil && coordErr != nil {
		coordErr = errors.Join(coordErr, o.ctx.Err())
	}
	if coordErr == nil {
		so.event(obs.LevelInfo, "session.done",
			obs.Int("clients", n), obs.Int("live", r.nLive),
			obs.Int("dropped", r.dropped), obs.Int("rounds", int(p.Rounds)))
	}
	// The flight recorders dump on every exit path — an aborted session
	// leaves its black box behind, which is the whole point of one.
	if o.trace != nil && o.traceDir != "" {
		if paths, derr := o.trace.DumpAll(o.traceDir); derr != nil {
			so.event(obs.LevelWarn, "session.trace_dump_failed", obs.String("err", derr.Error()))
		} else {
			so.event(obs.LevelInfo, "session.trace_dump",
				obs.String("dir", o.traceDir), obs.Int("files", len(paths)))
		}
	}
	return r.outcomes, coordErr
}

// abortLive sends a best-effort abort to every live client. A dead or
// wedged peer cannot stall the coordinator: each Abort runs on its own
// goroutine and the wait is bounded by abortTimeout — the connections
// are torn down right after, which unblocks any straggling writer.
func (r *sessionRun) abortLive(reason string) {
	var wg sync.WaitGroup
	for i, s := range r.servers {
		if !r.live[i] {
			continue
		}
		wg.Add(1)
		go func(s *ServerSession) {
			defer wg.Done()
			_ = s.Abort(reason)
		}(s)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(abortTimeout):
	}
}

// WithContext cancels the session when ctx does: every coordinator-side
// connection is torn down, the in-flight phase fails, and the returned
// error matches ctx.Err(). A nil ctx is ignored.
func WithContext(ctx context.Context) SessionOption {
	return func(o *sessionOptions) { o.ctx = ctx }
}

// WithTimeout bounds every coordinator-side read and write with a fresh
// deadline of d, so one silent client costs at most d per operation
// instead of hanging the session. Combine with WithDropoutTolerance to
// turn those expiries into dropouts instead of session failures. d <= 0
// leaves I/O unbounded.
func WithTimeout(d time.Duration) SessionOption {
	return func(o *sessionOptions) { o.timeout = d }
}

// WithDropoutTolerance lets the session survive up to max client
// failures: a client whose link dies or whose deadline expires is
// excluded from the remaining phases (its outcome is marked Dropped, a
// session.degraded event is emitted) and the session completes from the
// survivors. Failure max+1 aborts with an error matching ErrQuorumLoss.
// max <= 0 disables tolerance — any failure is fatal, the pre-existing
// strict behavior.
func WithDropoutTolerance(max int) SessionOption {
	return func(o *sessionOptions) { o.maxDropouts = max }
}

// WithDropoutNotify registers fn to be called (on the coordinator
// goroutine, before the next phase starts) for every client dropped
// under WithDropoutTolerance. Evaluate callbacks use it to exclude the
// dead client's shares from the round's reconstruction.
func WithDropoutNotify(fn func(client int, err error)) SessionOption {
	return func(o *sessionOptions) { o.onDrop = fn }
}
