package protocol

import (
	"fmt"
	"net"
	"sync"
)

// ClientHooks is the work a participating client performs at each
// lifecycle step (quantization/noise at commit, its protocol share of
// each round).
type ClientHooks struct {
	// OnParams performs quantization and noise sampling; the returned
	// bytes feed the noise commitment (may be nil).
	OnParams      func(Params) ([]byte, error)
	OnEvalRequest func(round uint32) error
}

// SessionOutcome reports one client's view after a full session, plus
// the noise commitment the coordinator recorded for it.
type SessionOutcome struct {
	Client     int
	Results    []Result
	Err        error
	Commitment [32]byte
}

// RunSession executes a complete SQM session lifecycle over in-memory
// connections: hello, parameter commitment, p.Rounds evaluation rounds,
// and result broadcast. evaluate runs on the coordinator after every
// client finished its round work and returns the opened scaled values
// (in a deployment this is where the MPC opening happens). Every
// client's view is returned; the coordinator's error (if any) comes
// back separately.
func RunSession(p Params, hooks []ClientHooks, evaluate func(round uint32) ([]int64, error)) ([]SessionOutcome, error) {
	n := len(hooks)
	if n == 0 {
		return nil, fmt.Errorf("protocol: no clients")
	}
	if p.NumClients != uint32(n) {
		return nil, fmt.Errorf("protocol: params announce %d clients but %d are wired", p.NumClients, n)
	}
	if p.Rounds == 0 {
		return nil, fmt.Errorf("protocol: at least one round required")
	}

	outcomes := make([]SessionOutcome, n)
	servers := make([]*ServerSession, n)
	srvConns := make([]net.Conn, n)
	var clientWG sync.WaitGroup
	for i := 0; i < n; i++ {
		cliConn, srvConn := net.Pipe()
		srvConns[i] = srvConn
		servers[i] = &ServerSession{ID: uint32(i + 1), Transport: srvConn}
		cs := &ClientSession{
			ID:            uint32(i + 1),
			Transport:     cliConn,
			OnParams:      hooks[i].OnParams,
			OnEvalRequest: hooks[i].OnEvalRequest,
		}
		outcomes[i].Client = i
		clientWG.Add(1)
		go func(i int, cs *ClientSession, conn net.Conn) {
			defer clientWG.Done()
			// Closing unblocks a coordinator stuck reading from a
			// client that bailed out mid-protocol.
			defer conn.Close()
			if err := cs.Start(); err != nil {
				outcomes[i].Err = err
				return
			}
			outcomes[i].Results, outcomes[i].Err = cs.Serve()
		}(i, cs, cliConn)
	}

	coordErr := func() error {
		if err := forAll(servers, (*ServerSession).AwaitHello); err != nil {
			return err
		}
		if err := forAll(servers, func(s *ServerSession) error { return s.SendParams(p) }); err != nil {
			return err
		}
		for round := uint32(0); round < p.Rounds; round++ {
			if err := forAll(servers, (*ServerSession).RunRound); err != nil {
				return err
			}
			scaled, err := evaluate(round)
			if err != nil {
				abortAll(servers, err.Error())
				return err
			}
			res := Result{Round: round, Scaled: scaled}
			final := round == p.Rounds-1
			if err := forAll(servers, func(s *ServerSession) error { return s.SendResult(res, final) }); err != nil {
				return err
			}
		}
		return nil
	}()

	// Closing the server ends unblocks clients still reading (e.g. when
	// the coordinator bailed before broadcasting anything).
	for _, c := range srvConns {
		c.Close()
	}
	clientWG.Wait()
	for i, s := range servers {
		outcomes[i].Commitment = s.Commitment
	}
	return outcomes, coordErr
}

// forAll runs op against every server session concurrently (net.Pipe is
// synchronous, so sequential execution would deadlock against clients
// that are mid-write).
func forAll(servers []*ServerSession, op func(*ServerSession) error) error {
	errs := make([]error, len(servers))
	var wg sync.WaitGroup
	for i, s := range servers {
		wg.Add(1)
		go func(i int, s *ServerSession) {
			defer wg.Done()
			errs[i] = op(s)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func abortAll(servers []*ServerSession, reason string) {
	var wg sync.WaitGroup
	for _, s := range servers {
		wg.Add(1)
		go func(s *ServerSession) {
			defer wg.Done()
			_ = s.Abort(reason)
		}(s)
	}
	wg.Wait()
}
