package protocol

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// State is a session's lifecycle position. The state machines reject
// out-of-order messages: the DP analysis assumes every client committed
// its quantization and local noise *before* any evaluation round, and
// the session layer is where that ordering is enforced.
type State uint8

const (
	// StateNew is the initial state.
	StateNew State = iota
	// StateHelloed means the hello exchange completed.
	StateHelloed
	// StateCommitted means parameters were acknowledged (client has
	// quantized its column and sampled its noise shares).
	StateCommitted
	// StateEvaluating means at least one round is in flight.
	StateEvaluating
	// StateDone means the session ended normally.
	StateDone
	// StateAborted means the session ended with MsgError.
	StateAborted
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateNew:
		return "New"
	case StateHelloed:
		return "Helloed"
	case StateCommitted:
		return "Committed"
	case StateEvaluating:
		return "Evaluating"
	case StateDone:
		return "Done"
	case StateAborted:
		return "Aborted"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// ErrBadTransition reports a message arriving in the wrong state.
var ErrBadTransition = errors.New("protocol: message not valid in current state")

// ClientSession drives one client's side of an SQM session over a
// transport. Callbacks let the embedding client perform the actual
// work (quantize+commit, evaluate one round) while the session enforces
// ordering.
type ClientSession struct {
	ID        uint32
	Transport io.ReadWriter
	// OnParams must quantize the local column and sample all noise
	// shares for the announced parameters, before any round runs. The
	// returned bytes (if any) are hashed with the session id into the
	// noise commitment carried by ParamsAck — serialize the sampled
	// noise shares so the commitment binds them.
	OnParams func(Params) ([]byte, error)
	// OnEvalRequest must execute the client's part of round r.
	OnEvalRequest func(round uint32) error

	state State
}

// Commit derives the noise commitment sent in ParamsAck: SHA-256 over
// the session id and the serialized noise. A client that later claims
// different noise shares can be caught against this value.
func Commit(session uint32, noise []byte) [32]byte {
	h := sha256.New()
	var sid [4]byte
	binary.BigEndian.PutUint32(sid[:], session)
	h.Write(sid[:])
	h.Write(noise)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// State returns the current lifecycle position.
func (c *ClientSession) State() State { return c.state }

// Start sends the hello.
func (c *ClientSession) Start() error {
	if c.state != StateNew {
		return fmt.Errorf("%w: Start in %v", ErrBadTransition, c.state)
	}
	if err := WriteMessage(c.Transport, Message{Type: MsgHello, Session: c.ID}); err != nil {
		return err
	}
	c.state = StateHelloed
	return nil
}

// Serve processes messages until MsgResult of the final round, MsgError
// or EOF. It returns the final results (one per round) on success.
func (c *ClientSession) Serve() ([]Result, error) {
	var results []Result
	var want uint32 // rounds expected, learned from Params
	for {
		m, err := ReadMessage(c.Transport)
		if err != nil {
			if errors.Is(err, io.EOF) && c.state == StateDone {
				return results, nil
			}
			return results, err
		}
		if m.Session != c.ID {
			return results, fmt.Errorf("protocol: session %d received frame for %d", c.ID, m.Session)
		}
		switch m.Type {
		case MsgParams:
			if c.state != StateHelloed {
				return results, fmt.Errorf("%w: Params in %v", ErrBadTransition, c.state)
			}
			p, err := DecodeParams(m.Payload)
			if err != nil {
				return results, err
			}
			want = p.Rounds
			var noise []byte
			if c.OnParams != nil {
				noise, err = c.OnParams(p)
				if err != nil {
					c.state = StateAborted
					return results, err
				}
			}
			commit := Commit(c.ID, noise)
			if err := WriteMessage(c.Transport, Message{Type: MsgParamsAck, Session: c.ID, Payload: commit[:]}); err != nil {
				return results, err
			}
			c.state = StateCommitted
		case MsgEvalRequest:
			if c.state != StateCommitted && c.state != StateEvaluating {
				return results, fmt.Errorf("%w: EvalRequest in %v", ErrBadTransition, c.state)
			}
			round := uint32(len(results))
			if c.OnEvalRequest != nil {
				if err := c.OnEvalRequest(round); err != nil {
					c.state = StateAborted
					return results, err
				}
			}
			if err := WriteMessage(c.Transport, Message{Type: MsgRoundDone, Session: c.ID}); err != nil {
				return results, err
			}
			c.state = StateEvaluating
		case MsgResult:
			if c.state != StateEvaluating {
				return results, fmt.Errorf("%w: Result in %v", ErrBadTransition, c.state)
			}
			r, err := DecodeResult(m.Payload)
			if err != nil {
				return results, err
			}
			if r.Round != uint32(len(results)) {
				c.state = StateAborted
				return results, fmt.Errorf("protocol: result for round %d, expected round %d", r.Round, uint32(len(results)))
			}
			results = append(results, r)
			if uint32(len(results)) == want {
				c.state = StateDone
				return results, nil
			}
			c.state = StateCommitted
		case MsgError:
			c.state = StateAborted
			return results, fmt.Errorf("protocol: server aborted: %s", m.Payload)
		default:
			return results, fmt.Errorf("protocol: unexpected %v from server", m.Type)
		}
	}
}

// ServerSession drives the coordinator's side against one client
// connection. A real deployment runs one per client and synchronizes
// the rounds; Coordinator below does that for the in-process
// simulation.
type ServerSession struct {
	ID        uint32
	Transport io.ReadWriter

	// Commitment is the client's noise commitment from ParamsAck; an
	// auditor can later demand the noise opening and check it.
	Commitment [32]byte

	state State
}

// State returns the current lifecycle position.
func (s *ServerSession) State() State { return s.state }

// AwaitHello consumes the client hello.
func (s *ServerSession) AwaitHello() error {
	if s.state != StateNew {
		return fmt.Errorf("%w: AwaitHello in %v", ErrBadTransition, s.state)
	}
	m, err := ReadMessage(s.Transport)
	if err != nil {
		return err
	}
	if m.Type != MsgHello || m.Session != s.ID {
		return fmt.Errorf("protocol: expected Hello for session %d, got %v/%d", s.ID, m.Type, m.Session)
	}
	s.state = StateHelloed
	return nil
}

// SendParams announces parameters and waits for the commitment ack.
func (s *ServerSession) SendParams(p Params) error {
	if s.state != StateHelloed {
		return fmt.Errorf("%w: SendParams in %v", ErrBadTransition, s.state)
	}
	if err := WriteMessage(s.Transport, Message{Type: MsgParams, Session: s.ID, Payload: p.Encode()}); err != nil {
		return err
	}
	m, err := ReadMessage(s.Transport)
	if err != nil {
		return err
	}
	if m.Type != MsgParamsAck {
		return fmt.Errorf("protocol: expected ParamsAck, got %v", m.Type)
	}
	if len(m.Payload) != 32 {
		return fmt.Errorf("protocol: ParamsAck must carry a 32-byte noise commitment, got %d bytes", len(m.Payload))
	}
	copy(s.Commitment[:], m.Payload)
	s.state = StateCommitted
	return nil
}

// RunRound issues one evaluation request and waits for completion.
func (s *ServerSession) RunRound() error {
	if s.state != StateCommitted && s.state != StateEvaluating {
		return fmt.Errorf("%w: RunRound in %v", ErrBadTransition, s.state)
	}
	if err := WriteMessage(s.Transport, Message{Type: MsgEvalRequest, Session: s.ID}); err != nil {
		return err
	}
	m, err := ReadMessage(s.Transport)
	if err != nil {
		return err
	}
	if m.Type != MsgRoundDone {
		return fmt.Errorf("protocol: expected RoundDone, got %v", m.Type)
	}
	s.state = StateEvaluating
	return nil
}

// SendResult broadcasts one round's opened result.
func (s *ServerSession) SendResult(r Result, final bool) error {
	if s.state != StateEvaluating {
		return fmt.Errorf("%w: SendResult in %v", ErrBadTransition, s.state)
	}
	if err := WriteMessage(s.Transport, Message{Type: MsgResult, Session: s.ID, Payload: r.Encode()}); err != nil {
		return err
	}
	if final {
		s.state = StateDone
	} else {
		s.state = StateCommitted
	}
	return nil
}

// Abort sends MsgError and marks the session failed.
func (s *ServerSession) Abort(reason string) error {
	err := WriteMessage(s.Transport, Message{Type: MsgError, Session: s.ID, Payload: []byte(reason)})
	s.state = StateAborted
	return err
}
