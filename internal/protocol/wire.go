// Package protocol implements the session layer a deployed SQM system
// speaks between the coordinator (server) and the clients: versioned,
// length-prefixed binary messages for the protocol lifecycle —
// parameter negotiation, per-round evaluation requests, scaled results
// and errors — plus client/server session state machines that enforce
// the message order the DP analysis assumes (noise is committed before
// any evaluation round, results only flow after every client acked the
// parameters).
//
// The transport is abstracted as an io.ReadWriter; the tests and the
// simulation drive it over in-memory pipes, a deployment would use TLS
// connections. Payloads never contain raw data columns: clients only
// ever transmit protocol control fields and (in the MPC engines)
// secret shares.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the wire-format version; peers must match exactly.
const Version uint16 = 1

// MsgType enumerates the protocol messages.
type MsgType uint8

const (
	// MsgHello opens a session: client -> server.
	MsgHello MsgType = iota + 1
	// MsgParams announces the agreed mechanism parameters: server -> clients.
	MsgParams
	// MsgParamsAck confirms quantization + noise commitment: client -> server.
	MsgParamsAck
	// MsgEvalRequest starts one evaluation round: server -> clients.
	MsgEvalRequest
	// MsgRoundDone signals a client finished its protocol round: client -> server.
	MsgRoundDone
	// MsgResult carries the scaled integer outputs: server -> clients (broadcast of the opened value).
	MsgResult
	// MsgError aborts the session with a reason.
	MsgError
	// MsgShare carries secret-share traffic between MPC parties (the
	// transport layer of the actor-BGW engine); Session holds the
	// sender's party id. Control sessions never emit it.
	MsgShare
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "Hello"
	case MsgParams:
		return "Params"
	case MsgParamsAck:
		return "ParamsAck"
	case MsgEvalRequest:
		return "EvalRequest"
	case MsgRoundDone:
		return "RoundDone"
	case MsgResult:
		return "Result"
	case MsgError:
		return "Error"
	case MsgShare:
		return "Share"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is one frame.
type Message struct {
	Type    MsgType
	Session uint32
	Payload []byte
}

// MaxPayload bounds a frame (16 MiB) so a corrupted length prefix
// cannot trigger an absurd allocation.
const MaxPayload = 16 << 20

// Frame layout: version(2) type(1) session(4) payloadLen(4) payload.
const headerLen = 2 + 1 + 4 + 4

// ErrVersionMismatch reports a peer speaking another version.
var ErrVersionMismatch = errors.New("protocol: version mismatch")

// ErrFrameTooLarge reports a payload beyond MaxPayload.
var ErrFrameTooLarge = errors.New("protocol: frame exceeds MaxPayload")

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m Message) error {
	if len(m.Payload) > MaxPayload {
		return ErrFrameTooLarge
	}
	hdr := make([]byte, headerLen)
	binary.BigEndian.PutUint16(hdr[0:2], Version)
	hdr[2] = byte(m.Type)
	binary.BigEndian.PutUint32(hdr[3:7], m.Session)
	binary.BigEndian.PutUint32(hdr[7:11], uint32(len(m.Payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(m.Payload) > 0 {
		if _, err := w.Write(m.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadMessage reads and validates one frame. The payload is freshly
// allocated; use ReadMessageInto to reuse a receive buffer across
// frames on a long-lived link.
func ReadMessage(r io.Reader) (Message, error) {
	m, _, err := ReadMessageInto(r, nil)
	return m, err
}

// ReadMessageInto reads and validates one frame, decoding the payload
// into buf when it fits (avoiding the per-frame allocation of a
// long-lived link's receive path) and allocating a larger buffer
// otherwise. It returns the message and the buffer to pass to the next
// call; m.Payload aliases that buffer, so the message is only valid
// until the buffer's next reuse — callers owning the link's read side
// must copy or fully consume the payload before reading the next frame.
func ReadMessageInto(r io.Reader, buf []byte) (Message, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, buf, err
	}
	if v := binary.BigEndian.Uint16(hdr[0:2]); v != Version {
		return Message{}, buf, fmt.Errorf("%w: got %d, want %d", ErrVersionMismatch, v, Version)
	}
	m := Message{
		Type:    MsgType(hdr[2]),
		Session: binary.BigEndian.Uint32(hdr[3:7]),
	}
	n := binary.BigEndian.Uint32(hdr[7:11])
	if n > MaxPayload {
		return Message{}, buf, ErrFrameTooLarge
	}
	if n > 0 {
		if uint32(cap(buf)) >= n {
			buf = buf[:n]
		} else {
			buf = make([]byte, n)
		}
		m.Payload = buf
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			return Message{}, buf, err
		}
	}
	return m, buf, nil
}

// Params is the negotiated mechanism configuration (MsgParams payload).
type Params struct {
	Gamma      float64
	Mu         float64
	NumClients uint32
	OutDim     uint32
	Rounds     uint32
	Seed       uint64
}

// Encode serializes Params.
func (p Params) Encode() []byte {
	buf := make([]byte, 8+8+4+4+4+8)
	binary.BigEndian.PutUint64(buf[0:], math.Float64bits(p.Gamma))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(p.Mu))
	binary.BigEndian.PutUint32(buf[16:], p.NumClients)
	binary.BigEndian.PutUint32(buf[20:], p.OutDim)
	binary.BigEndian.PutUint32(buf[24:], p.Rounds)
	binary.BigEndian.PutUint64(buf[28:], p.Seed)
	return buf
}

// DecodeParams parses a Params payload.
func DecodeParams(b []byte) (Params, error) {
	if len(b) != 36 {
		return Params{}, fmt.Errorf("protocol: Params payload is %d bytes, want 36", len(b))
	}
	return Params{
		Gamma:      math.Float64frombits(binary.BigEndian.Uint64(b[0:])),
		Mu:         math.Float64frombits(binary.BigEndian.Uint64(b[8:])),
		NumClients: binary.BigEndian.Uint32(b[16:]),
		OutDim:     binary.BigEndian.Uint32(b[20:]),
		Rounds:     binary.BigEndian.Uint32(b[24:]),
		Seed:       binary.BigEndian.Uint64(b[28:]),
	}, nil
}

// Result is the MsgResult payload: the opened scaled integers of one
// round.
type Result struct {
	Round  uint32
	Scaled []int64
}

// Encode serializes a Result.
func (r Result) Encode() []byte {
	buf := make([]byte, 4+4+8*len(r.Scaled))
	binary.BigEndian.PutUint32(buf[0:], r.Round)
	binary.BigEndian.PutUint32(buf[4:], uint32(len(r.Scaled)))
	for i, v := range r.Scaled {
		binary.BigEndian.PutUint64(buf[8+8*i:], uint64(v))
	}
	return buf
}

// DecodeResult parses a Result payload.
func DecodeResult(b []byte) (Result, error) {
	if len(b) < 8 {
		return Result{}, fmt.Errorf("protocol: Result payload too short (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b[4:])
	if uint64(len(b)) != 8+8*uint64(n) {
		return Result{}, fmt.Errorf("protocol: Result payload length %d inconsistent with count %d", len(b), n)
	}
	r := Result{Round: binary.BigEndian.Uint32(b[0:]), Scaled: make([]int64, n)}
	for i := range r.Scaled {
		r.Scaled[i] = int64(binary.BigEndian.Uint64(b[8+8*i:]))
	}
	return r, nil
}
