package protocol_test

import (
	"errors"
	"net"
	"strings"
	"testing"

	"sqm/internal/core"
	"sqm/internal/linalg"
	"sqm/internal/poly"
	"sqm/internal/protocol"
	"sqm/internal/randx"
)

func sessionTestData() (*linalg.Matrix, *poly.Multi) {
	g := randx.New(3)
	x := linalg.NewMatrix(20, 3)
	for i := range x.Data {
		x.Data[i] = g.Gaussian(0, 0.3)
	}
	f := poly.MustMulti(poly.MustPolynomial(3,
		poly.Monomial{Coef: 1, Exps: []int{1, 1, 0}},
		poly.Monomial{Coef: 0.5, Exps: []int{0, 0, 2}},
	))
	return x, f
}

// TestRunSessionDrivesRealSQM wires the session layer to the actual
// mechanism: the coordinator's evaluate callback runs Algorithm 3 and
// every client receives the same scaled outputs it would have opened in
// the MPC.
func TestRunSessionDrivesRealSQM(t *testing.T) {
	x, f := sessionTestData()
	params := protocol.Params{Gamma: 256, Mu: 10, NumClients: 3, OutDim: 1, Rounds: 2, Seed: 77}
	hooks := make([]protocol.ClientHooks, 3)
	var traces []*core.Trace
	outcomes, err := protocol.RunSession(params, hooks, func(round uint32) ([]int64, error) {
		_, tr, err := core.EvaluatePolynomialSum(f, x, core.Params{
			Gamma: params.Gamma, Mu: params.Mu, NumClients: 3,
			Seed: params.Seed + uint64(round),
		})
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
		return tr.Scaled, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("client %d: %v", o.Client, o.Err)
		}
		for r, res := range o.Results {
			if res.Scaled[0] != traces[r].Scaled[0] {
				t.Fatalf("client %d round %d: %d != %d", o.Client, r, res.Scaled[0], traces[r].Scaled[0])
			}
		}
	}
}

// TestRunSessionTCPDrivesActorNet runs the full stack with real network
// traffic twice over: the session frames cross localhost TCP sockets,
// and the evaluate callback runs the party-actor BGW engine whose share
// messages cross their own socket mesh. The opened results must equal
// the plaintext engine's bit for bit.
func TestRunSessionTCPDrivesActorNet(t *testing.T) {
	x, f := sessionTestData()
	params := protocol.Params{Gamma: 256, Mu: 10, NumClients: 3, OutDim: 1, Rounds: 2, Seed: 77}

	// Reference trace per round from the plaintext engine.
	want := make([][]int64, params.Rounds)
	for r := range want {
		_, tr, err := core.EvaluatePolynomialSum(f, x, core.Params{
			Gamma: params.Gamma, Mu: params.Mu, NumClients: 3,
			Seed: params.Seed + uint64(r),
		})
		if err != nil {
			t.Fatal(err)
		}
		want[r] = tr.Scaled
	}

	hooks := make([]protocol.ClientHooks, 3)
	outcomes, err := protocol.RunSessionTCP(params, hooks, func(round uint32) ([]int64, error) {
		_, tr, err := core.EvaluatePolynomialSum(f, x, core.Params{
			Gamma: params.Gamma, Mu: params.Mu, NumClients: 3,
			Engine: core.EngineActorBGWNet, Parties: 3,
			Seed: params.Seed + uint64(round),
		})
		if err != nil {
			return nil, err
		}
		return tr.Scaled, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("client %d: %v", o.Client, o.Err)
		}
		for r, res := range o.Results {
			if res.Scaled[0] != want[r][0] {
				t.Fatalf("client %d round %d: socket MPC opened %d, plain computed %d", o.Client, r, res.Scaled[0], want[r][0])
			}
		}
	}
}

// TestServeRejectsRoundMismatch: a coordinator that replays or skips a
// round's result must be caught by the client's round validation.
func TestServeRejectsRoundMismatch(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	cs := &protocol.ClientSession{ID: 1, Transport: cli}
	done := make(chan error, 1)
	go func() {
		if err := cs.Start(); err != nil {
			done <- err
			return
		}
		_, err := cs.Serve()
		done <- err
	}()
	ss := &protocol.ServerSession{ID: 1, Transport: srv}
	if err := ss.AwaitHello(); err != nil {
		t.Fatal(err)
	}
	if err := ss.SendParams(protocol.Params{NumClients: 1, OutDim: 1, Rounds: 2}); err != nil {
		t.Fatal(err)
	}
	if err := ss.RunRound(); err != nil {
		t.Fatal(err)
	}
	// Deliver a result claiming the wrong round (expected: 0).
	bad := protocol.Result{Round: 5, Scaled: []int64{1}}
	if err := protocol.WriteMessage(srv, protocol.Message{Type: protocol.MsgResult, Session: 1, Payload: bad.Encode()}); err != nil {
		t.Fatal(err)
	}
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "round") {
		t.Fatalf("Serve accepted a round mismatch: err = %v", err)
	}
}

// TestRunSessionJoinsAllFailures: when several clients fail, the
// coordinator error must name every broken session, not just the first.
func TestRunSessionJoinsAllFailures(t *testing.T) {
	fail := func(protocol.Params) ([]byte, error) { return nil, errors.New("commit refused") }
	hooks := []protocol.ClientHooks{{OnParams: fail}, {OnParams: fail}}
	p := protocol.Params{NumClients: 2, OutDim: 1, Rounds: 1}
	_, err := protocol.RunSession(p, hooks, func(uint32) ([]int64, error) { return []int64{0}, nil })
	if err == nil {
		t.Fatal("coordinator must surface the failures")
	}
	for _, want := range []string{"session 1", "session 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q does not mention %s", err, want)
		}
	}
}
