package protocol

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// scriptRW is an io.ReadWriter whose reads come from a pre-built frame
// script and whose writes are discarded — a peer reduced to its byte
// stream, for driving a session state machine through arbitrary (and
// arbitrarily broken) traffic.
type scriptRW struct {
	r *bytes.Reader
}

func (s *scriptRW) Read(p []byte) (int, error)  { return s.r.Read(p) }
func (s *scriptRW) Write(p []byte) (int, error) { return len(p), nil }

func frames(t testing.TB, ms ...Message) []byte {
	var buf bytes.Buffer
	for _, m := range ms {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// happyClientScript is the byte stream a correct coordinator sends a
// one-round session-1 client.
func happyClientScript(t testing.TB) []byte {
	p := Params{Gamma: 8, Mu: 1, NumClients: 1, OutDim: 1, Rounds: 1, Seed: 1}
	return frames(t,
		Message{Type: MsgParams, Session: 1, Payload: p.Encode()},
		Message{Type: MsgEvalRequest, Session: 1},
		Message{Type: MsgResult, Session: 1, Payload: Result{Round: 0, Scaled: []int64{3}}.Encode()},
	)
}

func serveClient(t testing.TB, script []byte) (*ClientSession, []Result, error) {
	t.Helper()
	cs := &ClientSession{
		ID:            1,
		Transport:     &scriptRW{r: bytes.NewReader(script)},
		OnParams:      func(Params) ([]byte, error) { return []byte("n"), nil },
		OnEvalRequest: func(uint32) error { return nil },
	}
	if err := cs.Start(); err != nil {
		t.Fatal(err)
	}
	results, err := cs.Serve()
	return cs, results, err
}

// TestClientServeHappyScript sanity-checks the script harness itself.
func TestClientServeHappyScript(t *testing.T) {
	cs, results, err := serveClient(t, happyClientScript(t))
	if err != nil {
		t.Fatal(err)
	}
	if cs.State() != StateDone || len(results) != 1 {
		t.Fatalf("state %v, %d results; want Done, 1", cs.State(), len(results))
	}
}

// TestClientServeTruncatedStreams: the happy stream cut at every byte
// boundary must fail cleanly (mid-handshake disconnects included) —
// no panic, no hang, never a successful Done from a partial session.
func TestClientServeTruncatedStreams(t *testing.T) {
	script := happyClientScript(t)
	for cut := 0; cut < len(script); cut++ {
		cs, _, err := serveClient(t, script[:cut])
		if err == nil {
			t.Fatalf("cut at %d/%d: Serve returned nil error", cut, len(script))
		}
		if cs.State() == StateDone {
			t.Fatalf("cut at %d/%d: truncated stream reached StateDone", cut, len(script))
		}
	}
}

// TestClientServeOutOfOrderFrames: every frame type arriving in a wrong
// state must be rejected with ErrBadTransition, not acted upon.
func TestClientServeOutOfOrderFrames(t *testing.T) {
	p := Params{Gamma: 8, Mu: 1, NumClients: 1, OutDim: 1, Rounds: 2, Seed: 1}
	paramsMsg := Message{Type: MsgParams, Session: 1, Payload: p.Encode()}
	evalMsg := Message{Type: MsgEvalRequest, Session: 1}
	resultMsg := Message{Type: MsgResult, Session: 1, Payload: Result{Round: 0, Scaled: []int64{3}}.Encode()}
	cases := []struct {
		name   string
		script []byte
	}{
		{"result-before-params", frames(t, resultMsg)},
		{"eval-before-params", frames(t, evalMsg)},
		{"double-params", frames(t, paramsMsg, paramsMsg)},
		{"result-without-eval", frames(t, paramsMsg, resultMsg)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := serveClient(t, tc.script)
			if !errors.Is(err, ErrBadTransition) {
				t.Fatalf("err = %v, want ErrBadTransition", err)
			}
		})
	}
}

// TestClientServeMisdirectedFrame: a frame for another session id is a
// protocol error.
func TestClientServeMisdirectedFrame(t *testing.T) {
	p := Params{Gamma: 8, Mu: 1, NumClients: 1, OutDim: 1, Rounds: 1, Seed: 1}
	_, _, err := serveClient(t, frames(t, Message{Type: MsgParams, Session: 9, Payload: p.Encode()}))
	if err == nil || errors.Is(err, ErrBadTransition) {
		t.Fatalf("err = %v, want a session-mismatch error", err)
	}
}

// TestServerSessionBadTransitions: coordinator-side methods called out
// of order must refuse with ErrBadTransition before touching the wire.
func TestServerSessionBadTransitions(t *testing.T) {
	cases := []struct {
		name string
		op   func(*ServerSession) error
	}{
		{"send-params-in-new", func(s *ServerSession) error { return s.SendParams(Params{}) }},
		{"run-round-in-new", func(s *ServerSession) error { return s.RunRound() }},
		{"send-result-in-new", func(s *ServerSession) error { return s.SendResult(Result{}, false) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &ServerSession{ID: 1, Transport: &scriptRW{r: bytes.NewReader(nil)}}
			if err := tc.op(s); !errors.Is(err, ErrBadTransition) {
				t.Fatalf("err = %v, want ErrBadTransition", err)
			}
		})
	}
}

// TestServerSessionPeerDisconnects: the coordinator side against
// truncated client streams — mid-handshake EOF must surface as a read
// error, never a hang or a bogus state advance.
func TestServerSessionPeerDisconnects(t *testing.T) {
	hello := frames(t, Message{Type: MsgHello, Session: 1})
	for cut := 0; cut < len(hello); cut++ {
		s := &ServerSession{ID: 1, Transport: &scriptRW{r: bytes.NewReader(hello[:cut])}}
		if err := s.AwaitHello(); err == nil {
			t.Fatalf("cut at %d: AwaitHello succeeded on truncated hello", cut)
		}
		if s.State() != StateNew {
			t.Fatalf("cut at %d: state advanced to %v on failure", cut, s.State())
		}
	}
	// Full hello then silence: SendParams' ack read hits EOF.
	s := &ServerSession{ID: 1, Transport: &scriptRW{r: bytes.NewReader(hello)}}
	if err := s.AwaitHello(); err != nil {
		t.Fatal(err)
	}
	err := s.SendParams(Params{Gamma: 8, Mu: 1, NumClients: 1, OutDim: 1, Rounds: 1, Seed: 1})
	if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("SendParams after disconnect = %v, want EOF-ish", err)
	}
}

// FuzzClientServe drives the full client state machine over arbitrary
// coordinator byte streams: it must never panic, and a nil error must
// mean the session genuinely reached StateDone.
func FuzzClientServe(f *testing.F) {
	happy := happyClientScript(f)
	f.Add(happy)
	f.Add(happy[:7])                                                                                               // mid-handshake disconnect
	f.Add(happy[:len(happy)-3])                                                                                    // truncated final frame
	f.Add(frames(f, Message{Type: MsgResult, Session: 1, Payload: Result{Round: 0, Scaled: []int64{3}}.Encode()})) // out of order
	f.Add(frames(f, Message{Type: MsgError, Session: 1, Payload: []byte("abort")}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cs := &ClientSession{
			ID:            1,
			Transport:     &scriptRW{r: bytes.NewReader(data)},
			OnParams:      func(Params) ([]byte, error) { return []byte("n"), nil },
			OnEvalRequest: func(uint32) error { return nil },
		}
		if err := cs.Start(); err != nil {
			t.Fatalf("Start against discard writer: %v", err)
		}
		results, err := cs.Serve()
		if err == nil && cs.State() != StateDone {
			t.Fatalf("nil error in state %v", cs.State())
		}
		if err != nil && cs.State() == StateDone && len(results) == 0 {
			t.Fatal("Done with an error and no results")
		}
	})
}
