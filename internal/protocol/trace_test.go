package protocol

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sqm/internal/obs"
)

func TestSessionTraceIDDeterministic(t *testing.T) {
	p := sessionParams(3, 2)
	if SessionTraceID(p) != SessionTraceID(p) {
		t.Fatal("trace id not deterministic")
	}
	q := p
	q.Seed++
	if SessionTraceID(p) == SessionTraceID(q) {
		t.Fatal("trace id ignores the seed")
	}
}

// TestSessionTraceDumpsOnCompletion: a traced session stamps its
// lifecycle events into the coordinator's flight recorder and dumps
// every stream as parseable JSONL into the trace dir.
func TestSessionTraceDumpsOnCompletion(t *testing.T) {
	const n = 3
	p := sessionParams(n, 2)
	tc := obs.NewTraceContext(SessionTraceID(p), 0)
	dir := t.TempDir()
	_, err := RunSession(p, okHooks(n),
		func(uint32) ([]int64, error) { return []int64{7}, nil },
		WithTrace(tc), WithTraceDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "trace-*-coord.jsonl"))
	if err != nil || len(files) != 1 {
		t.Fatalf("coord dump missing: %v %v", files, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	var lastLC float64 = -1
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparseable dump line %q: %v", line, err)
		}
		names = append(names, ev.Name)
		if ev.Attrs["trace"] != tc.ID().String() {
			t.Fatalf("event %s has trace %v, want %s", ev.Name, ev.Attrs["trace"], tc.ID())
		}
		lc, ok := ev.Attrs["lclock"].(float64)
		if !ok || lc <= lastLC {
			t.Fatalf("coordinator lclocks not strictly increasing at %s: %v after %v", ev.Name, lc, lastLC)
		}
		lastLC = lc
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"session.start", "session.round", "session.done"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("dump missing %s event: %v", want, names)
		}
	}
}

// TestSessionTraceDumpsOnError: the flight recorder is a black box — it
// must dump even when the session aborts.
func TestSessionTraceDumpsOnError(t *testing.T) {
	const n = 2
	p := sessionParams(n, 1)
	dir := t.TempDir()
	boom := errors.New("evaluate exploded")
	_, err := RunSession(p, okHooks(n),
		func(uint32) ([]int64, error) { return nil, boom },
		WithTraceDir(dir)) // no WithTrace: coordinator-only context auto-derived
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want evaluate failure", err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "trace-*-coord.jsonl"))
	if len(files) != 1 {
		t.Fatalf("aborted session left no dump: %v", files)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "session.abort") {
		t.Fatalf("dump missing the abort event:\n%s", raw)
	}
}
