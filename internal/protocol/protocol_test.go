package protocol

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Message{Type: MsgParams, Session: 42, Payload: []byte("hello")}
	if err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Session != in.Session || string(out.Payload) != "hello" {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestMessageEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Message{Type: MsgHello, Session: 1}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Payload != nil {
		t.Fatal("expected nil payload")
	}
}

func TestReadMessageVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Message{Type: MsgHello, Session: 1}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[0], b[1] = 0xff, 0xff
	if _, err := ReadMessage(bytes.NewReader(b)); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Message{Type: MsgHello, Session: 1, Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadMessage(bytes.NewReader(b)); err == nil {
		t.Fatal("truncated frame must error")
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := WriteMessage(&bytes.Buffer{}, Message{Type: MsgHello, Payload: make([]byte, MaxPayload+1)}); err != ErrFrameTooLarge {
		t.Fatalf("write err = %v", err)
	}
	// Forged oversized length prefix.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Message{Type: MsgHello, Session: 1}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[7], b[8], b[9], b[10] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadMessage(bytes.NewReader(b)); err != ErrFrameTooLarge {
		t.Fatalf("read err = %v", err)
	}
}

func TestParamsEncodeDecode(t *testing.T) {
	in := Params{Gamma: 4096, Mu: 1.5e20, NumClients: 7, OutDim: 3, Rounds: 9, Seed: 123456789}
	out, err := DecodeParams(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v", out)
	}
	if _, err := DecodeParams([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload must error")
	}
}

func TestResultEncodeDecode(t *testing.T) {
	in := Result{Round: 4, Scaled: []int64{-5, 0, 1 << 50}}
	out, err := DecodeResult(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Round != 4 || len(out.Scaled) != 3 || out.Scaled[2] != 1<<50 || out.Scaled[0] != -5 {
		t.Fatalf("round trip = %+v", out)
	}
	if _, err := DecodeResult([]byte{1}); err == nil {
		t.Fatal("short payload must error")
	}
	bad := in.Encode()
	bad = bad[:len(bad)-8]
	if _, err := DecodeResult(bad); err == nil {
		t.Fatal("inconsistent count must error")
	}
}

func TestMsgTypeAndStateStrings(t *testing.T) {
	if MsgParams.String() != "Params" || MsgType(99).String() == "" {
		t.Fatal("MsgType.String")
	}
	if StateCommitted.String() != "Committed" || State(99).String() == "" {
		t.Fatal("State.String")
	}
}

func TestRunSessionLifecycle(t *testing.T) {
	const clients = 3
	var commits, rounds atomic.Int32
	hooks := make([]ClientHooks, clients)
	for i := range hooks {
		hooks[i] = ClientHooks{
			OnParams:      func(Params) ([]byte, error) { commits.Add(1); return []byte{1, 2, 3}, nil },
			OnEvalRequest: func(uint32) error { rounds.Add(1); return nil },
		}
	}
	p := Params{Gamma: 16, Mu: 2, NumClients: clients, OutDim: 2, Rounds: 3, Seed: 1}
	outcomes, err := RunSession(p, hooks, func(round uint32) ([]int64, error) {
		return []int64{int64(round), int64(round) * 10}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if commits.Load() != clients {
		t.Fatalf("commits = %d", commits.Load())
	}
	if rounds.Load() != clients*3 {
		t.Fatalf("round callbacks = %d", rounds.Load())
	}
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("client %d: %v", o.Client, o.Err)
		}
		if len(o.Results) != 3 {
			t.Fatalf("client %d got %d results", o.Client, len(o.Results))
		}
		if o.Results[2].Scaled[1] != 20 {
			t.Fatalf("client %d result = %+v", o.Client, o.Results[2])
		}
	}
}

func TestRunSessionEvaluateFailureAbortsClients(t *testing.T) {
	hooks := []ClientHooks{{}, {}}
	p := Params{NumClients: 2, OutDim: 1, Rounds: 2}
	outcomes, err := RunSession(p, hooks, func(round uint32) ([]int64, error) {
		return nil, errors.New("mpc blew up")
	})
	if err == nil {
		t.Fatal("coordinator must surface the failure")
	}
	for _, o := range outcomes {
		if o.Err == nil || !strings.Contains(o.Err.Error(), "mpc blew up") {
			t.Fatalf("client %d err = %v", o.Client, o.Err)
		}
	}
}

func TestRunSessionClientCommitFailure(t *testing.T) {
	hooks := []ClientHooks{
		{OnParams: func(Params) ([]byte, error) { return nil, errors.New("column checksum mismatch") }},
	}
	p := Params{NumClients: 1, OutDim: 1, Rounds: 1}
	outcomes, err := RunSession(p, hooks, func(uint32) ([]int64, error) { return []int64{0}, nil })
	if err == nil {
		t.Fatal("coordinator should fail when a client cannot commit")
	}
	if outcomes[0].Err == nil {
		t.Fatal("client must report its own failure")
	}
}

func TestRunSessionValidation(t *testing.T) {
	if _, err := RunSession(Params{}, nil, nil); err == nil {
		t.Fatal("no clients must error")
	}
	if _, err := RunSession(Params{NumClients: 2, Rounds: 1}, []ClientHooks{{}}, nil); err == nil {
		t.Fatal("client-count mismatch must error")
	}
	if _, err := RunSession(Params{NumClients: 1, Rounds: 0}, []ClientHooks{{}}, nil); err == nil {
		t.Fatal("zero rounds must error")
	}
}

func TestNoiseCommitmentBindsSessionAndNoise(t *testing.T) {
	a := Commit(1, []byte("noise-a"))
	b := Commit(1, []byte("noise-b"))
	c := Commit(2, []byte("noise-a"))
	if a == b || a == c {
		t.Fatal("commitments must differ by noise and session")
	}
	if a != Commit(1, []byte("noise-a")) {
		t.Fatal("commitment must be deterministic")
	}
}

func TestServerRecordsCommitment(t *testing.T) {
	hooks := []ClientHooks{{
		OnParams: func(Params) ([]byte, error) { return []byte("my-noise"), nil },
	}}
	// Peek at the server-side commitment through a custom run: reuse
	// RunSession and verify against the expected hash indirectly by
	// recomputing — the session id of client 0 is 1.
	want := Commit(1, []byte("my-noise"))
	p := Params{NumClients: 1, OutDim: 1, Rounds: 1}
	outcomes, err := RunSession(p, hooks, func(uint32) ([]int64, error) { return []int64{5}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0].Err != nil {
		t.Fatal(outcomes[0].Err)
	}
	if outcomes[0].Commitment != want {
		t.Fatalf("server stored commitment %x, want %x", outcomes[0].Commitment, want)
	}
}

func TestSessionStateMachineRejectsOutOfOrder(t *testing.T) {
	c := &ClientSession{ID: 1}
	c.state = StateCommitted
	if err := c.Start(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("Start in Committed: %v", err)
	}
	s := &ServerSession{ID: 1}
	if err := s.SendParams(Params{}); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("SendParams in New: %v", err)
	}
	if err := s.RunRound(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("RunRound in New: %v", err)
	}
	if err := s.SendResult(Result{}, true); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("SendResult in New: %v", err)
	}
}
