package protocol

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sqm/internal/obs"
)

func sessionParams(n, rounds int) Params {
	return Params{Gamma: 8, Mu: 1, NumClients: uint32(n), OutDim: 1, Rounds: uint32(rounds), Seed: 1}
}

func okHooks(n int) []ClientHooks {
	hooks := make([]ClientHooks, n)
	for i := range hooks {
		hooks[i] = ClientHooks{
			OnParams:      func(Params) ([]byte, error) { return []byte("noise"), nil },
			OnEvalRequest: func(uint32) error { return nil },
		}
	}
	return hooks
}

// TestSessionTimeoutDropsHungClient: a client that stalls mid-round is
// detected by the coordinator's I/O deadline and excluded; the session
// completes degraded with full telemetry instead of hanging.
func TestSessionTimeoutDropsHungClient(t *testing.T) {
	const n = 3
	hooks := okHooks(n)
	hooks[1].OnEvalRequest = func(uint32) error {
		time.Sleep(500 * time.Millisecond) // far past the 50ms deadline
		return nil
	}
	var log bytes.Buffer
	rec := obs.NewLog(&log, "json", obs.LevelDebug)
	var notified atomic.Int64
	outcomes, err := RunSession(sessionParams(n, 1), hooks,
		func(uint32) ([]int64, error) { return []int64{7}, nil },
		WithRecorder(rec),
		WithTimeout(50*time.Millisecond),
		WithDropoutTolerance(1),
		WithDropoutNotify(func(client int, err error) {
			notified.Add(1)
			if client != 1 {
				t.Errorf("dropped client %d, want 1", client)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !outcomes[1].Dropped {
		t.Fatal("client 1 not marked Dropped")
	}
	for _, i := range []int{0, 2} {
		if outcomes[i].Dropped || outcomes[i].Err != nil {
			t.Fatalf("survivor %d: %+v", i, outcomes[i])
		}
		if len(outcomes[i].Results) != 1 || outcomes[i].Results[0].Scaled[0] != 7 {
			t.Fatalf("survivor %d results = %+v", i, outcomes[i].Results)
		}
	}
	if notified.Load() != 1 {
		t.Fatalf("onDrop called %d times, want 1", notified.Load())
	}
	if got := rec.Metrics().Counter("session.dropouts").Value(); got != 1 {
		t.Fatalf("session.dropouts = %d, want 1", got)
	}
	if !strings.Contains(log.String(), "session.degraded") {
		t.Fatal("JSON log missing session.degraded event")
	}
}

// TestSessionDropoutToleranceSurvivesFailedClient: a client whose own
// hook fails (it tears down its link) is dropped, not fatal.
func TestSessionDropoutToleranceSurvivesFailedClient(t *testing.T) {
	const n = 3
	hooks := okHooks(n)
	boom := errors.New("local noise sampling failed")
	hooks[2].OnParams = func(Params) ([]byte, error) { return nil, boom }
	outcomes, err := RunSession(sessionParams(n, 2), hooks,
		func(uint32) ([]int64, error) { return []int64{1}, nil },
		WithDropoutTolerance(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !outcomes[2].Dropped || !errors.Is(outcomes[2].Err, boom) {
		t.Fatalf("outcome 2 = %+v, want Dropped with the hook error", outcomes[2])
	}
	for _, i := range []int{0, 1} {
		if len(outcomes[i].Results) != 2 {
			t.Fatalf("survivor %d got %d results, want 2", i, len(outcomes[i].Results))
		}
	}
}

// TestSessionQuorumLossIsTyped: one failure past the budget yields an
// error matching ErrQuorumLoss, promptly — never a hang.
func TestSessionQuorumLossIsTyped(t *testing.T) {
	const n = 3
	hooks := okHooks(n)
	boom := errors.New("dead")
	hooks[1].OnParams = func(Params) ([]byte, error) { return nil, boom }
	hooks[2].OnParams = func(Params) ([]byte, error) { return nil, boom }
	type result struct {
		err error
	}
	done := make(chan result, 1)
	go func() {
		_, err := RunSession(sessionParams(n, 1), hooks,
			func(uint32) ([]int64, error) { return []int64{1}, nil },
			WithDropoutTolerance(1),
		)
		done <- result{err}
	}()
	select {
	case r := <-done:
		if !errors.Is(r.err, ErrQuorumLoss) {
			t.Fatalf("err = %v, want errors.Is(err, ErrQuorumLoss)", r.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("session hung on quorum loss")
	}
}

// TestSessionStrictModeUnchanged: without WithDropoutTolerance a single
// failure is fatal and not wrapped in ErrQuorumLoss — the pre-existing
// strict contract.
func TestSessionStrictModeUnchanged(t *testing.T) {
	const n = 2
	hooks := okHooks(n)
	boom := errors.New("dead")
	hooks[1].OnParams = func(Params) ([]byte, error) { return nil, boom }
	_, err := RunSession(sessionParams(n, 1), hooks,
		func(uint32) ([]int64, error) { return []int64{1}, nil })
	if err == nil {
		t.Fatal("strict session with a failed client returned nil error")
	}
	if errors.Is(err, ErrQuorumLoss) {
		t.Fatal("strict failure must not claim quorum loss")
	}
}

// TestSessionContextCancel: cancelling the context unwinds a long
// session promptly with an error matching ctx.Err().
func TestSessionContextCancel(t *testing.T) {
	const n = 2
	hooks := okHooks(n)
	for i := range hooks {
		hooks[i].OnEvalRequest = func(uint32) error {
			time.Sleep(20 * time.Millisecond)
			return nil
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunSession(sessionParams(n, 1000), hooks,
		func(uint32) ([]int64, error) { return []int64{1}, nil },
		WithContext(ctx),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestAbortBoundedUnderDeadPeer: a peer that accepts no writes cannot
// stall the abort broadcast past the abort deadline (satellite of the
// best-effort abort contract).
func TestAbortBoundedUnderDeadPeer(t *testing.T) {
	old := abortTimeout
	abortTimeout = 100 * time.Millisecond
	defer func() { abortTimeout = old }()

	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close() // never read from: writes to srv block forever
	r := &sessionRun{
		servers:  []*ServerSession{{ID: 1, Transport: srv}},
		srvConns: []net.Conn{srv},
		outcomes: make([]SessionOutcome, 1),
		live:     []bool{true},
		nLive:    1,
	}
	start := time.Now()
	r.abortLive("test abort")
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("abortLive blocked for %v under a dead peer", elapsed)
	}
}

// TestSessionTCPDropoutTolerance pins that the fault options flow
// through the real-socket entry point too: RunSessionTCP shares
// runSession, so deadlines and dropout tolerance behave identically
// over TCP framing.
func TestSessionTCPDropoutTolerance(t *testing.T) {
	const n = 3
	hooks := okHooks(n)
	hooks[2].OnEvalRequest = func(uint32) error {
		return errors.New("tcp client died")
	}
	outcomes, err := RunSessionTCP(sessionParams(n, 2), hooks,
		func(uint32) ([]int64, error) { return []int64{3}, nil },
		WithTimeout(2*time.Second),
		WithDropoutTolerance(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !outcomes[2].Dropped {
		t.Fatal("client 2 not marked Dropped over TCP")
	}
	for _, i := range []int{0, 1} {
		if outcomes[i].Dropped || outcomes[i].Err != nil || len(outcomes[i].Results) != 2 {
			t.Fatalf("survivor %d: %+v", i, outcomes[i])
		}
	}
}
