package protocol

import (
	"bytes"
	"testing"
)

// FuzzReadMessage feeds arbitrary bytes to the frame parser: it must
// never panic or over-allocate, only return errors.
func FuzzReadMessage(f *testing.F) {
	var good bytes.Buffer
	_ = WriteMessage(&good, Message{Type: MsgParams, Session: 3, Payload: []byte("x")})
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed frames must re-encode to an equivalent frame.
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("reserialize: %v", err)
		}
		back, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if back.Type != m.Type || back.Session != m.Session || !bytes.Equal(back.Payload, m.Payload) {
			t.Fatal("frame round trip mismatch")
		}
	})
}

// FuzzDecodeResult hardens the Result payload parser.
func FuzzDecodeResult(f *testing.F) {
	f.Add(Result{Round: 1, Scaled: []int64{1, -2}}.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(data)
		if err != nil {
			return
		}
		if !bytes.Equal(r.Encode(), data) {
			t.Fatal("valid Result payload must re-encode identically")
		}
	})
}

// FuzzDecodeParams hardens the Params payload parser.
func FuzzDecodeParams(f *testing.F) {
	f.Add(Params{Gamma: 2, Mu: 3, NumClients: 4, OutDim: 5, Rounds: 6, Seed: 7}.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeParams(data)
		if err != nil {
			return
		}
		if !bytes.Equal(p.Encode(), data) {
			t.Fatal("valid Params payload must re-encode identically")
		}
	})
}
