package modelio

import (
	"bytes"
	"strings"
	"testing"

	"sqm/internal/linalg"
)

func TestWeightsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	prov := Provenance{Epsilon: 1, Delta: 1e-5, Gamma: 8192, Note: "ACSIncome CA"}
	if err := SaveWeights(&buf, KindLogReg, []float64{0.1, -0.2, 0.3}, prov); err != nil {
		t.Fatal(err)
	}
	e, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindLogReg || len(e.Weights) != 3 || e.Weights[1] != -0.2 {
		t.Fatalf("envelope = %+v", e)
	}
	if e.Provenance != prov {
		t.Fatalf("provenance = %+v", e.Provenance)
	}
}

func TestSubspaceRoundTrip(t *testing.T) {
	v := linalg.FromRows([][]float64{{1, 0}, {0, 1}, {0.5, -0.5}})
	var buf bytes.Buffer
	if err := SaveSubspace(&buf, v, Provenance{Epsilon: 2, Delta: 1e-5}); err != nil {
		t.Fatal(err)
	}
	e, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := e.Subspace()
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		if back.Data[i] != v.Data[i] {
			t.Fatal("subspace round trip mismatch")
		}
	}
}

func TestSaveValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveWeights(&buf, KindSubspace, []float64{1}, Provenance{}); err == nil {
		t.Fatal("subspace kind must be rejected for weights")
	}
	if err := SaveWeights(&buf, KindRidge, nil, Provenance{}); err == nil {
		t.Fatal("empty weights must be rejected")
	}
	if err := SaveSubspace(&buf, linalg.NewMatrix(0, 0), Provenance{}); err == nil {
		t.Fatal("empty subspace must be rejected")
	}
}

func TestLoadValidation(t *testing.T) {
	cases := map[string]string{
		"garbage":         "not json",
		"bad version":     `{"version": 99, "kind": "logreg", "weights": [1]}`,
		"unknown kind":    `{"version": 1, "kind": "tree", "weights": [1]}`,
		"missing weights": `{"version": 1, "kind": "ridge"}`,
		"bad shape":       `{"version": 1, "kind": "pca-subspace", "rows": 2, "cols": 2, "data": [1]}`,
		"unknown field":   `{"version": 1, "kind": "logreg", "weights": [1], "extra": true}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestSubspaceOnWeightArtifactErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveWeights(&buf, KindRidge, []float64{1}, Provenance{}); err != nil {
		t.Fatal(err)
	}
	e, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Subspace(); err == nil {
		t.Fatal("Subspace on ridge artifact must error")
	}
}
