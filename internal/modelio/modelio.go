// Package modelio persists the library's fitted artifacts (logistic
// and ridge weight vectors, PCA subspaces) as versioned JSON envelopes,
// so a model trained in one process can serve predictions in another.
// The envelope records the kind and the privacy parameters the artifact
// was produced under — a released model should carry its (ε, δ)
// provenance.
package modelio

import (
	"encoding/json"
	"fmt"
	"io"

	"sqm/internal/linalg"
)

// Kind discriminates stored artifacts.
type Kind string

// Artifact kinds.
const (
	KindLogReg   Kind = "logreg"
	KindRidge    Kind = "ridge"
	KindSubspace Kind = "pca-subspace"
)

// FormatVersion is bumped on breaking envelope changes.
const FormatVersion = 1

// Provenance records the privacy budget an artifact consumed.
type Provenance struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	Gamma   float64 `json:"gamma,omitempty"`
	Note    string  `json:"note,omitempty"`
}

// Envelope is the on-disk form.
type Envelope struct {
	Version    int        `json:"version"`
	Kind       Kind       `json:"kind"`
	Provenance Provenance `json:"provenance"`

	// Weights holds vector artifacts (logreg, ridge).
	Weights []float64 `json:"weights,omitempty"`
	// Rows/Cols/Data hold matrix artifacts (pca-subspace).
	Rows int       `json:"rows,omitempty"`
	Cols int       `json:"cols,omitempty"`
	Data []float64 `json:"data,omitempty"`
}

// SaveWeights writes a weight-vector artifact.
func SaveWeights(w io.Writer, kind Kind, weights []float64, prov Provenance) error {
	if kind != KindLogReg && kind != KindRidge {
		return fmt.Errorf("modelio: kind %q is not a weight artifact", kind)
	}
	if len(weights) == 0 {
		return fmt.Errorf("modelio: empty weight vector")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Envelope{Version: FormatVersion, Kind: kind, Provenance: prov, Weights: weights})
}

// SaveSubspace writes a PCA-subspace artifact.
func SaveSubspace(w io.Writer, v *linalg.Matrix, prov Provenance) error {
	if v == nil || v.Rows == 0 || v.Cols == 0 {
		return fmt.Errorf("modelio: empty subspace")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Envelope{
		Version: FormatVersion, Kind: KindSubspace, Provenance: prov,
		Rows: v.Rows, Cols: v.Cols, Data: v.Data,
	})
}

// Load parses any artifact and validates its invariants.
func Load(r io.Reader) (*Envelope, error) {
	var e Envelope
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	if e.Version != FormatVersion {
		return nil, fmt.Errorf("modelio: unsupported version %d (want %d)", e.Version, FormatVersion)
	}
	switch e.Kind {
	case KindLogReg, KindRidge:
		if len(e.Weights) == 0 {
			return nil, fmt.Errorf("modelio: %s artifact without weights", e.Kind)
		}
	case KindSubspace:
		if e.Rows <= 0 || e.Cols <= 0 || len(e.Data) != e.Rows*e.Cols {
			return nil, fmt.Errorf("modelio: subspace shape %dx%d inconsistent with %d values", e.Rows, e.Cols, len(e.Data))
		}
	default:
		return nil, fmt.Errorf("modelio: unknown kind %q", e.Kind)
	}
	return &e, nil
}

// Subspace reconstructs the matrix of a pca-subspace artifact.
func (e *Envelope) Subspace() (*linalg.Matrix, error) {
	if e.Kind != KindSubspace {
		return nil, fmt.Errorf("modelio: artifact is %q, not a subspace", e.Kind)
	}
	m := linalg.NewMatrix(e.Rows, e.Cols)
	copy(m.Data, e.Data)
	return m, nil
}
