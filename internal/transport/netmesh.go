package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sqm/internal/invariant"
	"sqm/internal/protocol"
	"sqm/internal/retry"
)

// NetMesh carries the share traffic over real net.Conn links — one
// duplex connection per unordered party pair — framed with the session
// layer's versioned length-prefixed format (version/type/session/
// payload, type MsgShare, session = sender's party id). A deployment
// dials TLS connections between data centers; NewTCPMesh builds the
// same topology on localhost loopback sockets so tests and examples
// exercise genuine socket I/O.
//
// Writes are decoupled from the party goroutine by a per-link writer
// pump fed from an unbounded queue, so a resharing round's
// all-send-then-all-receive pattern can never deadlock on a full kernel
// buffer.
type NetMesh struct {
	p        int
	conns    []*netConn
	frames   atomic.Int64
	messages atomic.Int64
	bytes    atomic.Int64
	closed   atomic.Bool
	obs      *meshObs // nil when telemetry is disabled
}

// netConn is one party's endpoint: links[j] is the connection to party
// j (nil for j == id).
type netConn struct {
	mesh    *NetMesh
	id      int
	links   []*link
	tr      *connTrace   // nil when tracing is disabled
	timeout atomic.Int64 // receive deadline in nanoseconds; 0 blocks forever
}

// link is one directed view of a pair connection: reads happen directly
// on the party goroutine, writes go through the pump queue.
type link struct {
	conn net.Conn
	out  *queue
	// rbuf is the link's receive buffer, reused across frames whenever
	// the payload fits (the TCP-mesh half of the frame pool). Only the
	// owning party goroutine reads this link, so no lock is needed; the
	// Recv contract makes the previous frame dead before the next read.
	rbuf []byte
	wg   sync.WaitGroup
	werr atomic.Value // error from the writer pump, if any
}

func newLink(conn net.Conn) *link {
	l := &link{conn: conn, out: newQueue()}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			b, err := l.out.pop()
			if err != nil {
				return
			}
			_, werr := l.conn.Write(b)
			// The frame buffer (pool-backed, built by encodeShareFrame)
			// is dead once written.
			recycle(b)
			if werr != nil {
				l.werr.Store(werr)
				l.out.close()
				return
			}
		}
	}()
	return l
}

func (l *link) close() {
	l.out.close()
	l.conn.Close()
	l.wg.Wait()
}

// NewNetMesh assembles a mesh from pre-established pair connections:
// pair[i][j] (i < j) is the connection between parties i and j, with
// party i holding pair[i][j] locally and party j the peer end given in
// peer[i][j]. Both halves must be non-nil for every i < j.
func NewNetMesh(p int, pair, peer [][]net.Conn, opts ...Option) (*NetMesh, error) {
	if p < 2 {
		return nil, fmt.Errorf("transport: mesh needs at least 2 parties, got %d", p)
	}
	o := applyOptions(opts)
	if o.trace != nil && o.trace.Parties() != p {
		return nil, fmt.Errorf("transport: tracer has %d party streams, mesh has %d", o.trace.Parties(), p)
	}
	m := &NetMesh{p: p, conns: make([]*netConn, p)}
	m.obs = newMeshObs(p, "transport.net", o.rec)
	for i := 0; i < p; i++ {
		m.conns[i] = &netConn{mesh: m, id: i, links: make([]*link, p), tr: newConnTrace(o.trace, i)}
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if pair[i][j] == nil || peer[i][j] == nil {
				return nil, fmt.Errorf("transport: missing connection for pair (%d,%d)", i, j)
			}
			m.conns[i].links[j] = newLink(pair[i][j])
			m.conns[j].links[i] = newLink(peer[i][j])
		}
	}
	return m, nil
}

// NewTCPMesh listens on P loopback sockets, connects every party pair,
// and returns the assembled mesh. The handshake reuses the session
// layer's Hello frame so each accepted connection self-identifies.
// With WithDialRetry, transient dial failures are retried on the
// option's deterministic backoff schedule before the setup is abandoned.
func NewTCPMesh(p int, opts ...Option) (*NetMesh, error) {
	if p < 2 {
		return nil, fmt.Errorf("transport: mesh needs at least 2 parties, got %d", p)
	}
	o := applyOptions(opts)
	listeners := make([]net.Listener, p)
	defer func() {
		for _, ln := range listeners {
			if ln != nil {
				ln.Close()
			}
		}
	}()
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("transport: listen for party %d: %w", i, err)
		}
		listeners[i] = ln
	}
	pair := make([][]net.Conn, p)
	peer := make([][]net.Conn, p)
	for i := range pair {
		pair[i] = make([]net.Conn, p)
		peer[i] = make([]net.Conn, p)
	}
	closeAll := func() {
		for i := range pair {
			for j := range pair[i] {
				if pair[i][j] != nil {
					pair[i][j].Close()
				}
				if peer[i][j] != nil {
					peer[i][j].Close()
				}
			}
		}
	}
	// Party j dials party i's listener for every i < j and announces its
	// id with a Hello frame; the accept side verifies it. Sequential
	// setup keeps the pairing deterministic.
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			dialed, err := dialRetry(o.dial, listeners[i].Addr().String())
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("transport: dial %d->%d: %w", j, i, err)
			}
			if err := protocol.WriteMessage(dialed, protocol.Message{Type: protocol.MsgHello, Session: uint32(j)}); err != nil {
				dialed.Close()
				closeAll()
				return nil, fmt.Errorf("transport: hello %d->%d: %w", j, i, err)
			}
			accepted, err := listeners[i].Accept()
			if err != nil {
				dialed.Close()
				closeAll()
				return nil, fmt.Errorf("transport: accept on party %d: %w", i, err)
			}
			hello, err := protocol.ReadMessage(accepted)
			if err != nil || hello.Type != protocol.MsgHello || hello.Session != uint32(j) {
				dialed.Close()
				accepted.Close()
				closeAll()
				return nil, fmt.Errorf("transport: bad hello on pair (%d,%d): %v", i, j, err)
			}
			pair[i][j] = accepted
			peer[i][j] = dialed
		}
	}
	return NewNetMesh(p, pair, peer, opts...)
}

// dialRetry dials addr under the given retry policy; the zero policy
// degenerates to a single plain net.Dial.
func dialRetry(p retry.Policy, addr string) (net.Conn, error) {
	var conn net.Conn
	err := p.Do(func(int) error {
		var err error
		conn, err = net.Dial("tcp", addr)
		return err
	})
	return conn, err
}

// Parties returns P.
func (m *NetMesh) Parties() int { return m.p }

// Conn returns party i's endpoint.
func (m *NetMesh) Conn(party int) PartyConn { return m.conns[party] }

// SetRecvTimeout applies a receive deadline to every endpoint.
func (m *NetMesh) SetRecvTimeout(d time.Duration) {
	for _, c := range m.conns {
		c.SetRecvTimeout(d)
	}
}

// Counters returns the cumulative traffic.
func (m *NetMesh) Counters() (frames, messages, bytes int64) {
	return m.frames.Load(), m.messages.Load(), m.bytes.Load()
}

// Close tears down every link.
func (m *NetMesh) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	for _, c := range m.conns {
		for _, l := range c.links {
			if l != nil {
				l.close()
			}
		}
	}
	return nil
}

func (c *netConn) ID() int      { return c.id }
func (c *netConn) Parties() int { return c.mesh.p }

// SetRecvTimeout bounds subsequent Recvs; safe from any goroutine.
func (c *netConn) SetRecvTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.timeout.Store(int64(d))
}

// Send frames the payload (version/MsgShare/sender-id/length) and hands
// it to the link's writer pump.
func (c *netConn) Send(to int, payload []byte) error { return c.SendN(to, payload, 1) }

// SendN sends one wire frame carrying msgs logical messages.
func (c *netConn) SendN(to int, payload []byte, msgs int) error {
	if to == c.id || to < 0 || to >= c.mesh.p {
		return fmt.Errorf("transport: party %d cannot send to %d", c.id, to)
	}
	if msgs < 1 {
		msgs = 1
	}
	l := c.links[to]
	if err, ok := l.werr.Load().(error); ok {
		return wrapClosed(err)
	}
	wire, lc := c.tr.stampSend(payload)
	frame := encodeShareFrame(uint32(c.id), wire)
	// Framing copied the wire bytes, so the wire buffer is dead — and
	// when tracing stamped a copy, so is the original payload
	// (transport-owned since the call). Untraced sends have wire ==
	// payload, recycled once.
	recycle(wire)
	if c.tr != nil {
		recycle(payload)
	}
	if err := l.out.push(frame); err != nil {
		return err
	}
	c.mesh.frames.Add(1)
	c.mesh.messages.Add(int64(msgs))
	c.mesh.bytes.Add(int64(len(payload)))
	c.mesh.obs.onSend(c.id, to, len(payload), msgs)
	c.tr.sent(lc, to, len(payload), msgs)
	return nil
}

// Recv reads the next frame from the pair connection and validates the
// sender id carried in the session field. Peer-teardown errors (EOF,
// reset, closed socket) are wrapped so errors.Is(err, ErrClosed) holds
// and deadline expiries so errors.Is(err, ErrTimeout) holds, matching
// the channel mesh's failure modes. A timeout that interrupts a frame
// mid-read desynchronizes this link; callers recovering from ErrTimeout
// should exclude the peer rather than keep reading from it.
func (c *netConn) Recv(from int) ([]byte, error) {
	if from == c.id || from < 0 || from >= c.mesh.p {
		return nil, fmt.Errorf("transport: party %d cannot receive from %d", c.id, from)
	}
	l := c.links[from]
	conn := l.conn
	if d := time.Duration(c.timeout.Load()); d > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(d))
	} else {
		_ = conn.SetReadDeadline(time.Time{})
	}
	m, rbuf, err := protocol.ReadMessageInto(conn, l.rbuf)
	l.rbuf = rbuf
	if err != nil {
		err = wrapFailure(err)
		if isTimeoutErr(err) {
			c.mesh.obs.onTimeout(from, c.id)
		}
		return nil, err
	}
	if m.Type != protocol.MsgShare {
		return nil, fmt.Errorf("transport: party %d expected share frame from %d, got %v", c.id, from, m.Type)
	}
	if m.Session != uint32(from) {
		return nil, fmt.Errorf("transport: party %d expected sender %d, frame claims %d", c.id, from, m.Session)
	}
	c.mesh.obs.onRecv(from, c.id)
	return c.tr.received(from, m.Payload), nil
}

// Close tears down this party's links, cascading EOFs to its peers.
func (c *netConn) Close() error {
	for _, l := range c.links {
		if l != nil {
			l.close()
		}
	}
	return nil
}

// encodeShareFrame builds one framed share message in a single
// pool-backed buffer so the writer pump issues one Write per frame and
// recycles the buffer afterwards.
func encodeShareFrame(sender uint32, payload []byte) []byte {
	buf := writerBuf(GetPayload(16 + len(payload))[:0])
	if err := protocol.WriteMessage(&buf, protocol.Message{Type: protocol.MsgShare, Session: sender, Payload: payload}); err != nil {
		panic(invariant.Violation("transport: framing failed: %v", err))
	}
	return buf
}

// writerBuf is a minimal io.Writer accumulating into a byte slice.
type writerBuf []byte

func (w *writerBuf) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}
