package transport

import (
	"encoding/binary"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRoundTrip: get/recycle cycles must be served from the pool
// (not every call — GC may clear a sync.Pool — but a tight loop that
// never hits would mean recycle is filing buffers under the wrong
// class) and the hit/miss accounting must cover every call.
func TestPoolRoundTrip(t *testing.T) {
	h0, m0 := PoolStats()
	const iters = 100
	for i := 0; i < iters; i++ {
		b := GetPayload(200)
		if len(b) != 200 {
			t.Fatalf("GetPayload(200) returned %d bytes", len(b))
		}
		b[0], b[199] = 1, 2
		recycle(b)
	}
	h1, m1 := PoolStats()
	if got := (h1 - h0) + (m1 - m0); got != iters {
		t.Errorf("accounting covered %d of %d GetPayload calls", got, iters)
	}
	if h1 == h0 {
		t.Errorf("%d get/recycle cycles never hit the pool", iters)
	}

	// Oversize frames fall back to plain allocation and recycle drops
	// them silently.
	big := GetPayload(poolClasses[len(poolClasses)-1] + 1)
	if cap(big) != len(big) {
		t.Errorf("oversize GetPayload returned cap %d for len %d", cap(big), len(big))
	}
	recycle(big)
	recycle(nil)
	recycle(make([]byte, 100)) // caller-allocated, cap not a class
}

// TestNetMeshRecvBufferReuse is the regression test for the TCP mesh
// receive path: when the next frame's payload fits, Recv must decode it
// into the link's existing buffer instead of allocating per frame —
// which is exactly why the ownership rule exists (the previous payload
// is overwritten by the next Recv from the same peer).
func TestNetMeshRecvBufferReuse(t *testing.T) {
	m, err := NewTCPMesh(2)
	if err != nil {
		t.Fatalf("NewTCPMesh: %v", err)
	}
	defer m.Close()

	send := func(fill byte, n int) {
		b := GetPayload(n)
		for i := range b {
			b[i] = fill + byte(i)
		}
		if err := m.Conn(0).Send(1, b); err != nil {
			t.Fatalf("send %#x: %v", fill, err)
		}
	}
	recv := func(fill byte, n int) []byte {
		b, err := m.Conn(1).Recv(0)
		if err != nil {
			t.Fatalf("recv %#x: %v", fill, err)
		}
		if len(b) != n {
			t.Fatalf("recv %#x: got %d bytes, want %d", fill, len(b), n)
		}
		for i := range b {
			if b[i] != fill+byte(i) {
				t.Fatalf("recv %#x: byte %d = %#x, want %#x", fill, i, b[i], fill+byte(i))
			}
		}
		return b
	}

	send(0x10, 40)
	send(0x20, 40)
	send(0x30, 200)
	send(0x40, 40)

	b1 := recv(0x10, 40)
	b2 := recv(0x20, 40)
	if &b1[0] != &b2[0] {
		t.Errorf("second 40-byte frame did not reuse the link's recv buffer")
	}
	if b1[0] != 0x20 {
		t.Errorf("old payload view survived the next Recv: b1[0] = %#x (the ownership rule says it must be overwritten)", b1[0])
	}
	b3 := recv(0x30, 200) // larger frame: buffer must grow
	if &b3[0] == &b2[0] {
		t.Errorf("200-byte frame decoded into a 40-byte-backed buffer")
	}
	b4 := recv(0x40, 40) // fits in the grown buffer again
	if &b4[0] != &b3[0] {
		t.Errorf("40-byte frame did not reuse the grown recv buffer")
	}
}

// TestChanMeshRecvOwnership: the channel mesh's endpoint stashes each
// peer's latest wire frame and recycles it on the next Recv from that
// peer — the in-memory half of the Recv ownership rule.
func TestChanMeshRecvOwnership(t *testing.T) {
	m := NewChanMesh(2)
	defer m.Close()

	p1 := GetPayload(64)
	for i := range p1 {
		p1[i] = 0xA0 + byte(i)
	}
	p2 := GetPayload(64)
	for i := range p2 {
		p2[i] = 0xB0 + byte(i)
	}
	if err := m.Conn(0).Send(1, p1); err != nil {
		t.Fatal(err)
	}
	if err := m.Conn(0).Send(1, p2); err != nil {
		t.Fatal(err)
	}

	c := m.conns[1]
	b1, err := c.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if b1[0] != 0xA0 {
		t.Fatalf("first frame byte 0 = %#x", b1[0])
	}
	if &c.prev[0][0] != &b1[0] {
		t.Errorf("endpoint did not stash the first frame for deferred recycling")
	}
	b2, err := c.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if b2[0] != 0xB0 {
		t.Fatalf("second frame byte 0 = %#x", b2[0])
	}
	if &c.prev[0][0] != &b2[0] {
		t.Errorf("endpoint did not rotate the stashed frame on the next Recv")
	}
}

// TestPooledFramesChaosRace hammers the frame pool through a FaultMesh
// injecting drops and delays: four parties concurrently draw pooled
// payloads, send to every peer, and verify every delivered frame
// against the pattern its own header implies. Run under -race this
// catches any use-after-put — a buffer recycled while a reader still
// holds it is rewritten by the next sender, which the verifier sees as
// corruption and the race detector as a write/read race.
func TestPooledFramesChaosRace(t *testing.T) {
	const p, rounds, frameLen = 4, 60, 64
	fm := NewFaultMesh(NewChanMesh(p), FaultProfile{
		Seed: 11,
		All:  LinkFault{Delay: 100 * time.Microsecond, DropProb: 0.1},
	})
	defer fm.Close()

	pattern := func(from, to, round, i int) byte {
		return byte((from ^ to<<2 ^ round) + i)
	}
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			conn := fm.Conn(me)
			conn.SetRecvTimeout(2 * time.Millisecond)
			for r := 0; r < rounds; r++ {
				for j := 0; j < p; j++ {
					if j == me {
						continue
					}
					b := GetPayload(frameLen)
					binary.LittleEndian.PutUint32(b[0:], uint32(me))
					binary.LittleEndian.PutUint32(b[4:], uint32(j))
					binary.LittleEndian.PutUint32(b[8:], uint32(r))
					for k := 12; k < len(b); k++ {
						b[k] = pattern(me, j, r, k)
					}
					if err := conn.Send(j, b); err != nil {
						t.Errorf("party %d round %d send to %d: %v", me, r, j, err)
						return
					}
				}
				for j := 0; j < p; j++ {
					if j == me {
						continue
					}
					b, err := conn.Recv(j)
					if errors.Is(err, ErrTimeout) {
						continue // dropped or still in flight
					}
					if err != nil {
						t.Errorf("party %d round %d recv from %d: %v", me, r, j, err)
						return
					}
					from := int(binary.LittleEndian.Uint32(b[0:]))
					to := int(binary.LittleEndian.Uint32(b[4:]))
					rr := int(binary.LittleEndian.Uint32(b[8:]))
					// Peers pace themselves: a frame from the sender's
					// next round can arrive while we are still in this
					// one, so only the global bound applies.
					if from != j || to != me || rr < 0 || rr >= rounds {
						t.Errorf("party %d round %d: frame header (from=%d to=%d round=%d)", me, r, from, to, rr)
						return
					}
					for k := 12; k < len(b); k++ {
						if b[k] != pattern(from, to, rr, k) {
							t.Errorf("party %d: frame from %d round %d corrupted at byte %d", me, from, rr, k)
							return
						}
					}
					delivered.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	if delivered.Load() == 0 {
		t.Fatal("chaos run delivered no frames at all")
	}
	if inj := fm.Injected(); inj.Drops == 0 || inj.Delays == 0 {
		t.Errorf("chaos profile injected nothing: %+v", inj)
	}
}

// waitForGoroutines polls until the goroutine count settles back to at
// most base, failing after the deadline — the leak check shared by the
// Close tests.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after Close: %d live, %d at baseline\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFaultMeshCloseNoGoroutineLeak: a TCP mesh wrapped in a delaying
// FaultMesh spins up writer pumps and delay forwarders; Close must join
// every one of them.
func TestFaultMeshCloseNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	inner, err := NewTCPMesh(3)
	if err != nil {
		t.Fatalf("NewTCPMesh: %v", err)
	}
	fm := NewFaultMesh(inner, FaultProfile{All: LinkFault{Delay: 100 * time.Microsecond}})
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			b := GetPayload(32)
			for k := range b {
				b[k] = byte(i ^ j)
			}
			if err := fm.Conn(i).Send(j, b); err != nil {
				t.Fatalf("send %d->%d: %v", i, j, err)
			}
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			b, err := fm.Conn(i).Recv(j)
			if err != nil {
				t.Fatalf("recv %d<-%d: %v", i, j, err)
			}
			if len(b) != 32 || b[0] != byte(i^j) {
				t.Fatalf("recv %d<-%d: bad frame", i, j)
			}
		}
	}
	if err := fm.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	waitForGoroutines(t, base)
}
