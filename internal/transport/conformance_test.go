package transport

import (
	"errors"
	"io"
	"testing"
	"time"

	"sqm/internal/obs"
)

// TestConformanceClosedErr pins the close-error contract across every
// mesh implementation: no matter how a link dies — whole-mesh close,
// peer close, own close, before or during a blocked receive — the
// failing operation must satisfy errors.Is(err, ErrClosed). The
// fault-tolerant layers branch on exactly this predicate to tell a dead
// peer from a slow one, so a mesh that leaks a raw EOF or io.ErrClosedPipe
// here silently disables dropout recovery.
func TestConformanceClosedErr(t *testing.T) {
	const p = 3
	paths := []struct {
		name string
		run  func(t *testing.T, mesh Mesh) error
	}{
		{"mesh-close-then-recv", func(t *testing.T, mesh Mesh) error {
			mesh.Close()
			_, err := mesh.Conn(0).Recv(1)
			return err
		}},
		{"recv-blocked-then-mesh-close", func(t *testing.T, mesh Mesh) error {
			errc := make(chan error, 1)
			go func() {
				_, err := mesh.Conn(0).Recv(1)
				errc <- err
			}()
			time.Sleep(10 * time.Millisecond)
			mesh.Close()
			select {
			case err := <-errc:
				return err
			case <-time.After(2 * time.Second):
				t.Fatal("Recv still blocked after mesh close")
				return nil
			}
		}},
		{"recv-blocked-then-peer-close", func(t *testing.T, mesh Mesh) error {
			errc := make(chan error, 1)
			go func() {
				_, err := mesh.Conn(0).Recv(1)
				errc <- err
			}()
			time.Sleep(10 * time.Millisecond)
			mesh.Conn(1).Close()
			select {
			case err := <-errc:
				return err
			case <-time.After(2 * time.Second):
				t.Fatal("Recv still blocked after peer close")
				return nil
			}
		}},
		{"own-close-then-recv", func(t *testing.T, mesh Mesh) error {
			mesh.Conn(0).Close()
			_, err := mesh.Conn(0).Recv(1)
			return err
		}},
		{"own-close-then-send", func(t *testing.T, mesh Mesh) error {
			mesh.Conn(0).Close()
			if err := mesh.Conn(0).Send(1, []byte("x")); err != nil {
				return err
			}
			// A socket mesh's writer pump may only observe the dead
			// connection asynchronously; the contract is that the
			// failure surfaces as ErrClosed within a bounded number of
			// sends, not necessarily on the first.
			deadline := time.Now().Add(2 * time.Second)
			for time.Now().Before(deadline) {
				if err := mesh.Conn(0).Send(1, []byte("x")); err != nil {
					return err
				}
				time.Sleep(5 * time.Millisecond)
			}
			t.Fatal("Send never failed after own close")
			return nil
		}},
	}
	for _, path := range paths {
		for name, mesh := range meshes(t, p) {
			mesh := mesh
			t.Run(path.name+"/"+name, func(t *testing.T) {
				defer mesh.Close()
				err := path.run(t, mesh)
				if err == nil {
					t.Fatal("expected an error, got nil")
				}
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("got %v (%T), want errors.Is(err, ErrClosed)", err, err)
				}
			})
		}
		// The chaos decorator must preserve the same contract.
		t.Run(path.name+"/fault-chan", func(t *testing.T) {
			mesh := NewFaultMesh(NewChanMesh(p), FaultProfile{})
			defer mesh.Close()
			err := path.run(t, mesh)
			if err == nil {
				t.Fatal("expected an error, got nil")
			}
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("got %v (%T), want errors.Is(err, ErrClosed)", err, err)
			}
		})
	}
}

// TestConformanceRecvTimeout pins the deadline contract across meshes:
// a receive with no pending message fails with ErrTimeout (never
// ErrClosed — the peer is alive, just slow), a queued message beats the
// deadline, and disabling the timeout restores blocking receives.
func TestConformanceRecvTimeout(t *testing.T) {
	const p = 2
	for name, mesh := range meshes(t, p) {
		mesh := mesh
		t.Run(name, func(t *testing.T) {
			defer mesh.Close()
			conn := mesh.Conn(0)
			conn.SetRecvTimeout(30 * time.Millisecond)
			start := time.Now()
			_, err := conn.Recv(1)
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("got %v, want errors.Is(err, ErrTimeout)", err)
			}
			if errors.Is(err, ErrClosed) {
				t.Fatal("timeout must not satisfy ErrClosed")
			}
			if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
				t.Fatalf("deadline fired after %v, want >= ~30ms", elapsed)
			}

			// A message that is already queued is delivered, not timed out.
			if err := mesh.Conn(1).Send(0, []byte("hi")); err != nil {
				t.Fatal(err)
			}
			got, err := conn.Recv(1)
			if err != nil || string(got) != "hi" {
				t.Fatalf("Recv = %q, %v; want \"hi\", nil", got, err)
			}

			// Disabling the deadline restores blocking semantics.
			conn.SetRecvTimeout(0)
			done := make(chan struct{})
			go func() {
				mesh.Conn(1).Send(0, []byte("later"))
				close(done)
			}()
			got, err = conn.Recv(1)
			<-done
			if err != nil || string(got) != "later" {
				t.Fatalf("Recv = %q, %v; want \"later\", nil", got, err)
			}
		})
	}
}

// TestRecvTimeoutCounter verifies that expired deadlines are metered
// under <prefix>.recv.timeouts for both mesh kinds.
func TestRecvTimeoutCounter(t *testing.T) {
	for name, prefix := range map[string]string{"chan": "transport.chan", "tcp": "transport.net"} {
		t.Run(name, func(t *testing.T) {
			rec := obs.NewLog(io.Discard, "text", obs.LevelInfo)
			var mesh Mesh
			if name == "chan" {
				mesh = NewChanMesh(2, WithRecorder(rec))
			} else {
				m, err := NewTCPMesh(2, WithRecorder(rec))
				if err != nil {
					t.Fatal(err)
				}
				mesh = m
			}
			defer mesh.Close()
			conn := mesh.Conn(0)
			conn.SetRecvTimeout(5 * time.Millisecond)
			before := rec.Metrics().Counter(prefix + ".recv.timeouts").Value()
			if _, err := conn.Recv(1); !errors.Is(err, ErrTimeout) {
				t.Fatalf("got %v, want ErrTimeout", err)
			}
			if got := rec.Metrics().Counter(prefix + ".recv.timeouts").Value(); got != before+1 {
				t.Fatalf("%s.recv.timeouts = %d, want %d", prefix, got, before+1)
			}
		})
	}
}
