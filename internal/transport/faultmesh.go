package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"sqm/internal/invariant"
	"sqm/internal/obs"
	"sqm/internal/randx"
)

// LinkFault describes the faults injected on one directed link.
type LinkFault struct {
	// Delay is added to every delivery on the link. It is applied on
	// the send side by a per-link forwarder, so senders stay
	// non-blocking, per-pair FIFO order is preserved, and the
	// receiver's deadline machinery observes the delay as genuine
	// in-flight latency.
	Delay time.Duration
	// DropProb drops each message independently with this probability,
	// drawn from a per-link stream seeded by the profile — the drop
	// pattern is a pure function of (seed, link, message index), so a
	// chaos run replays identically.
	DropProb float64
	// CutAfter black-holes the link after this many accepted messages
	// (0 means never): deliveries 1..CutAfter go through, everything
	// after silently vanishes, exactly like a dead route. The sender
	// keeps succeeding — only the receiver's deadline can notice.
	CutAfter int
}

// FaultProfile scripts a FaultMesh. The zero profile injects nothing.
type FaultProfile struct {
	// Seed keys every per-link drop stream.
	Seed uint64
	// All is the baseline fault applied to every directed link.
	All LinkFault
	// Links overrides the baseline per directed link, keyed [from, to].
	Links map[[2]int]LinkFault
	// CrashAfterSends kills a party after it has had this many sends
	// accepted (counted across all its links): the crashing send and
	// everything after fail with ErrClosed and the party's endpoint is
	// torn down, cascading failures to peers blocked on its traffic.
	// Scripted mid-session kills use FaultMesh.Crash instead.
	CrashAfterSends map[int]int
}

// FaultStats counts the faults a FaultMesh actually injected.
type FaultStats struct {
	Drops   int64 // messages dropped (DropProb)
	Cuts    int64 // messages black-holed behind a cut link
	Delays  int64 // messages delivered late (Delay)
	Crashes int64 // parties crashed (CrashAfterSends or Crash)
}

// FaultMesh decorates any Mesh with deterministic, seeded fault
// injection: per-link delay, probabilistic drop, link cut after N
// messages, and party crash — the chaos harness that exercises every
// recovery path (recv deadlines, retry, dropout-tolerant
// reconstruction) in ordinary unit tests. Fault decisions depend only
// on the profile and per-link message indices, never on wall-clock or
// goroutine interleaving, so a failing chaos run reproduces from its
// seed.
type FaultMesh struct {
	inner   Mesh
	profile FaultProfile
	conns   []*faultConn
	stats   struct{ drops, cuts, delays, crashes atomic.Int64 }
	closed  atomic.Bool
}

// NewFaultMesh wraps inner with the scripted faults. Pass WithTracer to
// record the injected faults (drop, cut, delay, crash) as warn/debug
// events on the affected party's flight-recorder stream; the tracer is
// normally the same context the inner mesh was built with, so fault
// events interleave with the send/recv events they explain.
func NewFaultMesh(inner Mesh, profile FaultProfile, opts ...Option) *FaultMesh {
	p := inner.Parties()
	o := applyOptions(opts)
	m := &FaultMesh{inner: inner, profile: profile, conns: make([]*faultConn, p)}
	for i := 0; i < p; i++ {
		fc := &faultConn{mesh: m, id: i, inner: inner.Conn(i), links: make([]*faultLink, p), tr: newConnTrace(o.trace, i)}
		crashAfter := 0
		if profile.CrashAfterSends != nil {
			crashAfter = profile.CrashAfterSends[i]
		}
		fc.crashAfter = crashAfter
		for j := 0; j < p; j++ {
			if j == i {
				continue
			}
			lf := profile.All
			if over, ok := profile.Links[[2]int{i, j}]; ok {
				lf = over
			}
			fl := &faultLink{fault: lf}
			if lf.DropProb > 0 {
				fl.rng = randx.New(profile.Seed ^ 0xfa417 ^ uint64(i)<<16 ^ uint64(j))
			}
			if lf.Delay > 0 {
				fl.start(fc.inner, j, m)
			}
			fc.links[j] = fl
		}
		m.conns[i] = fc
	}
	return m
}

// Parties returns P.
func (m *FaultMesh) Parties() int { return m.inner.Parties() }

// Conn returns party i's fault-injecting endpoint.
func (m *FaultMesh) Conn(party int) PartyConn { return m.conns[party] }

// SetRecvTimeout applies a receive deadline to every endpoint of the
// wrapped mesh.
func (m *FaultMesh) SetRecvTimeout(d time.Duration) { m.inner.SetRecvTimeout(d) }

// Counters returns the wrapped mesh's traffic counters (frames that
// were dropped or cut never reach the inner mesh and are not counted).
func (m *FaultMesh) Counters() (frames, messages, bytes int64) { return m.inner.Counters() }

// Injected reports the faults injected so far.
func (m *FaultMesh) Injected() FaultStats {
	return FaultStats{
		Drops:   m.stats.drops.Load(),
		Cuts:    m.stats.cuts.Load(),
		Delays:  m.stats.delays.Load(),
		Crashes: m.stats.crashes.Load(),
	}
}

// Crash kills party i now: its endpoint is torn down, its pending
// delayed deliveries are discarded, and every subsequent operation on
// its conn fails with ErrClosed. Peers blocked on its traffic fail
// (ErrClosed) or time out, which is exactly the signal the
// dropout-tolerant layers recover from. Idempotent.
func (m *FaultMesh) Crash(party int) {
	if party < 0 || party >= len(m.conns) {
		panic(invariant.Violation("transport: crash of party %d out of range [0,%d)", party, len(m.conns)))
	}
	m.conns[party].crash()
}

// Close tears down the delay forwarders and the wrapped mesh.
func (m *FaultMesh) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	for _, c := range m.conns {
		c.stopLinks()
	}
	return m.inner.Close()
}

// faultLink is the per-directed-link fault state. Only the owning
// sender goroutine touches sent/delivered/rng; the delay queue has its
// own locking. delayMsgs mirrors the delay queue in lockstep (single
// producer, single consumer), carrying each delayed frame's logical
// message count to the eventual SendN.
type faultLink struct {
	fault     LinkFault
	rng       *randx.RNG // drop stream; nil when DropProb == 0
	delivered int        // messages accepted for delivery (cut accounting)
	delay     *queue     // pending delayed payloads; nil when Delay == 0
	delayMsgs *msgQueue  // per-frame logical counts, FIFO with delay
	wg        sync.WaitGroup
}

// msgQueue is an unbounded FIFO of logical-message counts, popped in
// lockstep with the payload queue by the single forwarder goroutine.
type msgQueue struct {
	mu     sync.Mutex
	counts []int
}

func (q *msgQueue) push(n int) {
	q.mu.Lock()
	q.counts = append(q.counts, n)
	q.mu.Unlock()
}

func (q *msgQueue) pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.counts) == 0 {
		return 1
	}
	n := q.counts[0]
	q.counts = q.counts[1:]
	return n
}

// start launches the FIFO delay forwarder for the link towards peer to.
func (l *faultLink) start(inner PartyConn, to int, m *FaultMesh) {
	l.delay = newQueue()
	l.delayMsgs = &msgQueue{}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			b, err := l.delay.pop()
			if err != nil {
				return
			}
			msgs := l.delayMsgs.pop()
			time.Sleep(l.fault.Delay)
			m.stats.delays.Add(1)
			if inner.SendN(to, b, msgs) != nil {
				// The receiver (or this sender) died; later queued
				// deliveries will fail the same way — keep draining so
				// close() does not hang.
				continue
			}
		}
	}()
}

func (l *faultLink) stop() {
	if l.delay != nil {
		l.delay.close()
		l.wg.Wait()
	}
}

// faultConn is one party's fault-injecting endpoint.
type faultConn struct {
	mesh       *FaultMesh
	id         int
	inner      PartyConn
	links      []*faultLink
	tr         *connTrace // nil when tracing is disabled
	sends      int        // accepted sends across all links (crash accounting)
	crashAfter int        // profile budget; 0 means never
	crashed    atomic.Bool
}

func (c *faultConn) ID() int      { return c.id }
func (c *faultConn) Parties() int { return c.inner.Parties() }

// SetRecvTimeout forwards to the wrapped endpoint.
func (c *faultConn) SetRecvTimeout(d time.Duration) { c.inner.SetRecvTimeout(d) }

// Send applies the scripted faults in order: crash (the party is gone),
// cut (the route is gone), drop (this message is gone), delay (the
// message is late), and otherwise forwards to the wrapped endpoint.
func (c *faultConn) Send(to int, payload []byte) error { return c.SendN(to, payload, 1) }

// SendN applies the same fault script to one frame of msgs logical
// messages; injected faults act on whole frames.
func (c *faultConn) SendN(to int, payload []byte, msgs int) error {
	if c.crashed.Load() {
		return ErrClosed
	}
	if c.crashAfter > 0 && c.sends >= c.crashAfter {
		c.crash()
		return ErrClosed
	}
	c.sends++
	l := c.links[to]
	if l == nil {
		// Self/out-of-range sends: let the inner mesh report them.
		return c.inner.SendN(to, payload, msgs)
	}
	if l.fault.CutAfter > 0 && l.delivered >= l.fault.CutAfter {
		c.mesh.stats.cuts.Add(1)
		c.tr.fault(obs.LevelWarn, "transport.fault.cut", obs.Int("peer", to), obs.Int("bytes", len(payload)))
		return nil
	}
	if l.rng != nil && l.rng.Float64() < l.fault.DropProb {
		c.mesh.stats.drops.Add(1)
		c.tr.fault(obs.LevelWarn, "transport.fault.drop", obs.Int("peer", to), obs.Int("bytes", len(payload)))
		return nil
	}
	l.delivered++
	if l.delay != nil {
		c.tr.fault(obs.LevelDebug, "transport.fault.delay",
			obs.Int("peer", to), obs.Duration("delay", l.fault.Delay))
		l.delayMsgs.push(msgs)
		if err := l.delay.push(payload); err != nil {
			return ErrClosed
		}
		return nil
	}
	return c.inner.SendN(to, payload, msgs)
}

// Recv forwards to the wrapped endpoint; a crashed party only sees
// ErrClosed.
func (c *faultConn) Recv(from int) ([]byte, error) {
	if c.crashed.Load() {
		return nil, ErrClosed
	}
	return c.inner.Recv(from)
}

// Close tears down the wrapped endpoint (a graceful local close, not a
// scripted crash — injected-fault stats are untouched).
func (c *faultConn) Close() error {
	c.stopLinks()
	return c.inner.Close()
}

func (c *faultConn) crash() {
	if c.crashed.Swap(true) {
		return
	}
	c.mesh.stats.crashes.Add(1)
	c.tr.fault(obs.LevelWarn, "transport.fault.crash", obs.Int("sends", c.sends))
	c.stopLinks()
	_ = c.inner.Close()
}

func (c *faultConn) stopLinks() {
	for _, l := range c.links {
		if l != nil {
			l.stop()
		}
	}
}
