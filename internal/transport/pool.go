package transport

import (
	"sync"
	"sync/atomic"
)

// Frame-buffer pooling. Every frame of a resharing round used to be a
// fresh allocation — payload at the sender, trace wrapper, wire frame,
// receive buffer — which made the allocator the hottest non-arithmetic
// path of a protocol run. The transport now recycles frame buffers
// through size-classed sync.Pools:
//
//   - Senders draw payloads from GetPayload; after Send the transport
//     owns them (that was already the contract) and routes them back to
//     the pool once they are dead — after framing copies them (net
//     mesh) or after the receiving endpoint moves past them (channel
//     mesh).
//   - Receivers get buffers that are valid only until the next Recv
//     from the same peer (the ownership rule documented on
//     PartyConn.Recv); the endpoint recycles or overwrites them on that
//     next call.
//
// Buffers whose capacity does not exactly match a size class — e.g.
// caller-allocated payloads — are silently dropped to the GC, so
// recycling is always safe to attempt and never mixes classes.

// poolClasses are the frame-buffer size classes. Share traffic is 8
// bytes per element, so the classes cover single scalars (with or
// without the 20-byte trace header) through whole-level batches; frames
// beyond the largest class fall back to plain allocation.
var poolClasses = [...]int{64, 256, 1024, 4096, 16384, 65536, 262144}

var framePools [len(poolClasses)]sync.Pool

var (
	poolHits   atomic.Int64 // GetPayload calls served from a pool
	poolMisses atomic.Int64 // GetPayload calls that allocated
)

// PoolStats reports how many GetPayload calls were served from the
// frame pool versus freshly allocated (cumulative, process-wide).
func PoolStats() (hits, misses int64) {
	return poolHits.Load(), poolMisses.Load()
}

// classFor returns the index of the smallest class holding n bytes, or
// -1 when n exceeds every class.
func classFor(n int) int {
	for i, c := range poolClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// GetPayload returns a length-n byte slice for building one frame
// payload, drawn from the frame pool when a size class fits. The
// contents are unspecified — callers must overwrite all n bytes. Hand
// the buffer to Send/SendN and forget it: the transport owns it from
// then on and recycles it when the frame is dead.
func GetPayload(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		poolMisses.Add(1)
		return make([]byte, n)
	}
	if v := framePools[ci].Get(); v != nil {
		poolHits.Add(1)
		return (*v.(*[]byte))[:n]
	}
	poolMisses.Add(1)
	return make([]byte, n, poolClasses[ci])
}

// recycle returns a frame buffer to its pool. Buffers whose capacity is
// not exactly a class size (caller-allocated payloads, protocol
// fallbacks) are dropped to the GC. The caller must not touch b again.
func recycle(b []byte) {
	if b == nil {
		return
	}
	c := cap(b)
	for i, cs := range poolClasses {
		if c == cs {
			b = b[:0]
			framePools[i].Put(&b)
			return
		}
	}
}
