package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"sqm/internal/obs"
	"sqm/internal/retry"
)

// Option configures a mesh at construction time.
type Option func(*options)

type options struct {
	rec   obs.Recorder
	dial  retry.Policy
	trace *obs.TraceContext
}

// WithRecorder attaches an observability recorder: the mesh reports
// per-link message/byte counters, a send→recv latency histogram and a
// receive-timeout counter into the recorder's metric registry. A nil
// recorder (or the no-op recorder) leaves the mesh uninstrumented at
// zero cost.
func WithRecorder(rec obs.Recorder) Option {
	return func(o *options) { o.rec = rec }
}

// WithTracer attaches a session trace context: every frame is prefixed
// with a TraceHeaderLen-byte header carrying (trace, sender, Lamport
// stamp), and each endpoint records transport.send/transport.recv
// events into its party's flight recorder. The context must carry
// exactly one stream per mesh party. A nil context disables tracing at
// zero cost.
func WithTracer(tc *obs.TraceContext) Option {
	return func(o *options) { o.trace = tc }
}

// WithDialRetry retries the TCP mesh's pair dials under the given
// deterministic backoff policy, so a peer that is still binding its
// listener (or a transiently refused connection) does not abort the
// whole mesh setup. The zero policy means a single attempt.
func WithDialRetry(p retry.Policy) Option {
	return func(o *options) { o.dial = p }
}

func applyOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// meshObs holds a mesh's telemetry state: aggregate and per-link
// counters plus the send→recv latency histogram, all resolved once at
// mesh construction. A nil *meshObs (telemetry disabled) makes every
// method a single-branch no-op — the hot resharing path never pays for
// disabled telemetry.
//
// Latency is measured by pairing each successful Recv with the
// timestamp its Send recorded: per ordered pair, both meshes deliver in
// FIFO order, so the queues line up without touching the wire format.
type meshObs struct {
	frames      *obs.Counter // physical sends (one per SendN)
	msgs, bytes *obs.Counter // logical messages and payload bytes
	timeouts    *obs.Counter
	latency     *obs.Histogram
	linkMsgs    [][]*obs.Counter // [from][to]
	linkBytes   [][]*obs.Counter
	stamps      [][]*stampQueue
}

// newMeshObs resolves the metric handles for a p-party mesh under the
// given name prefix ("transport.chan" or "transport.net"). Returns nil
// when the recorder carries no registry.
func newMeshObs(p int, prefix string, rec obs.Recorder) *meshObs {
	if rec == nil {
		return nil
	}
	m := rec.Metrics()
	if m == nil {
		return nil
	}
	o := &meshObs{
		frames:   m.Counter(prefix + ".frames"),
		msgs:     m.Counter(prefix + ".messages"),
		bytes:    m.Counter(prefix + ".bytes"),
		timeouts: m.Counter(prefix + ".recv.timeouts"),
		latency:  m.Histogram(prefix + ".send_recv.seconds"),
	}
	o.linkMsgs = make([][]*obs.Counter, p)
	o.linkBytes = make([][]*obs.Counter, p)
	o.stamps = make([][]*stampQueue, p)
	for i := 0; i < p; i++ {
		o.linkMsgs[i] = make([]*obs.Counter, p)
		o.linkBytes[i] = make([]*obs.Counter, p)
		o.stamps[i] = make([]*stampQueue, p)
		for j := 0; j < p; j++ {
			if i == j {
				continue
			}
			link := fmt.Sprintf("%s.link.%d_%d", prefix, i, j)
			o.linkMsgs[i][j] = m.Counter(link + ".messages")
			o.linkBytes[i][j] = m.Counter(link + ".bytes")
			o.stamps[i][j] = &stampQueue{}
		}
	}
	return o
}

// onSend records one accepted frame of n payload bytes carrying msgs
// logical messages from→to.
func (o *meshObs) onSend(from, to, n, msgs int) {
	if o == nil {
		return
	}
	o.frames.Add(1)
	o.msgs.Add(int64(msgs))
	o.bytes.Add(int64(n))
	o.linkMsgs[from][to].Add(int64(msgs))
	o.linkBytes[from][to].Add(int64(n))
	o.stamps[from][to].push(time.Now())
}

// onRecv pairs one successful receive at to from from with its send
// timestamp and observes the latency.
func (o *meshObs) onRecv(from, to int) {
	if o == nil {
		return
	}
	if at, ok := o.stamps[from][to].pop(); ok {
		o.latency.ObserveSince(at)
	}
}

// onTimeout counts one expired receive deadline at to waiting on from.
// The send stamp (if any) stays queued: the message may still arrive
// and pair with a later successful receive.
func (o *meshObs) onTimeout(from, to int) {
	if o == nil {
		return
	}
	_ = from
	o.timeouts.Add(1)
}

// stampQueue is a FIFO of send timestamps for one ordered party pair.
type stampQueue struct {
	mu    sync.Mutex
	times []time.Time
}

func (q *stampQueue) push(t time.Time) {
	q.mu.Lock()
	q.times = append(q.times, t)
	q.mu.Unlock()
}

func (q *stampQueue) pop() (time.Time, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.times) == 0 {
		return time.Time{}, false
	}
	t := q.times[0]
	q.times = q.times[1:]
	return t, true
}

// wrapFailure normalizes a socket mesh's receive failures: deadline
// expiries become ErrTimeout, EOF-ish teardown errors become ErrClosed.
// Timeout is checked first — a net.Error with Timeout() true must never
// be misread as a dead peer.
func wrapFailure(err error) error {
	if err == nil || errors.Is(err, ErrTimeout) {
		return err
	}
	if isDeadline(err) {
		return &timeoutError{cause: err}
	}
	return wrapClosed(err)
}

// wrapClosed normalizes the EOF-ish errors a socket mesh surfaces when
// a peer tears down mid-round so that callers can test
// errors.Is(err, ErrClosed) uniformly across chan and net meshes. The
// original error stays reachable through Unwrap.
func wrapClosed(err error) error {
	if err == nil || errors.Is(err, ErrClosed) {
		return err
	}
	if isTeardown(err) {
		return &closedError{cause: err}
	}
	return err
}

// isDeadline reports whether the error is an expired I/O deadline.
func isDeadline(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// isTimeoutErr reports whether a (possibly wrapped) error is a receive
// timeout.
func isTimeoutErr(err error) bool { return errors.Is(err, ErrTimeout) }

// isTeardown reports whether the error is one of the shapes a closed
// TCP connection produces.
func isTeardown(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// timeoutError carries the raw deadline error while identifying as
// ErrTimeout.
type timeoutError struct{ cause error }

func (e *timeoutError) Error() string { return ErrTimeout.Error() + ": " + e.cause.Error() }

// Is matches ErrTimeout, so errors.Is(err, ErrTimeout) holds.
func (e *timeoutError) Is(target error) bool { return target == ErrTimeout }

// Unwrap exposes the underlying transport error.
func (e *timeoutError) Unwrap() error { return e.cause }

// closedError carries the raw teardown error while identifying as
// ErrClosed.
type closedError struct{ cause error }

func (e *closedError) Error() string { return ErrClosed.Error() + ": " + e.cause.Error() }

// Is matches ErrClosed, so errors.Is(err, ErrClosed) holds.
func (e *closedError) Is(target error) bool { return target == ErrClosed }

// Unwrap exposes the underlying transport error.
func (e *closedError) Unwrap() error { return e.cause }
