package transport

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"sqm/internal/obs"
)

// attr pulls a typed attribute out of a flight event.
func attr(t *testing.T, ev obs.FlightEvent, key string) int64 {
	t.Helper()
	v, ok := ev.Attrs[key]
	if !ok {
		t.Fatalf("event %s missing attr %q: %v", ev.Name, key, ev.Attrs)
	}
	n, ok := v.(int64)
	if !ok {
		t.Fatalf("attr %q = %v (%T), want int64", key, v, v)
	}
	return n
}

// findEvent returns the first event with the given name (and matching
// peer, if peer >= 0).
func findEvent(evs []obs.FlightEvent, name string, peer int) (obs.FlightEvent, bool) {
	for _, ev := range evs {
		if ev.Name != name {
			continue
		}
		if peer >= 0 {
			if p, ok := ev.Attrs["peer"].(int64); !ok || int(p) != peer {
				continue
			}
		}
		return ev, true
	}
	return obs.FlightEvent{}, false
}

func TestTraceHeaderOverheadAndRoundTrip(t *testing.T) {
	if TraceHeaderLen > 64 {
		t.Fatalf("trace header is %d bytes, must stay <= 64", TraceHeaderLen)
	}
	payload := []byte("share payload")
	wire := wrapTraceFrame(obs.TraceID(0xabcdef), 2, 41, payload)
	if len(wire) != TraceHeaderLen+len(payload) {
		t.Fatalf("wire len = %d, want %d", len(wire), TraceHeaderLen+len(payload))
	}
	id, from, lc, rest, ok := unwrapTraceFrame(wire)
	if !ok || id != obs.TraceID(0xabcdef) || from != 2 || lc != 41 || !bytes.Equal(rest, payload) {
		t.Fatalf("round trip lost data: id=%v from=%d lc=%d rest=%q ok=%v", id, from, lc, rest, ok)
	}
	// Frames without the header pass through unchanged.
	for _, raw := range [][]byte{nil, []byte("short"), bytes.Repeat([]byte{0}, 64)} {
		if _, _, _, rest, ok := unwrapTraceFrame(raw); ok || !bytes.Equal(rest, raw) {
			t.Fatalf("untraced frame %q mangled (ok=%v rest=%q)", raw, ok, rest)
		}
	}
}

// testTracePairMatching drives one send/recv over the mesh and checks
// the pairing contract: the receive event's remote_lclock equals the
// matching send event's lclock, and the receive is causally later.
func testTracePairMatching(t *testing.T, tc *obs.TraceContext, m Mesh) {
	t.Helper()
	payload := []byte("hello share")
	if err := m.Conn(0).Send(1, payload); err != nil {
		t.Fatal(err)
	}
	got, err := m.Conn(1).Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted by trace header: %q", got)
	}
	send, ok := findEvent(tc.Party(0).Flight().Events(), "transport.send", 1)
	if !ok {
		t.Fatal("party 0 recorded no transport.send to peer 1")
	}
	recv, ok := findEvent(tc.Party(1).Flight().Events(), "transport.recv", 0)
	if !ok {
		t.Fatal("party 1 recorded no transport.recv from peer 0")
	}
	sendLC := attr(t, send, "lclock")
	if got := attr(t, recv, "remote_lclock"); got != sendLC {
		t.Fatalf("recv remote_lclock = %d, send lclock = %d — pair broken", got, sendLC)
	}
	if recvLC := attr(t, recv, "lclock"); recvLC <= sendLC {
		t.Fatalf("recv lclock %d not after send lclock %d", recvLC, sendLC)
	}
	if tr := recv.Attrs["trace"]; tr != tc.ID().String() {
		t.Fatalf("recv trace = %v, want %s", tr, tc.ID())
	}
	if got := attr(t, send, "bytes"); got != int64(len(payload)) {
		t.Fatalf("send bytes = %d, want payload length %d", got, len(payload))
	}
}

func TestChanMeshTracePairMatching(t *testing.T) {
	tc := obs.NewTraceContext(obs.DeriveTraceID(1), 2)
	m := NewChanMesh(2, WithTracer(tc))
	defer m.Close()
	testTracePairMatching(t, tc, m)
	// Counters keep counting payload bytes, not header bytes.
	if _, _, b := m.Counters(); b != int64(len("hello share")) {
		t.Fatalf("byte counter includes trace header: %d", b)
	}
}

func TestNetMeshTracePairMatching(t *testing.T) {
	tc := obs.NewTraceContext(obs.DeriveTraceID(2), 2)
	m, err := NewTCPMesh(2, WithTracer(tc))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	testTracePairMatching(t, tc, m)
}

func TestTracerPartyMismatch(t *testing.T) {
	tc := obs.NewTraceContext(obs.DeriveTraceID(3), 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("chan mesh accepted a 2-stream tracer for 3 parties")
			}
		}()
		NewChanMesh(3, WithTracer(tc))
	}()
	if _, err := NewTCPMesh(3, WithTracer(tc)); err == nil {
		t.Error("tcp mesh accepted a 2-stream tracer for 3 parties")
	}
}

// TestFlightDumpSurvivesChaos pins the obs-under-chaos contract: with
// drops and a mid-session crash injected, every survivor's flight
// recorder still dumps a complete, parseable JSONL stream containing
// its send/recv events, and the injected faults appear as events on the
// affected party's stream.
func TestFlightDumpSurvivesChaos(t *testing.T) {
	tc := obs.NewTraceContext(obs.DeriveTraceID(7), 3)
	inner := NewChanMesh(3, WithTracer(tc))
	fm := NewFaultMesh(inner, FaultProfile{
		Seed:  7,
		Links: map[[2]int]LinkFault{{0, 1}: {DropProb: 1}},
	}, WithTracer(tc))
	defer fm.Close()
	fm.SetRecvTimeout(50 * time.Millisecond)

	if err := fm.Conn(0).Send(1, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := fm.Conn(0).Send(2, []byte("delivered")); err != nil {
		t.Fatal(err)
	}
	if got, err := fm.Conn(2).Recv(0); err != nil || string(got) != "delivered" {
		t.Fatalf("recv = %q, %v", got, err)
	}
	if _, err := fm.Conn(1).Recv(0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("dropped frame produced %v, want timeout", err)
	}
	fm.Crash(1)
	if _, err := fm.Conn(1).Recv(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("crashed party recv = %v, want ErrClosed", err)
	}
	if s := fm.Injected(); s.Drops != 1 || s.Crashes != 1 {
		t.Fatalf("injected = %+v", s)
	}

	dir := t.TempDir()
	paths, err := tc.DumpAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 { // coord + 3 parties
		t.Fatalf("dumped %d files, want 4: %v", len(paths), paths)
	}
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
			if line == "" {
				continue
			}
			var ev map[string]any
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("%s has unparseable line %q: %v", path, line, err)
			}
		}
	}
	if _, ok := findEvent(tc.Party(0).Flight().Events(), "transport.fault.drop", 1); !ok {
		t.Error("party 0 stream missing transport.fault.drop event")
	}
	if _, ok := findEvent(tc.Party(1).Flight().Events(), "transport.fault.crash", -1); !ok {
		t.Error("party 1 stream missing transport.fault.crash event")
	}
	if _, ok := findEvent(tc.Party(2).Flight().Events(), "transport.recv", 0); !ok {
		t.Error("survivor party 2 stream missing transport.recv event")
	}
}
