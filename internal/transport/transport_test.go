package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"sqm/internal/obs"
)

// meshes returns one fresh instance of every Mesh implementation,
// keyed by name, so every behavioral test runs against both.
func meshes(t *testing.T, p int) map[string]Mesh {
	t.Helper()
	tcp, err := NewTCPMesh(p)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Mesh{"chan": NewChanMesh(p), "tcp": tcp}
}

func TestMeshExchange(t *testing.T) {
	const p = 4
	for name, mesh := range meshes(t, p) {
		t.Run(name, func(t *testing.T) {
			defer mesh.Close()
			// Every party sends one tagged payload to every other party,
			// then receives from every peer and checks the tag.
			var wg sync.WaitGroup
			errs := make([]error, p)
			for i := 0; i < p; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					conn := mesh.Conn(i)
					for j := 0; j < p; j++ {
						if j == i {
							continue
						}
						if err := conn.Send(j, []byte(fmt.Sprintf("%d->%d", i, j))); err != nil {
							errs[i] = err
							return
						}
					}
					for j := 0; j < p; j++ {
						if j == i {
							continue
						}
						got, err := conn.Recv(j)
						if err != nil {
							errs[i] = err
							return
						}
						if want := fmt.Sprintf("%d->%d", j, i); string(got) != want {
							errs[i] = fmt.Errorf("party %d got %q from %d, want %q", i, got, j, want)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("party %d: %v", i, err)
				}
			}
			frames, msgs, bytes := mesh.Counters()
			if want := int64(p * (p - 1)); msgs != want {
				t.Errorf("messages = %d, want %d", msgs, want)
			}
			if frames != msgs {
				t.Errorf("frames = %d, want %d (unbatched sends)", frames, msgs)
			}
			if bytes <= 0 {
				t.Errorf("bytes = %d, want > 0", bytes)
			}
		})
	}
}

func TestMeshFIFOPerPair(t *testing.T) {
	const n = 200
	for name, mesh := range meshes(t, 3) {
		t.Run(name, func(t *testing.T) {
			defer mesh.Close()
			done := make(chan error, 1)
			go func() {
				conn := mesh.Conn(1)
				for k := 0; k < n; k++ {
					got, err := conn.Recv(0)
					if err != nil {
						done <- err
						return
					}
					if string(got) != fmt.Sprintf("m%d", k) {
						done <- fmt.Errorf("message %d arrived as %q", k, got)
						return
					}
				}
				done <- nil
			}()
			sender := mesh.Conn(0)
			for k := 0; k < n; k++ {
				if err := sender.Send(1, []byte(fmt.Sprintf("m%d", k))); err != nil {
					t.Fatal(err)
				}
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMeshSendNeverBlocks(t *testing.T) {
	// The deadlock-freedom contract: a party may send arbitrarily far
	// ahead of a receiver that has not started reading.
	for name, mesh := range meshes(t, 3) {
		t.Run(name, func(t *testing.T) {
			defer mesh.Close()
			conn := mesh.Conn(0)
			payload := make([]byte, 1024)
			for k := 0; k < 500; k++ {
				if err := conn.Send(1, payload); err != nil {
					t.Fatal(err)
				}
			}
			// Drain a few to prove delivery still works.
			rx := mesh.Conn(1)
			for k := 0; k < 500; k++ {
				if _, err := rx.Recv(0); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestMeshCloseUnblocksRecv(t *testing.T) {
	for name, mesh := range meshes(t, 3) {
		t.Run(name, func(t *testing.T) {
			defer mesh.Close()
			done := make(chan error, 1)
			go func() {
				_, err := mesh.Conn(1).Recv(0)
				done <- err
			}()
			if err := mesh.Conn(0).Close(); err != nil {
				t.Fatal(err)
			}
			if err := <-done; err == nil {
				t.Fatal("Recv from a closed peer must fail")
			}
			// Sends to / from the dead endpoint fail from now on.
			if err := mesh.Conn(0).Send(1, []byte("x")); err == nil {
				t.Fatal("Send on a closed endpoint must fail")
			}
		})
	}
}

func TestMeshCloseIsIdempotent(t *testing.T) {
	for name, mesh := range meshes(t, 3) {
		t.Run(name, func(t *testing.T) {
			if err := mesh.Close(); err != nil {
				t.Fatal(err)
			}
			if err := mesh.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			if _, err := mesh.Conn(0).Recv(1); err == nil {
				t.Fatal("Recv after mesh Close must fail")
			}
		})
	}
}

func TestChanMeshClosedErrIsErrClosed(t *testing.T) {
	mesh := NewChanMesh(3)
	mesh.Close()
	if _, err := mesh.Conn(0).Recv(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := mesh.Conn(0).Send(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestMeshCountersMeasureBytes(t *testing.T) {
	for name, mesh := range meshes(t, 3) {
		t.Run(name, func(t *testing.T) {
			defer mesh.Close()
			if err := mesh.Conn(0).Send(1, make([]byte, 48)); err != nil {
				t.Fatal(err)
			}
			if err := mesh.Conn(2).Send(1, make([]byte, 16)); err != nil {
				t.Fatal(err)
			}
			if _, err := mesh.Conn(1).Recv(0); err != nil {
				t.Fatal(err)
			}
			if _, err := mesh.Conn(1).Recv(2); err != nil {
				t.Fatal(err)
			}
			frames, msgs, bytes := mesh.Counters()
			if frames != 2 || msgs != 2 || bytes != 64 {
				t.Fatalf("counters = (%d frames, %d msgs, %d bytes), want (2, 2, 64)", frames, msgs, bytes)
			}
		})
	}
}

// obsMeshes returns one instrumented instance of every Mesh
// implementation plus the recorder that observed it.
func obsMeshes(t *testing.T, p int) map[string]struct {
	mesh Mesh
	rec  obs.Recorder
} {
	t.Helper()
	out := make(map[string]struct {
		mesh Mesh
		rec  obs.Recorder
	})
	chRec := obs.NewLog(io.Discard, "text", obs.LevelInfo)
	out["chan"] = struct {
		mesh Mesh
		rec  obs.Recorder
	}{NewChanMesh(p, WithRecorder(chRec)), chRec}
	tcpRec := obs.NewLog(io.Discard, "text", obs.LevelInfo)
	tcp, err := NewTCPMesh(p, WithRecorder(tcpRec))
	if err != nil {
		t.Fatal(err)
	}
	out["tcp"] = struct {
		mesh Mesh
		rec  obs.Recorder
	}{tcp, tcpRec}
	return out
}

func TestMeshTelemetry(t *testing.T) {
	prefix := map[string]string{"chan": "transport.chan", "tcp": "transport.net"}
	for name, im := range obsMeshes(t, 3) {
		t.Run(name, func(t *testing.T) {
			mesh, m := im.mesh, im.rec.Metrics()
			defer mesh.Close()
			for k := 0; k < 5; k++ {
				if err := mesh.Conn(0).Send(1, make([]byte, 24)); err != nil {
					t.Fatal(err)
				}
			}
			if err := mesh.Conn(2).Send(0, make([]byte, 8)); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 5; k++ {
				if _, err := mesh.Conn(1).Recv(0); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := mesh.Conn(0).Recv(2); err != nil {
				t.Fatal(err)
			}
			pre := prefix[name]
			if got := m.Counter(pre + ".messages").Value(); got != 6 {
				t.Fatalf("%s.messages = %d, want 6", pre, got)
			}
			if got := m.Counter(pre + ".bytes").Value(); got != 5*24+8 {
				t.Fatalf("%s.bytes = %d, want 128", pre, got)
			}
			if got := m.Counter(pre + ".link.0_1.messages").Value(); got != 5 {
				t.Fatalf("link 0->1 messages = %d, want 5", got)
			}
			if got := m.Counter(pre + ".link.2_0.bytes").Value(); got != 8 {
				t.Fatalf("link 2->0 bytes = %d, want 8", got)
			}
			if got := m.Counter(pre + ".link.1_0.messages").Value(); got != 0 {
				t.Fatalf("unused link counted %d messages", got)
			}
			lat := m.Histogram(pre + ".send_recv.seconds").Snapshot()
			if lat.Count != 6 {
				t.Fatalf("latency observations = %d, want 6", lat.Count)
			}
			if lat.Max <= 0 {
				t.Fatalf("latency max = %g, want > 0", lat.Max)
			}
		})
	}
}

// TestNetMeshTeardownIsErrClosed pins the uniform failure mode: after a
// peer tears down, the socket mesh's raw EOF/reset errors must be
// recognizable as transport.ErrClosed, exactly like the channel mesh.
func TestNetMeshTeardownIsErrClosed(t *testing.T) {
	mesh, err := NewTCPMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	done := make(chan error, 1)
	go func() {
		_, err := mesh.Conn(1).Recv(0)
		done <- err
	}()
	if err := mesh.Conn(0).Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after peer teardown = %v, want errors.Is(err, ErrClosed)", err)
	}
	// A Recv issued after the teardown fails the same way.
	if _, err := mesh.Conn(2).Recv(0); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("late Recv = %v, want ErrClosed (or delivery)", err)
	}
}

func TestWrapClosed(t *testing.T) {
	cases := []struct {
		in     error
		closed bool
	}{
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{net.ErrClosed, true},
		{fmt.Errorf("read: %w", io.EOF), true},
		{ErrClosed, true},
		{errors.New("protocol violation"), false},
	}
	for _, c := range cases {
		got := wrapClosed(c.in)
		if errors.Is(got, ErrClosed) != c.closed {
			t.Errorf("wrapClosed(%v): ErrClosed match = %v, want %v", c.in, !c.closed, c.closed)
		}
		if c.in != ErrClosed && !errors.Is(got, c.in) {
			t.Errorf("wrapClosed(%v) lost the cause", c.in)
		}
	}
	if wrapClosed(nil) != nil {
		t.Error("wrapClosed(nil) != nil")
	}
}
