package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sqm/internal/invariant"
)

// ChanMesh is the in-memory fast path: each directed pair of parties owns an
// unbounded FIFO queue guarded by a mutex and condition variable. Sends
// append and never block; receives pop in order. All state is owned by
// the queue locks, so the mesh is race-clean under `go test -race` and
// delivery is deterministic per pair.
type ChanMesh struct {
	p        int
	queues   [][]*queue // queues[from][to]
	conns    []*chanConn
	frames   atomic.Int64
	messages atomic.Int64
	bytes    atomic.Int64
	closed   atomic.Bool
	obs      *meshObs // nil when telemetry is disabled
}

// queue is an unbounded FIFO with close semantics.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  [][]byte
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(b []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, b)
	q.cond.Signal()
	return nil
}

func (q *queue) pop() ([]byte, error) { return q.popWait(0) }

// popWait pops the next item, waiting at most d (d <= 0 waits forever).
// A message that is already queued when the deadline passes is still
// delivered: timeout only fires on a genuinely empty queue.
func (q *queue) popWait(d time.Duration) ([]byte, error) {
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
		// The condition variable has no timed wait; an AfterFunc
		// broadcast wakes the waiters so the loop can re-check the
		// clock.
		t := time.AfterFunc(d, func() {
			q.mu.Lock()
			q.cond.Broadcast()
			q.mu.Unlock()
		})
		defer t.Stop()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		if d > 0 && !time.Now().Before(deadline) {
			return nil, ErrTimeout
		}
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, ErrClosed
	}
	b := q.items[0]
	q.items = q.items[1:]
	return b, nil
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// NewChanMesh builds a fully connected in-memory mesh of p parties.
// Pass WithRecorder to meter per-link traffic and send→recv latency.
func NewChanMesh(p int, opts ...Option) *ChanMesh {
	if p < 2 {
		panic(invariant.Violation("transport: mesh needs at least 2 parties, got %d", p))
	}
	o := applyOptions(opts)
	if o.trace != nil && o.trace.Parties() != p {
		panic(invariant.Violation("transport: tracer has %d party streams, mesh has %d", o.trace.Parties(), p))
	}
	m := &ChanMesh{p: p, queues: make([][]*queue, p), conns: make([]*chanConn, p)}
	m.obs = newMeshObs(p, "transport.chan", o.rec)
	for i := 0; i < p; i++ {
		m.queues[i] = make([]*queue, p)
		for j := 0; j < p; j++ {
			if i != j {
				m.queues[i][j] = newQueue()
			}
		}
	}
	for i := 0; i < p; i++ {
		m.conns[i] = &chanConn{mesh: m, id: i, tr: newConnTrace(o.trace, i), prev: make([][]byte, p)}
	}
	return m
}

// Parties returns P.
func (m *ChanMesh) Parties() int { return m.p }

// Conn returns party i's endpoint.
func (m *ChanMesh) Conn(party int) PartyConn { return m.conns[party] }

// SetRecvTimeout applies a receive deadline to every endpoint.
func (m *ChanMesh) SetRecvTimeout(d time.Duration) {
	for _, c := range m.conns {
		c.SetRecvTimeout(d)
	}
}

// Counters returns the cumulative traffic.
func (m *ChanMesh) Counters() (frames, messages, bytes int64) {
	return m.frames.Load(), m.messages.Load(), m.bytes.Load()
}

// Close wakes every blocked receiver with ErrClosed.
func (m *ChanMesh) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	for i := range m.queues {
		for j, q := range m.queues[i] {
			if i != j {
				q.close()
			}
		}
	}
	return nil
}

// chanConn is one party's endpoint of a ChanMesh.
type chanConn struct {
	mesh *ChanMesh
	id   int
	tr   *connTrace // nil when tracing is disabled
	// prev[from] is the wire buffer of the last frame received from
	// that peer. The Recv contract makes it dead once the next Recv
	// from the same peer is issued, so that call recycles it. Only the
	// owning party goroutine touches it.
	prev    [][]byte
	timeout atomic.Int64 // receive deadline in nanoseconds; 0 blocks forever
}

func (c *chanConn) ID() int      { return c.id }
func (c *chanConn) Parties() int { return c.mesh.p }

// SetRecvTimeout bounds subsequent Recvs; safe from any goroutine.
func (c *chanConn) SetRecvTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.timeout.Store(int64(d))
}

func (c *chanConn) Send(to int, payload []byte) error { return c.SendN(to, payload, 1) }

// SendN enqueues one frame carrying msgs logical messages.
func (c *chanConn) SendN(to int, payload []byte, msgs int) error {
	if to == c.id || to < 0 || to >= c.mesh.p {
		return fmt.Errorf("transport: party %d cannot send to %d", c.id, to)
	}
	if msgs < 1 {
		msgs = 1
	}
	wire, lc := c.tr.stampSend(payload)
	if err := c.mesh.queues[c.id][to].push(wire); err != nil {
		return err
	}
	if c.tr != nil {
		// Stamping copied the payload into the wire buffer; the
		// original — transport-owned since the call — is already dead.
		recycle(payload)
	}
	c.mesh.frames.Add(1)
	c.mesh.messages.Add(int64(msgs))
	c.mesh.bytes.Add(int64(len(payload)))
	c.mesh.obs.onSend(c.id, to, len(payload), msgs)
	c.tr.sent(lc, to, len(payload), msgs)
	return nil
}

func (c *chanConn) Recv(from int) ([]byte, error) {
	if from == c.id || from < 0 || from >= c.mesh.p {
		return nil, fmt.Errorf("transport: party %d cannot receive from %d", c.id, from)
	}
	b, err := c.mesh.queues[from][c.id].popWait(time.Duration(c.timeout.Load()))
	switch {
	case err == nil:
		c.mesh.obs.onRecv(from, c.id)
		// The previous frame from this peer is dead by the Recv
		// contract; recycle its wire buffer before stashing the new one
		// (stashed whole, before the trace header is stripped).
		recycle(c.prev[from])
		c.prev[from] = b
		b = c.tr.received(from, b)
	case errors.Is(err, ErrTimeout):
		c.mesh.obs.onTimeout(from, c.id)
	}
	return b, err
}

// Close tears down every queue touching this party, so peers blocked on
// its traffic fail fast instead of hanging — the abort path of a party
// that died mid-round.
func (c *chanConn) Close() error {
	for other := 0; other < c.mesh.p; other++ {
		if other == c.id {
			continue
		}
		c.mesh.queues[c.id][other].close()
		c.mesh.queues[other][c.id].close()
	}
	return nil
}
