// Package transport abstracts the message fabric the BGW party actors
// communicate over. Every BGW multiplication is a resharing *round*
// between distrusting parties, so the share traffic itself must be able
// to flow over a pluggable medium: an in-memory channel mesh for
// simulation (fast, deterministic, race-clean) and a TCP mesh speaking
// the session layer's length-prefixed framing for deployments.
//
// A Mesh is a set of P pairwise-connected endpoints; party i drives its
// PartyConn from its own goroutine. Sends never block the sender (each
// directed pair has an unbounded FIFO queue), which is what makes the
// all-send-then-all-receive pattern of a resharing round deadlock-free
// regardless of how far ahead one party has run. Receives block until a
// message from the named peer arrives, the connection dies (ErrClosed),
// or the endpoint's receive deadline expires (ErrTimeout).
//
// Failure semantics are uniform across implementations: peer-teardown
// errors satisfy errors.Is(err, ErrClosed) and deadline expiries satisfy
// errors.Is(err, ErrTimeout) on every mesh, so recovery code — retry,
// dropout exclusion — never needs to know which fabric it runs over.
// NewFaultMesh wraps any Mesh with seeded, reproducible fault injection
// (delay, drop, link cut, party crash) for chaos testing.
package transport

import (
	"errors"
	"time"
)

// ErrClosed reports an operation on a closed mesh or connection.
var ErrClosed = errors.New("transport: connection closed")

// ErrTimeout reports a Recv whose deadline expired before a message
// from the requested peer arrived. The connection itself stays usable
// for the channel mesh; for socket meshes a timeout that interrupts a
// partially read frame desynchronizes that link, so callers should
// treat a timed-out peer as lost and exclude it (the dropout-tolerant
// reconstruction path) rather than resume reading from it.
var ErrTimeout = errors.New("transport: receive deadline exceeded")

// PartyConn is one party's endpoint in a P-party mesh. It is driven by
// exactly one goroutine (the owning party actor); implementations need
// not support concurrent Send/Recv from multiple goroutines of the same
// party, but different parties always operate concurrently.
// SetRecvTimeout is the one exception: it is safe to call from any
// goroutine (the mesh-wide deadline broadcast).
type PartyConn interface {
	// ID returns this endpoint's party index in [0, Parties()).
	ID() int
	// Parties returns P.
	Parties() int
	// Send enqueues payload for party to. It never blocks on the
	// receiver and must not be called with to == ID(). The payload is
	// owned by the transport after the call. A Send is metered as one
	// frame carrying one logical message.
	Send(to int, payload []byte) error
	// SendN enqueues payload as a single frame carrying msgs logical
	// messages — the batched-round shape in which one wire frame folds
	// the independent per-value messages of a whole level. Counting the
	// two separately keeps batching honest in telemetry: frames drop
	// with batching, logical messages do not. msgs < 1 counts as 1.
	SendN(to int, payload []byte, msgs int) error
	// Recv blocks until the next payload from party from arrives.
	// Messages from one sender are delivered in send order (per-pair
	// FIFO); ordering across senders is unspecified. When a receive
	// deadline is set and expires first, Recv fails with an error
	// satisfying errors.Is(err, ErrTimeout).
	//
	// Ownership: the returned slice is only valid until the next Recv
	// from the same peer — implementations recycle or overwrite the
	// backing buffer on that call (frame pooling). Callers must decode
	// or copy the payload before receiving from that peer again.
	Recv(from int) ([]byte, error)
	// SetRecvTimeout bounds every subsequent Recv on this endpoint:
	// when no message from the requested peer arrives within d, Recv
	// fails with ErrTimeout instead of blocking forever. d <= 0
	// restores unbounded blocking receives (the default).
	SetRecvTimeout(d time.Duration)
	// Close tears down this endpoint; pending and future Recvs on any
	// party blocked on this endpoint's traffic fail with an error
	// satisfying errors.Is(err, ErrClosed).
	Close() error
}

// Mesh is a set of P pairwise-connected party endpoints plus traffic
// counters, so protocol statistics are measured rather than modeled.
type Mesh interface {
	// Parties returns P.
	Parties() int
	// Conn returns party i's endpoint.
	Conn(party int) PartyConn
	// SetRecvTimeout applies a receive deadline to every endpoint (see
	// PartyConn.SetRecvTimeout).
	SetRecvTimeout(d time.Duration)
	// Counters returns the cumulative traffic since the mesh was
	// created: frames (physical sends), logical messages (a batched
	// frame may carry many; see PartyConn.SendN) and payload bytes.
	Counters() (frames, messages, bytes int64)
	// Close tears down every endpoint.
	Close() error
}
