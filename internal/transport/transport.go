// Package transport abstracts the message fabric the BGW party actors
// communicate over. Every BGW multiplication is a resharing *round*
// between distrusting parties, so the share traffic itself must be able
// to flow over a pluggable medium: an in-memory channel mesh for
// simulation (fast, deterministic, race-clean) and a TCP mesh speaking
// the session layer's length-prefixed framing for deployments.
//
// A Mesh is a set of P pairwise-connected endpoints; party i drives its
// PartyConn from its own goroutine. Sends never block the sender (each
// directed pair has an unbounded FIFO queue), which is what makes the
// all-send-then-all-receive pattern of a resharing round deadlock-free
// regardless of how far ahead one party has run. Receives block until a
// message from the named peer arrives or the connection dies.
package transport

import "errors"

// ErrClosed reports an operation on a closed mesh or connection.
var ErrClosed = errors.New("transport: connection closed")

// PartyConn is one party's endpoint in a P-party mesh. It is driven by
// exactly one goroutine (the owning party actor); implementations need
// not support concurrent Send/Recv from multiple goroutines of the same
// party, but different parties always operate concurrently.
type PartyConn interface {
	// ID returns this endpoint's party index in [0, Parties()).
	ID() int
	// Parties returns P.
	Parties() int
	// Send enqueues payload for party to. It never blocks on the
	// receiver and must not be called with to == ID(). The payload is
	// owned by the transport after the call.
	Send(to int, payload []byte) error
	// Recv blocks until the next payload from party from arrives.
	// Messages from one sender are delivered in send order (per-pair
	// FIFO); ordering across senders is unspecified.
	Recv(from int) ([]byte, error)
	// Close tears down this endpoint; pending and future Recvs on any
	// party blocked on this endpoint's traffic fail with ErrClosed (or
	// an EOF-like error for socket meshes).
	Close() error
}

// Mesh is a set of P pairwise-connected party endpoints plus traffic
// counters, so protocol statistics are measured rather than modeled.
type Mesh interface {
	// Parties returns P.
	Parties() int
	// Conn returns party i's endpoint.
	Conn(party int) PartyConn
	// Counters returns the cumulative messages sent and payload bytes
	// carried since the mesh was created.
	Counters() (messages, bytes int64)
	// Close tears down every endpoint.
	Close() error
}
