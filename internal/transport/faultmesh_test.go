package transport

import (
	"errors"
	"testing"
	"time"
)

// TestFaultMeshPassthrough: a zero profile must be a transparent proxy.
func TestFaultMeshPassthrough(t *testing.T) {
	fm := NewFaultMesh(NewChanMesh(3), FaultProfile{})
	defer fm.Close()
	if err := fm.Conn(0).Send(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	got, err := fm.Conn(1).Recv(0)
	if err != nil || string(got) != "ok" {
		t.Fatalf("Recv = %q, %v; want \"ok\", nil", got, err)
	}
	if s := fm.Injected(); s != (FaultStats{}) {
		t.Fatalf("zero profile injected faults: %+v", s)
	}
	frames, msgs, bytes := fm.Counters()
	if frames != 1 || msgs != 1 || bytes != 2 {
		t.Fatalf("Counters = %d frames, %d msgs, %d bytes; want 1, 1, 2", frames, msgs, bytes)
	}
}

// TestFaultMeshDropDeterminism: the same seed must drop exactly the
// same message indices on every run.
func TestFaultMeshDropDeterminism(t *testing.T) {
	run := func(seed uint64) []int {
		fm := NewFaultMesh(NewChanMesh(2), FaultProfile{
			Seed: seed,
			All:  LinkFault{DropProb: 0.5},
		})
		defer fm.Close()
		fm.SetRecvTimeout(20 * time.Millisecond)
		var delivered []int
		for i := 0; i < 40; i++ {
			if err := fm.Conn(0).Send(1, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			b, err := fm.Conn(1).Recv(0)
			switch {
			case err == nil:
				delivered = append(delivered, int(b[0]))
			case errors.Is(err, ErrTimeout):
				// dropped
			default:
				t.Fatal(err)
			}
		}
		if s := fm.Injected(); int(s.Drops)+len(delivered) != 40 {
			t.Fatalf("drops %d + delivered %d != 40", s.Drops, len(delivered))
		}
		return delivered
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 40 {
		t.Fatalf("degenerate drop pattern: %d/40 delivered", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic drops: %d vs %d delivered", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if c := run(1234); len(c) == len(a) {
		// Different seeds *may* coincide in count; require the actual
		// sequences to differ to confirm the seed is wired through.
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical drop patterns")
		}
	}
}

// TestFaultMeshCut: the link dies after exactly CutAfter deliveries.
func TestFaultMeshCut(t *testing.T) {
	fm := NewFaultMesh(NewChanMesh(2), FaultProfile{
		Links: map[[2]int]LinkFault{{0, 1}: {CutAfter: 3}},
	})
	defer fm.Close()
	fm.SetRecvTimeout(20 * time.Millisecond)
	for i := 0; i < 6; i++ {
		if err := fm.Conn(0).Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		b, err := fm.Conn(1).Recv(0)
		if err != nil || int(b[0]) != i {
			t.Fatalf("delivery %d: got %v, %v", i, b, err)
		}
	}
	if _, err := fm.Conn(1).Recv(0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("post-cut Recv = %v, want ErrTimeout", err)
	}
	// The reverse link is unaffected.
	if err := fm.Conn(1).Send(0, []byte("back")); err != nil {
		t.Fatal(err)
	}
	if b, err := fm.Conn(0).Recv(1); err != nil || string(b) != "back" {
		t.Fatalf("reverse link: got %q, %v", b, err)
	}
	if s := fm.Injected(); s.Cuts != 3 {
		t.Fatalf("Cuts = %d, want 3", s.Cuts)
	}
}

// TestFaultMeshDelay: delayed messages arrive late, in order.
func TestFaultMeshDelay(t *testing.T) {
	const delay = 30 * time.Millisecond
	fm := NewFaultMesh(NewChanMesh(2), FaultProfile{
		Links: map[[2]int]LinkFault{{0, 1}: {Delay: delay}},
	})
	defer fm.Close()
	start := time.Now()
	fm.Conn(0).Send(1, []byte("a"))
	fm.Conn(0).Send(1, []byte("b"))
	for _, want := range []string{"a", "b"} {
		b, err := fm.Conn(1).Recv(0)
		if err != nil || string(b) != want {
			t.Fatalf("got %q, %v; want %q", b, err, want)
		}
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("delivery after %v, want >= %v", elapsed, delay)
	}
	if s := fm.Injected(); s.Delays != 2 {
		t.Fatalf("Delays = %d, want 2", s.Delays)
	}
}

// TestFaultMeshCrash: a crashed party sees only ErrClosed and its
// blocked peers fail instead of hanging.
func TestFaultMeshCrash(t *testing.T) {
	fm := NewFaultMesh(NewChanMesh(3), FaultProfile{})
	defer fm.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := fm.Conn(0).Recv(2)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	fm.Crash(2)
	fm.Crash(2) // idempotent
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("peer of crashed party got %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer still blocked after crash")
	}
	if err := fm.Conn(2).Send(0, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("crashed Send = %v, want ErrClosed", err)
	}
	if _, err := fm.Conn(2).Recv(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("crashed Recv = %v, want ErrClosed", err)
	}
	if s := fm.Injected(); s.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", s.Crashes)
	}
	// Links not touching the crashed party keep working.
	if err := fm.Conn(0).Send(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if b, err := fm.Conn(1).Recv(0); err != nil || string(b) != "ok" {
		t.Fatalf("survivor link: got %q, %v", b, err)
	}
}

// TestFaultMeshCrashAfterSends: the scripted crash budget kills the
// party at a deterministic point in its send sequence.
func TestFaultMeshCrashAfterSends(t *testing.T) {
	fm := NewFaultMesh(NewChanMesh(2), FaultProfile{
		CrashAfterSends: map[int]int{0: 2},
	})
	defer fm.Close()
	if err := fm.Conn(0).Send(1, []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := fm.Conn(0).Send(1, []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := fm.Conn(0).Send(1, []byte("3")); !errors.Is(err, ErrClosed) {
		t.Fatalf("third send = %v, want ErrClosed (crash budget spent)", err)
	}
	if s := fm.Injected(); s.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", s.Crashes)
	}
}
