package transport

import (
	"encoding/binary"

	"sqm/internal/obs"
)

// Trace propagation: when a mesh is built WithTracer, every frame is
// prefixed with a fixed 20-byte header carrying (trace id, sender,
// Lamport stamp). The header travels inside the mesh payload — the
// session layer's wire format is untouched — and is stripped before the
// payload reaches the caller, so engines never see it. Traffic counters
// keep counting payload bytes: the header is telemetry, not data.
//
// Layout (big-endian):
//
//	[0:2]   magic 0x7154 ("tQ")
//	[2]     version (1)
//	[3]     sender party id
//	[4:12]  trace id
//	[12:20] Lamport stamp at send time
const (
	traceMagic   = 0x7154
	traceVersion = 1

	// TraceHeaderLen is the per-frame overhead of trace propagation.
	TraceHeaderLen = 20
)

// wrapTraceFrame prefixes payload with a trace header. The payload is
// copied into a pool-backed wire buffer — stamping happens before the
// frame is handed to a queue that outlives the caller's buffer anyway,
// and the copy is what lets the sender's payload be recycled as soon as
// the frame is built.
func wrapTraceFrame(id obs.TraceID, from int, lclock uint64, payload []byte) []byte {
	out := GetPayload(TraceHeaderLen + len(payload))
	binary.BigEndian.PutUint16(out[0:2], traceMagic)
	out[2] = traceVersion
	out[3] = byte(from)
	binary.BigEndian.PutUint64(out[4:12], uint64(id))
	binary.BigEndian.PutUint64(out[12:20], lclock)
	copy(out[TraceHeaderLen:], payload)
	return out
}

// unwrapTraceFrame splits a frame into its trace header and payload.
// Frames without the magic/version prefix are returned unchanged with
// ok == false, so an untraced peer's traffic still flows.
func unwrapTraceFrame(b []byte) (id obs.TraceID, from int, lclock uint64, rest []byte, ok bool) {
	if len(b) < TraceHeaderLen ||
		binary.BigEndian.Uint16(b[0:2]) != traceMagic ||
		b[2] != traceVersion {
		return 0, 0, 0, b, false
	}
	id = obs.TraceID(binary.BigEndian.Uint64(b[4:12]))
	from = int(b[3])
	lclock = binary.BigEndian.Uint64(b[12:20])
	return id, from, lclock, b[TraceHeaderLen:], true
}

// connTrace is one endpoint's tracing state. A nil *connTrace (tracing
// disabled) makes every method a single-branch no-op, mirroring the
// meshObs pattern.
type connTrace struct {
	pt *obs.PartyTrace
}

// newConnTrace binds party's stream from the context; nil when tracing
// is off or the context has no stream for this party.
func newConnTrace(tc *obs.TraceContext, party int) *connTrace {
	if tc == nil {
		return nil
	}
	pt := tc.Party(party)
	if pt == nil {
		return nil
	}
	return &connTrace{pt: pt}
}

// stampSend ticks the clock (Lamport send rule) and wraps the payload.
// The returned stamp is what the receiver will see in the header.
func (t *connTrace) stampSend(payload []byte) ([]byte, uint64) {
	if t == nil {
		return payload, 0
	}
	lc := t.pt.Tick()
	return wrapTraceFrame(t.pt.Trace(), t.pt.Party(), lc, payload), lc
}

// sent records the send event at the stamp the frame carries, after the
// mesh has actually accepted it.
func (t *connTrace) sent(lc uint64, to, payloadBytes, msgs int) {
	if t == nil {
		return
	}
	t.pt.EventAt(lc, obs.LevelDebug, "transport.send",
		obs.Int("peer", to), obs.Int("bytes", payloadBytes), obs.Int("msgs", msgs))
}

// received merges the sender's stamp into the clock (Lamport receive
// rule), records the receive event, and strips the header. The event's
// remote_lclock equals the matching send event's lclock — that pairing
// is how sqmtrace matches cross-party edges.
func (t *connTrace) received(from int, b []byte) []byte {
	if t == nil {
		return b
	}
	id, sender, remote, rest, ok := unwrapTraceFrame(b)
	if !ok {
		t.pt.Event(obs.LevelWarn, "transport.recv.untraced",
			obs.Int("peer", from), obs.Int("bytes", len(b)))
		return b
	}
	lc := t.pt.Merge(remote)
	if id != t.pt.Trace() || sender != from {
		t.pt.EventAt(lc, obs.LevelWarn, "transport.recv.mismatch",
			obs.Int("peer", from), obs.Int("claimed", sender),
			obs.String("claimed_trace", id.String()))
	}
	t.pt.EventAt(lc, obs.LevelDebug, "transport.recv",
		obs.Int("peer", from), obs.Int("bytes", len(rest)),
		obs.Int64("remote_lclock", int64(remote)))
	return rest
}

// fault records a fault-injection event on this endpoint's stream — a
// local event, so it ticks the clock like any other.
func (t *connTrace) fault(level obs.Level, name string, attrs ...obs.Attr) {
	if t == nil {
		return
	}
	t.pt.Event(level, name, attrs...)
}
