package beaver

import (
	"testing"
	"testing/quick"

	"sqm/internal/bgw"
	"sqm/internal/field"
	"sqm/internal/randx"
)

func newDealerEngine(t *testing.T, parties, triples int) *Engine {
	t.Helper()
	e, err := NewEngine(Config{Parties: parties, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Precompute(triples); err != nil {
		t.Fatal(err)
	}
	e.ResetStats()
	return e
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{Parties: 1}); err == nil {
		t.Fatal("single party must be rejected")
	}
	e, err := NewEngine(Config{Parties: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Parties() != 2 {
		t.Fatal("party count")
	}
}

func TestInputOpenRoundTrip(t *testing.T) {
	e := newDealerEngine(t, 3, 0)
	for _, v := range []int64{0, 7, -7, 1 << 40, -(1 << 40)} {
		s := e.Input(int(uint64(v)%3), v)
		if got := e.Open(s); got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}

func TestAdditiveSharesHideSecret(t *testing.T) {
	// No single addend should equal the secret systematically.
	e := newDealerEngine(t, 4, 0)
	hits := 0
	for trial := 0; trial < 200; trial++ {
		s := e.Input(0, 123456)
		for _, sh := range s.shares {
			if sh == 123456 {
				hits++
			}
		}
	}
	if hits > 2 {
		t.Fatalf("addends leak the secret (%d hits)", hits)
	}
}

func TestLinearOps(t *testing.T) {
	e := newDealerEngine(t, 3, 0)
	a := e.Input(0, 100)
	b := e.Input(1, -30)
	if got := e.Open(e.Add(a, b)); got != 70 {
		t.Fatalf("Add = %d", got)
	}
	if got := e.Open(e.Sub(a, b)); got != 130 {
		t.Fatalf("Sub = %d", got)
	}
	if got := e.Open(e.AddConst(a, 5)); got != 105 {
		t.Fatalf("AddConst = %d", got)
	}
	if got := e.Open(e.MulConst(b, -2)); got != 60 {
		t.Fatalf("MulConst = %d", got)
	}
	if got := e.Open(e.Zero()); got != 0 {
		t.Fatalf("Zero = %d", got)
	}
}

func TestBeaverMulCorrect(t *testing.T) {
	e := newDealerEngine(t, 4, 32)
	cases := [][2]int64{{3, 7}, {-5, 11}, {0, 999}, {-8, -9}, {1 << 25, 1 << 25}}
	for _, c := range cases {
		z, err := e.Mul(e.Input(0, c[0]), e.Input(1, c[1]))
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Open(z); got != c[0]*c[1] {
			t.Fatalf("Mul(%d, %d) = %d", c[0], c[1], got)
		}
	}
}

func TestBeaverMulProperty(t *testing.T) {
	e := newDealerEngine(t, 3, 400)
	f := func(a, b int32) bool {
		x, y := int64(a%(1<<29)), int64(b%(1<<29))
		z, err := e.Mul(e.Input(0, x), e.Input(1, y))
		if err != nil {
			return false
		}
		return e.Open(z) == x*y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTriplePoolExhaustion(t *testing.T) {
	e := newDealerEngine(t, 3, 1)
	a, b := e.Input(0, 2), e.Input(1, 3)
	if _, err := e.Mul(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Mul(a, b); err != ErrOutOfTriples {
		t.Fatalf("err = %v, want ErrOutOfTriples", err)
	}
	if e.PoolSize() != 0 {
		t.Fatal("pool should be empty")
	}
}

func TestStatsMeterTriplesAndMessages(t *testing.T) {
	e := newDealerEngine(t, 4, 4)
	a, b := e.Input(0, 2), e.Input(1, 3)
	e.ResetStats()
	if _, err := e.Mul(a, b); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Triples != 1 {
		t.Fatalf("Triples = %d", st.Triples)
	}
	// Two openings of P(P-1) messages each.
	if st.Messages != 2*4*3 {
		t.Fatalf("Messages = %d", st.Messages)
	}
}

func TestDealerTriplesAreValid(t *testing.T) {
	d := &DealerSource{Parties: 5, RNG: randx.New(9)}
	ts, err := d.Triples(50)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts {
		var a, b, c field.Elem
		for i := 0; i < 5; i++ {
			a = field.Add(a, tr.A[i])
			b = field.Add(b, tr.B[i])
			c = field.Add(c, tr.C[i])
		}
		if field.Mul(a, b) != c {
			t.Fatal("dealer triple violates c = a*b")
		}
	}
}

func TestBGWSourceTriplesAreValid(t *testing.T) {
	bgwEng, err := bgw.NewEngine(bgw.Config{Parties: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	src := NewBGWSource(bgw.Eval(bgwEng), 11)
	ts, err := src.Triples(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts {
		var a, b, c field.Elem
		for i := 0; i < 4; i++ {
			a = field.Add(a, tr.A[i])
			b = field.Add(b, tr.B[i])
			c = field.Add(c, tr.C[i])
		}
		if field.Mul(a, b) != c {
			t.Fatal("BGW-generated triple violates c = a*b")
		}
	}
	if bgwEng.Stats().Messages == 0 {
		t.Fatal("offline phase must cost communication")
	}
}

func TestBeaverEngineWithBGWSourceEndToEnd(t *testing.T) {
	bgwEng, err := bgw.NewEngine(bgw.Config{Parties: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{Parties: 4, Seed: 13, Source: NewBGWSource(bgw.Eval(bgwEng), 13)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Precompute(8); err != nil {
		t.Fatal(err)
	}
	e.ResetStats()
	// Evaluate x*y + w*z - 5 online.
	x, y := e.Input(0, 6), e.Input(1, 7)
	w, z := e.Input(2, -3), e.Input(3, 4)
	xy, err := e.Mul(x, y)
	if err != nil {
		t.Fatal(err)
	}
	wz, err := e.Mul(w, z)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Open(e.AddConst(e.Add(xy, wz), -5))
	if got != 6*7-3*4-5 {
		t.Fatalf("end-to-end = %d", got)
	}
	// Online multiplications are cheap: no resharing, only openings.
	if e.Stats().Triples != 2 {
		t.Fatalf("triples consumed = %d", e.Stats().Triples)
	}
}

func TestOnlineCheaperThanBGWPerMultiplication(t *testing.T) {
	// The point of the offline/online split: count online messages per
	// multiplication against BGW's resharing.
	const parties = 4
	e := newDealerEngine(t, parties, 1)
	a, b := e.Input(0, 3), e.Input(1, 4)
	e.ResetStats()
	if _, err := e.Mul(a, b); err != nil {
		t.Fatal(err)
	}
	beaverMsgs := e.Stats().Messages

	bgwEng, err := bgw.NewEngine(bgw.Config{Parties: parties, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x, y := bgwEng.Input(0, 3), bgwEng.Input(1, 4)
	bgwEng.ResetStats()
	bgwEng.Mul(x, y)
	bgwMsgs := bgwEng.Stats().Messages

	// Beaver: 2 openings; BGW: full resharing. Equal at P=4 in message
	// count, but Beaver needs no Shamir evaluation — compare field ops.
	if beaverMsgs > 2*bgwMsgs {
		t.Fatalf("beaver online messages %d unexpectedly high vs BGW %d", beaverMsgs, bgwMsgs)
	}
}
