package beaver

import (
	"errors"
	"fmt"
	"time"

	"sqm/internal/field"
	"sqm/internal/invariant"
	"sqm/internal/randx"
)

// ErrOutOfTriples is returned when a multiplication finds the triple
// pool empty — callers size the offline phase with Precompute.
var ErrOutOfTriples = errors.New("beaver: triple pool exhausted; call Precompute")

// Config describes a Beaver-engine deployment.
type Config struct {
	Parties int           // P >= 2
	Latency time.Duration // per communication round; 0 means 100 ms
	Seed    uint64
	Source  TripleSource // nil means a DealerSource (tests/cost modeling)
}

// Stats meters the online phase.
type Stats struct {
	Rounds   int64
	Messages int64
	FieldOps int64
	Triples  int64 // consumed
}

// Engine simulates the P parties of the online phase.
type Engine struct {
	p       int
	latency time.Duration
	rngs    []*randx.RNG
	source  TripleSource
	pool    []Triple
	stats   Stats
}

// NewEngine validates the configuration.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Parties < 2 {
		return nil, fmt.Errorf("beaver: need at least 2 parties, got %d", cfg.Parties)
	}
	lat := cfg.Latency
	if lat == 0 {
		lat = 100 * time.Millisecond
	}
	e := &Engine{p: cfg.Parties, latency: lat}
	root := randx.New(cfg.Seed ^ 0xadd17e)
	for i := 0; i < cfg.Parties; i++ {
		e.rngs = append(e.rngs, root.Fork())
	}
	e.source = cfg.Source
	if e.source == nil {
		e.source = &DealerSource{Parties: cfg.Parties, RNG: root.Fork()}
	}
	return e, nil
}

// Parties returns P.
func (e *Engine) Parties() int { return e.p }

// Stats returns the online counters.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the online counters (typically after Precompute so
// the offline phase is not mixed in).
func (e *Engine) ResetStats() { e.stats = Stats{} }

// AdvanceRound accounts one communication round.
func (e *Engine) AdvanceRound() { e.stats.Rounds++ }

// Precompute fills the triple pool (the offline phase).
func (e *Engine) Precompute(n int) error {
	ts, err := e.source.Triples(n)
	if err != nil {
		return err
	}
	e.pool = append(e.pool, ts...)
	return nil
}

// PoolSize returns the remaining triples.
func (e *Engine) PoolSize() int { return len(e.pool) }

// Share is an additively shared value: the secret is Σ shares[i].
type Share struct {
	eng    *Engine
	shares []field.Elem
}

// Input has party owner share the signed value v: the owner picks P−1
// random addends and keeps the difference, sending one addend to each
// other party.
func (e *Engine) Input(owner int, v int64) *Share {
	if owner < 0 || owner >= e.p {
		panic(invariant.Violation("beaver: owner out of range"))
	}
	sh := additiveShares(field.FromInt64(v), e.p, e.rngs[owner])
	e.stats.Messages += int64(e.p - 1)
	return &Share{eng: e, shares: sh}
}

// Zero returns a trivial sharing of 0.
func (e *Engine) Zero() *Share {
	return &Share{eng: e, shares: make([]field.Elem, e.p)}
}

// Add is local: additive shares add pointwise.
func (e *Engine) Add(a, b *Share) *Share {
	e.checkSame(a, b)
	out := make([]field.Elem, e.p)
	for i := range out {
		out[i] = field.Add(a.shares[i], b.shares[i])
	}
	return &Share{eng: e, shares: out}
}

// Sub is local.
func (e *Engine) Sub(a, b *Share) *Share {
	e.checkSame(a, b)
	out := make([]field.Elem, e.p)
	for i := range out {
		out[i] = field.Sub(a.shares[i], b.shares[i])
	}
	return &Share{eng: e, shares: out}
}

// AddConst adds a public constant: only party 0 adjusts its share.
func (e *Engine) AddConst(a *Share, c int64) *Share {
	out := append([]field.Elem(nil), a.shares...)
	out[0] = field.Add(out[0], field.FromInt64(c))
	return &Share{eng: e, shares: out}
}

// MulConst multiplies by a public constant: local on every share.
func (e *Engine) MulConst(a *Share, c int64) *Share {
	ce := field.FromInt64(c)
	out := make([]field.Elem, e.p)
	for i := range out {
		out[i] = field.Mul(a.shares[i], ce)
	}
	e.stats.FieldOps += int64(e.p)
	return &Share{eng: e, shares: out}
}

// Mul multiplies two shared values with one Beaver triple: the parties
// open d = x−a and ε = y−b (two values, one round when batched) and set
// z = c + d·b + ε·a + d·ε (the public d·ε added by party 0).
func (e *Engine) Mul(x, y *Share) (*Share, error) {
	e.checkSame(x, y)
	if len(e.pool) == 0 {
		return nil, ErrOutOfTriples
	}
	t := e.pool[len(e.pool)-1]
	e.pool = e.pool[:len(e.pool)-1]
	e.stats.Triples++

	d := e.openRaw(subShares(x.shares, t.A))
	eps := e.openRaw(subShares(y.shares, t.B))
	out := make([]field.Elem, e.p)
	for i := 0; i < e.p; i++ {
		v := field.Add(t.C[i], field.Mul(d, t.B[i]))
		v = field.Add(v, field.Mul(eps, t.A[i]))
		out[i] = v
	}
	out[0] = field.Add(out[0], field.Mul(d, eps))
	e.stats.FieldOps += int64(4*e.p + 1)
	return &Share{eng: e, shares: out}, nil
}

// Open reveals the signed secret (all parties broadcast their addend).
func (e *Engine) Open(s *Share) int64 {
	if s.eng != e {
		panic(invariant.Violation("beaver: foreign share"))
	}
	return field.ToInt64(e.openRaw(s.shares))
}

// openRaw meters one broadcast opening and sums the addends.
func (e *Engine) openRaw(shares []field.Elem) field.Elem {
	e.stats.Messages += int64(e.p * (e.p - 1))
	e.stats.FieldOps += int64(e.p)
	var sum field.Elem
	for _, sh := range shares {
		sum = field.Add(sum, sh)
	}
	return sum
}

func subShares(a, b []field.Elem) []field.Elem {
	out := make([]field.Elem, len(a))
	for i := range out {
		out[i] = field.Sub(a[i], b[i])
	}
	return out
}

func (e *Engine) checkSame(a, b *Share) {
	if a.eng != e || b.eng != e {
		panic(invariant.Violation("beaver: share from a different engine"))
	}
}
