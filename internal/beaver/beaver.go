// Package beaver implements a second semi-honest MPC backend for SQM:
// additive secret sharing with Beaver multiplication triples in the
// offline/online paradigm. The paper uses BGW but notes that "one can
// replace BGW with any other MPC protocol without affecting the DP
// guarantees" (§II); this engine demonstrates that replaceability and
// quantifies the trade-off: multiplications consume pre-computed
// triples, making the *online* phase two openings per product — far
// lighter than BGW's resharing — at the cost of an offline phase.
//
// Triples are produced by a TripleSource. BGWSource derives them with
// no trusted party: a and b are sums of locally drawn randomness
// (additive sharing of a uniform value is non-interactive), and
// c = a·b is computed by one BGW multiplication whose Shamir output
// converts to an additive sharing locally (party i holds λ_i·s_i, and
// Σ_i λ_i·s_i is the secret). DealerSource hands out triples from a
// central sampler — a test fixture that models a setup phase, not a
// deployment option under the paper's threat model.
package beaver

import (
	"fmt"

	"sqm/internal/bgw"
	"sqm/internal/circuit"
	"sqm/internal/field"
	"sqm/internal/randx"
	"sqm/internal/shamir"
)

// Triple is an additively shared Beaver triple: per-party shares of
// uniform a, b and of c = a·b.
type Triple struct {
	A, B, C []field.Elem // one share per party
}

// TripleSource produces Beaver triples for P parties.
type TripleSource interface {
	// Triples returns n fresh triples. The cost of producing them is
	// the offline phase; engines meter it separately.
	Triples(n int) ([]Triple, error)
}

// DealerSource samples triples centrally. For tests and cost modeling
// only — it is NOT deployable under the no-trusted-party threat model.
type DealerSource struct {
	Parties int
	RNG     *randx.RNG
}

// Triples implements TripleSource.
func (d *DealerSource) Triples(n int) ([]Triple, error) {
	if d.Parties < 2 {
		return nil, fmt.Errorf("beaver: dealer needs >= 2 parties")
	}
	out := make([]Triple, n)
	for i := range out {
		a, b := field.Rand(d.RNG), field.Rand(d.RNG)
		out[i] = Triple{
			A: additiveShares(a, d.Parties, d.RNG),
			B: additiveShares(b, d.Parties, d.RNG),
			C: additiveShares(field.Mul(a, b), d.Parties, d.RNG),
		}
	}
	return out, nil
}

// BGWSource produces triples without any trusted party, using one BGW
// multiplication per triple and the local Shamir→additive conversion.
// It runs against any bgw.Evaluator backend — the monolithic engine
// (wrap with bgw.Eval) or the party-actor engine over a transport.
type BGWSource struct {
	eng  bgw.Evaluator
	rngs []*randx.RNG
	lag  []field.Elem
}

// NewBGWSource wires a source to a BGW evaluator (which meters the
// offline communication on its own stats).
func NewBGWSource(eng bgw.Evaluator, seed uint64) *BGWSource {
	root := randx.New(seed ^ 0xbea4)
	rngs := make([]*randx.RNG, eng.Parties())
	for i := range rngs {
		rngs[i] = root.Fork()
	}
	return &BGWSource{
		eng:  eng,
		rngs: rngs,
		lag:  shamir.LagrangeAtZero(shamir.PartyPoints(eng.Parties())),
	}
}

// Triples implements TripleSource: a and b are sums of per-party local
// randomness; c comes from one BGW multiplication on those inputs. The
// whole batch is recorded as one depth-1 plan, so producing n triples
// costs two wire rounds (input, batched resharing) instead of 2n.
func (s *BGWSource) Triples(n int) ([]Triple, error) {
	p := s.eng.Parties()
	out := make([]Triple, n)
	b := circuit.NewBuilder(p, s.eng.Threshold())
	cH := make([]bgw.Val, n)
	for i := range out {
		aShares := make([]field.Elem, p)
		bShares := make([]field.Elem, p)
		// Each party draws its additive share locally (free) and
		// inputs it into BGW to obtain Shamir sharings of a and b.
		var aS, bS bgw.Val
		for j := 0; j < p; j++ {
			aShares[j] = field.Rand(s.rngs[j])
			bShares[j] = field.Rand(s.rngs[j])
			ja := b.InputElem(j, aShares[j])
			jb := b.InputElem(j, bShares[j])
			if aS == nil {
				aS, bS = ja, jb
			} else {
				aS, bS = b.Add(aS, ja), b.Add(bS, jb)
			}
		}
		cH[i] = b.Mul(aS, bS)
		out[i] = Triple{A: aShares, B: bShares}
	}
	plan, err := b.Compile()
	if err != nil {
		return nil, err
	}
	res, err := plan.Execute(s.eng, circuit.Bindings{})
	if err != nil {
		return nil, err
	}
	for i := range out {
		// Local Shamir→additive conversion: party j holds λ_j·share_j.
		out[i].C = s.eng.AdditiveShares(res.ValOf(cH[i]), s.lag)
	}
	if err := s.eng.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// additiveShares splits v into p uniformly random addends.
func additiveShares(v field.Elem, p int, rng *randx.RNG) []field.Elem {
	out := make([]field.Elem, p)
	var sum field.Elem
	for i := 0; i < p-1; i++ {
		out[i] = field.Rand(rng)
		sum = field.Add(sum, out[i])
	}
	out[p-1] = field.Sub(v, sum)
	return out
}
