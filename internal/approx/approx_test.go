package approx

import (
	"math"
	"testing"
)

func TestActivationValues(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", Sigmoid(0))
	}
	if math.Abs(Sigmoid(2)-1/(1+math.Exp(-2))) > 1e-15 {
		t.Fatal("Sigmoid(2)")
	}
	if Tanh(0) != 0 || math.Abs(Tanh(1)-math.Tanh(1)) > 1e-15 {
		t.Fatal("Tanh")
	}
	if GELU(0) != 0 {
		t.Fatalf("GELU(0) = %v", GELU(0))
	}
	// GELU(u) → u for large u, → 0 for very negative u.
	if math.Abs(GELU(10)-10) > 1e-6 {
		t.Fatalf("GELU(10) = %v", GELU(10))
	}
	if math.Abs(GELU(-10)) > 1e-6 {
		t.Fatalf("GELU(-10) = %v", GELU(-10))
	}
}

func TestPoly1EvalAndDegree(t *testing.T) {
	p := &Poly1{Coefs: []float64{1, 0, 2}} // 1 + 2u²
	if p.Degree() != 2 {
		t.Fatalf("Degree = %d", p.Degree())
	}
	if got := p.Eval(3); got != 19 {
		t.Fatalf("Eval = %v", got)
	}
	if (&Poly1{Coefs: []float64{0, 0}}).Degree() != 0 {
		t.Fatal("zero polynomial degree")
	}
}

func TestSigmoidTaylorMatchesPaper(t *testing.T) {
	p1, err := SigmoidTaylor(1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's H=1: σ(u) ≈ ½ + u/4.
	if p1.Coefs[0] != 0.5 || p1.Coefs[1] != 0.25 {
		t.Fatalf("H=1 coefficients = %v", p1.Coefs)
	}
	p3, err := SigmoidTaylor(3)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Coefs[3] != -1.0/48 {
		t.Fatalf("H=3 cubic coefficient = %v", p3.Coefs[3])
	}
	if _, err := SigmoidTaylor(0); err == nil {
		t.Fatal("order 0 must be rejected")
	}
	if _, err := SigmoidTaylor(99); err == nil {
		t.Fatal("huge order must be rejected")
	}
}

func TestTaylorErrorShrinksWithOrder(t *testing.T) {
	prev := math.Inf(1)
	for _, order := range []int{1, 3, 5} {
		p, err := SigmoidTaylor(order)
		if err != nil {
			t.Fatal(err)
		}
		e := p.SupError(Sigmoid, 1, 1024)
		if e >= prev {
			t.Fatalf("order %d: error %v did not shrink (prev %v)", order, e, prev)
		}
		prev = e
	}
	if prev > 2e-3 {
		t.Fatalf("order-5 Taylor error on [-1,1] = %v", prev)
	}
}

func TestTanhTaylor(t *testing.T) {
	p, err := TanhTaylor(3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Coefs[1] != 1 || p.Coefs[3] != -1.0/3 {
		t.Fatalf("tanh coefficients = %v", p.Coefs)
	}
	if e := p.SupError(Tanh, 0.5, 512); e > 5e-3 {
		t.Fatalf("tanh order-3 error on [-0.5,0.5] = %v", e)
	}
}

func TestChebyshevExactOnPolynomials(t *testing.T) {
	// Chebyshev interpolation of a degree-2 polynomial at degree >= 2
	// must be exact (up to float rounding).
	f := func(u float64) float64 { return 3 - 2*u + 0.5*u*u }
	p, err := Chebyshev(f, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -2, 0.5}
	for i, w := range want {
		if math.Abs(p.Coefs[i]-w) > 1e-10 {
			t.Fatalf("Coefs = %v, want %v", p.Coefs, want)
		}
	}
}

func TestChebyshevBeatsTaylorAwayFromOrigin(t *testing.T) {
	// On [-4, 4] the degree-3 Chebyshev sigmoid is far better than the
	// degree-3 Taylor one — the reason MPC systems use minimax fits.
	taylor, err := SigmoidTaylor(3)
	if err != nil {
		t.Fatal(err)
	}
	cheb, err := Chebyshev(Sigmoid, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	te := taylor.SupError(Sigmoid, 4, 1024)
	ce := cheb.SupError(Sigmoid, 4, 1024)
	if ce >= te/4 {
		t.Fatalf("Chebyshev error %v should be well below Taylor %v", ce, te)
	}
}

func TestChebyshevErrorDecreasesWithDegree(t *testing.T) {
	prev := math.Inf(1)
	for _, deg := range []int{1, 3, 5, 9} {
		p, err := Chebyshev(GELU, 3, deg)
		if err != nil {
			t.Fatal(err)
		}
		e := p.SupError(GELU, 3, 1024)
		if e >= prev {
			t.Fatalf("degree %d: error %v did not shrink (prev %v)", deg, e, prev)
		}
		prev = e
	}
	if prev > 5e-3 {
		t.Fatalf("degree-9 GELU error on [-3,3] = %v", prev)
	}
}

func TestChebyshevValidation(t *testing.T) {
	if _, err := Chebyshev(Sigmoid, 0, 3); err == nil {
		t.Fatal("r=0 must be rejected")
	}
	if _, err := Chebyshev(Sigmoid, 1, -1); err == nil {
		t.Fatal("negative degree must be rejected")
	}
	if _, err := Chebyshev(Sigmoid, 1, 31); err == nil {
		t.Fatal("degree > 30 must be rejected")
	}
}

func TestMinDegreeFor(t *testing.T) {
	p, err := MinDegreeFor(Tanh, 2, 1e-3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if e := p.SupError(Tanh, 2, 2048); e > 1.5e-3 {
		t.Fatalf("returned polynomial misses tolerance: %v", e)
	}
	// And a lower degree must not suffice.
	if p.Degree() > 1 {
		lower, err := Chebyshev(Tanh, 2, p.Degree()-1)
		if err != nil {
			t.Fatal(err)
		}
		if lower.SupError(Tanh, 2, 2048) <= 1e-3 {
			t.Fatal("MinDegreeFor did not return the minimal degree")
		}
	}
	if _, err := MinDegreeFor(Sigmoid, 50, 1e-12, 5); err == nil {
		t.Fatal("unreachable tolerance must error")
	}
}

func TestToUnivariatePoly(t *testing.T) {
	p := &Poly1{Coefs: []float64{0.5, 0.25, 0, -1.0 / 48}}
	up := p.ToUnivariatePoly()
	if up.Degree() != 3 {
		t.Fatalf("Degree = %d", up.Degree())
	}
	for _, u := range []float64{-0.9, 0, 0.4} {
		if got, want := up.Eval([]float64{u}), p.Eval(u); math.Abs(got-want) > 1e-15 {
			t.Fatalf("Eval(%v) = %v, want %v", u, got, want)
		}
	}
	zero := (&Poly1{Coefs: []float64{0}}).ToUnivariatePoly()
	if zero.Eval([]float64{3}) != 0 {
		t.Fatal("zero polynomial conversion")
	}
}
