// Package approx builds polynomial approximations of the non-polynomial
// activation functions that motivate SQM's problem class (§III of the
// paper: "polynomials can be used to approximate various functions,
// including the activation functions in deep learning models", citing
// the GELU/Tanh approximations of Bolt). It provides
//
//   - Taylor expansions around 0 (the paper's H-th order sigmoid),
//   - Chebyshev interpolation on an interval [−r, r], which is close to
//     the minimax polynomial and much tighter than Taylor at the same
//     degree away from the origin, and
//   - sup-norm error estimation, so callers can pick the degree that
//     meets a target accuracy before paying the MPC/DP cost of the
//     corresponding SQM degree.
//
// The output is a plain coefficient vector convertible to a
// poly.Polynomial in one variable (the inner product ⟨w, x⟩ in the
// learning applications).
package approx

import (
	"fmt"
	"math"

	"sqm/internal/mathx"
	"sqm/internal/poly"
)

// Func is a scalar function to approximate.
type Func func(float64) float64

// Sigmoid is 1/(1+e^{-u}).
func Sigmoid(u float64) float64 { return 1 / (1 + math.Exp(-u)) }

// Tanh is the hyperbolic tangent.
func Tanh(u float64) float64 { return math.Tanh(u) }

// GELU is the Gaussian error linear unit u·Φ(u).
func GELU(u float64) float64 {
	return u * 0.5 * (1 + math.Erf(u/math.Sqrt2))
}

// Poly1 is a univariate polynomial Σ_i Coefs[i]·u^i.
type Poly1 struct {
	Coefs []float64 // Coefs[i] multiplies u^i
}

// Degree returns the highest non-zero power (0 for the zero
// polynomial).
func (p *Poly1) Degree() int {
	for i := len(p.Coefs) - 1; i >= 0; i-- {
		if !mathx.EqualWithin(p.Coefs[i], 0, 0) {
			return i
		}
	}
	return 0
}

// Eval evaluates by Horner's rule.
func (p *Poly1) Eval(u float64) float64 {
	var v float64
	for i := len(p.Coefs) - 1; i >= 0; i-- {
		v = v*u + p.Coefs[i]
	}
	return v
}

// SupError estimates sup_{|u|<=r} |p(u) − f(u)| on a uniform grid.
func (p *Poly1) SupError(f Func, r float64, gridPoints int) float64 {
	if gridPoints < 2 {
		gridPoints = 512
	}
	var worst float64
	for i := 0; i <= gridPoints; i++ {
		u := -r + 2*r*float64(i)/float64(gridPoints)
		if e := math.Abs(p.Eval(u) - f(u)); e > worst {
			worst = e
		}
	}
	return worst
}

// SigmoidTaylor returns the order-H Taylor expansion of the sigmoid at
// 0. Odd orders only carry information (σ is ½ plus an odd function);
// H=1 gives the paper's ½ + u/4, H=3 adds −u³/48, H=5 adds +u⁵/480.
func SigmoidTaylor(order int) (*Poly1, error) {
	// σ(u) = ½ + u/4 − u³/48 + u⁵/480 − 17u⁷/80640 + ...
	full := []float64{0.5, 0.25, 0, -1.0 / 48, 0, 1.0 / 480, 0, -17.0 / 80640}
	if order < 1 || order >= len(full) {
		return nil, fmt.Errorf("approx: sigmoid Taylor order %d unsupported (1..%d)", order, len(full)-1)
	}
	return &Poly1{Coefs: append([]float64(nil), full[:order+1]...)}, nil
}

// TanhTaylor returns the order-H Taylor expansion of tanh at 0:
// u − u³/3 + 2u⁵/15 − 17u⁷/315.
func TanhTaylor(order int) (*Poly1, error) {
	full := []float64{0, 1, 0, -1.0 / 3, 0, 2.0 / 15, 0, -17.0 / 315}
	if order < 1 || order >= len(full) {
		return nil, fmt.Errorf("approx: tanh Taylor order %d unsupported (1..%d)", order, len(full)-1)
	}
	return &Poly1{Coefs: append([]float64(nil), full[:order+1]...)}, nil
}

// Chebyshev fits the degree-n Chebyshev interpolant of f on [−r, r]
// (Chebyshev nodes of the first kind), returned in the monomial basis.
// For smooth f this is within a small factor of the best uniform
// approximation of that degree.
func Chebyshev(f Func, r float64, degree int) (*Poly1, error) {
	if degree < 0 || degree > 30 {
		return nil, fmt.Errorf("approx: Chebyshev degree %d out of range [0, 30]", degree)
	}
	if r <= 0 {
		return nil, fmt.Errorf("approx: interval radius must be positive, got %v", r)
	}
	n := degree + 1
	// Chebyshev coefficients c_k of f(r·cosθ).
	c := make([]float64, n)
	for k := 0; k < n; k++ {
		var sum float64
		for j := 0; j < n; j++ {
			theta := math.Pi * (float64(j) + 0.5) / float64(n)
			sum += f(r*math.Cos(theta)) * math.Cos(float64(k)*theta)
		}
		c[k] = 2 * sum / float64(n)
	}
	c[0] /= 2
	// Convert Σ c_k T_k(u/r) to monomial coefficients via the T_k
	// recurrence, tracked in the scaled variable t = u/r.
	tPrev := []float64{1}   // T_0
	tCur := []float64{0, 1} // T_1
	mono := make([]float64, n)
	addScaled := func(dst *[]float64, src []float64, s float64) {
		for i, v := range src {
			for len(*dst) <= i {
				*dst = append(*dst, 0)
			}
			(*dst)[i] += s * v
		}
	}
	acc := []float64{}
	addScaled(&acc, tPrev, c[0])
	if n > 1 {
		addScaled(&acc, tCur, c[1])
	}
	for k := 2; k < n; k++ {
		// T_k = 2t·T_{k-1} − T_{k-2}.
		next := make([]float64, len(tCur)+1)
		for i, v := range tCur {
			next[i+1] += 2 * v
		}
		for i, v := range tPrev {
			next[i] -= v
		}
		addScaled(&acc, next, c[k])
		tPrev, tCur = tCur, next
	}
	copy(mono, acc)
	// Undo the variable scaling t = u/r: coefficient of u^i divides r^i.
	for i := range mono {
		mono[i] /= math.Pow(r, float64(i))
	}
	return &Poly1{Coefs: mono}, nil
}

// MinDegreeFor searches for the smallest Chebyshev degree (up to
// maxDegree) whose sup error on [−r, r] is at most tol. It returns the
// polynomial or an error when no degree in range suffices — the caller
// then knows the task needs a budget SQM cannot meet at this precision.
func MinDegreeFor(f Func, r, tol float64, maxDegree int) (*Poly1, error) {
	if maxDegree > 30 {
		maxDegree = 30
	}
	for deg := 1; deg <= maxDegree; deg++ {
		p, err := Chebyshev(f, r, deg)
		if err != nil {
			return nil, err
		}
		if p.SupError(f, r, 1024) <= tol {
			return p, nil
		}
	}
	return nil, fmt.Errorf("approx: no degree <= %d reaches tolerance %v on [-%v, %v]", maxDegree, tol, r, r)
}

// ToUnivariatePoly converts to a poly.Polynomial over one variable,
// ready for SQM evaluation.
func (p *Poly1) ToUnivariatePoly() *poly.Polynomial {
	ms := make([]poly.Monomial, 0, len(p.Coefs))
	for i, c := range p.Coefs {
		if mathx.EqualWithin(c, 0, 0) {
			continue
		}
		ms = append(ms, poly.Monomial{Coef: c, Exps: []int{i}})
	}
	if len(ms) == 0 {
		ms = append(ms, poly.Monomial{Coef: 0, Exps: []int{0}})
	}
	return poly.MustPolynomial(1, ms...)
}
