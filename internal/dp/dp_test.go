package dp

import (
	"math"
	"testing"
)

func TestSkellamRDPLeadingTermMatchesGaussian(t *testing.T) {
	// For large mu the Skellam RDP approaches the Gaussian RDP with
	// sigma^2 = 2*mu (variance matching): α·Δ²/(4μ) = α·Δ²/(2σ²).
	alpha, d2 := 8, 100.0
	mu := 1e12
	sk := SkellamRDP(alpha, d2, d2, mu)
	ga := GaussianRDP(float64(alpha), d2, math.Sqrt(2*mu))
	if math.Abs(sk-ga) > 1e-6*ga+1e-18 {
		t.Fatalf("Skellam %v vs Gaussian %v", sk, ga)
	}
}

func TestSkellamRDPMonotoneInAlphaAndMu(t *testing.T) {
	prev := 0.0
	for a := 2; a <= 32; a++ {
		tau := SkellamRDP(a, 10, 10, 1e4)
		if tau <= prev {
			t.Fatalf("tau not increasing in alpha at %d", a)
		}
		prev = tau
	}
	if SkellamRDP(4, 10, 10, 1e3) <= SkellamRDP(4, 10, 10, 1e6) {
		t.Fatal("tau must decrease as mu grows")
	}
}

func TestSkellamRDPZeroMu(t *testing.T) {
	if !math.IsInf(SkellamRDP(2, 1, 1, 0), 1) {
		t.Fatal("mu=0 must give infinite tau")
	}
}

func TestSkellamRDPUsesMinBranch(t *testing.T) {
	// Small mu: the quadratic branch ((2α−1)Δ²+6Δ₁)/(16μ²) exceeds
	// 3Δ₁/(4μ); the min must pick the linear branch.
	alpha, d1, d2, mu := 2, 4.0, 2.0, 0.5
	got := SkellamRDP(alpha, d1, d2, mu)
	lead := float64(alpha) * d2 * d2 / (4 * mu)
	lin := 3 * d1 / (4 * mu)
	quad := ((2*float64(alpha)-1)*d2*d2 + 6*d1) / (16 * mu * mu)
	if quad <= lin {
		t.Fatalf("test setup wrong: quad %v <= lin %v", quad, lin)
	}
	if math.Abs(got-(lead+lin)) > 1e-12 {
		t.Fatalf("got %v, want lead+linear %v", got, lead+lin)
	}
}

func TestSkellamRDPClient(t *testing.T) {
	// Lemma 3: tau_client = αnΔ²/((n−1)μ) + 3nΔ₁/(2(n−1)μ) when the
	// linear branch of the min is active.
	alpha, d1, d2, mu, n := 4, 3.0, 3.0, 10.0, 5
	got := SkellamRDPClient(alpha, d1, d2, mu, n)
	a, nn := float64(alpha), float64(n)
	wantLead := a * nn * d2 * d2 / ((nn - 1) * mu)
	wantLin := 3 * nn * d1 / (2 * (nn - 1) * mu)
	effMu := mu * (nn - 1) / nn
	quad := ((2*a-1)*4*d2*d2 + 6*2*d1) / (16 * effMu * effMu)
	want := wantLead + math.Min(quad, wantLin)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
	if !math.IsInf(SkellamRDPClient(2, 1, 1, 10, 1), 1) {
		t.Fatal("single client has no distributed protection")
	}
}

func TestClientWeakerThanServer(t *testing.T) {
	for _, n := range []int{2, 5, 50} {
		s := SkellamRDP(4, 10, 10, 1e4)
		c := SkellamRDPClient(4, 10, 10, 1e4, n)
		if c <= s {
			t.Fatalf("n=%d: client tau %v should exceed server tau %v", n, c, s)
		}
	}
	// The client/server gap shrinks as n grows (the n/(n−1) factor → 1,
	// but the doubled sensitivity keeps client ≈ 4x server).
	c2 := SkellamRDPClient(4, 10, 10, 1e4, 2)
	c100 := SkellamRDPClient(4, 10, 10, 1e4, 100)
	if c100 >= c2 {
		t.Fatal("client tau should decrease with more clients")
	}
}

func TestGaussianRDP(t *testing.T) {
	if got := GaussianRDP(3, 2, 4); math.Abs(got-3*4/32.0) > 1e-15 {
		t.Fatalf("GaussianRDP = %v", got)
	}
	if !math.IsInf(GaussianRDP(2, 1, 0), 1) {
		t.Fatal("sigma=0 must be infinite")
	}
}

func TestRDPToDPKnownValue(t *testing.T) {
	// Sanity against hand computation: alpha=2, tau=1, delta=1e-5:
	// eps = 1 + log(1e5) + 1*log(1/2) - log(2) = 1 + 11.5129 - 1.3863.
	got := RDPToDP(2, 1, 1e-5)
	want := 1 + math.Log(1e5) + math.Log(0.5) - math.Log(2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRDPToDPTighterThanNaive(t *testing.T) {
	// The CKS conversion is at least as tight as the classic
	// eps = tau + log(1/δ)/(α−1).
	for _, alpha := range []int{2, 8, 64} {
		tau := 0.5
		got := RDPToDP(alpha, tau, 1e-5)
		naive := tau + math.Log(1e5)/float64(alpha-1)
		if got > naive+1e-12 {
			t.Fatalf("alpha=%d: CKS %v looser than naive %v", alpha, got, naive)
		}
	}
}

func TestGroupPrivacy(t *testing.T) {
	eps, delta := GroupPrivacy(0.5, 1e-6, 1)
	if eps != 0.5 || delta != 1e-6 {
		t.Fatal("k=1 must be identity")
	}
	e3, d3 := GroupPrivacy(0.5, 1e-6, 3)
	if e3 != 1.5 {
		t.Fatalf("eps_3 = %v", e3)
	}
	want := 1e-6 * (math.Expm1(1.5) / math.Expm1(0.5))
	if math.Abs(d3-want) > 1e-18 {
		t.Fatalf("delta_3 = %v, want %v", d3, want)
	}
	// Tiny eps limit: factor → k.
	_, dk := GroupPrivacy(1e-15, 1e-6, 10)
	if math.Abs(dk-1e-5) > 1e-12 {
		t.Fatalf("small-eps delta_k = %v, want 1e-5", dk)
	}
	// Delta clamps to 1.
	if _, dBig := GroupPrivacy(5, 0.01, 10); dBig != 1 {
		t.Fatalf("delta should clamp to 1, got %v", dBig)
	}
}

func TestGroupPrivacyMonotoneInK(t *testing.T) {
	prevE, prevD := 0.0, 0.0
	for k := 1; k <= 8; k++ {
		e, d := GroupPrivacy(0.3, 1e-7, k)
		if e <= prevE || d <= prevD {
			t.Fatalf("k=%d: guarantee must weaken monotonically", k)
		}
		prevE, prevD = e, d
	}
}

func TestDPDeltaInvertsRDPToDP(t *testing.T) {
	// eps = RDPToDP(alpha, tau, delta) and delta = DPDelta(alpha, tau,
	// eps) must be inverse maps.
	for _, alpha := range []int{2, 8, 32} {
		for _, tau := range []float64{0.1, 1, 5} {
			eps := RDPToDP(alpha, tau, 1e-5)
			back := DPDelta(alpha, tau, eps)
			if math.Abs(back-1e-5) > 1e-12 {
				t.Fatalf("alpha=%d tau=%v: delta round trip %v", alpha, tau, back)
			}
		}
	}
}

func TestDPDeltaClampsToOne(t *testing.T) {
	// eps far below tau: no meaningful delta.
	if got := DPDelta(4, 100, 0.1); got != 1 {
		t.Fatalf("DPDelta = %v, want 1", got)
	}
}

func TestBestDeltaConsistentWithBestEpsilon(t *testing.T) {
	curve := func(a int) float64 { return GaussianRDP(float64(a), 1, 5) }
	eps, _ := BestEpsilon(curve, 1e-5, 128)
	delta, _ := BestDelta(curve, eps, 128)
	if delta > 1e-5*1.01 {
		t.Fatalf("BestDelta(%v) = %v, want <= 1e-5", eps, delta)
	}
}

func TestCompose(t *testing.T) {
	if got := Compose(1, 2, 3.5); got != 6.5 {
		t.Fatalf("Compose = %v", got)
	}
	if got := Compose(); got != 0 {
		t.Fatalf("empty Compose = %v", got)
	}
}

func TestSubsampledRDPEdgeCases(t *testing.T) {
	tau := func(l int) float64 { return float64(l) * 0.01 }
	if got := SubsampledRDP(4, 0, tau); got != 0 {
		t.Fatalf("q=0 should give 0, got %v", got)
	}
	if got := SubsampledRDP(4, 1, tau); got != tau(4) {
		t.Fatalf("q=1 should give base tau, got %v", got)
	}
}

func TestSubsampledRDPAmplifies(t *testing.T) {
	tau := func(l int) float64 { return float64(l) * 0.5 }
	for _, q := range []float64{0.001, 0.01, 0.1} {
		sub := SubsampledRDP(8, q, tau)
		if sub >= tau(8) {
			t.Fatalf("q=%v: subsampled tau %v not smaller than base %v", q, sub, tau(8))
		}
		if sub < 0 {
			t.Fatalf("q=%v: negative tau %v", q, sub)
		}
	}
	// Monotone in q.
	if SubsampledRDP(8, 0.001, tau) >= SubsampledRDP(8, 0.1, tau) {
		t.Fatal("amplification should be stronger at smaller q")
	}
}

func TestSubsampledRDPSmallQScaling(t *testing.T) {
	// For tiny q and moderate tau, the bound behaves like O(q²) at
	// alpha=2 — halving q should reduce tau by roughly 4x.
	tau := func(l int) float64 { return 1.0 }
	a := SubsampledRDP(2, 1e-3, tau)
	b := SubsampledRDP(2, 5e-4, tau)
	ratio := a / b
	if ratio < 3 || ratio > 5 {
		t.Fatalf("q-halving ratio = %v, want ~4", ratio)
	}
}

func TestSubsampledRDPLargeTauNoOverflow(t *testing.T) {
	// tau = 1e4 would overflow e^{(l-1)tau} in linear space.
	tau := func(l int) float64 { return 1e4 }
	got := SubsampledRDP(4, 0.001, tau)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("log-space evaluation failed: %v", got)
	}
	if got <= 0 {
		t.Fatalf("expected positive tau, got %v", got)
	}
}

func TestBestEpsilonPicksInteriorAlpha(t *testing.T) {
	curve := func(a int) float64 { return GaussianRDP(float64(a), 1, 5) }
	eps, alpha := BestEpsilon(curve, 1e-5, 256)
	if alpha <= 2 || alpha >= 256 {
		t.Fatalf("alpha = %d should be interior", alpha)
	}
	// Must beat the endpoints.
	if e2 := RDPToDP(2, curve(2), 1e-5); eps > e2 {
		t.Fatalf("eps %v worse than alpha=2 (%v)", eps, e2)
	}
}

func TestAnalyticGaussianSigmaMatchesDefinition(t *testing.T) {
	for _, eps := range []float64{0.25, 1, 4, 16} {
		sigma, err := AnalyticGaussianSigma(eps, 1e-5, 1)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if sigma <= 0 {
			t.Fatalf("eps=%v: sigma=%v", eps, sigma)
		}
		// Verify the defining equation holds at the recovered chi.
		// Reconstruct chi from sigma: Δ/σ = √2(√(χ²+ε)−χ).
		k := 1 / sigma / math.Sqrt2 // = √(χ²+ε) − χ
		chi := (eps - k*k) / (2 * k)
		lhs := math.Erfc(chi) - math.Exp(eps)*math.Erfc(math.Sqrt(chi*chi+eps))
		if math.Abs(lhs-2e-5) > 1e-8 {
			t.Fatalf("eps=%v: defining equation residual %v", eps, lhs-2e-5)
		}
	}
}

func TestAnalyticTighterThanClassic(t *testing.T) {
	for _, eps := range []float64{0.25, 0.5, 1} {
		a, err := AnalyticGaussianSigma(eps, 1e-5, 1)
		if err != nil {
			t.Fatal(err)
		}
		c := ClassicGaussianSigma(eps, 1e-5, 1)
		if a >= c {
			t.Fatalf("eps=%v: analytic sigma %v not tighter than classic %v", eps, a, c)
		}
	}
}

func TestAnalyticGaussianScalesWithSensitivity(t *testing.T) {
	s1, err := AnalyticGaussianSigma(1, 1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	s7, err := AnalyticGaussianSigma(1, 1e-5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s7-7*s1) > 1e-9*s7 {
		t.Fatalf("sigma must scale linearly with sensitivity: %v vs %v", s7, 7*s1)
	}
}

func TestAnalyticGaussianBadArgs(t *testing.T) {
	if _, err := AnalyticGaussianSigma(0, 1e-5, 1); err == nil {
		t.Fatal("eps=0 must error")
	}
	if _, err := AnalyticGaussianSigma(1, 0, 1); err == nil {
		t.Fatal("delta=0 must error")
	}
	if _, err := AnalyticGaussianSigma(1, 1e-5, 0); err == nil {
		t.Fatal("delta2=0 must error")
	}
}

func TestCalibrateSkellamMuMeetsTarget(t *testing.T) {
	d2 := 100.0
	d1 := d2 // 1-dim case
	mu, err := CalibrateSkellamMu(1.0, 1e-5, d1, d2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	eps, _ := SkellamEpsilon(d1, d2, mu, 1, 1, 1e-5, DefaultMaxAlpha)
	if eps > 1.0+1e-6 {
		t.Fatalf("calibrated mu gives eps %v > 1", eps)
	}
	// And it is nearly tight: 1% less noise must violate the target.
	epsLess, _ := SkellamEpsilon(d1, d2, mu*0.99, 1, 1, 1e-5, DefaultMaxAlpha)
	if epsLess <= 1.0 {
		t.Fatalf("mu not minimal: 0.99mu still gives eps %v", epsLess)
	}
}

func TestCalibratedSkellamMatchesGaussianVariance(t *testing.T) {
	// Headline claim: with negligible Delta1 overhead, the calibrated
	// Skellam variance 2mu approaches the calibrated Gaussian sigma^2.
	d2 := 1000.0
	mu, err := CalibrateSkellamMu(1.0, 1e-5, d2, d2, 1, 1) // d1 = d2: tiny vs d2^2
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := AnalyticGaussianSigma(1.0, 1e-5, d2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := math.Sqrt(2*mu) / sigma
	// RDP accounting is slightly looser than the analytic mechanism, so
	// expect a small constant factor, not orders of magnitude.
	if ratio < 1 || ratio > 1.6 {
		t.Fatalf("noise ratio Skellam/Gaussian = %v, want within [1, 1.6]", ratio)
	}
}

func TestCalibrateGaussianSigmaSubsampled(t *testing.T) {
	sigma, err := CalibrateGaussianSigma(1.0, 1e-5, 1, 0.01, 1000)
	if err != nil {
		t.Fatal(err)
	}
	eps, _ := GaussianEpsilon(1, sigma, 0.01, 1000, 1e-5, DefaultMaxAlpha)
	if eps > 1+1e-6 {
		t.Fatalf("eps = %v", eps)
	}
	// Subsampling must help: the same sigma without amplification over
	// the same rounds would be far over budget.
	epsFull, _ := GaussianEpsilon(1, sigma, 1, 1000, 1e-5, DefaultMaxAlpha)
	if epsFull < 10*eps {
		t.Fatalf("expected large amplification gap, got %v vs %v", epsFull, eps)
	}
}

func TestSkellamEpsilonComposesOverRounds(t *testing.T) {
	d2 := 50.0
	e1, _ := SkellamEpsilon(d2, d2, 1e6, 1, 1, 1e-5, 64)
	e10, _ := SkellamEpsilon(d2, d2, 1e6, 1, 10, 1e-5, 64)
	if e10 <= e1 {
		t.Fatalf("more rounds must cost more: %v vs %v", e10, e1)
	}
}

func TestSkellamClientEpsilon(t *testing.T) {
	d2 := 50.0
	server, _ := SkellamEpsilon(d2, d2, 1e6, 1, 1, 1e-5, 64)
	client, _ := SkellamClientEpsilon(d2, d2, 1e6, 4, 1, 1e-5, 64)
	if client <= server {
		t.Fatalf("client eps %v should exceed server eps %v", client, server)
	}
}

func TestCalibrateNoiseBadBracket(t *testing.T) {
	if _, err := CalibrateNoise(1, func(float64) float64 { return 0 }, -1, 1); err == nil {
		t.Fatal("expected bracket error")
	}
	if _, err := CalibrateNoise(1, func(float64) float64 { return math.Inf(1) }, 1, 2); err != ErrCalibration {
		t.Fatalf("expected ErrCalibration, got %v", err)
	}
}

func BenchmarkSkellamEpsilonSubsampled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SkellamEpsilon(1e6, 1e3, 1e12, 0.001, 5000, 1e-5, 64)
	}
}
