package dp

import (
	"fmt"
	"math"
	"sync"

	"sqm/internal/obs"
)

// Accountant tracks the cumulative Rényi-DP cost of heterogeneous
// mechanism invocations against one database — e.g. a covariance
// release followed by a logistic-regression training run — and converts
// the running total to (ε, δ) on demand. It holds the full RDP curve
// (one τ per integer order), so composition stays tight: Lemma 10
// composes order-wise and the conversion minimizes over orders at the
// end rather than summing per-release ε values.
//
// Accountant is safe for concurrent use.
type Accountant struct {
	mu       sync.Mutex
	maxAlpha int
	taus     []float64 // taus[i] is the cumulative tau at order i+2
	releases int

	// Ledger state (Observe/SetBudget): every release re-converts the
	// cumulative curve and reports the running ε(δ).
	rec         obs.Recorder
	epsGauge    *obs.Gauge
	ledgerDelta float64
	budgetEps   float64 // 0 means no budget threshold
}

// Observe attaches a telemetry recorder: after every recorded release
// the accountant emits a "dp.release" event carrying the running ε at
// the given δ and refreshes the "dp.epsilon" gauge. Pair with SetBudget
// to get a "dp.budget_exceeded" warning the moment the cumulative cost
// crosses the budget. A nil recorder (or one without metrics) disables
// the ledger.
func (a *Accountant) Observe(rec obs.Recorder, delta float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if rec == nil || rec.Metrics() == nil {
		a.rec, a.epsGauge = nil, nil
		return
	}
	a.rec = rec
	a.epsGauge = rec.Metrics().Gauge("dp.epsilon")
	a.ledgerDelta = delta
}

// SetBudget sets the ε threshold for the ledger's budget warning (0
// clears it).
func (a *Accountant) SetBudget(eps float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.budgetEps = eps
}

// NewAccountant tracks orders 2..maxAlpha (0 means DefaultMaxAlpha).
func NewAccountant(maxAlpha int) *Accountant {
	if maxAlpha < 2 {
		maxAlpha = DefaultMaxAlpha
	}
	return &Accountant{maxAlpha: maxAlpha, taus: make([]float64, maxAlpha-1)}
}

// Releases returns how many mechanism invocations were recorded.
func (a *Accountant) Releases() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.releases
}

// record adds one release's RDP curve. The ledger emission happens
// after the mutex is released because the ε conversion re-locks.
func (a *Accountant) record(curve Curve) {
	a.mu.Lock()
	for i := range a.taus {
		a.taus[i] += curve(i + 2)
	}
	a.releases++
	release := a.releases
	rec, gauge := a.rec, a.epsGauge
	delta, budget := a.ledgerDelta, a.budgetEps
	a.mu.Unlock()

	if rec == nil {
		return
	}
	eps, alpha := a.Epsilon(delta)
	gauge.Set(eps)
	attrs := []obs.Attr{
		obs.Int("release", release), obs.Float64("eps", eps),
		obs.Int("alpha", alpha), obs.Float64("delta", delta),
	}
	if budget > 0 {
		attrs = append(attrs, obs.Float64("remaining", budget-eps))
	}
	rec.Event(obs.LevelInfo, "dp.release", attrs...)
	if budget > 0 && eps > budget {
		rec.Event(obs.LevelWarn, "dp.budget_exceeded",
			obs.Float64("eps", eps), obs.Float64("budget", budget),
			obs.Float64("delta", delta))
	}
}

// AddSkellam records one Skellam-mechanism release (Lemma 1).
func (a *Accountant) AddSkellam(delta1, delta2, mu float64) {
	a.record(func(alpha int) float64 { return SkellamRDP(alpha, delta1, delta2, mu) })
}

// AddSubsampledSkellam records R rounds of the Poisson-subsampled
// Skellam mechanism (Lemma 7's server-side accounting).
func (a *Accountant) AddSubsampledSkellam(delta1, delta2, mu, q float64, rounds int) {
	base := func(l int) float64 { return SkellamRDP(l, delta1, delta2, mu) }
	a.record(func(alpha int) float64 {
		if q >= 1 {
			return float64(rounds) * base(alpha)
		}
		return float64(rounds) * SubsampledRDP(alpha, q, base)
	})
}

// AddGaussian records one Gaussian-mechanism release.
func (a *Accountant) AddGaussian(delta2, sigma float64) {
	a.record(func(alpha int) float64 { return GaussianRDP(float64(alpha), delta2, sigma) })
}

// AddSubsampledGaussian records R rounds of subsampled Gaussian
// (DPSGD-style).
func (a *Accountant) AddSubsampledGaussian(delta2, sigma, q float64, rounds int) {
	base := func(l int) float64 { return GaussianRDP(float64(l), delta2, sigma) }
	a.record(func(alpha int) float64 {
		if q >= 1 {
			return float64(rounds) * base(alpha)
		}
		return float64(rounds) * SubsampledRDP(alpha, q, base)
	})
}

// AddRDP records an arbitrary mechanism by its RDP curve.
func (a *Accountant) AddRDP(curve Curve) { a.record(curve) }

// Epsilon converts the cumulative curve to ε at the given δ.
func (a *Accountant) Epsilon(delta float64) (float64, int) {
	a.mu.Lock()
	taus := append([]float64(nil), a.taus...)
	a.mu.Unlock()
	return BestEpsilon(func(alpha int) float64 {
		if alpha < 2 || alpha > len(taus)+1 {
			return math.Inf(1)
		}
		return taus[alpha-2]
	}, delta, len(taus)+1)
}

// Delta converts the cumulative curve to δ at the given ε.
func (a *Accountant) Delta(eps float64) (float64, int) {
	a.mu.Lock()
	taus := append([]float64(nil), a.taus...)
	a.mu.Unlock()
	return BestDelta(func(alpha int) float64 {
		if alpha < 2 || alpha > len(taus)+1 {
			return math.Inf(1)
		}
		return taus[alpha-2]
	}, eps, len(taus)+1)
}

// Remaining reports how much ε of a total budget is left at δ; negative
// means the budget is exceeded.
func (a *Accountant) Remaining(budgetEps, delta float64) float64 {
	spent, _ := a.Epsilon(delta)
	return budgetEps - spent
}

// String summarizes the state.
func (a *Accountant) String() string {
	eps, alpha := a.Epsilon(1e-5)
	return fmt.Sprintf("dp.Accountant{releases: %d, eps(1e-5): %.4f @ alpha=%d}", a.Releases(), eps, alpha)
}
