package dp

import (
	"fmt"
	"math"
	"sync"
)

// Accountant tracks the cumulative Rényi-DP cost of heterogeneous
// mechanism invocations against one database — e.g. a covariance
// release followed by a logistic-regression training run — and converts
// the running total to (ε, δ) on demand. It holds the full RDP curve
// (one τ per integer order), so composition stays tight: Lemma 10
// composes order-wise and the conversion minimizes over orders at the
// end rather than summing per-release ε values.
//
// Accountant is safe for concurrent use.
type Accountant struct {
	mu       sync.Mutex
	maxAlpha int
	taus     []float64 // taus[i] is the cumulative tau at order i+2
	releases int
}

// NewAccountant tracks orders 2..maxAlpha (0 means DefaultMaxAlpha).
func NewAccountant(maxAlpha int) *Accountant {
	if maxAlpha < 2 {
		maxAlpha = DefaultMaxAlpha
	}
	return &Accountant{maxAlpha: maxAlpha, taus: make([]float64, maxAlpha-1)}
}

// Releases returns how many mechanism invocations were recorded.
func (a *Accountant) Releases() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.releases
}

// record adds one release's RDP curve.
func (a *Accountant) record(curve Curve) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.taus {
		a.taus[i] += curve(i + 2)
	}
	a.releases++
}

// AddSkellam records one Skellam-mechanism release (Lemma 1).
func (a *Accountant) AddSkellam(delta1, delta2, mu float64) {
	a.record(func(alpha int) float64 { return SkellamRDP(alpha, delta1, delta2, mu) })
}

// AddSubsampledSkellam records R rounds of the Poisson-subsampled
// Skellam mechanism (Lemma 7's server-side accounting).
func (a *Accountant) AddSubsampledSkellam(delta1, delta2, mu, q float64, rounds int) {
	base := func(l int) float64 { return SkellamRDP(l, delta1, delta2, mu) }
	a.record(func(alpha int) float64 {
		if q >= 1 {
			return float64(rounds) * base(alpha)
		}
		return float64(rounds) * SubsampledRDP(alpha, q, base)
	})
}

// AddGaussian records one Gaussian-mechanism release.
func (a *Accountant) AddGaussian(delta2, sigma float64) {
	a.record(func(alpha int) float64 { return GaussianRDP(float64(alpha), delta2, sigma) })
}

// AddSubsampledGaussian records R rounds of subsampled Gaussian
// (DPSGD-style).
func (a *Accountant) AddSubsampledGaussian(delta2, sigma, q float64, rounds int) {
	base := func(l int) float64 { return GaussianRDP(float64(l), delta2, sigma) }
	a.record(func(alpha int) float64 {
		if q >= 1 {
			return float64(rounds) * base(alpha)
		}
		return float64(rounds) * SubsampledRDP(alpha, q, base)
	})
}

// AddRDP records an arbitrary mechanism by its RDP curve.
func (a *Accountant) AddRDP(curve Curve) { a.record(curve) }

// Epsilon converts the cumulative curve to ε at the given δ.
func (a *Accountant) Epsilon(delta float64) (float64, int) {
	a.mu.Lock()
	taus := append([]float64(nil), a.taus...)
	a.mu.Unlock()
	return BestEpsilon(func(alpha int) float64 {
		if alpha < 2 || alpha > len(taus)+1 {
			return math.Inf(1)
		}
		return taus[alpha-2]
	}, delta, len(taus)+1)
}

// Delta converts the cumulative curve to δ at the given ε.
func (a *Accountant) Delta(eps float64) (float64, int) {
	a.mu.Lock()
	taus := append([]float64(nil), a.taus...)
	a.mu.Unlock()
	return BestDelta(func(alpha int) float64 {
		if alpha < 2 || alpha > len(taus)+1 {
			return math.Inf(1)
		}
		return taus[alpha-2]
	}, eps, len(taus)+1)
}

// Remaining reports how much ε of a total budget is left at δ; negative
// means the budget is exceeded.
func (a *Accountant) Remaining(budgetEps, delta float64) float64 {
	spent, _ := a.Epsilon(delta)
	return budgetEps - spent
}

// String summarizes the state.
func (a *Accountant) String() string {
	eps, alpha := a.Epsilon(1e-5)
	return fmt.Sprintf("dp.Accountant{releases: %d, eps(1e-5): %.4f @ alpha=%d}", a.Releases(), eps, alpha)
}
