// Package dp implements the differential-privacy accounting used by SQM
// and its baselines:
//
//   - the Rényi-DP guarantee of the Skellam mechanism (Lemma 1 of the
//     paper, from Agarwal et al. and Bao et al.),
//   - Gaussian RDP for the centralized and local baselines,
//   - RDP→(ε,δ) conversion (Lemma 9, Canonne–Kamath–Steinke),
//   - composition (Lemma 10) and privacy amplification by Poisson
//     subsampling (Lemma 11, Mironov–Talwar–Zhang / Zhu–Wang),
//   - the analytic Gaussian mechanism (Lemma 8, Balle–Wang), and
//   - calibration: the minimal Skellam parameter μ or Gaussian σ that
//     meets a target (ε, δ).
//
// All accountants work on log-space arithmetic so that large RDP values
// never overflow.
package dp

import (
	"errors"
	"fmt"
	"math"

	"sqm/internal/invariant"
	"sqm/internal/mathx"
)

// SkellamRDP returns the Rényi divergence bound τ at integer order
// alpha > 1 for releasing an integer-valued function with L1/L2
// sensitivities delta1, delta2 perturbed by Sk(mu) noise (Lemma 1,
// Eq. 2):
//
//	τ ≤ α·Δ₂²/(4μ) + min( ((2α−1)Δ₂² + 6Δ₁)/(16μ²), 3Δ₁/(4μ) ).
func SkellamRDP(alpha int, delta1, delta2, mu float64) float64 {
	if alpha < 2 {
		panic(invariant.Violation("dp: SkellamRDP needs integer alpha >= 2"))
	}
	if mu <= 0 {
		return math.Inf(1)
	}
	a := float64(alpha)
	lead := a * delta2 * delta2 / (4 * mu)
	t1 := ((2*a-1)*delta2*delta2 + 6*delta1) / (16 * mu * mu)
	t2 := 3 * delta1 / (4 * mu)
	return lead + math.Min(t1, t2)
}

// SkellamRDPClient returns the client-observed RDP bound (Lemmas 3/4).
// A curious client knows its own local noise, so the effective noise is
// Sk((n−1)/n · μ); and because the record count is public to clients,
// neighboring databases replace a record, doubling both sensitivities.
func SkellamRDPClient(alpha int, delta1, delta2, mu float64, numClients int) float64 {
	if numClients < 2 {
		return math.Inf(1)
	}
	effMu := mu * float64(numClients-1) / float64(numClients)
	return SkellamRDP(alpha, 2*delta1, 2*delta2, effMu)
}

// GaussianRDP returns the RDP of the Gaussian mechanism at order alpha
// for L2 sensitivity delta2 and noise scale sigma: τ = α·Δ₂²/(2σ²).
func GaussianRDP(alpha, delta2, sigma float64) float64 {
	if sigma <= 0 {
		return math.Inf(1)
	}
	return alpha * delta2 * delta2 / (2 * sigma * sigma)
}

// RDPToDP converts an (alpha, tau)-RDP guarantee to (ε, δ)-DP (Lemma 9):
//
//	ε = τ + ( log(1/δ) + (α−1)·log(1−1/α) − log α ) / (α−1).
func RDPToDP(alpha int, tau, delta float64) float64 {
	if alpha < 2 || delta <= 0 || delta >= 1 {
		panic(invariant.Violation("dp: invalid RDPToDP arguments alpha=%d delta=%v", alpha, delta))
	}
	a := float64(alpha)
	return tau + (math.Log(1/delta)+(a-1)*math.Log(1-1/a)-math.Log(a))/(a-1)
}

// GroupPrivacy converts a record-level (ε, δ)-DP guarantee to a
// k-record (user-level) guarantee by the standard group-privacy bound:
// ε_k = k·ε and δ_k = δ·(e^{kε} − 1)/(e^ε − 1). The paper flags
// user-level accounting as future work (§V-B); this is the baseline
// conversion a deployment can apply today when one user contributes up
// to k records.
func GroupPrivacy(eps, delta float64, k int) (float64, float64) {
	if k < 1 {
		panic(invariant.Violation("dp: group size must be >= 1"))
	}
	if k == 1 {
		return eps, delta
	}
	ke := float64(k) * eps
	// δ_k = δ Σ_{i=0}^{k-1} e^{iε} = δ(e^{kε}−1)/(e^ε−1); computed in a
	// form stable for small ε.
	var factor float64
	if eps < 1e-12 {
		factor = float64(k)
	} else {
		factor = math.Expm1(ke) / math.Expm1(eps)
	}
	dk := delta * factor
	if dk > 1 {
		dk = 1
	}
	return ke, dk
}

// DPDelta inverts Lemma 9 in the δ direction: the smallest δ for which
// an (alpha, tau)-RDP mechanism is (eps, δ)-DP. Values above 1 clamp
// to 1 (the vacuous guarantee).
func DPDelta(alpha int, tau, eps float64) float64 {
	if alpha < 2 {
		panic(invariant.Violation("dp: DPDelta needs integer alpha >= 2"))
	}
	a := float64(alpha)
	logInvDelta := (eps-tau)*(a-1) - (a-1)*math.Log(1-1/a) + math.Log(a)
	if logInvDelta <= 0 {
		return 1
	}
	return math.Exp(-logInvDelta)
}

// BestDelta minimizes DPDelta over integer orders 2..maxAlpha for a
// fixed ε.
func BestDelta(curve Curve, eps float64, maxAlpha int) (delta float64, alpha int) {
	if maxAlpha < 2 {
		maxAlpha = DefaultMaxAlpha
	}
	delta, alpha = 1, 2
	for a := 2; a <= maxAlpha; a++ {
		tau := curve(a)
		if math.IsInf(tau, 1) || math.IsNaN(tau) {
			continue
		}
		if d := DPDelta(a, tau, eps); d < delta {
			delta, alpha = d, a
		}
	}
	return delta, alpha
}

// Compose sums RDP bounds at a common order (Lemma 10).
func Compose(taus ...float64) float64 {
	var s float64
	for _, t := range taus {
		s += t
	}
	return s
}

// SubsampledRDP applies Poisson-subsampling amplification (Lemma 11) at
// integer order alpha >= 2 with sampling rate q, given the base
// mechanism's RDP curve tau(l) for l = 2..alpha:
//
//	τ' = 1/(α−1) · log( (1−q)^{α−1}(αq−q+1)
//	       + Σ_{l=2}^{α} C(α,l)(1−q)^{α−l} q^l e^{(l−1)τ_l} ).
//
// The sum is evaluated in log space so large τ_l cannot overflow.
func SubsampledRDP(alpha int, q float64, tau func(l int) float64) float64 {
	if alpha < 2 {
		panic(invariant.Violation("dp: SubsampledRDP needs integer alpha >= 2"))
	}
	if q < 0 || q > 1 {
		panic(invariant.Violation("dp: sampling rate must be in [0, 1]"))
	}
	if mathx.EqualWithin(q, 0, 0) {
		return 0
	}
	if mathx.EqualWithin(q, 1, 0) {
		return tau(alpha)
	}
	a := float64(alpha)
	logq := math.Log(q)
	log1q := math.Log1p(-q)
	// l = 0 and l = 1 terms collapse into (1-q)^{α-1}(αq - q + 1).
	acc := (a-1)*log1q + math.Log(a*q-q+1)
	for l := 2; l <= alpha; l++ {
		tl := tau(l)
		if math.IsInf(tl, 1) {
			return math.Inf(1)
		}
		term := mathx.LogBinomial(alpha, l) + float64(alpha-l)*log1q + float64(l)*logq + float64(l-1)*tl
		acc = mathx.LogAdd(acc, term)
	}
	v := acc / (a - 1)
	if v < 0 {
		// The bound is a divergence; tiny negative values are
		// floating-point artifacts of the log-space sum.
		return 0
	}
	return v
}

// Curve is an RDP curve: tau as a function of the integer order alpha.
type Curve func(alpha int) float64

// DefaultMaxAlpha bounds the order search in BestEpsilon.
const DefaultMaxAlpha = 256

// BestEpsilon converts an RDP curve to the tightest (ε, δ) guarantee by
// minimizing over integer orders 2..maxAlpha (Lemma 9 at each order).
func BestEpsilon(curve Curve, delta float64, maxAlpha int) (eps float64, alpha int) {
	if maxAlpha < 2 {
		maxAlpha = DefaultMaxAlpha
	}
	eps = math.Inf(1)
	alpha = 2
	for a := 2; a <= maxAlpha; a++ {
		tau := curve(a)
		if math.IsInf(tau, 1) || math.IsNaN(tau) {
			continue
		}
		if e := RDPToDP(a, tau, delta); e < eps {
			eps, alpha = e, a
		}
	}
	return eps, alpha
}

// ErrCalibration reports that no noise scale in the search bracket meets
// the target privacy level.
var ErrCalibration = errors.New("dp: calibration target unreachable in search bracket")

// CalibrateNoise finds the minimal noise scale s (μ for Skellam, σ for
// Gaussian — anything with eps monotone non-increasing in s) such that
// the mechanism's ε at privacy parameter δ is at most targetEps.
// epsAt(s) must return the converted ε for scale s. The search runs over
// the multiplicative bracket [lo, hi].
func CalibrateNoise(targetEps float64, epsAt func(scale float64) float64, lo, hi float64) (float64, error) {
	if lo <= 0 || hi <= lo {
		return 0, fmt.Errorf("dp: invalid bracket [%v, %v]", lo, hi)
	}
	pred := func(logS float64) bool { return epsAt(math.Exp(logS)) <= targetEps }
	logS, ok := mathx.BisectMonotone(pred, math.Log(lo), math.Log(hi), 60)
	if !ok {
		return 0, ErrCalibration
	}
	return math.Exp(logS), nil
}

// SkellamEpsilon is the server-observed (ε, δ) of R adaptive invocations
// of the Skellam mechanism with Poisson subsampling rate q (q = 1 or
// rounds without subsampling compose directly). It is the accountant
// behind Lemma 7's τ_server.
func SkellamEpsilon(delta1, delta2, mu, q float64, rounds int, delta float64, maxAlpha int) (float64, int) {
	base := func(l int) float64 { return SkellamRDP(l, delta1, delta2, mu) }
	curve := func(a int) float64 {
		var perRound float64
		if q >= 1 {
			perRound = base(a)
		} else {
			perRound = SubsampledRDP(a, q, base)
		}
		return float64(rounds) * perRound
	}
	return BestEpsilon(curve, delta, maxAlpha)
}

// SkellamClientEpsilon is the client-observed (ε, δ) over R rounds
// (subsampling does not amplify against clients, who know the batch —
// Lemma 7's τ_client).
func SkellamClientEpsilon(delta1, delta2, mu float64, numClients, rounds int, delta float64, maxAlpha int) (float64, int) {
	curve := func(a int) float64 {
		return float64(rounds) * SkellamRDPClient(a, delta1, delta2, mu, numClients)
	}
	return BestEpsilon(curve, delta, maxAlpha)
}

// CalibrateSkellamMu returns the minimal Skellam parameter μ whose
// server-observed ε (with subsampling rate q over the given rounds) is
// at most targetEps at privacy parameter delta.
func CalibrateSkellamMu(targetEps, delta, delta1, delta2, q float64, rounds int) (float64, error) {
	epsAt := func(mu float64) float64 {
		e, _ := SkellamEpsilon(delta1, delta2, mu, q, rounds, delta, DefaultMaxAlpha)
		return e
	}
	return CalibrateNoise(targetEps, epsAt, 1e-9, 1e40)
}

// GaussianEpsilon is the (ε, δ) of R rounds of the (optionally
// subsampled) Gaussian mechanism — the accountant used for DPSGD.
func GaussianEpsilon(delta2, sigma, q float64, rounds int, delta float64, maxAlpha int) (float64, int) {
	base := func(l int) float64 { return GaussianRDP(float64(l), delta2, sigma) }
	curve := func(a int) float64 {
		var perRound float64
		if q >= 1 {
			perRound = base(a)
		} else {
			perRound = SubsampledRDP(a, q, base)
		}
		return float64(rounds) * perRound
	}
	return BestEpsilon(curve, delta, maxAlpha)
}

// CalibrateGaussianSigma returns the minimal σ for the (subsampled,
// composed) Gaussian mechanism meeting (targetEps, delta).
func CalibrateGaussianSigma(targetEps, delta, delta2, q float64, rounds int) (float64, error) {
	epsAt := func(sigma float64) float64 {
		e, _ := GaussianEpsilon(delta2, sigma, q, rounds, delta, DefaultMaxAlpha)
		return e
	}
	return CalibrateNoise(targetEps, epsAt, 1e-9, 1e30)
}

// AnalyticGaussianSigma returns the minimal σ such that adding
// N(0, σ²·I) to a function with L2 sensitivity delta2 satisfies
// (ε, δ)-DP, per the analytic Gaussian mechanism (Lemma 8): σ = Δ /
// (√2(√(χ²+ε) − χ)) where χ solves erfc(χ) − e^ε·erfc(√(χ²+ε)) = 2δ.
func AnalyticGaussianSigma(eps, delta, delta2 float64) (float64, error) {
	if eps <= 0 || delta <= 0 || delta >= 1 || delta2 <= 0 {
		return 0, fmt.Errorf("dp: invalid analytic Gaussian arguments eps=%v delta=%v delta2=%v", eps, delta, delta2)
	}
	f := func(chi float64) float64 {
		return math.Erfc(chi) - math.Exp(eps)*math.Erfc(math.Sqrt(chi*chi+eps)) - 2*delta
	}
	// f decreases from ~2-2δ (χ→−∞) to −2δ (χ→+∞); bracket generously.
	lo, hi := -30.0, 200.0
	chi, err := mathx.Bisect(f, lo, hi, 200)
	if err != nil {
		return 0, fmt.Errorf("dp: analytic Gaussian bracket failed: %w", err)
	}
	denom := math.Sqrt2 * (math.Sqrt(chi*chi+eps) - chi)
	if denom <= 0 {
		return 0, errors.New("dp: analytic Gaussian produced non-positive denominator")
	}
	return delta2 / denom, nil
}

// ClassicGaussianSigma is the textbook calibration
// σ = Δ·√(2·ln(1.25/δ))/ε (valid for ε <= 1; looser than the analytic
// mechanism). Retained for cross-checks in tests.
func ClassicGaussianSigma(eps, delta, delta2 float64) float64 {
	return delta2 * math.Sqrt(2*math.Log(1.25/delta)) / eps
}
