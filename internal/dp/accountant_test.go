package dp

import (
	"math"
	"strings"
	"sync"
	"testing"

	"sqm/internal/obs"
)

func TestAccountantEmpty(t *testing.T) {
	a := NewAccountant(0)
	if a.Releases() != 0 {
		t.Fatal("fresh accountant has releases")
	}
	eps, _ := a.Epsilon(1e-5)
	// Zero RDP cost: only the delta conversion term remains, which is
	// minimized at the largest alpha and positive.
	if eps <= 0 || eps > math.Log(1e5) {
		t.Fatalf("empty eps = %v", eps)
	}
}

func TestAccountantSingleSkellamMatchesDirect(t *testing.T) {
	a := NewAccountant(64)
	a.AddSkellam(100, 100, 1e6)
	got, _ := a.Epsilon(1e-5)
	want, _ := SkellamEpsilon(100, 100, 1e6, 1, 1, 1e-5, 64)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("accountant %v vs direct %v", got, want)
	}
}

func TestAccountantComposesTighterThanEpsSum(t *testing.T) {
	// Order-wise RDP composition must beat naive ε addition.
	a := NewAccountant(128)
	for i := 0; i < 4; i++ {
		a.AddGaussian(1, 10)
	}
	composed, _ := a.Epsilon(1e-5)
	single, _ := GaussianEpsilon(1, 10, 1, 1, 1e-5, 128)
	if composed >= 4*single {
		t.Fatalf("composed %v not tighter than 4x single %v", composed, 4*single)
	}
	// And it matches the 4-round direct accountant exactly.
	direct, _ := GaussianEpsilon(1, 10, 1, 4, 1e-5, 128)
	if math.Abs(composed-direct) > 1e-12 {
		t.Fatalf("composed %v vs direct 4-round %v", composed, direct)
	}
}

func TestAccountantHeterogeneousReleases(t *testing.T) {
	// PCA covariance (Skellam) + DPSGD training (subsampled Gaussian):
	// the combined epsilon exceeds each part and is below their sum of
	// independent conversions... the latter only guaranteed for RDP
	// curves; check ordering invariants.
	a := NewAccountant(64)
	a.AddSkellam(1e4, 1e4, 1e12)
	partial, _ := a.Epsilon(1e-5)
	a.AddSubsampledGaussian(1, 3, 0.01, 500)
	total, _ := a.Epsilon(1e-5)
	if total <= partial {
		t.Fatalf("adding a release cannot lower eps: %v -> %v", partial, total)
	}
	if a.Releases() != 2 {
		t.Fatalf("releases = %d", a.Releases())
	}
}

func TestAccountantSubsampledSkellamMatchesLemma7Path(t *testing.T) {
	a := NewAccountant(64)
	a.AddSubsampledSkellam(1e6, 1e3, 1e12, 0.001, 2000)
	got, _ := a.Epsilon(1e-5)
	want, _ := SkellamEpsilon(1e6, 1e3, 1e12, 0.001, 2000, 1e-5, 64)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("accountant %v vs direct %v", got, want)
	}
}

func TestAccountantDeltaDirection(t *testing.T) {
	a := NewAccountant(64)
	a.AddGaussian(1, 5)
	eps, _ := a.Epsilon(1e-5)
	delta, _ := a.Delta(eps)
	if delta > 1e-5*1.01 {
		t.Fatalf("Delta(Epsilon(1e-5)) = %v", delta)
	}
}

func TestAccountantRemaining(t *testing.T) {
	a := NewAccountant(64)
	a.AddGaussian(1, 2)
	rem := a.Remaining(10, 1e-5)
	spent, _ := a.Epsilon(1e-5)
	if math.Abs(rem-(10-spent)) > 1e-12 {
		t.Fatalf("Remaining = %v, spent = %v", rem, spent)
	}
	a.AddGaussian(1, 0.01) // blow the budget
	if a.Remaining(1, 1e-5) >= 0 {
		t.Fatal("budget should be exceeded")
	}
}

func TestAccountantAddRDPAndString(t *testing.T) {
	a := NewAccountant(32)
	a.AddRDP(func(alpha int) float64 { return 0.01 * float64(alpha) })
	if s := a.String(); !strings.Contains(s, "releases: 1") {
		t.Fatalf("String = %q", s)
	}
}

func TestAccountantConcurrentUse(t *testing.T) {
	a := NewAccountant(32)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.AddGaussian(1, 20)
			a.Epsilon(1e-5)
		}()
	}
	wg.Wait()
	if a.Releases() != 16 {
		t.Fatalf("releases = %d", a.Releases())
	}
	// Deterministic total regardless of interleaving.
	got, _ := a.Epsilon(1e-5)
	want, _ := GaussianEpsilon(1, 20, 1, 16, 1e-5, 32)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("concurrent total %v vs direct %v", got, want)
	}
}

// ledgerRecorder captures events in order for the ledger tests while
// carrying a real metrics registry.
type ledgerRecorder struct {
	metrics *obs.Metrics
	mu      sync.Mutex
	names   []string
	attrs   []map[string]any
}

func newLedgerRecorder() *ledgerRecorder {
	return &ledgerRecorder{metrics: obs.NewMetrics()}
}

func (r *ledgerRecorder) Enabled(obs.Level) bool { return true }
func (r *ledgerRecorder) Metrics() *obs.Metrics  { return r.metrics }
func (r *ledgerRecorder) Event(_ obs.Level, name string, attrs ...obs.Attr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	r.names = append(r.names, name)
	r.attrs = append(r.attrs, m)
}

func TestAccountantLedgerEmissionOrder(t *testing.T) {
	rec := newLedgerRecorder()
	a := NewAccountant(32)
	a.Observe(rec, 1e-5)
	a.AddGaussian(1, 20)
	a.AddGaussian(1, 20)
	a.AddSkellam(100, 100, 1e6)
	if len(rec.names) != 3 {
		t.Fatalf("events = %v, want 3 dp.release", rec.names)
	}
	for i, name := range rec.names {
		if name != "dp.release" {
			t.Fatalf("event %d = %q", i, name)
		}
		if got := rec.attrs[i]["release"]; got != int64(i+1) {
			t.Fatalf("event %d release attr = %v", i, got)
		}
	}
	// The gauge mirrors the last emitted eps.
	eps, _ := a.Epsilon(1e-5)
	if g := rec.metrics.Gauge("dp.epsilon").Value(); math.Abs(g-eps) > 1e-12 {
		t.Fatalf("gauge %v vs eps %v", g, eps)
	}
}

func TestAccountantLedgerBudgetWarning(t *testing.T) {
	rec := newLedgerRecorder()
	a := NewAccountant(32)
	a.Observe(rec, 1e-5)
	a.AddGaussian(1, 20)
	first, _ := a.Epsilon(1e-5)
	a.SetBudget(first * 3) // above the single-release cost
	for _, name := range rec.names {
		if name == "dp.budget_exceeded" {
			t.Fatal("warning fired below budget")
		}
	}
	// Compose releases until the cumulative eps crosses the budget.
	for i := 0; i < 32; i++ {
		a.AddGaussian(1, 20)
		if eps, _ := a.Epsilon(1e-5); eps > first*3 {
			break
		}
	}
	var warned bool
	for i, name := range rec.names {
		if name == "dp.budget_exceeded" {
			warned = true
			if rec.attrs[i]["budget"] != first*3 {
				t.Fatalf("warn budget attr = %v", rec.attrs[i]["budget"])
			}
		}
	}
	if !warned {
		t.Fatal("budget warning never fired")
	}
}

func TestAccountantLedgerEpsilonMonotone(t *testing.T) {
	rec := newLedgerRecorder()
	a := NewAccountant(32)
	a.Observe(rec, 1e-5)
	for i := 0; i < 8; i++ {
		a.AddSubsampledSkellam(100, 100, 1e6, 0.01, 10)
	}
	var prev float64
	for i, attrs := range rec.attrs {
		eps, ok := attrs["eps"].(float64)
		if !ok {
			t.Fatalf("event %d missing eps attr: %v", i, attrs)
		}
		if eps < prev {
			t.Fatalf("eps not monotone under composition: release %d has %v < %v", i+1, eps, prev)
		}
		prev = eps
	}
}

func TestAccountantObserveNopRecorderDisables(t *testing.T) {
	a := NewAccountant(32)
	a.Observe(obs.Nop(), 1e-5) // no metrics registry -> ledger off
	a.AddGaussian(1, 20)       // must not panic or emit
	if a.Releases() != 1 {
		t.Fatalf("releases = %d", a.Releases())
	}
}
