package dp

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestAccountantEmpty(t *testing.T) {
	a := NewAccountant(0)
	if a.Releases() != 0 {
		t.Fatal("fresh accountant has releases")
	}
	eps, _ := a.Epsilon(1e-5)
	// Zero RDP cost: only the delta conversion term remains, which is
	// minimized at the largest alpha and positive.
	if eps <= 0 || eps > math.Log(1e5) {
		t.Fatalf("empty eps = %v", eps)
	}
}

func TestAccountantSingleSkellamMatchesDirect(t *testing.T) {
	a := NewAccountant(64)
	a.AddSkellam(100, 100, 1e6)
	got, _ := a.Epsilon(1e-5)
	want, _ := SkellamEpsilon(100, 100, 1e6, 1, 1, 1e-5, 64)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("accountant %v vs direct %v", got, want)
	}
}

func TestAccountantComposesTighterThanEpsSum(t *testing.T) {
	// Order-wise RDP composition must beat naive ε addition.
	a := NewAccountant(128)
	for i := 0; i < 4; i++ {
		a.AddGaussian(1, 10)
	}
	composed, _ := a.Epsilon(1e-5)
	single, _ := GaussianEpsilon(1, 10, 1, 1, 1e-5, 128)
	if composed >= 4*single {
		t.Fatalf("composed %v not tighter than 4x single %v", composed, 4*single)
	}
	// And it matches the 4-round direct accountant exactly.
	direct, _ := GaussianEpsilon(1, 10, 1, 4, 1e-5, 128)
	if math.Abs(composed-direct) > 1e-12 {
		t.Fatalf("composed %v vs direct 4-round %v", composed, direct)
	}
}

func TestAccountantHeterogeneousReleases(t *testing.T) {
	// PCA covariance (Skellam) + DPSGD training (subsampled Gaussian):
	// the combined epsilon exceeds each part and is below their sum of
	// independent conversions... the latter only guaranteed for RDP
	// curves; check ordering invariants.
	a := NewAccountant(64)
	a.AddSkellam(1e4, 1e4, 1e12)
	partial, _ := a.Epsilon(1e-5)
	a.AddSubsampledGaussian(1, 3, 0.01, 500)
	total, _ := a.Epsilon(1e-5)
	if total <= partial {
		t.Fatalf("adding a release cannot lower eps: %v -> %v", partial, total)
	}
	if a.Releases() != 2 {
		t.Fatalf("releases = %d", a.Releases())
	}
}

func TestAccountantSubsampledSkellamMatchesLemma7Path(t *testing.T) {
	a := NewAccountant(64)
	a.AddSubsampledSkellam(1e6, 1e3, 1e12, 0.001, 2000)
	got, _ := a.Epsilon(1e-5)
	want, _ := SkellamEpsilon(1e6, 1e3, 1e12, 0.001, 2000, 1e-5, 64)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("accountant %v vs direct %v", got, want)
	}
}

func TestAccountantDeltaDirection(t *testing.T) {
	a := NewAccountant(64)
	a.AddGaussian(1, 5)
	eps, _ := a.Epsilon(1e-5)
	delta, _ := a.Delta(eps)
	if delta > 1e-5*1.01 {
		t.Fatalf("Delta(Epsilon(1e-5)) = %v", delta)
	}
}

func TestAccountantRemaining(t *testing.T) {
	a := NewAccountant(64)
	a.AddGaussian(1, 2)
	rem := a.Remaining(10, 1e-5)
	spent, _ := a.Epsilon(1e-5)
	if math.Abs(rem-(10-spent)) > 1e-12 {
		t.Fatalf("Remaining = %v, spent = %v", rem, spent)
	}
	a.AddGaussian(1, 0.01) // blow the budget
	if a.Remaining(1, 1e-5) >= 0 {
		t.Fatal("budget should be exceeded")
	}
}

func TestAccountantAddRDPAndString(t *testing.T) {
	a := NewAccountant(32)
	a.AddRDP(func(alpha int) float64 { return 0.01 * float64(alpha) })
	if s := a.String(); !strings.Contains(s, "releases: 1") {
		t.Fatalf("String = %q", s)
	}
}

func TestAccountantConcurrentUse(t *testing.T) {
	a := NewAccountant(32)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.AddGaussian(1, 20)
			a.Epsilon(1e-5)
		}()
	}
	wg.Wait()
	if a.Releases() != 16 {
		t.Fatalf("releases = %d", a.Releases())
	}
	// Deterministic total regardless of interleaving.
	got, _ := a.Epsilon(1e-5)
	want, _ := GaussianEpsilon(1, 20, 1, 16, 1e-5, 32)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("concurrent total %v vs direct %v", got, want)
	}
}
