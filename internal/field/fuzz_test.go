package field

import (
	"math/big"
	"testing"
)

// FuzzMulMatchesBigInt cross-checks the Mersenne-fold multiplication
// against math/big on arbitrary operands.
func FuzzMulMatchesBigInt(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(Modulus-1))
	f.Add(uint64(Modulus-1), uint64(Modulus-1))
	f.Add(uint64(1<<60), uint64(1<<60))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		x := Elem(a % Modulus)
		y := Elem(b % Modulus)
		got := Mul(x, y)
		want := new(big.Int).Mul(new(big.Int).SetUint64(uint64(x)), new(big.Int).SetUint64(uint64(y)))
		want.Mod(want, new(big.Int).SetUint64(Modulus))
		if uint64(got) != want.Uint64() {
			t.Fatalf("Mul(%d, %d) = %d, want %d", x, y, got, want.Uint64())
		}
	})
}

// FuzzSignedEmbedding checks that every in-range signed value round
// trips.
func FuzzSignedEmbedding(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(-1))
	f.Add(MaxSignedValue)
	f.Add(-MaxSignedValue)
	f.Fuzz(func(t *testing.T, v int64) {
		if v > MaxSignedValue || v < -MaxSignedValue {
			return
		}
		if got := ToInt64(FromInt64(v)); got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	})
}
