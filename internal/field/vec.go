package field

import (
	"math/bits"

	"sqm/internal/invariant"
)

// Batch kernels. The per-level share arithmetic of the BGW engines —
// pointwise share products, Lagrange folds, fused inner products —
// spends nearly all protocol wall-clock in tight loops over []Elem.
// These kernels are the one sanctioned way to run those loops: the
// Mersenne fold is inlined so the reduction pipelines across iterations
// instead of paying a call per element, and every kernel is branchless
// in the element values (the ctbranch requirement: field elements carry
// share and noise material, so control flow must not depend on them —
// only on public lengths and indices).
//
// Conventions shared by all kernels:
//   - dst may alias a or b (in-place updates are the common case).
//   - Length mismatches are programming errors and panic via
//     invariant.Violation; zero-length inputs are no-ops.
//   - Inputs must be canonical (0 <= e < Modulus), as produced by every
//     constructor in this package; outputs are canonical.

// checkLen2 panics unless a batch kernel's operands agree in length.
func checkLen2(op string, dst, a, b int) {
	if dst != a || dst != b {
		panic(invariant.Violation("field: %s length mismatch (dst %d, a %d, b %d)", op, dst, a, b))
	}
}

// AddVec sets dst[i] = a[i] + b[i] mod p for every element.
func AddVec(dst, a, b []Elem) {
	checkLen2("AddVec", len(dst), len(a), len(b))
	for i := range dst {
		v := uint64(a[i]) + uint64(b[i])
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		dst[i] = Elem(v)
	}
}

// SubVec sets dst[i] = a[i] − b[i] mod p for every element.
func SubVec(dst, a, b []Elem) {
	checkLen2("SubVec", len(dst), len(a), len(b))
	for i := range dst {
		v := uint64(a[i]) + Modulus - uint64(b[i])
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		dst[i] = Elem(v)
	}
}

// MulVec sets dst[i] = a[i] · b[i] mod p for every element — the
// pointwise share product that opens every multiplicative BGW gate.
func MulVec(dst, a, b []Elem) {
	checkLen2("MulVec", len(dst), len(a), len(b))
	for i := range dst {
		hi, lo := bits.Mul64(uint64(a[i]), uint64(b[i]))
		v := (lo & Modulus) + (hi<<3 | lo>>61)
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		dst[i] = Elem(v)
	}
}

// MulConstVec sets dst[i] = c · a[i] mod p for every element.
func MulConstVec(dst, a []Elem, c Elem) {
	if len(dst) != len(a) {
		panic(invariant.Violation("field: MulConstVec length mismatch (dst %d, a %d)", len(dst), len(a)))
	}
	cu := uint64(c)
	for i := range dst {
		hi, lo := bits.Mul64(uint64(a[i]), cu)
		v := (lo & Modulus) + (hi<<3 | lo>>61)
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		dst[i] = Elem(v)
	}
}

// AddConstVec sets dst[i] = a[i] + c mod p for every element.
func AddConstVec(dst, a []Elem, c Elem) {
	if len(dst) != len(a) {
		panic(invariant.Violation("field: AddConstVec length mismatch (dst %d, a %d)", len(dst), len(a)))
	}
	cu := uint64(c)
	for i := range dst {
		v := uint64(a[i]) + cu
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		dst[i] = Elem(v)
	}
}

// MulAddVec sets dst[i] += c · a[i] mod p for every element — the axpy
// kernel of the Lagrange fold: resharing and opening both accumulate
// weight-scaled sub-shares into a running vector.
func MulAddVec(dst, a []Elem, c Elem) {
	if len(dst) != len(a) {
		panic(invariant.Violation("field: MulAddVec length mismatch (dst %d, a %d)", len(dst), len(a)))
	}
	cu := uint64(c)
	for i := range dst {
		hi, lo := bits.Mul64(uint64(a[i]), cu)
		v := (lo & Modulus) + (hi<<3 | lo>>61)
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		v += uint64(dst[i])
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		dst[i] = Elem(v)
	}
}

// MulAccVec sets dst[i] += a[i] · b[i] mod p for every element — the
// pointwise multiply-accumulate that folds one operand pair of a fused
// inner-product gate into the per-party accumulator.
func MulAccVec(dst, a, b []Elem) {
	checkLen2("MulAccVec", len(dst), len(a), len(b))
	for i := range dst {
		hi, lo := bits.Mul64(uint64(a[i]), uint64(b[i]))
		v := (lo & Modulus) + (hi<<3 | lo>>61)
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		v += uint64(dst[i])
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		dst[i] = Elem(v)
	}
}

// DotAcc returns acc + Σ_i a[i]·b[i] mod p — the fused inner-product
// kernel. Each product is reduced before it joins the running sum, so
// the accumulator stays canonical at every step and the result is
// bit-identical to folding Add(acc, Mul(a[i], b[i])) left to right.
func DotAcc(acc Elem, a, b []Elem) Elem {
	if len(a) != len(b) {
		panic(invariant.Violation("field: DotAcc length mismatch (a %d, b %d)", len(a), len(b)))
	}
	s := uint64(acc)
	for i := range a {
		hi, lo := bits.Mul64(uint64(a[i]), uint64(b[i]))
		v := (lo & Modulus) + (hi<<3 | lo>>61)
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		v -= Modulus & (((v - Modulus) >> 63) - 1)
		s += v
		s -= Modulus & (((s - Modulus) >> 63) - 1)
	}
	return Elem(s)
}
