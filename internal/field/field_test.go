package field

import (
	"math/big"
	"testing"
	"testing/quick"

	"sqm/internal/randx"
)

var bigP = new(big.Int).SetUint64(Modulus)

func refMul(a, b Elem) Elem {
	x := new(big.Int).SetUint64(uint64(a))
	y := new(big.Int).SetUint64(uint64(b))
	x.Mul(x, y).Mod(x, bigP)
	return Elem(x.Uint64())
}

func TestModulusIsPrimeMersenne(t *testing.T) {
	if Modulus != (1<<61)-1 {
		t.Fatal("unexpected modulus")
	}
	if !new(big.Int).SetUint64(Modulus).ProbablyPrime(32) {
		t.Fatal("modulus is not prime")
	}
}

func TestAddSubNegBasics(t *testing.T) {
	a, b := Elem(Modulus-1), Elem(5)
	if got := Add(a, b); got != 4 {
		t.Fatalf("Add wraps wrong: %d", got)
	}
	if got := Sub(b, a); got != Elem(6) {
		t.Fatalf("Sub = %d", got)
	}
	if got := Add(a, Neg(a)); got != 0 {
		t.Fatalf("a + (-a) = %d", got)
	}
	if Neg(0) != 0 {
		t.Fatal("Neg(0) != 0")
	}
}

func TestMulAgainstBigInt(t *testing.T) {
	g := randx.New(1)
	for i := 0; i < 2000; i++ {
		a, b := Rand(g), Rand(g)
		if got, want := Mul(a, b), refMul(a, b); got != want {
			t.Fatalf("Mul(%d, %d) = %d, want %d", a, b, got, want)
		}
	}
	// Adversarial corners.
	edge := []Elem{0, 1, 2, Elem(Modulus - 1), Elem(Modulus - 2), Elem(1 << 60)}
	for _, a := range edge {
		for _, b := range edge {
			if got, want := Mul(a, b), refMul(a, b); got != want {
				t.Fatalf("Mul(%d, %d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	g := randx.New(2)
	f := func(seed uint64) bool {
		gg := randx.New(seed)
		a, b, c := Rand(gg), Rand(gg), Rand(gg)
		// Commutativity, associativity, distributivity.
		if Add(a, b) != Add(b, a) || Mul(a, b) != Mul(b, a) {
			return false
		}
		if Add(Add(a, b), c) != Add(a, Add(b, c)) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	_ = g
}

func TestInv(t *testing.T) {
	g := randx.New(3)
	for i := 0; i < 200; i++ {
		a := Rand(g)
		if a == 0 {
			continue
		}
		if Mul(a, Inv(a)) != 1 {
			t.Fatalf("a * a^{-1} != 1 for a = %d", a)
		}
	}
	if Inv(1) != 1 {
		t.Fatal("Inv(1) != 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) must panic")
		}
	}()
	Inv(0)
}

func TestExp(t *testing.T) {
	if Exp(3, 0) != 1 {
		t.Fatal("a^0 != 1")
	}
	if Exp(3, 4) != 81 {
		t.Fatalf("3^4 = %d", Exp(3, 4))
	}
	// Fermat: a^{p-1} = 1.
	g := randx.New(4)
	for i := 0; i < 20; i++ {
		a := Rand(g)
		if a == 0 {
			continue
		}
		if Exp(a, Modulus-1) != 1 {
			t.Fatalf("Fermat fails for %d", a)
		}
	}
}

func TestSignedEmbeddingRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 42, -42, MaxSignedValue, -MaxSignedValue, 1 << 40, -(1 << 40)}
	for _, v := range vals {
		if got := ToInt64(FromInt64(v)); got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}

func TestSignedEmbeddingHomomorphic(t *testing.T) {
	f := func(a, b int32, c, d int16) bool {
		x, y := int64(a), int64(b)
		if ToInt64(Add(FromInt64(x), FromInt64(y))) != x+y {
			return false
		}
		// Keep the product inside the signed embedding range |v| <= p/2.
		u, v := int64(c), int64(d)
		return ToInt64(Mul(FromInt64(u), FromInt64(v))) == u*v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignedEmbeddingOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromInt64(MaxSignedValue + 1)
}

func TestRandUniformity(t *testing.T) {
	// Coarse uniformity: mean of samples ~ p/2.
	g := randx.New(5)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(Rand(g))
	}
	mean := sum / n
	mid := float64(Modulus) / 2
	if mean < 0.97*mid || mean > 1.03*mid {
		t.Fatalf("mean = %v, want ~%v", mean, mid)
	}
}

func BenchmarkMul(b *testing.B) {
	g := randx.New(1)
	x, y := Rand(g), Rand(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	g := randx.New(1)
	x := Rand(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Inv(x + 1)
	}
}
