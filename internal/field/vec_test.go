package field

import (
	"math/big"
	"math/rand"
	"testing"
)

// bigMod is the reference modulus for the math/big oracle.
func bigMod() *big.Int { return new(big.Int).SetUint64(Modulus) }

// refBinop folds two vectors through a math/big binary operation mod p.
func refBinop(a, b []Elem, op func(z, x, y *big.Int) *big.Int) []Elem {
	out := make([]Elem, len(a))
	m := bigMod()
	z := new(big.Int)
	for i := range a {
		z = op(z, new(big.Int).SetUint64(uint64(a[i])), new(big.Int).SetUint64(uint64(b[i])))
		z.Mod(z, m)
		out[i] = Elem(z.Uint64())
	}
	return out
}

// refDot computes acc + Σ a[i]·b[i] with math/big.
func refDot(acc Elem, a, b []Elem) Elem {
	m := bigMod()
	s := new(big.Int).SetUint64(uint64(acc))
	for i := range a {
		t := new(big.Int).Mul(new(big.Int).SetUint64(uint64(a[i])), new(big.Int).SetUint64(uint64(b[i])))
		s.Add(s, t)
	}
	s.Mod(s, m)
	return Elem(s.Uint64())
}

// boundaryElems are the values where the branchless reductions are most
// likely to break: zero, one, both sides of p/2 (the signed-embedding
// split) and both sides of the modulus.
var boundaryElems = []Elem{0, 1, 2, Elem(Modulus / 2), Elem(Modulus/2 + 1), Elem(Modulus - 2), Elem(Modulus - 1)}

// randVec draws a canonical vector mixing uniform and boundary values.
func randVec(rng *rand.Rand, n int) []Elem {
	out := make([]Elem, n)
	for i := range out {
		if rng.Intn(4) == 0 {
			out[i] = boundaryElems[rng.Intn(len(boundaryElems))]
		} else {
			out[i] = Elem(rng.Uint64() % Modulus)
		}
	}
	return out
}

func eqVec(t *testing.T, name string, got, want []Elem) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
}

// TestVecKernelsMatchBigInt is the quickcheck-style property test:
// every batch kernel must agree with the math/big oracle over random
// vectors laced with modulus-boundary values, including length 0.
func TestVecKernelsMatchBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := trial % 17 // exercises 0-length every 17th trial
		a := randVec(rng, n)
		b := randVec(rng, n)
		c := Elem(rng.Uint64() % Modulus)
		acc := Elem(rng.Uint64() % Modulus)

		dst := make([]Elem, n)
		AddVec(dst, a, b)
		eqVec(t, "AddVec", dst, refBinop(a, b, func(z, x, y *big.Int) *big.Int { return z.Add(x, y) }))

		SubVec(dst, a, b)
		eqVec(t, "SubVec", dst, refBinop(a, b, func(z, x, y *big.Int) *big.Int { return z.Sub(x, y) }))

		MulVec(dst, a, b)
		eqVec(t, "MulVec", dst, refBinop(a, b, func(z, x, y *big.Int) *big.Int { return z.Mul(x, y) }))

		cs := make([]Elem, n)
		for i := range cs {
			cs[i] = c
		}
		MulConstVec(dst, a, c)
		eqVec(t, "MulConstVec", dst, refBinop(a, cs, func(z, x, y *big.Int) *big.Int { return z.Mul(x, y) }))

		AddConstVec(dst, a, c)
		eqVec(t, "AddConstVec", dst, refBinop(a, cs, func(z, x, y *big.Int) *big.Int { return z.Add(x, y) }))

		// MulAddVec: dst starts as b, accumulates c·a.
		copy(dst, b)
		MulAddVec(dst, a, c)
		want := make([]Elem, n)
		for i := range want {
			want[i] = Add(b[i], Mul(c, a[i]))
		}
		eqVec(t, "MulAddVec", dst, want)

		// MulAccVec: dst starts as cs, accumulates a·b pointwise.
		copy(dst, cs)
		MulAccVec(dst, a, b)
		for i := range want {
			want[i] = Add(cs[i], Mul(a[i], b[i]))
		}
		eqVec(t, "MulAccVec", dst, want)

		if got, ref := DotAcc(acc, a, b), refDot(acc, a, b); got != ref {
			t.Fatalf("DotAcc = %d, want %d (n=%d)", got, ref, n)
		}
	}
}

// TestVecKernelsMatchScalarHelpers pins the kernels to the scalar
// helpers: bit-identical results element by element, which is what lets
// the BGW engines swap loops for kernels without changing any share.
func TestVecKernelsMatchScalarHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randVec(rng, 257)
	b := randVec(rng, 257)
	c := Elem(rng.Uint64() % Modulus)

	dst := make([]Elem, len(a))
	MulVec(dst, a, b)
	var acc Elem
	for i := range a {
		if want := Mul(a[i], b[i]); dst[i] != want {
			t.Fatalf("MulVec[%d] = %d, want Mul = %d", i, dst[i], want)
		}
		acc = Add(acc, Mul(a[i], b[i]))
	}
	if got := DotAcc(0, a, b); got != acc {
		t.Fatalf("DotAcc = %d, scalar fold = %d", got, acc)
	}
	MulConstVec(dst, a, c)
	for i := range a {
		if want := Mul(c, a[i]); dst[i] != want {
			t.Fatalf("MulConstVec[%d] = %d, want %d", i, dst[i], want)
		}
	}
}

// TestVecKernelsAliasing verifies the documented dst-aliases-operand
// contract (the in-place update shape the engines use).
func TestVecKernelsAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randVec(rng, 64)
	b := randVec(rng, 64)
	want := make([]Elem, len(a))
	MulVec(want, a, b)
	got := append([]Elem(nil), a...)
	MulVec(got, got, b)
	eqVec(t, "MulVec aliased", got, want)

	AddVec(want, a, b)
	got = append([]Elem(nil), b...)
	AddVec(got, a, got)
	eqVec(t, "AddVec aliased", got, want)
}

// TestVecKernelsZeroLength pins the no-op contract for empty slices.
func TestVecKernelsZeroLength(t *testing.T) {
	AddVec(nil, nil, nil)
	SubVec(nil, nil, nil)
	MulVec(nil, nil, nil)
	MulConstVec(nil, nil, 3)
	AddConstVec(nil, nil, 3)
	MulAddVec(nil, nil, 3)
	MulAccVec(nil, nil, nil)
	if got := DotAcc(17, nil, nil); got != 17 {
		t.Fatalf("DotAcc over empty vectors = %d, want the accumulator back", got)
	}
}

// TestVecKernelsLengthMismatchPanics pins the invariant panics.
func TestVecKernelsLengthMismatchPanics(t *testing.T) {
	cases := map[string]func(){
		"AddVec":      func() { AddVec(make([]Elem, 2), make([]Elem, 3), make([]Elem, 3)) },
		"SubVec":      func() { SubVec(make([]Elem, 3), make([]Elem, 2), make([]Elem, 3)) },
		"MulVec":      func() { MulVec(make([]Elem, 3), make([]Elem, 3), make([]Elem, 2)) },
		"MulConstVec": func() { MulConstVec(make([]Elem, 1), make([]Elem, 2), 1) },
		"AddConstVec": func() { AddConstVec(make([]Elem, 1), make([]Elem, 2), 1) },
		"MulAddVec":   func() { MulAddVec(make([]Elem, 1), make([]Elem, 2), 1) },
		"MulAccVec":   func() { MulAccVec(make([]Elem, 2), make([]Elem, 2), make([]Elem, 3)) },
		"DotAcc":      func() { DotAcc(0, make([]Elem, 1), make([]Elem, 2)) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: length mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// FuzzFieldVecKernels lets the fuzzer hunt for operand patterns where a
// batch kernel and the math/big oracle disagree. The two seed elements
// are stretched into vectors by deterministic mixing so a single fuzz
// input covers many lanes, including the raw seed values themselves.
func FuzzFieldVecKernels(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), 4)
	f.Add(uint64(Modulus-1), uint64(Modulus-1), uint64(Modulus-1), 9)
	f.Add(uint64(1<<60), uint64(Modulus/2), uint64(3), 1)
	f.Add(uint64(12345), uint64(678910), uint64(42), 0)
	f.Fuzz(func(t *testing.T, sa, sb, sc uint64, n int) {
		if n < 0 || n > 64 {
			return
		}
		a := make([]Elem, n)
		b := make([]Elem, n)
		for i := range a {
			// splitmix-style odd-constant mixing keeps lane values
			// spread over the field while staying reproducible.
			a[i] = Elem((sa + uint64(i)*0x9e3779b97f4a7c15) % Modulus)
			b[i] = Elem((sb + uint64(i)*0xbf58476d1ce4e5b9) % Modulus)
		}
		c := Elem(sc % Modulus)

		dst := make([]Elem, n)
		MulVec(dst, a, b)
		eqVec(t, "MulVec", dst, refBinop(a, b, func(z, x, y *big.Int) *big.Int { return z.Mul(x, y) }))

		AddVec(dst, a, b)
		eqVec(t, "AddVec", dst, refBinop(a, b, func(z, x, y *big.Int) *big.Int { return z.Add(x, y) }))

		SubVec(dst, a, b)
		eqVec(t, "SubVec", dst, refBinop(a, b, func(z, x, y *big.Int) *big.Int { return z.Sub(x, y) }))

		copy(dst, b)
		MulAddVec(dst, a, c)
		for i := range dst {
			if want := Add(b[i], Mul(c, a[i])); dst[i] != want {
				t.Fatalf("MulAddVec[%d] = %d, want %d", i, dst[i], want)
			}
		}

		copy(dst, a)
		MulAccVec(dst, a, b)
		for i := range dst {
			if want := Add(a[i], Mul(a[i], b[i])); dst[i] != want {
				t.Fatalf("MulAccVec[%d] = %d, want %d", i, dst[i], want)
			}
		}

		if got, want := DotAcc(c, a, b), refDot(c, a, b); got != want {
			t.Fatalf("DotAcc = %d, want %d", got, want)
		}
	})
}
