// Package field implements arithmetic in the prime field ℤ_p with the
// Mersenne prime p = 2^61 − 1. It is the algebraic substrate for Shamir
// secret sharing and the BGW protocol: every quantized value and Skellam
// noise share in SQM is embedded into this field, so the modulus must
// exceed twice the largest absolute aggregate (checked by callers).
package field

import (
	"math/bits"

	"sqm/internal/invariant"
	"sqm/internal/randx"
)

// Modulus is the field order, the Mersenne prime 2^61 − 1.
const Modulus uint64 = 1<<61 - 1

// Elem is a field element in canonical form (0 <= e < Modulus).
type Elem uint64

// reduce maps any uint64 at most 2*Modulus into canonical form with a
// branchless conditional subtraction: v − Modulus keeps its top bit
// clear exactly when v >= Modulus (v < 2^63), so the borrow bit selects
// the mask. Field elements carry share and noise material, so the
// reduction must not branch on the value (see the ctbranch lint check).
func reduce(v uint64) Elem {
	v -= Modulus & (((v - Modulus) >> 63) - 1)
	return Elem(v)
}

// Add returns a + b mod p.
func Add(a, b Elem) Elem {
	return reduce(uint64(a) + uint64(b))
}

// Sub returns a − b mod p.
func Sub(a, b Elem) Elem {
	return reduce(uint64(a) + Modulus - uint64(b))
}

// Neg returns −a mod p. Modulus − a lands in (0, Modulus] with the
// off-canonical Modulus only at a = 0, which reduce folds to 0 without
// a value-dependent branch.
func Neg(a Elem) Elem {
	return reduce(Modulus - uint64(a))
}

// Mul returns a · b mod p using a Mersenne fold of the 128-bit product:
// with p = 2^61 − 1, 2^64 ≡ 8 and 2^61 ≡ 1 (mod p).
func Mul(a, b Elem) Elem {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// product = hi·2^64 + lo ≡ 8·hi + (lo >> 61) + (lo & p).
	s := hi<<3 | lo>>61 // hi < 2^58 so hi<<3 keeps the top bits free
	// v <= 2·Modulus needs two of reduce's branchless conditional
	// subtractions; both operands stay below 2^63, so the borrow-bit
	// mask is exact.
	v := (lo & Modulus) + s
	v -= Modulus & (((v - Modulus) >> 63) - 1)
	v -= Modulus & (((v - Modulus) >> 63) - 1)
	return Elem(v)
}

// Exp returns a^e mod p by square and multiply.
func Exp(a Elem, e uint64) Elem {
	r := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			r = Mul(r, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return r
}

// Inv returns the multiplicative inverse a^{p−2} mod p; Inv(0) panics.
func Inv(a Elem) Elem {
	if a == 0 {
		panic(invariant.Violation("field: inverse of zero"))
	}
	return Exp(a, Modulus-2)
}

// FromInt64 embeds a signed integer into the field: negative values map
// to p − |v|. The value must satisfy |v| < p/2 so the embedding is
// injective alongside ToInt64; larger magnitudes panic.
func FromInt64(v int64) Elem {
	const half = Modulus / 2
	if v >= 0 {
		if uint64(v) > half {
			panic(invariant.Violation("field: value exceeds signed embedding range"))
		}
		return Elem(v)
	}
	u := uint64(-v)
	if u > half {
		panic(invariant.Violation("field: value exceeds signed embedding range"))
	}
	return Elem(Modulus - u)
}

// ToInt64 inverts FromInt64: elements above p/2 decode as negative.
// Canonical elements sit below 2^61, so bit 60 is set exactly when
// e > p/2 = 2^60 − 1; subtracting Modulus under that mask yields the
// negative two's-complement value without branching on the secret.
func ToInt64(e Elem) int64 {
	return int64(uint64(e) - (Modulus & -(uint64(e) >> 60)))
}

// Rand returns a uniform field element using rejection sampling on
// 61-bit candidates.
func Rand(rng *randx.RNG) Elem {
	for {
		v := rng.Uint64() & Modulus // 61 low bits
		if v < Modulus {
			return Elem(v)
		}
	}
}

// MaxSignedValue is the largest |v| representable by the signed
// embedding, p/2 (rounded down).
const MaxSignedValue = int64(Modulus / 2)
