package dataset

import (
	"math"
	"testing"

	"sqm/internal/linalg"
	"sqm/internal/randx"
)

func TestKDDCupLikeShapeAndNorms(t *testing.T) {
	d := KDDCupLike(500, 30, 1)
	if d.Rows() != 500 || d.Cols() != 30 {
		t.Fatalf("shape = %dx%d", d.Rows(), d.Cols())
	}
	if n := d.MaxRowNorm(); n > 1+1e-9 {
		t.Fatalf("max row norm = %v exceeds C=1", n)
	}
	if d.Labels != nil {
		t.Fatal("PCA dataset should have no labels")
	}
}

func TestKDDCupLikeHasClusterStructure(t *testing.T) {
	// Clustered data: the top few eigenvalues of the covariance should
	// dominate the bulk.
	d := KDDCupLike(800, 20, 2)
	eig := linalg.SymEigen(d.X.Gram())
	var top, total float64
	for i, v := range eig.Values {
		if i < 5 {
			top += v
		}
		total += v
	}
	if top/total < 0.5 {
		t.Fatalf("top-5 eigenvalue share = %v, want clustered structure", top/total)
	}
}

func TestCiteSeerLikeSparseBinaryRows(t *testing.T) {
	d := CiteSeerLike(100, 500, 3)
	for i := 0; i < d.Rows(); i++ {
		row := d.X.Row(i)
		nonzero := 0
		var first float64
		for _, v := range row {
			if v != 0 {
				nonzero++
				if first == 0 {
					first = v
				} else if math.Abs(v-first) > 1e-12 {
					t.Fatal("active entries must share a value (normalized binary)")
				}
			}
		}
		if nonzero == 0 || nonzero > 30 {
			t.Fatalf("row %d has %d active terms", i, nonzero)
		}
		if n := linalg.Norm2(row); math.Abs(n-1) > 1e-9 {
			t.Fatalf("row %d norm = %v", i, n)
		}
	}
}

func TestGeneLikeLowRankSpectrum(t *testing.T) {
	d := GeneLike(200, 60, 4)
	eig := linalg.SymEigen(d.X.Gram())
	var top, total float64
	for i, v := range eig.Values {
		if v < 0 {
			v = 0
		}
		if i < 12 {
			top += v
		}
		total += v
	}
	if top/total < 0.7 {
		t.Fatalf("top-12 eigenvalue share = %v, want strongly low-rank", top/total)
	}
	if n := d.MaxRowNorm(); n > 1+1e-9 {
		t.Fatalf("max row norm = %v", n)
	}
}

func TestACSIncomeLikeGeneration(t *testing.T) {
	d, err := ACSIncomeLike("CA", 400, 200, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 400 || d.Cols() != 50 || d.TestX.Rows != 200 {
		t.Fatal("shape mismatch")
	}
	if len(d.Labels) != 400 || len(d.TestLabels) != 200 {
		t.Fatal("label counts")
	}
	pos := 0.0
	for _, y := range d.Labels {
		if y != 0 && y != 1 {
			t.Fatalf("non-binary label %v", y)
		}
		pos += y
	}
	rate := pos / 400
	if rate < 0.2 || rate > 0.65 {
		t.Fatalf("positive rate = %v, want a non-degenerate class balance", rate)
	}
	if n := d.MaxRowNorm(); n > 1+1e-9 {
		t.Fatalf("max row norm = %v", n)
	}
}

func TestACSIncomeUnknownState(t *testing.T) {
	if _, err := ACSIncomeLike("ZZ", 10, 10, 5, 1); err == nil {
		t.Fatal("unknown state must error")
	}
}

func TestACSStatesDiffer(t *testing.T) {
	a, err := ACSIncomeLike("CA", 50, 10, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ACSIncomeLike("TX", 50, 10, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("states must generate different data")
	}
	if len(ACSStates()) != 4 {
		t.Fatal("expected 4 states")
	}
}

func TestACSIncomeIsLinearlySeparableEnough(t *testing.T) {
	// A few plain logistic-regression steps must beat the majority
	// class — the planted model must be learnable.
	d, err := ACSIncomeLike("NY", 2000, 1000, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 40)
	lr := 2.0
	for epoch := 0; epoch < 60; epoch++ {
		grad := make([]float64, 40)
		for i := 0; i < d.Rows(); i++ {
			row := d.X.Row(i)
			p := sigmoid(linalg.Dot(w, row))
			linalg.Axpy(p-d.Labels[i], row, grad)
		}
		linalg.Axpy(-lr/float64(d.Rows()), grad, w)
	}
	correct := 0
	pos := 0.0
	for i := 0; i < d.TestX.Rows; i++ {
		p := sigmoid(linalg.Dot(w, d.TestX.Row(i)))
		if (p >= 0.5) == (d.TestLabels[i] == 1) {
			correct++
		}
		pos += d.TestLabels[i]
	}
	acc := float64(correct) / float64(d.TestX.Rows)
	majority := math.Max(pos, float64(d.TestX.Rows)-pos) / float64(d.TestX.Rows)
	if acc < majority+0.05 {
		t.Fatalf("LR accuracy %v does not beat majority %v", acc, majority)
	}
	if acc < 0.65 {
		t.Fatalf("accuracy %v too low for the planted model", acc)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := KDDCupLike(50, 10, 9)
	b := KDDCupLike(50, 10, 9)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed must reproduce the dataset")
		}
	}
}

func TestNormalizeRowsZeroRow(t *testing.T) {
	x := linalg.NewMatrix(2, 3)
	x.Set(0, 0, 3)
	normalizeRows(x)
	if got := linalg.Norm2(x.Row(0)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("row 0 norm = %v", got)
	}
	for _, v := range x.Row(1) {
		if v != 0 {
			t.Fatal("zero row must stay zero")
		}
	}
}

func TestLowRankPlusNoiseRespectsRank(t *testing.T) {
	g := randx.New(10)
	x := lowRankPlusNoise(100, 30, 3, 0.5, 0.001, g)
	eig := linalg.SymEigen(x.Gram())
	// With near-zero noise, eigenvalue 4 should be tiny relative to 1.
	if eig.Values[3] > 0.05*eig.Values[0] {
		t.Fatalf("rank leakage: eig4/eig1 = %v", eig.Values[3]/eig.Values[0])
	}
}
