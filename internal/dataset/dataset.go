// Package dataset generates the synthetic stand-ins for the paper's
// evaluation datasets (KDDCUP, ACSIncome CA/TX/NY/FL, CiteSeer, Gene).
// The real corpora are not bundled (offline build); each generator
// reproduces the statistics the mechanisms actually interact with —
// shapes, row-norm bounds, spectral structure for PCA, and label
// separability for logistic regression — as documented in DESIGN.md
// (substitution 1).
package dataset

import (
	"fmt"
	"math"

	"sqm/internal/linalg"
	"sqm/internal/mathx"
	"sqm/internal/randx"
)

// Dataset is a normalized learning task: rows of X are L2-bounded by C.
type Dataset struct {
	Name   string
	X      *linalg.Matrix
	Labels []float64 // 0/1; nil for PCA-only datasets

	TestX      *linalg.Matrix // nil when no held-out split exists
	TestLabels []float64

	C float64 // per-record L2 norm bound (1 for all generators here)
}

// Rows returns the number of training records.
func (d *Dataset) Rows() int { return d.X.Rows }

// Cols returns the attribute count.
func (d *Dataset) Cols() int { return d.X.Cols }

// normalizeRows rescales every row to norm at most 1 (and at least a
// fixed floor so the data is not degenerate).
func normalizeRows(x *linalg.Matrix) {
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		n := linalg.Norm2(row)
		if mathx.EqualWithin(n, 0, 0) {
			continue
		}
		linalg.ScaleVec(1/n, row)
	}
}

// lowRankPlusNoise builds X = sum_r s_r u_r v_rᵀ + ε with a planted
// decaying spectrum; rows are then normalized to unit norm. This is the
// structure the PCA utility metric is sensitive to.
func lowRankPlusNoise(m, n, rank int, decay, noise float64, g *randx.RNG) *linalg.Matrix {
	x := linalg.NewMatrix(m, n)
	// Planted factors: u ∈ R^m, v ∈ R^n per component.
	us := make([][]float64, rank)
	vs := make([][]float64, rank)
	for r := 0; r < rank; r++ {
		us[r] = g.GaussianVec(m, 1)
		v := g.GaussianVec(n, 1)
		linalg.ScaleVec(1/linalg.Norm2(v), v)
		vs[r] = v
	}
	for i := 0; i < m; i++ {
		row := x.Row(i)
		for r := 0; r < rank; r++ {
			s := math.Pow(decay, float64(r))
			linalg.Axpy(s*us[r][i], vs[r], row)
		}
		for j := range row {
			row[j] += g.Gaussian(0, noise)
		}
	}
	normalizeRows(x)
	return x
}

// KDDCupLike mimics the KDDCUP network-intrusion matrix (paper:
// m=195666, n=117): a handful of dense clusters plus correlated
// numeric columns, rows normalized to unit norm.
func KDDCupLike(m, n int, seed uint64) *Dataset {
	g := randx.New(seed)
	const clusters = 8
	centers := make([][]float64, clusters)
	for c := range centers {
		v := g.GaussianVec(n, 1)
		linalg.ScaleVec(1/linalg.Norm2(v), v)
		centers[c] = v
	}
	x := linalg.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		c := centers[g.IntN(clusters)]
		row := x.Row(i)
		copy(row, c)
		for j := range row {
			row[j] += g.Gaussian(0, 0.08)
		}
	}
	normalizeRows(x)
	return &Dataset{Name: "KDDCUP-like", X: x, C: 1}
}

// CiteSeerLike mimics the CiteSeer bag-of-words matrix (paper: m=2110,
// n=3703): sparse binary rows (≈30 active terms with a Zipf-ish term
// distribution), normalized to unit norm.
func CiteSeerLike(m, n int, seed uint64) *Dataset {
	g := randx.New(seed)
	x := linalg.NewMatrix(m, n)
	const activePerDoc = 30
	for i := 0; i < m; i++ {
		row := x.Row(i)
		for k := 0; k < activePerDoc; k++ {
			// Zipf-ish skew: square a uniform to favor low indices.
			u := g.Float64()
			j := int(u * u * float64(n))
			if j >= n {
				j = n - 1
			}
			row[j] = 1
		}
	}
	normalizeRows(x)
	return &Dataset{Name: "CiteSeer-like", X: x, C: 1}
}

// GeneLike mimics the gene-expression matrix (paper: m=801, n=20531;
// callers typically scale n down — see DESIGN.md): strongly low-rank
// with a fast-decaying spectrum, as RNA-Seq data is.
func GeneLike(m, n int, seed uint64) *Dataset {
	g := randx.New(seed)
	x := lowRankPlusNoise(m, n, 12, 0.7, 0.02, g)
	return &Dataset{Name: "Gene-like", X: x, C: 1}
}

// acsStates fixes per-state generation parameters so the four tasks
// differ the way the four states' ACSIncome extracts do.
var acsStates = map[string]struct {
	seedOff   uint64
	sharpness float64 // label separability → asymptotic accuracy
	posRate   float64
}{
	"CA": {1, 10.0, 0.42},
	"TX": {2, 8.5, 0.38},
	"NY": {3, 11.0, 0.45},
	"FL": {4, 8.0, 0.36},
}

// ACSStates lists the supported state codes in the paper's order.
func ACSStates() []string { return []string{"CA", "TX", "NY", "FL"} }

// ACSIncomeLike mimics one state's ACSIncome task (paper: n≈800
// attributes, ~100k records of which 10% train): correlated features
// from a latent factor model and labels from a planted logistic model,
// calibrated so a non-private LR reaches ≈0.75–0.80 test accuracy.
func ACSIncomeLike(state string, mTrain, mTest, d int, seed uint64) (*Dataset, error) {
	cfg, ok := acsStates[state]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown ACS state %q", state)
	}
	g := randx.New(seed*1000003 + cfg.seedOff)
	const rank = 24
	// Latent mixing matrix and planted weights.
	mix := make([][]float64, rank)
	for r := range mix {
		v := g.GaussianVec(d, 1)
		linalg.ScaleVec(1/linalg.Norm2(v), v)
		mix[r] = v
	}
	// The planted weights live in the latent span so the labels depend
	// on directions the features actually vary along.
	wStar := make([]float64, d)
	for r := 0; r < rank; r++ {
		linalg.Axpy(g.Gaussian(0, 1), mix[r], wStar)
	}
	linalg.ScaleVec(1/linalg.Norm2(wStar), wStar)
	bias := invSigmoid(cfg.posRate) // shifts the positive rate

	gen := func(m int) (*linalg.Matrix, []float64) {
		x := linalg.NewMatrix(m, d)
		y := make([]float64, m)
		for i := 0; i < m; i++ {
			row := x.Row(i)
			for r := 0; r < rank; r++ {
				linalg.Axpy(g.Gaussian(0, 1), mix[r], row)
			}
			for j := range row {
				row[j] += g.Gaussian(0, 0.15)
			}
			n := linalg.Norm2(row)
			if n > 0 {
				linalg.ScaleVec(1/n, row)
			}
			score := cfg.sharpness*linalg.Dot(wStar, row) + bias
			if g.Bernoulli(sigmoid(score)) {
				y[i] = 1
			}
		}
		return x, y
	}
	x, y := gen(mTrain)
	tx, ty := gen(mTest)
	return &Dataset{
		Name: "ACSIncome-like (" + state + ")", X: x, Labels: y,
		TestX: tx, TestLabels: ty, C: 1,
	}, nil
}

func sigmoid(u float64) float64 { return 1 / (1 + math.Exp(-u)) }

func invSigmoid(p float64) float64 { return math.Log(p / (1 - p)) }

// RegressionLike generates a linear-regression task for the ridge
// extension (internal/linreg): unit-norm correlated features and
// targets y = ⟨w*, x⟩ + noise clipped to [−1, 1], so the augmented
// record [x | y] has norm at most √2.
func RegressionLike(mTrain, mTest, d int, noiseStd float64, seed uint64) *Dataset {
	g := randx.New(seed ^ 0x4e64)
	const rank = 16
	mix := make([][]float64, rank)
	for r := range mix {
		v := g.GaussianVec(d, 1)
		linalg.ScaleVec(1/linalg.Norm2(v), v)
		mix[r] = v
	}
	wStar := make([]float64, d)
	for r := 0; r < rank; r++ {
		linalg.Axpy(g.Gaussian(0, 1), mix[r], wStar)
	}
	linalg.ScaleVec(1/linalg.Norm2(wStar), wStar)
	gen := func(m int) (*linalg.Matrix, []float64) {
		x := linalg.NewMatrix(m, d)
		y := make([]float64, m)
		for i := 0; i < m; i++ {
			row := x.Row(i)
			for r := 0; r < rank; r++ {
				linalg.Axpy(g.Gaussian(0, 1), mix[r], row)
			}
			n := linalg.Norm2(row)
			if n > 0 {
				linalg.ScaleVec(1/n, row)
			}
			// The planted signal ⟨w*, x̂⟩ is O(1/√rank); rescale so
			// targets use a good part of [−1, 1].
			y[i] = math.Max(-1, math.Min(1, 3*linalg.Dot(wStar, row)+g.Gaussian(0, noiseStd)))
		}
		return x, y
	}
	x, y := gen(mTrain)
	tx, ty := gen(mTest)
	return &Dataset{
		Name: "Regression-like", X: x, Labels: y,
		TestX: tx, TestLabels: ty, C: 1,
	}
}

// MaxRowNorm returns the largest row L2 norm of X (tests assert it
// respects C).
func (d *Dataset) MaxRowNorm() float64 {
	var worst float64
	for i := 0; i < d.X.Rows; i++ {
		if n := linalg.Norm2(d.X.Row(i)); n > worst {
			worst = n
		}
	}
	return worst
}
