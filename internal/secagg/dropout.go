package secagg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"sqm/internal/field"
	"sqm/internal/obs"
	"sqm/internal/randx"
	"sqm/internal/retry"
	"sqm/internal/shamir"
	"sqm/internal/transport"
)

// ErrQuorumLoss reports that too few clients survived a round for the
// cohort to recover the dropped clients' masks: fewer than t+1 alive
// with threshold t. The aggregate is unrecoverable without breaking the
// masking, so the round must be abandoned rather than degraded.
var ErrQuorumLoss = errors.New("secagg: quorum lost, too few surviving clients to unmask the aggregate")

// TolerantGroup is a Group whose pairwise seeds are additionally
// Shamir-shared across the cohort with threshold t, the dropout-recovery
// scheme of Bonawitz et al.: if a client dies after its peers have
// already folded its pair masks into their contributions, any t+1
// survivors can reconstruct the dead client's seeds and the aggregator
// cancels the orphaned masks instead of aborting. Up to n-(t+1) clients
// may drop per round; one more and reconstruction (and hence the round)
// fails with ErrQuorumLoss.
//
// Semi-honest model, like the rest of the package: reconstruction
// reveals only the *dropped* clients' mask seeds, never a surviving
// client's values, and a dropped client's data contribution is excluded
// entirely — degradation trades its data for round liveness, not for
// privacy.
type TolerantGroup struct {
	*Group
	t int
	// seedShares[i][j][h] is holder h's Shamir share of pairSeed[i][j]
	// (i < j). In a deployment each holder stores only its own column;
	// the aggregator collects t+1 of them when i or j drops.
	seedShares [][][]field.Elem
}

// NewTolerantGroup prepares a dropout-tolerant cohort of n clients with
// recovery threshold t: any t+1 survivors can unmask a dead client,
// any t or fewer colluders learn nothing about a seed they don't own.
// Requires 1 <= t < n.
func NewTolerantGroup(n, length int, t int, seed uint64) (*TolerantGroup, error) {
	g, err := NewGroup(n, length, seed)
	if err != nil {
		return nil, err
	}
	if t < 1 || t >= n {
		return nil, fmt.Errorf("secagg: recovery threshold t=%d out of range [1, %d)", t, n)
	}
	tg := &TolerantGroup{Group: g, t: t}
	// Pair seeds must be valid field elements to be Shamir-shared; the
	// group's raw uint64 seeds are reduced into the field (the mask
	// streams key off the reduced value, so sharing and masking agree).
	shareRNG := randx.New(seed ^ 0x5ade5ade5)
	tg.seedShares = make([][][]field.Elem, n)
	for i := 0; i < n; i++ {
		tg.seedShares[i] = make([][]field.Elem, n)
		for j := i + 1; j < n; j++ {
			g.pairSeed[i][j] %= field.Modulus
			tg.seedShares[i][j] = shamir.Share(field.Elem(g.pairSeed[i][j]), t, n, shareRNG)
		}
	}
	return tg, nil
}

// Threshold returns the recovery threshold t (quorum is t+1).
func (g *TolerantGroup) Threshold() int { return g.t }

// recoverSeed reconstructs pairSeed[i][j] from the shares of the first
// t+1 alive holders. Callers must have checked the quorum.
func (g *TolerantGroup) recoverSeed(i, j int, alive []bool) field.Elem {
	points := make([]field.Elem, 0, g.t+1)
	shares := make([]field.Elem, 0, g.t+1)
	all := shamir.PartyPoints(g.n)
	for h := 0; h < g.n && len(points) <= g.t; h++ {
		if !alive[h] {
			continue
		}
		points = append(points, all[h])
		shares = append(shares, g.seedShares[i][j][h])
	}
	return shamir.Reconstruct(points, shares)
}

// AggregateDropout is the server's step under dropouts: masked[j] is
// client j's contribution, or nil if j dropped after masking was
// announced. The survivors' sum retains the dropped clients' orphaned
// pairwise masks; the server reconstructs each dropped client's pair
// seeds from the surviving Shamir shares and cancels those masks, then
// decodes the signed totals over the surviving cohort only. Fails with
// ErrQuorumLoss when fewer than t+1 clients survive.
func (g *TolerantGroup) AggregateDropout(round uint64, masked [][]field.Elem) ([]int64, error) {
	if len(masked) != g.n {
		return nil, fmt.Errorf("secagg: got %d contribution slots, want %d", len(masked), g.n)
	}
	alive := make([]bool, g.n)
	nAlive := 0
	for j, m := range masked {
		if m != nil {
			alive[j] = true
			nAlive++
		}
	}
	if nAlive < g.t+1 {
		return nil, fmt.Errorf("%w: %d alive of %d, need %d", ErrQuorumLoss, nAlive, g.n, g.t+1)
	}
	acc := make([]field.Elem, g.length)
	for _, m := range masked {
		if m == nil {
			continue
		}
		if len(m) != g.length {
			return nil, fmt.Errorf("secagg: contribution length %d, want %d", len(m), g.length)
		}
		for k := range acc {
			acc[k] = field.Add(acc[k], m[k])
		}
	}
	// Cancel the masks orphaned by each dropped client d: every alive
	// peer j folded the (j, d) pair mask into its contribution with the
	// sign of its side, and d's own cancelling share never arrived.
	for d := 0; d < g.n; d++ {
		if alive[d] {
			continue
		}
		for j := 0; j < g.n; j++ {
			if j == d || !alive[j] {
				continue
			}
			lo, hi := j, d
			if d < j {
				lo, hi = d, j
			}
			seed := g.recoverSeed(lo, hi, alive)
			m := maskFromSeed(uint64(seed), round, g.length)
			if j < d {
				// Alive j added the (j, d) stream; subtract it back out.
				for k := range acc {
					acc[k] = field.Sub(acc[k], m[k])
				}
			} else {
				// Alive j subtracted the (d, j) stream; add it back.
				for k := range acc {
					acc[k] = field.Add(acc[k], m[k])
				}
			}
		}
	}
	out := make([]int64, g.length)
	for k, v := range acc {
		out[k] = field.ToInt64(v)
	}
	return out, nil
}

// maskFromSeed derives one pair's round mask directly from its seed —
// the same stream Group.maskStream produces, exposed for recovery where
// the seed was reconstructed rather than looked up.
func maskFromSeed(seed, round uint64, length int) []field.Elem {
	rng := randx.New(seed ^ (round * 0x9e3779b97f4a7c15))
	out := make([]field.Elem, length)
	for k := range out {
		out[k] = field.Rand(rng)
	}
	return out
}

// Contribute masks client j's values for the round and sends them to
// the aggregator at endpoint 0 over conn. It is the client half of
// CollectDropout.
func (g *TolerantGroup) Contribute(conn transport.PartyConn, round uint64, values []int64) error {
	masked, err := g.Mask(conn.ID(), round, values)
	if err != nil {
		return err
	}
	buf := make([]byte, 8*g.length)
	for k, v := range masked {
		binary.BigEndian.PutUint64(buf[8*k:], uint64(v))
	}
	return conn.Send(0, buf)
}

// CollectOptions tunes the aggregator's dropout detection.
type CollectOptions struct {
	// Timeout bounds each receive attempt; 0 means 200ms. A peer is
	// only declared dropped after the retry budget of timed-out
	// receives is spent — a closed link declares it immediately.
	Timeout time.Duration
	// Retries is the per-peer receive attempt budget; values below 1
	// mean 1.
	Retries int
	// Backoff is the base wait between receive attempts (doubled per
	// retry, jittered); 0 means no wait between attempts.
	Backoff time.Duration
	// Seed keys the retry jitter stream.
	Seed uint64
	// Recorder receives secagg.collect retry telemetry; nil disables.
	Recorder obs.Recorder
}

// DropoutReport is the outcome of one degraded-capable collection.
type DropoutReport struct {
	// Totals is the decoded aggregate over the surviving cohort.
	Totals []int64
	// Dropped lists the clients declared dead this round.
	Dropped []int
	// Alive is the number of surviving clients (including the
	// aggregator).
	Alive int
}

// CollectDropout is the aggregator's half of a degraded-capable round:
// endpoint 0 masks its own values, then collects each peer's masked
// contribution under the options' deadline and retry budget. Peers
// whose link is closed, or whose receives exhaust the budget with
// timeouts, are declared dropped; the round completes through
// AggregateDropout as long as a quorum of t+1 clients (including the
// aggregator) survives.
func (g *TolerantGroup) CollectDropout(conn transport.PartyConn, round uint64, values []int64, opt CollectOptions) (*DropoutReport, error) {
	if conn.ID() != 0 {
		return nil, fmt.Errorf("secagg: CollectDropout must run on endpoint 0, got %d", conn.ID())
	}
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = 200 * time.Millisecond
	}
	own, err := g.Mask(0, round, values)
	if err != nil {
		return nil, err
	}
	masked := make([][]field.Elem, g.n)
	masked[0] = own
	report := &DropoutReport{Alive: 1}
	conn.SetRecvTimeout(timeout)
	defer conn.SetRecvTimeout(0)
	for from := 1; from < g.n; from++ {
		policy := retry.Policy{
			Attempts: opt.Retries,
			Base:     opt.Backoff,
			Jitter:   0.5,
			Seed:     opt.Seed ^ uint64(from) ^ round,
			Recorder: opt.Recorder,
			Name:     "secagg.collect",
		}
		if policy.Base <= 0 {
			policy.Sleep = func(time.Duration) {}
		}
		var buf []byte
		err := policy.Do(func(int) error {
			b, err := conn.Recv(from)
			if err != nil {
				if errors.Is(err, transport.ErrClosed) {
					// The link is gone; retrying cannot help.
					return retry.Permanent(err)
				}
				return err
			}
			buf = b
			return nil
		})
		if err != nil {
			if errors.Is(err, transport.ErrClosed) || errors.Is(err, transport.ErrTimeout) {
				report.Dropped = append(report.Dropped, from)
				continue
			}
			return nil, err
		}
		if len(buf) != 8*g.length {
			return nil, fmt.Errorf("secagg: contribution from client %d has %d bytes, want %d", from, len(buf), 8*g.length)
		}
		vec := make([]field.Elem, g.length)
		for k := range vec {
			vec[k] = field.Elem(binary.BigEndian.Uint64(buf[8*k:]))
		}
		masked[from] = vec
		report.Alive++
	}
	totals, err := g.AggregateDropout(round, masked)
	if err != nil {
		return nil, err
	}
	report.Totals = totals
	return report, nil
}

// AggregateDropoutOver runs one degraded-capable round over a mesh:
// every client on its own goroutine, clients listed in drop simply
// never contribute (as if they died before sending), endpoint 0
// collects under opt and completes through dropout recovery. Intended
// for tests and benchmarks; real sessions drive Contribute and
// CollectDropout from their own actors.
func (g *TolerantGroup) AggregateDropoutOver(mesh transport.Mesh, round uint64, values [][]int64, drop []int, opt CollectOptions) (*DropoutReport, error) {
	if mesh.Parties() != g.n {
		return nil, fmt.Errorf("secagg: mesh has %d endpoints for %d clients", mesh.Parties(), g.n)
	}
	if len(values) != g.n {
		return nil, fmt.Errorf("secagg: got %d contributions, want all %d clients", len(values), g.n)
	}
	dropped := make([]bool, g.n)
	for _, d := range drop {
		if d <= 0 || d >= g.n {
			return nil, fmt.Errorf("secagg: cannot drop client %d (aggregator 0 and range [1,%d) only)", d, g.n)
		}
		dropped[d] = true
	}
	errs := make([]error, g.n)
	var wg sync.WaitGroup
	var report *DropoutReport
	for j := 1; j < g.n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			if dropped[j] {
				// A dead client: close its endpoint so peers see ErrClosed
				// rather than a silent stall where the mesh supports it.
				mesh.Conn(j).Close()
				return
			}
			errs[j] = g.Contribute(mesh.Conn(j), round, values[j])
		}(j)
	}
	report, errs[0] = g.CollectDropout(mesh.Conn(0), round, values[0], opt)
	// Contributions never block on the collector (sends are pumped), so
	// the stragglers — if any — are bounded by the collector's own
	// deadline budget having already expired.
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return report, nil
}
