package secagg

import (
	"math"
	"testing"

	"sqm/internal/field"
	"sqm/internal/randx"
)

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(1, 5, 1); err == nil {
		t.Fatal("single client must be rejected")
	}
	if _, err := NewGroup(3, 0, 1); err == nil {
		t.Fatal("empty vectors must be rejected")
	}
}

func TestMasksTelescopeToSum(t *testing.T) {
	g, err := NewGroup(4, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]int64{
		{1, -2, 3},
		{10, 20, -30},
		{0, 5, 5},
		{-7, 0, 2},
	}
	masked := make([][]field.Elem, 4)
	for j, v := range inputs {
		masked[j], err = g.Mask(j, 0, v)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := g.Aggregate(masked)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4, 23, -20}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("aggregate = %v, want %v", got, want)
		}
	}
	if g.Messages() != 4 {
		t.Fatalf("messages = %d", g.Messages())
	}
}

func TestIndividualMessagesLookUniform(t *testing.T) {
	// A single client's masked vector must not reveal its input: the
	// same input masked in different rounds should look unrelated, and
	// the masked value should differ from the raw embedding.
	g, err := NewGroup(3, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	const secret = 42
	seen := map[field.Elem]bool{}
	for round := uint64(0); round < 100; round++ {
		m, err := g.Mask(0, round, []int64{secret})
		if err != nil {
			t.Fatal(err)
		}
		if m[0] == field.FromInt64(secret) {
			t.Fatal("mask left the value in the clear")
		}
		seen[m[0]] = true
	}
	if len(seen) < 99 {
		t.Fatalf("masked values repeat (%d distinct of 100)", len(seen))
	}
}

func TestRoundsAreIndependent(t *testing.T) {
	g, err := NewGroup(2, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.Mask(0, 1, []int64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Mask(0, 2, []int64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] == b[0] && a[1] == b[1] {
		t.Fatal("different rounds must use different masks")
	}
}

func TestAggregateValidation(t *testing.T) {
	g, err := NewGroup(3, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Aggregate(make([][]field.Elem, 2)); err == nil {
		t.Fatal("missing contribution must be rejected (no-dropout setting)")
	}
	bad := [][]field.Elem{make([]field.Elem, 1), make([]field.Elem, 2), make([]field.Elem, 2)}
	if _, err := g.Aggregate(bad); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if _, err := g.Mask(9, 0, []int64{1, 2}); err == nil {
		t.Fatal("client out of range must be rejected")
	}
	if _, err := g.Mask(0, 0, []int64{1}); err == nil {
		t.Fatal("vector length mismatch must be rejected")
	}
}

func TestAggregateNoiseMatchesSkellamStatistics(t *testing.T) {
	const (
		clients = 5
		length  = 2000
		mu      = 50.0
	)
	g, err := NewGroup(clients, length, 17)
	if err != nil {
		t.Fatal(err)
	}
	root := randx.New(19)
	rngs := make([]*randx.RNG, clients)
	for i := range rngs {
		rngs[i] = root.Fork()
	}
	noise, err := g.AggregateNoise(0, mu, rngs)
	if err != nil {
		t.Fatal(err)
	}
	// The aggregate is Sk(mu): mean 0, variance 2mu.
	var sum, sumsq float64
	for _, v := range noise {
		sum += float64(v)
		sumsq += float64(v) * float64(v)
	}
	mean := sum / length
	variance := sumsq / length
	if math.Abs(mean) > 5*math.Sqrt(2*mu/length) {
		t.Fatalf("aggregate noise mean = %v", mean)
	}
	if math.Abs(variance-2*mu) > 0.15*2*mu {
		t.Fatalf("aggregate noise variance = %v, want %v", variance, 2*mu)
	}
	if _, err := g.AggregateNoise(0, mu, rngs[:2]); err == nil {
		t.Fatal("RNG count mismatch must be rejected")
	}
}
