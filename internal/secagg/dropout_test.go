package secagg

import (
	"errors"
	"io"
	"testing"
	"time"

	"sqm/internal/field"
	"sqm/internal/obs"
	"sqm/internal/transport"
)

// sumAlive computes the expected degraded aggregate: the plain sum over
// the surviving clients only.
func sumAlive(values [][]int64, dropped map[int]bool, length int) []int64 {
	out := make([]int64, length)
	for j, vs := range values {
		if dropped[j] {
			continue
		}
		for k, v := range vs {
			out[k] += v
		}
	}
	return out
}

func testValues(n, length int) [][]int64 {
	values := make([][]int64, n)
	for j := range values {
		values[j] = make([]int64, length)
		for k := range values[j] {
			values[j][k] = int64(10*j + k - 7)
		}
	}
	return values
}

// TestAggregateDropoutMatchesAliveSum: for every dropout pattern within
// the budget, recovery yields exactly the survivors' sum.
func TestAggregateDropoutMatchesAliveSum(t *testing.T) {
	const n, length, thr = 5, 4, 2
	values := testValues(n, length)
	patterns := [][]int{{}, {1}, {4}, {1, 3}, {0, 2}, {2, 4}}
	for _, pat := range patterns {
		g, err := NewTolerantGroup(n, length, thr, 77)
		if err != nil {
			t.Fatal(err)
		}
		dropped := map[int]bool{}
		for _, d := range pat {
			dropped[d] = true
		}
		masked := make([][]field.Elem, n)
		for j := 0; j < n; j++ {
			// Everyone masks (the dropout happens after announcement);
			// the dead clients' messages just never arrive.
			m, err := g.Mask(j, 3, values[j])
			if err != nil {
				t.Fatal(err)
			}
			if !dropped[j] {
				masked[j] = m
			}
		}
		got, err := g.AggregateDropout(3, masked)
		if err != nil {
			t.Fatalf("pattern %v: %v", pat, err)
		}
		want := sumAlive(values, dropped, length)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("pattern %v: totals[%d] = %d, want %d", pat, k, got[k], want[k])
			}
		}
	}
}

// TestAggregateDropoutQuorumLoss: one dropout past the budget must fail
// with the typed quorum error, never a silent wrong answer.
func TestAggregateDropoutQuorumLoss(t *testing.T) {
	const n, length, thr = 5, 2, 2
	g, err := NewTolerantGroup(n, length, thr, 9)
	if err != nil {
		t.Fatal(err)
	}
	values := testValues(n, length)
	masked := make([][]field.Elem, n)
	// Only clients 0 and 4 survive: 2 alive < t+1 = 3.
	for _, j := range []int{0, 4} {
		m, err := g.Mask(j, 0, values[j])
		if err != nil {
			t.Fatal(err)
		}
		masked[j] = m
	}
	if _, err := g.AggregateDropout(0, masked); !errors.Is(err, ErrQuorumLoss) {
		t.Fatalf("got %v, want ErrQuorumLoss", err)
	}
}

// TestTolerantGroupNoDropoutMatchesPlain: with everyone alive the
// tolerant path and the plain path agree.
func TestTolerantGroupNoDropoutMatchesPlain(t *testing.T) {
	const n, length, thr = 4, 3, 1
	g, err := NewTolerantGroup(n, length, thr, 5)
	if err != nil {
		t.Fatal(err)
	}
	values := testValues(n, length)
	masked := make([][]field.Elem, n)
	for j := 0; j < n; j++ {
		m, err := g.Mask(j, 1, values[j])
		if err != nil {
			t.Fatal(err)
		}
		masked[j] = m
	}
	plain, err := g.Aggregate(masked)
	if err != nil {
		t.Fatal(err)
	}
	tolerant, err := g.AggregateDropout(1, masked)
	if err != nil {
		t.Fatal(err)
	}
	for k := range plain {
		if plain[k] != tolerant[k] {
			t.Fatalf("totals[%d]: plain %d vs tolerant %d", k, plain[k], tolerant[k])
		}
	}
}

// TestNewTolerantGroupValidatesThreshold rejects unusable thresholds.
func TestNewTolerantGroupValidatesThreshold(t *testing.T) {
	for _, bad := range []int{0, -1, 5, 6} {
		if _, err := NewTolerantGroup(5, 2, bad, 1); err == nil {
			t.Fatalf("t=%d accepted, want error", bad)
		}
	}
}

// TestCollectDropoutOverMesh: a full mesh round with dead clients —
// dropout detection via closed links, recovery, retry telemetry.
func TestCollectDropoutOverMesh(t *testing.T) {
	const n, length, thr = 5, 3, 2
	g, err := NewTolerantGroup(n, length, thr, 21)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewLog(io.Discard, "text", obs.LevelInfo)
	mesh := transport.NewChanMesh(n)
	defer mesh.Close()
	values := testValues(n, length)
	report, err := g.AggregateDropoutOver(mesh, 2, values, []int{1, 3}, CollectOptions{
		Timeout:  50 * time.Millisecond,
		Retries:  3,
		Recorder: rec,
		Seed:     77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Alive != 3 || len(report.Dropped) != 2 {
		t.Fatalf("report = %+v, want 3 alive / 2 dropped", report)
	}
	want := sumAlive(values, map[int]bool{1: true, 3: true}, length)
	for k := range want {
		if report.Totals[k] != want[k] {
			t.Fatalf("totals[%d] = %d, want %d", k, report.Totals[k], want[k])
		}
	}
	if got := rec.Metrics().Counter("secagg.collect.attempts").Value(); got < int64(n-1) {
		t.Fatalf("secagg.collect.attempts = %d, want >= %d", got, n-1)
	}
}

// TestCollectDropoutSilentStall: a client that neither sends nor closes
// is declared dropped after the retry budget of timed-out receives.
func TestCollectDropoutSilentStall(t *testing.T) {
	const n, length, thr = 3, 2, 1
	g, err := NewTolerantGroup(n, length, thr, 4)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewLog(io.Discard, "text", obs.LevelInfo)
	mesh := transport.NewChanMesh(n)
	defer mesh.Close()
	values := testValues(n, length)
	// Client 2 contributes; client 1 goes silent without closing.
	done := make(chan error, 1)
	go func() { done <- g.Contribute(mesh.Conn(2), 0, values[2]) }()
	report, err := g.CollectDropout(mesh.Conn(0), 0, values[0], CollectOptions{
		Timeout:  20 * time.Millisecond,
		Retries:  2,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cerr := <-done; cerr != nil {
		t.Fatal(cerr)
	}
	if len(report.Dropped) != 1 || report.Dropped[0] != 1 {
		t.Fatalf("Dropped = %v, want [1]", report.Dropped)
	}
	want := sumAlive(values, map[int]bool{1: true}, length)
	for k := range want {
		if report.Totals[k] != want[k] {
			t.Fatalf("totals[%d] = %d, want %d", k, report.Totals[k], want[k])
		}
	}
	// The stalled peer burned the full receive budget.
	if got := rec.Metrics().Counter("secagg.collect.retries").Value(); got != 1 {
		t.Fatalf("secagg.collect.retries = %d, want 1", got)
	}
	if got := rec.Metrics().Counter("secagg.collect.giveups").Value(); got != 1 {
		t.Fatalf("secagg.collect.giveups = %d, want 1", got)
	}
}
