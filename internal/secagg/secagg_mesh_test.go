package secagg

import (
	"testing"

	"sqm/internal/randx"
	"sqm/internal/transport"
)

func meshesFor(t *testing.T, n int) map[string]transport.Mesh {
	t.Helper()
	tcp, err := transport.NewTCPMesh(n)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]transport.Mesh{"chan": transport.NewChanMesh(n), "tcp": tcp}
}

func TestAggregateOverMatchesAggregate(t *testing.T) {
	inputs := [][]int64{
		{1, -2, 3},
		{10, 20, -30},
		{0, 5, 5},
		{-7, 0, 2},
	}
	want := []int64{4, 23, -20}

	for name, mesh := range meshesFor(t, 4) {
		t.Run(name, func(t *testing.T) {
			defer mesh.Close()
			g, err := NewGroup(4, 3, 7)
			if err != nil {
				t.Fatal(err)
			}
			got, err := g.AggregateOver(mesh, 0, inputs)
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("aggregate = %v, want %v", got, want)
				}
			}
			if g.Messages() != 4 {
				t.Fatalf("mask messages = %d, want 4", g.Messages())
			}
			// The masked vectors of clients 1..3 actually crossed the
			// mesh: 3 messages of 8·3 bytes each.
			_, msgs, bytes := mesh.Counters()
			if msgs != 3 || bytes != 3*8*3 {
				t.Fatalf("mesh counters = (%d, %d), want (3, 72)", msgs, bytes)
			}
		})
	}
}

func TestAggregateNoiseOverMatchesAggregateNoise(t *testing.T) {
	const clients, length = 3, 5
	mkRNGs := func() []*randx.RNG {
		root := randx.New(19)
		rngs := make([]*randx.RNG, clients)
		for i := range rngs {
			rngs[i] = root.Fork()
		}
		return rngs
	}
	ref, err := NewGroup(clients, length, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.AggregateNoise(2, 12, mkRNGs())
	if err != nil {
		t.Fatal(err)
	}

	for name, mesh := range meshesFor(t, clients) {
		t.Run(name, func(t *testing.T) {
			defer mesh.Close()
			g, err := NewGroup(clients, length, 3)
			if err != nil {
				t.Fatal(err)
			}
			got, err := g.AggregateNoiseOver(mesh, 2, 12, mkRNGs())
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%s: noise aggregate %v, want %v", name, got, want)
				}
			}
		})
	}
}

func TestAggregateOverValidation(t *testing.T) {
	g, err := NewGroup(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mesh := transport.NewChanMesh(4)
	defer mesh.Close()
	if _, err := g.AggregateOver(mesh, 0, make([][]int64, 3)); err == nil {
		t.Fatal("mesh size mismatch must error")
	}
	mesh3 := transport.NewChanMesh(3)
	defer mesh3.Close()
	if _, err := g.AggregateOver(mesh3, 0, make([][]int64, 2)); err == nil {
		t.Fatal("missing contribution must error")
	}
}

func TestAggregateOverBadVectorFailsEveryone(t *testing.T) {
	g, err := NewGroup(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mesh := transport.NewChanMesh(3)
	defer mesh.Close()
	values := [][]int64{{1, 2}, {3}, {5, 6}} // client 1's vector is short
	if _, err := g.AggregateOver(mesh, 0, values); err == nil {
		t.Fatal("a malformed contribution must fail the round")
	}
}
