// Package secagg implements pairwise-mask secure aggregation (Bonawitz
// et al., the paper's reference [45]): every pair of clients derives a
// shared mask stream from a common seed; client i adds the masks of
// pairs where it is the smaller index and subtracts the others, so the
// server's sum of all masked vectors telescopes to the true aggregate
// while every individual message is uniformly masked.
//
// In SQM the *noise aggregation* Σ_j Z_j is purely linear, so it can
// ride this cheaper transport while BGW handles the polynomial part —
// the engines ablation quantifies the trade. Semi-honest, no-dropout
// setting, matching the paper's threat model.
package secagg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sqm/internal/field"
	"sqm/internal/randx"
	"sqm/internal/transport"
)

// Group is one aggregation cohort over a fixed client set and vector
// length.
type Group struct {
	n      int
	length int
	// pairSeed[i][j] (i < j) keys the mask stream shared by i and j; in
	// a deployment these come from a Diffie-Hellman exchange, here from
	// the group seed.
	pairSeed [][]uint64
	messages atomic.Int64
}

// NewGroup prepares a cohort of n clients aggregating length-sized
// vectors. seed stands in for the pairwise key agreement.
func NewGroup(n, length int, seed uint64) (*Group, error) {
	if n < 2 {
		return nil, fmt.Errorf("secagg: need at least 2 clients, got %d", n)
	}
	if length < 1 {
		return nil, fmt.Errorf("secagg: need a positive vector length, got %d", length)
	}
	g := &Group{n: n, length: length, pairSeed: make([][]uint64, n)}
	root := randx.New(seed ^ 0x5eca99)
	for i := 0; i < n; i++ {
		g.pairSeed[i] = make([]uint64, n)
		for j := i + 1; j < n; j++ {
			g.pairSeed[i][j] = root.Uint64()
		}
	}
	return g, nil
}

// maskStream derives the shared mask vector of pair (i, j), i < j, for
// the given round.
func (g *Group) maskStream(i, j int, round uint64) []field.Elem {
	rng := randx.New(g.pairSeed[i][j] ^ (round * 0x9e3779b97f4a7c15))
	out := make([]field.Elem, g.length)
	for k := range out {
		out[k] = field.Rand(rng)
	}
	return out
}

// Mask produces client i's masked contribution for one round: the
// signed values embedded into the field plus the telescoping pairwise
// masks. The result is safe to hand to the untrusted server.
func (g *Group) Mask(client int, round uint64, values []int64) ([]field.Elem, error) {
	if client < 0 || client >= g.n {
		return nil, fmt.Errorf("secagg: client %d out of range [0, %d)", client, g.n)
	}
	if len(values) != g.length {
		return nil, fmt.Errorf("secagg: vector length %d, want %d", len(values), g.length)
	}
	out := make([]field.Elem, g.length)
	for k, v := range values {
		out[k] = field.FromInt64(v)
	}
	for other := 0; other < g.n; other++ {
		switch {
		case other == client:
		case client < other:
			m := g.maskStream(client, other, round)
			for k := range out {
				out[k] = field.Add(out[k], m[k])
			}
		default:
			m := g.maskStream(other, client, round)
			for k := range out {
				out[k] = field.Sub(out[k], m[k])
			}
		}
	}
	g.messages.Add(1)
	return out, nil
}

// Aggregate is the server's step: sum all masked contributions (the
// masks cancel) and decode the signed totals. It requires every
// client's message — the no-dropout setting.
func (g *Group) Aggregate(masked [][]field.Elem) ([]int64, error) {
	if len(masked) != g.n {
		return nil, fmt.Errorf("secagg: got %d contributions, want all %d clients", len(masked), g.n)
	}
	acc := make([]field.Elem, g.length)
	for _, m := range masked {
		if len(m) != g.length {
			return nil, fmt.Errorf("secagg: contribution length %d, want %d", len(m), g.length)
		}
		for k := range acc {
			acc[k] = field.Add(acc[k], m[k])
		}
	}
	out := make([]int64, g.length)
	for k, v := range acc {
		out[k] = field.ToInt64(v)
	}
	return out, nil
}

// Messages returns the client→server messages sent so far (one per
// Mask call; the pairwise key agreement is a one-time setup).
func (g *Group) Messages() int64 { return g.messages.Load() }

// AggregateOver runs one aggregation round with every client on its own
// goroutine and the masked vectors carried over a transport mesh:
// client j masks values[j] and sends it to endpoint 0, which plays the
// aggregator, sums the contributions (the masks cancel) and decodes the
// signed totals. The same channel or TCP meshes that carry the BGW
// share traffic work here, so the masked messages are real traffic with
// measured counters.
func (g *Group) AggregateOver(mesh transport.Mesh, round uint64, values [][]int64) ([]int64, error) {
	if mesh.Parties() != g.n {
		return nil, fmt.Errorf("secagg: mesh has %d endpoints for %d clients", mesh.Parties(), g.n)
	}
	if len(values) != g.n {
		return nil, fmt.Errorf("secagg: got %d contributions, want all %d clients", len(values), g.n)
	}
	errs := make([]error, g.n)
	var total []int64
	var wg sync.WaitGroup
	for j := 0; j < g.n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			conn := mesh.Conn(j)
			masked, err := g.Mask(j, round, values[j])
			if err != nil {
				errs[j] = err
				conn.Close()
				return
			}
			if j != 0 {
				buf := make([]byte, 8*g.length)
				for k, v := range masked {
					binary.BigEndian.PutUint64(buf[8*k:], uint64(v))
				}
				errs[j] = conn.Send(0, buf)
				return
			}
			// Endpoint 0 aggregates: own contribution plus one message
			// from every other client.
			acc := masked
			for from := 1; from < g.n; from++ {
				buf, err := conn.Recv(from)
				if err != nil {
					errs[0] = err
					conn.Close()
					return
				}
				if len(buf) != 8*g.length {
					errs[0] = fmt.Errorf("secagg: contribution from client %d has %d bytes, want %d", from, len(buf), 8*g.length)
					conn.Close()
					return
				}
				for k := range acc {
					acc[k] = field.Add(acc[k], field.Elem(binary.BigEndian.Uint64(buf[8*k:])))
				}
			}
			out := make([]int64, g.length)
			for k, v := range acc {
				out[k] = field.ToInt64(v)
			}
			total = out
		}(j)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return total, nil
}

// AggregateNoiseOver is AggregateNoise with the masked shares carried
// over a transport mesh; bit-identical to AggregateNoise for the same
// RNG streams.
func (g *Group) AggregateNoiseOver(mesh transport.Mesh, round uint64, mu float64, clientRNGs []*randx.RNG) ([]int64, error) {
	if len(clientRNGs) != g.n {
		return nil, fmt.Errorf("secagg: %d RNGs for %d clients", len(clientRNGs), g.n)
	}
	share := mu / float64(g.n)
	values := make([][]int64, g.n)
	for j := 0; j < g.n; j++ {
		values[j] = clientRNGs[j].SkellamVec(g.length, share)
	}
	return g.AggregateOver(mesh, round, values)
}

// AggregateNoise is the SQM convenience: every client samples its
// Skellam share Sk(mu/n) per coordinate locally, masks it, and the
// server learns only the aggregate noise vector — exactly the
// distributed-DP noise of Algorithm 3, over the cheap linear transport.
func (g *Group) AggregateNoise(round uint64, mu float64, clientRNGs []*randx.RNG) ([]int64, error) {
	if len(clientRNGs) != g.n {
		return nil, fmt.Errorf("secagg: %d RNGs for %d clients", len(clientRNGs), g.n)
	}
	share := mu / float64(g.n)
	masked := make([][]field.Elem, g.n)
	for j := 0; j < g.n; j++ {
		var err error
		masked[j], err = g.Mask(j, round, clientRNGs[j].SkellamVec(g.length, share))
		if err != nil {
			return nil, err
		}
	}
	return g.Aggregate(masked)
}
