package secagg_test

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"sqm/internal/obs"
	"sqm/internal/protocol"
	"sqm/internal/secagg"
	"sqm/internal/transport"
)

// The acceptance scenario for the fault-tolerance layer: P = 5 clients
// run a 3-round session over a chaos mesh, ⌊(P−1)/2⌋ = 2 of them die
// mid-session (one crashing its transport hard, one going silently
// mute — the two failure shapes dropout detection must distinguish),
// and the session completes with the correct degraded aggregates. One
// more death and the same pipeline must fail with the typed quorum
// error instead of hanging.

const (
	chaosClients = 5
	chaosThresh  = 2 // = ⌊(P−1)/2⌋; quorum is t+1 = 3
	chaosRounds  = 3
	chaosLength  = 4
)

type chaosHarness struct {
	g      *secagg.TolerantGroup
	fm     *transport.FaultMesh
	rec    obs.Recorder
	values [][]int64

	mu      sync.Mutex
	reports map[uint32]*secagg.DropoutReport
}

// newChaosHarness wires a tolerant cohort over a fault mesh. deaths
// maps client → kind ("crash" tears the transport down, "mute" stops
// contributing silently); both fire at round 1.
func newChaosHarness(t *testing.T, rec obs.Recorder) *chaosHarness {
	t.Helper()
	g, err := secagg.NewTolerantGroup(chaosClients, chaosLength, chaosThresh, 42)
	if err != nil {
		t.Fatal(err)
	}
	values := make([][]int64, chaosClients)
	for j := range values {
		values[j] = make([]int64, chaosLength)
		for k := range values[j] {
			values[j][k] = int64(100*j + k + 1)
		}
	}
	return &chaosHarness{
		g:       g,
		fm:      transport.NewFaultMesh(transport.NewChanMesh(chaosClients, transport.WithRecorder(rec)), transport.FaultProfile{Seed: 42}),
		rec:     rec,
		values:  values,
		reports: map[uint32]*secagg.DropoutReport{},
	}
}

// hooks builds the session hooks. Client 0 aggregates with dropout
// detection; other clients contribute until their scripted death.
func (h *chaosHarness) hooks(deaths map[int]string) []protocol.ClientHooks {
	hooks := make([]protocol.ClientHooks, chaosClients)
	for i := 0; i < chaosClients; i++ {
		i := i
		hooks[i] = protocol.ClientHooks{
			OnParams: func(protocol.Params) ([]byte, error) { return []byte{byte(i)}, nil },
		}
		if i == 0 {
			hooks[i].OnEvalRequest = func(round uint32) error {
				report, err := h.g.CollectDropout(h.fm.Conn(0), uint64(round), h.values[0], secagg.CollectOptions{
					Timeout:  50 * time.Millisecond,
					Retries:  3,
					Recorder: h.rec,
					Seed:     42,
				})
				if err != nil {
					return err
				}
				h.mu.Lock()
				h.reports[round] = report
				h.mu.Unlock()
				return nil
			}
			continue
		}
		hooks[i].OnEvalRequest = func(round uint32) error {
			if kind, dead := deaths[i]; dead && round >= 1 {
				if kind == "crash" {
					h.fm.Crash(i)
				}
				return errors.New("client died mid-session")
			}
			return h.g.Contribute(h.fm.Conn(i), uint64(round), h.values[i])
		}
	}
	return hooks
}

func (h *chaosHarness) evaluate(round uint32) ([]int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.reports[round]
	if !ok {
		return nil, errors.New("no aggregate collected for round")
	}
	return r.Totals, nil
}

func (h *chaosHarness) wantSum(dead ...int) []int64 {
	isDead := map[int]bool{}
	for _, d := range dead {
		isDead[d] = true
	}
	out := make([]int64, chaosLength)
	for j, vs := range h.values {
		if isDead[j] {
			continue
		}
		for k, v := range vs {
			out[k] += v
		}
	}
	return out
}

// TestChaosMinorityDropoutCompletes: 2 of 5 clients die at round 1 —
// one hard crash, one silent stall — and the session still completes
// with correct per-round aggregates, with every layer's fault telemetry
// visible: recv-deadline expiries, retry counters, session.degraded in
// the JSON log, and session.dropouts == 2.
func TestChaosMinorityDropoutCompletes(t *testing.T) {
	var log bytes.Buffer
	rec := obs.NewLog(&log, "json", obs.LevelDebug)
	h := newChaosHarness(t, rec)
	defer h.fm.Close()
	deaths := map[int]string{1: "crash", 3: "mute"}

	params := protocol.Params{Gamma: 8, Mu: 1, NumClients: chaosClients, OutDim: chaosLength, Rounds: chaosRounds, Seed: 42}
	outcomes, err := protocol.RunSession(params, h.hooks(deaths), h.evaluate,
		protocol.WithRecorder(rec),
		protocol.WithTimeout(time.Second),
		protocol.WithDropoutTolerance(chaosThresh),
	)
	if err != nil {
		t.Fatal(err)
	}

	// The dead clients were excluded, the survivors finished all rounds.
	for _, d := range []int{1, 3} {
		if !outcomes[d].Dropped {
			t.Fatalf("client %d not marked Dropped: %+v", d, outcomes[d])
		}
	}
	for _, s := range []int{0, 2, 4} {
		if outcomes[s].Dropped || outcomes[s].Err != nil || len(outcomes[s].Results) != chaosRounds {
			t.Fatalf("survivor %d: %+v", s, outcomes[s])
		}
	}

	// Correctness of the degraded aggregates: full cohort at round 0,
	// survivors-only at rounds 1 and 2.
	wantByRound := [][]int64{h.wantSum(), h.wantSum(1, 3), h.wantSum(1, 3)}
	for r, want := range wantByRound {
		got := outcomes[0].Results[r].Scaled
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("round %d: scaled[%d] = %d, want %d", r, k, got[k], want[k])
			}
		}
	}

	// Every fault-tolerance layer left its telemetry trail.
	m := rec.Metrics()
	if got := m.Counter("session.dropouts").Value(); got != 2 {
		t.Fatalf("session.dropouts = %d, want 2", got)
	}
	if got := m.Counter("transport.chan.recv.timeouts").Value(); got == 0 {
		t.Fatal("transport.chan.recv.timeouts = 0, want > 0 (the mute client must expire deadlines)")
	}
	if got := m.Counter("secagg.collect.retries").Value(); got == 0 {
		t.Fatal("secagg.collect.retries = 0, want > 0")
	}
	if got := m.Counter("secagg.collect.giveups").Value(); got == 0 {
		t.Fatal("secagg.collect.giveups = 0, want > 0 (the mute client must exhaust its budget)")
	}
	if !strings.Contains(log.String(), "session.degraded") {
		t.Fatal("JSON log missing session.degraded event")
	}
	if stats := h.fm.Injected(); stats.Crashes != 1 {
		t.Fatalf("fault mesh crashes = %d, want 1", stats.Crashes)
	}
}

// TestChaosMajorityDropoutQuorumLoss: killing one client more than the
// threshold must fail the session promptly with the typed quorum-loss
// error — never a hang, never a silently wrong aggregate.
func TestChaosMajorityDropoutQuorumLoss(t *testing.T) {
	rec := obs.NewLog(bytes.NewBuffer(nil), "json", obs.LevelDebug)
	h := newChaosHarness(t, rec)
	defer h.fm.Close()
	deaths := map[int]string{1: "crash", 2: "crash", 3: "mute"}

	params := protocol.Params{Gamma: 8, Mu: 1, NumClients: chaosClients, OutDim: chaosLength, Rounds: chaosRounds, Seed: 42}
	type res struct{ err error }
	done := make(chan res, 1)
	go func() {
		_, err := protocol.RunSession(params, h.hooks(deaths), h.evaluate,
			protocol.WithRecorder(rec),
			protocol.WithTimeout(time.Second),
			protocol.WithDropoutTolerance(chaosThresh),
		)
		done <- res{err}
	}()
	select {
	case r := <-done:
		if !errors.Is(r.err, protocol.ErrQuorumLoss) {
			t.Fatalf("err = %v, want errors.Is(err, protocol.ErrQuorumLoss)", r.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("session hung on majority dropout")
	}
}
