package randx

import (
	"math"
	"testing"
)

func TestNewIsDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 10; i++ {
		if New(42).Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestNewSecureDeterministicByKey(t *testing.T) {
	var key [32]byte
	key[0] = 7
	a, b := NewSecure(key), NewSecure(key)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same key must reproduce the stream")
		}
	}
	var other [32]byte
	other[0] = 8
	c := NewSecure(other)
	same := 0
	for i := 0; i < 50; i++ {
		if NewSecure(key).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("different keys should diverge")
	}
	// The secure stream drives the samplers like any other source.
	if v := NewSecure(key).Skellam(5); v < -200 || v > 200 {
		t.Fatalf("implausible Skellam draw %d", v)
	}
}

func TestNewFromOS(t *testing.T) {
	a, err := NewFromOS()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFromOS()
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < 20; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("independently keyed OS RNGs should diverge")
	}
}

func TestForkDiverges(t *testing.T) {
	g := New(1)
	f := g.Fork()
	equal := 0
	for i := 0; i < 64; i++ {
		if g.Uint64() == f.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("forked stream tracks parent (%d/64 equal)", equal)
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	g := New(7)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if g.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !g.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	g := New(11)
	const n = 200000
	p := 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", got)
	}
}

func TestGaussianMoments(t *testing.T) {
	g := New(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := g.Gaussian(2, 3)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("mean = %v, want 2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("variance = %v, want 9", variance)
	}
}

func TestGaussianVecLengthAndScale(t *testing.T) {
	g := New(5)
	v := g.GaussianVec(10000, 2)
	if len(v) != 10000 {
		t.Fatalf("len = %d", len(v))
	}
	var sumsq float64
	for _, x := range v {
		sumsq += x * x
	}
	if math.Abs(sumsq/10000-4) > 0.3 {
		t.Errorf("sample variance = %v, want 4", sumsq/10000)
	}
}

func poissonMoments(t *testing.T, mu float64, n int) (mean, variance float64) {
	t.Helper()
	g := New(99)
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := float64(g.Poisson(mu))
		sum += x
		sumsq += x * x
	}
	mean = sum / float64(n)
	variance = sumsq/float64(n) - mean*mean
	return mean, variance
}

func TestPoissonSmallMu(t *testing.T) {
	for _, mu := range []float64{0.1, 1, 5, 20} {
		mean, variance := poissonMoments(t, mu, 100000)
		if math.Abs(mean-mu) > 0.05*mu+0.02 {
			t.Errorf("mu=%v: mean = %v", mu, mean)
		}
		if math.Abs(variance-mu) > 0.1*mu+0.05 {
			t.Errorf("mu=%v: variance = %v", mu, variance)
		}
	}
}

func TestPoissonLargeMuPTRS(t *testing.T) {
	for _, mu := range []float64{30, 100, 10000, 1e8} {
		mean, variance := poissonMoments(t, mu, 50000)
		if math.Abs(mean-mu) > 4*math.Sqrt(mu/50000)*math.Sqrt(mu)/math.Sqrt(mu)+0.01*mu {
			t.Errorf("mu=%v: mean = %v", mu, mean)
		}
		if math.Abs(variance-mu) > 0.1*mu {
			t.Errorf("mu=%v: variance = %v", mu, variance)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	g := New(1)
	for i := 0; i < 10; i++ {
		if g.Poisson(0) != 0 {
			t.Fatal("Poisson(0) must be 0")
		}
	}
}

func TestPoissonNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative mean")
		}
	}()
	New(1).Poisson(-1)
}

func TestPoissonHugeMuSurrogate(t *testing.T) {
	g := New(3)
	mu := 1e18 // beyond PoissonExactMax
	for i := 0; i < 100; i++ {
		x := float64(g.Poisson(mu))
		if math.Abs(x-mu) > 10*math.Sqrt(mu) {
			t.Fatalf("huge-mu Poisson sample %v is implausibly far from %v", x, mu)
		}
	}
}

func TestSkellamMoments(t *testing.T) {
	for _, mu := range []float64{0.5, 2, 50, 1e6} {
		g := New(13)
		const n = 50000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := float64(g.Skellam(mu))
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		if math.Abs(mean) > 5*math.Sqrt(2*mu/n) {
			t.Errorf("mu=%v: mean = %v, want ~0", mu, mean)
		}
		if math.Abs(variance-2*mu) > 0.1*2*mu {
			t.Errorf("mu=%v: variance = %v, want %v", mu, variance, 2*mu)
		}
	}
}

func TestSkellamZero(t *testing.T) {
	g := New(1)
	for i := 0; i < 10; i++ {
		if g.Skellam(0) != 0 {
			t.Fatal("Skellam(0) must be 0")
		}
	}
}

func TestSkellamHugeMuSurrogate(t *testing.T) {
	g := New(17)
	mu := 1e20
	const n = 2000
	var sumsq float64
	for i := 0; i < n; i++ {
		sumsq += float64(g.Skellam(mu)) * float64(g.Skellam(mu))
	}
	// E[X*Y] for independent X,Y is 0; just sanity-check magnitude of draws.
	g2 := New(18)
	var varsum float64
	for i := 0; i < n; i++ {
		x := float64(g2.Skellam(mu))
		varsum += x * x
	}
	if math.Abs(varsum/n-2*mu) > 0.15*2*mu {
		t.Fatalf("huge-mu Skellam variance = %v, want %v", varsum/n, 2*mu)
	}
	_ = sumsq
}

// Skellam is closed under summation: sum of k Sk(mu) draws matches
// Sk(k*mu) in its first two moments.
func TestSkellamClosureUnderSummation(t *testing.T) {
	g := New(23)
	const n = 20000
	const k = 4
	const mu = 3.0
	var sumsq float64
	for i := 0; i < n; i++ {
		var s int64
		for j := 0; j < k; j++ {
			s += g.Skellam(mu)
		}
		sumsq += float64(s) * float64(s)
	}
	variance := sumsq / n
	if math.Abs(variance-2*k*mu) > 0.1*2*k*mu {
		t.Fatalf("aggregated variance = %v, want %v", variance, 2.0*k*mu)
	}
}

func TestSkellamVec(t *testing.T) {
	v := New(1).SkellamVec(1000, 5)
	if len(v) != 1000 {
		t.Fatalf("len = %d", len(v))
	}
	nonzero := 0
	for _, x := range v {
		if x != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("Sk(5) vector should not be all zero")
	}
}

func TestStochasticRoundUnbiased(t *testing.T) {
	g := New(31)
	for _, v := range []float64{0.25, -1.7, 3.0, 1234.5, -0.001} {
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(g.StochasticRound(v))
		}
		mean := sum / n
		if math.Abs(mean-v) > 0.01 {
			t.Errorf("E[round(%v)] = %v", v, mean)
		}
	}
}

func TestStochasticRoundRange(t *testing.T) {
	g := New(37)
	for i := 0; i < 10000; i++ {
		v := (g.Float64() - 0.5) * 100
		r := g.StochasticRound(v)
		if float64(r) < math.Floor(v) || float64(r) > math.Ceil(v) {
			t.Fatalf("round(%v) = %d escapes its unit interval", v, r)
		}
	}
}

func TestStochasticRoundIntegerIsExact(t *testing.T) {
	g := New(41)
	for _, v := range []float64{-5, 0, 7, 123456} {
		for i := 0; i < 50; i++ {
			if got := g.StochasticRound(v); got != int64(v) {
				t.Fatalf("round(%v) = %d", v, got)
			}
		}
	}
}

func TestBernoulliSubsetRate(t *testing.T) {
	g := New(43)
	const m = 100000
	idx := g.BernoulliSubset(m, 0.01)
	if len(idx) < 800 || len(idx) > 1200 {
		t.Fatalf("subset size = %d, want ~1000", len(idx))
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatal("indices must be strictly increasing")
		}
	}
	if idx[len(idx)-1] >= m {
		t.Fatal("index out of range")
	}
}

func TestBernoulliSubsetExtremes(t *testing.T) {
	g := New(47)
	if got := g.BernoulliSubset(100, 0); got != nil {
		t.Fatalf("q=0 should give empty subset, got %v", got)
	}
	if got := g.BernoulliSubset(100, 1); len(got) != 100 {
		t.Fatalf("q=1 should give all indices, got %d", len(got))
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(53).Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func BenchmarkPoissonSmall(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		g.Poisson(5)
	}
}

func BenchmarkPoissonPTRS(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		g.Poisson(1e6)
	}
}

func BenchmarkSkellamLarge(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		g.Skellam(1e12)
	}
}
