package randx

import (
	"math"
	"sort"
	"testing"
)

func TestBernoulliExpMatchesProbability(t *testing.T) {
	g := New(1)
	for _, gamma := range []float64{0, 0.3, 1, 2.5} {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if g.bernoulliExp(gamma) {
				hits++
			}
		}
		got := float64(hits) / n
		want := math.Exp(-gamma)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("gamma=%v: P = %v, want %v", gamma, got, want)
		}
	}
}

func TestDiscreteLaplaceMoments(t *testing.T) {
	g := New(2)
	scale := 3.0
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		z := float64(g.DiscreteLaplace(scale))
		sum += z
		sumsq += z * z
	}
	mean := sum / n
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %v", mean)
	}
	// Var = 2 e^{1/t} / (e^{1/t} - 1)^2 for the discrete Laplace.
	e := math.Exp(1 / scale)
	wantVar := 2 * e / ((e - 1) * (e - 1))
	gotVar := sumsq / n
	if math.Abs(gotVar-wantVar) > 0.05*wantVar {
		t.Fatalf("variance = %v, want %v", gotVar, wantVar)
	}
}

func TestDiscreteGaussianMoments(t *testing.T) {
	g := New(3)
	for _, sigma := range []float64{1, 4, 20} {
		const n = 60000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			z := float64(g.DiscreteGaussian(sigma))
			sum += z
			sumsq += z * z
		}
		mean := sum / n
		variance := sumsq / n
		if math.Abs(mean) > 5*sigma/math.Sqrt(n)+0.05 {
			t.Fatalf("sigma=%v: mean = %v", sigma, mean)
		}
		// The discrete Gaussian's variance is within O(e^{-σ²}) of σ².
		if math.Abs(variance-sigma*sigma) > 0.05*sigma*sigma+0.2 {
			t.Fatalf("sigma=%v: variance = %v", sigma, variance)
		}
	}
}

func TestDiscreteGaussianPMFShape(t *testing.T) {
	// Ratio check against the unnormalized pmf at small sigma.
	g := New(4)
	const n = 400000
	counts := map[int64]int{}
	for i := 0; i < n; i++ {
		counts[g.DiscreteGaussian(1.5)]++
	}
	pmf := func(z int64) float64 { return math.Exp(-float64(z*z) / (2 * 1.5 * 1.5)) }
	for _, z := range []int64{0, 1, 2, 3} {
		gotRatio := float64(counts[z]) / float64(counts[0])
		wantRatio := pmf(z) / pmf(0)
		if math.Abs(gotRatio-wantRatio) > 0.03 {
			t.Fatalf("pmf ratio at %d: %v, want %v", z, gotRatio, wantRatio)
		}
	}
}

func TestDiscreteSamplersPanicOnBadParams(t *testing.T) {
	g := New(5)
	for _, f := range []func(){
		func() { g.DiscreteLaplace(0) },
		func() { g.DiscreteGaussian(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// ksDistance computes the Kolmogorov–Smirnov statistic between two
// integer samples.
func ksDistance(a, b []int64) float64 {
	fa := make([]float64, len(a))
	fb := make([]float64, len(b))
	for i, v := range a {
		fa[i] = float64(v)
	}
	for i, v := range b {
		fb[i] = float64(v)
	}
	sort.Float64s(fa)
	sort.Float64s(fb)
	var d float64
	i, j := 0, 0
	for i < len(fa) && j < len(fb) {
		// Advance both cursors through ties together: the CDFs are only
		// comparable between atoms of the discrete support.
		v := math.Min(fa[i], fb[j])
		for i < len(fa) && fa[i] == v {
			i++
		}
		for j < len(fb) && fb[j] == v {
			j++
		}
		if diff := math.Abs(float64(i)/float64(len(fa)) - float64(j)/float64(len(fb))); diff > d {
			d = diff
		}
	}
	return d
}

// The paper's reason for Skellam (§II): sums of per-client Skellam
// shares are *exactly* Skellam, while sums of per-client discrete
// Gaussians are measurably not discrete Gaussian at matched variance.
func TestClosureUnderSummationSkellamVsDiscreteGaussian(t *testing.T) {
	const (
		n       = 40000
		clients = 5
	)
	gA, gB := New(6), New(7)
	// Skellam: aggregate of clients shares vs single total draw.
	muShare := 0.08 // tiny per-client parameter: worst case for shape
	skSum := make([]int64, n)
	skOne := make([]int64, n)
	for i := 0; i < n; i++ {
		var s int64
		for c := 0; c < clients; c++ {
			s += gA.Skellam(muShare)
		}
		skSum[i] = s
		skOne[i] = gB.Skellam(muShare * clients)
	}
	dSk := ksDistance(skSum, skOne)

	// Discrete Gaussian at the same total variance 2·clients·muShare.
	sigmaTotal := math.Sqrt(2 * clients * muShare)
	sigmaShare := sigmaTotal / math.Sqrt(clients)
	dgSum := make([]int64, n)
	dgOne := make([]int64, n)
	for i := 0; i < n; i++ {
		var s int64
		for c := 0; c < clients; c++ {
			s += gA.DiscreteGaussian(sigmaShare)
		}
		dgSum[i] = s
		dgOne[i] = gB.DiscreteGaussian(sigmaTotal)
	}
	dDG := ksDistance(dgSum, dgOne)

	if dSk > 0.015 {
		t.Fatalf("Skellam closure violated: KS = %v", dSk)
	}
	if dDG < 3*dSk {
		t.Fatalf("expected discrete Gaussian to visibly break closure: KS(Sk)=%v, KS(DG)=%v", dSk, dDG)
	}
}
