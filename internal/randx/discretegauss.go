package randx

import (
	"math"

	"sqm/internal/invariant"
)

// This file implements exact sampling from the discrete Laplace and
// discrete Gaussian distributions (Canonne–Kamath–Steinke, "The
// Discrete Gaussian for Differential Privacy"). The discrete Gaussian
// is the main alternative integer-valued DP noise to Skellam; the paper
// prefers Skellam because it is closed under summation — each client
// can contribute an independent share whose aggregate is again Skellam,
// which the discrete Gaussian cannot offer. The sampler exists here so
// the ablation harness can demonstrate that difference empirically.

// bernoulliExp samples Bernoulli(exp(-g)) for g >= 0 exactly, via the
// CKS decomposition into factors with parameters in [0, 1].
func (g *RNG) bernoulliExp(gamma float64) bool {
	if gamma < 0 {
		panic(invariant.Violation("randx: bernoulliExp needs gamma >= 0"))
	}
	for gamma > 1 {
		if !g.bernoulliExpUnit(1) {
			return false
		}
		gamma--
	}
	return g.bernoulliExpUnit(gamma)
}

// bernoulliExpUnit samples Bernoulli(exp(-g)) for g in [0, 1] with the
// alternating-series method: count the longest run of successes of
// Bernoulli(g/k); exp(-g) equals the probability the run length is
// even.
func (g *RNG) bernoulliExpUnit(gamma float64) bool {
	k := 1
	for {
		if !g.Bernoulli(gamma / float64(k)) {
			return k%2 == 1
		}
		k++
	}
}

// DiscreteLaplace samples Z with P[Z = z] ∝ exp(-|z|/t) on the integers
// (parameter t > 0), exactly.
func (g *RNG) DiscreteLaplace(t float64) int64 {
	if t <= 0 || math.IsNaN(t) {
		panic(invariant.Violation("randx: DiscreteLaplace scale must be positive"))
	}
	for {
		// Sample magnitude from the geometric tail.
		var mag int64
		for {
			if g.bernoulliExp(1 / t) {
				mag++
			} else {
				break
			}
		}
		if mag == 0 {
			// z = 0 with its correct acceptance: positive and negative
			// branches would double-count zero; accept half the time.
			if g.Bernoulli(0.5) {
				continue
			}
			return 0
		}
		if g.Bernoulli(0.5) {
			return -mag
		}
		return mag
	}
}

// DiscreteGaussian samples Z with P[Z = z] ∝ exp(-z²/(2σ²)) on the
// integers, exactly, by rejection from a discrete Laplace (CKS
// Algorithm 3). Practical for σ up to ~10⁷; beyond that callers should
// question why they need discrete noise that wide.
func (g *RNG) DiscreteGaussian(sigma float64) int64 {
	if sigma <= 0 || math.IsNaN(sigma) {
		panic(invariant.Violation("randx: DiscreteGaussian sigma must be positive"))
	}
	s2 := sigma * sigma
	t := math.Floor(sigma) + 1
	for {
		z := g.DiscreteLaplace(t)
		// Accept with exp(-(|z| - s2/t)² / (2 s2)).
		d := math.Abs(float64(z)) - s2/t
		if g.bernoulliExp(d * d / (2 * s2)) {
			return z
		}
	}
}

// DiscreteGaussianVec fills a slice with iid samples.
func (g *RNG) DiscreteGaussianVec(n int, sigma float64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = g.DiscreteGaussian(sigma)
	}
	return out
}
