// Package randx provides the seeded random samplers used throughout the
// SQM implementation: Bernoulli coins for stochastic rounding, Gaussian
// noise for the centralized/local baselines, and exact Poisson and
// Skellam samplers for the distributed mechanism itself.
//
// All sampling is driven by an explicit *RNG so experiments are
// reproducible; nothing reads global randomness.
package randx

import (
	cryptorand "crypto/rand"
	"math"
	"math/rand/v2"

	"sqm/internal/invariant"
	"sqm/internal/mathx"
)

// PoissonExactMax is the largest mean for which Poisson (and hence
// Skellam) sampling uses the exact rejection sampler. Above it the
// samplers switch to a rounded-Gaussian surrogate whose total-variation
// distance from the true law is O(1/sqrt(mu)) < 1e-7 — far below the
// delta = 1e-5 regime of the experiments (see DESIGN.md, substitution 2).
const PoissonExactMax = float64(1 << 51)

// RNG is a seeded random source. The zero value is not usable; construct
// with New.
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded deterministically from seed. The PCG
// stream is statistically strong but predictable; experiments use it
// for reproducibility.
func New(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// NewSecure returns an RNG driven by the ChaCha8 cryptographic stream
// cipher. Production deployments must use this (or NewFromOS) for the
// randomness of Shamir shares, Beaver triples and stochastic rounding:
// a predictable stream would let an adversary strip the shares and
// reconstruct the secrets.
func NewSecure(key [32]byte) *RNG {
	return &RNG{r: rand.New(rand.NewChaCha8(key))}
}

// NewFromOS returns a ChaCha8 RNG keyed from the operating system's
// entropy source.
func NewFromOS() (*RNG, error) {
	var key [32]byte
	if _, err := cryptorand.Read(key[:]); err != nil {
		return nil, err
	}
	return NewSecure(key), nil
}

// Fork derives an independent RNG from the current stream. Useful for
// giving each simulated client its own private randomness.
func (g *RNG) Fork() *RNG {
	return New(g.r.Uint64())
}

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform value in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Perm returns a uniform permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Gaussian returns a normal sample with the given mean and standard
// deviation.
func (g *RNG) Gaussian(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// GaussianVec fills a length-n slice with iid N(0, std^2) samples.
func (g *RNG) GaussianVec(n int, std float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = std * g.r.NormFloat64()
	}
	return v
}

// Poisson returns a sample from Poisson(mu). Sampling is exact
// (inversion for small mu, the PTRS transformed-rejection sampler for
// large mu) for mu <= PoissonExactMax, and a rounded Gaussian with
// matched mean/variance beyond that.
func (g *RNG) Poisson(mu float64) int64 {
	switch {
	case mu < 0 || math.IsNaN(mu):
		panic(invariant.Violation("randx: Poisson mean must be non-negative"))
	case mathx.EqualWithin(mu, 0, 0):
		return 0
	case mu < 30:
		return g.poissonInversion(mu)
	case mu <= PoissonExactMax:
		return g.poissonPTRS(mu)
	default:
		v := math.Round(g.Gaussian(mu, math.Sqrt(mu)))
		if v < 0 {
			v = 0
		}
		return int64(v)
	}
}

// poissonInversion samples Poisson(mu) by sequential inversion of the
// CDF. Exact; O(mu) time, used only for small means.
func (g *RNG) poissonInversion(mu float64) int64 {
	u := g.r.Float64()
	p := math.Exp(-mu)
	cum := p
	var k int64
	for u > cum {
		k++
		p *= mu / float64(k)
		cum += p
		if mathx.EqualWithin(p, 0, 0) {
			// Floating underflow in the far tail; the residual
			// probability mass here is < 1e-300.
			break
		}
	}
	return k
}

// poissonPTRS samples Poisson(mu) with Hörmann's PTRS transformed
// rejection sampler (W. Hörmann, 1993). Valid for mu >= 10; exact up to
// floating-point evaluation of the acceptance test.
func (g *RNG) poissonPTRS(mu float64) int64 {
	logMu := math.Log(mu)
	b := 0.931 + 2.53*math.Sqrt(mu)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := g.r.Float64() - 0.5
		v := g.r.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + mu + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(kf)
		}
		if kf < 0 || (us < 0.013 && v > us) {
			continue
		}
		k := kf
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMu-mu-lg {
			return int64(kf)
		}
	}
}

// Skellam returns a sample from the symmetric Skellam distribution
// Sk(mu), i.e. the difference of two independent Poisson(mu) draws.
// Mean 0, variance 2*mu. For mu > PoissonExactMax it uses the
// rounded-Gaussian surrogate described in DESIGN.md.
func (g *RNG) Skellam(mu float64) int64 {
	switch {
	case mu < 0 || math.IsNaN(mu):
		panic(invariant.Violation("randx: Skellam parameter must be non-negative"))
	case mathx.EqualWithin(mu, 0, 0):
		return 0
	case mu <= PoissonExactMax:
		return g.Poisson(mu) - g.Poisson(mu)
	default:
		return int64(math.Round(g.Gaussian(0, math.Sqrt(2*mu))))
	}
}

// SkellamVec fills a length-n slice with iid Sk(mu) samples.
func (g *RNG) SkellamVec(n int, mu float64) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = g.Skellam(mu)
	}
	return v
}

// StochasticRound rounds v to one of its two nearest integers so that
// the result is unbiased: E[StochasticRound(v)] = v. This is the coin
// flip of Algorithm 2 in the paper.
func (g *RNG) StochasticRound(v float64) int64 {
	f := math.Floor(v)
	frac := v - f
	if g.Bernoulli(frac) {
		return int64(f) + 1
	}
	return int64(f)
}

// BernoulliSubset returns the indices i in [0, m) each independently
// included with probability q (Poisson subsampling, used for the shared
// batch sampling in the logistic-regression instantiation).
func (g *RNG) BernoulliSubset(m int, q float64) []int {
	var idx []int
	for i := 0; i < m; i++ {
		if g.Bernoulli(q) {
			idx = append(idx, i)
		}
	}
	return idx
}
