// Package invariant is the designated escape hatch for internal
// invariant violations: conditions that are unreachable unless SQM
// itself (not its caller's data) is buggy — a foreign share handed to
// the wrong engine, a ragged matrix, an inverse of zero. The repo's
// panic policy, machine-checked by the sqmlint panicpolicy analyzer,
// is that every panic outside this package must carry a payload built
// by Violation, so intentional invariant panics are grep-able and
// typed, and everything else must return an error. Exported API
// surfaces (package sqm, internal/protocol, internal/cli) may not
// panic at all.
package invariant

import "fmt"

// Error is the payload of every intentional invariant panic in SQM.
// Recover sites can classify it with errors.As to distinguish a broken
// internal invariant from a stray runtime panic.
type Error struct {
	msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return e.msg }

// Violation builds the panic payload for a broken internal invariant.
// It is the only sanctioned argument to panic outside this package:
//
//	panic(invariant.Violation("bgw: foreign share"))
//
// The format string should start with the reporting package's name,
// matching the repo's error message convention.
func Violation(format string, args ...any) *Error {
	if len(args) == 0 {
		return &Error{msg: format}
	}
	return &Error{msg: fmt.Sprintf(format, args...)}
}
