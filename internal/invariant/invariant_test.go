package invariant

import (
	"errors"
	"testing"
)

func TestViolationFormats(t *testing.T) {
	e := Violation("field: inverse of zero")
	if got := e.Error(); got != "field: inverse of zero" {
		t.Fatalf("plain message: got %q", got)
	}
	e = Violation("bgw: party %d out of range [0,%d)", 7, 3)
	if got := e.Error(); got != "bgw: party 7 out of range [0,3)" {
		t.Fatalf("formatted message: got %q", got)
	}
}

func TestViolationIsClassifiable(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic payload is not an error: %T", r)
		}
		var ie *Error
		if !errors.As(err, &ie) {
			t.Fatalf("payload not classifiable as *invariant.Error: %v", err)
		}
	}()
	panic(Violation("test: deliberate"))
}
