package audit

import (
	"math"
	"testing"

	"sqm/internal/dp"
	"sqm/internal/randx"
)

// skellamPair builds neighboring samplers for F(X)=0 vs F(X')=1 with
// Sk(mu) noise — the scalar core of SQM.
func skellamPair(mu float64) (Sampler, Sampler) {
	on := func(shift float64) Sampler {
		return func(trial int) float64 {
			g := randx.New(uint64(trial)*2654435761 + 17)
			return shift + float64(g.Skellam(mu))
		}
	}
	return on(0), on(1)
}

func TestConfigValidation(t *testing.T) {
	a, b := skellamPair(10)
	if _, err := EstimateEpsilon(a, b, Config{Trials: 10}); err == nil {
		t.Fatal("tiny trial count must be rejected")
	}
	if _, err := EstimateEpsilon(a, b, Config{Bins: 1}); err == nil {
		t.Fatal("single bin must be rejected")
	}
	if _, err := EstimateEpsilon(a, b, Config{Delta: -1}); err == nil {
		t.Fatal("negative delta must be rejected")
	}
}

func TestSkellamMechanismPassesAudit(t *testing.T) {
	// mu = 8 with sensitivity 1: theoretical eps (delta=1e-5) from the
	// accountant.
	eps, _ := dp.SkellamEpsilon(1, 1, 8, 1, 1, 1e-5, 128)
	a, b := skellamPair(8)
	r, err := EstimateEpsilon(a, b, Config{Trials: 30000, Bins: 30, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if r.EpsilonLower <= 0 {
		t.Fatal("neighboring inputs must witness some privacy loss")
	}
	if r.EpsilonLower > eps+0.3 {
		t.Fatalf("empirical eps %v far above theoretical %v — implementation leak", r.EpsilonLower, eps)
	}
}

func TestNoiselessMechanismFailsAudit(t *testing.T) {
	// A "DP" mechanism that forgot its noise: empirical epsilon blows up.
	onX := func(trial int) float64 { return 0 }
	onY := func(trial int) float64 { return 1 }
	r, err := EstimateEpsilon(onX, onY, Config{Trials: 5000, Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.EpsilonLower, 1) && r.EpsilonLower < 3 {
		t.Fatalf("noiseless mechanism should be flagged, got %v", r.EpsilonLower)
	}
}

func TestUndernoisedMechanismFlagged(t *testing.T) {
	// Gaussian noise 10x too small for a claimed eps=1 budget.
	sigma, err := dp.AnalyticGaussianSigma(1, 1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	weak := sigma / 10
	on := func(shift float64) Sampler {
		return func(trial int) float64 {
			g := randx.New(uint64(trial)*97 + 3)
			return shift + g.Gaussian(0, weak)
		}
	}
	r, err := EstimateEpsilon(on(0), on(1), Config{Trials: 30000, Bins: 40, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if r.EpsilonLower < 2 {
		t.Fatalf("under-noised mechanism should exceed its eps=1 claim clearly, got %v", r.EpsilonLower)
	}
}

func TestProperGaussianPassesAudit(t *testing.T) {
	sigma, err := dp.AnalyticGaussianSigma(1, 1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	on := func(shift float64) Sampler {
		return func(trial int) float64 {
			g := randx.New(uint64(trial)*131 + 7)
			return shift + g.Gaussian(0, sigma)
		}
	}
	r, err := EstimateEpsilon(on(0), on(1), Config{Trials: 30000, Bins: 40, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if r.EpsilonLower > 1.3 {
		t.Fatalf("calibrated Gaussian flagged: empirical %v for claimed 1", r.EpsilonLower)
	}
}

func TestIdenticalConstantMechanisms(t *testing.T) {
	on := func(trial int) float64 { return 42 }
	r, err := EstimateEpsilon(on, on, Config{Trials: 1000, Bins: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.EpsilonLower != 0 {
		t.Fatalf("identical constants have zero privacy loss, got %v", r.EpsilonLower)
	}
}

func TestDistinctConstantMechanisms(t *testing.T) {
	// Same-range degenerate outputs with a blatant difference.
	onX := func(trial int) float64 { return 0 }
	onY := func(trial int) float64 { return 0.0001 }
	r, err := EstimateEpsilon(onX, onY, Config{Trials: 1000, Bins: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.EpsilonLower < 3 && !math.IsInf(r.EpsilonLower, 1) {
		t.Fatalf("blatant difference not flagged: %v", r.EpsilonLower)
	}
}
