// Package audit empirically lower-bounds the privacy loss of a
// mechanism by measurement: run it many times on two *neighboring*
// inputs, histogram the outputs, and report the largest observed
// log-likelihood ratio. A sound (ε, δ)-DP mechanism must keep the
// estimate below ε (up to sampling error); a broken implementation —
// forgotten noise, sensitivity underestimation, biased rounding in the
// wrong place — shows up as an estimate far above the claimed budget.
// This is the style of check Mironov's floating-point attack argues
// every DP library needs (§VII "Numerical issues").
package audit

import (
	"errors"
	"math"
	"sort"

	"sqm/internal/mathx"
)

// Sampler draws one output of the mechanism on a fixed input; trial
// indexes the invocation so implementations can reseed deterministically.
type Sampler func(trial int) float64

// Config tunes the estimator.
type Config struct {
	Trials int     // samples per input (default 20000)
	Bins   int     // histogram bins over the pooled range (default 40)
	Delta  float64 // the δ slack subtracted from the numerator mass
	// MinMass discards bins whose pooled probability is below this
	// threshold (default 2/Trials); rare bins carry too much sampling
	// noise to witness a likelihood ratio.
	MinMass float64
}

func (c *Config) normalize() error {
	if c.Trials == 0 {
		c.Trials = 20000
	}
	if c.Trials < 100 {
		return errors.New("audit: need at least 100 trials")
	}
	if c.Bins == 0 {
		c.Bins = 40
	}
	if c.Bins < 2 {
		return errors.New("audit: need at least 2 bins")
	}
	if c.Delta < 0 {
		return errors.New("audit: negative delta")
	}
	if mathx.EqualWithin(c.MinMass, 0, 0) {
		c.MinMass = 2 / float64(c.Trials)
	}
	return nil
}

// Result is one audit outcome.
type Result struct {
	EpsilonLower float64 // largest observed privacy loss
	WitnessBin   int     // bin index achieving it
	Trials, Bins int
}

// EstimateEpsilon runs both samplers and returns the empirical privacy
// loss max over bins and directions of log((p − δ)/q), with add-one
// smoothing on the denominator so an empty bin cannot fabricate an
// infinite ratio. The estimate is a *lower bound witness*: values far
// above the theoretical ε indicate a violation; values below it are
// expected (the histogram test has limited power).
func EstimateEpsilon(onX, onNeighbor Sampler, cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	xs := make([]float64, cfg.Trials)
	ys := make([]float64, cfg.Trials)
	for i := 0; i < cfg.Trials; i++ {
		xs[i] = onX(i)
		ys[i] = onNeighbor(i)
	}
	lo, hi := pooledRange(xs, ys)
	if !(hi > lo) {
		// Degenerate: both mechanisms are constant. Identical
		// constants are perfectly private; distinct ones blatant.
		if mathx.EqualWithin(xs[0], ys[0], 0) {
			return &Result{EpsilonLower: 0, Trials: cfg.Trials, Bins: cfg.Bins}, nil
		}
		return &Result{EpsilonLower: math.Inf(1), Trials: cfg.Trials, Bins: cfg.Bins}, nil
	}
	cx := histogram(xs, lo, hi, cfg.Bins)
	cy := histogram(ys, lo, hi, cfg.Bins)
	t := float64(cfg.Trials)
	worst, witness := 0.0, -1
	for b := 0; b < cfg.Bins; b++ {
		p := float64(cx[b]) / t
		q := float64(cy[b]) / t
		if p+q < cfg.MinMass {
			continue
		}
		// Both directions, smoothed denominators.
		if r := math.Log((p - cfg.Delta) / ((float64(cy[b]) + 1) / t)); r > worst {
			worst, witness = r, b
		}
		if r := math.Log((q - cfg.Delta) / ((float64(cx[b]) + 1) / t)); r > worst {
			worst, witness = r, b
		}
	}
	return &Result{EpsilonLower: worst, WitnessBin: witness, Trials: cfg.Trials, Bins: cfg.Bins}, nil
}

func pooledRange(xs, ys []float64) (lo, hi float64) {
	all := make([]float64, 0, len(xs)+len(ys))
	all = append(all, xs...)
	all = append(all, ys...)
	sort.Float64s(all)
	// Trim the extreme 0.1% tails so one outlier cannot stretch every
	// bin into uselessness.
	k := len(all) / 1000
	return all[k], all[len(all)-1-k]
}

func histogram(vs []float64, lo, hi float64, bins int) []int {
	h := make([]int, bins)
	w := (hi - lo) / float64(bins)
	for _, v := range vs {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h[b]++
	}
	return h
}
