package audit

import (
	"testing"

	"sqm/internal/core"
	"sqm/internal/dp"
	"sqm/internal/linalg"
	"sqm/internal/poly"
)

// TestAuditRealSQMPipeline runs the membership audit against the actual
// mechanism end to end: neighboring databases differing in one record,
// the full quantize→evaluate→noise→rescale pipeline, and the Lemma 3
// calibration. The empirical privacy loss must stay within the claimed
// budget.
func TestAuditRealSQMPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const (
		gamma  = 64.0
		eps    = 1.0
		delta  = 1e-5
		trials = 20000
	)
	// One-dimensional monomial x1·x2 over records with ‖x‖ ≤ 1:
	// quantized sensitivity γ²·max|f| + slack (Lemma 3's Δ).
	target := poly.Monomial{Coef: 1, Exps: []int{1, 1}}
	d2 := gamma*gamma + 2*gamma + 1 // (γ·1+1)² crude per-record bound
	mu, err := dp.CalibrateSkellamMu(eps, delta, d2, d2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}

	base := linalg.FromRows([][]float64{
		{0.5, 0.5},
		{0.25, 0.75},
		{0.6, 0.2},
	})
	withRecord := linalg.FromRows([][]float64{
		{0.5, 0.5},
		{0.25, 0.75},
		{0.6, 0.2},
		{0.7, 0.7}, // the disputed record, near-worst-case f(x)
	})
	run := func(x *linalg.Matrix) Sampler {
		return func(trial int) float64 {
			est, _, err := core.EvaluateMonomialSum(target, x, core.Params{
				Gamma: gamma, Mu: mu, NumClients: 2, Seed: uint64(trial)*7919 + 13,
			})
			if err != nil {
				t.Fatal(err)
			}
			return est
		}
	}
	r, err := EstimateEpsilon(run(base), run(withRecord), Config{Trials: trials, Bins: 30, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	if r.EpsilonLower <= 0 {
		t.Fatal("adding a record must witness some privacy loss")
	}
	if r.EpsilonLower > eps+0.35 {
		t.Fatalf("empirical privacy loss %v exceeds the claimed eps=%v — pipeline leak", r.EpsilonLower, eps)
	}
}
