// Package cli implements the sqmrun command logic — applying the SQM
// mechanisms to user-supplied CSV files — behind a testable interface;
// cmd/sqmrun is a thin wrapper around Run.
package cli

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"

	"sqm/internal/core"
	"sqm/internal/csvio"
	"sqm/internal/dp"
	"sqm/internal/linreg"
	"sqm/internal/logreg"
	"sqm/internal/mathx"
	"sqm/internal/obs"
	"sqm/internal/pca"
)

// Commands lists the supported subcommands.
func Commands() []string { return []string{"pca", "covariance", "lr", "ridge"} }

// Run executes one sqmrun subcommand. Results go to stdout (or -out);
// diagnostics to stderr.
func Run(cmd string, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		data    = fs.String("data", "", "input CSV file (required)")
		header  = fs.Bool("header", false, "first CSV row is a header")
		label   = fs.String("label", "", "label column name/index (lr, ridge)")
		out     = fs.String("out", "", "output CSV file (default stdout)")
		eps     = fs.Float64("eps", 1, "privacy budget epsilon")
		delta   = fs.Float64("delta", 1e-5, "privacy parameter delta")
		gamma   = fs.Float64("gamma", 4096, "SQM scaling parameter")
		k       = fs.Int("k", 5, "principal components (pca)")
		epochs  = fs.Int("epochs", 5, "training epochs (lr)")
		q       = fs.Float64("q", 0.01, "Poisson sampling rate (lr)")
		seed    = fs.Uint64("seed", 1, "reproducibility seed")
		engine  = fs.String("engine", "plain", "evaluation backend: plain, bgw, actor, actor-net")
		nparty  = fs.Int("parties", 0, "MPC party count (engines other than plain)")
		timeout = fs.Duration("timeout", 0, "per-receive deadline for MPC transports (0 blocks forever)")
		retries = fs.Int("retries", 1, "attempt budget for transient transport setup failures (TCP dials)")

		verbose   = fs.Bool("v", false, "debug-level telemetry on stderr (implies -log-format text)")
		logFormat = fs.String("log-format", "", "structured telemetry on stderr: text or json")
		debugAddr = fs.String("debug-addr", "", "serve /metrics and /debug/pprof on this address")
		traceDir  = fs.String("trace-dir", "", "dump per-party flight-recorder traces (JSONL) into this directory; merge with sqmtrace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logFormat != "" && *logFormat != "text" && *logFormat != "json" {
		return fmt.Errorf("-log-format must be text or json, got %q", *logFormat)
	}
	// Telemetry is on when any observability flag is set. -v lowers the
	// level to debug; -debug-addr alone keeps logging quiet (warn+) but
	// still collects metrics for the HTTP endpoint.
	var rec obs.Recorder
	if *verbose || *logFormat != "" || *debugAddr != "" {
		format := *logFormat
		if format == "" {
			format = "text"
		}
		min := obs.LevelInfo
		if *verbose {
			min = obs.LevelDebug
		} else if *logFormat == "" {
			min = obs.LevelWarn
		}
		rec = obs.NewLog(stderr, format, min)
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		srv := &http.Server{Handler: obs.NewDebugMux(rec.Metrics())}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(stderr, "sqmrun: debug endpoint at http://%s/metrics\n", ln.Addr())
	}
	kind, err := core.ParseEngineKind(*engine)
	if err != nil {
		return err
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout must be non-negative, got %v", *timeout)
	}
	if *retries < 1 {
		return fmt.Errorf("-retries must be at least 1, got %d", *retries)
	}
	fault := core.FaultConfig{RecvTimeout: *timeout, DialRetries: *retries}
	if kind.IsMPC() && *nparty == 0 {
		*nparty = 3
	}
	// -trace-dir turns on the session flight recorder: one trace
	// context shared by the coordinator and (for MPC engines) every
	// mesh party, dumped as per-party JSONL on the way out so crashes
	// still leave evidence. sqmtrace merges the dumps.
	var tc *obs.TraceContext
	if *traceDir != "" {
		parties := 0
		if kind.IsMPC() {
			parties = *nparty
		}
		tc = obs.NewTraceContext(obs.DeriveTraceID(*seed, uint64(parties)), parties)
		rec = tc.Coordinator().Wrap(rec)
		defer func() {
			files, err := tc.DumpAll(*traceDir)
			if err != nil {
				fmt.Fprintf(stderr, "sqmrun: trace dump failed: %v\n", err)
				return
			}
			fmt.Fprintf(stderr, "sqmrun: wrote %d trace dump(s) to %s (merge with: sqmtrace %s)\n",
				len(files), *traceDir, *traceDir)
		}()
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	if (cmd == "lr" || cmd == "ridge") && *label == "" {
		return fmt.Errorf("%s needs -label", cmd)
	}
	loaded, err := csvio.Load(*data, csvio.Options{HasHeader: *header, LabelColumn: *label})
	if err != nil {
		return err
	}
	if clipped := csvio.NormalizeRows(loaded.X, 1); clipped > 0 {
		fmt.Fprintf(stderr, "sqmrun: clipped %d/%d rows to unit norm (DP requires the bound)\n",
			clipped, loaded.X.Rows)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	// With telemetry on, an accountant ledger re-derives the run's
	// privacy cost from the calibrated noise and prints the final ε(δ).
	acct := dp.NewAccountant(0)
	if rec != nil {
		acct.Observe(rec, *delta)
		acct.SetBudget(*eps)
	}
	ledgerLine := func() {
		if rec == nil {
			return
		}
		e, alpha := acct.Epsilon(*delta)
		fmt.Fprintf(stderr, "sqmrun: privacy ledger: eps(delta=%g) = %.4f @ alpha=%d over %d release(s)\n",
			*delta, e, alpha, acct.Releases())
	}

	switch cmd {
	case "pca":
		r, err := pca.SQM(loaded.X, pca.Config{
			K: *k, Eps: *eps, Delta: *delta, C: 1, Gamma: *gamma, Seed: *seed,
			Engine: kind, Parties: *nparty, Recorder: rec, Trace: tc, Fault: fault,
		})
		if err != nil {
			return err
		}
		d2, d1 := pca.Sensitivities(*gamma, 1, loaded.X.Cols)
		acct.AddSkellam(d1, d2, r.Mu)
		ledgerLine()
		fmt.Fprintf(stderr, "sqmrun: captured variance ||XV||_F^2 = %.4f at (eps=%g, delta=%g)\n",
			r.Utility, *eps, *delta)
		return csvio.Write(w, r.Subspace, nil)
	case "covariance":
		mu, err := pca.CalibrateMu(*eps, *delta, *gamma, 1, loaded.X.Cols)
		if err != nil {
			return err
		}
		cov, _, err := core.Covariance(loaded.X, core.Params{
			Gamma: *gamma, Mu: mu, Seed: *seed, Engine: kind, Parties: *nparty, Recorder: rec, Trace: tc, Fault: fault,
		})
		if err != nil {
			return err
		}
		d2, d1 := pca.Sensitivities(*gamma, 1, loaded.X.Cols)
		acct.AddSkellam(d1, d2, mu)
		ledgerLine()
		return csvio.Write(w, cov, loaded.Header)
	case "lr":
		for i, y := range loaded.Labels {
			if !mathx.EqualWithin(y, 0, 0) && !mathx.EqualWithin(y, 1, 0) {
				return fmt.Errorf("lr needs 0/1 labels; row %d has %v", i+1, y)
			}
		}
		cfg := logreg.Config{
			Eps: *eps, Delta: *delta, Gamma: *gamma,
			Epochs: *epochs, SampleRate: *q, Seed: *seed,
			Engine: kind, Parties: *nparty, Recorder: rec, Trace: tc, Fault: fault,
		}
		m, err := logreg.TrainSQM(loaded.X, loaded.Labels, cfg)
		if err != nil {
			return err
		}
		if mu, err := logreg.CalibrateMu(cfg, loaded.X.Cols); err == nil {
			d2, d1 := logreg.Sensitivities(*gamma, loaded.X.Cols)
			acct.AddSubsampledSkellam(d1, d2, mu, cfg.SampleRate, cfg.Rounds())
			ledgerLine()
		}
		fmt.Fprintf(stderr, "sqmrun: training accuracy %.4f at (eps=%g, delta=%g)\n",
			logreg.Accuracy(m, loaded.X, loaded.Labels), *eps, *delta)
		return csvio.WriteVector(w, m.W, "weight")
	case "ridge":
		clippedY := 0
		for i, y := range loaded.Labels {
			if y > 1 {
				loaded.Labels[i], clippedY = 1, clippedY+1
			} else if y < -1 {
				loaded.Labels[i], clippedY = -1, clippedY+1
			}
		}
		if clippedY > 0 {
			fmt.Fprintf(stderr, "sqmrun: clipped %d labels to [-1, 1]\n", clippedY)
		}
		m, err := linreg.SQM(loaded.X, loaded.Labels, linreg.Config{
			Eps: *eps, Delta: *delta, C: 1, B: 1, Gamma: *gamma, Seed: *seed,
			Engine: kind, Parties: *nparty, Recorder: rec, Trace: tc, Fault: fault,
		})
		if err != nil {
			return err
		}
		// Re-derive the calibrated mu of the augmented-matrix release
		// (C = B = 1 means the augmented norm bound is √2).
		cAug := math.Sqrt2
		if mu, err := pca.CalibrateMu(*eps, *delta, *gamma, cAug, loaded.X.Cols+1); err == nil {
			d2, d1 := pca.Sensitivities(*gamma, cAug, loaded.X.Cols+1)
			acct.AddSkellam(d1, d2, mu)
			ledgerLine()
		}
		fmt.Fprintf(stderr, "sqmrun: training R^2 = %.4f at (eps=%g, delta=%g)\n",
			linreg.R2(m, loaded.X, loaded.Labels), *eps, *delta)
		return csvio.WriteVector(w, m.W, "weight")
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
