// Package cli implements the sqmrun command logic — applying the SQM
// mechanisms to user-supplied CSV files — behind a testable interface;
// cmd/sqmrun is a thin wrapper around Run.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sqm/internal/core"
	"sqm/internal/csvio"
	"sqm/internal/linreg"
	"sqm/internal/logreg"
	"sqm/internal/pca"
)

// Commands lists the supported subcommands.
func Commands() []string { return []string{"pca", "covariance", "lr", "ridge"} }

// Run executes one sqmrun subcommand. Results go to stdout (or -out);
// diagnostics to stderr.
func Run(cmd string, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		data   = fs.String("data", "", "input CSV file (required)")
		header = fs.Bool("header", false, "first CSV row is a header")
		label  = fs.String("label", "", "label column name/index (lr, ridge)")
		out    = fs.String("out", "", "output CSV file (default stdout)")
		eps    = fs.Float64("eps", 1, "privacy budget epsilon")
		delta  = fs.Float64("delta", 1e-5, "privacy parameter delta")
		gamma  = fs.Float64("gamma", 4096, "SQM scaling parameter")
		k      = fs.Int("k", 5, "principal components (pca)")
		epochs = fs.Int("epochs", 5, "training epochs (lr)")
		q      = fs.Float64("q", 0.01, "Poisson sampling rate (lr)")
		seed   = fs.Uint64("seed", 1, "reproducibility seed")
		engine = fs.String("engine", "plain", "evaluation backend: plain, bgw, actor, actor-net")
		nparty = fs.Int("parties", 0, "MPC party count (engines other than plain)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := core.ParseEngineKind(*engine)
	if err != nil {
		return err
	}
	if kind.IsMPC() && *nparty == 0 {
		*nparty = 3
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	if (cmd == "lr" || cmd == "ridge") && *label == "" {
		return fmt.Errorf("%s needs -label", cmd)
	}
	loaded, err := csvio.Load(*data, csvio.Options{HasHeader: *header, LabelColumn: *label})
	if err != nil {
		return err
	}
	if clipped := csvio.NormalizeRows(loaded.X, 1); clipped > 0 {
		fmt.Fprintf(stderr, "sqmrun: clipped %d/%d rows to unit norm (DP requires the bound)\n",
			clipped, loaded.X.Rows)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch cmd {
	case "pca":
		r, err := pca.SQM(loaded.X, pca.Config{
			K: *k, Eps: *eps, Delta: *delta, C: 1, Gamma: *gamma, Seed: *seed,
			Engine: kind, Parties: *nparty,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "sqmrun: captured variance ||XV||_F^2 = %.4f at (eps=%g, delta=%g)\n",
			r.Utility, *eps, *delta)
		return csvio.Write(w, r.Subspace, nil)
	case "covariance":
		mu, err := pca.CalibrateMu(*eps, *delta, *gamma, 1, loaded.X.Cols)
		if err != nil {
			return err
		}
		cov, _, err := core.Covariance(loaded.X, core.Params{
			Gamma: *gamma, Mu: mu, Seed: *seed, Engine: kind, Parties: *nparty,
		})
		if err != nil {
			return err
		}
		return csvio.Write(w, cov, loaded.Header)
	case "lr":
		for i, y := range loaded.Labels {
			if y != 0 && y != 1 {
				return fmt.Errorf("lr needs 0/1 labels; row %d has %v", i+1, y)
			}
		}
		m, err := logreg.TrainSQM(loaded.X, loaded.Labels, logreg.Config{
			Eps: *eps, Delta: *delta, Gamma: *gamma,
			Epochs: *epochs, SampleRate: *q, Seed: *seed,
			Engine: kind, Parties: *nparty,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "sqmrun: training accuracy %.4f at (eps=%g, delta=%g)\n",
			logreg.Accuracy(m, loaded.X, loaded.Labels), *eps, *delta)
		return csvio.WriteVector(w, m.W, "weight")
	case "ridge":
		clippedY := 0
		for i, y := range loaded.Labels {
			if y > 1 {
				loaded.Labels[i], clippedY = 1, clippedY+1
			} else if y < -1 {
				loaded.Labels[i], clippedY = -1, clippedY+1
			}
		}
		if clippedY > 0 {
			fmt.Fprintf(stderr, "sqmrun: clipped %d labels to [-1, 1]\n", clippedY)
		}
		m, err := linreg.SQM(loaded.X, loaded.Labels, linreg.Config{
			Eps: *eps, Delta: *delta, C: 1, B: 1, Gamma: *gamma, Seed: *seed,
			Engine: kind, Parties: *nparty,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "sqmrun: training R^2 = %.4f at (eps=%g, delta=%g)\n",
			linreg.R2(m, loaded.X, loaded.Labels), *eps, *delta)
		return csvio.WriteVector(w, m.W, "weight")
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
