package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sqm/internal/csvio"
	"sqm/internal/dataset"
	"sqm/internal/linalg"
)

// writeTask materializes a labeled CSV fixture.
func writeTask(t *testing.T, labeled bool) string {
	t.Helper()
	ds, err := dataset.ACSIncomeLike("CA", 300, 1, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := ds.X
	header := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	if labeled {
		full := linalg.NewMatrix(x.Rows, x.Cols+1)
		for i := 0; i < x.Rows; i++ {
			copy(full.Row(i), x.Row(i))
			full.Set(i, x.Cols, ds.Labels[i])
		}
		x = full
		header = append(header, "label")
	}
	path := filepath.Join(t.TempDir(), "task.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := csvio.Write(f, x, header); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCommands(t *testing.T) {
	if len(Commands()) != 4 {
		t.Fatalf("Commands = %v", Commands())
	}
}

func TestRunValidation(t *testing.T) {
	var out, errw bytes.Buffer
	if err := Run("pca", nil, &out, &errw); err == nil {
		t.Fatal("missing -data must error")
	}
	if err := Run("lr", []string{"-data", "x.csv"}, &out, &errw); err == nil {
		t.Fatal("lr without -label must error")
	}
	if err := Run("bogus", []string{"-data", "x.csv"}, &out, &errw); err == nil {
		t.Fatal("unknown command must error")
	}
	if err := Run("pca", []string{"-data", "/nonexistent.csv"}, &out, &errw); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestRunPCA(t *testing.T) {
	path := writeTask(t, false)
	var out, errw bytes.Buffer
	if err := Run("pca", []string{"-data", path, "-header", "-k", "2", "-eps", "2", "-gamma", "512"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got, err := csvio.Read(&out, csvio.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.X.Rows != 8 || got.X.Cols != 2 {
		t.Fatalf("subspace shape %dx%d", got.X.Rows, got.X.Cols)
	}
	if !strings.Contains(errw.String(), "captured variance") {
		t.Fatalf("diagnostics missing: %q", errw.String())
	}
}

func TestRunCovariance(t *testing.T) {
	path := writeTask(t, false)
	var out, errw bytes.Buffer
	if err := Run("covariance", []string{"-data", path, "-header", "-eps", "4", "-gamma", "256"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got, err := csvio.Read(&out, csvio.Options{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.X.Rows != 8 || got.X.Cols != 8 {
		t.Fatalf("covariance shape %dx%d", got.X.Rows, got.X.Cols)
	}
}

func TestRunLR(t *testing.T) {
	path := writeTask(t, true)
	var out, errw bytes.Buffer
	err := Run("lr", []string{"-data", path, "-header", "-label", "label",
		"-eps", "4", "-gamma", "1024", "-epochs", "1", "-q", "0.05"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := csvio.Read(&out, csvio.Options{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.X.Rows != 8 {
		t.Fatalf("weights = %d, want 8", got.X.Rows)
	}
	if !strings.Contains(errw.String(), "training accuracy") {
		t.Fatalf("diagnostics missing: %q", errw.String())
	}
}

func TestRunLRRejectsNonBinaryLabels(t *testing.T) {
	ds := dataset.RegressionLike(50, 1, 4, 0.1, 5) // continuous targets
	full := linalg.NewMatrix(ds.X.Rows, 5)
	for i := 0; i < ds.X.Rows; i++ {
		copy(full.Row(i), ds.X.Row(i))
		full.Set(i, 4, ds.Labels[i])
	}
	path := filepath.Join(t.TempDir(), "reg.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := csvio.Write(f, full, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out, errw bytes.Buffer
	if err := Run("lr", []string{"-data", path, "-label", "4", "-eps", "4"}, &out, &errw); err == nil {
		t.Fatal("continuous labels must be rejected for lr")
	}
}

func TestRunRidgeWithOutFile(t *testing.T) {
	ds := dataset.RegressionLike(200, 1, 6, 0.1, 7)
	full := linalg.NewMatrix(ds.X.Rows, 7)
	for i := 0; i < ds.X.Rows; i++ {
		copy(full.Row(i), ds.X.Row(i))
		full.Set(i, 6, ds.Labels[i]*1.5) // some labels beyond [-1,1] to exercise clipping
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "reg.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := csvio.Write(f, full, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()
	outPath := filepath.Join(dir, "weights.csv")
	var out, errw bytes.Buffer
	err = Run("ridge", []string{"-data", path, "-label", "6", "-eps", "4", "-gamma", "512", "-out", outPath}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := csvio.Load(outPath, csvio.Options{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.X.Rows != 6 {
		t.Fatalf("weights = %d", loaded.X.Rows)
	}
	if !strings.Contains(errw.String(), "clipped") {
		t.Fatalf("label clipping diagnostic missing: %q", errw.String())
	}
}

func TestRunTelemetryFlags(t *testing.T) {
	data := writeTask(t, false)
	var out, errBuf bytes.Buffer
	err := Run("covariance", []string{
		"-data", data, "-header", "-v", "-log-format", "json", "-debug-addr", "127.0.0.1:0",
	}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	diag := errBuf.String()
	for _, want := range []string{"dp.release", "privacy ledger", "debug endpoint"} {
		if !strings.Contains(diag, want) {
			t.Errorf("stderr missing %q:\n%s", want, diag)
		}
	}
}

func TestRunTraceDir(t *testing.T) {
	data := writeTask(t, false)
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	err := Run("covariance", []string{
		"-data", data, "-header", "-engine", "actor", "-parties", "3", "-trace-dir", dir,
	}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "trace dump") {
		t.Fatalf("stderr missing trace dump report: %q", errBuf.String())
	}
	// Coordinator stream plus one per mesh party.
	dumps, err := filepath.Glob(filepath.Join(dir, "trace-*.jsonl"))
	if err != nil || len(dumps) != 4 {
		t.Fatalf("trace dumps = %v (err %v), want 4", dumps, err)
	}
}

func TestRunRejectsBadLogFormat(t *testing.T) {
	data := writeTask(t, false)
	var out, errBuf bytes.Buffer
	err := Run("covariance", []string{"-data", data, "-header", "-log-format", "yaml"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "log-format") {
		t.Fatalf("err = %v", err)
	}
}
