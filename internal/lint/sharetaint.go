package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// shareTypes are the named types whose values are secret shares or
// share-correlated material under the distributed-DP threat model: a
// single honest-but-curious party's view must stay share-only, so
// these values must never be rendered into logs, errors, telemetry, or
// ad-hoc transport payloads.
var shareTypes = map[string][]string{
	"sqm/internal/bgw":    {"Shared", "SharedVec", "ActorShared", "ActorVec", "Val", "Vec", "VecPair"},
	"sqm/internal/beaver": {"Triple", "Share"},
}

// shareFuncSources are functions whose results are share material even
// though their types are plain field elements or integers: additive
// reshares and the secagg mask stream.
var shareFuncSources = map[string]bool{
	"(sqm/internal/bgw.Shared).AdditiveShares": true,
	"(sqm/internal/secagg.Group).maskStream":   true,
}

// shareSanitizers are the sanctioned open/reconstruct points: their
// results are public by protocol design (the opened value is the
// output the parties agreed to reveal), so taint stops there.
var shareSanitizers = map[string]bool{
	"(sqm/internal/bgw.Engine).Open":           true,
	"(sqm/internal/bgw.Engine).OpenElem":       true,
	"(sqm/internal/bgw.Engine).OpenVec":        true,
	"(sqm/internal/bgw.ActorEngine).Open":      true,
	"(sqm/internal/bgw.ActorEngine).OpenBatch": true,
	"(sqm/internal/bgw.ActorEngine).OpenVec":   true,
	"(sqm/internal/bgw.Evaluator).Open":        true,
	"(sqm/internal/bgw.Evaluator).OpenBatch":   true,
	"(sqm/internal/bgw.Evaluator).OpenVec":     true,
	"(sqm/internal/bgw.monoEval).Open":         true,
	"(sqm/internal/bgw.monoEval).OpenBatch":    true,
	"(sqm/internal/bgw.monoEval).OpenVec":      true,
	"(sqm/internal/circuit.Builder).Open":      true,
	"(sqm/internal/circuit.Builder).OpenBatch": true,
	"(sqm/internal/circuit.Builder).OpenVec":   true,
	"(sqm/internal/circuit.Result).Opened":     true,
	"(sqm/internal/circuit.Result).OpenedVec":  true,
	"(sqm/internal/beaver.Engine).Open":        true,
	// Vec.Len is a shape accessor on the share-vector interface: the
	// element count is public protocol metadata (it is checked against
	// the plan and sent in headers), not share material.
	"(sqm/internal/bgw.Vec).Len":                               true,
	"sqm/internal/shamir.Reconstruct":                          true,
	"sqm/internal/shamir.ReconstructWithWeights":               true,
	"(sqm/internal/secagg.Group).Aggregate":                    true,
	"(sqm/internal/secagg.Group).AggregateOver":                true,
	"(sqm/internal/secagg.Group).AggregateNoise":               true,
	"(sqm/internal/secagg.Group).AggregateNoiseOver":           true,
	"(sqm/internal/secagg.TolerantGroup).AggregateDropout":     true,
	"(sqm/internal/secagg.TolerantGroup).AggregateDropoutOver": true,
}

// sinkPkgs are the packages whose calls render arguments into
// human-readable output: the fmt verbs, the standard loggers, and the
// repo's obs telemetry layer (whose Attr constructors and Event
// payloads end up on an operator's console or a metrics endpoint).
var sinkPkgs = map[string]bool{
	"fmt":              true,
	"log":              true,
	"log/slog":         true,
	"sqm/internal/obs": true,
}

// attrTypes marks result types that make any function a telemetry sink
// regardless of its package: a helper returning an obs.Attr (alone or
// inside a slice/struct) is an attribute constructor, and a share
// flowing into it ends up on the same console/dump surface as a direct
// obs call — flight-recorder JSONL dumps included.
var attrTypes = map[string][]string{
	"sqm/internal/obs": {"Attr"},
}

// transportExemptPkgs may put share material on the wire: carrying
// shares between parties is exactly what the BGW/secagg protocol cores
// do. Everything else that serializes a share into a transport payload
// is exfiltrating it past the protocol's accounting.
var transportExemptPkgs = map[string]bool{
	"sqm/internal/bgw":       true,
	"sqm/internal/secagg":    true,
	"sqm/internal/shamir":    true,
	"sqm/internal/transport": true,
}

// AnalyzerShareTaint enforces the share-confidentiality invariant of
// the distributed-DP threat model interprocedurally: Shamir/BGW shares
// and Beaver triples are information-theoretically useless alone but
// catastrophic in aggregate, and a debug log line is an aggregation
// channel the protocol does not account for. Share-typed values — and
// values derived from them through any call depth — reaching fmt, log,
// slog, obs, Attr-returning helpers, or transport Send payloads
// outside the protocol cores are flagged with the full call-path
// witness. It supersedes the local-only secretleak analyzer of PR 3.
var AnalyzerShareTaint = &Analyzer{
	Name:      "sharetaint",
	Doc:       "secret share material (bgw/beaver types and derived values) reaching fmt/log/slog/obs or transport payloads through any call depth",
	Severity:  SeverityError,
	RunModule: runShareTaint,
	Explain: &Explanation{
		Invariant: "A single party's view must stay share-only: no secret share, Beaver triple, secagg mask stream, or value derived from one may reach a formatting, logging, telemetry, or out-of-protocol transport sink, at any call depth. Logs and metrics are aggregation channels the privacy proof does not account for.",
		Sources: []string{
			"values of type bgw.Shared, bgw.SharedVec, bgw.ActorShared, bgw.ActorVec, bgw.Val, bgw.Vec, beaver.Triple, beaver.Share (directly or inside containers/structs)",
			"results of (bgw.Shared).AdditiveShares and (secagg.Group).maskStream",
		},
		Sinks: []string{
			"any call into fmt, log, log/slog, or sqm/internal/obs",
			"any function returning obs.Attr (attribute constructors are telemetry)",
			"transport Send/SendN payloads outside bgw, secagg, shamir, transport",
		},
		Sanitizers: []string{
			"sanctioned opens: (bgw.Engine).Open/OpenElem/OpenVec, Evaluator/ActorEngine/circuit.Builder open surfaces, shamir.Reconstruct*, secagg Aggregate*",
		},
		Example: `bgw.go:12:3: sharetaint: secret share material flows to fmt sink [sqm/internal/bgw.Shared param s of describe (fix.go:9) → param v of render (fix.go:14) → sink (fix.go:5)]`,
	},
}

func runShareTaint(mp *ModulePass) {
	m := mp.Module
	res := m.Propagate(TaintSpec{
		TypeSources: shareTypes,
		FuncSources: shareFuncSources,
		Sanitizers:  shareSanitizers,
	})
	for _, cs := range m.Calls {
		label := shareSinkLabel(cs)
		if label == "" {
			continue
		}
		for _, arg := range cs.Call.Args {
			tv, ok := cs.Pkg.Info.Types[arg]
			if ok && tv.Type != nil {
				if name, leak := containsNamedType(tv.Type, shareTypes); leak {
					if label == "transport payload" {
						mp.Reportf(arg.Pos(), "secret share value of type %s written to a transport payload outside the protocol cores; shares cross the wire only inside bgw/secagg/shamir", name)
					} else {
						mp.Reportf(arg.Pos(), "secret share value of type %s reaches a formatting/telemetry sink; shares must never be logged", name)
					}
					continue
				}
			}
			if n, w := firstTainted(m, res, cs.Pkg, cs.Fn, arg); n != nil {
				mp.Reportf(arg.Pos(), "secret share material flows to %s sink through an interprocedural path; shares must never leave the party [%s → sink (%s)]",
					label, w, m.PosString(arg.Pos()))
			}
		}
	}
}

// firstTainted returns the first tainted leaf of expr and its witness.
func firstTainted(m *Module, res *TaintResult, pkg *Package, fn *types.Func, expr ast.Expr) (*node, string) {
	for _, n := range m.Leaves(pkg, fn, expr) {
		if res.Tainted(n) {
			return n, res.Witness(n)
		}
	}
	return nil, ""
}

// shareSinkLabel classifies a call as a sharetaint sink ("" if not):
// formatting/logging/obs packages, Attr-returning helpers, and
// transport sends outside the exempt protocol cores.
func shareSinkLabel(cs *CallSite) string {
	fn := cs.Callee
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil && sinkPkgs[fn.Pkg().Path()] {
		if fn.Pkg().Path() == "sqm/internal/obs" {
			return "obs telemetry"
		}
		return fn.Pkg().Path()
	}
	if isTransportSend(fn) {
		if transportExemptPkgs[cs.Pkg.Path] {
			return ""
		}
		return "transport payload"
	}
	if returnsAttr(fn) {
		return "obs.Attr constructor"
	}
	return ""
}

// isTransportSend reports whether fn is a Send/SendN method declared on
// a type (or interface) of the transport package.
func isTransportSend(fn *types.Func) bool {
	if fn.Name() != "Send" && fn.Name() != "SendN" {
		return false
	}
	return strings.HasPrefix(FuncKey(fn), "(sqm/internal/transport.")
}

// returnsAttr reports whether any of fn's results contains obs.Attr.
func returnsAttr(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if _, attr := containsNamedType(sig.Results().At(i).Type(), attrTypes); attr {
			return true
		}
	}
	return false
}

// containsSecretType reports whether t is, or structurally contains, a
// secret share type, returning the offending type's name.
func containsSecretType(t types.Type) (string, bool) {
	return containsNamedType(t, shareTypes)
}

// containsNamedType reports whether t is, or structurally contains, one
// of the named types in the table (package path -> type names),
// returning the offending type's name. The traversal follows pointers,
// slices, arrays, maps, channels, and struct fields, with a visited set
// to terminate on recursive types.
func containsNamedType(t types.Type, table map[string][]string) (string, bool) {
	return namedWalk(t, table, make(map[types.Type]bool))
}

func namedWalk(t types.Type, table map[string][]string, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	switch tt := types.Unalias(t).(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil {
			for _, name := range table[obj.Pkg().Path()] {
				if obj.Name() == name {
					return obj.Pkg().Path() + "." + name, true
				}
			}
		}
		return namedWalk(tt.Underlying(), table, seen)
	case *types.Pointer:
		return namedWalk(tt.Elem(), table, seen)
	case *types.Slice:
		return namedWalk(tt.Elem(), table, seen)
	case *types.Array:
		return namedWalk(tt.Elem(), table, seen)
	case *types.Chan:
		return namedWalk(tt.Elem(), table, seen)
	case *types.Map:
		if name, ok := namedWalk(tt.Key(), table, seen); ok {
			return name, true
		}
		return namedWalk(tt.Elem(), table, seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if name, ok := namedWalk(tt.Field(i).Type(), table, seen); ok {
				return name, true
			}
		}
	}
	return "", false
}
