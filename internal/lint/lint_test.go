package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryHasTheInvariantSuite(t *testing.T) {
	as := All()
	if len(as) < 5 {
		t.Fatalf("registry has %d analyzers, want at least 5", len(as))
	}
	want := []string{"fieldops", "floateq", "panicpolicy", "randdet", "sharetaint", "dpbudget", "ctbranch"}
	seen := make(map[string]bool)
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || (a.Run == nil && a.RunModule == nil) {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("registry is missing %q", name)
		}
		if Lookup(name) == nil {
			t.Errorf("Lookup(%q) = nil", name)
		}
	}
	for i := 1; i < len(as); i++ {
		if as[i-1].Name >= as[i].Name {
			t.Errorf("registry not sorted: %q before %q", as[i-1].Name, as[i].Name)
		}
	}
	if Lookup("nosuchcheck") != nil {
		t.Error("Lookup of unknown check should be nil")
	}
}

func TestJSONOutputShape(t *testing.T) {
	_, res := loadFixture(t, "floateq", "fixture/floateq-json")
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res, All(), ""); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	// Decode into a generic map so the assertion pins the wire shape,
	// not the Go struct.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if v, ok := doc["version"].(float64); !ok || v != 1 {
		t.Errorf("version = %v, want 1", doc["version"])
	}
	checks, ok := doc["checks"].([]any)
	if !ok || len(checks) != len(All()) {
		t.Fatalf("checks = %v, want %d entries", doc["checks"], len(All()))
	}
	for _, c := range checks {
		m := c.(map[string]any)
		for _, k := range []string{"name", "doc", "severity"} {
			if _, ok := m[k].(string); !ok {
				t.Errorf("check entry missing %q: %v", k, m)
			}
		}
	}
	diags, ok := doc["diagnostics"].([]any)
	if !ok || len(diags) == 0 {
		t.Fatalf("diagnostics = %v, want non-empty list", doc["diagnostics"])
	}
	d := diags[0].(map[string]any)
	for _, k := range []string{"check", "severity", "file", "message"} {
		if _, ok := d[k].(string); !ok {
			t.Errorf("diagnostic missing string field %q: %v", k, d)
		}
	}
	for _, k := range []string{"line", "column"} {
		if v, ok := d[k].(float64); !ok || v < 1 {
			t.Errorf("diagnostic field %q = %v, want positive number", k, d[k])
		}
	}
	if v, ok := doc["suppressed"].(float64); !ok || int(v) != len(res.Suppressed) {
		t.Errorf("suppressed = %v, want %d", doc["suppressed"], len(res.Suppressed))
	}
}

func TestJSONTrimsModuleRoot(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	_, res := loadFixture(t, "floateq", "fixture/floateq-trim")
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res, All(), loader.ModuleRoot()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), loader.ModuleRoot()) {
		t.Errorf("JSON report leaks absolute module root paths:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "internal/lint/testdata/src/floateq/floateq.go") {
		t.Errorf("JSON report missing module-relative file path:\n%s", buf.String())
	}
}

func TestTextOutput(t *testing.T) {
	_, res := loadFixture(t, "panicpolicy", "fixture/panicpolicy-text")
	var buf bytes.Buffer
	if err := WriteText(&buf, res, ""); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "panicpolicy.go:") || !strings.Contains(out, ": panicpolicy: ") {
		t.Errorf("text output missing file:line / check prefix:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != len(res.Diagnostics) {
		t.Errorf("text output line count != diagnostic count:\n%s", out)
	}
}

func TestSortAndDedupDiagnostics(t *testing.T) {
	mk := func(file string, line, col int, check, msg string) Diagnostic {
		d := Diagnostic{Check: check, Message: msg}
		d.Pos.Filename = file
		d.Pos.Line = line
		d.Pos.Column = col
		return d
	}
	ds := []Diagnostic{
		mk("b.go", 2, 1, "floateq", "x"),
		mk("a.go", 9, 1, "floateq", "x"),
		mk("a.go", 3, 7, "sharetaint", "y"),
		mk("a.go", 3, 7, "dpbudget", "z"),
		mk("a.go", 3, 7, "sharetaint", "y"), // exact duplicate
	}
	sortDiagnostics(ds)
	ds = dedupDiagnostics(ds)
	want := []Diagnostic{
		mk("a.go", 3, 7, "dpbudget", "z"),
		mk("a.go", 3, 7, "sharetaint", "y"),
		mk("a.go", 9, 1, "floateq", "x"),
		mk("b.go", 2, 1, "floateq", "x"),
	}
	if len(ds) != len(want) {
		t.Fatalf("got %d diagnostics after dedup, want %d: %v", len(ds), len(want), ds)
	}
	for i := range want {
		if ds[i].String() != want[i].String() {
			t.Errorf("position %d: got %s, want %s", i, ds[i], want[i])
		}
	}
}

func TestOverlappingLoadsDedupToOneFinding(t *testing.T) {
	// The same package analyzed twice (as overlapping ./... patterns
	// would) must not double-report.
	pkg, single := loadFixture(t, "floateq", "fixture/floateq-dedup")
	double := Run([]*Package{pkg, pkg}, All())
	if len(double.Diagnostics) != len(single.Diagnostics) {
		t.Errorf("duplicate package load reported %d findings, want %d",
			len(double.Diagnostics), len(single.Diagnostics))
	}
}

func TestDiagnosticsAreDeterministicallyOrdered(t *testing.T) {
	_, res := loadFixture(t, "fieldops", "fixture/fieldops-order")
	for i := 1; i < len(res.Diagnostics); i++ {
		a, b := res.Diagnostics[i-1], res.Diagnostics[i]
		if a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line {
			t.Errorf("diagnostics out of order: %s after %s", b, a)
		}
	}
}

func TestLoaderRejectsEscapingPatterns(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(loader.ModuleRoot(), "../..."); err == nil {
		t.Error("pattern escaping the module root should fail")
	}
}

func TestLoadSinglePackage(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(loader.ModuleRoot(), "./internal/field")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "sqm/internal/field" {
		t.Fatalf("Load returned %v, want the single field package", pkgs)
	}
	res := Run(pkgs, All())
	if len(res.Diagnostics) != 0 {
		t.Errorf("internal/field should be clean at HEAD, got %v", res.Diagnostics)
	}
}
