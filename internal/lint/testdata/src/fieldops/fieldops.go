// Package fieldopsfixture exercises the fieldops analyzer: raw
// arithmetic on field.Elem (or on the field modulus) outside
// internal/field must be flagged; helper calls and comparisons are
// fine.
package fieldopsfixture

import "sqm/internal/field"

// Bad performs every flavor of raw arithmetic the analyzer catches.
func Bad(a, b field.Elem) field.Elem {
	s := a + b                // want "raw operator \+ on field.Elem"
	p := a * b                // want "raw operator \* on field.Elem"
	d := a - b                // want "raw operator - on field.Elem"
	q := a / b                // want "raw operator / on field.Elem"
	r := a % b                // want "raw operator % on field.Elem"
	s += p                    // want "raw operator \+= on field.Elem"
	s++                       // want "raw operator \+\+ on field.Elem"
	n := -d                   // want "raw negation of field.Elem"
	m := field.Modulus%2 + 1  // want "raw operator % on field.Elem"
	_ = uint64(q) + uint64(r) // conversions drop the Elem type: not flagged
	_ = n
	_ = m
	return s
}

// Suppressed shows a reviewed escape hatch.
func Suppressed(a, b field.Elem) field.Elem {
	//lint:ignore fieldops fixture demonstrating a reviewed suppression
	return a + b
}

// Good routes arithmetic through the field helpers.
func Good(a, b field.Elem) field.Elem {
	if a == b || a < b { // comparisons are fine
		return field.Add(a, b)
	}
	return field.Mul(field.Sub(a, b), field.Neg(b))
}
