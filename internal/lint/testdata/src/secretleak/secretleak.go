// Package secretleakfixture exercises the secretleak analyzer: share-
// typed values must never reach fmt, log, slog, or obs sinks, whether
// passed directly or buried inside a container or struct.
package secretleakfixture

import (
	"fmt"
	"log"
	"log/slog"

	"sqm/internal/beaver"
	"sqm/internal/bgw"
	"sqm/internal/obs"
)

// wrapper buries a share inside a struct to test containment.
type wrapper struct {
	Round int
	Share bgw.Shared
}

// Bad leaks shares through every sink family.
func Bad(s bgw.Shared, v bgw.SharedVec, t beaver.Triple, w wrapper) {
	fmt.Println(s)                             // want "secret share value of type sqm/internal/bgw.Shared"
	fmt.Printf("%v\n", v)                      // want "secret share value of type sqm/internal/bgw.SharedVec"
	_ = fmt.Sprintf("%+v", t)                  // want "secret share value of type sqm/internal/beaver.Triple"
	log.Println(w)                             // want "secret share value of type sqm/internal/bgw.Shared"
	slog.Info("debug", "sh", s)                // want "secret share value of type sqm/internal/bgw.Shared"
	_ = fmt.Errorf("bad: %v", []bgw.Shared{s}) // want "secret share value of type sqm/internal/bgw.Shared"
	_ = obs.String("share", fmt.Sprint(s))     // want "secret share value of type sqm/internal/bgw.Shared"
}

// Suppressed shows a reviewed escape hatch.
func Suppressed(s bgw.Shared) {
	//lint:ignore secretleak fixture demonstrating a reviewed suppression
	fmt.Println(s)
}

// Good logs only non-secret derivatives.
func Good(vs []bgw.Shared) {
	fmt.Printf("holding %d shares\n", len(vs))
	slog.Info("round done", "shares", len(vs))
	_ = obs.Int("shares", len(vs))
}
