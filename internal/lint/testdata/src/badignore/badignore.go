// Package badignorefixture holds a malformed suppression directive
// (no reason given): the runner must report it and must not let it
// suppress the finding it sits above.
package badignorefixture

// Bad tries to suppress a finding with a reason-less directive.
func Bad(x float64) bool {
	//lint:ignore floateq
	return x == 0 // want "floating-point == comparison"
}
