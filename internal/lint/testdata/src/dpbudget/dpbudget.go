// Package dpbudgetfixture exercises the dpbudget analyzer: a value
// derived from a DP noise draw may only escape (here: fmt output) if a
// function on its dataflow path consults the dp.Accountant. The flow
// below crosses two call boundaries before reaching the sink, so only
// the interprocedural engine can connect the draw to the release.
package dpbudgetfixture

import (
	"fmt"

	"sqm/internal/dp"
	"sqm/internal/randx"
)

// draw samples the mechanism's noise: its result is a DP release in
// the making.
func draw(g *randx.RNG, mu float64) int64 {
	return g.Skellam(mu)
}

// forward is the second hop: the noisy value crosses it untouched.
func forward(v int64) int64 { return v + 1 }

// Bad releases the noisy aggregate with no accountant on the path.
func Bad(g *randx.RNG) {
	v := draw(g, 8)
	fmt.Println(forward(v)) // want "DP-noisy value escapes via fmt.Println"
}

// Accounted meters the release before printing: one dp.Accountant
// call anywhere in the function covers the flows through it.
func Accounted(g *randx.RNG, acct *dp.Accountant) {
	v := draw(g, 8)
	acct.AddSkellam(8, 8, 8)
	fmt.Println(forward(v))
}

// Suppressed shows a reviewed escape hatch.
func Suppressed(g *randx.RNG) {
	v := draw(g, 8)
	//lint:ignore dpbudget fixture demonstrating a reviewed suppression
	fmt.Println(v)
}

// Good prints only noise-free values.
func Good(rounds int) {
	fmt.Printf("finished %d rounds\n", rounds)
}
