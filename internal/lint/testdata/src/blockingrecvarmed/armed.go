// Package blockingrecvarmed is the deadline-aware counterpart of the
// blockingrecv fixture: the package arms SetRecvTimeout, so its
// receives are bounded by policy and the analyzer must stay silent —
// including for Recv calls in other functions of the package, which is
// exactly how the real engine splits configuration (actor setup) from
// consumption (party loops).
package blockingrecvarmed

import (
	"time"

	"sqm/internal/transport"
)

// Arm applies the deadline policy for the whole package.
func Arm(mesh transport.Mesh, d time.Duration) {
	mesh.SetRecvTimeout(d)
}

// Gather receives under whatever deadline Arm configured.
func Gather(conn transport.PartyConn, n int) error {
	for from := 1; from < n; from++ {
		if _, err := conn.Recv(from); err != nil {
			return err
		}
	}
	return nil
}
