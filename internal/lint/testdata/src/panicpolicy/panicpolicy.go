// Package panicpolicyfixture exercises the panicpolicy analyzer in a
// library package: bare panics must be flagged, invariant.Violation
// payloads are the sanctioned form.
package panicpolicyfixture

import (
	"errors"
	"fmt"

	"sqm/internal/invariant"
)

// Bad panics with undeclared payloads.
func Bad(n int) {
	if n < 0 {
		panic("fixture: negative n") // want "bare panic"
	}
	if n > 100 {
		panic(fmt.Sprintf("fixture: n too large: %d", n)) // want "bare panic"
	}
	if n == 13 {
		panic(errors.New("fixture: unlucky")) // want "bare panic"
	}
}

// Suppressed shows a reviewed escape hatch.
func Suppressed() {
	//lint:ignore panicpolicy fixture demonstrating a reviewed suppression
	panic("fixture: reviewed bare panic")
}

// Good panics only through the designated invariant helper.
func Good(n int) error {
	if n < 0 {
		panic(invariant.Violation("fixture: negative n %d", n))
	}
	if n > 100 {
		return errors.New("fixture: n too large")
	}
	return nil
}
