// Package taintenginefixture is a minimal, dependency-free package the
// engine unit tests drive with a custom TaintSpec: NewSecret is the
// registered function source and Declassify the registered sanitizer,
// so the tests pin the engine's summaries, field nodes, sanitizer
// blocking, and witness rendering without involving any real analyzer
// registry.
package taintenginefixture

// Secret is the value kind the test spec treats as sensitive.
type Secret struct{ V int }

// NewSecret is the registered function source.
func NewSecret() Secret { return Secret{V: 1} }

// Box carries a secret inside a struct field.
type Box struct {
	Label string
	Inner Secret
}

// Fill stores a fresh secret in the box.
func Fill(b *Box) { b.Inner = NewSecret() }

// Take reads it back out.
func Take(b *Box) Secret { return b.Inner }

// Chain routes a secret through two call boundaries and a struct field
// before returning it.
func Chain() Secret {
	var b Box
	Fill(&b)
	return Take(&b)
}

// Declassify is the registered sanitizer.
func Declassify(s Secret) int { return s.V }

// Published returns a sanitized value; its result must be clean.
func Published() int {
	s := NewSecret()
	return Declassify(s)
}

// Plain never touches a secret; its result must be clean.
func Plain() string { return "public" }

// Other reads a different Box instance than Fill ever wrote: field
// nodes are per-field-object, not per-instance, so the engine smears
// the taint here too (the documented under-approximation).
func Other(b Box) Secret { return b.Inner }
