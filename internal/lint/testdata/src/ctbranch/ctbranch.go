// Package ctbranchfixture exercises the ctbranch analyzer: control
// flow and container indexing must not depend on share-derived values
// outside the sanctioned open points. The bad flow below crosses two
// call boundaries between the share and the branch.
package ctbranchfixture

import (
	"sqm/internal/bgw"
	"sqm/internal/field"
)

// leakBit derives a branch-steering bit from raw additive shares.
func leakBit(shs []field.Elem) bool {
	return shs[0] != 0
}

// Bad branches on a value derived from share material two hops away.
func Bad(s *bgw.Shared, w []field.Elem, table []string) string {
	shs := s.AdditiveShares(w)
	if leakBit(shs) { // want "control flow conditioned on secret-derived value"
		return "one"
	}
	if shs[0] != 0 { // want "control flow conditioned on secret-derived value"
		return "direct"
	}
	idx := int(field.ToInt64(shs[0]))
	return table[idx] // want "container indexing conditioned on secret-derived value"
}

// GoodOpened branches on an opened value: Open is a sanctioned
// declassification point, so the public output may steer control flow.
func GoodOpened(e *bgw.Engine, s *bgw.Shared) string {
	if e.Open(s) > 0 {
		return "positive"
	}
	return "non-positive"
}

// GoodShape branches on public shape only.
func GoodShape(shs []field.Elem) string {
	if len(shs) == 0 {
		return "empty"
	}
	return "loaded"
}

// Suppressed shows a reviewed escape hatch.
func Suppressed(s *bgw.Shared, w []field.Elem) string {
	shs := s.AdditiveShares(w)
	//lint:ignore ctbranch fixture demonstrating a reviewed suppression
	if leakBit(shs) {
		return "one"
	}
	return "zero"
}
