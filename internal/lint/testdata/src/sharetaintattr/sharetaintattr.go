// Package sharetaintattrfixture exercises the attribute-constructor
// extension of the sharetaint analyzer: any function whose result
// contains obs.Attr is a telemetry sink, so share-typed arguments must
// not flow into it even when the helper lives outside the obs package.
package sharetaintattrfixture

import (
	"sqm/internal/bgw"
	"sqm/internal/obs"
)

// shareAttr is a local attribute constructor: its obs.Attr result
// makes every call to it a sink.
func shareAttr(key string, s bgw.Shared) obs.Attr {
	_ = s
	return obs.String(key, "redacted")
}

// attrPair returns attributes inside a slice; still a sink.
func attrPair(round int, v bgw.SharedVec) []obs.Attr {
	_ = v
	return []obs.Attr{obs.Int("round", round)}
}

// Bad routes shares through local Attr-returning helpers.
func Bad(s bgw.Shared, v bgw.SharedVec) {
	_ = shareAttr("sh", s)  // want "secret share value of type sqm/internal/bgw.Shared"
	_ = attrPair(3, v)      // want "secret share value of type sqm/internal/bgw.SharedVec"
	_ = shareAttr("vec", s) // want "secret share value of type sqm/internal/bgw.Shared"
}

// Suppressed shows a reviewed escape hatch for the attr-flow rule.
func Suppressed(s bgw.Shared) {
	//lint:ignore sharetaint fixture demonstrating a reviewed suppression
	_ = shareAttr("sh", s)
}

// countAttr takes only non-secret derivatives; calls stay clean.
func countAttr(n int) obs.Attr { return obs.Int("shares", n) }

// Good builds attributes only from non-secret derivatives.
func Good(vs []bgw.Shared) {
	_ = countAttr(len(vs))
	_ = obs.Int("shares", len(vs))
}
