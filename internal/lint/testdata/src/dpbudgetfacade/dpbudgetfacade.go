// Package dpbudgetfacadefixture is loaded under the sqm facade import
// path: there, every exported return is a release boundary, so a
// noisy value may only leave through a function with accountant
// coverage on its path.
package dpbudgetfacadefixture

import (
	"sqm/internal/dp"
	"sqm/internal/randx"
)

// Estimate returns a noisy aggregate straight off the facade without
// accounting for it.
func Estimate(g *randx.RNG) int64 {
	return g.Skellam(4) // want "DP-noisy value returned from exported"
}

// EstimateAccounted meters the release before returning it.
func EstimateAccounted(g *randx.RNG, acct *dp.Accountant) int64 {
	acct.AddSkellam(4, 4, 4)
	return g.Skellam(4)
}
