// Package sharetaintfixture exercises the sharetaint analyzer: share-
// typed values must never reach fmt, log, slog, or obs sinks, whether
// passed directly, buried inside a container or struct, or routed
// through intermediate functions (the interprocedural taint engine
// follows the flow across call boundaries).
package sharetaintfixture

import (
	"fmt"
	"log"
	"log/slog"

	"sqm/internal/beaver"
	"sqm/internal/bgw"
	"sqm/internal/obs"
)

// wrapper buries a share inside a struct to test containment.
type wrapper struct {
	Round int
	Share bgw.Shared
}

// Bad leaks shares through every sink family.
func Bad(s bgw.Shared, v bgw.SharedVec, t beaver.Triple, w wrapper) {
	fmt.Println(s)                             // want "secret share value of type sqm/internal/bgw.Shared"
	fmt.Printf("%v\n", v)                      // want "secret share value of type sqm/internal/bgw.SharedVec"
	_ = fmt.Sprintf("%+v", t)                  // want "secret share value of type sqm/internal/beaver.Triple"
	log.Println(w)                             // want "secret share value of type sqm/internal/bgw.Shared"
	slog.Info("debug", "sh", s)                // want "secret share value of type sqm/internal/bgw.Shared"
	_ = fmt.Errorf("bad: %v", []bgw.Shared{s}) // want "secret share value of type sqm/internal/bgw.Shared"
	_ = obs.String("share", fmt.Sprint(s))     // want "secret share value of type sqm/internal/bgw.Shared" "flows to obs telemetry sink through an interprocedural path"
}

// describe and render form a two-hop interprocedural leak: the share
// enters describe, crosses into render as an opaque any, and only
// there meets the sink. The diagnostic anchors at the sink with a
// witness naming every call boundary.
func describe(s bgw.Shared) string {
	return render(s)
}

func render(v any) string {
	return fmt.Sprintf("state=%v", v) // want "flows to fmt sink through an interprocedural path"
}

// BadDeep drives the two-hop chain.
func BadDeep(s bgw.Shared) {
	_ = describe(s)
}

// GoodOpened shows the sanitized flow: the engine's Open is a
// sanctioned declassification point, so the opened int64 may be
// logged freely.
func GoodOpened(e *bgw.Engine, s *bgw.Shared) {
	fmt.Printf("opened: %d\n", e.Open(s))
}

// Suppressed shows a reviewed escape hatch.
func Suppressed(s bgw.Shared) {
	//lint:ignore sharetaint fixture demonstrating a reviewed suppression
	fmt.Println(s)
}

// SuppressedMultiline shows one directive covering a call spread over
// several lines: diagnostics anchor at the argument positions, and the
// directive's range extends over the whole statement.
func SuppressedMultiline(s bgw.Shared, v bgw.SharedVec) {
	//lint:ignore sharetaint fixture demonstrating a multi-line suppression
	fmt.Println(
		s,
		v,
	)
}

// Good logs only non-secret derivatives.
func Good(vs []bgw.Shared) {
	fmt.Printf("holding %d shares\n", len(vs))
	slog.Info("round done", "shares", len(vs))
	_ = obs.Int("shares", len(vs))
}
