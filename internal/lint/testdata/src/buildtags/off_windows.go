package buildtagsfixture

const marker = "windows"
