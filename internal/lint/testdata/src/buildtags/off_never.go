//go:build someneverenabledtag

package buildtagsfixture

const marker = "never"
