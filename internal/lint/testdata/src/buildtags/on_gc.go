//go:build gc

package buildtagsfixture

const marker = "gc"
