// Package buildtagsfixture is split across build-tagged files: the
// loader must select exactly the files matching the host configuration.
// Every variant file declares the same `marker` constant, so a
// filtering failure surfaces immediately as a redeclaration type error
// instead of passing silently.
package buildtagsfixture

// Marker reports which file variant the loader selected.
func Marker() string { return marker }
