// Package brokenfixture fails to type-check on purpose: the loader
// must report the failure as an error listing every collected type
// error, not panic and not stop at the first.
package brokenfixture

func wrongReturn() int {
	return "not an int"
}

func wrongArity() {
	takesNone(1, 2)
}

func takesNone() {}

var undeclared = missingIdent
