// Package panicstrictfixture is loaded by the tests under the import
// path of an exported API surface (sqm/internal/cli), where the
// panicpolicy analyzer forbids every panic — even invariant ones.
package panicstrictfixture

import "sqm/internal/invariant"

// Bad panics on an exported API surface.
func Bad(n int) error {
	if n < 0 {
		panic("fixture: negative n") // want "panic on an exported API surface"
	}
	if n > 100 {
		panic(invariant.Violation("fixture: even invariant panics are banned here")) // want "panic on an exported API surface"
	}
	return nil
}
