// Package floateqfixture exercises the floateq analyzer: raw == and !=
// between floating-point operands must be flagged; integer comparison
// and the mathx tolerance helper are fine.
package floateqfixture

import "sqm/internal/mathx"

// Bad compares floats with raw operators.
func Bad(x, y float64, f float32) bool {
	a := x == y     // want "floating-point == comparison"
	b := x != 0     // want "floating-point != comparison"
	c := f == 1.5   // want "floating-point == comparison"
	d := x+1 == y*2 // want "floating-point == comparison"
	return a || b || c || d
}

// Suppressed shows a reviewed escape hatch.
func Suppressed(x float64) bool {
	//lint:ignore floateq fixture demonstrating a reviewed suppression
	return x == 0
}

// Good compares through the tolerance helper or on integers.
func Good(x, y float64, n, m int) bool {
	return mathx.EqualWithin(x, y, 1e-12) || n == m || x < y
}
