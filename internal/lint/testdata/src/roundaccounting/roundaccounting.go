// Package roundfixture exercises the roundaccounting analyzer:
// hand-placed AdvanceRound calls on BGW evaluators outside
// internal/bgw and internal/circuit must be flagged — round accounting
// belongs to compiled execution plans.
package roundfixture

import "sqm/internal/bgw"

// localClock is a decoy: a package's own AdvanceRound method is not
// BGW round bookkeeping and must not be flagged.
type localClock struct{ rounds int }

// AdvanceRound ticks the decoy clock.
func (c *localClock) AdvanceRound() { c.rounds++ }

// BadEvaluator hand-advances the round counter through the interface.
func BadEvaluator(eng bgw.Evaluator) {
	eng.AdvanceRound() // want "manual AdvanceRound on bgw.Evaluator"
}

// BadEngine does the same on the concrete monolithic engine.
func BadEngine(e *bgw.Engine) {
	e.AdvanceRound() // want "manual AdvanceRound on bgw.Engine"
}

// BadActor does the same on the party-actor engine.
func BadActor(e *bgw.ActorEngine) {
	e.AdvanceRound() // want "manual AdvanceRound on bgw.ActorEngine"
}

// Suppressed shows a reviewed escape hatch.
func Suppressed(eng bgw.Evaluator) {
	//lint:ignore roundaccounting fixture demonstrating a reviewed suppression
	eng.AdvanceRound()
}

// Good advances a non-BGW clock.
func Good(c *localClock) {
	c.AdvanceRound()
}
