// Package randdetfixture exercises the randdet analyzer: every raw
// randomness import outside internal/randx must be flagged.
package randdetfixture

import (
	cryptorand "crypto/rand" // want "import of \"crypto/rand\" outside internal/randx"
	"math/rand"              // want "import of \"math/rand\" outside internal/randx"
	randv2 "math/rand/v2"    //lint:ignore randdet fixture demonstrating a reviewed suppression

	"time"
)

// Uses keep the imports alive so the fixture type-checks.
var (
	_ = rand.Int
	_ = randv2.Int64
	_ = cryptorand.Read
	_ = time.Now // unrelated import: must not be flagged
)
