// Package blockingrecvfixture exercises the blockingrecv analyzer: a
// package that consumes PartyConn.Recv without ever arming
// SetRecvTimeout waits unboundedly on remote parties and must be
// flagged. Note no function in this package calls SetRecvTimeout —
// one call anywhere would mark the whole package deadline-aware (see
// the blockingrecvarmed fixture).
package blockingrecvfixture

import "sqm/internal/transport"

// Bad receives with no deadline in scope anywhere in the package.
func Bad(conn transport.PartyConn) ([]byte, error) {
	return conn.Recv(0) // want "blocking PartyConn.Recv in a package that never arms SetRecvTimeout"
}

// BadLoop shows the classic hang shape: a gather loop over peers.
func BadLoop(conn transport.PartyConn, n int) error {
	for from := 1; from < n; from++ {
		if _, err := conn.Recv(from); err != nil { // want "blocking PartyConn.Recv"
			return err
		}
	}
	return nil
}

// Suppressed is a reviewed escape hatch: this caller is known to run
// only against the in-memory mesh of a single-process simulation.
func Suppressed(conn transport.PartyConn) ([]byte, error) {
	//lint:ignore blockingrecv trusted single-process simulation; peers cannot die independently
	return conn.Recv(0)
}

// Good does not receive at all; sends never block on a dead peer's
// liveness (the writer pump owns them).
func Good(conn transport.PartyConn) error {
	return conn.Send(0, []byte{1})
}
