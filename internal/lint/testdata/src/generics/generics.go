// Package genericsfixture exercises the loader on generic functions
// and their instantiations: the package must type-check cleanly and the
// analyzer suite must run over type-parameterized code without tripping
// on instantiation nodes (IndexExpr/IndexListExpr callees).
package genericsfixture

// Pair is a generic container.
type Pair[T any] struct{ First, Second T }

// Map applies f to every element of xs.
func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

// Sum folds an addable slice.
func Sum[T int | int64](xs []T) T {
	var acc T
	for _, x := range xs {
		acc += x
	}
	return acc
}

// Use instantiates the generics both implicitly (type inference) and
// explicitly (full type-argument list).
func Use() int64 {
	ps := Map([]int{1, 2, 3}, func(v int) Pair[int64] {
		return Pair[int64]{First: int64(v), Second: int64(v * v)}
	})
	seconds := Map[Pair[int64], int64](ps, func(p Pair[int64]) int64 { return p.Second })
	return Sum(seconds)
}
