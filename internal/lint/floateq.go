package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloatEq enforces tolerance-based floating-point comparison
// in the calibration pipeline. The DP accountant and the mathx root
// finders compose dozens of transcendental operations; two
// mathematically equal quantities routinely differ in the last ulp, so
// a raw == or != encodes an assumption the hardware does not honor. A
// misfired equality in ε(δ) calibration silently loosens the privacy
// guarantee. Non-test code must compare through mathx.EqualWithin
// (tolerance zero is fine where bit-exactness is genuinely intended —
// the helper makes that intent explicit and NaN-safe).
var AnalyzerFloatEq = &Analyzer{
	Name:     "floateq",
	Doc:      "== or != between floating-point operands in non-test code; use mathx.EqualWithin",
	Severity: SeverityError,
	Run:      runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if pass.isFloat(be.X) || pass.isFloat(be.Y) {
				pass.Reportf(be.OpPos, "floating-point %s comparison; use mathx.EqualWithin (tolerance may be 0 to assert exactness explicitly)", be.Op)
			}
			return true
		})
	}
}

// isFloat reports whether the expression's type is (or has underlying)
// float32, float64, or a complex type.
func (p *Pass) isFloat(expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := types.Unalias(tv.Type).Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}
