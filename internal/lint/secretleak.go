package lint

import (
	"go/ast"
	"go/types"
)

// secretTypes are the named types whose values are secret shares or
// share-correlated material under the distributed-DP threat model: a
// single honest-but-curious party's view must stay share-only, so
// these values must never be rendered into logs, errors, or telemetry.
var secretTypes = map[string][]string{
	"sqm/internal/bgw":    {"Shared", "SharedVec", "ActorShared", "ActorVec"},
	"sqm/internal/beaver": {"Triple", "Share"},
}

// sinkPkgs are the packages whose calls render arguments into
// human-readable output: the fmt verbs, the standard loggers, and the
// repo's obs telemetry layer (whose Attr constructors and Event
// payloads end up on an operator's console or a metrics endpoint).
var sinkPkgs = map[string]bool{
	"fmt":              true,
	"log":              true,
	"log/slog":         true,
	"sqm/internal/obs": true,
}

// attrTypes marks result types that make any function a telemetry sink
// regardless of its package: a helper returning an obs.Attr (alone or
// inside a slice/struct) is an attribute constructor, and a share
// flowing into it ends up on the same console/dump surface as a direct
// obs call — flight-recorder JSONL dumps included.
var attrTypes = map[string][]string{
	"sqm/internal/obs": {"Attr"},
}

// AnalyzerSecretLeak enforces the share-confidentiality invariant of
// the distributed-DP threat model (shared with the Skellam mechanism
// line of work): Shamir/BGW shares and Beaver triples are
// information-theoretically useless alone but catastrophic in
// aggregate, and a debug log line is an aggregation channel the
// protocol does not account for. Any share-typed value (directly, or
// inside a slice, map, pointer, struct field, or channel) passed to
// fmt, log, log/slog, or internal/obs is flagged.
var AnalyzerSecretLeak = &Analyzer{
	Name:     "secretleak",
	Doc:      "secret share values (bgw/beaver share types) passed to fmt, log, slog, or obs sinks",
	Severity: SeverityError,
	Run:      runSecretLeak,
}

func runSecretLeak(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !pass.isSinkCall(call) {
				return true
			}
			for _, arg := range call.Args {
				tv, ok := pass.Info.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if name, leak := containsSecretType(tv.Type); leak {
					pass.Reportf(arg.Pos(), "secret share value of type %s reaches a formatting/telemetry sink; shares must never be logged", name)
				}
			}
			return true
		})
	}
}

// isSinkCall reports whether call invokes a function or method that
// belongs to one of the sink packages.
func (p *Pass) isSinkCall(call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj := p.Info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sinkPkgs[fn.Pkg().Path()] {
		return true
	}
	// Any function producing obs.Attr values is an attribute
	// constructor and therefore a sink for its arguments.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if _, attr := containsNamedType(sig.Results().At(i).Type(), attrTypes); attr {
			return true
		}
	}
	return false
}

// containsSecretType reports whether t is, or structurally contains, a
// secret share type, returning the offending type's name.
func containsSecretType(t types.Type) (string, bool) {
	return containsNamedType(t, secretTypes)
}

// containsNamedType reports whether t is, or structurally contains, one
// of the named types in the table (package path -> type names),
// returning the offending type's name. The traversal follows pointers,
// slices, arrays, maps, channels, and struct fields, with a visited set
// to terminate on recursive types.
func containsNamedType(t types.Type, table map[string][]string) (string, bool) {
	return namedWalk(t, table, make(map[types.Type]bool))
}

func namedWalk(t types.Type, table map[string][]string, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	switch tt := types.Unalias(t).(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil {
			for _, name := range table[obj.Pkg().Path()] {
				if obj.Name() == name {
					return obj.Pkg().Path() + "." + name, true
				}
			}
		}
		return namedWalk(tt.Underlying(), table, seen)
	case *types.Pointer:
		return namedWalk(tt.Elem(), table, seen)
	case *types.Slice:
		return namedWalk(tt.Elem(), table, seen)
	case *types.Array:
		return namedWalk(tt.Elem(), table, seen)
	case *types.Chan:
		return namedWalk(tt.Elem(), table, seen)
	case *types.Map:
		if name, ok := namedWalk(tt.Key(), table, seen); ok {
			return name, true
		}
		return namedWalk(tt.Elem(), table, seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if name, ok := namedWalk(tt.Field(i).Type(), table, seen); ok {
				return name, true
			}
		}
	}
	return "", false
}
