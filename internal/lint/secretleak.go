package lint

import (
	"go/ast"
	"go/types"
)

// secretTypes are the named types whose values are secret shares or
// share-correlated material under the distributed-DP threat model: a
// single honest-but-curious party's view must stay share-only, so
// these values must never be rendered into logs, errors, or telemetry.
var secretTypes = map[string][]string{
	"sqm/internal/bgw":    {"Shared", "SharedVec", "ActorShared", "ActorVec"},
	"sqm/internal/beaver": {"Triple", "Share"},
}

// sinkPkgs are the packages whose calls render arguments into
// human-readable output: the fmt verbs, the standard loggers, and the
// repo's obs telemetry layer (whose Attr constructors and Event
// payloads end up on an operator's console or a metrics endpoint).
var sinkPkgs = map[string]bool{
	"fmt":              true,
	"log":              true,
	"log/slog":         true,
	"sqm/internal/obs": true,
}

// AnalyzerSecretLeak enforces the share-confidentiality invariant of
// the distributed-DP threat model (shared with the Skellam mechanism
// line of work): Shamir/BGW shares and Beaver triples are
// information-theoretically useless alone but catastrophic in
// aggregate, and a debug log line is an aggregation channel the
// protocol does not account for. Any share-typed value (directly, or
// inside a slice, map, pointer, struct field, or channel) passed to
// fmt, log, log/slog, or internal/obs is flagged.
var AnalyzerSecretLeak = &Analyzer{
	Name:     "secretleak",
	Doc:      "secret share values (bgw/beaver share types) passed to fmt, log, slog, or obs sinks",
	Severity: SeverityError,
	Run:      runSecretLeak,
}

func runSecretLeak(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !pass.isSinkCall(call) {
				return true
			}
			for _, arg := range call.Args {
				tv, ok := pass.Info.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if name, leak := containsSecretType(tv.Type); leak {
					pass.Reportf(arg.Pos(), "secret share value of type %s reaches a formatting/telemetry sink; shares must never be logged", name)
				}
			}
			return true
		})
	}
}

// isSinkCall reports whether call invokes a function or method that
// belongs to one of the sink packages.
func (p *Pass) isSinkCall(call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj := p.Info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return sinkPkgs[fn.Pkg().Path()]
}

// containsSecretType reports whether t is, or structurally contains, a
// secret share type, returning the offending type's name. The
// traversal follows pointers, slices, arrays, maps, channels, and
// struct fields, with a visited set to terminate on recursive types.
func containsSecretType(t types.Type) (string, bool) {
	return secretWalk(t, make(map[types.Type]bool))
}

func secretWalk(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	switch tt := types.Unalias(t).(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil {
			for _, name := range secretTypes[obj.Pkg().Path()] {
				if obj.Name() == name {
					return obj.Pkg().Path() + "." + name, true
				}
			}
		}
		return secretWalk(tt.Underlying(), seen)
	case *types.Pointer:
		return secretWalk(tt.Elem(), seen)
	case *types.Slice:
		return secretWalk(tt.Elem(), seen)
	case *types.Array:
		return secretWalk(tt.Elem(), seen)
	case *types.Chan:
		return secretWalk(tt.Elem(), seen)
	case *types.Map:
		if name, ok := secretWalk(tt.Key(), seen); ok {
			return name, true
		}
		return secretWalk(tt.Elem(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if name, ok := secretWalk(tt.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	}
	return "", false
}
