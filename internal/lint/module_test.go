package lint

import (
	"go/types"
	"strings"
	"testing"
)

// engineFixture loads the taintengine fixture, builds its module
// graph, and runs one propagation with the test spec: NewSecret is the
// only source, Declassify the only sanitizer.
func engineFixture(t *testing.T) (*Package, *Module, *TaintResult) {
	t.Helper()
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/taintengine", "fixture/taintengine")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	m := BuildModule([]*Package{pkg})
	res := m.Propagate(TaintSpec{
		FuncSources: map[string]bool{"fixture/taintengine.NewSecret": true},
		Sanitizers:  map[string]bool{"fixture/taintengine.Declassify": true},
	})
	return pkg, m, res
}

// returnTaint reports whether any leaf of the named exported
// function's return expressions is tainted, along with the witness of
// the first tainted leaf.
func returnTaint(m *Module, res *TaintResult, name string) (bool, string) {
	for _, rs := range m.Returns {
		if rs.Fn.Name() != name {
			continue
		}
		for _, n := range m.Leaves(rs.Pkg, rs.Fn, rs.Expr) {
			if res.Tainted(n) {
				return true, res.Witness(n)
			}
		}
	}
	return false, ""
}

func TestEngineSummariesCarryFlowThroughCalls(t *testing.T) {
	_, m, res := engineFixture(t)
	// Chain never calls the source directly: the secret crosses Fill,
	// a struct field, and Take before being returned.
	tainted, witness := returnTaint(m, res, "Chain")
	if !tainted {
		t.Fatal("Chain's return is not tainted; summary flow through Fill/Take broke")
	}
	for _, frag := range []string{"NewSecret", "→"} {
		if !strings.Contains(witness, frag) {
			t.Errorf("Chain witness missing %q: %s", frag, witness)
		}
	}
}

func TestEngineFieldNodesSmearAcrossInstances(t *testing.T) {
	// Other reads a Box no caller ever filled. Field nodes are keyed by
	// field object, not instance, so the engine must (conservatively)
	// taint it: this test pins the documented under-approximation so a
	// future precision change shows up as a deliberate test update.
	_, m, res := engineFixture(t)
	if tainted, _ := returnTaint(m, res, "Other"); !tainted {
		t.Error("Other's return is clean; the per-field-object node model changed")
	}
}

func TestEngineSanitizerBlocksFlow(t *testing.T) {
	_, m, res := engineFixture(t)
	if tainted, w := returnTaint(m, res, "Published"); tainted {
		t.Errorf("Published's return is tainted despite the sanitizer: %s", w)
	}
	if tainted, w := returnTaint(m, res, "Plain"); tainted {
		t.Errorf("Plain touches no secret but is tainted: %s", w)
	}
}

func TestEngineWitnessNamesCallBoundaries(t *testing.T) {
	pkg, m, res := engineFixture(t)
	// The per-site result of Take inside Chain must carry a witness that
	// starts at the seed and renders at least one hop with a position.
	var chainFn *types.Func
	for fn := range m.Funcs {
		if fn.Name() == "Chain" {
			chainFn = fn
		}
	}
	if chainFn == nil {
		t.Fatal("Chain not indexed in module graph")
	}
	found := false
	for _, rs := range m.Returns {
		if rs.Fn != chainFn {
			continue
		}
		for _, n := range m.Leaves(pkg, chainFn, rs.Expr) {
			if !res.Tainted(n) {
				continue
			}
			found = true
			if got := res.SeededBy(n); !strings.Contains(got, "NewSecret") {
				t.Errorf("seed description %q does not name the source", got)
			}
			if w := res.Witness(n); !strings.Contains(w, "taintengine.go:") {
				t.Errorf("witness carries no source position: %s", w)
			}
		}
	}
	if !found {
		t.Fatal("no tainted return leaf found for Chain")
	}
}

func TestEnginePathFuncsIncludeCollapsedCallees(t *testing.T) {
	// dpbudget's coverage rule depends on PathFuncs listing every
	// function the flow traversed, including callees collapsed by a
	// summary hop.
	_, m, res := engineFixture(t)
	for _, rs := range m.Returns {
		if rs.Fn.Name() != "Chain" {
			continue
		}
		for _, n := range m.Leaves(rs.Pkg, rs.Fn, rs.Expr) {
			if !res.Tainted(n) {
				continue
			}
			names := make(map[string]bool)
			for _, fn := range res.PathFuncs(n) {
				names[fn.Name()] = true
			}
			if !names["Chain"] || !names["Take"] {
				t.Errorf("PathFuncs missing a traversed function: %v", names)
			}
			return
		}
	}
	t.Fatal("no tainted return leaf found for Chain")
}
