package lint

import (
	"go/ast"
	"go/types"
)

// transportPkg owns the mesh abstraction whose receives the check
// guards.
const transportPkg = "sqm/internal/transport"

// AnalyzerBlockingRecv enforces the fault-tolerance layer's liveness
// rule: a PartyConn.Recv with no receive deadline anywhere in scope
// blocks forever when the peer dies silently, turning a recoverable
// dropout into a hung protocol. A package that calls SetRecvTimeout
// is considered deadline-aware — its receives are bounded by whatever
// policy the package arms (possibly "blocking by configuration", e.g.
// the trusted-simulation default) — so the check is package-scoped:
// it fires only in packages that consume PartyConn.Recv without ever
// touching the deadline API.
var AnalyzerBlockingRecv = &Analyzer{
	Name:     "blockingrecv",
	Doc:      "PartyConn.Recv in a package that never calls SetRecvTimeout; a silently dead peer hangs the receive forever",
	Severity: SeverityWarning,
	Run:      runBlockingRecv,
}

func runBlockingRecv(pass *Pass) {
	// The transport package implements the primitives (its internal
	// receives are the deadline mechanism itself).
	if pass.PkgPath == transportPkg {
		return
	}
	// First sweep: does the package arm receive deadlines anywhere? One
	// SetRecvTimeout call (on a conn or a whole mesh) makes the package
	// deadline-aware.
	armed := false
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "SetRecvTimeout" {
				armed = true
			}
			return !armed
		})
		if armed {
			return
		}
	}
	// Second sweep: every PartyConn.Recv in an unarmed package is an
	// unbounded wait on a remote party.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Recv" || !pass.isPartyConn(sel.X) {
				return true
			}
			pass.Reportf(call.Pos(), "blocking PartyConn.Recv in a package that never arms SetRecvTimeout; bound it with a receive deadline so a dead peer surfaces as transport.ErrTimeout instead of a hang")
			return true
		})
	}
}

// isPartyConn reports whether expr's static type is the transport
// package's PartyConn interface (or a pointer to a type of that
// package implementing it — concrete conns are unexported, so outside
// internal/transport the interface is the only spelling that occurs).
func (p *Pass) isPartyConn(expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := types.Unalias(tv.Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	return isNamedType(t, transportPkg, "PartyConn")
}
