package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSONDiagnostic is the wire form of one finding in -format json
// output. The shape is stable: CI consumers and the artifact uploaded
// next to the sqmbench run report parse it.
type JSONDiagnostic struct {
	Check    string `json:"check"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// JSONReport is the top-level -format json document.
type JSONReport struct {
	// Version identifies the report schema; bump on breaking changes.
	Version int `json:"version"`
	// Checks lists the analyzers that ran.
	Checks []JSONCheck `json:"checks"`
	// Diagnostics are the kept findings, in deterministic order.
	Diagnostics []JSONDiagnostic `json:"diagnostics"`
	// Suppressed counts findings removed by //lint:ignore directives.
	Suppressed int `json:"suppressed"`
}

// JSONCheck describes one analyzer in the report header.
type JSONCheck struct {
	Name     string `json:"name"`
	Doc      string `json:"doc"`
	Severity string `json:"severity"`
}

// toJSONDiagnostic converts an in-memory diagnostic, rewriting the
// file name relative to root when possible so reports are machine- and
// repo-portable.
func toJSONDiagnostic(d Diagnostic, trimPrefix string) JSONDiagnostic {
	file := d.Pos.Filename
	if trimPrefix != "" {
		if rel, ok := trimPath(file, trimPrefix); ok {
			file = rel
		}
	}
	return JSONDiagnostic{
		Check:    d.Check,
		Severity: string(d.Severity),
		File:     file,
		Line:     d.Pos.Line,
		Column:   d.Pos.Column,
		Message:  d.Message,
	}
}

// trimPath strips prefix (plus the following separator) from path.
func trimPath(path, prefix string) (string, bool) {
	if len(path) > len(prefix)+1 && path[:len(prefix)] == prefix && (path[len(prefix)] == '/' || path[len(prefix)] == '\\') {
		return path[len(prefix)+1:], true
	}
	return "", false
}

// WriteJSON renders the result as an indented JSON report.
func WriteJSON(w io.Writer, res Result, analyzers []*Analyzer, trimPrefix string) error {
	rep := JSONReport{
		Version:     1,
		Checks:      make([]JSONCheck, 0, len(analyzers)),
		Diagnostics: make([]JSONDiagnostic, 0, len(res.Diagnostics)),
		Suppressed:  len(res.Suppressed),
	}
	for _, a := range analyzers {
		rep.Checks = append(rep.Checks, JSONCheck{Name: a.Name, Doc: a.Doc, Severity: string(a.Severity)})
	}
	for _, d := range res.Diagnostics {
		rep.Diagnostics = append(rep.Diagnostics, toJSONDiagnostic(d, trimPrefix))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteText renders the result one finding per line, in the
// conventional file:line:col: check: message form.
func WriteText(w io.Writer, res Result, trimPrefix string) error {
	for _, d := range res.Diagnostics {
		jd := toJSONDiagnostic(d, trimPrefix)
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", jd.File, jd.Line, jd.Column, jd.Check, jd.Message); err != nil {
			return err
		}
	}
	return nil
}
