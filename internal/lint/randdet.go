package lint

import "strconv"

// randxPkg is the only package allowed to touch the runtime's
// randomness sources directly.
const randxPkg = "sqm/internal/randx"

// rawRandImports are the randomness packages that bypass the seeded
// samplers.
var rawRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// AnalyzerRandDet enforces reproducibility of the Skellam/Poisson
// draws (paper §II, Algorithm 2): every random bit must flow through
// the seeded, splittable samplers in internal/randx, so a run is a
// pure function of its seed. Importing math/rand, math/rand/v2 or
// crypto/rand anywhere else would reintroduce nondeterminism (or, for
// crypto/rand, unseedable entropy) that the replay and audit tooling
// cannot reproduce.
var AnalyzerRandDet = &Analyzer{
	Name:     "randdet",
	Doc:      "randomness outside internal/randx: math/rand, math/rand/v2 and crypto/rand may only be imported by the seeded sampler package",
	Severity: SeverityError,
	Run:      runRandDet,
}

func runRandDet(pass *Pass) {
	if pass.PkgPath == randxPkg {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !rawRandImports[path] {
				continue
			}
			pass.Reportf(imp.Pos(), "import of %q outside internal/randx breaks seeded determinism; draw through randx.RNG instead", path)
		}
	}
}
